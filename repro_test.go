package repro

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// demoTable loads the Figure 4 people table through the public API.
func demoTable(t *testing.T) (*DB, *Table) {
	t.Helper()
	db := Open(Config{})
	tbl, err := db.CreateTable(TableSpec{
		Name: "people",
		Columns: []Column{
			{Name: "state", Kind: String},
			{Name: "city", Kind: String},
			{Name: "salary", Kind: Int},
		},
		ClusteredBy:  []string{"state"},
		BucketTuples: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := []Row{
		{StringVal("MA"), StringVal("boston"), IntVal(25000)},
		{StringVal("NH"), StringVal("boston"), IntVal(45000)},
		{StringVal("MA"), StringVal("boston"), IntVal(50000)},
		{StringVal("MN"), StringVal("manchester"), IntVal(40000)},
		{StringVal("MA"), StringVal("cambridge"), IntVal(110000)},
		{StringVal("MS"), StringVal("jackson"), IntVal(80000)},
		{StringVal("MA"), StringVal("springfield"), IntVal(90000)},
		{StringVal("NH"), StringVal("manchester"), IntVal(60000)},
		{StringVal("OH"), StringVal("springfield"), IntVal(95000)},
		{StringVal("OH"), StringVal("toledo"), IntVal(70000)},
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

func TestQuickstartFlow(t *testing.T) {
	_, tbl := demoTable(t)
	if err := tbl.CreateCM("city_cm", CMColumn{Name: "city"}); err != nil {
		t.Fatal(err)
	}
	var cities []string
	err := tbl.SelectVia(CMScan, func(r Row) bool {
		cities = append(cities, r[1].Str())
		return true
	}, In("city", StringVal("boston"), StringVal("springfield")))
	if err != nil {
		t.Fatal(err)
	}
	if len(cities) != 5 {
		t.Fatalf("matched %d rows, want 5", len(cities))
	}
	for _, c := range cities {
		if c != "boston" && c != "springfield" {
			t.Errorf("false positive city %q", c)
		}
	}
}

func TestAllValueKinds(t *testing.T) {
	v := IntVal(-3)
	if v.Int() != -3 || v.String() != "-3" {
		t.Error("int value accessors")
	}
	f := FloatVal(2.5)
	if f.Float() != 2.5 {
		t.Error("float accessor")
	}
	s := StringVal("x")
	if s.Str() != "x" {
		t.Error("string accessor")
	}
}

func TestCreateTableValidation(t *testing.T) {
	db := Open(Config{})
	spec := TableSpec{
		Name:        "t",
		Columns:     []Column{{Name: "a", Kind: Int}},
		ClusteredBy: []string{"a"},
	}
	if _, err := db.CreateTable(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(spec); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := db.CreateTable(TableSpec{
		Name:        "u",
		Columns:     []Column{{Name: "a", Kind: Int}},
		ClusteredBy: []string{"zzz"},
	}); err == nil {
		t.Error("unknown clustering column accepted")
	}
	if db.Table("t") == nil || db.Table("nope") != nil {
		t.Error("Table lookup wrong")
	}
}

func TestSelectMethodsAgree(t *testing.T) {
	db := Open(Config{})
	tbl, err := db.CreateTable(TableSpec{
		Name: "data",
		Columns: []Column{
			{Name: "c", Kind: Int},
			{Name: "u", Kind: Int},
		},
		ClusteredBy: []string{"c"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var rows []Row
	for i := 0; i < 4000; i++ {
		c := int64(rng.Intn(300))
		rows = append(rows, Row{IntVal(c), IntVal(c / 10)})
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("u_ix", "u"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateCM("u_cm", CMColumn{Name: "u"}); err != nil {
		t.Fatal(err)
	}
	count := func(m AccessMethod) int {
		n := 0
		if err := tbl.SelectVia(m, func(Row) bool { n++; return true },
			Between("u", IntVal(5), IntVal(8))); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		return n
	}
	want := count(TableScan)
	if want == 0 {
		t.Fatal("query matches nothing")
	}
	for _, m := range []AccessMethod{SortedIndexScan, PipelinedIndexScan, CMScan, Auto} {
		if got := count(m); got != want {
			t.Errorf("%v returned %d rows, want %d", m, got, want)
		}
	}
}

func TestInsertDeleteCommit(t *testing.T) {
	_, tbl := demoTable(t)
	if err := tbl.CreateCM("city_cm", CMColumn{Name: "city"}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Row{StringVal("OH"), StringVal("boston"), IntVal(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Commit(); err != nil {
		t.Fatal(err)
	}
	if tbl.RowCount() != 11 {
		t.Errorf("rows = %d", tbl.RowCount())
	}
	n, err := tbl.Delete(Eq("city", StringVal("boston")))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("deleted %d, want 4", n)
	}
	if tbl.RowCount() != 7 {
		t.Errorf("rows after delete = %d", tbl.RowCount())
	}
	// CM no longer finds boston.
	found := 0
	if err := tbl.SelectVia(CMScan, func(Row) bool { found++; return true },
		Eq("city", StringVal("boston"))); err != nil {
		t.Fatal(err)
	}
	if found != 0 {
		t.Errorf("boston still found %d times after delete", found)
	}
}

func TestCMInfoAndIndexInfo(t *testing.T) {
	_, tbl := demoTable(t)
	if err := tbl.CreateCM("city_cm", CMColumn{Name: "city"}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("city_ix", "city"); err != nil {
		t.Fatal(err)
	}
	cms := tbl.CMs()
	if len(cms) != 1 || cms[0].Name != "city_cm" {
		t.Fatalf("CMs = %+v", cms)
	}
	if cms[0].Keys != 6 || cms[0].SizeBytes <= 0 {
		t.Errorf("CM info = %+v", cms[0])
	}
	if cms[0].Columns[0] != "city" {
		t.Error("CM columns wrong")
	}
	ixs := tbl.Indexes()
	if len(ixs) != 1 || ixs[0].Entries != 10 || ixs[0].SizeBytes <= 0 {
		t.Fatalf("Indexes = %+v", ixs)
	}
	// The CM is much smaller than the index even at 10 rows? Not
	// necessarily — but it must be within a page while the B+Tree holds
	// a full page minimum.
	if cms[0].SizeBytes >= ixs[0].SizeBytes {
		t.Errorf("CM %d >= index %d bytes", cms[0].SizeBytes, ixs[0].SizeBytes)
	}
}

func TestExplain(t *testing.T) {
	_, tbl := demoTable(t)
	info, err := tbl.Explain(Eq("city", StringVal("boston")))
	if err != nil {
		t.Fatal(err)
	}
	if info.Method != TableScan {
		t.Errorf("without access paths plan = %v", info.Method)
	}
	if info.EstimatedCost <= 0 {
		t.Error("cost not positive")
	}
	if err := tbl.CreateCM("city_cm", CMColumn{Name: "city"}); err != nil {
		t.Fatal(err)
	}
	info, err = tbl.Explain(Eq("city", StringVal("boston")))
	if err != nil {
		t.Fatal(err)
	}
	// At ten rows the scan may still win; the plan must at least be
	// valid and costed.
	if info.Method.String() == "" || info.EstimatedCost <= 0 {
		t.Errorf("explain = %+v", info)
	}
}

func TestStatsAndColdCache(t *testing.T) {
	db, tbl := demoTable(t)
	// Warm scan: everything is still cached from the load, so no I/O.
	db.ResetStats()
	if err := tbl.SelectVia(TableScan, func(Row) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Reads != 0 {
		t.Error("warm scan should be served from the buffer pool")
	}
	// Cold scan pays disk reads and advances the virtual clock.
	if err := db.ColdCache(); err != nil {
		t.Fatal(err)
	}
	db.ResetStats()
	if err := tbl.SelectVia(TableScan, func(Row) bool { return true }); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Reads == 0 {
		t.Error("cold scan should read from disk")
	}
	if st.Elapsed <= 0 {
		t.Error("no virtual time elapsed")
	}
	if st.PoolMisses == 0 {
		t.Error("cold scan should miss the pool")
	}
}

func TestAdviseAndCreateRecommended(t *testing.T) {
	db := Open(Config{})
	tbl, err := db.CreateTable(TableSpec{
		Name: "data",
		Columns: []Column{
			{Name: "c", Kind: Int},
			{Name: "u", Kind: Int},
			{Name: "w", Kind: Float},
		},
		ClusteredBy: []string{"c"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	var rows []Row
	for i := 0; i < 3000; i++ {
		c := int64(rng.Intn(500))
		rows = append(rows, Row{
			IntVal(c), IntVal(c / 5), FloatVal(float64(c) + rng.Float64()),
		})
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	recs, err := tbl.Advise(50, Eq("u", IntVal(42)), Between("w", FloatVal(100), FloatVal(120)))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	// Sizes ascend.
	for i := 1; i < len(recs); i++ {
		if recs[i].SizeBytes < recs[i-1].SizeBytes {
			t.Fatal("recommendations not sorted by size")
		}
	}
	if err := tbl.CreateRecommended("advised", recs[0]); err != nil {
		t.Fatal(err)
	}
	if len(tbl.CMs()) != 1 {
		t.Error("recommended CM not created")
	}
	// The created CM answers queries on its own columns exactly.
	var preds []Pred
	for _, c := range recs[0].Columns {
		switch c {
		case "u":
			preds = append(preds, Eq("u", IntVal(42)))
		case "w":
			preds = append(preds, Between("w", FloatVal(100), FloatVal(120)))
		}
	}
	if len(preds) == 0 {
		t.Fatalf("recommendation covers no training columns: %+v", recs[0])
	}
	var viaCM, viaScan int
	if err := tbl.SelectVia(CMScan, func(Row) bool { viaCM++; return true }, preds...); err != nil {
		t.Fatal(err)
	}
	if err := tbl.SelectVia(TableScan, func(Row) bool { viaScan++; return true }, preds...); err != nil {
		t.Fatal(err)
	}
	if viaCM != viaScan || viaScan == 0 {
		t.Errorf("CM scan %d rows vs table scan %d", viaCM, viaScan)
	}
}

func TestDiscoverFDs(t *testing.T) {
	db := Open(Config{})
	tbl, err := db.CreateTable(TableSpec{
		Name: "geo",
		Columns: []Column{
			{Name: "id", Kind: Int},
			{Name: "city", Kind: String},
			{Name: "state", Kind: String},
		},
		ClusteredBy: []string{"id"},
	})
	if err != nil {
		t.Fatal(err)
	}
	states := []string{"MA", "NH", "OH", "MN", "MS"}
	var rows []Row
	for i := 0; i < 2000; i++ {
		s := states[i%len(states)]
		city := fmt.Sprintf("%s-city-%d", s, i%40) // city -> state is hard
		rows = append(rows, Row{IntVal(int64(i)), StringVal(city), StringVal(s)})
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	fds, err := tbl.DiscoverFDs(0.9, false, "city", "state")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, fd := range fds {
		if len(fd.Determinant) == 1 && fd.Determinant[0] == "city" && fd.Dependent == "state" {
			found = true
			if fd.Strength < 0.99 {
				t.Errorf("city->state strength = %v", fd.Strength)
			}
		}
	}
	if !found {
		t.Error("city->state not discovered")
	}
}

func TestPairStats(t *testing.T) {
	_, tbl := demoTable(t)
	ps, err := tbl.PairStats("city")
	if err != nil {
		t.Fatal(err)
	}
	if ps.DistinctU != 6 || ps.DistinctUC != 9 {
		t.Errorf("pair stats = %+v", ps)
	}
	want := 9.0 / 6.0
	if ps.CPerU < want-1e-9 || ps.CPerU > want+1e-9 {
		t.Errorf("c_per_u = %v", ps.CPerU)
	}
	if _, err := tbl.PairStats("nope"); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestErrorPaths(t *testing.T) {
	_, tbl := demoTable(t)
	if err := tbl.SelectVia(SortedIndexScan, func(Row) bool { return true },
		Eq("city", StringVal("boston"))); err == nil {
		t.Error("index scan without index should fail")
	}
	if err := tbl.SelectVia(CMScan, func(Row) bool { return true },
		Eq("city", StringVal("boston"))); err == nil {
		t.Error("CM scan without CM should fail")
	}
	if err := tbl.CreateCM("empty"); err == nil {
		t.Error("CM with no columns accepted")
	}
	if err := tbl.CreateCM("bad", CMColumn{Name: "zzz"}); err == nil {
		t.Error("CM on unknown column accepted")
	}
	if err := tbl.CreateIndex("bad", "zzz"); err == nil {
		t.Error("index on unknown column accepted")
	}
	if err := tbl.SelectVia(AccessMethod(42), func(Row) bool { return true }); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := tbl.Delete(Eq("zzz", IntVal(1))); err == nil {
		t.Error("delete with unknown column accepted")
	}
}

func TestSelectEarlyStop(t *testing.T) {
	_, tbl := demoTable(t)
	n := 0
	if err := tbl.Select(func(Row) bool { n++; return false }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("visited %d rows after stop", n)
	}
}

func TestCMWithExplicitWidth(t *testing.T) {
	db := Open(Config{})
	tbl, err := db.CreateTable(TableSpec{
		Name: "m",
		Columns: []Column{
			{Name: "c", Kind: Int},
			{Name: "temp", Kind: Float},
		},
		ClusteredBy: []string{"c"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var rows []Row
	for i := 0; i < 500; i++ {
		rows = append(rows, Row{IntVal(int64(i % 50)), FloatVal(float64(i%50) + 0.5)})
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateCM("temp_cm", CMColumn{Name: "temp", Width: 10}); err != nil {
		t.Fatal(err)
	}
	info := tbl.CMs()[0]
	if info.Keys != 5 { // 50 temps / width 10
		t.Errorf("bucketed CM keys = %d, want 5", info.Keys)
	}
	// Queries through the wide buckets stay exact.
	var got []float64
	if err := tbl.SelectVia(CMScan, func(r Row) bool {
		got = append(got, r[1].Float())
		return true
	}, Eq("temp", FloatVal(7.5))); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Errorf("matched %d rows, want 10", len(got))
	}
	sort.Float64s(got)
	for _, f := range got {
		if f != 7.5 {
			t.Errorf("false positive %v", f)
		}
	}
}

func TestMethodStrings(t *testing.T) {
	for _, m := range []AccessMethod{Auto, TableScan, SortedIndexScan, PipelinedIndexScan, CMScan, AccessMethod(77)} {
		if m.String() == "" {
			t.Error("empty method name")
		}
	}
}

func TestVarBucketCMViaFacade(t *testing.T) {
	db := Open(Config{})
	tbl, err := db.CreateTable(TableSpec{
		Name: "sk",
		Columns: []Column{
			{Name: "c", Kind: Int},
			{Name: "u", Kind: Int},
		},
		ClusteredBy:  []string{"c"},
		BucketTuples: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	var rows []Row
	for i := 0; i < 4000; i++ {
		u := int64(i % 500)
		c := int64(1)
		if u >= 250 {
			c = u / 10
		}
		rows = append(rows, Row{IntVal(c), IntVal(u)})
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	bounds, err := tbl.VarBucketBounds("u", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) == 0 || len(bounds) >= 250 {
		t.Fatalf("bounds = %d, expected skew compression", len(bounds))
	}
	if err := tbl.CreateVarCM("u_var", "u", bounds); err != nil {
		t.Fatal(err)
	}
	// Exactness through the variable-width CM.
	var viaCM, viaScan int
	preds := []Pred{Eq("u", IntVal(300))}
	if err := tbl.SelectViaCM("u_var", func(Row) bool { viaCM++; return true }, preds...); err != nil {
		t.Fatal(err)
	}
	if err := tbl.SelectVia(TableScan, func(Row) bool { viaScan++; return true }, preds...); err != nil {
		t.Fatal(err)
	}
	if viaCM != viaScan || viaScan == 0 {
		t.Errorf("var CM %d rows vs scan %d", viaCM, viaScan)
	}
}

func TestSuggestClusteringViaFacade(t *testing.T) {
	db := Open(Config{})
	tbl, err := db.CreateTable(TableSpec{
		Name: "sg",
		Columns: []Column{
			{Name: "id", Kind: Int},
			{Name: "hub", Kind: Int},
			{Name: "dep", Kind: Int},
			{Name: "noise", Kind: Int},
		},
		ClusteredBy: []string{"id"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var rows []Row
	for i := 0; i < 3000; i++ {
		hub := int64(i % 150)
		rows = append(rows, Row{
			IntVal(int64(i)), IntVal(hub), IntVal(hub / 2),
			IntVal(int64((i * 6151) % 3000)),
		})
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	sugs, err := tbl.SuggestClustering(5, "hub", "dep", "noise")
	if err != nil {
		t.Fatal(err)
	}
	if len(sugs) != 3 {
		t.Fatalf("suggestions = %d", len(sugs))
	}
	if sugs[0].Column == "noise" {
		t.Errorf("noise ranked first: %+v", sugs)
	}
	if _, err := tbl.SuggestClustering(5, "zzz"); err == nil {
		t.Error("unknown column accepted")
	}
}

package repro

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	sqlfe "repro/internal/sql"
	"repro/internal/value"
)

// This file is the streaming twin of sql.go's buffered script
// execution, plus the prepared-statement batch entry the server's
// cross-connection coalescer uses. ExecScriptStreamCtx delivers result
// rows through callbacks as the executor produces them — the wire
// protocol's chunked mode pumps them straight onto the connection
// instead of materializing a statement's whole result — and
// ExecPreparedBatch funnels single SELECTs that arrived on different
// connections through one SelectMany-style fan-out while keeping
// per-statement contexts, snapshots and outcomes.

// ErrStreamAborted is the error recorded for a streamed statement whose
// consumer returned false from RowStreamer.Row while the statement's
// context was still live — the server maps a dead client connection to
// it. The executor unwinds cleanly (no pinned frames, no goroutines);
// rows already delivered stay delivered.
var ErrStreamAborted = errors.New("repro: stream consumer aborted the statement")

// RowStreamer receives a script's result rows as the executor produces
// them. Begin is called once per row-producing statement (SELECT, but
// also EXPLAIN, SHOW, ADVISE) with the result header before any of its
// rows; Row delivers the rows in result order and stops the statement
// when it returns false; End marks the statement's last row (it runs
// even when the statement ends in an error after Begin). Statements
// that produce no result rows (INSERT, DDL, COMMIT) trigger none of the
// callbacks — their outcome travels only in the ScriptResult. Rows
// passed to Row are freshly materialized and may be retained. Any nil
// callback is skipped.
type RowStreamer struct {
	Begin func(stmt int, columns []string)
	Row   func(stmt int, row Row) bool
	End   func(stmt int)
	// Ctx, when set, receives the statement's effective context — the
	// caller's ctx plus the configured statement timeout — just before
	// Begin. A consumer whose Row callback can block (a bounded send
	// queue with backpressure) selects on this context so a statement
	// deadline or cancellation unblocks it; the statement then fails
	// with the context's error rather than hanging on a stalled
	// consumer. The context is only valid until End.
	Ctx func(stmt int, ctx context.Context)
}

func (rs RowStreamer) begin(stmt int, cols []string) {
	if rs.Begin != nil {
		rs.Begin(stmt, cols)
	}
}

func (rs RowStreamer) row(stmt int, row Row) bool {
	if rs.Row == nil {
		return true
	}
	return rs.Row(stmt, row)
}

func (rs RowStreamer) end(stmt int) {
	if rs.End != nil {
		rs.End(stmt)
	}
}

func (rs RowStreamer) announceCtx(stmt int, ctx context.Context) {
	if rs.Ctx != nil {
		rs.Ctx(stmt, ctx)
	}
}

// ExecScriptStreamCtx executes a ';'-separated script like
// ExecScriptCtx, but streams result rows to rs instead of buffering
// them: each returned ScriptResult carries the statement's header,
// measurements and error while its Res.Rows stays nil — the rows went
// through rs.Row as the scan produced them, so a SELECT of any size
// runs in bounded memory. Statements execute strictly in order (the
// buffered path's consecutive-SELECT batching does not apply; rows must
// leave in statement order), each under ctx plus the configured
// statement timeout.
//
// When rs.Row returns false the running statement stops at row
// granularity and fails with the context's error if ctx is dead, or
// ErrStreamAborted otherwise; statements not yet started fail the same
// way without executing. A parse error fails the whole script and
// nothing executes.
func (db *DB) ExecScriptStreamCtx(ctx context.Context, script string, rs RowStreamer) ([]ScriptResult, error) {
	stmts, texts, err := sqlfe.ParseScriptSpans(script)
	if err != nil {
		return nil, err
	}
	out := make([]ScriptResult, len(stmts))
	for i, stmt := range stmts {
		reads0 := db.disk.Stats().Reads
		start := time.Now()
		var sr ScriptResult
		if sel, ok := stmt.(*sqlfe.SelectStmt); ok {
			sr = db.streamSelect(ctx, sel, i, rs)
		} else {
			sr = db.streamOther(ctx, stmt, i, rs)
		}
		sr.SQL = texts[i]
		sr.Elapsed = time.Since(start)
		sr.PagesRead = db.disk.Stats().Reads - reads0
		out[i] = sr
		if errors.Is(sr.Err, ErrStreamAborted) {
			// The consumer walked away while the context was still
			// live: there is nobody to stream to, so later statements
			// fail without running. (A dead context instead flows
			// through each remaining statement and fails it fast, the
			// same way the buffered path behaves.)
			for j := i + 1; j < len(stmts); j++ {
				out[j] = ScriptResult{Err: ErrStreamAborted, SQL: texts[j]}
			}
			break
		}
	}
	return out, nil
}

// streamSelect executes one SELECT, streaming its rows through rs. It
// derives the statement's effective context (caller ctx + statement
// timeout) up front and announces it through rs.Ctx, so a consumer
// blocked in Row unblocks when the deadline fires; the nested deadline
// runTree derives internally is a no-op shadow of this one.
func (db *DB) streamSelect(ctx context.Context, s *sqlfe.SelectStmt, stmt int, rs RowStreamer) ScriptResult {
	b, err := sqlfe.BindSelect(catalogDB{db}, s)
	if err != nil {
		return ScriptResult{Err: err}
	}
	sctx, cancel := db.stmtCtx(ctx)
	defer cancel()
	rs.announceCtx(stmt, sctx)
	rs.begin(stmt, b.Cols)
	defer rs.end(stmt)
	if b.Limit == 0 {
		return ScriptResult{Res: &Result{Columns: b.Cols}}
	}
	tbl := db.Table(b.Table)
	if tbl == nil {
		return ScriptResult{Err: fmt.Errorf("repro: no table %q", b.Table)}
	}
	rows := 0
	aborted := false
	err = tbl.runTree(sctx, specFromBound(b), db.workers, func(r value.Row) bool {
		row := externalRow(r)
		if b.IsAggregate() {
			pr := make(Row, len(b.OutPerm))
			for j, p := range b.OutPerm {
				pr[j] = row[p]
			}
			row = pr
		}
		if !rs.row(stmt, row) {
			aborted = true
			return false
		}
		rows++
		return true
	})
	if err == nil && aborted {
		if sctx != nil && sctx.Err() != nil {
			err = sctx.Err()
			db.noteOutcome(err)
		} else {
			err = ErrStreamAborted
		}
	}
	if err != nil {
		return ScriptResult{Err: err}
	}
	return ScriptResult{Res: &Result{Columns: b.Cols}, Rows: rows}
}

// streamOther executes a non-SELECT statement buffered (their results
// are small — SHOW, EXPLAIN, ADVISE output or a message) and then
// replays any result rows through rs so the consumer sees one uniform
// row stream; the returned Res keeps its header but drops the rows.
func (db *DB) streamOther(ctx context.Context, stmt sqlfe.Stmt, i int, rs RowStreamer) ScriptResult {
	res, err := db.execStmt(ctx, stmt)
	if err != nil {
		return ScriptResult{Err: err}
	}
	sr := ScriptResult{Res: res}
	if len(res.Columns) == 0 {
		return sr
	}
	sctx, cancel := db.stmtCtx(ctx)
	defer cancel()
	rs.announceCtx(i, sctx)
	rs.begin(i, res.Columns)
	defer rs.end(i)
	for _, row := range res.Rows {
		if !rs.row(i, row) {
			if sctx != nil && sctx.Err() != nil {
				sr.Err = sctx.Err()
			} else {
				sr.Err = ErrStreamAborted
			}
			sr.Res = nil
			return sr
		}
		sr.Rows++
	}
	res.Rows = nil
	return sr
}

// PreparedSelect is one parsed-and-bound plain SELECT line, ready for
// the server's cross-connection coalescer: PrepareSelect recognizes the
// line, ExecPreparedBatch executes many of them (from different
// connections) as one SelectMany-style batch, and ShapeRows is already
// applied — result rows come back in SELECT-list order.
type PreparedSelect struct {
	bound *sqlfe.BoundSelect
	sql   string
}

// Columns returns the SELECT's result header.
func (p *PreparedSelect) Columns() []string { return p.bound.Cols }

// SQL returns the statement's verbatim source text.
func (p *PreparedSelect) SQL() string { return p.sql }

// PrepareSelect parses line and returns a PreparedSelect when it is
// exactly one well-formed SELECT statement over this database — the
// coalescible shape. Anything else (a multi-statement script, another
// statement form, a parse or bind error) returns nil, and the caller
// falls back to the ordinary execution path, which reports any error
// with identical text.
func (db *DB) PrepareSelect(line string) *PreparedSelect {
	stmts, texts, err := sqlfe.ParseScriptSpans(line)
	if err != nil || len(stmts) != 1 {
		return nil
	}
	sel, ok := stmts[0].(*sqlfe.SelectStmt)
	if !ok {
		return nil
	}
	b, err := sqlfe.BindSelect(catalogDB{db}, sel)
	if err != nil {
		return nil
	}
	return &PreparedSelect{bound: b, sql: texts[0]}
}

// ExecPreparedBatch executes a batch of prepared SELECTs — typically
// collected from different connections by the server's coalescer — as
// one SelectMany fan-out across the worker pool. ctxs[i] bounds
// statement i alone (nil entries never cancel): each statement keeps
// its own context, its own MVCC snapshot (captured per statement inside
// the run, exactly as if it had executed alone), its own outcome and
// its own error. Like the script batch path, each statement reports the
// batch group's wall time and page-read delta.
func (db *DB) ExecPreparedBatch(ctxs []context.Context, preps []*PreparedSelect) []ScriptResult {
	out := make([]ScriptResult, len(preps))
	specs := make([]QuerySpec, 0, len(preps))
	specCtxs := make([]context.Context, 0, len(preps))
	specAt := make([]int, len(preps)) // prep -> index into specs, -1 = not run
	for i, p := range preps {
		if p.bound.Limit == 0 { // LIMIT 0: nothing to run
			out[i] = ScriptResult{Res: &Result{Columns: p.bound.Cols}, SQL: p.sql}
			specAt[i] = -1
			continue
		}
		specAt[i] = len(specs)
		specs = append(specs, specFromBound(p.bound))
		var ctx context.Context
		if i < len(ctxs) {
			ctx = ctxs[i]
		}
		specCtxs = append(specCtxs, ctx)
	}
	reads0 := db.disk.Stats().Reads
	start := time.Now()
	results := db.selectManyEach(specCtxs, specs)
	elapsed := time.Since(start)
	pages := db.disk.Stats().Reads - reads0
	for i, p := range preps {
		if specAt[i] < 0 {
			continue
		}
		r := results[specAt[i]]
		sr := ScriptResult{SQL: p.sql, Elapsed: elapsed, PagesRead: pages}
		if r.Err != nil {
			sr.Err = r.Err
		} else {
			sr.Res = &Result{Columns: p.bound.Cols, Rows: selectShapeRows(p.bound, r.Rows)}
			sr.Rows = len(sr.Res.Rows)
		}
		out[i] = sr
	}
	return out
}

// SelectManyEachCtx is SelectManyCtx with one context per query:
// ctxs[i] bounds specs[i] alone, so cancelling one caller's context
// stops only that caller's query — the semantics a server needs when
// queries from independent clients share a batch. ctxs may be shorter
// than specs; missing or nil entries never cancel.
func (db *DB) SelectManyEachCtx(ctxs []context.Context, specs []QuerySpec) []QueryResult {
	return db.selectManyEach(ctxs, specs)
}

// selectManyEach runs the specs across the worker pool, each under its
// own context — the engine behind SelectMany, SelectManyCtx and
// ExecPreparedBatch.
func (db *DB) selectManyEach(ctxs []context.Context, specs []QuerySpec) []QueryResult {
	out := make([]QueryResult, len(specs))
	workers := db.workers
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(specs) {
					return
				}
				var ctx context.Context
				if i < len(ctxs) {
					ctx = ctxs[i]
				}
				rows, err := db.runSpec(ctx, specs[i], 1)
				out[i] = QueryResult{Rows: rows, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}

package repro

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestFuzzAccessMethodEquivalence drives randomized tables, maintenance
// streams and queries through all four access paths and requires
// identical result sets everywhere. This is the end-to-end guarantee the
// paper's design rests on: the CM is a lossy structure whose false
// positives the executor filters, so it must never change query results.
func TestFuzzAccessMethodEquivalence(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			db := Open(Config{})
			tbl, err := db.CreateTable(TableSpec{
				Name: "t",
				Columns: []Column{
					{Name: "c", Kind: Int},
					{Name: "u", Kind: Int},
					{Name: "w", Kind: Float},
					{Name: "s", Kind: String},
				},
				ClusteredBy:  []string{"c"},
				BucketTuples: 1 + rng.Intn(40),
			})
			if err != nil {
				t.Fatal(err)
			}
			domain := int64(50 + rng.Intn(500))
			corrNoise := int64(1 + rng.Intn(4))
			makeRow := func(i int) Row {
				c := rng.Int63n(domain)
				u := c/7 + rng.Int63n(corrNoise)
				return Row{
					IntVal(c),
					IntVal(u),
					FloatVal(float64(c) + rng.Float64()),
					StringVal(fmt.Sprintf("s%02d", c%37)),
				}
			}
			n := 1500 + rng.Intn(2000)
			rows := make([]Row, n)
			for i := range rows {
				rows[i] = makeRow(i)
			}
			if err := tbl.Load(rows); err != nil {
				t.Fatal(err)
			}
			if err := tbl.CreateIndex("u_ix", "u"); err != nil {
				t.Fatal(err)
			}
			level := rng.Intn(5)
			if err := tbl.CreateCM("u_cm", CMColumn{Name: "u", Level: level}); err != nil {
				t.Fatal(err)
			}
			if err := tbl.CreateCM("s_cm", CMColumn{Name: "s"}); err != nil {
				t.Fatal(err)
			}

			// A maintenance stream: inserts and deletes.
			for i := 0; i < 150; i++ {
				if err := tbl.Insert(makeRow(n + i)); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := tbl.Delete(Eq("u", IntVal(rng.Int63n(domain/7+1)))); err != nil {
				t.Fatal(err)
			}
			if err := tbl.Commit(); err != nil {
				t.Fatal(err)
			}

			// Random queries over u (indexed + CM'd) with extra preds.
			for qi := 0; qi < 6; qi++ {
				var preds []Pred
				switch rng.Intn(3) {
				case 0:
					preds = append(preds, Eq("u", IntVal(rng.Int63n(domain/7+2))))
				case 1:
					lo := rng.Int63n(domain / 7)
					preds = append(preds, Between("u", IntVal(lo), IntVal(lo+3)))
				case 2:
					preds = append(preds, In("u",
						IntVal(rng.Int63n(domain/7+2)),
						IntVal(rng.Int63n(domain/7+2)),
						IntVal(rng.Int63n(domain/7+2))))
				}
				if rng.Intn(2) == 0 {
					preds = append(preds, Le("w", FloatVal(float64(domain)*0.7)))
				}
				if rng.Intn(3) == 0 {
					preds = append(preds, Eq("s", StringVal(fmt.Sprintf("s%02d", rng.Intn(37)))))
				}

				collect := func(m AccessMethod) []string {
					var got []string
					if err := tbl.SelectVia(m, func(r Row) bool {
						got = append(got, fmt.Sprintf("%v|%v|%v|%v", r[0], r[1], r[2], r[3]))
						return true
					}, preds...); err != nil {
						t.Fatalf("trial %d query %d method %v: %v", trial, qi, m, err)
					}
					sort.Strings(got)
					return got
				}
				want := collect(TableScan)
				for _, m := range []AccessMethod{SortedIndexScan, PipelinedIndexScan, CMScan, Auto} {
					got := collect(m)
					if len(got) != len(want) {
						t.Fatalf("trial %d query %d: %v returned %d rows, scan %d",
							trial, qi, m, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("trial %d query %d: %v row %d differs", trial, qi, m, i)
						}
					}
				}
			}
		})
	}
}

// TestCMSizeInvariant checks the headline size property across scales:
// CM size grows with distinct pairs, not with row count, while the dense
// index grows linearly with rows.
func TestCMSizeInvariant(t *testing.T) {
	sizes := map[int][2]int64{}
	for _, n := range []int{2000, 8000} {
		db := Open(Config{})
		tbl, err := db.CreateTable(TableSpec{
			Name: "t",
			Columns: []Column{
				{Name: "c", Kind: Int},
				{Name: "u", Kind: Int},
			},
			ClusteredBy: []string{"c"},
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		rows := make([]Row, n)
		for i := range rows {
			c := rng.Int63n(200) // fixed domain: pairs don't grow with n
			rows[i] = Row{IntVal(c), IntVal(c / 5)}
		}
		if err := tbl.Load(rows); err != nil {
			t.Fatal(err)
		}
		if err := tbl.CreateIndex("u_ix", "u"); err != nil {
			t.Fatal(err)
		}
		if err := tbl.CreateCM("u_cm", CMColumn{Name: "u"}); err != nil {
			t.Fatal(err)
		}
		sizes[n] = [2]int64{tbl.CMs()[0].SizeBytes, tbl.Indexes()[0].SizeBytes}
	}
	small, large := sizes[2000], sizes[8000]
	if large[0] != small[0] {
		t.Errorf("CM size changed with row count: %d -> %d (domain fixed)", small[0], large[0])
	}
	if large[1] < 3*small[1] {
		t.Errorf("dense index should grow ~linearly: %d -> %d", small[1], large[1])
	}
}

package repro

import (
	"context"
	"fmt"
	"strings"
	"time"

	sqlfe "repro/internal/sql"
	"repro/internal/value"
)

// This file is the top of the SQL front-end: Exec and ExecScript parse
// statements with internal/sql, bind them against the live catalog and
// lower them onto the native facade API (Select, Insert, Delete,
// Update, CreateTable, CreateIndex, CreateCM, Explain, Advise,
// DiscoverFDs, Commit). Every SQL statement therefore has exactly the semantics of
// the equivalent native call — the equivalence tests in sql_test.go
// assert this statement form by statement form.

// Result is the outcome of one SQL statement. Row-producing statements
// (SELECT, EXPLAIN, ADVISE, SHOW) fill Columns and Rows; mutating
// statements fill Affected and Message.
type Result struct {
	Columns  []string
	Rows     []Row
	Message  string
	Affected int
	Plan     *PlanInfo // EXPLAIN only
}

// ScriptResult pairs one statement of a script with its outcome and
// its execution measurements (the wire protocol and the server's
// slow-query log report them).
type ScriptResult struct {
	Res *Result
	Err error
	// SQL is the statement's verbatim source text, recovered from the
	// parser's token spans.
	SQL string
	// Rows is the number of result rows (mutating statements report 0
	// here; their row count is Res.Affected).
	Rows int
	// PagesRead is the engine-wide disk page-read delta across the
	// statement (per batch group for batched SELECTs) — exact when the
	// script runs alone, approximate under concurrent load.
	PagesRead uint64
	// Elapsed is the statement's wall time. Consecutive SELECTs run as
	// one SelectMany batch (see ExecScript), so each statement of a
	// batch reports the batch group's wall time.
	Elapsed time.Duration
}

// Kind returns the value's dynamic kind.
func (v Value) Kind() Kind {
	switch v.v.K {
	case value.Int:
		return Int
	case value.Float:
		return Float
	default:
		return String
	}
}

// catalogDB adapts DB to the binder's Catalog interface.
type catalogDB struct{ db *DB }

// TableMeta implements sqlfe.Catalog over the live table map.
func (c catalogDB) TableMeta(name string) (sqlfe.TableMeta, bool) {
	t := c.db.Table(name)
	if t == nil {
		return sqlfe.TableMeta{}, false
	}
	sch := t.inner.Schema()
	tm := sqlfe.TableMeta{Name: name, Cols: make([]sqlfe.ColMeta, len(sch.Cols))}
	for i, col := range sch.Cols {
		tm.Cols[i] = sqlfe.ColMeta{Name: col.Name, Kind: col.Kind}
	}
	return tm, true
}

// Tables returns the table names, sorted.
func (db *DB) Tables() []string {
	tables := db.allTables()
	out := make([]string, len(tables))
	for i, t := range tables {
		out[i] = t.Name()
	}
	return out
}

// Exec parses and executes one SQL statement.
func (db *DB) Exec(stmt string) (*Result, error) {
	return db.ExecCtx(nil, stmt)
}

// ExecCtx is Exec bounded by a context: a cancelled or expired ctx
// stops the statement at chunk granularity (see SelectCtx) and the
// statement fails with the context's error. A nil ctx never cancels;
// the configured statement timeout applies either way.
func (db *DB) ExecCtx(ctx context.Context, stmt string) (*Result, error) {
	parsed, err := sqlfe.Parse(stmt)
	if err != nil {
		return nil, err
	}
	return db.execStmt(ctx, parsed)
}

// ExecScript parses a ';'-separated script and executes its statements
// in order. Consecutive SELECT statements run as one SelectMany batch
// across the worker pool, the multi-client fast path the cmserver uses
// for pipelined clients. A parse error fails the whole script (nothing
// executes); execution errors are per-statement and do not stop later
// statements.
func (db *DB) ExecScript(script string) ([]ScriptResult, error) {
	return db.ExecScriptCtx(nil, script)
}

// ExecScriptCtx is ExecScript bounded by a context shared by every
// statement of the script: cancelling ctx fails the running statement
// (and any in-flight batch) with the context's error; later statements
// still execute and fail the same way until the script ends. A nil ctx
// never cancels; the configured statement timeout applies per
// statement either way.
func (db *DB) ExecScriptCtx(ctx context.Context, script string) ([]ScriptResult, error) {
	stmts, texts, err := sqlfe.ParseScriptSpans(script)
	if err != nil {
		return nil, err
	}
	out := make([]ScriptResult, len(stmts))
	for i := 0; i < len(stmts); {
		j := i
		for j < len(stmts) {
			if _, ok := stmts[j].(*sqlfe.SelectStmt); !ok {
				break
			}
			j++
		}
		if j-i > 1 {
			reads0 := db.disk.Stats().Reads
			start := time.Now()
			db.execSelectBatch(ctx, stmts[i:j], out[i:j])
			elapsed := time.Since(start)
			pages := db.disk.Stats().Reads - reads0
			// The batch ran as one SelectMany group: each statement
			// reports the group's wall time and page delta.
			for k := i; k < j; k++ {
				out[k].SQL = texts[k]
				out[k].Elapsed = elapsed
				out[k].PagesRead = pages
				if out[k].Res != nil {
					out[k].Rows = len(out[k].Res.Rows)
				}
			}
			i = j
			continue
		}
		reads0 := db.disk.Stats().Reads
		start := time.Now()
		res, err := db.execStmt(ctx, stmts[i])
		sr := ScriptResult{
			Res:       res,
			Err:       err,
			SQL:       texts[i],
			Elapsed:   time.Since(start),
			PagesRead: db.disk.Stats().Reads - reads0,
		}
		if res != nil {
			sr.Rows = len(res.Rows)
		}
		out[i] = sr
		i++
	}
	return out, nil
}

// execSelectBatch binds a run of SELECTs and evaluates them through
// SelectMany, so they fan out across the worker pool like concurrent
// clients. Each statement lowers through specFromBound — the same
// lowering single-statement execSelect uses — so a batched SELECT
// (projected or not, aggregate, ordered, OR) behaves exactly like its
// unbatched twin; LIMIT flows into QuerySpec.Limit and stops plain
// scans early.
func (db *DB) execSelectBatch(ctx context.Context, stmts []sqlfe.Stmt, out []ScriptResult) {
	cat := catalogDB{db}
	bounds := make([]*sqlfe.BoundSelect, len(stmts))
	specs := make([]QuerySpec, 0, len(stmts))
	specAt := make([]int, len(stmts)) // statement -> index into specs, -1 = not run
	for i, s := range stmts {
		b, err := sqlfe.BindSelect(cat, s.(*sqlfe.SelectStmt))
		if err != nil {
			out[i] = ScriptResult{Err: err}
			specAt[i] = -1
			continue
		}
		bounds[i] = b
		if b.Limit == 0 { // LIMIT 0: nothing to run
			out[i] = ScriptResult{Res: &Result{Columns: b.Cols}}
			specAt[i] = -1
			continue
		}
		specAt[i] = len(specs)
		specs = append(specs, specFromBound(b))
	}
	results := db.SelectManyCtx(ctx, specs)
	for i, b := range bounds {
		if b == nil || specAt[i] < 0 {
			continue
		}
		r := results[specAt[i]]
		if r.Err != nil {
			out[i] = ScriptResult{Err: r.Err}
			continue
		}
		out[i] = ScriptResult{Res: &Result{Columns: b.Cols, Rows: selectShapeRows(b, r.Rows)}}
	}
}

// specFromBound lowers a bound SELECT onto the facade QuerySpec — the
// single lowering shared by Exec, ExecScript batching and EXPLAIN, so
// the three paths cannot drift. Aggregate results come back in
// canonical (GroupBy..., Aggs...) shape; selectShapeRows restores the
// SELECT-list order.
func specFromBound(b *sqlfe.BoundSelect) QuerySpec {
	spec := QuerySpec{Table: b.Table}
	switch len(b.Where) {
	case 0:
	case 1:
		spec.Preds = predsFromBound(b.Where[0])
	default:
		spec.AnyOf = make([][]Pred, len(b.Where))
		for i, conj := range b.Where {
			spec.AnyOf[i] = predsFromBound(conj)
		}
	}
	if b.IsAggregate() {
		for _, a := range b.Aggs {
			spec.Aggs = append(spec.Aggs, Agg{Func: aggFuncFrom(a.Fn), Col: starToEmpty(a)})
		}
		spec.GroupBy = b.GroupBy
		spec.Having = havingFromBound(b.Having)
	} else {
		// The SELECT list pushes down into the scan: rows come back
		// already projected, and the executor decodes only the
		// referenced columns of each surviving tuple.
		spec.Cols = b.Cols
	}
	for _, o := range b.OrderBy {
		spec.OrderBy = append(spec.OrderBy, Order{Col: o.Name, Desc: o.Desc})
	}
	if b.Limit > 0 {
		spec.Limit = b.Limit
	}
	return spec
}

// starToEmpty maps a COUNT(*) aggregate to the facade's empty-column
// form.
func starToEmpty(a sqlfe.BoundAgg) string {
	if a.ColIdx < 0 {
		return ""
	}
	return a.Col
}

// aggFuncFrom maps the front-end aggregate enum onto the facade's.
func aggFuncFrom(fn sqlfe.AggFn) AggFunc {
	switch fn {
	case sqlfe.AggSum:
		return Sum
	case sqlfe.AggAvg:
		return Avg
	case sqlfe.AggMin:
		return Min
	case sqlfe.AggMax:
		return Max
	default:
		return Count
	}
}

// selectShapeRows permutes canonical aggregate rows into SELECT-list
// order via the binder's OutPerm (plain selects pass through: their
// rows are already projected in list order). Hidden ORDER BY aggregates
// sit past every OutPerm index and drop out here.
func selectShapeRows(b *sqlfe.BoundSelect, rows []Row) []Row {
	if !b.IsAggregate() {
		return rows
	}
	out := make([]Row, len(rows))
	for i, r := range rows {
		pr := make(Row, len(b.OutPerm))
		for j, p := range b.OutPerm {
			pr[j] = r[p]
		}
		out[i] = pr
	}
	return out
}

// predsFromBound lowers one bound conjunction to facade predicates.
func predsFromBound(conds []sqlfe.BoundCond) []Pred {
	out := make([]Pred, len(conds))
	for i, c := range conds {
		vals := make([]Value, len(c.Vals))
		for k, v := range c.Vals {
			vals[k] = Value{v}
		}
		switch c.Op {
		case sqlfe.CondEq:
			out[i] = Eq(c.Col, vals[0])
		case sqlfe.CondNe:
			out[i] = Ne(c.Col, vals[0])
		case sqlfe.CondLt:
			out[i] = Lt(c.Col, vals[0])
		case sqlfe.CondLe:
			out[i] = Le(c.Col, vals[0])
		case sqlfe.CondGt:
			out[i] = Gt(c.Col, vals[0])
		case sqlfe.CondGe:
			out[i] = Ge(c.Col, vals[0])
		case sqlfe.CondBetween:
			out[i] = Between(c.Col, vals[0], vals[1])
		default:
			out[i] = In(c.Col, vals...)
		}
	}
	return out
}

// havingFromBound lowers bound HAVING conjuncts onto facade predicates
// whose column names address the aggregate output (a GROUP BY column or
// a canonical aggregate name); planSpec resolves them to output
// positions.
func havingFromBound(conds []sqlfe.BoundHaving) []Pred {
	out := make([]Pred, len(conds))
	for i, c := range conds {
		vals := make([]Value, len(c.Vals))
		for k, v := range c.Vals {
			vals[k] = Value{v}
		}
		switch c.Op {
		case sqlfe.CondEq:
			out[i] = Eq(c.Name, vals[0])
		case sqlfe.CondNe:
			out[i] = Ne(c.Name, vals[0])
		case sqlfe.CondLt:
			out[i] = Lt(c.Name, vals[0])
		case sqlfe.CondLe:
			out[i] = Le(c.Name, vals[0])
		case sqlfe.CondGt:
			out[i] = Gt(c.Name, vals[0])
		case sqlfe.CondGe:
			out[i] = Ge(c.Name, vals[0])
		case sqlfe.CondBetween:
			out[i] = Between(c.Name, vals[0], vals[1])
		default:
			out[i] = In(c.Name, vals...)
		}
	}
	return out
}

// conjFromBound extracts the single conjunction of a bound WHERE, for
// the statement forms (ADVISE, PredsForWhere) that cannot consume a
// disjunction.
func conjFromBound(b *sqlfe.BoundSelect) ([]Pred, error) {
	switch len(b.Where) {
	case 0:
		return nil, nil
	case 1:
		return predsFromBound(b.Where[0]), nil
	default:
		return nil, fmt.Errorf("sql: a conjunctive WHERE is required here (no OR)")
	}
}

// PredsForWhere parses a WHERE conjunction (the text after the WHERE
// keyword) against a table and returns the equivalent native
// predicates. It bridges the two query surfaces: a SQL-described filter
// can drive Select, Delete, Explain, Advise or a QuerySpec batch.
// Disjunctions are rejected — a []Pred is a pure conjunction; OR
// queries go through QuerySpec.AnyOf or full SQL instead.
func (db *DB) PredsForWhere(table, where string) ([]Pred, error) {
	stmt, err := sqlfe.Parse("SELECT * FROM " + table + " WHERE " + where)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqlfe.SelectStmt)
	if !ok || sel.Table != table || sel.Limit != -1 || sel.Distinct ||
		len(sel.GroupBy) > 0 || len(sel.Having) > 0 || len(sel.OrderBy) > 0 {
		return nil, fmt.Errorf("sql: %q is not a WHERE conjunction", where)
	}
	b, err := sqlfe.BindSelect(catalogDB{db}, sel)
	if err != nil {
		return nil, err
	}
	preds, err := conjFromBound(b)
	if err != nil {
		return nil, fmt.Errorf("sql: %q is not a WHERE conjunction", where)
	}
	return preds, nil
}

// sqlTable resolves a statement's target table.
func (db *DB) sqlTable(name string) (*Table, error) {
	t := db.Table(name)
	if t == nil {
		return nil, fmt.Errorf("sql: no table %q", name)
	}
	return t, nil
}

func (db *DB) execStmt(ctx context.Context, stmt sqlfe.Stmt) (*Result, error) {
	cat := catalogDB{db}
	switch s := stmt.(type) {
	case *sqlfe.SelectStmt:
		return db.execSelect(ctx, cat, s)
	case *sqlfe.InsertStmt:
		return db.execInsert(cat, s)
	case *sqlfe.DeleteStmt:
		return db.execDelete(ctx, cat, s)
	case *sqlfe.UpdateStmt:
		return db.execUpdate(ctx, cat, s)
	case *sqlfe.CreateTableStmt:
		return db.execCreateTable(cat, s)
	case *sqlfe.CreateIndexStmt:
		return db.execCreateIndex(cat, s)
	case *sqlfe.CreateCMStmt:
		return db.execCreateCM(cat, s)
	case *sqlfe.ExplainStmt:
		return db.execExplain(ctx, cat, s)
	case *sqlfe.AdviseStmt:
		return db.execAdvise(cat, s)
	case *sqlfe.ShowStmt:
		return db.execShow(s)
	case *sqlfe.SetStmt:
		return db.execSet(s)
	case *sqlfe.CommitStmt:
		return db.execCommit(s)
	default:
		return nil, fmt.Errorf("sql: unsupported statement %T", stmt)
	}
}

// execSet applies a SET statement. The engine's only setting is
// statement_timeout, in milliseconds (0 disables), mirroring
// DB.SetStatementTimeout; wire_chunk_rows is a server session setting
// that the wire layer intercepts before statements reach the engine,
// so the error below names it for clients talking to the engine
// directly.
func (db *DB) execSet(s *sqlfe.SetStmt) (*Result, error) {
	switch s.Name {
	case "statement_timeout":
		if s.Value < 0 {
			return nil, fmt.Errorf("sql: SET statement_timeout takes a non-negative millisecond count")
		}
		db.SetStatementTimeout(time.Duration(s.Value) * time.Millisecond)
		return &Result{Message: fmt.Sprintf("SET statement_timeout = %d", s.Value)}, nil
	default:
		return nil, fmt.Errorf("sql: unknown setting %q (supported: statement_timeout; wire_chunk_rows is a server session setting)", s.Name)
	}
}

func (db *DB) execSelect(ctx context.Context, cat sqlfe.Catalog, s *sqlfe.SelectStmt) (*Result, error) {
	b, err := sqlfe.BindSelect(cat, s)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: b.Cols}
	if b.Limit == 0 {
		return res, nil
	}
	// One lowering for every SELECT form (projection pushdown,
	// aggregates, ORDER BY, OR), shared with the ExecScript batch path.
	rows, err := db.runSpec(ctx, specFromBound(b), db.workers)
	if err != nil {
		return nil, err
	}
	res.Rows = selectShapeRows(b, rows)
	return res, nil
}

func (db *DB) execInsert(cat sqlfe.Catalog, s *sqlfe.InsertStmt) (*Result, error) {
	b, err := sqlfe.BindInsert(cat, s)
	if err != nil {
		return nil, err
	}
	tbl, err := db.sqlTable(b.Table)
	if err != nil {
		return nil, err
	}
	if s.Load {
		rows := make([]Row, len(b.Rows))
		for i, row := range b.Rows {
			rows[i] = externalRow(row)
		}
		if err := tbl.Load(rows); err != nil {
			return nil, err
		}
		return &Result{
			Affected: len(rows),
			Message:  fmt.Sprintf("LOAD %d", len(rows)),
		}, nil
	}
	for i, row := range b.Rows {
		if err := tbl.Insert(externalRow(row)); err != nil {
			return nil, fmt.Errorf("sql: INSERT row %d: %w", i+1, err)
		}
	}
	return &Result{
		Affected: len(b.Rows),
		Message:  fmt.Sprintf("INSERT %d", len(b.Rows)),
	}, nil
}

func (db *DB) execDelete(ctx context.Context, cat sqlfe.Catalog, s *sqlfe.DeleteStmt) (*Result, error) {
	b, err := sqlfe.BindDelete(cat, s)
	if err != nil {
		return nil, err
	}
	tbl, err := db.sqlTable(b.Table)
	if err != nil {
		return nil, err
	}
	n, err := tbl.DeleteCtx(ctx, predsFromBound(b.Where)...)
	if err != nil {
		return nil, err
	}
	return &Result{Affected: n, Message: fmt.Sprintf("DELETE %d", n)}, nil
}

// execUpdate lowers a bound UPDATE onto the same compiled update path
// Table.Update uses, carrying the full WHERE disjunction through so
// UPDATE ... WHERE a OR b plans its access per disjunct like a SELECT.
func (db *DB) execUpdate(ctx context.Context, cat sqlfe.Catalog, s *sqlfe.UpdateStmt) (*Result, error) {
	tbl, sets, anyOf, err := db.boundUpdateParts(cat, s)
	if err != nil {
		return nil, err
	}
	n, err := tbl.runUpdate(ctx, sets, anyOf)
	if err != nil {
		return nil, err
	}
	return &Result{Affected: int(n), Message: fmt.Sprintf("UPDATE %d", n)}, nil
}

// boundUpdateParts binds an UPDATE and lowers it to the facade's
// sets + WHERE disjunction — shared by execUpdate and EXPLAIN
// [ANALYZE] UPDATE, so the explained plan is the executed one.
func (db *DB) boundUpdateParts(cat sqlfe.Catalog, s *sqlfe.UpdateStmt) (*Table, []Set, [][]Pred, error) {
	b, err := sqlfe.BindUpdate(cat, s)
	if err != nil {
		return nil, nil, nil, err
	}
	tbl, err := db.sqlTable(b.Table)
	if err != nil {
		return nil, nil, nil, err
	}
	sets := make([]Set, len(b.Sets))
	for i, bs := range b.Sets {
		sets[i] = Set{Col: bs.Col, Val: Value{bs.Val}}
	}
	anyOf := make([][]Pred, 0, len(b.Where))
	for _, conj := range b.Where {
		anyOf = append(anyOf, predsFromBound(conj))
	}
	if len(anyOf) == 0 {
		anyOf = [][]Pred{nil} // no WHERE: update every row
	}
	return tbl, sets, anyOf, nil
}

func (db *DB) execCreateTable(cat sqlfe.Catalog, s *sqlfe.CreateTableStmt) (*Result, error) {
	if err := sqlfe.BindCreateTable(cat, s); err != nil {
		return nil, err
	}
	spec := TableSpec{
		Name:         s.Name,
		ClusteredBy:  s.ClusteredBy,
		BucketPages:  s.BucketPages,
		BucketTuples: s.BucketTuples,
	}
	for _, c := range s.Cols {
		spec.Columns = append(spec.Columns, Column{Name: c.Name, Kind: kindFromInternal(c.Kind)})
	}
	if _, err := db.CreateTable(spec); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("CREATE TABLE %s", s.Name)}, nil
}

// kindFromInternal maps a value kind back onto the facade enum.
func kindFromInternal(k value.Kind) Kind {
	switch k {
	case value.Int:
		return Int
	case value.Float:
		return Float
	default:
		return String
	}
}

func (db *DB) execCreateIndex(cat sqlfe.Catalog, s *sqlfe.CreateIndexStmt) (*Result, error) {
	if err := sqlfe.BindCreateIndex(cat, s); err != nil {
		return nil, err
	}
	tbl, err := db.sqlTable(s.Table)
	if err != nil {
		return nil, err
	}
	if err := tbl.CreateIndex(s.Name, s.Cols...); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("CREATE INDEX %s", s.Name)}, nil
}

func (db *DB) execCreateCM(cat sqlfe.Catalog, s *sqlfe.CreateCMStmt) (*Result, error) {
	if err := sqlfe.BindCreateCM(cat, s); err != nil {
		return nil, err
	}
	tbl, err := db.sqlTable(s.Table)
	if err != nil {
		return nil, err
	}
	cols := make([]CMColumn, len(s.Cols))
	for i, c := range s.Cols {
		cols[i] = CMColumn{Name: c.Name, Level: c.Level, Width: c.Width, Prefix: c.Prefix}
	}
	if err := tbl.CreateCM(s.Name, cols...); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("CREATE CORRELATION MAP %s", s.Name)}, nil
}

func (db *DB) execExplain(ctx context.Context, cat sqlfe.Catalog, s *sqlfe.ExplainStmt) (*Result, error) {
	if s.Upd != nil {
		return db.execExplainUpdate(ctx, cat, s)
	}
	b, err := sqlfe.BindSelect(cat, s.Sel)
	if err != nil {
		return nil, err
	}
	if s.Analyze {
		tbl, err := db.sqlTable(b.Table)
		if err != nil {
			return nil, err
		}
		info, err := tbl.analyzeSpec(ctx, specFromBound(b))
		if err != nil {
			return nil, err
		}
		return analyzeResult(&info), nil
	}
	info, err := db.ExplainSpec(specFromBound(b))
	if err != nil {
		return nil, err
	}
	return explainResult(&info), nil
}

// execExplainUpdate handles EXPLAIN [ANALYZE] UPDATE. Plain EXPLAIN
// only compiles the update; EXPLAIN ANALYZE executes it — the rows
// really change, and Affected reports how many.
func (db *DB) execExplainUpdate(ctx context.Context, cat sqlfe.Catalog, s *sqlfe.ExplainStmt) (*Result, error) {
	tbl, sets, anyOf, err := db.boundUpdateParts(cat, s.Upd)
	if err != nil {
		return nil, err
	}
	if s.Analyze {
		n, info, err := tbl.analyzeUpdate(ctx, sets, anyOf)
		if err != nil {
			return nil, err
		}
		res := analyzeResult(&info)
		res.Affected = int(n)
		return res, nil
	}
	info, err := tbl.explainUpdate(sets, anyOf)
	if err != nil {
		return nil, err
	}
	return explainResult(&info), nil
}

// explainResult renders a compiled plan for EXPLAIN. One row per plan
// node, bottom-up. The first (access) row keeps the legacy
// method/uses/est_cost/decoded_cols shape — a union node puts "union"
// in the method column and the per-disjunct plans in uses, a cm-agg
// node puts "cm-agg" there with its statistics/sweep summary; the
// remaining rows carry each operator's kind and expressions.
func explainResult(info *PlanInfo) *Result {
	res := &Result{
		Columns: []string{"method", "uses", "est_cost", "decoded_cols"},
		Plan:    info,
	}
	for i, n := range info.Nodes {
		if i == 0 {
			method, uses := info.Method.String(), info.Uses
			if n.Kind == "union" || n.Kind == "cm-agg" {
				method, uses = n.Kind, n.Detail
			}
			res.Rows = append(res.Rows, Row{
				StringVal(method),
				StringVal(uses),
				StringVal(info.EstimatedCost.String()),
				IntVal(int64(info.DecodedCols)),
			})
			continue
		}
		res.Rows = append(res.Rows, Row{
			StringVal(n.Kind),
			StringVal(n.Detail),
			StringVal(""),
			IntVal(0),
		})
	}
	return res
}

// analyzeResult renders an analyzed plan for EXPLAIN ANALYZE: one row
// per operator, bottom-up, the cost model's estimate beside the
// measured work — the paper's estimated-vs-measured comparison
// (Figure 6), live. actual_pages is the disk page-read delta
// attributed to the node (the access node carries the run's I/O; an
// index-only cm-agg answer shows 0); heap-page visits, tuples
// examined and buffer hits total in the summary message.
func analyzeResult(info *PlanInfo) *Result {
	res := &Result{
		Columns: []string{"node", "detail", "est_cost", "actual_rows", "actual_pages", "actual_time"},
		Plan:    info,
	}
	for _, n := range info.Nodes {
		est := ""
		if n.EstCost > 0 {
			est = n.EstCost.String()
		}
		var rows, pages int64
		actualTime := ""
		if n.Actual != nil {
			rows = n.Actual.Rows
			pages = int64(n.Actual.DiskReads)
			actualTime = n.Actual.Elapsed.String()
		}
		res.Rows = append(res.Rows, Row{
			StringVal(n.Kind),
			StringVal(n.Detail),
			StringVal(est),
			IntVal(rows),
			IntVal(pages),
			StringVal(actualTime),
		})
	}
	if a := info.Analyzed; a != nil {
		res.Message = fmt.Sprintf(
			"analyzed: %d rows in %s; %d tuples examined, %d heap pages, %d disk reads, %d buffer hits",
			a.Rows, a.Elapsed, a.TuplesExamined, a.HeapPages, a.DiskReads, a.BufferHits)
		if a.BloomSkips > 0 {
			res.Message += fmt.Sprintf(", %d bloom skips", a.BloomSkips)
		}
	}
	return res
}

func (db *DB) execAdvise(cat sqlfe.Catalog, s *sqlfe.AdviseStmt) (*Result, error) {
	b, err := sqlfe.BindSelect(cat, s.Sel)
	if err != nil {
		return nil, err
	}
	tbl, err := db.sqlTable(b.Table)
	if err != nil {
		return nil, err
	}
	preds, err := conjFromBound(b)
	if err != nil {
		return nil, err
	}
	recs, err := tbl.Advise(s.MaxSlowdownPct, preds...)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Columns: []string{"design", "size_bytes", "slowdown_pct", "est_runtime", "est_btree_bytes"},
		Message: fmt.Sprintf("%d designs within %.4g%% of the B+Tree estimate", len(recs), s.MaxSlowdownPct),
	}
	for _, r := range recs {
		res.Rows = append(res.Rows, Row{
			StringVal(r.Design),
			IntVal(r.SizeBytes),
			FloatVal(r.SlowdownPct),
			StringVal(r.EstRuntime.String()),
			IntVal(r.EstBTreeSz),
		})
	}
	return res, nil
}

func (db *DB) execShow(s *sqlfe.ShowStmt) (*Result, error) {
	switch s.What {
	case sqlfe.ShowTables:
		res := &Result{Columns: []string{"table", "rows", "heap_pages", "indexes", "cms"}}
		for _, t := range db.allTables() {
			res.Rows = append(res.Rows, Row{
				StringVal(t.Name()),
				IntVal(t.RowCount()),
				IntVal(t.HeapPages()),
				IntVal(int64(len(t.Indexes()))),
				IntVal(int64(len(t.CMs()))),
			})
		}
		return res, nil
	case sqlfe.ShowIndexes:
		tbl, err := db.sqlTable(s.Table)
		if err != nil {
			return nil, err
		}
		res := &Result{Columns: []string{"index", "columns", "size_bytes", "entries", "height"}}
		for _, ix := range tbl.Indexes() {
			res.Rows = append(res.Rows, Row{
				StringVal(ix.Name),
				StringVal(joinCols(ix.Columns)),
				IntVal(ix.SizeBytes),
				IntVal(ix.Entries),
				IntVal(int64(ix.Height)),
			})
		}
		return res, nil
	case sqlfe.ShowCMs:
		tbl, err := db.sqlTable(s.Table)
		if err != nil {
			return nil, err
		}
		res := &Result{Columns: []string{"cm", "columns", "size_bytes", "keys", "pairs", "c_per_u", "stats_bytes"}}
		for _, cm := range tbl.CMs() {
			res.Rows = append(res.Rows, Row{
				StringVal(cm.Name),
				StringVal(joinCols(cm.Columns)),
				IntVal(cm.SizeBytes),
				IntVal(int64(cm.Keys)),
				IntVal(cm.Pairs),
				FloatVal(cm.CPerU),
				IntVal(cm.StatsBytes),
			})
		}
		return res, nil
	case sqlfe.ShowStats:
		st := db.Stats()
		return &Result{
			Columns: []string{"reads", "writes", "seeks", "elapsed", "pool_hits", "pool_misses"},
			Rows: []Row{{
				IntVal(int64(st.Reads)),
				IntVal(int64(st.Writes)),
				IntVal(int64(st.Seeks)),
				StringVal(st.Elapsed.String()),
				IntVal(int64(st.PoolHits)),
				IntVal(int64(st.PoolMisses)),
			}},
		}, nil
	case sqlfe.ShowMetrics:
		res := &Result{Columns: []string{"metric", "value"}}
		for _, m := range db.Metrics(s.Like) {
			res.Rows = append(res.Rows, Row{StringVal(m.Name), IntVal(m.Value)})
		}
		return res, nil
	case sqlfe.ShowSoftFDs:
		tbl, err := db.sqlTable(s.Table)
		if err != nil {
			return nil, err
		}
		fds, err := tbl.DiscoverFDs(s.MinStrength, s.Pairs)
		if err != nil {
			return nil, err
		}
		res := &Result{Columns: []string{"determinant", "dependent", "strength"}}
		for _, fd := range fds {
			res.Rows = append(res.Rows, Row{
				StringVal(joinCols(fd.Determinant)),
				StringVal(fd.Dependent),
				FloatVal(fd.Strength),
			})
		}
		return res, nil
	default:
		return nil, fmt.Errorf("sql: unsupported SHOW form")
	}
}

func (db *DB) execCommit(s *sqlfe.CommitStmt) (*Result, error) {
	if s.Table != "" {
		tbl, err := db.sqlTable(s.Table)
		if err != nil {
			return nil, err
		}
		if err := tbl.Commit(); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("COMMIT %s", s.Table)}, nil
	}
	tables := db.allTables() // already in name order
	for _, t := range tables {
		if err := t.Commit(); err != nil {
			return nil, err
		}
	}
	return &Result{Message: fmt.Sprintf("COMMIT %d tables", len(tables))}, nil
}

// joinCols renders a column list for SHOW output.
func joinCols(cols []string) string { return strings.Join(cols, ",") }

// Mixed-workload cache and bloom-probe tests for the PR-9 layers: the
// W-TinyLFU admission filter must keep a hot point-lookup working set
// resident through concurrent full-table sweeps without changing any
// query result, and the ProbeBlooms filters must answer absent-key
// point probes with zero page reads — through churn and through a
// CheckpointCM -> RecoverCM round trip. Named TestCache*/TestBloom* so
// CI's `-race -count 2 -run 'Cache|Bloom|Sketch'` step exercises them.
package repro

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

// stressHotRatio runs the mixed workload — concurrent hot probes racing
// full-table sweeps on a pool far smaller than the table — and returns
// the pool hit ratio of one serial pass over the hot keys afterwards.
// The sweeper always completes one full sweep after the last probe, so
// the final residency reflects the admission policy, not goroutine
// timing: without admission the last sweep flushes the hot set, with
// admission it cannot.
func stressHotRatio(t *testing.T, scanResistant bool) float64 {
	t.Helper()
	const (
		rows      = 24000
		poolPages = 256
		hotKeys   = 32
	)
	db := Open(Config{Workers: 4, BufferPoolPages: poolPages, ScanResistant: scanResistant})
	tbl, err := db.CreateTable(TableSpec{
		Name: "stress",
		Columns: []Column{
			{Name: "c", Kind: Int},
			{Name: "u", Kind: Int},
			{Name: "pad", Kind: String},
		},
		ClusteredBy: []string{"c"},
		BucketPages: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	pad := make([]byte, 300)
	for i := range pad {
		pad[i] = 'x'
	}
	data := make([]Row, rows)
	for i := range data {
		data[i] = Row{IntVal(int64(i)), IntVal(int64(i)), StringVal(string(pad))}
	}
	if err := tbl.Load(data); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("u_ix", "u"); err != nil {
		t.Fatal(err)
	}
	if pages := tbl.HeapPages(); pages <= poolPages*2 {
		t.Fatalf("table spans %d pages; need well over the %d-frame pool", pages, poolPages)
	}
	if err := db.ColdCache(); err != nil {
		t.Fatal(err)
	}

	hot := make([]int64, hotKeys)
	for i := range hot {
		hot[i] = int64(i * rows / hotKeys)
	}
	probe := func(key int64) (int, error) {
		n := 0
		err := tbl.SelectVia(PipelinedIndexScan, func(Row) bool { n++; return true },
			Eq("u", IntVal(key)))
		return n, err
	}
	for round := 0; round < 16; round++ {
		for _, k := range hot {
			if n, err := probe(k); err != nil || n != 1 {
				t.Fatalf("warm probe key=%d: n=%d err=%v", k, n, err)
			}
		}
	}

	// The race: four probers doing fixed point-lookup work against a
	// sweeper that keeps scanning until they finish, then sweeps once
	// more. Every result is asserted exact — no lost or phantom rows.
	var probersDone atomic.Bool
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := hot[(seed+i)%len(hot)]
				if n, err := probe(k); err != nil {
					fail(err)
					return
				} else if n != 1 {
					fail(fmt.Errorf("hot probe key=%d saw %d rows, want 1", k, n))
					return
				}
			}
		}(p * 7)
	}
	sweepDone := make(chan struct{})
	go func() {
		defer close(sweepDone)
		sweep := func() bool {
			n := 0
			if err := tbl.SelectVia(TableScan, func(Row) bool { n++; return true }); err != nil {
				fail(err)
				return false
			}
			if n != rows {
				fail(fmt.Errorf("sweep saw %d rows, want %d", n, rows))
				return false
			}
			return true
		}
		for !probersDone.Load() {
			if !sweep() {
				return
			}
		}
		sweep() // guaranteed post-probe sweep: the flush admission must resist
	}()
	wg.Wait()
	probersDone.Store(true)
	<-sweepDone
	errMu.Lock()
	err = firstErr
	errMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if pinned := db.pool.PinnedFrames(); pinned != 0 {
		t.Fatalf("%d frames still pinned after the stress workload", pinned)
	}

	// Residency census: one serial pass over the hot keys, hit ratio
	// from the pool-stat deltas.
	before := db.pool.Stats()
	for _, k := range hot {
		if n, err := probe(k); err != nil || n != 1 {
			t.Fatalf("census probe key=%d: n=%d err=%v", k, n, err)
		}
	}
	after := db.pool.Stats()
	hits := after.Hits - before.Hits
	misses := after.Misses - before.Misses
	if hits+misses == 0 {
		t.Fatal("census probes touched no pages")
	}
	return float64(hits) / float64(hits+misses)
}

// TestCacheScanResistantStress races hot point lookups against repeated
// full-table scans under the race detector: results stay exact, no
// frame leaks, and the admission filter keeps the hot working set's hit
// ratio strictly above the no-admission baseline on the same cold
// 256-page pool.
func TestCacheScanResistantStress(t *testing.T) {
	base := stressHotRatio(t, false)
	adm := stressHotRatio(t, true)
	t.Logf("hot-set hit ratio after sweeps: baseline %.3f, scan-resistant %.3f", base, adm)
	if adm <= base {
		t.Fatalf("scan-resistant hot hit ratio %.3f not above the no-admission baseline %.3f", adm, base)
	}
}

// bloomEquivRows loads the equivalence fixture into a DB with the given
// knobs and returns, per access method and query, the sorted row
// fingerprints.
func bloomEquivRows(t *testing.T, scanResistant, probeBlooms bool, workers int) map[string][]string {
	t.Helper()
	const rows = 5000
	db := Open(Config{Workers: workers, BufferPoolPages: 64,
		ScanResistant: scanResistant, ProbeBlooms: probeBlooms})
	tbl, err := db.CreateTable(TableSpec{
		Name:        "equiv",
		Columns:     []Column{{Name: "c", Kind: Int}, {Name: "u", Kind: Int}, {Name: "s", Kind: String}},
		ClusteredBy: []string{"c"},
		BucketPages: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]Row, rows)
	for i := range data {
		data[i] = Row{IntVal(int64(i)), IntVal(int64(i % 97)), StringVal(fmt.Sprintf("s-%03d", i%53))}
	}
	if err := tbl.Load(data); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("u_ix", "u"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateCM("u_cm", CMColumn{Name: "u"}); err != nil {
		t.Fatal(err)
	}
	if err := db.ColdCache(); err != nil {
		t.Fatal(err)
	}

	queries := map[string][]Pred{
		"point":        {Eq("u", IntVal(41))},
		"in":           {In("u", IntVal(3), IntVal(88), IntVal(500))},
		"absent-point": {Eq("u", IntVal(1234))},
		"range":        {Ge("u", IntVal(90))},
	}
	methods := map[string]AccessMethod{
		"table": TableScan, "sorted": SortedIndexScan,
		"pipelined": PipelinedIndexScan, "cm": CMScan,
	}
	out := make(map[string][]string)
	for qn, preds := range queries {
		for mn, m := range methods {
			var got []string
			if err := tbl.SelectVia(m, func(r Row) bool {
				got = append(got, fmt.Sprintf("%v", r))
				return true
			}, preds...); err != nil {
				t.Fatalf("%s/%s: %v", mn, qn, err)
			}
			sort.Strings(got)
			out[mn+"/"+qn] = got
		}
	}
	return out
}

// TestBloomEquivalenceAccessMethods checks that admission and blooms
// never change result bytes: every access method returns the identical
// row set with each knob on or off, serial and with workers=8.
func TestBloomEquivalenceAccessMethods(t *testing.T) {
	baseline := bloomEquivRows(t, false, false, 1)
	for key, rows := range baseline {
		if len(rows) == 0 && key[len(key)-len("absent-point"):] != "absent-point" {
			t.Fatalf("baseline %s returned no rows — fixture broken", key)
		}
	}
	for _, workers := range []int{1, 8} {
		for _, sr := range []bool{false, true} {
			for _, pb := range []bool{false, true} {
				if workers == 1 && !sr && !pb {
					continue
				}
				got := bloomEquivRows(t, sr, pb, workers)
				for key, want := range baseline {
					g := got[key]
					if len(g) != len(want) {
						t.Fatalf("workers=%d scanResistant=%v probeBlooms=%v %s: %d rows, baseline %d",
							workers, sr, pb, key, len(g), len(want))
					}
					for i := range want {
						if g[i] != want[i] {
							t.Fatalf("workers=%d scanResistant=%v probeBlooms=%v %s row %d: %q != baseline %q",
								workers, sr, pb, key, i, g[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestBloomChurnAndCheckpointRoundTrip drives insert/delete/update
// churn through a ProbeBlooms table and checks the index and CM blooms
// stay consistent (present keys always found, fully-retracted keys
// pruned with zero page reads), then round-trips the CM through
// CheckpointCM -> RecoverCM and asserts a negative probe through the
// recovered CM still reads zero pages from a cold cache.
func TestBloomChurnAndCheckpointRoundTrip(t *testing.T) {
	const rows = 2000
	db := Open(Config{Workers: 2, BufferPoolPages: 128, ProbeBlooms: true})
	tbl, err := db.CreateTable(TableSpec{
		Name:        "churn",
		Columns:     []Column{{Name: "c", Kind: Int}, {Name: "u", Kind: Int}},
		ClusteredBy: []string{"c"},
		BucketPages: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]Row, rows)
	for i := range data {
		data[i] = Row{IntVal(int64(i)), IntVal(int64(i % 40))}
	}
	if err := tbl.Load(data); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("u_ix", "u"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateCM("u_cm", CMColumn{Name: "u"}); err != nil {
		t.Fatal(err)
	}

	countVia := func(m AccessMethod, u int64) int {
		n := 0
		if err := tbl.SelectVia(m, func(Row) bool { n++; return true }, Eq("u", IntVal(u))); err != nil {
			t.Fatalf("count via %v u=%d: %v", m, u, err)
		}
		return n
	}
	countCM := func(u int64) int {
		n := 0
		if err := tbl.SelectViaCM("u_cm", func(Row) bool { n++; return true }, Eq("u", IntVal(u))); err != nil {
			t.Fatalf("count via cm u=%d: %v", u, err)
		}
		return n
	}
	check := func(stage string) {
		t.Helper()
		for u := int64(0); u < 120; u++ {
			want := countVia(TableScan, u)
			if got := countVia(PipelinedIndexScan, u); got != want {
				t.Fatalf("%s: index probe u=%d saw %d rows, table scan %d", stage, u, got, want)
			}
			if got := countCM(u); got != want {
				t.Fatalf("%s: cm probe u=%d saw %d rows, table scan %d", stage, u, got, want)
			}
		}
	}
	check("after load")

	// Churn: new u values appear, one u value is fully retracted, and
	// updates move rows between u values — the bloom must follow
	// through the Algorithm-1 retraction hooks.
	for i := 0; i < 30; i++ {
		if err := tbl.Insert(Row{IntVal(int64(rows + i)), IntVal(int64(100 + i%5))}); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := tbl.Delete(Eq("u", IntVal(17))); err != nil || n != rows/40 {
		t.Fatalf("delete u=17: n=%d err=%v, want %d", n, err, rows/40)
	}
	if n, err := tbl.Update([]Set{{Col: "u", Val: IntVal(77)}}, Eq("u", IntVal(23))); err != nil || n != rows/40 {
		t.Fatalf("update u=23->77: n=%d err=%v, want %d", n, err, rows/40)
	}
	check("after churn")

	// The fully-retracted key and a never-present key must now be
	// pruned without touching a page.
	if err := db.ColdCache(); err != nil {
		t.Fatal(err)
	}
	for _, absent := range []int64{17, 23, 5000} {
		before := db.Stats().Reads
		if n := countVia(PipelinedIndexScan, absent); n != 0 {
			t.Fatalf("index probe for absent u=%d saw %d rows", absent, n)
		}
		if n := countCM(absent); n != 0 {
			t.Fatalf("cm probe for absent u=%d saw %d rows", absent, n)
		}
		if reads := db.Stats().Reads - before; reads != 0 {
			t.Fatalf("absent-key probes for u=%d read %d pages, want 0", absent, reads)
		}
	}

	// Checkpoint, more churn, recover under a new name, then a cold
	// negative probe through the recovered CM: still zero reads, and
	// the recovered bloom (not the live one) must answer it.
	live := tbl.inner.CMOn(1)
	if live == nil {
		t.Fatal("live CM missing")
	}
	if !live.BloomEnabled() {
		t.Fatal("live CM has no bloom under ProbeBlooms")
	}
	var checkpoint bytes.Buffer
	lsn, err := tbl.inner.CheckpointCM(live, &checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := tbl.Insert(Row{IntVal(int64(rows + 100 + i)), IntVal(int64(200 + i))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tbl.Delete(Eq("u", IntVal(31))); err != nil {
		t.Fatal(err)
	}
	spec := live.Spec()
	spec.Name = "u_cm_rec"
	tbl.inner.LockWrite()
	rec, err := tbl.inner.RecoverCM(spec, &checkpoint, lsn)
	tbl.inner.UnlockWrite()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.BloomEnabled() {
		t.Fatal("recovered CM has no bloom")
	}
	if err := db.ColdCache(); err != nil {
		t.Fatal(err)
	}
	countRec := func(u int64) int {
		n := 0
		if err := tbl.SelectViaCM("u_cm_rec", func(Row) bool { n++; return true }, Eq("u", IntVal(u))); err != nil {
			t.Fatalf("count via recovered cm u=%d: %v", u, err)
		}
		return n
	}
	for u := int64(0); u < 250; u++ {
		want := countVia(TableScan, u)
		if got := countRec(u); got != want {
			t.Fatalf("recovered cm u=%d saw %d rows, table scan %d", u, got, want)
		}
	}
	if err := db.ColdCache(); err != nil {
		t.Fatal(err)
	}
	skipsBefore := rec.BloomSkips()
	readsBefore := db.Stats().Reads
	for _, absent := range []int64{17, 31, 9999} {
		if n := countRec(absent); n != 0 {
			t.Fatalf("recovered cm probe for absent u=%d saw %d rows", absent, n)
		}
	}
	if reads := db.Stats().Reads - readsBefore; reads != 0 {
		t.Fatalf("absent-key probes through recovered CM read %d pages, want 0", reads)
	}
	if rec.BloomSkips() == skipsBefore {
		t.Fatal("recovered CM's bloom answered no probe — the serialized bloom was not adopted")
	}
}

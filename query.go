package repro

import (
	"context"
	"fmt"
	"time"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/heap"
	"repro/internal/value"
)

// Pred is a predicate over a named column. Build with Eq, Ne, In,
// Between, Ge, Le, Gt or Lt; predicates combine conjunctively in Select.
type Pred struct {
	col   string
	build func(col int) exec.Pred
}

// Eq matches rows whose column equals v.
func Eq(col string, v Value) Pred {
	return Pred{col: col, build: func(c int) exec.Pred { return exec.Eq(c, v.v) }}
}

// In matches rows whose column equals any of vals.
func In(col string, vals ...Value) Pred {
	return Pred{col: col, build: func(c int) exec.Pred {
		iv := make([]value.Value, len(vals))
		for i, v := range vals {
			iv[i] = v.v
		}
		return exec.In(c, iv...)
	}}
}

// Between matches rows whose column lies in [lo, hi] inclusive.
func Between(col string, lo, hi Value) Pred {
	return Pred{col: col, build: func(c int) exec.Pred { return exec.Between(c, lo.v, hi.v) }}
}

// Ge matches rows whose column is >= lo.
func Ge(col string, lo Value) Pred {
	return Pred{col: col, build: func(c int) exec.Pred { return exec.Ge(c, lo.v) }}
}

// Le matches rows whose column is <= hi.
func Le(col string, hi Value) Pred {
	return Pred{col: col, build: func(c int) exec.Pred { return exec.Le(c, hi.v) }}
}

// Lt matches rows whose column is strictly < hi. Like Between/Ge/Le it
// rides index and CM probes (the boundary value is read and re-filtered
// out), so `a < x` and `a <= x` cost within one value of each other.
func Lt(col string, hi Value) Pred {
	return Pred{col: col, build: func(c int) exec.Pred { return exec.Lt(c, hi.v) }}
}

// Gt matches rows whose column is strictly > lo.
func Gt(col string, lo Value) Pred {
	return Pred{col: col, build: func(c int) exec.Pred { return exec.Gt(c, lo.v) }}
}

// Ne matches rows whose column differs from v. Ne never drives an index
// or CM probe (it would cover the whole domain); access paths evaluate it
// by re-filtering, and a query whose only predicates are Ne plans as a
// table scan.
func Ne(col string, v Value) Pred {
	return Pred{col: col, build: func(c int) exec.Pred { return exec.Ne(c, v.v) }}
}

func buildQuery(t *Table, preds []Pred) (exec.Query, error) {
	q := exec.Query{}
	for _, p := range preds {
		ci, err := t.colIndex(p.col)
		if err != nil {
			return exec.Query{}, err
		}
		q.Preds = append(q.Preds, p.build(ci))
	}
	return q, nil
}

// AccessMethod selects a query access path explicitly.
type AccessMethod int

// The access paths of the paper's comparison.
const (
	// Auto lets the correlation-aware cost model choose.
	Auto AccessMethod = iota
	// TableScan forces a full sequential scan.
	TableScan
	// SortedIndexScan forces a bitmap-style secondary index scan (RIDs
	// sorted before the heap sweep).
	SortedIndexScan
	// PipelinedIndexScan forces per-tuple index probing.
	PipelinedIndexScan
	// CMScan forces the correlation-map path.
	CMScan
)

// String names the method.
func (m AccessMethod) String() string {
	switch m {
	case Auto:
		return "auto"
	case TableScan:
		return "table-scan"
	case SortedIndexScan:
		return "sorted-index-scan"
	case PipelinedIndexScan:
		return "pipelined-index-scan"
	case CMScan:
		return "cm-scan"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Select streams the rows matching all predicates to fn, choosing the
// access path with the cost model. Return false from fn to stop early.
//
// Select holds the table latch shared for the whole query, so concurrent
// Selects run in parallel and a racing Insert/Delete/Commit waits;
// result rows reflect one consistent table state. Scans fan out across
// the DB's worker pool (Config.Workers); parallel scans still emit rows
// in physical order.
func (t *Table) Select(fn func(Row) bool, preds ...Pred) error {
	return t.SelectVia(Auto, fn, preds...)
}

// SelectCtx is Select bounded by a context: every access method polls
// ctx at chunk granularity (serial scans per heap page, parallel
// workers per chunk), so a cancelled or expired statement stops within
// one chunk's worth of pages and returns the context's error. A nil
// ctx never cancels; the configured statement timeout applies either
// way.
func (t *Table) SelectCtx(ctx context.Context, fn func(Row) bool, preds ...Pred) error {
	return t.runTree(ctx, QuerySpec{Table: t.Name(), Preds: preds}, t.db.workers,
		func(r value.Row) bool { return fn(externalRow(r)) })
}

// SelectVia is Select with an explicit access method. SortedIndexScan,
// PipelinedIndexScan and CMScan use the first applicable index or CM
// (one whose leading column — any column, for CMs — is predicated).
func (t *Table) SelectVia(method AccessMethod, fn func(Row) bool, preds ...Pred) error {
	return t.runTree(nil, QuerySpec{Table: t.Name(), Via: method, Preds: preds}, t.db.workers,
		func(r value.Row) bool { return fn(externalRow(r)) })
}

// SelectProject is Select with projection pushdown: only the named
// columns reach fn, in the given order, and the executor decodes just
// those columns (plus predicated ones, for filtering) from each
// surviving tuple — unreferenced columns are never materialized. The
// rows fn receives have arity len(cols).
func (t *Table) SelectProject(cols []string, fn func(Row) bool, preds ...Pred) error {
	return t.SelectProjectVia(Auto, cols, fn, preds...)
}

// SelectProjectVia is SelectProject with an explicit access method.
func (t *Table) SelectProjectVia(method AccessMethod, cols []string, fn func(Row) bool, preds ...Pred) error {
	return t.runTree(nil, QuerySpec{Table: t.Name(), Via: method, Preds: preds, Cols: cols}, t.db.workers,
		func(r value.Row) bool { return fn(externalRow(r)) })
}

// projIndices resolves projection column names to schema positions.
func (t *Table) projIndices(cols []string) ([]int, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("repro: projection needs at least one column")
	}
	proj := make([]int, len(cols))
	for i, c := range cols {
		ci, err := t.colIndex(c)
		if err != nil {
			return nil, err
		}
		proj[i] = ci
	}
	return proj, nil
}

// SelectViaCM evaluates the predicates through the named correlation
// map, for benchmarking specific designs against each other.
func (t *Table) SelectViaCM(cmName string, fn func(Row) bool, preds ...Pred) error {
	q, err := buildQuery(t, preds)
	if err != nil {
		return err
	}
	t.inner.RLock()
	defer t.inner.RUnlock()
	for _, cm := range t.inner.CMs() {
		if cm.Spec().Name == cmName {
			return exec.ParallelCMScan(t.inner, cm, q, t.db.workers, func(_ heap.RID, row value.Row) bool {
				return fn(externalRow(row))
			})
		}
	}
	return fmt.Errorf("repro: table %s has no CM %q", t.inner.Name(), cmName)
}

// QuerySpec names one query of a batch: the target table, the access
// method (Auto lets the cost model choose) and the predicates. A positive
// Limit caps the result rows and stops the scan early through the
// executor's cancellation path, so a LIMIT-style batch query does not pay
// for a full sweep (with OrderBy the limit instead bounds the top-K
// heap: every matching row is still scanned, but only K are retained).
//
// A spec's WHERE clause is Preds AND (AnyOf[0] OR AnyOf[1] OR ...):
// Preds is a conjunction applied to every row, and each AnyOf entry is
// one further conjunctive alternative. OR queries plan each disjunct's
// access path independently and union the probed RIDs, falling back to
// one filtered scan when a disjunct cannot probe; they require Via ==
// Auto.
//
// Aggs (optionally with GroupBy) turns the spec into an aggregate
// query evaluated by DB.SelectAggregate or SelectMany: result rows are
// the GroupBy columns in order followed by the aggregates in order
// (groups sorted by group key), Cols is ignored, and OrderBy names
// resolve against that output — a GroupBy column or a canonical
// aggregate name like "avg(salary)" / "count(*)".
type QuerySpec struct {
	Table string
	Via   AccessMethod
	Preds []Pred
	// AnyOf holds the OR disjuncts, each a conjunction ANDed with Preds.
	AnyOf [][]Pred
	Limit int // 0 = unlimited
	// Cols, when non-empty, pushes the projection into the scan: result
	// rows contain exactly these columns in this order, and the executor
	// decodes only them (plus predicated columns) from surviving tuples.
	Cols []string
	// Aggs lists aggregate expressions; see AggFunc and Agg.
	Aggs []Agg
	// GroupBy names the grouping columns for aggregate specs.
	GroupBy []string
	// Having filters aggregate output rows before OrderBy and Limit.
	// Each predicate's column names an output column — a GroupBy column
	// or a canonical aggregate name like "count(*)" — and its value must
	// match that output's kind (COUNT and integer SUM are Int, AVG is
	// Float, MIN/MAX follow the column). Only aggregate specs accept it.
	Having []Pred
	// OrderBy sorts the result rows; see Order.
	OrderBy []Order
}

// isAggregate reports whether the spec computes aggregates or groups.
func (spec QuerySpec) isAggregate() bool { return len(spec.Aggs) > 0 || len(spec.GroupBy) > 0 }

// QueryResult is the outcome of one query of a batch: the matching rows,
// or the error that stopped it.
type QueryResult struct {
	Rows []Row
	Err  error
}

// SelectMany evaluates the queries concurrently across the DB's worker
// pool (Config.Workers), modeling a multi-client workload: each query
// takes its table's latch shared, so the batch runs in parallel with
// other readers and serializes only against writers. Results are
// returned positionally. Individual queries run with serial scans —
// the fan-out here is across queries, not within them. Every QuerySpec
// form is accepted, including OR (AnyOf), aggregates (Aggs/GroupBy) and
// ORDER BY; each evaluates exactly as its single-query equivalent
// (runSpec is shared), so batched and unbatched execution cannot drift.
func (db *DB) SelectMany(specs []QuerySpec) []QueryResult {
	return db.SelectManyCtx(nil, specs)
}

// SelectManyCtx is SelectMany bounded by a context shared across the
// whole batch: cancelling ctx stops every in-flight query of the batch
// (each fails with the context's error) and queries not yet started
// fail immediately. A nil ctx never cancels; the configured statement
// timeout still applies to each query individually.
func (db *DB) SelectManyCtx(ctx context.Context, specs []QuerySpec) []QueryResult {
	ctxs := make([]context.Context, len(specs))
	for i := range ctxs {
		ctxs[i] = ctx
	}
	return db.selectManyEach(ctxs, specs)
}

// PlanNode is one operator of an explained plan, bottom-up: an access
// node first ("scan", "union" or "cm-agg"), then "filter", "project",
// "agg", "having", "sort", "limit" and "update" as the query uses
// them. Detail is a human-readable summary (the method and structure
// for access nodes, the expressions elsewhere). The chain is exactly
// what execution runs: filter and project are fused into the access
// path's compiled tuple filter and projection pushdown at run time.
type PlanNode struct {
	Kind   string
	Detail string
	// EstCost is the cost model's prediction for the node (access and
	// cm-agg nodes; zero elsewhere and for forced methods).
	EstCost time.Duration
	// Actual holds the node's measured execution after an analyzed run
	// (ExplainAnalyzeSpec, or SQL's EXPLAIN ANALYZE); nil after a plain
	// EXPLAIN.
	Actual *NodeActuals
}

// NodeActuals is one operator's measured execution from an analyzed
// run — the live counterpart of the cost model's estimates (the
// paper's Figure 6 estimated-vs-measured comparison, per node).
type NodeActuals struct {
	// Rows is the node's output cardinality (rows written, for the
	// update node).
	Rows int64
	// TuplesIn is the node's input cardinality where it differs from
	// Rows: tuples examined for access/filter nodes, rows folded for
	// agg, rows sorted for sort. Zero for pure pass-through nodes.
	TuplesIn int64
	// HeapPages counts the query's own heap page visits (access nodes;
	// exact, from the executors' per-chunk tallies).
	HeapPages int64
	// DiskReads and BufferHits are engine-wide deltas captured around
	// the run and attributed to the access node — exact when the
	// statement runs alone, approximate under concurrent load.
	DiskReads  uint64
	BufferHits uint64
	// Elapsed is the node's phase wall time. Streaming plans fuse
	// filter/project/agg into the access sweep, so the shared phase
	// reports on the access node and fused nodes show zero.
	Elapsed time.Duration
	// BloomSkips counts point probes a bloom filter pruned for this
	// statement (access nodes only; exact, counted at the probe
	// sites). Zero without Config.ProbeBlooms.
	BloomSkips int64
}

// RunActuals summarizes an analyzed run: result cardinality, wall
// time and the physical-work totals behind the per-node actuals.
type RunActuals struct {
	Rows           int64
	Elapsed        time.Duration
	DiskReads      uint64
	BufferHits     uint64
	BufferMisses   uint64
	TuplesExamined int64
	HeapPages      int64
	// BloomSkips totals the point probes bloom filters pruned during
	// the run (index and CM blooms combined).
	BloomSkips int64
}

// PlanInfo describes the plan the engine would execute. Method, Uses
// and EstimatedCost summarize the access path (for an OR union plan or
// a cm-agg plan, Method is Auto and Nodes[0] is authoritative; a cm-agg
// plan puts the CM name in Uses); Nodes lists the full operator tree.
type PlanInfo struct {
	Method        AccessMethod
	EstimatedCost time.Duration
	Uses          string // name of the index or CM used, if any
	// DecodedCols counts the columns the executor materializes per
	// surviving row under the requested projection (predicated columns
	// included); TotalCols is the schema arity. DecodedCols < TotalCols
	// means projection pushdown engaged, and 0 means the plan is
	// index-only (a pure cm-agg answer never touches the heap).
	DecodedCols int
	TotalCols   int
	// Nodes is the operator tree bottom-up; see PlanNode.
	Nodes []PlanNode
	// Analyzed summarizes the measured run after ExplainAnalyzeSpec or
	// EXPLAIN ANALYZE; nil after a plain EXPLAIN.
	Analyzed *RunActuals
}

// Explain returns the plan the cost model picks for the predicates,
// with every column materialized (no projection).
func (t *Table) Explain(preds ...Pred) (PlanInfo, error) {
	return t.ExplainProject(nil, preds...)
}

// ExplainProject is Explain under a projection: DecodedCols reflects
// what a SelectProject with the same columns would actually decode per
// surviving row.
func (t *Table) ExplainProject(cols []string, preds ...Pred) (PlanInfo, error) {
	return t.explainSpec(QuerySpec{Table: t.Name(), Preds: preds, Cols: cols})
}

// Recommendation is one CM design proposed by the advisor.
type Recommendation struct {
	Design      string
	Columns     []string
	Levels      []int     // 2^Level values per bucket, 0 = unbucketed
	Widths      []float64 // concrete numeric bucket widths (0 = none)
	Prefixes    []int     // string prefix lengths (0 = none)
	SizeBytes   int64
	SlowdownPct float64
	EstRuntime  time.Duration
	EstBTreeSz  int64
}

// Advise runs the CM Advisor for a training query: it samples the table,
// enumerates composite designs and bucketings (2^2..2^16 buckets), and
// returns the designs within maxSlowdownPct of the estimated secondary
// B+Tree runtime, smallest first — the first element is the paper's
// recommendation.
func (t *Table) Advise(maxSlowdownPct float64, preds ...Pred) ([]Recommendation, error) {
	q, err := buildQuery(t, preds)
	if err != nil {
		return nil, err
	}
	// Only indexable predicates can ever be served by a CM (Ne plans as
	// a table scan), so advising on them would recommend designs whose
	// estimated probes can never run.
	indexable := q.Preds[:0:0]
	for _, p := range q.Preds {
		if p.Indexable() {
			indexable = append(indexable, p)
		}
	}
	if len(indexable) == 0 {
		return nil, fmt.Errorf("repro: no indexable predicate to advise on in %s", q.String())
	}
	q.Preds = indexable
	t.inner.RLock()
	defer t.inner.RUnlock()
	adv, err := advisor.New(t.inner, advisor.Config{})
	if err != nil {
		return nil, err
	}
	cands, err := adv.Recommend(q, maxSlowdownPct)
	if err != nil {
		return nil, err
	}
	sch := t.inner.Schema()
	out := make([]Recommendation, 0, len(cands))
	for _, c := range cands {
		rec := Recommendation{
			Design:      c.Describe(sch),
			Levels:      c.Levels,
			Widths:      make([]float64, len(c.Bucketers)),
			Prefixes:    make([]int, len(c.Bucketers)),
			SizeBytes:   c.EstSize,
			SlowdownPct: c.SlowdownPct,
			EstRuntime:  c.EstRuntime,
			EstBTreeSz:  c.EstBTreeSz,
		}
		for i, b := range c.Bucketers {
			switch bb := b.(type) {
			case core.IntWidth:
				rec.Widths[i] = float64(bb.Width)
			case core.FloatWidth:
				rec.Widths[i] = bb.Width
			case core.StringPrefix:
				rec.Prefixes[i] = bb.Len
			}
		}
		for _, col := range c.Cols {
			rec.Columns = append(rec.Columns, sch.Cols[col].Name)
		}
		out = append(out, rec)
	}
	return out, nil
}

// CreateRecommended materializes an advisor recommendation as a CM.
func (t *Table) CreateRecommended(name string, rec Recommendation) error {
	cols := make([]CMColumn, len(rec.Columns))
	for i, c := range rec.Columns {
		cols[i] = CMColumn{Name: c, Width: rec.Widths[i], Prefix: rec.Prefixes[i]}
	}
	return t.CreateCM(name, cols...)
}

// SoftFD is a discovered approximate functional dependency between
// columns.
type SoftFD struct {
	Determinant []string
	Dependent   string
	Strength    float64 // D(det)/D(det,dep); 1 = hard FD
}

// DiscoverFDs searches the named columns (all columns when empty) for
// soft functional dependencies at least minStrength strong, including
// two-attribute determinants when pairs is true.
func (t *Table) DiscoverFDs(minStrength float64, pairs bool, cols ...string) ([]SoftFD, error) {
	sch := t.inner.Schema()
	var idxs []int
	if len(cols) == 0 {
		for i := range sch.Cols {
			idxs = append(idxs, i)
		}
	} else {
		for _, c := range cols {
			ci, err := t.colIndex(c)
			if err != nil {
				return nil, err
			}
			idxs = append(idxs, ci)
		}
	}
	t.inner.RLock()
	defer t.inner.RUnlock()
	adv, err := advisor.New(t.inner, advisor.Config{})
	if err != nil {
		return nil, err
	}
	fds := adv.DiscoverFDs(idxs, minStrength, pairs)
	out := make([]SoftFD, 0, len(fds))
	for _, fd := range fds {
		sfd := SoftFD{Dependent: sch.Cols[fd.Dependent].Name, Strength: fd.Strength}
		for _, d := range fd.Determinant {
			sfd.Determinant = append(sfd.Determinant, sch.Cols[d].Name)
		}
		out = append(out, sfd)
	}
	return out, nil
}

// PairStats returns the paper's Table 2 correlation statistics between
// the named columns and the table's clustering attribute.
type PairStatsInfo struct {
	DistinctU  int64   // D(Au)
	DistinctUC int64   // D(Au, Ac)
	CPerU      float64 // D(Au,Ac)/D(Au)
	UTups      float64
	CTups      float64
}

// PairStats computes exact pair statistics with one scan.
func (t *Table) PairStats(cols ...string) (PairStatsInfo, error) {
	idxs := make([]int, len(cols))
	for i, c := range cols {
		ci, err := t.colIndex(c)
		if err != nil {
			return PairStatsInfo{}, err
		}
		idxs[i] = ci
	}
	t.inner.RLock()
	defer t.inner.RUnlock()
	pc, err := t.inner.PairStats(idxs)
	if err != nil {
		return PairStatsInfo{}, err
	}
	return PairStatsInfo{
		DistinctU:  pc.DU(),
		DistinctUC: pc.DUC(),
		CPerU:      pc.CPerU(),
		UTups:      pc.UTups(),
		CTups:      pc.CTups(),
	}, nil
}

// VarBucketBounds derives a variable-width bucketing for a column from a
// table sample — the paper's future-work extension for skewed value
// distributions (Section 8). Adjacent values are merged while their
// clustered buckets fit within maxCBucketsPerBucket; the returned bounds
// plug into CreateVarCM.
func (t *Table) VarBucketBounds(col string, maxCBucketsPerBucket int) ([]Value, error) {
	ci, err := t.colIndex(col)
	if err != nil {
		return nil, err
	}
	t.inner.RLock()
	defer t.inner.RUnlock()
	adv, err := advisor.New(t.inner, advisor.Config{})
	if err != nil {
		return nil, err
	}
	vb := adv.VariableBucketing(ci, maxCBucketsPerBucket)
	out := make([]Value, len(vb.Bounds))
	for i, b := range vb.Bounds {
		out[i] = Value{b}
	}
	return out, nil
}

// CreateVarCM builds a single-column CM using an explicit variable-width
// bucketing (lower bounds ascending), typically from VarBucketBounds.
func (t *Table) CreateVarCM(name, col string, bounds []Value) error {
	ci, err := t.colIndex(col)
	if err != nil {
		return err
	}
	vb := core.VarWidth{Bounds: make([]value.Value, len(bounds))}
	for i, b := range bounds {
		vb.Bounds[i] = b.v
	}
	t.inner.Lock()
	defer t.inner.Unlock()
	_, err = t.inner.CreateCM(core.Spec{
		Name:      name,
		UCols:     []int{ci},
		Bucketers: []core.Bucketer{vb},
	})
	return err
}

// ClusteringSuggestion scores one attribute as a clustered-index choice
// (see SuggestClustering).
type ClusteringSuggestion struct {
	Column          string
	CorrelatedAttrs int     // attributes with low c_per_u against this clustering
	CPages          float64 // expected pages per clustered value
	MeanCPerU       float64
}

// SuggestClustering ranks the named columns as clustering choices using
// the Section 4.1 criteria — small c_pages and correlations to many
// other attributes — generalizing the paper's Figure 2 observation into
// the physical-design direction its conclusions sketch.
func (t *Table) SuggestClustering(threshold float64, cols ...string) ([]ClusteringSuggestion, error) {
	idxs := make([]int, len(cols))
	for i, c := range cols {
		ci, err := t.colIndex(c)
		if err != nil {
			return nil, err
		}
		idxs[i] = ci
	}
	t.inner.RLock()
	defer t.inner.RUnlock()
	adv, err := advisor.New(t.inner, advisor.Config{})
	if err != nil {
		return nil, err
	}
	sch := t.inner.Schema()
	cands := adv.SuggestClustering(idxs, threshold)
	out := make([]ClusteringSuggestion, len(cands))
	for i, c := range cands {
		out[i] = ClusteringSuggestion{
			Column:          sch.Cols[c.Col].Name,
			CorrelatedAttrs: c.CorrelatedAttrs,
			CPages:          c.CPages,
			MeanCPerU:       c.MeanCPerU,
		}
	}
	return out, nil
}

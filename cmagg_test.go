package repro

import (
	"fmt"
	"strings"
	"testing"
)

// cmaggFixture builds a correlated table at the given worker count with
// an identity CM over qty, a bucketed (level-2, width-4) CM over wide,
// and a secondary index on qty — the structures the cm-agg equivalence
// suite forces against each other.
func cmaggFixture(t *testing.T, workers int, n int) (*DB, *Table) {
	t.Helper()
	db := Open(Config{Workers: workers})
	tbl, err := db.CreateTable(TableSpec{
		Name: "items",
		Columns: []Column{
			{Name: "cat", Kind: Int},
			{Name: "qty", Kind: Int},
			{Name: "wide", Kind: Int},
			{Name: "price", Kind: Float},
			{Name: "city", Kind: String},
		},
		ClusteredBy:  []string{"cat"},
		BucketTuples: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	cities := []string{"boston", "cambridge", "springfield", "toledo", "jackson"}
	rows := make([]Row, n)
	for i := range rows {
		cat := int64(i / 8)
		rows[i] = Row{
			IntVal(cat),
			IntVal(cat/2 + int64(i%3)),
			IntVal(cat + int64(i%3)), // tracks the clustering: few buckets per CM key
			FloatVal(float64(i%50) + 0.5),
			StringVal(cities[i%len(cities)]),
		}
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("ix_qty", "qty"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateCM("cm_qty", CMColumn{Name: "qty"}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateCM("cm_wide", CMColumn{Name: "wide", Level: 2}); err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

// cmaggSpecs is the query matrix of the equivalence suite: point,
// IN-list and range predicates over the identity CM, range predicates
// over the bucketed CM (interior buckets pure, boundary buckets swept),
// grouped and ungrouped shapes, and a predicate-free COUNT.
func cmaggSpecs() []QuerySpec {
	all := []Agg{{Func: Count}, {Func: Sum, Col: "qty"}, {Func: Avg, Col: "qty"},
		{Func: Min, Col: "qty"}, {Func: Max, Col: "city"}}
	return []QuerySpec{
		{Table: "items", Preds: []Pred{Eq("qty", IntVal(7))}, Aggs: all},
		{Table: "items", Preds: []Pred{In("qty", IntVal(3), IntVal(8), IntVal(11))}, Aggs: all},
		{Table: "items", Preds: []Pred{Between("qty", IntVal(3), IntVal(9))}, Aggs: all},
		{Table: "items", Preds: []Pred{Gt("qty", IntVal(5)), Le("qty", IntVal(14))}, Aggs: all},
		{Table: "items", Aggs: all}, // no WHERE: whole-table pushdown
		{Table: "items", Preds: []Pred{Eq("qty", IntVal(99999))}, Aggs: all}, // empty input
		{Table: "items", Preds: []Pred{Between("qty", IntVal(3), IntVal(9))}, Aggs: all[:3], GroupBy: []string{"qty"}},
		// The bucketed CM: interior buckets answer from statistics,
		// boundary buckets sweep (Between 10..30 spans buckets 8..28).
		{Table: "items", Preds: []Pred{Between("wide", IntVal(10), IntVal(30))}, Aggs: []Agg{{Func: Count}, {Func: Sum, Col: "wide"}, {Func: Min, Col: "wide"}}},
		{Table: "items", Preds: []Pred{Eq("wide", IntVal(13))}, Aggs: []Agg{{Func: Count}, {Func: Avg, Col: "wide"}}},
	}
}

// TestCMAggEquivalence pins the cm-agg path byte-identical to the
// heap-visiting aggregation across every forced access method, serial
// and at 8 workers, including the impure-bucket hybrid fallback of the
// bucketed CM.
func TestCMAggEquivalence(t *testing.T) {
	serial, _ := cmaggFixture(t, 1, 600)
	parallel, _ := cmaggFixture(t, 8, 600)
	for si, spec := range cmaggSpecs() {
		_, want, err := serial.SelectAggregate(withVia(spec, TableScan))
		if err != nil {
			t.Fatalf("spec %d reference: %v", si, err)
		}
		for _, db := range []*DB{serial, parallel} {
			for _, via := range []AccessMethod{Auto, TableScan, SortedIndexScan, PipelinedIndexScan, CMScan} {
				s := withVia(spec, via)
				if via == SortedIndexScan || via == PipelinedIndexScan {
					// The secondary index only applies to qty predicates.
					if len(spec.Preds) == 0 || specCol(spec) != "qty" {
						continue
					}
				}
				if via == CMScan && len(spec.Preds) == 0 {
					continue // forced CM scan needs a predicated CM column
				}
				_, got, err := db.SelectAggregate(s)
				if err != nil {
					t.Fatalf("spec %d via %v (workers=%d): %v", si, via, db.Workers(), err)
				}
				rowsEqual(t, fmt.Sprintf("spec %d via %v workers=%d", si, via, db.Workers()), got, want)
			}
		}
	}
}

// withVia copies a spec with a forced access method.
func withVia(spec QuerySpec, via AccessMethod) QuerySpec {
	spec.Via = via
	return spec
}

// specCol names the first predicated column of a spec (test helper).
func specCol(spec QuerySpec) string {
	if len(spec.Preds) == 0 {
		return ""
	}
	return spec.Preds[0].col
}

// TestCMAggIndexOnly is the acceptance test for the paper-shaped
// workload: with a covering identity CM, the aggregate answers with
// zero disk reads from a cold cache (no heap page, no index page), and
// EXPLAIN surfaces the cm-agg node; the forced heap path reads pages
// and returns the identical result.
func TestCMAggIndexOnly(t *testing.T) {
	db, _ := cmaggFixture(t, 4, 600)
	spec := QuerySpec{
		Table: "items",
		Preds: []Pred{Eq("qty", IntVal(7))},
		Aggs:  []Agg{{Func: Count}, {Func: Avg, Col: "qty"}},
	}

	info, err := db.ExplainSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Nodes) == 0 || info.Nodes[0].Kind != "cm-agg" {
		t.Fatalf("plan nodes = %+v, want cm-agg access node", info.Nodes)
	}
	if !strings.Contains(info.Nodes[0].Detail, "index-only") {
		t.Errorf("cm-agg detail = %q, want index-only", info.Nodes[0].Detail)
	}
	if info.Uses != "cm_qty" {
		t.Errorf("Uses = %q, want cm_qty", info.Uses)
	}
	if info.DecodedCols != 0 {
		t.Errorf("DecodedCols = %d, want 0 (no tuple materialized)", info.DecodedCols)
	}

	if err := db.ColdCache(); err != nil {
		t.Fatal(err)
	}
	db.ResetStats()
	_, got, err := db.SelectAggregate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if reads := db.Stats().Reads; reads != 0 {
		t.Errorf("index-only aggregate read %d pages, want 0", reads)
	}

	if err := db.ColdCache(); err != nil {
		t.Fatal(err)
	}
	db.ResetStats()
	_, want, err := db.SelectAggregate(withVia(spec, TableScan))
	if err != nil {
		t.Fatal(err)
	}
	if reads := db.Stats().Reads; reads == 0 {
		t.Error("forced heap sweep read 0 pages — counter not engaged")
	}
	rowsEqual(t, "index-only vs heap", got, want)

	// The SQL surface shows the same node in the method cell.
	res, err := db.Exec("EXPLAIN SELECT count(*), avg(qty) FROM items WHERE qty = 7")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Str() != "cm-agg" {
		t.Errorf("EXPLAIN method cell = %q, want cm-agg", res.Rows[0][0].Str())
	}
}

// TestCMAggHybridImpureBuckets pins the hybrid plan: a range over the
// bucketed CM answers interior buckets from statistics and sweeps only
// the boundary buckets, reading fewer pages than the forced heap path
// while returning the identical rows. Small pages make the scan
// expensive enough (as in the planner fixture) that the §4 model's
// seek-dominated impure-bucket term wins.
func TestCMAggHybridImpureBuckets(t *testing.T) {
	db := Open(Config{Workers: 4, PageSize: 1024})
	tbl, err := db.CreateTable(TableSpec{
		Name: "items",
		Columns: []Column{
			{Name: "cat", Kind: Int},
			{Name: "wide", Kind: Int},
			{Name: "qty", Kind: Int},
		},
		ClusteredBy: []string{"cat"}, // default bucketing: ~10 pages per bucket
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 12000
	rows := make([]Row, n)
	for i := range rows {
		cat := int64(i / 8)
		rows[i] = Row{IntVal(cat), IntVal(cat + int64(i%3)), IntVal(int64(i % 7))}
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateCM("cm_wide", CMColumn{Name: "wide", Level: 2}); err != nil {
		t.Fatal(err)
	}
	spec := QuerySpec{
		Table: "items",
		Preds: []Pred{Between("wide", IntVal(100), IntVal(300))},
		Aggs:  []Agg{{Func: Count}, {Func: Sum, Col: "wide"}},
	}
	info, err := db.ExplainSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Nodes) == 0 || info.Nodes[0].Kind != "cm-agg" {
		t.Fatalf("plan nodes = %+v, want cm-agg", info.Nodes)
	}
	if !strings.Contains(info.Nodes[0].Detail, "hybrid sweep") {
		t.Errorf("cm-agg detail = %q, want hybrid sweep of impure buckets", info.Nodes[0].Detail)
	}
	if info.DecodedCols == 0 {
		t.Error("hybrid plan reports 0 decoded cols; the sweep materializes columns")
	}

	if err := db.ColdCache(); err != nil {
		t.Fatal(err)
	}
	db.ResetStats()
	_, got, err := db.SelectAggregate(spec)
	if err != nil {
		t.Fatal(err)
	}
	hybridReads := db.Stats().Reads

	if err := db.ColdCache(); err != nil {
		t.Fatal(err)
	}
	db.ResetStats()
	_, want, err := db.SelectAggregate(withVia(spec, TableScan))
	if err != nil {
		t.Fatal(err)
	}
	scanReads := db.Stats().Reads
	rowsEqual(t, "hybrid vs heap", got, want)
	if hybridReads == 0 {
		t.Error("hybrid plan read 0 pages; boundary buckets must sweep")
	}
	if hybridReads >= scanReads {
		t.Errorf("hybrid read %d pages, full sweep %d — pushdown saved nothing", hybridReads, scanReads)
	}
}

// TestCMAggRetraction pins Algorithm-1 retraction through the stats:
// after inserts and deletes (including deleting extreme values, which
// dirties min/max and forces those entries onto the hybrid sweep),
// cm-agg answers remain byte-identical to the heap path.
func TestCMAggRetraction(t *testing.T) {
	db, tbl := cmaggFixture(t, 4, 400)
	// Insert outliers into an existing qty group, then delete rows
	// including the group minimum so the entry's min/max go stale.
	for i := 0; i < 20; i++ {
		err := tbl.Insert(Row{IntVal(int64(i)), IntVal(7), IntVal(int64(200 + i)),
			FloatVal(0.25), StringVal("aaaa")})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tbl.Delete(Eq("city", StringVal("aaaa"))); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Delete(Eq("qty", IntVal(3))); err != nil {
		t.Fatal(err)
	}

	specs := []QuerySpec{
		{Table: "items", Preds: []Pred{Eq("qty", IntVal(7))},
			Aggs: []Agg{{Func: Count}, {Func: Sum, Col: "qty"}, {Func: Min, Col: "city"}, {Func: Max, Col: "wide"}}},
		{Table: "items", Aggs: []Agg{{Func: Count}}},
		{Table: "items", Preds: []Pred{Between("qty", IntVal(4), IntVal(12))},
			Aggs: []Agg{{Func: Count}, {Func: Avg, Col: "qty"}}, GroupBy: []string{"qty"}},
	}
	for i, spec := range specs {
		_, want, err := db.SelectAggregate(withVia(spec, TableScan))
		if err != nil {
			t.Fatal(err)
		}
		_, got, err := db.SelectAggregate(spec)
		if err != nil {
			t.Fatal(err)
		}
		rowsEqual(t, fmt.Sprintf("post-retraction spec %d", i), got, want)
	}

	// COUNT(*) still answers index-only after retraction: counts
	// subtract exactly.
	if err := db.ColdCache(); err != nil {
		t.Fatal(err)
	}
	db.ResetStats()
	if _, _, err := db.SelectAggregate(specs[1]); err != nil {
		t.Fatal(err)
	}
	if reads := db.Stats().Reads; reads != 0 {
		t.Errorf("post-retraction COUNT(*) read %d pages, want 0", reads)
	}
}

// TestCMAggIneligibleShapes pins the fallback boundaries: float
// SUM/AVG, predicates or grouping off the CM attribute, Ne predicates
// and forced methods must not plan cm-agg (and still answer correctly).
func TestCMAggIneligibleShapes(t *testing.T) {
	db, _ := cmaggFixture(t, 4, 400)
	ineligible := []QuerySpec{
		// AVG over a float column stays on the heap (byte-identity).
		{Table: "items", Preds: []Pred{Eq("qty", IntVal(7))}, Aggs: []Agg{{Func: Avg, Col: "price"}}},
		// A predicate off the CM attribute.
		{Table: "items", Preds: []Pred{Eq("qty", IntVal(7)), Eq("city", StringVal("boston"))},
			Aggs: []Agg{{Func: Count}}},
		// Grouping off the CM attribute.
		{Table: "items", Preds: []Pred{Eq("qty", IntVal(7))}, Aggs: []Agg{{Func: Count}}, GroupBy: []string{"city"}},
		// Ne never probes.
		{Table: "items", Preds: []Pred{Ne("qty", IntVal(7))}, Aggs: []Agg{{Func: Count}}},
	}
	for i, spec := range ineligible {
		info, err := db.ExplainSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		if info.Nodes[0].Kind == "cm-agg" {
			t.Errorf("spec %d planned cm-agg: %+v", i, info.Nodes)
		}
		_, want, err := db.SelectAggregate(withVia(spec, TableScan))
		if err != nil {
			t.Fatal(err)
		}
		_, got, err := db.SelectAggregate(spec)
		if err != nil {
			t.Fatal(err)
		}
		rowsEqual(t, fmt.Sprintf("ineligible spec %d", i), got, want)
	}

	// A forced method never takes the cm-agg shortcut.
	info, err := db.ExplainSpec(QuerySpec{Table: "items", Via: CMScan,
		Preds: []Pred{Eq("qty", IntVal(7))}, Aggs: []Agg{{Func: Count}}})
	if err != nil {
		t.Fatal(err)
	}
	if info.Nodes[0].Kind != "scan" {
		t.Errorf("forced CMScan aggregate planned %+v", info.Nodes)
	}
}

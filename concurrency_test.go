// Concurrency stress tests: readers on every access method race
// inserts, updates, deletes and commits on one table, asserting no lost
// rows (stable rows always all visible) and no phantoms (volatile rows
// are seen zero or one time, never partially applied, never
// duplicated). Run with -race; the suite is sized to finish quickly
// under it.
package repro

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

const (
	stableUs      = 40  // distinct stable u values
	rowsPerU      = 25  // stable rows per u value
	volatileUBase = 500 // volatile rows use u >= volatileUBase
)

// buildStressDB loads a correlated table (c determines u) with a
// secondary index and a CM on u, so all four access paths apply.
func buildStressDB(t testing.TB, workers int) (*DB, *Table) {
	t.Helper()
	db := Open(Config{Workers: workers})
	tbl, err := db.CreateTable(TableSpec{
		Name: "stress",
		Columns: []Column{
			{Name: "c", Kind: Int},
			{Name: "u", Kind: Int},
			{Name: "tag", Kind: String},
		},
		ClusteredBy: []string{"c"},
		BucketPages: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, 0, stableUs*rowsPerU)
	for u := 0; u < stableUs; u++ {
		for i := 0; i < rowsPerU; i++ {
			// c determines u (hard FD) so the CM is small and selective.
			c := int64(u*rowsPerU + i)
			rows = append(rows, Row{IntVal(c), IntVal(int64(u)), StringVal(fmt.Sprintf("s-%d-%d", u, i))})
		}
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("u_idx", "u"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateCM("u_cm", CMColumn{Name: "u"}); err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

var stressMethods = []AccessMethod{TableScan, SortedIndexScan, PipelinedIndexScan, CMScan}

// TestConcurrentReadersVsWriters races Selects on all four access
// methods against an insert/delete/commit writer. Every read of a
// stable u must see exactly rowsPerU rows, and every read of a volatile
// u must see 0 or 1 rows — nothing lost, nothing phantom.
func TestConcurrentReadersVsWriters(t *testing.T) {
	db, tbl := buildStressDB(t, 4)
	_ = db

	const (
		readers        = 4
		readsPerReader = 60
		writerOps      = 150
	)
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Writer: churn volatile rows (insert, commit, delete, commit).
	wg.Add(1)
	writerErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for k := 0; k < writerOps; k++ {
			u := int64(volatileUBase + k%7)
			c := int64(stableUs*rowsPerU + k%13)
			if err := tbl.Insert(Row{IntVal(c), IntVal(u), StringVal("v")}); err != nil {
				writerErr <- err
				return
			}
			if k%5 == 0 {
				if err := tbl.Commit(); err != nil {
					writerErr <- err
					return
				}
			}
			if _, err := tbl.Delete(Eq("u", IntVal(u)), Eq("c", IntVal(c))); err != nil {
				writerErr <- err
				return
			}
		}
		if err := tbl.Commit(); err != nil {
			writerErr <- err
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < readsPerReader && !stop.Load(); i++ {
				method := stressMethods[(r+i)%len(stressMethods)]

				// Stable slice: must always be fully visible.
				u := int64((r*7 + i) % stableUs)
				n := 0
				err := tbl.SelectVia(method, func(row Row) bool {
					if row[1].Int() != u {
						t.Errorf("%v: row with u=%d in result for u=%d", method, row[1].Int(), u)
					}
					n++
					return true
				}, Eq("u", IntVal(u)))
				if err != nil {
					t.Errorf("%v: %v", method, err)
					return
				}
				if n != rowsPerU {
					t.Errorf("%v: stable u=%d returned %d rows, want %d (lost or phantom rows)", method, u, n, rowsPerU)
					return
				}

				// Volatile slice: each (c,u) pair exists 0 or 1 times.
				vu := int64(volatileUBase + i%7)
				seen := map[string]int{}
				err = tbl.SelectVia(method, func(row Row) bool {
					seen[row[0].String()]++
					return true
				}, Eq("u", IntVal(vu)))
				if err != nil {
					t.Errorf("%v volatile: %v", method, err)
					return
				}
				for c, cnt := range seen {
					if cnt > 1 {
						t.Errorf("%v: volatile row c=%s seen %d times (duplicate)", method, c, cnt)
					}
				}
			}
		}(r)
	}
	wg.Wait()
	select {
	case err := <-writerErr:
		t.Fatalf("writer: %v", err)
	default:
	}

	// Quiesced: the table must be exactly the stable rows again.
	if got := tbl.RowCount(); got != int64(stableUs*rowsPerU) {
		t.Fatalf("final row count %d, want %d", got, stableUs*rowsPerU)
	}
}

// TestConcurrentUpdatesVsReaders is the mixed update/delete/scan
// stress: one writer churns — inserting volatile rows, rewriting their
// tags with UPDATE, retagging whole stable slices, deleting the
// volatile rows — while snapshot readers on all four access methods
// assert stable slices stay exactly complete (no lost rows, no
// phantoms, no half-applied update) and volatile rows are never
// duplicated. Run with -race.
func TestConcurrentUpdatesVsReaders(t *testing.T) {
	_, tbl := buildStressDB(t, 4)

	const (
		readers        = 4
		readsPerReader = 50
		writerOps      = 60
	)
	var stop atomic.Bool
	var wg sync.WaitGroup

	wg.Add(1)
	writerErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		fail := func(err error) bool {
			if err != nil {
				writerErr <- err
				return true
			}
			return false
		}
		for k := 0; k < writerOps; k++ {
			vu := int64(volatileUBase + k%5)
			c := int64(stableUs*rowsPerU + k%11)
			if fail(tbl.Insert(Row{IntVal(c), IntVal(vu), StringVal("v0")})) {
				return
			}
			// Rewrite the volatile row in place (same u, new tag).
			if _, err := tbl.Update([]Set{{Col: "tag", Val: StringVal("v1")}},
				Eq("u", IntVal(vu)), Eq("c", IntVal(c))); fail(err) {
				return
			}
			// Retag an entire stable slice: readers must see the whole
			// slice before or after, never a torn mix losing rows.
			su := int64(k % stableUs)
			if _, err := tbl.Update([]Set{{Col: "tag", Val: StringVal(fmt.Sprintf("gen-%d", k))}},
				Eq("u", IntVal(su))); fail(err) {
				return
			}
			if _, err := tbl.Delete(Eq("u", IntVal(vu)), Eq("c", IntVal(c))); fail(err) {
				return
			}
			if k%8 == 0 && fail(tbl.Commit()) {
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < readsPerReader && !stop.Load(); i++ {
				method := stressMethods[(r+i)%len(stressMethods)]
				u := int64((r*5 + i) % stableUs)
				n := 0
				err := tbl.SelectVia(method, func(row Row) bool {
					if row[1].Int() != u {
						t.Errorf("%v: row with u=%d in result for u=%d", method, row[1].Int(), u)
					}
					n++
					return true
				}, Eq("u", IntVal(u)))
				if err != nil {
					t.Errorf("%v: %v", method, err)
					return
				}
				if n != rowsPerU {
					t.Errorf("%v: stable u=%d returned %d rows during update churn, want %d", method, u, n, rowsPerU)
					return
				}

				vu := int64(volatileUBase + i%5)
				seen := map[string]int{}
				if err := tbl.SelectVia(method, func(row Row) bool {
					seen[row[0].String()]++
					return true
				}, Eq("u", IntVal(vu))); err != nil {
					t.Errorf("%v volatile: %v", method, err)
					return
				}
				for c, cnt := range seen {
					if cnt > 1 {
						t.Errorf("%v: volatile row c=%s seen %d times (duplicate version)", method, c, cnt)
					}
				}
			}
		}(r)
	}
	wg.Wait()
	select {
	case err := <-writerErr:
		t.Fatalf("writer: %v", err)
	default:
	}

	// Quiesced: exactly the stable rows remain, and a full-slice read on
	// each method agrees.
	if got := tbl.RowCount(); got != int64(stableUs*rowsPerU) {
		t.Fatalf("final row count %d, want %d", got, stableUs*rowsPerU)
	}
	for _, m := range stressMethods {
		n := 0
		if err := tbl.SelectVia(m, func(Row) bool { n++; return true }, Eq("u", IntVal(1))); err != nil {
			t.Fatal(err)
		}
		if n != rowsPerU {
			t.Fatalf("%v: quiesced u=1 has %d rows, want %d", m, n, rowsPerU)
		}
	}
}

// TestSelectManyDuringWrites drives the batch API concurrently with a
// writer: every per-query result over stable values must be complete.
func TestSelectManyDuringWrites(t *testing.T) {
	db, tbl := buildStressDB(t, 8)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for k := 0; k < 120; k++ {
			u := int64(volatileUBase + k%3)
			if err := tbl.Insert(Row{IntVal(int64(stableUs*rowsPerU + k)), IntVal(u), StringVal("v")}); err != nil {
				t.Error(err)
				return
			}
			if _, err := tbl.Delete(Eq("u", IntVal(u))); err != nil {
				t.Error(err)
				return
			}
			if k%10 == 0 {
				if err := tbl.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	for round := 0; round < 15 && !stop.Load(); round++ {
		specs := make([]QuerySpec, 12)
		for i := range specs {
			specs[i] = QuerySpec{
				Table: "stress",
				Via:   stressMethods[i%len(stressMethods)],
				Preds: []Pred{Eq("u", IntVal(int64((round+i)%stableUs)))},
			}
		}
		for i, res := range db.SelectMany(specs) {
			if res.Err != nil {
				t.Fatalf("spec %d: %v", i, res.Err)
			}
			if len(res.Rows) != rowsPerU {
				t.Fatalf("spec %d (%v): got %d rows, want %d", i, specs[i].Via, len(res.Rows), rowsPerU)
			}
		}
	}
	wg.Wait()
}

// TestSelectManyUnknownTable returns a per-query error, not a panic.
func TestSelectManyUnknownTable(t *testing.T) {
	db, _ := buildStressDB(t, 2)
	res := db.SelectMany([]QuerySpec{{Table: "absent"}})
	if len(res) != 1 || res[0].Err == nil {
		t.Fatalf("want error for unknown table, got %+v", res)
	}
}

// TestConcurrentTablesShareEngine runs readers and writers on two
// tables of one DB concurrently: the shared pool, disk and WAL must not
// race, and per-table latches must not interfere across tables.
func TestConcurrentTablesShareEngine(t *testing.T) {
	db := Open(Config{Workers: 4, BufferPoolPages: 128})
	mk := func(name string) *Table {
		tbl, err := db.CreateTable(TableSpec{
			Name: name,
			Columns: []Column{
				{Name: "c", Kind: Int},
				{Name: "u", Kind: Int},
			},
			ClusteredBy: []string{"c"},
		})
		if err != nil {
			t.Fatal(err)
		}
		rows := make([]Row, 600)
		for i := range rows {
			rows[i] = Row{IntVal(int64(i)), IntVal(int64(i / 20))}
		}
		if err := tbl.Load(rows); err != nil {
			t.Fatal(err)
		}
		if err := tbl.CreateCM(name+"_cm", CMColumn{Name: "u"}); err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	a, b := mk("ta"), mk("tb")

	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for k := 0; k < 80; k++ {
				if err := a.Insert(Row{IntVal(int64(600 + k)), IntVal(999)}); err != nil {
					t.Error(err)
					return
				}
				if err := a.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for k := 0; k < 80; k++ {
				n := 0
				err := b.SelectVia(CMScan, func(Row) bool { n++; return true }, Eq("u", IntVal(7)))
				if err != nil {
					t.Error(err)
					return
				}
				if n != 20 {
					t.Errorf("table b: got %d rows for u=7, want 20", n)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestWorkersConfig checks the worker default and override plumbing.
func TestWorkersConfig(t *testing.T) {
	if got := Open(Config{}).Workers(); got < 1 {
		t.Errorf("default workers = %d, want >= 1", got)
	}
	if got := Open(Config{Workers: 3}).Workers(); got != 3 {
		t.Errorf("workers = %d, want 3", got)
	}
}

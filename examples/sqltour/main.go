// SQL tour: the paper's running example (Figure 4) driven entirely
// through the SQL front-end — no Go API calls, just statements, the way
// a cmserver client would issue them. The second half reproduces the
// paper's own query shape — SELECT AVG(salary) FROM employees WHERE
// city = ... — over a correlated workload (CI asserts its output).
//
// Run with: go run ./examples/sqltour
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	db := repro.Open(repro.Config{})

	script := `
CREATE TABLE people (state STRING, city STRING, salary INT) CLUSTERED BY (state) BUCKET TUPLES 1;
LOAD INTO people VALUES
 ('MA', 'boston', 25000), ('NH', 'boston', 45000), ('MA', 'boston', 50000),
 ('MN', 'manchester', 40000), ('MA', 'cambridge', 110000), ('MS', 'jackson', 80000),
 ('MA', 'springfield', 90000), ('NH', 'manchester', 60000), ('OH', 'springfield', 95000),
 ('OH', 'toledo', 70000);
CREATE CORRELATION MAP city_cm ON people (city);
`
	results, err := db.ExecScript(script)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
	}

	// One statement per call from here on, printing results the way the
	// cmsql REPL would.
	for _, stmt := range []string{
		"SHOW CMS FOR people",
		"SELECT * FROM people WHERE city IN ('boston', 'springfield')",
		"EXPLAIN SELECT * FROM people WHERE city = 'boston'",
		"SELECT city, salary FROM people WHERE salary > 50000 AND city != 'jackson' LIMIT 3",
		"SHOW SOFT FDS FOR people MIN STRENGTH 0.5",
		"ADVISE CM FOR SELECT * FROM people WHERE city = 'boston' WITHIN 50 PERCENT",
		"INSERT INTO people VALUES ('OH', 'boston', 33000)",
		"SELECT state FROM people WHERE city = 'boston'",
		"DELETE FROM people WHERE salary < 30000",
		"COMMIT people",
		"SHOW TABLES",
	} {
		fmt.Printf("cm> %s\n", stmt)
		res, err := db.Exec(stmt)
		if err != nil {
			log.Fatal(err)
		}
		printResult(res)
		fmt.Println()
	}

	aggregationTour(db)
}

// aggregationTour is the paper's running example — AVG(salary) over an
// employees table whose city column soft-determines the clustered
// state column — now expressible verbatim: aggregates, GROUP BY,
// ORDER BY and OR all ride the CM-planned scan. The workload is
// deterministic, so CI asserts the printed averages.
func aggregationTour(db *repro.DB) {
	var sb strings.Builder
	sb.WriteString("CREATE TABLE employees (state STRING, city STRING, salary INT) CLUSTERED BY (state) BUCKET TUPLES 8;\n")
	sb.WriteString("LOAD INTO employees VALUES ")
	states := []string{"CA", "MA", "NH", "OH"}
	cities := []string{"fresno", "boston", "nashua", "toledo"}
	for i := 0; i < 320; i++ {
		si := i / 80 // clustered: 80 employees per state
		ci := si
		if i%16 == 15 { // soft FD: an out-of-state commuter per 16 rows
			ci = (si + 1) % len(cities)
		}
		if i > 0 {
			sb.WriteString(", ")
		}
		// Salaries are deterministic: base 30k + city premium + step.
		fmt.Fprintf(&sb, "('%s', '%s', %d)", states[si], cities[ci], 30000+ci*10000+(i%8)*1000)
	}
	sb.WriteString(";\nCREATE CORRELATION MAP cm_city ON employees (city);")
	results, err := db.ExecScript(sb.String())
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
	}

	for _, stmt := range []string{
		// The paper's example, verbatim shape (Section 1).
		"SELECT AVG(salary) FROM employees WHERE city = 'boston'",
		"EXPLAIN SELECT AVG(salary) FROM employees WHERE city = 'boston'",
		"SELECT city, COUNT(*), AVG(salary) FROM employees GROUP BY city ORDER BY AVG(salary) DESC",
		"SELECT state, salary FROM employees WHERE city = 'boston' OR salary > 62000 ORDER BY salary DESC LIMIT 3",
		"SELECT MIN(salary), MAX(salary), SUM(salary) FROM employees WHERE city IN ('boston', 'toledo')",
		// PR 5: DISTINCT (GROUP BY sugar) and HAVING (post-aggregate filter).
		"SELECT DISTINCT city FROM employees WHERE salary > 60000",
		"SELECT city, COUNT(*) FROM employees GROUP BY city HAVING AVG(salary) >= 43500 ORDER BY city",
	} {
		fmt.Printf("cm> %s\n", stmt)
		res, err := db.Exec(stmt)
		if err != nil {
			log.Fatal(err)
		}
		printResult(res)
		fmt.Println()
	}
}

// printResult renders a Result like the cmsql client does.
func printResult(res *repro.Result) {
	if len(res.Columns) == 0 {
		if res.Message != "" {
			fmt.Println(res.Message)
		} else {
			fmt.Println("ok")
		}
		return
	}
	fmt.Println(strings.Join(res.Columns, " | "))
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}

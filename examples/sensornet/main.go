// Sensornet: bucketed CMs on continuous domains and cheap maintenance
// (Sections 5.4 and 7.2 / Experiment 3 of the paper).
//
// A weather archive stores readings clustered by humidity; temperature
// correlates with humidity (the paper's own example), so a correlation
// map on temperature bucketed at 1°C answers temperature predicates
// through the humidity clustering. The example then runs a sustained
// insert stream and compares maintenance costs of a CM against a
// secondary B+Tree, including co-occurrence-count retraction on deletes.
//
// Run with: go run ./examples/sensornet
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
)

func reading(rng *rand.Rand, t int64) repro.Row {
	// Humidity drives temperature with noise (lower humidity, hotter).
	hum := 20 + rng.Float64()*70
	temp := 35 - hum*0.25 + rng.NormFloat64()*1.5
	return repro.Row{
		repro.FloatVal(float64(int(hum*10)) / 10), // humidity, 0.1% grid
		repro.FloatVal(temp),
		repro.IntVal(t),               // timestamp
		repro.IntVal(rng.Int63n(400)), // sensor id
	}
}

func build(withCM bool, seed int64) (*repro.DB, *repro.Table, error) {
	db := repro.Open(repro.Config{BufferPoolPages: 512})
	tbl, err := db.CreateTable(repro.TableSpec{
		Name: "readings",
		Columns: []repro.Column{
			{Name: "humidity", Kind: repro.Float},
			{Name: "temp", Kind: repro.Float},
			{Name: "ts", Kind: repro.Int},
			{Name: "sensor", Kind: repro.Int},
		},
		ClusteredBy: []string{"humidity"},
	})
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var rows []repro.Row
	for i := 0; i < 20000; i++ {
		rows = append(rows, reading(rng, int64(i)))
	}
	if err := tbl.Load(rows); err != nil {
		return nil, nil, err
	}
	if withCM {
		// 1-degree temperature buckets, the paper's 5.4 example.
		err = tbl.CreateCM("temp_cm", repro.CMColumn{Name: "temp", Width: 1})
	} else {
		err = tbl.CreateIndex("temp_ix", "temp")
	}
	if err != nil {
		return nil, nil, err
	}
	return db, tbl, nil
}

func main() {
	dbCM, withCM, err := build(true, 1)
	if err != nil {
		log.Fatal(err)
	}
	dbIX, withIX, err := build(false, 1)
	if err != nil {
		log.Fatal(err)
	}

	ps, err := withCM.PairStats("temp")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("readings: %d rows; temp vs humidity c_per_u = %.1f\n", withCM.RowCount(), ps.CPerU)
	cm := withCM.CMs()[0]
	ix := withIX.Indexes()[0]
	fmt.Printf("CM(temp, 1°C buckets): %d keys, %.1f KB; B+Tree(temp): %.1f KB\n\n",
		cm.Keys, float64(cm.SizeBytes)/1024, float64(ix.SizeBytes)/1024)

	// Query check: a cold-start range query on temperature.
	query := []repro.Pred{repro.Between("temp", repro.FloatVal(10), repro.FloatVal(12))}
	for _, tc := range []struct {
		label  string
		db     *repro.DB
		tbl    *repro.Table
		method repro.AccessMethod
	}{
		{"CM scan", dbCM, withCM, repro.CMScan},
		{"B+Tree scan", dbIX, withIX, repro.SortedIndexScan},
	} {
		if err := tc.db.ColdCache(); err != nil {
			log.Fatal(err)
		}
		tc.db.ResetStats()
		n := 0
		if err := tc.tbl.SelectVia(tc.method, func(repro.Row) bool { n++; return true }, query...); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s temp in [10,12]: %5d rows, %8.2f ms\n",
			tc.label, n, msf(tc.db.Stats().Elapsed))
	}

	// Maintenance: stream inserts in committed batches and compare.
	fmt.Println("\nsustained insert stream (5k readings in 1k batches):")
	for _, tc := range []struct {
		label string
		db    *repro.DB
		tbl   *repro.Table
	}{
		{"with CM", dbCM, withCM},
		{"with B+Tree", dbIX, withIX},
	} {
		rng := rand.New(rand.NewSource(9))
		tc.db.ResetStats()
		for batch := 0; batch < 5; batch++ {
			for i := 0; i < 1000; i++ {
				if err := tc.tbl.Insert(reading(rng, int64(100000+batch*1000+i))); err != nil {
					log.Fatal(err)
				}
			}
			if err := tc.tbl.Commit(); err != nil {
				log.Fatal(err)
			}
		}
		el := tc.db.Stats().Elapsed
		fmt.Printf("  %-12s %8.2f ms (%.0f readings/s)\n", tc.label, msf(el), 5000/el.Seconds())
	}

	// Deletes retract CM co-occurrence counts; the structure stays exact.
	n, err := withCM.Delete(repro.Between("temp", repro.FloatVal(30), repro.FloatVal(100)))
	if err != nil {
		log.Fatal(err)
	}
	left := 0
	if err := withCM.SelectVia(repro.CMScan, func(repro.Row) bool { left++; return true },
		repro.Ge("temp", repro.FloatVal(30))); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndeleted %d hot readings; CM now finds %d rows above 30°C (want 0)\n", n, left)
}

func msf(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// Quickstart: the paper's running example (Figure 4).
//
// A people table is clustered on state; city is correlated with state
// (a soft functional dependency: "boston" is almost always in MA, but
// also in NH). A correlation map on city answers city predicates through
// the clustered index at a fraction of a secondary B+Tree's size.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	db := repro.Open(repro.Config{})
	people, err := db.CreateTable(repro.TableSpec{
		Name: "people",
		Columns: []repro.Column{
			{Name: "state", Kind: repro.String},
			{Name: "city", Kind: repro.String},
			{Name: "salary", Kind: repro.Int},
		},
		ClusteredBy:  []string{"state"},
		BucketTuples: 1, // one clustered bucket per state
	})
	if err != nil {
		log.Fatal(err)
	}

	rows := []repro.Row{
		{repro.StringVal("MA"), repro.StringVal("boston"), repro.IntVal(25000)},
		{repro.StringVal("NH"), repro.StringVal("boston"), repro.IntVal(45000)},
		{repro.StringVal("MA"), repro.StringVal("boston"), repro.IntVal(50000)},
		{repro.StringVal("MN"), repro.StringVal("manchester"), repro.IntVal(40000)},
		{repro.StringVal("MA"), repro.StringVal("cambridge"), repro.IntVal(110000)},
		{repro.StringVal("MS"), repro.StringVal("jackson"), repro.IntVal(80000)},
		{repro.StringVal("MA"), repro.StringVal("springfield"), repro.IntVal(90000)},
		{repro.StringVal("NH"), repro.StringVal("manchester"), repro.IntVal(60000)},
		{repro.StringVal("OH"), repro.StringVal("springfield"), repro.IntVal(95000)},
		{repro.StringVal("OH"), repro.StringVal("toledo"), repro.IntVal(70000)},
	}
	if err := people.Load(rows); err != nil {
		log.Fatal(err)
	}

	// Build the correlation map on city (Algorithm 1: one scan).
	if err := people.CreateCM("city_cm", repro.CMColumn{Name: "city"}); err != nil {
		log.Fatal(err)
	}
	info := people.CMs()[0]
	fmt.Printf("CM on city: %d keys, %d (city,state-bucket) pairs, %d bytes, c_per_u %.2f\n",
		info.Keys, info.Pairs, info.SizeBytes, info.CPerU)

	// The paper's query:
	//   SELECT AVG(salary) FROM people
	//   WHERE city = 'boston' OR city = 'springfield'
	// The CM rewrites it into a scan of the MA, NH and OH state ranges,
	// re-filtered on city.
	var sum, n int64
	err = people.SelectVia(repro.CMScan, func(r repro.Row) bool {
		fmt.Printf("  %s / %-12s salary %6d\n", r[0].Str(), r[1].Str(), r[2].Int())
		sum += r[2].Int()
		n++
		return true
	}, repro.In("city", repro.StringVal("boston"), repro.StringVal("springfield")))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AVG(salary) over %d matching rows = %d\n\n", n, sum/n)

	// Maintenance: a new Boston appears in Ohio; the CM tracks it.
	if err := people.Insert(repro.Row{
		repro.StringVal("OH"), repro.StringVal("boston"), repro.IntVal(33000),
	}); err != nil {
		log.Fatal(err)
	}
	if err := people.Commit(); err != nil {
		log.Fatal(err)
	}
	count := 0
	if err := people.SelectVia(repro.CMScan, func(repro.Row) bool { count++; return true },
		repro.Eq("city", repro.StringVal("boston"))); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after insert, boston matches %d rows (CM now maps boston to MA, NH and OH)\n", count)

	// What does the optimizer think?
	plan, err := people.Explain(repro.Eq("city", repro.StringVal("boston")))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %v (estimated %.2f ms)\n", plan.Method,
		float64(plan.EstimatedCost.Microseconds())/1000)
}

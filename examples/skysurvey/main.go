// Skysurvey: composite correlation maps and the advisor (Section 6,
// Table 6 of the paper).
//
// A sky catalog is clustered on a spatial object ID laid out stripe by
// stripe: declination picks the stripe, right ascension the position
// within it. Neither coordinate alone determines a region's place in the
// clustered order, but the (ra, dec) pair does — the same shape as
// (longitude, latitude) -> zipcode. The example lets the advisor's FD
// search find the spatial structure, compares single-attribute CMs, the
// composite CM and a composite B+Tree on a region query, and asks the
// advisor for a design under a performance target.
//
// Run with: go run ./examples/skysurvey
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
)

const (
	stripes      = 10
	fieldsPerStr = 20
	objsPerField = 200
)

func genCatalog(seed int64) []repro.Row {
	rng := rand.New(rand.NewSource(seed))
	var rows []repro.Row
	objID := int64(1000000)
	for s := 0; s < stripes; s++ {
		decBase := -5.0 + float64(s)*2.5
		for f := 0; f < fieldsPerStr; f++ {
			raBase := float64(f) * (360.0 / fieldsPerStr)
			for o := 0; o < objsPerField; o++ {
				b := 14 + rng.Float64()*10
				rows = append(rows, repro.Row{
					repro.IntVal(objID),
					repro.FloatVal(raBase + rng.Float64()*(360.0/fieldsPerStr)),
					repro.FloatVal(decBase + rng.Float64()*2.5),
					repro.IntVal(int64(s*fieldsPerStr + f)), // field
					repro.IntVal(int64(s)),                  // stripe
					repro.FloatVal(b),                       // g magnitude
					repro.FloatVal(b + rng.NormFloat64()*0.1),
				})
				objID++
			}
		}
	}
	return rows
}

func main() {
	db := repro.Open(repro.Config{})
	sky, err := db.CreateTable(repro.TableSpec{
		Name: "photo",
		Columns: []repro.Column{
			{Name: "objID", Kind: repro.Int},
			{Name: "ra", Kind: repro.Float},
			{Name: "dec", Kind: repro.Float},
			{Name: "field", Kind: repro.Int},
			{Name: "stripe", Kind: repro.Int},
			{Name: "g", Kind: repro.Float},
			{Name: "rho", Kind: repro.Float},
		},
		ClusteredBy: []string{"objID"},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sky.Load(genCatalog(11)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog: %d rows, %d pages, clustered on objID\n\n", sky.RowCount(), sky.HeapPages())

	// Soft-FD discovery over the categorical structure.
	fds, err := sky.DiscoverFDs(0.9, false, "field", "stripe", "g")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("discovered soft FDs (strength = D(det)/D(det,dep)):")
	for i, fd := range fds {
		if i >= 5 {
			break
		}
		fmt.Printf("  %v -> %s: %.3f\n", fd.Determinant, fd.Dependent, fd.Strength)
	}

	// Manual designs: singles vs the composite pair (4-degree and
	// 2-degree buckets, like the advisor's power-of-two enumeration).
	if err := sky.CreateCM("ra_cm", repro.CMColumn{Name: "ra", Width: 4}); err != nil {
		log.Fatal(err)
	}
	if err := sky.CreateCM("dec_cm", repro.CMColumn{Name: "dec", Width: 2}); err != nil {
		log.Fatal(err)
	}
	if err := sky.CreateCM("radec_cm",
		repro.CMColumn{Name: "ra", Width: 4},
		repro.CMColumn{Name: "dec", Width: 2}); err != nil {
		log.Fatal(err)
	}
	if err := sky.CreateIndex("radec_ix", "ra", "dec"); err != nil {
		log.Fatal(err)
	}

	region := []repro.Pred{
		repro.Between("ra", repro.FloatVal(100), repro.FloatVal(106)),
		repro.Between("dec", repro.FloatVal(2.0), repro.FloatVal(4.0)),
		repro.Between("g", repro.FloatVal(14), repro.FloatVal(23)),
	}
	fmt.Printf("\nregion query: ra in [100,106], dec in [2,4], g in [14,23]\n")
	fmt.Printf("%-20s %12s %10s %10s\n", "method", "elapsed", "reads", "rows")

	measure := func(label string, run func(fn func(repro.Row) bool) error) {
		if err := db.ColdCache(); err != nil {
			log.Fatal(err)
		}
		db.ResetStats()
		n := 0
		if err := run(func(repro.Row) bool { n++; return true }); err != nil {
			log.Fatal(err)
		}
		st := db.Stats()
		fmt.Printf("%-20s %9.2f ms %10d %10d\n", label, msf(st.Elapsed), st.Reads, n)
	}
	measure("table scan", func(fn func(repro.Row) bool) error {
		return sky.SelectVia(repro.TableScan, fn, region...)
	})
	measure("B+Tree(ra,dec)", func(fn func(repro.Row) bool) error {
		return sky.SelectVia(repro.SortedIndexScan, fn, region...)
	})
	for _, name := range []string{"ra_cm", "dec_cm", "radec_cm"} {
		measure("CM "+name, func(fn func(repro.Row) bool) error {
			return sky.SelectViaCM(name, fn, region...)
		})
	}
	fmt.Println()
	for _, cm := range sky.CMs() {
		fmt.Printf("  %-10s %6d keys %10.1f KB\n", cm.Name, cm.Keys, float64(cm.SizeBytes)/1024)
	}
	for _, ix := range sky.Indexes() {
		fmt.Printf("  %-10s %6d entries %8.1f KB\n", ix.Name, ix.Entries, float64(ix.SizeBytes)/1024)
	}

	// Let the advisor pick a design for this query under a 25% target.
	recs, err := sky.Advise(25, region...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nadvisor recommendations within +25%% of the B+Tree (smallest first):\n")
	for i, r := range recs {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-36s %8.1f KB  slowdown %+6.1f%%\n",
			r.Design, float64(r.SizeBytes)/1024, r.SlowdownPct)
	}
}

func msf(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

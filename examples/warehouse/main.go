// Warehouse: the paper's TPC-H motivation (Sections 3.3–3.4, Figure 3).
//
// A lineitem-style order log ships goods 2, 4 or 5 days before they are
// received, so receiptdate is a strong soft predictor of shipdate. With
// the table clustered on receiptdate, a tiny correlation map on shipdate
// matches a dense secondary B+Tree's I/O pattern; clustered on the
// primary key, shipdate lookups degrade to scattered reads.
//
// The example builds both clusterings, compares the virtual disk time of
// shipdate lookups, and prints the size of the CM next to the B+Tree it
// replaces.
//
// Run with: go run ./examples/warehouse
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
)

const (
	orders    = 8000
	dateRange = 2400
)

func genLineitems(seed int64) []repro.Row {
	rng := rand.New(rand.NewSource(seed))
	var rows []repro.Row
	for o := 1; o <= orders; o++ {
		orderDate := int64(rng.Intn(dateRange))
		lines := 1 + rng.Intn(7)
		for l := 1; l <= lines; l++ {
			ship := orderDate + 1 + int64(rng.Intn(121))
			bump := []int64{2, 2, 4, 4, 5, 3, 7}[rng.Intn(7)]
			price := 900 + rng.Float64()*99000
			rows = append(rows, repro.Row{
				repro.IntVal(int64(o)),
				repro.IntVal(int64(l)),
				repro.IntVal(ship),
				repro.IntVal(ship + bump),
				repro.FloatVal(price),
				repro.FloatVal(float64(rng.Intn(11)) / 100),
			})
		}
	}
	return rows
}

func buildDB(clusterBy []string, seed int64) (*repro.DB, *repro.Table, error) {
	db := repro.Open(repro.Config{})
	tbl, err := db.CreateTable(repro.TableSpec{
		Name: "lineitem",
		Columns: []repro.Column{
			{Name: "orderkey", Kind: repro.Int},
			{Name: "linenumber", Kind: repro.Int},
			{Name: "shipdate", Kind: repro.Int},
			{Name: "receiptdate", Kind: repro.Int},
			{Name: "extendedprice", Kind: repro.Float},
			{Name: "discount", Kind: repro.Float},
		},
		ClusteredBy: clusterBy,
	})
	if err != nil {
		return nil, nil, err
	}
	if err := tbl.Load(genLineitems(seed)); err != nil {
		return nil, nil, err
	}
	return db, tbl, nil
}

// avgRevenue runs the paper's Figure 3 query through the given method
// cold-cached and returns the virtual elapsed time.
func avgRevenue(db *repro.DB, tbl *repro.Table, method repro.AccessMethod, dates []repro.Value) (time.Duration, int, error) {
	if err := db.ColdCache(); err != nil {
		return 0, 0, err
	}
	db.ResetStats()
	var sum float64
	var n int
	err := tbl.SelectVia(method, func(r repro.Row) bool {
		sum += r[4].Float() * r[5].Float()
		n++
		return true
	}, repro.In("shipdate", dates...))
	if err != nil {
		return 0, 0, err
	}
	return db.Stats().Elapsed, n, nil
}

func main() {
	// Correlated clustering: receiptdate.
	dbCorr, corr, err := buildDB([]string{"receiptdate"}, 42)
	if err != nil {
		log.Fatal(err)
	}
	// Uncorrelated clustering: the primary key.
	dbUnc, unc, err := buildDB([]string{"orderkey", "linenumber"}, 42)
	if err != nil {
		log.Fatal(err)
	}

	// The soft FD the engine will exploit.
	ps, err := corr.PairStats("shipdate")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lineitem: %d rows, %d pages\n", corr.RowCount(), corr.HeapPages())
	fmt.Printf("shipdate vs receiptdate: c_per_u = %.2f (each ship date hits ~%.0f receipt dates)\n\n",
		ps.CPerU, ps.CPerU)

	// Access methods on both clusterings.
	for _, tc := range []struct {
		label string
		db    *repro.DB
		tbl   *repro.Table
	}{
		{"clustered on receiptdate (correlated)", dbCorr, corr},
		{"clustered on primary key (uncorrelated)", dbUnc, unc},
	} {
		if err := tc.tbl.CreateIndex("shipdate_ix", "shipdate"); err != nil {
			log.Fatal(err)
		}
		if err := tc.tbl.CreateCM("shipdate_cm", repro.CMColumn{Name: "shipdate"}); err != nil {
			log.Fatal(err)
		}
		fmt.Println(tc.label)
		rng := rand.New(rand.NewSource(7))
		for _, n := range []int{1, 10, 50} {
			dates := make([]repro.Value, n)
			for i := range dates {
				dates[i] = repro.IntVal(int64(rng.Intn(dateRange) + 3))
			}
			bt, rowsBT, err := avgRevenue(tc.db, tc.tbl, repro.SortedIndexScan, dates)
			if err != nil {
				log.Fatal(err)
			}
			cm, rowsCM, err := avgRevenue(tc.db, tc.tbl, repro.CMScan, dates)
			if err != nil {
				log.Fatal(err)
			}
			scan, _, err := avgRevenue(tc.db, tc.tbl, repro.TableScan, dates)
			if err != nil {
				log.Fatal(err)
			}
			if rowsBT != rowsCM {
				log.Fatalf("row count mismatch: %d vs %d", rowsBT, rowsCM)
			}
			fmt.Printf("  %3d shipdates: B+Tree %8.2f ms   CM %8.2f ms   scan %8.2f ms   (%d rows)\n",
				n, msf(bt), msf(cm), msf(scan), rowsBT)
		}
		for _, ix := range tc.tbl.Indexes() {
			fmt.Printf("  B+Tree size: %d KB", ix.SizeBytes/1024)
		}
		for _, cm := range tc.tbl.CMs() {
			fmt.Printf(", CM size: %.1f KB (%.1fx smaller)\n\n",
				float64(cm.SizeBytes)/1024,
				float64(tc.tbl.Indexes()[0].SizeBytes)/float64(cm.SizeBytes))
		}
	}
	fmt.Println("the correlation (c_per_u ~ 4) keeps the CM both small and useful: it matches")
	fmt.Println("the B+Tree's access pattern at a fraction of its size. Without the correlated")
	fmt.Println("clustering the CM covers most of the table and degrades toward a scan —")
	fmt.Println("the paper's Figure 3 effect (at paper scale the crossover sits near n=100).")
}

func msf(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

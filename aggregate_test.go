package repro

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// aggRef computes a grouped-aggregate reference naively from full rows
// — count(*), sum(qty int at qtyIdx), avg(price float at priceIdx),
// grouped by groupIdx (none when negative), groups sorted by key —
// mirroring the engine's output contract.
func aggRef(rows []Row, groupIdx, qtyIdx, priceIdx int) []Row {
	type acc struct {
		n    int64
		sumQ int64
		sumP float64
	}
	groups := map[string]*acc{}
	var order []string
	key := func(r Row) string {
		if groupIdx < 0 {
			return ""
		}
		return r[groupIdx].Str()
	}
	for _, r := range rows {
		k := key(r)
		a, ok := groups[k]
		if !ok {
			a = &acc{}
			groups[k] = a
			order = append(order, k)
		}
		a.n++
		a.sumQ += r[qtyIdx].Int()
		a.sumP += r[priceIdx].Float()
	}
	if groupIdx < 0 && len(groups) == 0 {
		groups[""] = &acc{}
		order = []string{""}
	}
	sort.Strings(order)
	var out []Row
	for _, k := range order {
		a := groups[k]
		row := Row{}
		if groupIdx >= 0 {
			row = append(row, StringVal(k))
		}
		avg := 0.0
		if a.n > 0 {
			avg = a.sumP / float64(a.n)
		}
		row = append(row, IntVal(a.n), IntVal(a.sumQ), FloatVal(avg))
		out = append(out, row)
	}
	return out
}

// TestSQLAggregateEquivalence pins every aggregate statement form to a
// naively computed reference and to the native SelectAggregate API, on
// both the natively built and SQL-built databases, through both Exec
// and the ExecScript (SelectMany) batch path.
func TestSQLAggregateEquivalence(t *testing.T) {
	rows := fixtureRows(400)
	nat := nativeFixture(t, rows)
	sql := sqlFixture(t, rows)
	cases := []struct {
		where string
		preds []Pred
	}{
		{"", nil},
		{" WHERE qty = 7", []Pred{Eq("qty", IntVal(7))}},
		{" WHERE qty BETWEEN 3 AND 9", []Pred{Between("qty", IntVal(3), IntVal(9))}},
		{" WHERE qty = 99999", []Pred{Eq("qty", IntVal(99999))}}, // empty input
	}
	for _, c := range cases {
		base := collectNative(t, nat, c.preds...)

		// Ungrouped: one row even over an empty input.
		want := aggRef(base, -1, 1, 2)
		stmt := "SELECT count(*), sum(qty), avg(price) FROM items" + c.where
		for name, db := range map[string]*DB{"native-built": nat, "sql-built": sql} {
			res, err := db.Exec(stmt)
			if err != nil {
				t.Fatalf("%s %q: %v", name, stmt, err)
			}
			if !reflect.DeepEqual(res.Columns, []string{"count(*)", "sum(qty)", "avg(price)"}) {
				t.Errorf("%s %q columns = %v", name, stmt, res.Columns)
			}
			rowsEqual(t, name+" "+stmt, res.Rows, want)

			hdr, aggRows, err := db.SelectAggregate(QuerySpec{
				Table: "items",
				Preds: c.preds,
				Aggs: []Agg{
					{Func: Count},
					{Func: Sum, Col: "qty"},
					{Func: Avg, Col: "price"},
				},
			})
			if err != nil {
				t.Fatalf("%s SelectAggregate%s: %v", name, c.where, err)
			}
			if !reflect.DeepEqual(hdr, res.Columns) {
				t.Errorf("%s native header %v != SQL %v", name, hdr, res.Columns)
			}
			rowsEqual(t, name+" native agg"+c.where, aggRows, want)
		}

		// Grouped by city, groups sorted by key.
		want = aggRef(base, 3, 1, 2)
		stmt = "SELECT city, count(*), sum(qty), avg(price) FROM items" + c.where + " GROUP BY city"
		for name, db := range map[string]*DB{"native-built": nat, "sql-built": sql} {
			res, err := db.Exec(stmt)
			if err != nil {
				t.Fatalf("%s %q: %v", name, stmt, err)
			}
			rowsEqual(t, name+" "+stmt, res.Rows, want)

			// The batch path must agree statement for statement.
			script, err := db.ExecScript(stmt + "; " + stmt)
			if err != nil {
				t.Fatal(err)
			}
			for k, sr := range script {
				if sr.Err != nil {
					t.Fatalf("%s batch stmt %d: %v", name, k, sr.Err)
				}
				rowsEqual(t, fmt.Sprintf("%s batched agg [%d]", name, k), sr.Res.Rows, want)
			}
		}
	}

	// MIN/MAX across kinds, and COUNT(col) == COUNT(*) (no NULLs).
	res, err := sql.Exec("SELECT min(qty), max(qty), min(city), max(city), count(city) FROM items WHERE qty BETWEEN 3 AND 9")
	if err != nil {
		t.Fatal(err)
	}
	base := collectNative(t, nat, Between("qty", IntVal(3), IntVal(9)))
	minQ, maxQ := base[0][1].Int(), base[0][1].Int()
	minC, maxC := base[0][3].Str(), base[0][3].Str()
	for _, r := range base {
		if q := r[1].Int(); q < minQ {
			minQ = q
		} else if q > maxQ {
			maxQ = q
		}
		if c := r[3].Str(); c < minC {
			minC = c
		} else if c > maxC {
			maxC = c
		}
	}
	wantRow := Row{IntVal(minQ), IntVal(maxQ), StringVal(minC), StringVal(maxC), IntVal(int64(len(base)))}
	rowsEqual(t, "min/max", res.Rows, []Row{wantRow})
}

// TestSQLSelectListOrderPermutation pins that aggregate SELECT lists
// come back in written order, not canonical group-then-agg order, and
// that a grouping column may appear after (or without) the aggregates.
func TestSQLSelectListOrderPermutation(t *testing.T) {
	rows := fixtureRows(200)
	db := sqlFixture(t, rows)
	canonical, err := db.Exec("SELECT city, count(*) FROM items GROUP BY city")
	if err != nil {
		t.Fatal(err)
	}
	flipped, err := db.Exec("SELECT count(*), city FROM items GROUP BY city")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(flipped.Columns, []string{"count(*)", "city"}) {
		t.Errorf("flipped columns = %v", flipped.Columns)
	}
	if len(flipped.Rows) != len(canonical.Rows) {
		t.Fatalf("row count %d vs %d", len(flipped.Rows), len(canonical.Rows))
	}
	for i := range flipped.Rows {
		if flipped.Rows[i][0].String() != canonical.Rows[i][1].String() ||
			flipped.Rows[i][1].String() != canonical.Rows[i][0].String() {
			t.Errorf("row %d not permuted: %v vs %v", i, flipped.Rows[i], canonical.Rows[i])
		}
	}
	// Aggregate-only output over a grouped query: one row per group.
	only, err := db.Exec("SELECT count(*) FROM items GROUP BY city")
	if err != nil {
		t.Fatal(err)
	}
	for i := range only.Rows {
		if len(only.Rows[i]) != 1 || only.Rows[i][0].String() != canonical.Rows[i][1].String() {
			t.Errorf("agg-only row %d: %v", i, only.Rows[i])
		}
	}
}

// stableSortRows stable-sorts a copy of rows by one column.
func stableSortRows(rows []Row, col int, desc bool) []Row {
	out := append([]Row(nil), rows...)
	sort.SliceStable(out, func(i, j int) bool {
		c := strings.Compare(out[i][col].String(), out[j][col].String())
		// Numeric columns need numeric order, not string order.
		switch out[i][col].Kind() {
		case Int:
			c = int(out[i][col].Int() - out[j][col].Int())
		case Float:
			switch {
			case out[i][col].Float() < out[j][col].Float():
				c = -1
			case out[i][col].Float() > out[j][col].Float():
				c = 1
			default:
				c = 0
			}
		}
		if desc {
			return c > 0
		}
		return c < 0
	})
	return out
}

// TestSQLOrderByEquivalence pins ORDER BY asc/desc with and without
// LIMIT against a stable after-the-fact sort of the unsorted result,
// through Exec, the batch path, and with ORDER BY on an unprojected
// column.
func TestSQLOrderByEquivalence(t *testing.T) {
	rows := fixtureRows(300)
	nat := nativeFixture(t, rows)
	sql := sqlFixture(t, rows)
	base := collectNative(t, nat, Ge("qty", IntVal(3)))

	cases := []struct {
		stmt string
		want []Row
	}{
		{"SELECT * FROM items WHERE qty >= 3 ORDER BY price", stableSortRows(base, 2, false)},
		{"SELECT * FROM items WHERE qty >= 3 ORDER BY price DESC", stableSortRows(base, 2, true)},
		{"SELECT * FROM items WHERE qty >= 3 ORDER BY price DESC LIMIT 7", stableSortRows(base, 2, true)[:7]},
		{"SELECT * FROM items WHERE qty >= 3 ORDER BY city ASC LIMIT 10", stableSortRows(base, 3, false)[:10]},
	}
	for _, c := range cases {
		for name, db := range map[string]*DB{"native-built": nat, "sql-built": sql} {
			res, err := db.Exec(c.stmt)
			if err != nil {
				t.Fatalf("%s %q: %v", name, c.stmt, err)
			}
			rowsEqual(t, name+" "+c.stmt, res.Rows, c.want)

			script, err := db.ExecScript(c.stmt + "; " + c.stmt)
			if err != nil {
				t.Fatal(err)
			}
			for k, sr := range script {
				if sr.Err != nil {
					t.Fatalf("batch %d: %v", k, sr.Err)
				}
				rowsEqual(t, fmt.Sprintf("%s batched [%d] %s", name, k, c.stmt), sr.Res.Rows, c.want)
			}
		}
	}

	// ORDER BY an unprojected column: sort full rows, then project.
	res, err := sql.Exec("SELECT city FROM items WHERE qty >= 3 ORDER BY price DESC LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	want := projectNative(t, nat, []string{"city"}, stableSortRows(base, 2, true)[:5])
	rowsEqual(t, "order by unprojected", res.Rows, want)

	// ORDER BY with GROUP BY: groups ordered by an aggregate.
	ares, err := sql.Exec("SELECT city, count(*) FROM items GROUP BY city ORDER BY count(*) DESC, city")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ares.Rows); i++ {
		a, b := ares.Rows[i-1], ares.Rows[i]
		if a[1].Int() < b[1].Int() || (a[1].Int() == b[1].Int() && a[0].Str() > b[0].Str()) {
			t.Errorf("group order violated at %d: %v then %v", i, a, b)
		}
	}
}

// orKey gives a fixture row a unique identity ((cat, price) is unique
// in fixtureRows) for set-union references.
func orKey(r Row) string { return r[0].String() + "|" + r[2].String() }

// TestSQLOrEquivalence pins OR queries — both union-of-probes and the
// filtered-scan fallback — against a set-union reference, through SQL,
// the batch path and the native SelectAny / QuerySpec.AnyOf forms.
func TestSQLOrEquivalence(t *testing.T) {
	rows := fixtureRows(400)
	nat := nativeFixture(t, rows)
	sql := sqlFixture(t, rows)

	cases := []struct {
		where     string
		disjuncts [][]Pred
	}{
		{"qty = 3 OR qty = 8", [][]Pred{{Eq("qty", IntVal(3))}, {Eq("qty", IntVal(8))}}},
		{"qty = 3 OR city = 'boston'", [][]Pred{{Eq("qty", IntVal(3))}, {Eq("city", StringVal("boston"))}}},
		{"(qty = 3 AND city = 'toledo') OR price > 45.0",
			[][]Pred{{Eq("qty", IntVal(3)), Eq("city", StringVal("toledo"))}, {Gt("price", FloatVal(45.0))}}},
		// A Ne disjunct cannot probe: the whole OR falls back to one scan.
		{"qty = 3 OR city != 'boston'", [][]Pred{{Eq("qty", IntVal(3))}, {Ne("city", StringVal("boston"))}}},
		// AND distributing over OR (parenthesized) stays equivalent.
		{"qty BETWEEN 3 AND 6 AND (city = 'boston' OR city = 'toledo')",
			[][]Pred{{Between("qty", IntVal(3), IntVal(6)), Eq("city", StringVal("boston"))},
				{Between("qty", IntVal(3), IntVal(6)), Eq("city", StringVal("toledo"))}}},
	}
	for _, c := range cases {
		// Reference: physical-order rows matching at least one disjunct.
		member := map[string]bool{}
		for _, d := range c.disjuncts {
			for _, r := range collectNative(t, nat, d...) {
				member[orKey(r)] = true
			}
		}
		var want []Row
		for _, r := range collectNative(t, nat) {
			if member[orKey(r)] {
				want = append(want, r)
			}
		}

		for name, db := range map[string]*DB{"native-built": nat, "sql-built": sql} {
			stmt := "SELECT * FROM items WHERE " + c.where
			res, err := db.Exec(stmt)
			if err != nil {
				t.Fatalf("%s %q: %v", name, stmt, err)
			}
			rowsEqual(t, name+" "+stmt, res.Rows, want)

			script, err := db.ExecScript(stmt + "; " + stmt)
			if err != nil {
				t.Fatal(err)
			}
			for k, sr := range script {
				if sr.Err != nil {
					t.Fatalf("batch %d: %v", k, sr.Err)
				}
				rowsEqual(t, fmt.Sprintf("%s batched OR [%d]", name, k), sr.Res.Rows, want)
			}

			var got []Row
			err = db.Table("items").SelectAny(func(r Row) bool {
				got = append(got, r)
				return true
			}, c.disjuncts...)
			if err != nil {
				t.Fatalf("%s SelectAny(%s): %v", name, c.where, err)
			}
			rowsEqual(t, name+" SelectAny "+c.where, got, want)

			batch := db.SelectMany([]QuerySpec{{Table: "items", AnyOf: c.disjuncts}})
			if batch[0].Err != nil {
				t.Fatal(batch[0].Err)
			}
			rowsEqual(t, name+" AnyOf spec "+c.where, batch[0].Rows, want)
		}
	}

	// OR + projection + LIMIT: first n of the projected union.
	full, err := sql.Exec("SELECT city, qty FROM items WHERE qty = 3 OR qty = 8")
	if err != nil {
		t.Fatal(err)
	}
	lim, err := sql.Exec("SELECT city, qty FROM items WHERE qty = 3 OR qty = 8 LIMIT 4")
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, "or limit", lim.Rows, full.Rows[:4])

	// OR + aggregation: the paper-shaped aggregate over a disjunction.
	res, err := sql.Exec("SELECT count(*), avg(price) FROM items WHERE qty = 3 OR qty = 8")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != int64(len(full.Rows)) {
		t.Errorf("or count = %v, want %d", res.Rows[0][0], len(full.Rows))
	}
	// Via must be Auto for OR specs.
	bad := sql.SelectMany([]QuerySpec{{Table: "items", Via: TableScan,
		AnyOf: [][]Pred{{Eq("qty", IntVal(3))}, {Eq("qty", IntVal(8))}}}})
	if bad[0].Err == nil {
		t.Error("forced Via with AnyOf accepted")
	}
}

// TestExplainOrUnionNodes drives the planner fixture (one column per
// access path) through OR EXPLAINs and asserts the union node names
// each disjunct's method, with the fallback engaging when a disjunct
// cannot probe.
func TestExplainOrUnionNodes(t *testing.T) {
	db, _ := planFixture(t)
	// u rides the CM, r its pipelined index; both probes together are
	// far cheaper than one 83ms scan, so the planner unions.
	res, err := db.Exec("EXPLAIN SELECT * FROM plans WHERE u = 25 OR r = 77")
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil || len(res.Plan.Nodes) != 2 ||
		res.Plan.Nodes[0].Kind != "union" || res.Plan.Nodes[1].Kind != "filter" {
		t.Fatalf("plan nodes = %+v", res.Plan)
	}
	detail := res.Plan.Nodes[0].Detail
	for _, wantPart := range []string{"cm-scan(cm_u)", "pipelined-index-scan(ix_r)"} {
		if !strings.Contains(detail, wantPart) {
			t.Errorf("union detail %q missing %q", detail, wantPart)
		}
	}
	if res.Rows[0][0].Str() != "union" {
		t.Errorf("EXPLAIN method cell = %q, want union", res.Rows[0][0].Str())
	}

	// The union's rows equal the set-union reference.
	or, err := db.Exec("SELECT * FROM plans WHERE u = 25 OR r = 77")
	if err != nil {
		t.Fatal(err)
	}
	member := map[string]bool{}
	tbl := db.Table("plans")
	for _, preds := range [][]Pred{
		{Eq("u", IntVal(25))}, {Eq("r", IntVal(77))},
	} {
		err := tbl.Select(func(r Row) bool {
			member[r[3].String()] = true // r is unique
			return true
		}, preds...)
		if err != nil {
			t.Fatal(err)
		}
	}
	var want []Row
	err = tbl.Select(func(r Row) bool {
		if member[r[3].String()] {
			want = append(want, r)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, "union rows", or.Rows, want)

	// Summed probe costs past the scan cost fall back by cost: adding
	// the 44ms sorted sweep on s tips 26+22ms past the 83ms scan.
	res, err = db.Exec("EXPLAIN SELECT * FROM plans WHERE u = 25 OR s = 100 OR r = 77")
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Nodes[0].Kind != "scan" || !strings.Contains(res.Plan.Nodes[0].Detail, "fallback") {
		t.Errorf("cost fallback nodes = %+v", res.Plan.Nodes)
	}

	// An unindexable disjunct forces the filtered-scan fallback too.
	res, err = db.Exec("EXPLAIN SELECT * FROM plans WHERE u = 25 OR c != 3")
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Nodes[0].Kind != "scan" || !strings.Contains(res.Plan.Nodes[0].Detail, "fallback") {
		t.Errorf("fallback nodes = %+v", res.Plan.Nodes)
	}
	if res.Plan.Method != TableScan {
		t.Errorf("fallback method = %v", res.Plan.Method)
	}
}

// TestExplainAggSortNodes pins the plan-tree EXPLAIN nodes: the filter,
// agg, sort and limit operators appear above the access node, with the
// heap mode reflecting LIMIT.
func TestExplainAggSortNodes(t *testing.T) {
	rows := fixtureRows(200)
	db := sqlFixture(t, rows)
	res, err := db.Exec("EXPLAIN SELECT city, avg(price) FROM items WHERE qty = 7 GROUP BY city ORDER BY avg(price) DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	nodes := res.Plan.Nodes
	if len(nodes) != 5 || nodes[0].Kind != "scan" || nodes[1].Kind != "filter" ||
		nodes[2].Kind != "agg" || nodes[3].Kind != "sort" || nodes[4].Kind != "limit" {
		t.Fatalf("nodes = %+v", nodes)
	}
	if !strings.Contains(nodes[1].Detail, "qty = 7") {
		t.Errorf("filter node = %q", nodes[1].Detail)
	}
	if !strings.Contains(nodes[2].Detail, "avg(price)") || !strings.Contains(nodes[2].Detail, "group by city") {
		t.Errorf("agg node = %q", nodes[2].Detail)
	}
	if !strings.Contains(nodes[3].Detail, "avg(price) desc") || !strings.Contains(nodes[3].Detail, "top-3 heap") {
		t.Errorf("sort node = %q", nodes[3].Detail)
	}
	// The SQL rows mirror the nodes: one row per operator.
	if len(res.Rows) != 5 || res.Rows[2][0].Str() != "agg" || res.Rows[3][0].Str() != "sort" {
		t.Errorf("EXPLAIN rows = %+v", res.Rows)
	}
	// Aggregation decodes only predicated + aggregated + grouped columns.
	if res.Plan.DecodedCols != 3 { // qty, price, city
		t.Errorf("agg decoded_cols = %d, want 3", res.Plan.DecodedCols)
	}

	// Full sort (no LIMIT) says so.
	res, err = db.Exec("EXPLAIN SELECT * FROM items ORDER BY price")
	if err != nil {
		t.Fatal(err)
	}
	last := res.Plan.Nodes[len(res.Plan.Nodes)-1]
	if last.Kind != "sort" || !strings.Contains(last.Detail, "full sort") {
		t.Errorf("sort node = %+v", last)
	}
}

// TestParallelAggregateDeterminism pins the partial-aggregate merge
// contract: a workers=8 database returns byte-identical aggregate
// results to a workers=1 database — float sums included — because
// chunk boundaries are fixed by the page list and partials merge in
// chunk order. It also runs the aggregate through each forced access
// method, which must all agree.
func TestParallelAggregateDeterminism(t *testing.T) {
	rows := fixtureRows(600)
	serial := Open(Config{Workers: 1})
	parallel := Open(Config{Workers: 8})
	for _, db := range []*DB{serial, parallel} {
		tbl, err := db.CreateTable(TableSpec{
			Name: "items",
			Columns: []Column{
				{Name: "cat", Kind: Int}, {Name: "qty", Kind: Int},
				{Name: "price", Kind: Float}, {Name: "city", Kind: String},
			},
			ClusteredBy:  []string{"cat"},
			BucketTuples: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.Load(rows); err != nil {
			t.Fatal(err)
		}
		if err := tbl.CreateIndex("ix_qty", "qty"); err != nil {
			t.Fatal(err)
		}
		if err := tbl.CreateCM("cm_qty", CMColumn{Name: "qty"}); err != nil {
			t.Fatal(err)
		}
	}
	specs := []QuerySpec{
		{Table: "items", Aggs: []Agg{{Func: Count}, {Func: Sum, Col: "price"}, {Func: Avg, Col: "price"}}},
		{Table: "items", Preds: []Pred{Between("qty", IntVal(3), IntVal(20))},
			Aggs:    []Agg{{Func: Avg, Col: "price"}, {Func: Min, Col: "city"}, {Func: Max, Col: "qty"}},
			GroupBy: []string{"city"}},
		{Table: "items", AnyOf: [][]Pred{{Eq("qty", IntVal(3))}, {Eq("qty", IntVal(8))}},
			Aggs: []Agg{{Func: Sum, Col: "price"}}},
	}
	for i, spec := range specs {
		sh, sr, err := serial.SelectAggregate(spec)
		if err != nil {
			t.Fatalf("spec %d serial: %v", i, err)
		}
		ph, pr, err := parallel.SelectAggregate(spec)
		if err != nil {
			t.Fatalf("spec %d parallel: %v", i, err)
		}
		if !reflect.DeepEqual(sh, ph) {
			t.Errorf("spec %d headers differ: %v vs %v", i, sh, ph)
		}
		rowsEqual(t, fmt.Sprintf("spec %d serial vs parallel", i), pr, sr)
	}

	// Forced access methods agree with Auto (single-conjunction specs).
	base := QuerySpec{Table: "items", Preds: []Pred{Eq("qty", IntVal(7))},
		Aggs: []Agg{{Func: Count}, {Func: Avg, Col: "price"}}}
	_, want, err := parallel.SelectAggregate(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, via := range []AccessMethod{TableScan, SortedIndexScan, PipelinedIndexScan, CMScan} {
		spec := base
		spec.Via = via
		_, got, err := parallel.SelectAggregate(spec)
		if err != nil {
			t.Fatalf("via %v: %v", via, err)
		}
		rowsEqual(t, "agg via "+via.String(), got, want)
	}
}

// TestExecScriptMixedBatchParity is the regression test for the batch
// split: a script mixing projected, unprojected, aggregate, ordered and
// OR SELECTs (plus an erroring one) must return, statement for
// statement, exactly what one-at-a-time Exec returns.
func TestExecScriptMixedBatchParity(t *testing.T) {
	rows := fixtureRows(300)
	db := sqlFixture(t, rows)
	stmts := []string{
		"SELECT * FROM items WHERE qty = 5",
		"SELECT city, qty FROM items WHERE qty BETWEEN 3 AND 6",
		"SELECT count(*), avg(price) FROM items WHERE qty = 5",
		"SELECT city, count(*) FROM items GROUP BY city ORDER BY count(*) DESC LIMIT 3",
		"SELECT * FROM items WHERE qty = 3 OR city = 'boston' LIMIT 6",
		"SELECT ghost FROM items", // binds per-statement, fails alone
		"SELECT price FROM items WHERE qty >= 3 ORDER BY price DESC LIMIT 5",
	}
	results, err := db.ExecScript(strings.Join(stmts, ";\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(stmts) {
		t.Fatalf("%d results for %d statements", len(results), len(stmts))
	}
	for i, stmt := range stmts {
		single, serr := db.Exec(stmt)
		if serr != nil {
			if results[i].Err == nil {
				t.Errorf("stmt %d: batch succeeded where Exec failed (%v)", i, serr)
			}
			continue
		}
		if results[i].Err != nil {
			t.Errorf("stmt %d: batch failed where Exec succeeded: %v", i, results[i].Err)
			continue
		}
		if !reflect.DeepEqual(results[i].Res.Columns, single.Columns) {
			t.Errorf("stmt %d: batch columns %v != %v", i, results[i].Res.Columns, single.Columns)
		}
		rowsEqual(t, fmt.Sprintf("batch parity stmt %d", i), results[i].Res.Rows, single.Rows)
	}
}

// TestAggregateValidation pins the error surface of the new layer on
// both the SQL and native paths.
func TestAggregateValidation(t *testing.T) {
	rows := fixtureRows(50)
	db := sqlFixture(t, rows)
	for _, bad := range []string{
		"SELECT sum(city) FROM items",                    // sum over string
		"SELECT avg(city) FROM items",                    // avg over string
		"SELECT sum(*) FROM items",                       // star outside count
		"SELECT city, count(*) FROM items",               // ungrouped plain column
		"SELECT qty FROM items GROUP BY city",            // not in group by
		"SELECT * FROM items GROUP BY city",              // star grouped
		"SELECT count(*) FROM items ORDER BY qty",        // order col not grouped
		"SELECT city FROM items ORDER BY avg(price)",     // agg order on plain select
		"SELECT count(ghost) FROM items",                 // unknown agg column
		"SELECT count(*) FROM items GROUP BY ghost",      // unknown group column
		"SELECT count(*) FROM items GROUP BY city, city", // duplicate group column
	} {
		if _, err := db.Exec(bad); err == nil {
			t.Errorf("Exec(%q) did not fail", bad)
		}
	}
	if _, _, err := db.SelectAggregate(QuerySpec{Table: "items"}); err == nil {
		t.Error("SelectAggregate without Aggs/GroupBy accepted")
	}
	if _, _, err := db.SelectAggregate(QuerySpec{Table: "items",
		Aggs: []Agg{{Func: Sum, Col: "city"}}}); err == nil {
		t.Error("native sum over string accepted")
	}
	if _, _, err := db.SelectAggregate(QuerySpec{Table: "items",
		Aggs: []Agg{{Func: Count}}, OrderBy: []Order{{Col: "qty"}}}); err == nil {
		t.Error("aggregate ORDER BY over non-output column accepted")
	}
	// ORDER BY a hidden aggregate is allowed in SQL (computed, not shown).
	res, err := db.Exec("SELECT city FROM items GROUP BY city ORDER BY count(*) DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "city" || len(res.Rows) > 2 {
		t.Errorf("hidden order agg: %+v", res)
	}
}

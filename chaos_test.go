// Chaos tests: storms of cancelled and deadline-bounded statements
// racing live writers, storms of probabilistically injected disk
// faults, and a writer killed mid-transaction followed by CM recovery.
// After every storm the engine must hold its invariants exactly — no
// lost rows, no leaked pins, no wedged latches, clean errors only.
package repro

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/value"
)

// ctxOutcome reports whether err is an acceptable end state for a
// statement run under a maybe-cancelled context: success or the
// context's own error, never anything else.
func ctxOutcome(err error) bool {
	return err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// stormCtx derives a context for one chaos iteration: a third of the
// statements run pre-cancelled, a third under a microsecond-scale
// deadline that may expire mid-flight, a third unbounded.
func stormCtx(rng *rand.Rand) (context.Context, context.CancelFunc) {
	switch rng.Intn(3) {
	case 0:
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		return ctx, func() {}
	case 1:
		return context.WithTimeout(context.Background(), time.Duration(50+rng.Intn(800))*time.Microsecond)
	default:
		return context.Background(), func() {}
	}
}

// TestChaosCancelStorm races readers whose contexts cancel at random
// against writers inserting, updating and deleting volatile rows, some
// of those also under dying contexts. Every statement must end in
// success or its context's error, and afterwards the stable row
// population must be exactly intact on all four access methods.
func TestChaosCancelStorm(t *testing.T) {
	db, tbl := buildFaultDB(t, 4)
	const (
		readers  = 4
		writers  = 2
		iters    = 20
		wantRows = 31 * 25 // u in [10,40], stable rows only
	)
	var wg sync.WaitGroup
	errCh := make(chan error, (readers+writers)*iters)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + gid)))
			for i := 0; i < iters; i++ {
				ctx, cancel := stormCtx(rng)
				n := 0
				err := tbl.SelectCtx(ctx, func(Row) bool { n++; return true },
					Between("u", IntVal(10), IntVal(40)))
				cancel()
				if err == nil && n != wantRows {
					errCh <- fmt.Errorf("reader %d iter %d: %d rows, want %d", gid, i, n, wantRows)
				}
				if !ctxOutcome(err) {
					errCh <- fmt.Errorf("reader %d iter %d: unexpected error %v", gid, i, err)
				}
			}
		}(g)
	}
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(2000 + gid)))
			for i := 0; i < iters; i++ {
				c := int64(100000 + gid*1000 + i)
				// The insert runs unbounded and must succeed; the update
				// and delete run under dying contexts and may be cut.
				if err := tbl.Insert(Row{IntVal(c), IntVal(200), StringVal("volatile")}); err != nil {
					errCh <- fmt.Errorf("writer %d iter %d insert: %v", gid, i, err)
					continue
				}
				ctx, cancel := stormCtx(rng)
				_, err := tbl.UpdateCtx(ctx, []Set{{Col: "tag", Val: StringVal("touched")}}, Eq("c", IntVal(c)))
				cancel()
				if !ctxOutcome(err) {
					errCh <- fmt.Errorf("writer %d iter %d update: unexpected error %v", gid, i, err)
				}
				ctx, cancel = stormCtx(rng)
				_, err = tbl.DeleteCtx(ctx, Eq("c", IntVal(c)))
				cancel()
				if !ctxOutcome(err) {
					errCh <- fmt.Errorf("writer %d iter %d delete: unexpected error %v", gid, i, err)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// The storm is over: stable rows are exactly intact on every access
	// method, nothing is pinned, and cancellations were actually
	// exercised (a third of the contexts were born dead).
	for _, method := range []AccessMethod{TableScan, SortedIndexScan, PipelinedIndexScan, CMScan} {
		if n, err := countVia(tbl, method); err != nil || n != wantRows {
			t.Errorf("%v after storm: n=%d err=%v, want %d", method, n, err, wantRows)
		}
	}
	stable := 0
	if err := tbl.Select(func(Row) bool { stable++; return true }, Lt("c", IntVal(4000))); err != nil {
		t.Fatal(err)
	}
	if stable != 4000 {
		t.Errorf("stable rows after storm = %d, want 4000", stable)
	}
	if pinned := db.pool.PinnedFrames(); pinned != 0 {
		t.Errorf("%d frames left pinned after storm", pinned)
	}
	if got := db.Metrics("query.cancelled")[0].Value; got < 1 {
		t.Errorf("query.cancelled = %d, want >= 1", got)
	}
}

// TestChaosFaultStorm runs the equivalence suite under a seeded fault
// plan injecting faults on ~1%% of page reads: every query either
// succeeds with the exact answer or fails wrapping ErrInjected — never
// a panic, never a wrong count — and after disarming no row is lost.
func TestChaosFaultStorm(t *testing.T) {
	db, tbl := buildFaultDB(t, 4)
	const wantRows = 31 * 25
	methods := []AccessMethod{TableScan, SortedIndexScan, PipelinedIndexScan, CMScan}
	db.SetFaultPlan(&FaultPlan{ReadProb: 0.01, Seed: 42})
	failures := 0
	for i := 0; i < 40; i++ {
		if err := db.ColdCache(); err != nil {
			t.Fatal(err)
		}
		n, err := countVia(tbl, methods[i%len(methods)])
		switch {
		case err == nil:
			if n != wantRows {
				t.Fatalf("iter %d (%v): fault-free run returned %d rows, want %d", i, methods[i%len(methods)], n, wantRows)
			}
		case errors.Is(err, ErrInjected):
			failures++
		default:
			t.Fatalf("iter %d (%v): unclean error %v", i, methods[i%len(methods)], err)
		}
		if pinned := db.pool.PinnedFrames(); pinned != 0 {
			t.Fatalf("iter %d: %d frames left pinned", i, pinned)
		}
	}
	db.SetFaultPlan(nil)
	if failures == 0 {
		t.Error("seeded 1% fault plan injected no faults across 40 cold scans")
	}
	if got := db.Metrics("disk.injected_faults")[0].Value; int(got) < failures {
		t.Errorf("disk.injected_faults = %d, want >= %d", got, failures)
	}
	// Disarmed, the table is exactly whole: per-method range counts and
	// the full population, and writes go through.
	for _, method := range methods {
		if n, err := countVia(tbl, method); err != nil || n != wantRows {
			t.Errorf("%v after disarm: n=%d err=%v, want %d", method, n, err, wantRows)
		}
	}
	total := 0
	if err := tbl.Select(func(Row) bool { total++; return true }); err != nil || total != 4000 {
		t.Fatalf("total after disarm: n=%d err=%v, want 4000", total, err)
	}
	if err := tbl.Insert(Row{IntVal(999999), IntVal(1), StringVal("probe")}); err != nil {
		t.Fatalf("insert after storm: %v", err)
	}
	if n, err := tbl.Delete(Eq("c", IntVal(999999))); err != nil || n != 1 {
		t.Fatalf("delete after storm: n=%d err=%v", n, err)
	}
}

// TestWriterKilledMidTxnThenRecovered kills a writer transaction
// between latch bursts (its context cancels mid-InsertBatch), asserts
// the abort leaves no trace, and then rebuilds a CM from the WAL alone:
// the killed transaction must have left the log consistent, so recovery
// matches a CM built live from the surviving rows.
func TestWriterKilledMidTxnThenRecovered(t *testing.T) {
	db := Open(Config{Workers: 2})
	tbl, err := db.CreateTable(TableSpec{
		Name:        "kt",
		Columns:     []Column{{Name: "c", Kind: Int}, {Name: "u", Kind: Int}},
		ClusteredBy: []string{"c"},
		BucketPages: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, 500)
	for i := range rows {
		rows[i] = Row{IntVal(int64(i)), IntVal(int64(i / 25))}
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	mkBatch := func(lo, n int) []value.Row {
		out := make([]value.Row, n)
		for i := range out {
			out[i] = Row{IntVal(int64(lo + i)), IntVal(77)}.internal()
		}
		return out
	}

	// Checkpoint the CM right after creation: bulk loads are not
	// WAL-logged (replay starts after them), so recovery is checkpoint
	// state plus the log from the checkpoint's LSN.
	if err := tbl.CreateCM("u_cm", CMColumn{Name: "u"}); err != nil {
		t.Fatal(err)
	}
	live := tbl.inner.CMOn(1)
	if live == nil {
		t.Fatal("live CM missing")
	}
	var checkpoint bytes.Buffer
	lsn, err := tbl.inner.CheckpointCM(live, &checkpoint)
	if err != nil {
		t.Fatal(err)
	}

	// A committed batch before the kill, so the log beyond the
	// checkpoint holds real work.
	tx := tbl.inner.BeginWrite()
	if err := tx.InsertBatch(mkBatch(1000, 100)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Publish(); err != nil {
		t.Fatal(err)
	}

	// The kill: cancel the statement's context between latch bursts.
	// The second batch must die on the context, and the abort must
	// erase the first batch's staged rows.
	ctx, cancel := context.WithCancel(context.Background())
	tx = tbl.inner.BeginWrite()
	tx.SetContext(ctx)
	if err := tx.InsertBatch(mkBatch(2000, 100)); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := tx.InsertBatch(mkBatch(2100, 100)); !errors.Is(err, context.Canceled) {
		t.Fatalf("insert after kill returned %v, want context.Canceled", err)
	}
	tx.Abort()
	n := 0
	if err := tbl.Select(func(Row) bool { n++; return true }, Ge("c", IntVal(2000))); err != nil || n != 0 {
		t.Fatalf("killed txn leaked %d rows (err=%v)", n, err)
	}

	// Life goes on after the kill: another committed batch.
	tx = tbl.inner.BeginWrite()
	if err := tx.InsertBatch(mkBatch(3000, 50)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Publish(); err != nil {
		t.Fatal(err)
	}
	total := 0
	if err := tbl.Select(func(Row) bool { total++; return true }); err != nil || total != 650 {
		t.Fatalf("population after kill+commit: n=%d err=%v, want 650", total, err)
	}

	// Recovery: rebuild the CM from the checkpoint plus the log past
	// its LSN and compare shapes with the live CM, which tracked every
	// write as it happened. The killed transaction published nothing,
	// so replay reproduces exactly the live state.
	tbl.inner.LockWrite()
	rec, err := tbl.inner.RecoverCM(live.Spec(), &checkpoint, lsn)
	tbl.inner.UnlockWrite()
	if err != nil {
		t.Fatalf("RecoverCM after killed txn: %v", err)
	}
	if !rec.StatsValid() {
		t.Fatal("recovered CM reports invalid statistics")
	}
	if rec.Keys() != live.Keys() || rec.Pairs() != live.Pairs() {
		t.Fatalf("recovered CM shape keys=%d pairs=%d, live keys=%d pairs=%d",
			rec.Keys(), rec.Pairs(), live.Keys(), live.Pairs())
	}
}

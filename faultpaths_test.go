// Error-path invariant tests: after an injected disk fault fails a
// statement on any access method, the engine must be reusable — the
// error is clean (wraps ErrInjected), no buffer frame stays pinned, the
// table latch is free, and follow-up reads and writes succeed with no
// rows lost.
package repro

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/value"
)

// buildFaultDB loads a correlated table (c determines u) with a
// secondary index and a CM on u, so all four access paths apply, sized
// to span a few dozen heap pages.
func buildFaultDB(t testing.TB, workers int) (*DB, *Table) {
	t.Helper()
	db := Open(Config{Workers: workers})
	tbl, err := db.CreateTable(TableSpec{
		Name: "ft",
		Columns: []Column{
			{Name: "c", Kind: Int},
			{Name: "u", Kind: Int},
			{Name: "tag", Kind: String},
		},
		ClusteredBy: []string{"c"},
		BucketPages: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, 0, 4000)
	for c := 0; c < 4000; c++ {
		rows = append(rows, Row{IntVal(int64(c)), IntVal(int64(c / 25)), StringVal(fmt.Sprintf("row-%04d", c))})
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("u_idx", "u"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateCM("u_cm", CMColumn{Name: "u"}); err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

// countVia counts the rows matching u BETWEEN 10 AND 40 via the method.
func countVia(tbl *Table, method AccessMethod) (int, error) {
	n := 0
	err := tbl.SelectVia(method, func(Row) bool { n++; return true },
		Between("u", IntVal(10), IntVal(40)))
	return n, err
}

// TestFaultPathsPerAccessMethod injects a read fault into a cold scan on
// each access method and asserts the full invariant set: clean error,
// zero pinned frames, free latch (a write goes through), and a correct
// follow-up query.
func TestFaultPathsPerAccessMethod(t *testing.T) {
	const wantRows = 31 * 25 // u in [10,40], 25 rows per u
	for _, workers := range []int{1, 4} {
		db, tbl := buildFaultDB(t, workers)
		for _, method := range []AccessMethod{TableScan, SortedIndexScan, PipelinedIndexScan, CMScan} {
			t.Run(fmt.Sprintf("workers=%d/%s", workers, method), func(t *testing.T) {
				if err := db.ColdCache(); err != nil {
					t.Fatal(err)
				}
				db.SetFaultPlan(&FaultPlan{FailReadN: 2})
				_, err := countVia(tbl, method)
				db.SetFaultPlan(nil)
				if err == nil {
					t.Fatal("scan with an armed fault plan succeeded")
				}
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("scan error %v does not wrap ErrInjected", err)
				}
				if pinned := db.pool.PinnedFrames(); pinned != 0 {
					t.Fatalf("%d frames left pinned after fault", pinned)
				}
				// The latch must be free: a writer statement acquires it
				// exclusively and would hang here if the failed scan leaked
				// its shared hold.
				if err := tbl.Insert(Row{IntVal(999999), IntVal(10), StringVal("probe")}); err != nil {
					t.Fatalf("insert after fault: %v", err)
				}
				if n, err := tbl.Delete(Eq("c", IntVal(999999))); err != nil || n != 1 {
					t.Fatalf("delete after fault: n=%d err=%v", n, err)
				}
				n, err := countVia(tbl, method)
				if err != nil {
					t.Fatalf("follow-up query: %v", err)
				}
				if n != wantRows {
					t.Fatalf("follow-up query saw %d rows, want %d", n, wantRows)
				}
			})
		}
	}
}

// TestWALFaultFailsPublishCleanly arms a write fault so the WAL append
// inside Publish fails, and asserts the writer statement dies cleanly:
// the in-memory table, indexes and CMs keep their pre-statement state,
// and after disarming the same batch applies fine.
func TestWALFaultFailsPublishCleanly(t *testing.T) {
	db, tbl := buildFaultDB(t, 1)
	before, err := countVia(tbl, TableScan)
	if err != nil {
		t.Fatal(err)
	}

	// One WAL page is 8 KiB; a few hundred inserts overflow it, forcing
	// Append to write the filled page to disk mid-Publish — the first
	// disk write after arming, since nothing else flushes here.
	batch := make([]Row, 400)
	for i := range batch {
		batch[i] = Row{IntVal(int64(100000 + i)), IntVal(17), StringVal(fmt.Sprintf("wal-fault-%03d", i))}
	}
	db.SetFaultPlan(&FaultPlan{FailWriteN: 1})
	insertBatch := func() error {
		internal := make([]value.Row, len(batch))
		for i, r := range batch {
			internal[i] = r.internal()
		}
		tx := tbl.inner.BeginWrite()
		if err := tx.InsertBatch(internal); err != nil {
			tx.Abort()
			return err
		}
		return tx.Publish()
	}
	err = insertBatch()
	db.SetFaultPlan(nil)
	if err == nil {
		t.Fatal("publish with an armed WAL write fault succeeded")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("publish error %v does not wrap ErrInjected", err)
	}

	// Nothing from the failed statement may be visible.
	n := 0
	if err := tbl.Select(func(Row) bool { n++; return true }, Ge("c", IntVal(100000))); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("failed publish leaked %d rows", n)
	}
	if got, err := countVia(tbl, TableScan); err != nil || got != before {
		t.Fatalf("pre-existing rows after failed publish: n=%d err=%v, want %d", got, err, before)
	}

	// The same batch applies cleanly once the fault is gone.
	if err := insertBatch(); err != nil {
		t.Fatalf("retry after disarm: %v", err)
	}
	n = 0
	if err := tbl.Select(func(Row) bool { n++; return true }, Ge("c", IntVal(100000))); err != nil {
		t.Fatal(err)
	}
	if n != len(batch) {
		t.Fatalf("retried batch shows %d rows, want %d", n, len(batch))
	}
}

// TestFaultDuringUpdateLeavesTableUnchanged fails an UPDATE with a
// repeating injected fault and asserts full writer-statement atomicity:
// no row changed, and the statement works after disarming. The fault
// repeats (every 3rd access) rather than firing once because a
// single-shot fault can land in the planner's statistics scan, which
// deliberately treats stats as advisory and plans without them — the
// statement itself then succeeds, which is correct fault tolerance but
// not what this test wants to exercise.
func TestFaultDuringUpdateLeavesTableUnchanged(t *testing.T) {
	db, tbl := buildFaultDB(t, 4)
	if err := db.ColdCache(); err != nil {
		t.Fatal(err)
	}
	db.SetFaultPlan(&FaultPlan{EveryKth: 3})
	_, err := tbl.Update([]Set{{Col: "tag", Val: StringVal("mutated")}}, Between("u", IntVal(10), IntVal(40)))
	db.SetFaultPlan(nil)
	if err == nil {
		t.Fatal("update with an armed fault plan succeeded")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("update error %v does not wrap ErrInjected", err)
	}
	n := 0
	if err := tbl.Select(func(Row) bool { n++; return true }, Eq("tag", StringVal("mutated"))); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("failed update mutated %d rows", n)
	}
	if pinned := db.pool.PinnedFrames(); pinned != 0 {
		t.Fatalf("%d frames left pinned after update fault", pinned)
	}
	changed, err := tbl.Update([]Set{{Col: "tag", Val: StringVal("mutated")}}, Between("u", IntVal(10), IntVal(40)))
	if err != nil {
		t.Fatalf("update after disarm: %v", err)
	}
	if changed != 31*25 {
		t.Fatalf("update after disarm changed %d rows, want %d", changed, 31*25)
	}
}

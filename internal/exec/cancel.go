package exec

import (
	"context"
	"sync/atomic"
)

// This file is the executor's cancellation support. Every access method
// checks its query's context at chunk granularity: serial scans at page
// boundaries (lazyScan.emit), RID collection every cancelCheckRIDs
// entries, and the parallel harnesses (runTasks, collectEmit) once per
// task plus through a watcher goroutine that mirrors the context onto
// the shared early-stop flag workers already poll. A nil context — the
// default for native callers that never cancel — costs nothing.

// cancelCheckRIDs is how many collected RIDs may pass between two
// context checks in an index or CM RID-collection loop. RID collection
// is pure in-memory B+Tree iteration, far cheaper per entry than a heap
// page visit, so the stride is coarser than the per-page checks of the
// sweep phase.
const cancelCheckRIDs = 1024

// ctxErr is the executor's non-blocking context poll: nil context (or
// one that cannot be cancelled) reports nil, a cancelled or expired one
// reports its error.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// watchCancel mirrors ctx's cancellation onto the executor's shared
// early-stop flag, so every worker polling the flag stops within one
// chunk of the cancellation no matter where it is. It returns a stop
// function the caller must invoke once the run ends (it releases the
// watcher goroutine). A nil or never-cancelled context spawns nothing.
func watchCancel(ctx context.Context, cancel *atomic.Bool) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			cancel.Store(true)
		case <-done:
		}
	}()
	return func() { close(done) }
}

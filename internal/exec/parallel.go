package exec

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/table"
	"repro/internal/value"
)

// The parallel executors fan a scan's independent units — secondary-index
// probe ranges, the CM's clustered-bucket runs, and the heap's page
// ranges — across a bounded worker pool. Each worker collects its
// chunk's matches privately; chunks stream to the caller's RowFunc in
// physical order as they complete, so parallel scans emit rows in the
// same order as their serial counterparts. Returning false from the
// callback cancels the remaining workers at page granularity, keeping
// the early-stop contract cheap (a LIMIT-style caller stops the scan
// soon after its limit, it does not pay for a full sweep).
//
// All paths filter on encoded tuple bytes with the compiled TupleFilter;
// only surviving tuples materialize, and only the query's referenced +
// projected columns are decoded. Parallel collectors buffer survivors
// past the scan, so each survivor gets a fresh row (the serial executors
// reuse a scratch row instead — see the RowFunc contract).
//
// Callers must hold the table latch in shared mode (the repro facade
// does) so workers see one consistent table state; the buffer pool and
// simulated disk underneath are thread-safe.
//
// With workers <= 1 every executor delegates to its serial twin, keeping
// single-query latency identical to the sequential engine.

// DefaultWorkers returns the default scan fan-out, GOMAXPROCS.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// matchRow is one collected result row.
type matchRow struct {
	rid heap.RID
	row value.Row
}

// runTasks executes run(0..n-1) across at most workers goroutines and
// returns the first error. A failing task cancels tasks not yet started,
// and a cancelled ctx stops the fan-out between tasks and returns the
// context's error. Used for fan-outs whose results are merged after the
// barrier (RID collection); ordered streaming emission uses collectEmit
// instead.
func runTasks(ctx context.Context, workers, n int, run func(task int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctxErr(ctx); err != nil {
				return err
			}
			if err := run(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	stopWatch := watchCancel(ctx, &failed)
	defer stopWatch()
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := run(i); err != nil {
					errOnce.Do(func() { firstErr = err })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr == nil {
		// The run may have stopped because the watcher tripped the flag:
		// report the cancellation instead of silently returning partial
		// results.
		firstErr = ctxErr(ctx)
	}
	return firstErr
}

// chunkSlices splits n items into at most chunks near-equal contiguous
// [from, to) index ranges.
func chunkSlices(n, chunks int) [][2]int {
	if chunks > n {
		chunks = n
	}
	if chunks < 1 {
		chunks = 1
	}
	out := make([][2]int, 0, chunks)
	base, extra := n/chunks, n%chunks
	at := 0
	for i := 0; i < chunks; i++ {
		sz := base
		if i < extra {
			sz++
		}
		out = append(out, [2]int{at, at + sz})
		at += sz
	}
	return out
}

// collectEmit runs scan(0..n-1) across the worker pool and streams each
// chunk's rows to fn in chunk order as soon as all earlier chunks have
// been emitted. When fn returns false, or a chunk fails, the shared
// cancel flag stops in-flight and unstarted chunks; a cancelled ctx
// trips the same flag through a watcher goroutine, so every worker
// stops within one chunk and the run returns the context's error.
func collectEmit(ctx context.Context, workers, n int, scan func(chunk int, cancel *atomic.Bool) ([]matchRow, error), fn RowFunc) error {
	type chunkResult struct {
		rows []matchRow
		err  error
	}
	var cancel atomic.Bool
	stopWatch := watchCancel(ctx, &cancel)
	defer stopWatch()
	results := make([]chan chunkResult, n)
	for i := range results {
		results[i] = make(chan chunkResult, 1)
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	nw := workers
	if nw > n {
		nw = n
	}
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if cancel.Load() {
					results[i] <- chunkResult{}
					continue
				}
				rows, err := scan(i, &cancel)
				if err != nil {
					cancel.Store(true)
				}
				results[i] <- chunkResult{rows: rows, err: err}
			}
		}()
	}
	var firstErr error
	stopped := false
	for i := 0; i < n; i++ {
		r := <-results[i]
		// Errors surfacing after an early stop come from cancelled
		// in-flight chunks whose results are discarded anyway; the
		// serial path would never have reached those pages.
		if r.err != nil && firstErr == nil && !stopped {
			firstErr = r.err
		}
		if firstErr != nil || stopped {
			continue
		}
		for _, m := range r.rows {
			if !fn(m.rid, m.row) {
				stopped = true
				cancel.Store(true)
				break
			}
		}
	}
	wg.Wait()
	if firstErr == nil && !stopped {
		// A context cancellation trips the shared flag without failing
		// any chunk; report it rather than returning partial rows as a
		// clean result.
		firstErr = ctxErr(ctx)
	}
	return firstErr
}

// scanChunks oversplits a sweep's work into more chunks than workers,
// so an early stop's cancellation skips unstarted chunks instead of
// finding every chunk already in flight; a minimum chunk size keeps
// boundary seeks amortized.
func scanChunks(workers, pages int) int {
	const (
		oversplit     = 4
		minChunkPages = 8
	)
	n := workers * oversplit
	if max := pages / minChunkPages; n > max {
		n = max
	}
	if n < workers {
		n = workers
	}
	return n
}

// collectPageRange sweeps the contiguous heap pages [lo, hi], filtering
// tuples on their encoded bytes (lazyScan.collect) and appending
// surviving rows to out. cancel aborts at page boundaries when the
// scan's results are no longer needed.
func collectPageRange(t *table.Table, lo, hi int64, ls *lazyScan, cancel *atomic.Bool, out []matchRow) ([]matchRow, error) {
	var innerErr error
	curPage := int64(-1)
	ta := newTally()
	defer func() { ta.flush(ls.obs) }()
	err := t.Heap().ScanPagesAt(lo, hi, ls.snap, func(rid heap.RID, tuple []byte) bool {
		if rid.Page != curPage {
			curPage = rid.Page
			ta.page(rid.Page)
			if cancel != nil && cancel.Load() {
				return false
			}
		}
		row, err := ls.collect(tuple, &ta)
		if err != nil {
			innerErr = err
			return false
		}
		if row != nil {
			out = append(out, matchRow{rid: rid, row: row})
		}
		return true
	})
	if innerErr != nil {
		return out, innerErr
	}
	return out, err
}

// collectPages runs the gap-coalescing page sweep over pages, returning
// the matching rows. It shares the run economics with the serial
// sweepPages via forEachPageRun.
func collectPages(t *table.Table, pages []int64, ls *lazyScan, cancel *atomic.Bool) ([]matchRow, error) {
	var out []matchRow
	err := forEachPageRun(pages, maxGapFor(t), func(lo, hi int64) (bool, error) {
		if cancel != nil && cancel.Load() {
			return false, nil
		}
		var err error
		out, err = collectPageRange(t, lo, hi, ls, cancel, out)
		return err == nil, err
	})
	return out, err
}

// parallelSweepPages sweeps the sorted distinct heap pages with the
// worker pool: contiguous chunks of the page list are swept
// concurrently and stream to fn in physical order.
func parallelSweepPages(t *table.Table, pages []int64, q Query, workers int, fn RowFunc) error {
	return parallelSweepPagesLS(t, pages, newLazyScan(t, q), workers, fn)
}

// parallelSweepPagesLS is parallelSweepPages over a pre-built lazyScan,
// shared with the OR union executor.
func parallelSweepPagesLS(t *table.Table, pages []int64, ls *lazyScan, workers int, fn RowFunc) error {
	if workers <= 1 || len(pages) < 2 {
		return sweepPagesLS(t, pages, ls, fn)
	}
	chunks := chunkSlices(len(pages), scanChunks(workers, len(pages)))
	return collectEmit(ls.ctx, workers, len(chunks), func(i int, cancel *atomic.Bool) ([]matchRow, error) {
		return collectPages(t, pages[chunks[i][0]:chunks[i][1]], ls, cancel)
	}, fn)
}

// ParallelTableScan evaluates the query with a full heap scan fanned out
// over the worker pool: the page range [0, n) splits into contiguous
// chunks swept concurrently. Rows stream to fn in physical order. With
// workers <= 1 it is exactly TableScan.
func ParallelTableScan(t *table.Table, q Query, workers int, fn RowFunc) error {
	return parallelTableScanLS(t, newLazyScan(t, q), workers, fn)
}

// parallelTableScanLS is ParallelTableScan over a pre-built lazyScan,
// shared with the OR fallback executor.
func parallelTableScanLS(t *table.Table, ls *lazyScan, workers int, fn RowFunc) error {
	n := t.Heap().NumPages()
	if workers <= 1 || n < 2 {
		return tableScanLS(t, ls, fn)
	}
	chunks := chunkSlices(int(n), scanChunks(workers, int(n)))
	return collectEmit(ls.ctx, workers, len(chunks), func(i int, cancel *atomic.Bool) ([]matchRow, error) {
		return collectPageRange(t, int64(chunks[i][0]), int64(chunks[i][1])-1, ls, cancel, nil)
	}, fn)
}

// parallelRangeRIDs collects the RIDs of every index entry in the probe
// ranges, fanning ranges out across the worker pool. The returned order
// is range-major (range i's RIDs before range i+1's), matching the
// serial collectRIDs.
func parallelRangeRIDs(ctx context.Context, ix *table.Index, ranges []probeRange, workers int) ([]heap.RID, error) {
	ridLists := make([][]heap.RID, len(ranges))
	err := runTasks(ctx, workers, len(ranges), func(i int) error {
		var rids []heap.RID
		err := ix.ScanRange(ranges[i].Lo, ranges[i].Hi, func(rid heap.RID) bool {
			rids = append(rids, rid)
			return true
		})
		ridLists[i] = rids
		return err
	})
	if err != nil {
		return nil, err
	}
	var rids []heap.RID
	for _, l := range ridLists {
		rids = append(rids, l...)
	}
	return rids, nil
}

// parallelCMRIDs probes the CM for the query's clustered bucket runs and
// collects the clustered-index RIDs those runs cover, fanning the runs
// out across the worker pool.
func parallelCMRIDs(t *table.Table, cm *core.CM, q Query, workers int) ([]heap.RID, error) {
	buckets, err := cmBuckets(cm, q)
	if err != nil {
		return nil, err
	}
	runs := bucketRuns(buckets)
	dir := t.Buckets()
	ridLists := make([][]heap.RID, len(runs))
	err = runTasks(q.Ctx, workers, len(runs), func(i int) error {
		lo := dir.LowerBound(runs[i][0])
		hiExcl, _ := dir.UpperBound(runs[i][1]) // nil means scan to the end
		var rids []heap.RID
		err := t.Clustered().ScanKeyRange(lo, hiExcl, func(rid heap.RID) bool {
			rids = append(rids, rid)
			return true
		})
		ridLists[i] = rids
		return err
	})
	if err != nil {
		return nil, err
	}
	var rids []heap.RID
	for _, l := range ridLists {
		rids = append(rids, l...)
	}
	return rids, nil
}

// ParallelSortedIndexScan is SortedIndexScan with both phases fanned out:
// the sorted probe ranges are collected by concurrent workers, and the
// deduplicated heap pages are swept by concurrent workers. With
// workers <= 1 it is exactly SortedIndexScan.
func ParallelSortedIndexScan(t *table.Table, ix *table.Index, q Query, workers int, fn RowFunc) error {
	if workers <= 1 {
		return SortedIndexScan(t, ix, q, fn)
	}
	rids, err := parallelRangeRIDs(q.Ctx, ix, sortRanges(probeRanges(ix, q)), workers)
	if err != nil {
		return err
	}
	return parallelSweepPages(t, pagesOf(rids), q, workers, fn)
}

// ParallelCMScan is CMScan with the clustered-bucket runs and the heap
// sweep fanned out over the worker pool: each run of adjacent clustered
// buckets becomes an independent clustered-index range scan collecting
// RIDs, then the deduplicated pages are swept concurrently and
// re-filtered with the original predicates. With workers <= 1 it is
// exactly CMScan.
func ParallelCMScan(t *table.Table, cm *core.CM, q Query, workers int, fn RowFunc) error {
	if workers <= 1 {
		return CMScan(t, cm, q, fn)
	}
	covered := false
	for _, col := range cm.Spec().UCols {
		if q.IndexablePredOn(col) != nil {
			covered = true
			break
		}
	}
	if !covered {
		return fmt.Errorf("exec: query predicates none of the CM's columns")
	}
	rids, err := parallelCMRIDs(t, cm, q, workers)
	if err != nil {
		return err
	}
	return parallelSweepPages(t, pagesOf(rids), q, workers, fn)
}

// probeBatchSize bounds how many RIDs a batched probe fetches per heap
// pass: it sets the fetch granularity (and the size of the per-batch
// lookup structures), and an early stop (LIMIT) cancels between
// batches. A range's RID list and its collected rows still scale with
// the range itself — collectEmit buffers one chunk's rows either way.
const probeBatchSize = 4096

// BatchedIndexScan is the batched async form of PipelinedIndexScan: the
// probe ranges fan out across the worker pool, each worker accumulates
// its range's RIDs in index key order and fetches them batch by batch
// with the gap-coalescing page runs (so scattered fetches become few
// physical sweeps), and surviving rows stream to fn in the exact order
// the serial pipelined scan would emit them — range by range, key order
// within a range. First-match/LIMIT early stops cancel in-flight ranges
// at page granularity. With workers <= 1, or with a single probe range
// (nothing to fan out, and the serial iterator keeps first-match
// economics), it is exactly PipelinedIndexScan.
func BatchedIndexScan(t *table.Table, ix *table.Index, q Query, workers int, fn RowFunc) error {
	ranges, point := indexProbeRanges(ix.Cols, q) // serial emission order: as returned
	if workers <= 1 || len(ranges) < 2 {
		// A single probe range has nothing to fan out, and the serial
		// iterator keeps the pipelined path's first-match economics: a
		// LIMIT-1 caller stops after a handful of fetches instead of
		// waiting for the whole range's RIDs to collect. The pipelined
		// path prunes with the bloom itself, so don't prune here too
		// (it would double-count the skips).
		return PipelinedIndexScan(t, ix, q, fn)
	}
	ranges = pruneRanges(ix, ranges, point, q.Obs)
	ls := newLazyScan(t, q)
	return collectEmit(ls.ctx, workers, len(ranges), func(i int, cancel *atomic.Bool) ([]matchRow, error) {
		return probeRangeBatched(t, ix, ranges[i], ls, cancel)
	}, fn)
}

// probeRangeBatched probes one index range, accumulating its RIDs in key
// order, then fetches them in probeBatchSize batches through the heap.
func probeRangeBatched(t *table.Table, ix *table.Index, r probeRange, ls *lazyScan, cancel *atomic.Bool) ([]matchRow, error) {
	var rids []heap.RID
	err := ix.ScanRange(r.Lo, r.Hi, func(rid heap.RID) bool {
		if len(rids)&1023 == 1023 && cancel != nil && cancel.Load() {
			return false // cancelled: partial results are discarded anyway
		}
		rids = append(rids, rid)
		return true
	})
	if err != nil {
		return nil, err
	}
	var out []matchRow
	for start := 0; start < len(rids); start += probeBatchSize {
		if cancel != nil && cancel.Load() {
			return out, nil
		}
		end := start + probeBatchSize
		if end > len(rids) {
			end = len(rids)
		}
		batch, err := fetchRIDBatch(t, rids[start:end], ls, cancel)
		if err != nil {
			return out, err
		}
		out = append(out, batch...)
	}
	return out, nil
}

// fetchRIDBatch reads the rows of one RID batch via a physical-order
// page sweep (gap-coalesced runs) and returns the surviving rows in the
// batch's original (index key) order, preserving the pipelined scan's
// emission order while paying the sorted scan's I/O pattern.
func fetchRIDBatch(t *table.Table, batch []heap.RID, ls *lazyScan, cancel *atomic.Bool) ([]matchRow, error) {
	want := make(map[heap.RID]struct{}, len(batch))
	for _, rid := range batch {
		want[rid] = struct{}{}
	}
	pages := pagesOf(append([]heap.RID(nil), batch...)) // keep batch order intact
	rows := make(map[heap.RID]value.Row, len(batch))
	ta := newTally()
	defer func() { ta.flush(ls.obs) }()
	err := forEachPageRun(pages, maxGapFor(t), func(lo, hi int64) (bool, error) {
		if cancel != nil && cancel.Load() {
			return false, nil
		}
		var innerErr error
		curPage := int64(-1)
		err := t.Heap().ScanPagesAt(lo, hi, ls.snap, func(rid heap.RID, tuple []byte) bool {
			if rid.Page != curPage {
				curPage = rid.Page
				ta.page(rid.Page)
				if cancel != nil && cancel.Load() {
					return false
				}
			}
			if _, ok := want[rid]; !ok {
				return true
			}
			row, err := ls.collect(tuple, &ta)
			if err != nil {
				innerErr = err
				return false
			}
			if row != nil {
				rows[rid] = row
			}
			return true
		})
		if innerErr != nil {
			return false, innerErr
		}
		return err == nil, err
	})
	if err != nil {
		return nil, err
	}
	out := make([]matchRow, 0, len(rows))
	for _, rid := range batch {
		if row, ok := rows[rid]; ok {
			out = append(out, matchRow{rid: rid, row: row})
		}
	}
	return out, nil
}

// RunParallel executes the plan with the given scan fan-out. The
// pipelined index scan runs as its batched async twin: probe ranges fan
// out, RID batches fetch through coalesced page runs, and emission order
// matches the serial scan.
func (p Plan) RunParallel(t *table.Table, q Query, workers int, fn RowFunc) error {
	switch p.Method {
	case MethodTableScan:
		return ParallelTableScan(t, q, workers, fn)
	case MethodPipelined:
		return BatchedIndexScan(t, p.Index, q, workers, fn)
	case MethodSorted:
		return ParallelSortedIndexScan(t, p.Index, q, workers, fn)
	case MethodCM:
		return ParallelCMScan(t, p.CM, q, workers, fn)
	default:
		return fmt.Errorf("exec: unknown method %v", p.Method)
	}
}

package exec

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/heap"
	"repro/internal/value"
)

// collectVia gathers payloads in emission order.
func collectVia(t *testing.T, run func(fn RowFunc) error) []string {
	t.Helper()
	var got []string
	if err := run(func(_ heap.RID, row value.Row) bool {
		got = append(got, row[2].S)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func sameSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParallelMatchesSerial checks that every parallel executor returns
// exactly the serial executor's rows, in the same (physical) order, for
// point, IN and range predicates across worker counts.
func TestParallelMatchesSerial(t *testing.T) {
	db := buildTestDB(t, 6000, 42, 0)
	queries := []Query{
		NewQuery(Eq(1, value.NewInt(17))),
		NewQuery(In(1, value.NewInt(3), value.NewInt(25), value.NewInt(44))),
		NewQuery(Between(1, value.NewInt(10), value.NewInt(14))),
		NewQuery(In(1, value.NewInt(7), value.NewInt(31)), Ge(0, value.NewInt(50))),
	}
	for qi, q := range queries {
		serialTS := collectVia(t, func(fn RowFunc) error { return TableScan(db.tbl, q, fn) })
		serialSI := collectVia(t, func(fn RowFunc) error { return SortedIndexScan(db.tbl, db.ix, q, fn) })
		serialCM := collectVia(t, func(fn RowFunc) error { return CMScan(db.tbl, db.cm, q, fn) })
		for _, w := range []int{1, 2, 4, 9} {
			t.Run(fmt.Sprintf("q%d/workers%d", qi, w), func(t *testing.T) {
				gotTS := collectVia(t, func(fn RowFunc) error { return ParallelTableScan(db.tbl, q, w, fn) })
				if !sameSlices(serialTS, gotTS) {
					t.Errorf("table scan: parallel (%d rows) != serial (%d rows)", len(gotTS), len(serialTS))
				}
				gotSI := collectVia(t, func(fn RowFunc) error { return ParallelSortedIndexScan(db.tbl, db.ix, q, w, fn) })
				if !sameSlices(serialSI, gotSI) {
					t.Errorf("sorted index scan: parallel (%d rows) != serial (%d rows)", len(gotSI), len(serialSI))
				}
				gotCM := collectVia(t, func(fn RowFunc) error { return ParallelCMScan(db.tbl, db.cm, q, w, fn) })
				if !sameSlices(serialCM, gotCM) {
					t.Errorf("cm scan: parallel (%d rows) != serial (%d rows)", len(gotCM), len(serialCM))
				}
			})
		}
	}
}

// TestBatchedIndexScanMatchesPipelined checks the batched async probe
// emits exactly the serial pipelined scan's rows in the same (index key)
// order, across worker counts, for point, IN and range probes.
func TestBatchedIndexScanMatchesPipelined(t *testing.T) {
	db := buildTestDB(t, 6000, 21, 0)
	queries := []Query{
		NewQuery(Eq(1, value.NewInt(17))),
		NewQuery(In(1, value.NewInt(3), value.NewInt(25), value.NewInt(44))),
		NewQuery(Between(1, value.NewInt(10), value.NewInt(14))),
		NewQuery(In(1, value.NewInt(7), value.NewInt(31)), Ge(0, value.NewInt(50))),
	}
	for qi, q := range queries {
		serial := collectVia(t, func(fn RowFunc) error { return PipelinedIndexScan(db.tbl, db.ix, q, fn) })
		if qi < 3 && len(serial) == 0 {
			t.Fatalf("q%d matched nothing; fixture broken", qi)
		}
		for _, w := range []int{1, 2, 4, 9} {
			got := collectVia(t, func(fn RowFunc) error { return BatchedIndexScan(db.tbl, db.ix, q, w, fn) })
			if !sameSlices(serial, got) {
				t.Errorf("q%d workers %d: batched (%d rows) != pipelined (%d rows)", qi, w, len(got), len(serial))
			}
		}
	}
}

// TestBatchedIndexScanEarlyStop checks LIMIT-style early stops emit
// exactly a prefix of the serial pipelined result. The IN list fans out
// into multiple probe ranges, so this exercises the batched path (a
// single range would fall back to the serial iterator).
func TestBatchedIndexScanEarlyStop(t *testing.T) {
	db := buildTestDB(t, 4000, 13, 0)
	q := NewQuery(In(1, value.NewInt(5), value.NewInt(9), value.NewInt(14),
		value.NewInt(21), value.NewInt(28), value.NewInt(30)))
	full := collectVia(t, func(fn RowFunc) error { return PipelinedIndexScan(db.tbl, db.ix, q, fn) })
	if len(full) < 10 {
		t.Fatalf("fixture too selective: %d rows", len(full))
	}
	for _, limit := range []int{1, 7} {
		var got []string
		err := BatchedIndexScan(db.tbl, db.ix, q, 4, func(_ heap.RID, row value.Row) bool {
			got = append(got, row[2].S)
			return len(got) < limit
		})
		if err != nil {
			t.Fatal(err)
		}
		if !sameSlices(full[:limit], got) {
			t.Errorf("limit %d emitted %v, want prefix %v", limit, got, full[:limit])
		}
	}
}

// TestProjectionPushdownAcrossMethods checks that a query with Proj set
// returns the same projected + predicated entries as a full query, on
// every access method, serial and parallel, and leaves unreferenced
// entries unmaterialized.
func TestProjectionPushdownAcrossMethods(t *testing.T) {
	db := buildTestDB(t, 3000, 31, 0)
	full := NewQuery(In(1, value.NewInt(5), value.NewInt(19)))
	proj := full
	proj.Proj = []int{2} // payload only; u rides along as the predicate column
	want := collectVia(t, func(fn RowFunc) error { return TableScan(db.tbl, full, fn) })
	if len(want) == 0 {
		t.Fatal("fixture query matched nothing")
	}
	methods := map[string]func(fn RowFunc) error{
		"tablescan":          func(fn RowFunc) error { return TableScan(db.tbl, proj, fn) },
		"pipelined":          func(fn RowFunc) error { return PipelinedIndexScan(db.tbl, db.ix, proj, fn) },
		"sorted":             func(fn RowFunc) error { return SortedIndexScan(db.tbl, db.ix, proj, fn) },
		"cm":                 func(fn RowFunc) error { return CMScan(db.tbl, db.cm, proj, fn) },
		"parallel-tablescan": func(fn RowFunc) error { return ParallelTableScan(db.tbl, proj, 4, fn) },
		"batched-probe":      func(fn RowFunc) error { return BatchedIndexScan(db.tbl, db.ix, proj, 4, fn) },
		"parallel-sorted":    func(fn RowFunc) error { return ParallelSortedIndexScan(db.tbl, db.ix, proj, 4, fn) },
		"parallel-cm":        func(fn RowFunc) error { return ParallelCMScan(db.tbl, db.cm, proj, 4, fn) },
	}
	for name, run := range methods {
		var got []string
		err := run(func(_ heap.RID, row value.Row) bool {
			if row[1].I < 0 || (row[1].I != 5 && row[1].I != 19) {
				t.Errorf("%s: predicated column not materialized or filter leaked: u=%d", name, row[1].I)
			}
			// Matching rows have u in {5, 19}, so c = 10*u ± noise is
			// never 0: a zero entry proves c stayed unmaterialized.
			if row[0].I != 0 {
				t.Errorf("%s: unprojected column c materialized: %v", name, row[0])
			}
			got = append(got, row[2].S)
			return true
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// The table scan variants emit in physical order like the full
		// query; index-driven variants emit their own (consistent)
		// orders, so compare as multisets via sorted copies.
		sortedGot := append([]string(nil), got...)
		sortedWant := append([]string(nil), want...)
		sort.Strings(sortedGot)
		sort.Strings(sortedWant)
		if !sameSlices(sortedWant, sortedGot) {
			t.Errorf("%s: projected scan returned %d rows, full scan %d", name, len(got), len(want))
		}
	}
}

// TestParallelEarlyStop checks that returning false from the row
// callback stops emission: the rows seen are exactly a prefix of the
// serial result.
func TestParallelEarlyStop(t *testing.T) {
	db := buildTestDB(t, 4000, 7, 0)
	q := NewQuery(Between(1, value.NewInt(5), value.NewInt(30)))
	full := collectVia(t, func(fn RowFunc) error { return TableScan(db.tbl, q, fn) })
	if len(full) < 10 {
		t.Fatalf("fixture too selective: %d rows", len(full))
	}
	const limit = 7
	var got []string
	err := ParallelTableScan(db.tbl, q, 4, func(_ heap.RID, row value.Row) bool {
		got = append(got, row[2].S)
		return len(got) < limit
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sameSlices(full[:limit], got) {
		t.Errorf("early stop emitted %v, want prefix %v", got, full[:limit])
	}
}

// TestParallelCMScanRejectsUncovered mirrors the serial CMScan contract.
func TestParallelCMScanRejectsUncovered(t *testing.T) {
	db := buildTestDB(t, 1000, 3, 0)
	q := NewQuery(Eq(0, value.NewInt(1))) // predicate on c only, not the CM's u
	err := ParallelCMScan(db.tbl, db.cm, q, 4, func(heap.RID, value.Row) bool { return true })
	if err == nil {
		t.Fatal("expected error for query not covering the CM")
	}
}

// TestRunTasksError checks the pool propagates the first error and stops
// scheduling.
func TestRunTasksError(t *testing.T) {
	boom := fmt.Errorf("boom")
	err := runTasks(nil, 4, 100, func(i int) error {
		if i == 10 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestChunkSlices checks partitioning covers [0, n) without overlap.
func TestChunkSlices(t *testing.T) {
	for _, tc := range [][2]int{{10, 3}, {3, 10}, {1, 1}, {16, 4}, {7, 8}} {
		chunks := chunkSlices(tc[0], tc[1])
		at := 0
		for _, ch := range chunks {
			if ch[0] != at {
				t.Fatalf("chunkSlices(%d,%d): gap at %d: %v", tc[0], tc[1], at, chunks)
			}
			if ch[1] <= ch[0] {
				t.Fatalf("chunkSlices(%d,%d): empty chunk: %v", tc[0], tc[1], chunks)
			}
			at = ch[1]
		}
		if at != tc[0] {
			t.Fatalf("chunkSlices(%d,%d): covers %d, want %d", tc[0], tc[1], at, tc[0])
		}
	}
}

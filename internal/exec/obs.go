package exec

import "sync/atomic"

// ScanObs accumulates an access path's physical work: tuples examined
// (filter evaluations on encoded heap bytes), surviving rows handed to
// the caller, and heap page visits. The executor keeps per-chunk local
// tallies and flushes them here in one shot, so the hot per-tuple loop
// never touches an atomic — attaching a ScanObs to a query costs a few
// atomic adds per chunk, which is what keeps the instrumentation
// overhead gate (BENCH_7) honest. A nil *ScanObs disables counting.
//
// The same ScanObs may be shared by every disjunct of an OR query and
// by concurrent scan workers; all fields are atomics.
type ScanObs struct {
	// Tuples counts encoded tuples the filter examined.
	Tuples atomic.Int64
	// Rows counts survivors emitted to the caller.
	Rows atomic.Int64
	// Pages counts heap page visits (a page revisited by a later probe
	// batch or chunk counts again; buffer-pool hit/miss deltas say
	// whether a visit touched the disk).
	Pages atomic.Int64
	// Blooms counts point probes a bloom filter pruned (index or CM):
	// lookups that returned empty without touching the structure.
	Blooms atomic.Int64
}

// AddBlooms folds pruned-probe counts into o (nil obs: drop).
func (o *ScanObs) AddBlooms(n int64) {
	if o == nil || n == 0 {
		return
	}
	o.Blooms.Add(n)
}

// Add folds another observation set into o (used to roll analyzed-run
// observations into the engine-wide counters).
func (o *ScanObs) Add(tuples, rows, pages int64) {
	if o == nil {
		return
	}
	if tuples != 0 {
		o.Tuples.Add(tuples)
	}
	if rows != 0 {
		o.Rows.Add(rows)
	}
	if pages != 0 {
		o.Pages.Add(pages)
	}
}

// tally is a scan worker's local observation buffer: plain ints bumped
// in the per-tuple loop, flushed to the shared ScanObs once per chunk
// (or once per serial scan).
type tally struct {
	tuples, rows int64
	pages        int64
	lastPage     int64 // last heap page seen, -1 before the first
}

// newTally returns a tally ready to count from the first page.
func newTally() tally { return tally{lastPage: -1} }

// page notes a visit to heap page p, counting page transitions so a
// run of tuples on one page costs one increment.
func (ta *tally) page(p int64) {
	if p != ta.lastPage {
		ta.pages++
		ta.lastPage = p
	}
}

// flush folds the tally into obs (nil obs: drop) and zeroes it.
func (ta *tally) flush(obs *ScanObs) {
	obs.Add(ta.tuples, ta.rows, ta.pages)
	*ta = newTally()
}

package exec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/heap"
	"repro/internal/table"
	"repro/internal/value"
)

// filterTestSchema mixes the three kinds with a string in the middle, so
// columns cover every layout case: constant offsets (a, f, s), a
// fixed-width column past the first string (b), and a second var-length
// column (s2).
func filterTestSchema() table.Schema {
	return table.NewSchema(
		table.Column{Name: "a", Kind: value.Int},
		table.Column{Name: "f", Kind: value.Float},
		table.Column{Name: "s", Kind: value.String},
		table.Column{Name: "b", Kind: value.Int},
		table.Column{Name: "s2", Kind: value.String},
	)
}

// filterTestQueries covers every operator (including exclusive bounds
// and Ne), every kind, var-offset columns, open ranges, conjunctions,
// and a kind-mismatched constant (which value.Compare orders by kind).
func filterTestQueries() []Query {
	iv := value.NewInt
	fv := value.NewFloat
	sv := value.NewString
	return []Query{
		NewQuery(Eq(0, iv(3))),
		NewQuery(Eq(1, fv(1.5))),
		NewQuery(Eq(2, sv("boston"))),
		NewQuery(Eq(3, iv(-2))),
		NewQuery(Eq(4, sv(""))),
		NewQuery(Ne(0, iv(0))),
		NewQuery(Ne(2, sv("x"))),
		NewQuery(Ne(4, sv("toledo"))),
		NewQuery(In(0, iv(1), iv(2), iv(3))),
		NewQuery(In(2, sv("a"), sv("bb"), sv(""))),
		NewQuery(In(1, fv(0), fv(-1.25))),
		NewQuery(Between(0, iv(-1), iv(4))),
		NewQuery(Between(1, fv(-2), fv(2))),
		NewQuery(Between(2, sv("a"), sv("m"))),
		NewQuery(Between(3, iv(0), iv(100))),
		NewQuery(Between(4, sv(""), sv("zz"))),
		NewQuery(Ge(0, iv(2))),
		NewQuery(Le(1, fv(0.5))),
		NewQuery(Gt(3, iv(1))),
		NewQuery(Lt(2, sv("k"))),
		NewQuery(Gt(1, fv(-0.5))),
		NewQuery(Lt(0, iv(0))),
		NewQuery(Eq(0, sv("kind-mismatch"))),
		NewQuery(Between(2, iv(1), iv(2))),
		NewQuery(Eq(0, iv(2)), Lt(1, fv(1)), Ne(2, sv("q")), Gt(3, iv(-5)), In(4, sv("x"), sv("yy"))),
		NewQuery(), // empty conjunction matches everything
	}
}

// randFilterRow draws a row with adversarial values: negative ints,
// ±Inf, -0, NaN, empty strings and strings with NUL bytes.
func randFilterRow(rng *rand.Rand) value.Row {
	ri := func() int64 { return int64(rng.Intn(11)) - 5 }
	rf := func() float64 {
		switch rng.Intn(8) {
		case 0:
			return math.Inf(1)
		case 1:
			return math.Inf(-1)
		case 2:
			return math.Copysign(0, -1)
		case 3:
			return math.NaN()
		default:
			return float64(rng.Intn(9)-4) * 0.5
		}
	}
	rs := func() string {
		alphabet := []string{"", "a", "bb", "boston", "m", "q", "toledo", "x", "yy", "zz", "a\x00b"}
		return alphabet[rng.Intn(len(alphabet))]
	}
	return value.Row{
		value.NewInt(ri()),
		value.NewFloat(rf()),
		value.NewString(rs()),
		value.NewInt(ri()),
		value.NewString(rs()),
	}
}

// matchesEqual compares compiled and reference evaluation on one tuple.
// NaN rows break reflexivity of value.Compare the same way on both
// paths, so parity still holds.
func matchesEqual(t *testing.T, sch table.Schema, q Query, tuple []byte, label string) {
	t.Helper()
	cm, cerr := CompileFilter(sch, q).Matches(tuple)
	row, derr := sch.DecodeRow(tuple)
	if derr != nil {
		if cerr == nil {
			t.Fatalf("%s: DecodeRow failed (%v) but compiled filter accepted", label, derr)
		}
		if cerr.Error() != derr.Error() {
			t.Fatalf("%s: error mismatch: compiled %q, decode %q", label, cerr, derr)
		}
		return
	}
	if cerr != nil {
		t.Fatalf("%s: compiled filter errored (%v) on a decodable tuple", label, cerr)
	}
	if want := q.Matches(row); cm != want {
		t.Fatalf("%s: compiled = %v, DecodeRow+Matches = %v (row %v)", label, cm, want, row)
	}
}

// TestTupleFilterEquivalence is the property test: on thousands of
// random valid tuples, the compiled filter agrees exactly with
// DecodeRow + Query.Matches for every operator and kind.
func TestTupleFilterEquivalence(t *testing.T) {
	sch := filterTestSchema()
	queries := filterTestQueries()
	rng := rand.New(rand.NewSource(1234))
	for iter := 0; iter < 3000; iter++ {
		row := randFilterRow(rng)
		tuple, err := sch.EncodeRow(row)
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			matchesEqual(t, sch, q, tuple, fmt.Sprintf("iter %d query %d (%s)", iter, qi, q))
		}
	}
}

// TestTupleFilterTruncationParity cuts and pads a valid tuple at every
// length: the compiled filter must fail with exactly DecodeRow's error.
func TestTupleFilterTruncationParity(t *testing.T) {
	sch := filterTestSchema()
	row := value.Row{
		value.NewInt(7),
		value.NewFloat(2.5),
		value.NewString("boston"),
		value.NewInt(-3),
		value.NewString("yy"),
	}
	tuple, err := sch.EncodeRow(row)
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery(Eq(0, value.NewInt(7)), Ne(4, value.NewString("x")))
	for cut := 0; cut < len(tuple); cut++ {
		matchesEqual(t, sch, q, tuple[:cut], fmt.Sprintf("truncated at %d", cut))
	}
	for pad := 1; pad <= 3; pad++ {
		padded := append(append([]byte(nil), tuple...), make([]byte, pad)...)
		matchesEqual(t, sch, q, padded, fmt.Sprintf("padded by %d", pad))
	}
	// All-fixed schemas take the O(1) size check; pin its parity too.
	fixed := table.NewSchema(
		table.Column{Name: "x", Kind: value.Int},
		table.Column{Name: "y", Kind: value.Float},
	)
	ftuple, err := fixed.EncodeRow(value.Row{value.NewInt(1), value.NewFloat(2)})
	if err != nil {
		t.Fatal(err)
	}
	fq := NewQuery(Ge(1, value.NewFloat(0)))
	for cut := 0; cut < len(ftuple); cut++ {
		matchesEqual(t, fixed, fq, ftuple[:cut], fmt.Sprintf("fixed truncated at %d", cut))
	}
	matchesEqual(t, fixed, fq, append(append([]byte(nil), ftuple...), 0xAA), "fixed padded")
}

// FuzzTupleFilter feeds arbitrary bytes as tuples: for every query the
// compiled filter must agree with DecodeRow + Matches — same boolean on
// decodable inputs, same error on malformed ones.
func FuzzTupleFilter(f *testing.F) {
	sch := filterTestSchema()
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 8; i++ {
		tuple, err := sch.EncodeRow(randFilterRow(rng))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(tuple)
	}
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	queries := filterTestQueries()
	f.Fuzz(func(t *testing.T, data []byte) {
		for qi, q := range queries {
			matchesEqual(t, sch, q, data, fmt.Sprintf("query %d", qi))
		}
	})
}

// TestScanRejectionDoesNotAllocate pins the tentpole's allocation
// contract: a scan whose tuples all fail the filter performs no per-tuple
// allocations — only the per-scan setup (compiled filter, scratch row,
// pool machinery) remains.
func TestScanRejectionDoesNotAllocate(t *testing.T) {
	db := buildTestDB(t, 4000, 99, 0)
	q := NewQuery(Eq(1, value.NewInt(-1))) // matches nothing
	run := func() {
		n := 0
		if err := TableScan(db.tbl, q, func(heap.RID, value.Row) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		if n != 0 {
			t.Fatalf("query matched %d rows, fixture broken", n)
		}
	}
	run() // warm the buffer pool so Get hits do not allocate frames
	allocs := testing.AllocsPerRun(10, run)
	// 4000 rejected tuples previously cost >= 2 allocations each
	// (value.Row + payload string); the lazy path pays only per-scan
	// setup. The bound is loose against test-harness noise but far below
	// one allocation per tuple.
	if allocs > 100 {
		t.Errorf("TableScan with zero matches allocated %.0f times (want per-scan setup only)", allocs)
	}

	parallel := func() {
		n := 0
		if err := ParallelTableScan(db.tbl, q, 4, func(heap.RID, value.Row) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		if n != 0 {
			t.Fatal("parallel scan matched rows")
		}
	}
	parallel()
	pallocs := testing.AllocsPerRun(10, parallel)
	// Parallel machinery allocates per chunk and per worker, never per
	// rejected tuple.
	if pallocs > 1000 {
		t.Errorf("ParallelTableScan with zero matches allocated %.0f times", pallocs)
	}

	// The probe path reads tuples through the pinned frame (heap.View):
	// probing every index entry and rejecting all of them on the
	// re-filter predicate must not allocate per tuple either.
	probeQ := NewQuery(Le(1, value.NewInt(100)), Eq(0, value.NewInt(-1)))
	probe := func() {
		n := 0
		if err := PipelinedIndexScan(db.tbl, db.ix, probeQ, func(heap.RID, value.Row) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		if n != 0 {
			t.Fatal("probe matched rows")
		}
	}
	probe()
	ballocs := testing.AllocsPerRun(10, probe)
	if ballocs > 200 {
		t.Errorf("PipelinedIndexScan with zero matches allocated %.0f times", ballocs)
	}
}

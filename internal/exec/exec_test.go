package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/heap"
	"repro/internal/keyenc"
	"repro/internal/sim"
	"repro/internal/table"
	"repro/internal/value"
)

// testDB builds a table clustered on column "c" with a correlated column
// "u" (u = c/step + noise), a secondary index on u, and a CM on u.
type testDB struct {
	tbl  *table.Table
	ix   *table.Index
	cm   *core.CM
	disk *sim.Disk
	rows []value.Row
}

func buildTestDB(t *testing.T, n int, seed int64, bucketTuples int) *testDB {
	t.Helper()
	d := sim.NewDisk(sim.Config{PageSize: 1024})
	pool := buffer.NewPool(d, 512)
	sch := table.NewSchema(
		table.Column{Name: "c", Kind: value.Int},
		table.Column{Name: "u", Kind: value.Int},
		table.Column{Name: "payload", Kind: value.String},
	)
	tbl, err := table.New(pool, nil, table.Config{
		Name:          "t",
		Schema:        sch,
		ClusteredCols: []int{0},
		BucketTuples:  bucketTuples,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	rows := make([]value.Row, n)
	for i := range rows {
		c := int64(rng.Intn(500))
		u := c/10 + int64(rng.Intn(2)) // soft FD: u mostly determined by c
		rows[i] = value.Row{
			value.NewInt(c),
			value.NewInt(u),
			value.NewString(fmt.Sprintf("row-%d", i)),
		}
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	ix, err := tbl.CreateIndex("u", []int{1})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := tbl.CreateCM(core.Spec{Name: "u", UCols: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	return &testDB{tbl: tbl, ix: ix, cm: cm, disk: d, rows: rows}
}

// runAll executes the query under every access method and returns the
// result multisets keyed by payload.
func (db *testDB) runAll(t *testing.T, q Query) map[string][]string {
	t.Helper()
	out := make(map[string][]string)
	collect := func(name string, run func(fn RowFunc) error) {
		var got []string
		if err := run(func(_ heap.RID, row value.Row) bool {
			got = append(got, row[2].S)
			return true
		}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sort.Strings(got)
		out[name] = got
	}
	collect("tablescan", func(fn RowFunc) error { return TableScan(db.tbl, q, fn) })
	collect("pipelined", func(fn RowFunc) error { return PipelinedIndexScan(db.tbl, db.ix, q, fn) })
	collect("sorted", func(fn RowFunc) error { return SortedIndexScan(db.tbl, db.ix, q, fn) })
	collect("cm", func(fn RowFunc) error { return CMScan(db.tbl, db.cm, q, fn) })
	return out
}

func assertAllEqual(t *testing.T, results map[string][]string) {
	t.Helper()
	ref := results["tablescan"]
	for name, got := range results {
		if len(got) != len(ref) {
			t.Errorf("%s returned %d rows, tablescan %d", name, len(got), len(ref))
			continue
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Errorf("%s result %d = %q, want %q", name, i, got[i], ref[i])
				break
			}
		}
	}
}

func TestAllMethodsAgreeOnEquality(t *testing.T) {
	db := buildTestDB(t, 3000, 1, 0)
	for _, u := range []int64{0, 7, 23, 49, 999} {
		q := NewQuery(Eq(1, value.NewInt(u)))
		assertAllEqual(t, db.runAll(t, q))
	}
}

func TestAllMethodsAgreeOnIn(t *testing.T) {
	db := buildTestDB(t, 3000, 2, 0)
	q := NewQuery(In(1, value.NewInt(3), value.NewInt(17), value.NewInt(40)))
	results := db.runAll(t, q)
	assertAllEqual(t, results)
	if len(results["tablescan"]) == 0 {
		t.Fatal("test query matched nothing; fixture broken")
	}
}

func TestAllMethodsAgreeOnRange(t *testing.T) {
	db := buildTestDB(t, 3000, 3, 0)
	q := NewQuery(Between(1, value.NewInt(10), value.NewInt(14)))
	assertAllEqual(t, db.runAll(t, q))
	// Open-ended ranges too.
	q = NewQuery(Ge(1, value.NewInt(45)))
	assertAllEqual(t, db.runAll(t, q))
	q = NewQuery(Le(1, value.NewInt(3)))
	assertAllEqual(t, db.runAll(t, q))
}

func TestAllMethodsAgreeWithExtraPredicates(t *testing.T) {
	db := buildTestDB(t, 3000, 4, 0)
	// Conjunction with a non-indexed predicate on c.
	q := NewQuery(
		Eq(1, value.NewInt(20)),
		Between(0, value.NewInt(195), value.NewInt(210)),
	)
	assertAllEqual(t, db.runAll(t, q))
}

func TestAllMethodsAgreeAfterInserts(t *testing.T) {
	db := buildTestDB(t, 2000, 5, 0)
	// Appended rows land on out-of-order heap pages; every method must
	// still find them.
	for i := 0; i < 200; i++ {
		c := int64(i % 500)
		row := value.Row{
			value.NewInt(c),
			value.NewInt(c / 10),
			value.NewString(fmt.Sprintf("new-%d", i)),
		}
		if _, err := db.tbl.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	q := NewQuery(Eq(1, value.NewInt(11)))
	results := db.runAll(t, q)
	assertAllEqual(t, results)
	found := false
	for _, s := range results["cm"] {
		if len(s) > 3 && s[:4] == "new-" {
			found = true
			break
		}
	}
	if !found {
		t.Error("CM scan missed inserted rows")
	}
}

func TestCMScanFiltersFalsePositives(t *testing.T) {
	// Heavily bucketed CM: lookups cover extra values; results must
	// still be exact.
	d := sim.NewDisk(sim.Config{PageSize: 1024})
	pool := buffer.NewPool(d, 256)
	sch := table.NewSchema(
		table.Column{Name: "c", Kind: value.Int},
		table.Column{Name: "u", Kind: value.Int},
	)
	tbl, err := table.New(pool, nil, table.Config{Name: "t", Schema: sch, ClusteredCols: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	var rows []value.Row
	for i := 0; i < 2000; i++ {
		c := int64(i % 100)
		rows = append(rows, value.Row{value.NewInt(c), value.NewInt(c * 3)})
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	cm, err := tbl.CreateCM(core.Spec{
		Name:      "u",
		UCols:     []int{1},
		Bucketers: []core.Bucketer{core.IntWidth{Width: 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery(Eq(1, value.NewInt(33)))
	n := 0
	if err := CMScan(tbl, cm, q, func(_ heap.RID, row value.Row) bool {
		if row[1].I != 33 {
			t.Errorf("false positive leaked: u=%d", row[1].I)
		}
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 20 { // c=11 appears 2000/100 = 20 times
		t.Errorf("matched %d rows, want 20", n)
	}
}

func TestCMScanRequiresCoveredPredicate(t *testing.T) {
	db := buildTestDB(t, 100, 6, 0)
	q := NewQuery(Eq(0, value.NewInt(5))) // predicate on c, not u
	if err := CMScan(db.tbl, db.cm, q, func(heap.RID, value.Row) bool { return true }); err == nil {
		t.Error("CM scan without covered predicate should fail")
	}
}

func TestSortedScanIOPattern(t *testing.T) {
	db := buildTestDB(t, 5000, 7, 0)
	db.tbl.Pool().FlushAll()
	db.tbl.Pool().Invalidate()
	db.disk.ResetStats()
	q := NewQuery(Eq(1, value.NewInt(25)))
	if err := SortedIndexScan(db.tbl, db.ix, q, func(heap.RID, value.Row) bool { return true }); err != nil {
		t.Fatal(err)
	}
	sorted := db.disk.Stats()

	db.tbl.Pool().Invalidate()
	db.disk.ResetStats()
	if err := PipelinedIndexScan(db.tbl, db.ix, q, func(heap.RID, value.Row) bool { return true }); err != nil {
		t.Fatal(err)
	}
	pipelined := db.disk.Stats()

	// The sorted scan reads each heap page once; the pipelined scan
	// fetches per tuple and must touch at least as many pages.
	if sorted.Reads > pipelined.Reads {
		t.Errorf("sorted scan reads %d > pipelined %d", sorted.Reads, pipelined.Reads)
	}
}

func TestRewriteWithCMBostonExample(t *testing.T) {
	// Rebuild the Figure 4 people table and check the rewrite yields
	// state IN (MA, NH) for city = boston.
	d := sim.NewDisk(sim.Config{PageSize: 512})
	pool := buffer.NewPool(d, 64)
	sch := table.NewSchema(
		table.Column{Name: "state", Kind: value.String},
		table.Column{Name: "city", Kind: value.String},
	)
	tbl, err := table.New(pool, nil, table.Config{
		Name: "people", Schema: sch, ClusteredCols: []int{0}, BucketTuples: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := []value.Row{
		{value.NewString("MA"), value.NewString("boston")},
		{value.NewString("MA"), value.NewString("cambridge")},
		{value.NewString("MN"), value.NewString("manchester")},
		{value.NewString("MS"), value.NewString("jackson")},
		{value.NewString("NH"), value.NewString("boston")},
		{value.NewString("OH"), value.NewString("toledo")},
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	cm, err := tbl.CreateCM(core.Spec{Name: "city", UCols: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	rw, err := RewriteWithCM(tbl, cm, NewQuery(Eq(1, value.NewString("boston"))))
	if err != nil {
		t.Fatal(err)
	}
	var states []string
	for _, r := range rw.Ranges {
		vals, err := keyenc.DecodeAll(r.Lo)
		if err != nil {
			t.Fatal(err)
		}
		states = append(states, vals[0].S)
	}
	sort.Strings(states)
	if len(states) != 2 || states[0] != "MA" || states[1] != "NH" {
		t.Errorf("rewrite states = %v, want [MA NH]", states)
	}
}

func TestPredMatches(t *testing.T) {
	row := value.Row{value.NewInt(5), value.NewString("x")}
	if !Eq(0, value.NewInt(5)).Matches(row) {
		t.Error("Eq failed")
	}
	if Eq(0, value.NewInt(6)).Matches(row) {
		t.Error("Eq false positive")
	}
	if !In(1, value.NewString("y"), value.NewString("x")).Matches(row) {
		t.Error("In failed")
	}
	if !Between(0, value.NewInt(5), value.NewInt(9)).Matches(row) {
		t.Error("Between inclusive lower failed")
	}
	if !Between(0, value.NewInt(1), value.NewInt(5)).Matches(row) {
		t.Error("Between inclusive upper failed")
	}
	if Between(0, value.NewInt(6), value.NewInt(9)).Matches(row) {
		t.Error("Between false positive")
	}
	if !Ge(0, value.NewInt(5)).Matches(row) || Ge(0, value.NewInt(6)).Matches(row) {
		t.Error("Ge wrong")
	}
	if !Le(0, value.NewInt(5)).Matches(row) || Le(0, value.NewInt(4)).Matches(row) {
		t.Error("Le wrong")
	}
}

func TestQueryHelpers(t *testing.T) {
	q := NewQuery(Eq(2, value.NewInt(1)), Between(0, value.NewInt(1), value.NewInt(2)))
	if q.PredOn(2) == nil || q.PredOn(5) != nil {
		t.Error("PredOn wrong")
	}
	cols := q.Cols()
	if len(cols) != 2 || cols[0] != 2 || cols[1] != 0 {
		t.Errorf("Cols = %v", cols)
	}
	if q.String() == "" {
		t.Error("query string empty")
	}
	if Eq(0, value.NewInt(1)).NLookups() != 1 ||
		In(0, value.NewInt(1), value.NewInt(2)).NLookups() != 2 ||
		Ge(0, value.NewInt(1)).NLookups() != 1 {
		t.Error("NLookups wrong")
	}
}

func TestEarlyStopAllMethods(t *testing.T) {
	db := buildTestDB(t, 1000, 8, 0)
	q := NewQuery(Le(1, value.NewInt(100))) // matches everything
	methods := map[string]func(fn RowFunc) error{
		"tablescan": func(fn RowFunc) error { return TableScan(db.tbl, q, fn) },
		"pipelined": func(fn RowFunc) error { return PipelinedIndexScan(db.tbl, db.ix, q, fn) },
		"sorted":    func(fn RowFunc) error { return SortedIndexScan(db.tbl, db.ix, q, fn) },
		"cm":        func(fn RowFunc) error { return CMScan(db.tbl, db.cm, q, fn) },
	}
	for name, run := range methods {
		n := 0
		if err := run(func(heap.RID, value.Row) bool {
			n++
			return n < 10
		}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n != 10 {
			t.Errorf("%s visited %d rows after stop", name, n)
		}
	}
}

// paperScaleStats stubs StatsProvider with statistics shaped like the
// paper's multi-gigabyte tables, where a 5.5 ms seek is cheap relative to
// scanning hundreds of thousands of pages.
type paperScaleStats struct {
	pair costmodel.PairStats
}

func (s paperScaleStats) TableStats(*table.Table) costmodel.TableStats {
	return costmodel.TableStats{TupsPerPage: 60, TotalTups: 18e6, BTreeHeight: 3}
}

func (s paperScaleStats) PairStats(*table.Table, []int) (costmodel.PairStats, bool) {
	return s.pair, true
}

func TestPlannerPrefersIndexAtPaperScale(t *testing.T) {
	db := buildTestDB(t, 500, 9, 0)
	// Correlated pair: a selective lookup through the index beats a 300k
	// page scan.
	sp := paperScaleStats{pair: costmodel.PairStats{UTups: 7000, CTups: 7000, CPerU: 3}}
	q := NewQuery(Eq(1, value.NewInt(25)))
	plan := ChoosePlan(db.tbl, q, sp)
	if plan.Method == MethodTableScan {
		t.Errorf("plan = %v, expected an index-based method at paper scale", plan.Method)
	}
	if plan.Cost <= 0 {
		t.Error("plan cost not positive")
	}
}

func TestPlannerPrefersScanWhenUncorrelated(t *testing.T) {
	db := buildTestDB(t, 500, 10, 0)
	// Uncorrelated pair with many lookups: cost model caps at scan, so
	// the tie goes to the plain scan (strictly-less comparison).
	sp := paperScaleStats{pair: costmodel.PairStats{UTups: 7000, CTups: 7000, CPerU: 7000}}
	q := NewQuery(In(1, value.NewInt(1), value.NewInt(2), value.NewInt(3),
		value.NewInt(4), value.NewInt(5)))
	plan := ChoosePlan(db.tbl, q, sp)
	// The CM on the tiny fixture has few buckets, so it may still win;
	// the B+Tree paths must not.
	if plan.Method == MethodSorted || plan.Method == MethodPipelined {
		t.Errorf("plan = %v, B+Tree should not beat scan when uncorrelated", plan.Method)
	}
}

func TestPlannerChosenPlanExecutes(t *testing.T) {
	db := buildTestDB(t, 5000, 9, 0)
	sp := NewExactStats()
	q := NewQuery(Eq(1, value.NewInt(25)))
	plan := ChoosePlan(db.tbl, q, sp)
	rows, err := Collect(func(fn RowFunc) error { return plan.Run(db.tbl, q, fn) })
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for _, r := range db.rows {
		if r[1].I == 25 {
			want++
		}
	}
	if len(rows) != want {
		t.Errorf("plan (%v) returned %d rows, want %d", plan.Method, len(rows), want)
	}
}

func TestPlannerFallsBackToScanWithoutAccessPaths(t *testing.T) {
	d := sim.NewDisk(sim.Config{PageSize: 1024})
	pool := buffer.NewPool(d, 64)
	sch := table.NewSchema(table.Column{Name: "a", Kind: value.Int})
	tbl, err := table.New(pool, nil, table.Config{Name: "t", Schema: sch, ClusteredCols: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Load([]value.Row{{value.NewInt(1)}, {value.NewInt(2)}}); err != nil {
		t.Fatal(err)
	}
	plan := ChoosePlan(tbl, NewQuery(Eq(0, value.NewInt(1))), NewExactStats())
	if plan.Method != MethodTableScan {
		t.Errorf("plan = %v, want table scan", plan.Method)
	}
}

func TestMethodString(t *testing.T) {
	for _, m := range []Method{MethodTableScan, MethodPipelined, MethodSorted, MethodCM, Method(9)} {
		if m.String() == "" {
			t.Error("empty method name")
		}
	}
}

func TestCompositeCMScanWithPartialPredicates(t *testing.T) {
	// CM on (u1, u2); query predicates only u1. The scan path must use
	// LookupMatch and stay exact.
	d := sim.NewDisk(sim.Config{PageSize: 1024})
	pool := buffer.NewPool(d, 256)
	sch := table.NewSchema(
		table.Column{Name: "c", Kind: value.Int},
		table.Column{Name: "u1", Kind: value.Int},
		table.Column{Name: "u2", Kind: value.Int},
	)
	tbl, err := table.New(pool, nil, table.Config{Name: "t", Schema: sch, ClusteredCols: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var rows []value.Row
	for i := 0; i < 2000; i++ {
		c := int64(rng.Intn(200))
		rows = append(rows, value.Row{
			value.NewInt(c), value.NewInt(c / 20), value.NewInt(c % 20),
		})
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	cm, err := tbl.CreateCM(core.Spec{Name: "u12", UCols: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery(Eq(1, value.NewInt(4)))
	var got, want int
	if err := CMScan(tbl, cm, q, func(heap.RID, value.Row) bool { got++; return true }); err != nil {
		t.Fatal(err)
	}
	if err := TableScan(tbl, q, func(heap.RID, value.Row) bool { want++; return true }); err != nil {
		t.Fatal(err)
	}
	if got != want || want == 0 {
		t.Errorf("composite partial CM scan = %d rows, table scan = %d", got, want)
	}
}

package exec

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/table"
)

// Method identifies an access path.
type Method int

// The access paths the engine can choose among.
const (
	MethodTableScan Method = iota
	MethodPipelined
	MethodSorted
	MethodCM
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodTableScan:
		return "table-scan"
	case MethodPipelined:
		return "pipelined-index-scan"
	case MethodSorted:
		return "sorted-index-scan"
	case MethodCM:
		return "cm-scan"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// StatsProvider supplies the correlation statistics the planner's cost
// model needs. The facade caches these; tests can stub them.
type StatsProvider interface {
	// TableStats returns the Table 1 statistics for the table.
	TableStats(t *table.Table) costmodel.TableStats
	// PairStats returns the Table 2 statistics for the attribute set
	// uCols against the table's clustering attribute. ok=false when
	// unknown, which disqualifies index paths needing them.
	PairStats(t *table.Table, uCols []int) (costmodel.PairStats, bool)
}

// Plan is a chosen access path with its predicted cost.
type Plan struct {
	Method Method
	Index  *table.Index // for MethodPipelined / MethodSorted
	CM     *core.CM     // for MethodCM
	Cost   time.Duration
}

// Run executes the plan.
func (p Plan) Run(t *table.Table, q Query, fn RowFunc) error {
	switch p.Method {
	case MethodTableScan:
		return TableScan(t, q, fn)
	case MethodPipelined:
		return PipelinedIndexScan(t, p.Index, q, fn)
	case MethodSorted:
		return SortedIndexScan(t, p.Index, q, fn)
	case MethodCM:
		return CMScan(t, p.CM, q, fn)
	default:
		return fmt.Errorf("exec: unknown method %v", p.Method)
	}
}

// ChoosePlan costs every applicable access path with the Section 4 model
// and returns the cheapest. A secondary index applies when its leading
// key column is predicated; a CM applies when at least one of its columns
// is predicated (false positives are filtered after the heap sweep).
func ChoosePlan(t *table.Table, q Query, sp StatsProvider) Plan {
	h := costmodel.DefaultHardware()
	ts := sp.TableStats(t)
	best := Plan{Method: MethodTableScan, Cost: costmodel.Scan(h, ts)}

	consider := func(p Plan) {
		if p.Cost < best.Cost {
			best = p
		}
	}

	for _, ix := range t.Indexes() {
		p := q.IndexablePredOn(ix.Cols[0])
		if p == nil {
			continue
		}
		ps, ok := sp.PairStats(t, ix.Cols)
		if !ok {
			continue
		}
		n := p.NLookups()
		consider(Plan{
			Method: MethodSorted,
			Index:  ix,
			Cost:   costmodel.SortedIndex(h, ts, ps, n),
		})
		consider(Plan{
			Method: MethodPipelined,
			Index:  ix,
			Cost:   costmodel.PipelinedIndex(h, ts, ps, n),
		})
	}

	for _, cm := range t.CMs() {
		n := 0
		for _, col := range cm.Spec().UCols {
			if p := q.IndexablePredOn(col); p != nil {
				if n == 0 {
					n = 1
				}
				n *= p.NLookups()
			}
		}
		if n == 0 {
			continue
		}
		bps := t.BucketPairStatsFor(cm)
		consider(Plan{
			Method: MethodCM,
			CM:     cm,
			Cost: costmodel.CMLookup(h, ts, costmodel.CMStats{
				CPerU:           bps.CPerU,
				PagesPerCBucket: bps.PagesPerCBucket,
			}, n),
		})
	}
	return best
}

// ExactStats is a StatsProvider computing exact statistics with table
// scans, caching per attribute set. Fine for tests and moderate tables;
// production advisors use the sampling estimators instead. Safe for
// concurrent use: concurrent planners share one cache under a mutex.
type ExactStats struct {
	mu      sync.Mutex
	cacheTS map[*table.Table]costmodel.TableStats
	cachePS map[string]costmodel.PairStats
}

// NewExactStats creates an empty provider.
func NewExactStats() *ExactStats {
	return &ExactStats{
		cacheTS: make(map[*table.Table]costmodel.TableStats),
		cachePS: make(map[string]costmodel.PairStats),
	}
}

// TableStats implements StatsProvider. The mutex is held across the
// computation so concurrent first queries on a cold cache scan the
// table once, not once each.
func (e *ExactStats) TableStats(t *table.Table) costmodel.TableStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ts, ok := e.cacheTS[t]; ok {
		return ts
	}
	st := t.Stats()
	ts := costmodel.TableStats{
		TupsPerPage: st.TupsPerPage,
		TotalTups:   float64(st.TotalTups),
		BTreeHeight: float64(st.BTreeHeight),
	}
	e.cacheTS[t] = ts
	return ts
}

// PairStats implements StatsProvider; like TableStats, it computes a
// missing entry under the mutex to avoid a cache stampede of
// full-table scans.
func (e *ExactStats) PairStats(t *table.Table, uCols []int) (costmodel.PairStats, bool) {
	key := fmt.Sprintf("%s/%v", t.Name(), uCols)
	e.mu.Lock()
	defer e.mu.Unlock()
	if ps, ok := e.cachePS[key]; ok {
		return ps, true
	}
	pc, err := t.PairStats(uCols)
	if err != nil {
		return costmodel.PairStats{}, false
	}
	ps := costmodel.PairStats{
		UTups: pc.UTups(),
		CTups: pc.CTups(),
		CPerU: pc.CPerU(),
	}
	e.cachePS[key] = ps
	return ps, true
}

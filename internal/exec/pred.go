// Package exec implements query execution: conjunctive predicates and the
// four access paths the paper compares — full table scan, pipelined
// secondary index scan, sorted (bitmap-style) secondary index scan, and
// the correlation-map scan — plus the cost-based choice among them and
// the predicate-introduction rewrite of Section 7.1.
package exec

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/value"
)

// Op is a predicate operator.
type Op int

// Predicate operators.
const (
	OpEq Op = iota
	OpIn
	OpRange
	OpNe
)

// Pred is one predicate over a column. Range bounds are inclusive unless
// the matching Excl flag is set; a nil bound is open.
type Pred struct {
	Col  int
	Op   Op
	Vals []value.Value // OpEq: 1 value, OpIn: n values, OpNe: 1 value
	Lo   *value.Value
	Hi   *value.Value
	// LoExcl / HiExcl make the bound strict (<, > instead of <=, >=).
	// Index and CM probes ignore them — the boundary entries they admit
	// are discarded by the executor's re-filter — so exclusive ranges
	// cost at most one extra boundary value of I/O.
	LoExcl bool
	HiExcl bool
}

// Eq builds an equality predicate.
func Eq(col int, v value.Value) Pred { return Pred{Col: col, Op: OpEq, Vals: []value.Value{v}} }

// In builds a membership predicate.
func In(col int, vals ...value.Value) Pred { return Pred{Col: col, Op: OpIn, Vals: vals} }

// Between builds an inclusive range predicate.
func Between(col int, lo, hi value.Value) Pred {
	return Pred{Col: col, Op: OpRange, Lo: &lo, Hi: &hi}
}

// Ge builds a lower-bounded range predicate.
func Ge(col int, lo value.Value) Pred { return Pred{Col: col, Op: OpRange, Lo: &lo} }

// Le builds an upper-bounded range predicate.
func Le(col int, hi value.Value) Pred { return Pred{Col: col, Op: OpRange, Hi: &hi} }

// Lt builds a strict upper-bounded range predicate (col < hi).
func Lt(col int, hi value.Value) Pred {
	return Pred{Col: col, Op: OpRange, Hi: &hi, HiExcl: true}
}

// Gt builds a strict lower-bounded range predicate (col > lo).
func Gt(col int, lo value.Value) Pred {
	return Pred{Col: col, Op: OpRange, Lo: &lo, LoExcl: true}
}

// Ne builds an inequality predicate (col != v). Ne is not an index probe:
// the planner treats it as unindexable and access paths evaluate it by
// re-filtering.
func Ne(col int, v value.Value) Pred { return Pred{Col: col, Op: OpNe, Vals: []value.Value{v}} }

// Matches reports whether the row satisfies the predicate.
func (p Pred) Matches(row value.Row) bool {
	v := row[p.Col]
	switch p.Op {
	case OpEq:
		return v.Equal(p.Vals[0])
	case OpIn:
		for _, w := range p.Vals {
			if v.Equal(w) {
				return true
			}
		}
		return false
	case OpNe:
		return !v.Equal(p.Vals[0])
	default:
		if p.Lo != nil {
			c := v.Compare(*p.Lo)
			if c < 0 || (c == 0 && p.LoExcl) {
				return false
			}
		}
		if p.Hi != nil {
			c := v.Compare(*p.Hi)
			if c > 0 || (c == 0 && p.HiExcl) {
				return false
			}
		}
		return true
	}
}

// NLookups returns the number of distinct value lookups the predicate
// implies for the cost model's n_lookups parameter (1 for ranges, which
// the executor probes as a single contiguous range).
func (p Pred) NLookups() int {
	switch p.Op {
	case OpEq:
		return 1
	case OpIn:
		return len(p.Vals)
	default:
		return 1
	}
}

// Indexable reports whether the predicate can drive an index or CM probe.
// Ne excludes a single value, so probing it through an access method would
// read essentially the whole structure; it is evaluated by re-filtering.
func (p Pred) Indexable() bool { return p.Op != OpNe }

// String renders the predicate for logs and advisor output.
func (p Pred) String() string {
	switch p.Op {
	case OpEq:
		return fmt.Sprintf("col%d = %v", p.Col, p.Vals[0])
	case OpIn:
		parts := make([]string, len(p.Vals))
		for i, v := range p.Vals {
			parts[i] = v.String()
		}
		return fmt.Sprintf("col%d IN (%s)", p.Col, strings.Join(parts, ", "))
	case OpNe:
		return fmt.Sprintf("col%d != %v", p.Col, p.Vals[0])
	default:
		switch {
		case p.Lo != nil && p.Hi == nil:
			op := ">="
			if p.LoExcl {
				op = ">"
			}
			return fmt.Sprintf("col%d %s %v", p.Col, op, *p.Lo)
		case p.Lo == nil && p.Hi != nil:
			op := "<="
			if p.HiExcl {
				op = "<"
			}
			return fmt.Sprintf("col%d %s %v", p.Col, op, *p.Hi)
		case p.LoExcl || p.HiExcl:
			loOp, hiOp := ">=", "<="
			if p.LoExcl {
				loOp = ">"
			}
			if p.HiExcl {
				hiOp = "<"
			}
			return fmt.Sprintf("col%d %s %v AND col%d %s %v", p.Col, loOp, *p.Lo, p.Col, hiOp, *p.Hi)
		default:
			lo, hi := "-inf", "+inf"
			if p.Lo != nil {
				lo = p.Lo.String()
			}
			if p.Hi != nil {
				hi = p.Hi.String()
			}
			return fmt.Sprintf("col%d BETWEEN %s AND %s", p.Col, lo, hi)
		}
	}
}

// Query is a conjunction of predicates, optionally with a projection.
type Query struct {
	Preds []Pred
	// Proj lists the columns the caller will read from result rows
	// (projection pushdown). nil means every column: executors
	// materialize full rows. Non-nil means executors decode only the
	// union of Proj and the predicated columns into result rows; the
	// remaining entries stay zero values. An empty non-nil slice is
	// valid for callers that only need RIDs or match counts.
	Proj []int
	// Snap is the MVCC snapshot the scan reads as of: every access path
	// filters heap tuples through their begin/end timestamps against it,
	// so a query never observes a concurrent writer statement's
	// half-applied changes. 0 (the default) reads the latest state.
	Snap uint64
	// Obs, when non-nil, receives the scan's physical-work counts
	// (tuples examined, rows emitted, heap page visits). Workers tally
	// locally and flush per chunk; nil keeps the hot path free of even
	// that. See ScanObs.
	Obs *ScanObs
	// Ctx, when non-nil, cancels the scan: every access method polls it
	// at chunk granularity (serial paths per heap page, RID collection
	// every cancelCheckRIDs entries, parallel workers per chunk) and the
	// run returns the context's error. nil never cancels.
	Ctx context.Context
}

// NewQuery builds a query from predicates.
func NewQuery(preds ...Pred) Query { return Query{Preds: preds} }

// MaterializeCols returns the sorted distinct columns the executor must
// decode for result rows: all ncols columns when the query has no
// projection, otherwise the union of the projection and every
// predicated column. EXPLAIN surfaces its length so tests (and users)
// can verify projection pushdown engaged.
func (q Query) MaterializeCols(ncols int) []int {
	if q.Proj == nil {
		out := make([]int, ncols)
		for i := range out {
			out[i] = i
		}
		return out
	}
	seen := make([]bool, ncols)
	n := 0
	mark := func(c int) {
		if c >= 0 && c < ncols && !seen[c] {
			seen[c] = true
			n++
		}
	}
	for _, c := range q.Proj {
		mark(c)
	}
	for _, p := range q.Preds {
		mark(p.Col)
	}
	out := make([]int, 0, n)
	for c, ok := range seen {
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// Matches reports whether the row satisfies every predicate.
func (q Query) Matches(row value.Row) bool {
	for _, p := range q.Preds {
		if !p.Matches(row) {
			return false
		}
	}
	return true
}

// PredOn returns the first predicate over col, or nil.
func (q Query) PredOn(col int) *Pred {
	for i := range q.Preds {
		if q.Preds[i].Col == col {
			return &q.Preds[i]
		}
	}
	return nil
}

// IndexablePredOn returns the first predicate over col that can drive an
// index or CM probe, or nil. A query with only a Ne predicate on col has
// no indexable predicate there: the probe would cover the whole domain.
func (q Query) IndexablePredOn(col int) *Pred {
	for i := range q.Preds {
		if q.Preds[i].Col == col && q.Preds[i].Indexable() {
			return &q.Preds[i]
		}
	}
	return nil
}

// Cols returns the set of predicated columns in first-appearance order.
func (q Query) Cols() []int {
	var out []int
	seen := map[int]bool{}
	for _, p := range q.Preds {
		if !seen[p.Col] {
			seen[p.Col] = true
			out = append(out, p.Col)
		}
	}
	return out
}

// String renders the conjunction.
func (q Query) String() string {
	parts := make([]string, len(q.Preds))
	for i, p := range q.Preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, " AND ")
}

// Package exec implements query execution: conjunctive predicates and the
// four access paths the paper compares — full table scan, pipelined
// secondary index scan, sorted (bitmap-style) secondary index scan, and
// the correlation-map scan — plus the cost-based choice among them and
// the predicate-introduction rewrite of Section 7.1.
package exec

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Op is a predicate operator.
type Op int

// Predicate operators.
const (
	OpEq Op = iota
	OpIn
	OpRange
)

// Pred is one predicate over a column. Range bounds are inclusive; a nil
// bound is open.
type Pred struct {
	Col  int
	Op   Op
	Vals []value.Value // OpEq: 1 value, OpIn: n values
	Lo   *value.Value
	Hi   *value.Value
}

// Eq builds an equality predicate.
func Eq(col int, v value.Value) Pred { return Pred{Col: col, Op: OpEq, Vals: []value.Value{v}} }

// In builds a membership predicate.
func In(col int, vals ...value.Value) Pred { return Pred{Col: col, Op: OpIn, Vals: vals} }

// Between builds an inclusive range predicate.
func Between(col int, lo, hi value.Value) Pred {
	return Pred{Col: col, Op: OpRange, Lo: &lo, Hi: &hi}
}

// Ge builds a lower-bounded range predicate.
func Ge(col int, lo value.Value) Pred { return Pred{Col: col, Op: OpRange, Lo: &lo} }

// Le builds an upper-bounded range predicate.
func Le(col int, hi value.Value) Pred { return Pred{Col: col, Op: OpRange, Hi: &hi} }

// Matches reports whether the row satisfies the predicate.
func (p Pred) Matches(row value.Row) bool {
	v := row[p.Col]
	switch p.Op {
	case OpEq:
		return v.Equal(p.Vals[0])
	case OpIn:
		for _, w := range p.Vals {
			if v.Equal(w) {
				return true
			}
		}
		return false
	default:
		if p.Lo != nil && v.Compare(*p.Lo) < 0 {
			return false
		}
		if p.Hi != nil && v.Compare(*p.Hi) > 0 {
			return false
		}
		return true
	}
}

// NLookups returns the number of distinct value lookups the predicate
// implies for the cost model's n_lookups parameter (1 for ranges, which
// the executor probes as a single contiguous range).
func (p Pred) NLookups() int {
	switch p.Op {
	case OpEq:
		return 1
	case OpIn:
		return len(p.Vals)
	default:
		return 1
	}
}

// String renders the predicate for logs and advisor output.
func (p Pred) String() string {
	switch p.Op {
	case OpEq:
		return fmt.Sprintf("col%d = %v", p.Col, p.Vals[0])
	case OpIn:
		parts := make([]string, len(p.Vals))
		for i, v := range p.Vals {
			parts[i] = v.String()
		}
		return fmt.Sprintf("col%d IN (%s)", p.Col, strings.Join(parts, ", "))
	default:
		lo, hi := "-inf", "+inf"
		if p.Lo != nil {
			lo = p.Lo.String()
		}
		if p.Hi != nil {
			hi = p.Hi.String()
		}
		return fmt.Sprintf("col%d BETWEEN %s AND %s", p.Col, lo, hi)
	}
}

// Query is a conjunction of predicates.
type Query struct {
	Preds []Pred
}

// NewQuery builds a query from predicates.
func NewQuery(preds ...Pred) Query { return Query{Preds: preds} }

// Matches reports whether the row satisfies every predicate.
func (q Query) Matches(row value.Row) bool {
	for _, p := range q.Preds {
		if !p.Matches(row) {
			return false
		}
	}
	return true
}

// PredOn returns the first predicate over col, or nil.
func (q Query) PredOn(col int) *Pred {
	for i := range q.Preds {
		if q.Preds[i].Col == col {
			return &q.Preds[i]
		}
	}
	return nil
}

// Cols returns the set of predicated columns in first-appearance order.
func (q Query) Cols() []int {
	var out []int
	seen := map[int]bool{}
	for _, p := range q.Preds {
		if !seen[p.Col] {
			seen[p.Col] = true
			out = append(out, p.Col)
		}
	}
	return out
}

// String renders the conjunction.
func (q Query) String() string {
	parts := make([]string, len(q.Preds))
	for i, p := range q.Preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, " AND ")
}

package exec

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/table"
	"repro/internal/value"
)

// aggTestSchema is a small mixed-kind schema for aggregator unit tests.
func aggTestSchema() table.Schema {
	return table.NewSchema(
		table.Column{Name: "g", Kind: value.String},
		table.Column{Name: "i", Kind: value.Int},
		table.Column{Name: "f", Kind: value.Float},
	)
}

// aggTestRows generates deterministic rows whose float payloads are
// exact binary fractions, so sums carry no rounding and references
// computed in any order agree bit for bit.
func aggTestRows(n int, seed int64) []value.Row {
	rng := rand.New(rand.NewSource(seed))
	groups := []string{"boston", "toledo", "jackson", ""}
	rows := make([]value.Row, n)
	for i := range rows {
		rows[i] = value.Row{
			value.NewString(groups[rng.Intn(len(groups))]),
			value.NewInt(int64(rng.Intn(100) - 50)),
			value.NewFloat(float64(rng.Intn(200)) / 4),
		}
	}
	return rows
}

// TestGroupAggMergeMatchesSerial pins the partial-aggregate merge
// contract: splitting the input into chunks, aggregating each into its
// own GroupAgg and merging in chunk order must equal feeding one
// aggregator serially — for every function, including AVG carried as
// sum+count, and regardless of chunk boundaries.
func TestGroupAggMergeMatchesSerial(t *testing.T) {
	sch := aggTestSchema()
	specs := []AggSpec{
		{Kind: AggCount, Col: -1},
		{Kind: AggSum, Col: 1},
		{Kind: AggSum, Col: 2},
		{Kind: AggAvg, Col: 1},
		{Kind: AggAvg, Col: 2},
		{Kind: AggMin, Col: 1},
		{Kind: AggMax, Col: 2},
		{Kind: AggMin, Col: 0},
	}
	rows := aggTestRows(500, 7)
	for _, groupBy := range [][]int{nil, {0}} {
		serial := NewGroupAgg(sch, specs, groupBy)
		for _, r := range rows {
			serial.Add(r)
		}
		want := serial.Rows()

		for _, nchunks := range []int{1, 2, 7, 100} {
			merged := NewGroupAgg(sch, specs, groupBy)
			chunks := chunkSlices(len(rows), nchunks)
			for _, c := range chunks {
				part := NewGroupAgg(sch, specs, groupBy)
				for _, r := range rows[c[0]:c[1]] {
					part.Add(r)
				}
				merged.Merge(part)
			}
			got := merged.Rows()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("groupBy=%v chunks=%d: merged %v != serial %v", groupBy, nchunks, got, want)
			}
		}
	}
}

// TestGroupAggEmptyInput pins the empty-set contract: no GROUP BY
// yields one global row (COUNT 0, zero-valued SUM/AVG/MIN/MAX), a
// grouped aggregate yields no rows.
func TestGroupAggEmptyInput(t *testing.T) {
	sch := aggTestSchema()
	specs := []AggSpec{
		{Kind: AggCount, Col: -1},
		{Kind: AggSum, Col: 1},
		{Kind: AggAvg, Col: 2},
		{Kind: AggMin, Col: 0},
	}
	global := NewGroupAgg(sch, specs, nil).Rows()
	want := value.Row{value.NewInt(0), value.NewInt(0), value.NewFloat(0), value.NewString("")}
	if len(global) != 1 || !reflect.DeepEqual(global[0], want) {
		t.Errorf("global empty = %v, want [%v]", global, want)
	}
	if grouped := NewGroupAgg(sch, specs, []int{0}).Rows(); len(grouped) != 0 {
		t.Errorf("grouped empty = %v, want none", grouped)
	}
}

// TestGroupAggScratchRowReuse pins that Add does not retain the row it
// is handed: mutating the scratch row after Add must not corrupt group
// keys or min/max state.
func TestGroupAggScratchRowReuse(t *testing.T) {
	sch := aggTestSchema()
	specs := []AggSpec{{Kind: AggMin, Col: 0}, {Kind: AggMax, Col: 1}}
	ga := NewGroupAgg(sch, specs, []int{0})
	scratch := make(value.Row, 3)
	for _, r := range aggTestRows(50, 3) {
		copy(scratch, r)
		ga.Add(scratch)
		scratch[0] = value.NewString("CLOBBERED")
		scratch[1] = value.NewInt(99999)
	}
	for _, row := range ga.Rows() {
		if row[0].S == "CLOBBERED" || row[1].S == "CLOBBERED" || row[2].I == 99999 {
			t.Fatalf("aggregator retained scratch row: %v", row)
		}
	}
}

// sortTestRows builds rows with many key ties so stability is actually
// exercised.
func sortTestRows(n int, seed int64) []value.Row {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]value.Row, n)
	for i := range rows {
		rows[i] = value.Row{
			value.NewInt(int64(rng.Intn(10))), // heavy ties
			value.NewInt(int64(i)),            // arrival marker
		}
	}
	return rows
}

// TestSorterTopKMatchesFullSort pins the bounded heap against the full
// sort: for any limit, the top-K rows are exactly the first K of the
// fully sorted result — including stable tie-breaks by input order.
func TestSorterTopKMatchesFullSort(t *testing.T) {
	rows := sortTestRows(300, 11)
	for _, keys := range [][]OrderKey{
		{{Col: 0}},
		{{Col: 0, Desc: true}},
		{{Col: 0, Desc: true}, {Col: 1}},
	} {
		full := NewSorter(keys, 0)
		for _, r := range rows {
			full.Add(r)
		}
		want := full.Rows()
		for _, limit := range []int{1, 7, 299, 300, 1000} {
			topk := NewSorter(keys, limit)
			for _, r := range rows {
				topk.Add(r)
			}
			got := topk.Rows()
			wantN := limit
			if wantN > len(want) {
				wantN = len(want)
			}
			if !reflect.DeepEqual(got, want[:wantN]) {
				t.Fatalf("keys=%v limit=%d: top-K diverges from full sort", keys, limit)
			}
		}
	}
}

// TestSorterClonesRows pins the Sorter side of the RowFunc contract:
// retained rows must survive the caller reusing its scratch row.
func TestSorterClonesRows(t *testing.T) {
	s := NewSorter([]OrderKey{{Col: 0}}, 2)
	scratch := make(value.Row, 1)
	for i := 0; i < 10; i++ {
		scratch[0] = value.NewInt(int64(10 - i))
		s.Add(scratch)
		scratch[0] = value.NewInt(-1)
	}
	for _, r := range s.Rows() {
		if r[0].I == -1 {
			t.Fatal("sorter retained the scratch row")
		}
	}
}

// TestOrFilterMatchesRowSemantics pins CompileOrFilter against the
// row-level OrQuery.Matches on encoded tuples across operator shapes.
func TestOrFilterMatchesRowSemantics(t *testing.T) {
	sch := filterTestSchema()
	iv, fv, sv := value.NewInt, value.NewFloat, value.NewString
	oqs := []OrQuery{
		NewOrQuery(NewQuery(Eq(0, iv(3))), NewQuery(Eq(2, sv("boston")))),
		NewOrQuery(NewQuery(Ge(0, iv(2)), Lt(1, fv(1))), NewQuery(Ne(4, sv("x")))),
		NewOrQuery(NewQuery(In(0, iv(1), iv(2))), NewQuery(Between(1, fv(-1), fv(1))), NewQuery(Eq(3, iv(7)))),
		NewOrQuery(NewQuery(Eq(0, iv(-99)))), // single disjunct
	}
	rng := rand.New(rand.NewSource(5))
	rows := make([]value.Row, 400)
	for i := range rows {
		rows[i] = randFilterRow(rng)
	}
	for _, oq := range oqs {
		f := CompileOrFilter(sch, oq)
		for _, row := range rows {
			tuple, err := sch.EncodeRow(row)
			if err != nil {
				t.Fatal(err)
			}
			got, err := f.Matches(tuple)
			if err != nil {
				t.Fatalf("%s: %v", oq, err)
			}
			if want := oq.Matches(row); got != want {
				t.Fatalf("%s on %v: filter=%v rows=%v", oq, row, got, want)
			}
		}
	}
}

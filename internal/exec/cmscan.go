package exec

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/table"
	"repro/internal/value"
)

// cmBuckets evaluates the query's predicates over the CM and returns the
// matching clustered bucket IDs, sorted.
//
// When every CM column carries an equality or IN predicate the lookup is
// a direct probe (the cm_lookup({v1..vN}) API). Otherwise — range
// predicates or partially covered composites — the CM is scanned with the
// predicates mapped through the bucketers: a bucket representative
// matches a range [lo, hi] iff it lies in [bucket(lo), bucket(hi)],
// because representatives are bucket lower bounds on the same grid.
func cmBuckets(cm *core.CM, q Query) ([]int32, error) {
	spec := cm.Spec()
	allPoint := true
	for _, col := range spec.UCols {
		p := q.IndexablePredOn(col)
		if p == nil || p.Op == OpRange {
			allPoint = false
			break
		}
	}
	if allPoint {
		combos := [][]value.Value{nil}
		for _, col := range spec.UCols {
			p := q.IndexablePredOn(col)
			var next [][]value.Value
			for _, combo := range combos {
				for _, v := range p.Vals {
					ext := make([]value.Value, len(combo), len(combo)+1)
					copy(ext, combo)
					next = append(next, append(ext, v))
				}
			}
			combos = next
		}
		if cm.BloomEnabled() {
			// The bloom summarizes bucketed keys, so a combo it rejects
			// has no CM entry and can contribute no buckets — drop it
			// before the lookup and count the skip.
			kept := combos[:0]
			for _, combo := range combos {
				if cm.ProbePossible(combo) {
					kept = append(kept, combo)
				}
			}
			q.Obs.AddBlooms(int64(len(combos) - len(kept)))
			combos = kept
		}
		return cm.LookupMany(combos), nil
	}

	// Bucket-transformed predicate match over the whole (small) CM.
	type bpred struct {
		idx int // position within the CM key
		p   Pred
	}
	var bpreds []bpred
	for i, col := range spec.UCols {
		p := q.IndexablePredOn(col)
		if p == nil {
			continue
		}
		tp := Pred{Col: i, Op: p.Op}
		b := spec.Bucketers[i]
		switch p.Op {
		case OpEq, OpIn:
			tp.Vals = make([]value.Value, len(p.Vals))
			for j, v := range p.Vals {
				tp.Vals[j] = b.Bucket(v)
			}
		case OpRange:
			if p.Lo != nil {
				lo := b.Bucket(*p.Lo)
				tp.Lo = &lo
			}
			if p.Hi != nil {
				hi := b.Bucket(*p.Hi)
				tp.Hi = &hi
			}
		}
		bpreds = append(bpreds, bpred{idx: i, p: tp})
	}
	return cm.LookupMatch(func(vals []value.Value) bool {
		for _, bp := range bpreds {
			if !bp.p.Matches(vals) {
				return false
			}
		}
		return true
	})
}

// bucketRuns coalesces sorted bucket IDs into maximal contiguous runs,
// so adjacent buckets become one clustered-index range scan.
func bucketRuns(buckets []int32) [][2]int32 {
	var runs [][2]int32
	for i := 0; i < len(buckets); {
		j := i
		for j+1 < len(buckets) && buckets[j+1] == buckets[j]+1 {
			j++
		}
		runs = append(runs, [2]int32{buckets[i], buckets[j]})
		i = j + 1
	}
	return runs
}

// CMScan evaluates the query through a correlation map (Section 5.2):
// the CM probe yields clustered bucket IDs; each run of buckets becomes a
// clustered-index range scan collecting RIDs; the heap pages are then
// swept in physical order and rows re-filtered with the original
// predicates, discarding the CM's false positives.
func CMScan(t *table.Table, cm *core.CM, q Query, fn RowFunc) error {
	covered := false
	for _, col := range cm.Spec().UCols {
		if q.IndexablePredOn(col) != nil {
			covered = true
			break
		}
	}
	if !covered {
		return fmt.Errorf("exec: query predicates none of the CM's columns")
	}
	buckets, err := cmBuckets(cm, q)
	if err != nil {
		return err
	}
	dir := t.Buckets()
	var rids []heap.RID
	for _, run := range bucketRuns(buckets) {
		if err := ctxErr(q.Ctx); err != nil {
			return err
		}
		lo := dir.LowerBound(run[0])
		hiExcl, _ := dir.UpperBound(run[1]) // nil means scan to the end
		var ctxErrSeen error
		err := t.Clustered().ScanKeyRange(lo, hiExcl, func(rid heap.RID) bool {
			if q.Ctx != nil && len(rids)&(cancelCheckRIDs-1) == 0 {
				if err := ctxErr(q.Ctx); err != nil {
					ctxErrSeen = err
					return false
				}
			}
			rids = append(rids, rid)
			return true
		})
		if ctxErrSeen != nil {
			return ctxErrSeen
		}
		if err != nil {
			return err
		}
	}
	return sweepPages(t, pagesOf(rids), q, fn)
}

// CMRewrite describes the predicate-introduction rewrite a CM performs:
// the clustered-attribute key ranges that will be added to the query, as
// the prototype added "AND shipdate IN (s1 ... sn)" (Section 7.1). For
// single-value clustered buckets the ranges degenerate to the IN list.
type CMRewrite struct {
	Buckets []int32
	Ranges  []KeyRange
}

// KeyRange is a clustered-key interval [Lo, HiExcl); HiExcl nil means
// unbounded.
type KeyRange struct {
	Lo     []byte
	HiExcl []byte
}

// RewriteWithCM computes the rewrite without executing it, for
// explanation, tests and the advisor's what-if output.
func RewriteWithCM(t *table.Table, cm *core.CM, q Query) (CMRewrite, error) {
	buckets, err := cmBuckets(cm, q)
	if err != nil {
		return CMRewrite{}, err
	}
	dir := t.Buckets()
	rw := CMRewrite{Buckets: buckets}
	for _, run := range bucketRuns(buckets) {
		lo := dir.LowerBound(run[0])
		hiExcl, _ := dir.UpperBound(run[1])
		rw.Ranges = append(rw.Ranges, KeyRange{Lo: lo, HiExcl: hiExcl})
	}
	return rw, nil
}

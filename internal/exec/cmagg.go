package exec

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/table"
	"repro/internal/value"
)

// This file implements aggregation pushdown into the correlation map —
// the cm-agg access path. The CM's bucket directory already stores one
// statistics block per (bucketed key, clustered bucket) pair: the
// Algorithm-1 reference count, extended with per-column sums and
// min/max (core.EntryStats). A COUNT/SUM/AVG/MIN/MAX query whose
// predicates and aggregated columns are all covered by one CM therefore
// folds its answer from the memory-resident directory without touching
// a single heap page, the way Hermit answers queries from its
// correlation structure alone.
//
// Exactness is decided per entry. An entry is pure — its statistics
// describe exactly the tuples the query's predicates select — when
// every predicated CM column is either unbucketed (Identity: the key is
// the value, so the original predicate evaluates exactly) or the key's
// bucket lies strictly inside a range predicate (every value the bucket
// covers satisfies the range). Entries on bucket boundaries, entries of
// truncation-bucketed point lookups, and entries whose min/max went
// stale after a delete (EntryStats.MMDirty) are impure: the hybrid plan
// answers them by sweeping only their clustered buckets, re-filtering
// tuples with the original predicates and an entry-membership check so
// statistics-fed and swept tuples never double count.
//
// SUM and AVG lower only for integer columns: their statistics sums are
// exact int64s, so the folded result is byte-identical to the
// heap-visiting aggregation at any worker count. Float sums would
// depend on addition order and are left on the heap path.

// CMAggPlan is a planned aggregation pushdown: the statistics-fed
// partial answer plus the impure remainder to sweep. Build one with
// PlanCMAgg under the table latch and Run it under the same hold.
type CMAggPlan struct {
	// CM is the correlation map answering the aggregate.
	CM *core.CM
	// MatchedKeys counts CM keys selected by the predicates.
	MatchedKeys int
	// PureEntries and ImpureEntries count the (key, clustered-bucket)
	// pairs answered from statistics vs marked for the hybrid sweep.
	PureEntries, ImpureEntries int
	// ImpureBuckets lists the sorted distinct clustered buckets the
	// hybrid part must sweep; empty means the answer is fully
	// index-only.
	ImpureBuckets []int32
	// MatchedBuckets counts the distinct clustered buckets across every
	// matched key — what a plain CM scan of the same predicates would
	// sweep. ImpureBuckets < MatchedBuckets means the statistics saved
	// real sweeping.
	MatchedBuckets int
	// NeedCols are the columns the hybrid sweep decodes per tuple.
	NeedCols []int

	specs       []AggSpec
	groupBy     []int
	groupKeyPos []int // position within the CM key per groupBy column
	q           Query
	stats       *GroupAgg
	impurePairs map[string]map[int32]bool
}

// cmKeyPred is one query predicate mapped onto a CM key position, with
// its bucket-transformed form for truncation-bucketed columns.
type cmKeyPred struct {
	orig     Pred // rebased to the key position
	identity bool
	trans    Pred // bucket-transformed, inclusive bounds (superset match)
	lo, hi   *value.Value
}

// matches reports whether a key's bucketed values can contain tuples
// satisfying the predicate.
func (kp *cmKeyPred) matches(vals []value.Value) bool {
	if kp.identity {
		return kp.orig.Matches(vals)
	}
	return kp.trans.Matches(vals)
}

// pure reports whether every tuple under a matching key satisfies the
// predicate exactly: always for identity bucketing, and for range
// predicates whose transformed bounds the key lies strictly inside
// (bucket representatives are interval lower bounds, so a key strictly
// between the boundary buckets covers only in-range values).
func (kp *cmKeyPred) pure(vals []value.Value) bool {
	if kp.identity {
		return true
	}
	if kp.orig.Op != OpRange {
		return false
	}
	v := vals[kp.orig.Col]
	if kp.lo != nil && v.Compare(*kp.lo) <= 0 {
		return false
	}
	if kp.hi != nil && v.Compare(*kp.hi) >= 0 {
		return false
	}
	return true
}

// PlanCMAgg decides whether the aggregate query (one conjunction,
// aggregates over specs grouped by groupBy) lowers onto the CM's
// per-entry statistics, and if so classifies every entry as pure
// (folded from statistics) or impure (left for the hybrid sweep). It
// reports ok=false when any predicate or aggregate escapes the CM's
// coverage: a predicated or grouped column outside the CM attribute, a
// non-indexable predicate, SUM/AVG over a non-integer column, a
// MIN/MAX or SUM column without statistics, or statistics invalidated
// by checkpoint recovery. Callers must hold the table latch (shared
// suffices) across PlanCMAgg and Run.
func PlanCMAgg(t *table.Table, cm *core.CM, q Query, specs []AggSpec, groupBy []int) (*CMAggPlan, bool) {
	spec := cm.Spec()
	sch := t.Schema()
	pos := make(map[int]int, len(spec.UCols)) // table column -> key position
	for i, c := range spec.UCols {
		pos[c] = i
	}
	statIdx := make(map[int]int, len(spec.StatCols))
	for i, c := range spec.StatCols {
		statIdx[c] = i
	}

	// Aggregates: COUNT needs only the reference counts; everything else
	// needs valid per-column statistics, and SUM/AVG additionally an
	// integer column for exact folding.
	needMM := false
	aggStat := make([]int, len(specs)) // index into StatCols, -1 for COUNT
	for i, sp := range specs {
		aggStat[i] = -1
		if sp.Kind == AggCount {
			continue
		}
		si, ok := statIdx[sp.Col]
		if !ok || !cm.StatsValid() {
			return nil, false
		}
		if (sp.Kind == AggSum || sp.Kind == AggAvg) && sch.Cols[sp.Col].Kind != value.Int {
			return nil, false
		}
		if sp.Kind == AggMin || sp.Kind == AggMax {
			needMM = true
		}
		aggStat[i] = si
	}

	// Grouping columns must be unbucketed CM columns: the key then
	// carries the exact group values.
	groupKeyPos := make([]int, len(groupBy))
	for i, c := range groupBy {
		kp, ok := pos[c]
		if !ok {
			return nil, false
		}
		if _, id := spec.Bucketers[kp].(core.Identity); !id {
			return nil, false
		}
		groupKeyPos[i] = kp
	}

	// Every predicate must be an indexable predicate over a CM column.
	var kpreds []cmKeyPred
	for _, p := range q.Preds {
		kp, ok := pos[p.Col]
		if !ok || !p.Indexable() {
			return nil, false
		}
		b := spec.Bucketers[kp]
		_, identity := b.(core.Identity)
		rebased := p
		rebased.Col = kp
		ckp := cmKeyPred{orig: rebased, identity: identity}
		if !identity {
			trans := Pred{Col: kp, Op: p.Op}
			switch p.Op {
			case OpEq, OpIn:
				trans.Vals = make([]value.Value, len(p.Vals))
				for j, v := range p.Vals {
					trans.Vals[j] = b.Bucket(v)
				}
			case OpRange:
				if p.Lo != nil {
					lo := b.Bucket(*p.Lo)
					trans.Lo, ckp.lo = &lo, &lo
				}
				if p.Hi != nil {
					hi := b.Bucket(*p.Hi)
					trans.Hi, ckp.hi = &hi, &hi
				}
			}
			ckp.trans = trans
		}
		kpreds = append(kpreds, ckp)
	}

	plan := &CMAggPlan{
		CM:          cm,
		specs:       specs,
		groupBy:     groupBy,
		groupKeyPos: groupKeyPos,
		q:           q,
		stats:       NewGroupAgg(sch, specs, groupBy),
		impurePairs: make(map[string]map[int32]bool),
	}

	// One walk over the (small, memory-resident) CM: fold pure entries
	// into the statistics aggregator, set impure ones aside for the
	// sweep.
	impureBuckets := make(map[int32]bool)
	matchedBuckets := make(map[int32]bool)
	parts := make([]Partial, len(specs))
	_ = cm.WalkStats(func(key []byte, vals []value.Value, buckets map[int32]*core.EntryStats) bool {
		pure := true
		for i := range kpreds {
			if !kpreds[i].matches(vals) {
				return true
			}
			if !kpreds[i].pure(vals) {
				pure = false
			}
		}
		plan.MatchedKeys++
		var groupVals value.Row
		if pure && len(groupBy) > 0 {
			groupVals = make(value.Row, len(groupBy))
			for i, kp := range groupKeyPos {
				groupVals[i] = vals[kp]
			}
		}
		for cb, st := range buckets {
			matchedBuckets[cb] = true
			if !pure || (needMM && st.MMDirty) {
				plan.ImpureEntries++
				set, ok := plan.impurePairs[string(key)]
				if !ok {
					set = make(map[int32]bool, 2)
					plan.impurePairs[string(key)] = set
				}
				set[cb] = true
				impureBuckets[cb] = true
				continue
			}
			plan.PureEntries++
			for i := range specs {
				p := Partial{Count: st.Count}
				if si := aggStat[i]; si >= 0 {
					p.SumI = st.SumI[si]
					p.SumF = st.SumF[si]
					p.Min = st.Min[si]
					p.Max = st.Max[si]
				}
				parts[i] = p
			}
			plan.stats.FoldPartial(groupVals, parts)
		}
		return true
	})
	for cb := range impureBuckets {
		plan.ImpureBuckets = append(plan.ImpureBuckets, cb)
	}
	sort.Slice(plan.ImpureBuckets, func(i, j int) bool {
		return plan.ImpureBuckets[i] < plan.ImpureBuckets[j]
	})
	plan.MatchedBuckets = len(matchedBuckets)

	// The hybrid sweep decodes predicated + CM + clustered + aggregated
	// + grouped columns to re-filter and re-fold impure tuples.
	need := Query{Proj: []int{}}
	need.Preds = q.Preds
	cols := append([]int(nil), spec.UCols...)
	cols = append(cols, t.ClusteredCols()...)
	cols = append(cols, groupBy...)
	for _, sp := range specs {
		if sp.Col >= 0 {
			cols = append(cols, sp.Col)
		}
	}
	need.Proj = cols
	plan.NeedCols = need.MaterializeCols(len(sch.Cols))
	return plan, true
}

// SetObs points the plan's impure-bucket sweep at an observer (see
// Query.Obs); the index-only leg does no physical work to count.
func (p *CMAggPlan) SetObs(o *ScanObs) { p.q.Obs = o }

// Run executes the cm-agg plan: the statistics-fed partial merges first,
// then per-chunk partials from the impure-bucket sweep merge in fixed
// chunk order — exact counts, integer sums and extreme values make the
// result byte-identical to the heap-visiting aggregation for any worker
// count. The returned rows are in canonical GroupAgg.Rows shape.
func (p *CMAggPlan) Run(t *table.Table, workers int) ([]value.Row, error) {
	sch := t.Schema()
	final := NewGroupAgg(sch, p.specs, p.groupBy)
	final.Merge(p.stats)
	if len(p.ImpureBuckets) == 0 {
		return final.Rows(), nil
	}

	// Collect the RIDs of the impure clustered buckets and sweep their
	// pages, folding tuples that (a) satisfy the original predicates and
	// (b) belong to an impure entry — pure entries' tuples are already
	// in the statistics partial.
	rids, err := cmBucketRIDs(p.q.Ctx, t, p.ImpureBuckets, workers)
	if err != nil {
		return nil, err
	}
	pages := pagesOf(rids)
	// Like every other access path, the sweep filters on encoded bytes
	// first (the PR 3 contract: zero work per rejected tuple); only
	// survivors decode, for the entry-membership check and the fold.
	filter := CompileFilter(sch, p.q)
	nchunks := (len(pages) + aggChunkPages - 1) / aggChunkPages
	chunks := chunkSlices(len(pages), nchunks)
	partials := make([]*GroupAgg, len(chunks))
	err = runTasks(p.q.Ctx, workers, len(chunks), func(i int) error {
		ga := NewGroupAgg(sch, p.specs, p.groupBy)
		scratch := make(value.Row, len(sch.Cols))
		sub := pages[chunks[i][0]:chunks[i][1]]
		ta := newTally()
		defer func() { ta.flush(p.q.Obs) }()
		err := forEachPageRun(sub, maxGapFor(t), func(lo, hi int64) (bool, error) {
			var innerErr error
			err := t.Heap().ScanPagesAt(lo, hi, p.q.Snap, func(rid heap.RID, tuple []byte) bool {
				if p.q.Ctx != nil && rid.Page != ta.lastPage {
					// Page-boundary cancellation poll, mirroring the
					// heap-visiting aggregation sweep.
					if err := ctxErr(p.q.Ctx); err != nil {
						innerErr = err
						return false
					}
				}
				ta.page(rid.Page)
				ta.tuples++
				ok, err := filter.Matches(tuple)
				if err != nil {
					innerErr = err
					return false
				}
				if !ok {
					return true
				}
				if err := sch.DecodeCols(scratch, tuple, p.NeedCols); err != nil {
					innerErr = err
					return false
				}
				set := p.impurePairs[string(p.CM.KeyForRow(scratch))]
				if set == nil || !set[t.ClusterBucketFor(scratch)] {
					return true
				}
				ta.rows++
				ga.Add(scratch)
				return true
			})
			if innerErr != nil {
				return false, innerErr
			}
			return err == nil, err
		})
		partials[i] = ga
		return err
	})
	if err != nil {
		return nil, err
	}
	for _, part := range partials {
		final.Merge(part)
	}
	return final.Rows(), nil
}

// cmBucketRIDs collects the clustered-index RIDs of the given sorted
// clustered buckets, fanning contiguous bucket runs across the worker
// pool like parallelCMRIDs. ctx, when non-nil, cancels between runs and
// every cancelCheckRIDs collected RIDs within a run.
func cmBucketRIDs(ctx context.Context, t *table.Table, buckets []int32, workers int) ([]heap.RID, error) {
	runs := bucketRuns(buckets)
	dir := t.Buckets()
	ridLists := make([][]heap.RID, len(runs))
	err := runTasks(ctx, workers, len(runs), func(i int) error {
		lo := dir.LowerBound(runs[i][0])
		hiExcl, _ := dir.UpperBound(runs[i][1]) // nil means scan to the end
		var rids []heap.RID
		var ctxErrSeen error
		err := t.Clustered().ScanKeyRange(lo, hiExcl, func(rid heap.RID) bool {
			if ctx != nil && len(rids)&(cancelCheckRIDs-1) == 0 {
				if err := ctxErr(ctx); err != nil {
					ctxErrSeen = err
					return false
				}
			}
			rids = append(rids, rid)
			return true
		})
		if ctxErrSeen != nil {
			return ctxErrSeen
		}
		ridLists[i] = rids
		return err
	})
	if err != nil {
		return nil, err
	}
	var rids []heap.RID
	for _, l := range ridLists {
		rids = append(rids, l...)
	}
	return rids, nil
}

// Describe renders the plan for EXPLAIN: the CM, how much of the answer
// comes from statistics, and what the hybrid part sweeps.
func (p *CMAggPlan) Describe() string {
	if len(p.ImpureBuckets) == 0 {
		return fmt.Sprintf("cm-agg(%s): %d keys, %d entries from bucket statistics, index-only",
			p.CM.Spec().Name, p.MatchedKeys, p.PureEntries)
	}
	return fmt.Sprintf("cm-agg(%s): %d entries from bucket statistics + hybrid sweep of %d impure buckets (%d entries)",
		p.CM.Spec().Name, p.PureEntries, len(p.ImpureBuckets), p.ImpureEntries)
}

package exec

import (
	"context"
	"strings"
	"time"

	"repro/internal/costmodel"
	"repro/internal/heap"
	"repro/internal/table"
	"repro/internal/value"
)

// This file adds disjunction (OR) support on top of the conjunctive
// engine. An OR query is held in disjunctive normal form — a list of
// conjunctive Query values — and executes one of two ways:
//
//   - RID-dedup union: when every disjunct can drive an index or CM
//     probe (and the summed probe costs beat one sequential scan), each
//     disjunct collects the RIDs its own best access path would read,
//     the union of those RIDs reduces to a sorted distinct page list
//     (pagesOf, which also deduplicates rows matched by several
//     disjuncts: emission is by page sweep, not by RID), and one
//     physical-order sweep re-filters tuples with the compiled
//     disjunction filter.
//   - Filtered scan fallback: when any disjunct cannot probe (a bare
//     table-scan plan, or no indexable predicate), the whole
//     disjunction evaluates as a single full scan with the OrFilter —
//     never N separate scans.
//
// Both paths emit rows in physical heap order, so serial and parallel
// execution produce identical result sequences.

// OrQuery is a disjunction of conjunctive queries: a row matches when it
// satisfies at least one disjunct. Proj is the shared projection
// (same semantics as Query.Proj); the disjunct queries' own Proj fields
// are ignored.
type OrQuery struct {
	Disjuncts []Query
	Proj      []int
	// Snap is the MVCC snapshot the disjunction reads as of (see
	// Query.Snap). 0 reads the latest state.
	Snap uint64
	// Obs, when non-nil, receives the union's physical-work counts
	// (see Query.Obs and ScanObs); the per-disjunct RID collection and
	// the shared page sweep all tally into it.
	Obs *ScanObs
	// Ctx, when non-nil, cancels the union exactly like Query.Ctx
	// cancels a conjunctive scan.
	Ctx context.Context
}

// NewOrQuery builds a disjunctive query from conjunctions.
func NewOrQuery(disjuncts ...Query) OrQuery { return OrQuery{Disjuncts: disjuncts} }

// Matches reports whether the row satisfies at least one disjunct.
func (oq OrQuery) Matches(row value.Row) bool {
	for _, q := range oq.Disjuncts {
		if q.Matches(row) {
			return true
		}
	}
	return false
}

// MaterializeCols returns the sorted distinct columns the executor must
// decode for result rows: every column when Proj is nil, otherwise the
// union of the projection and every column predicated by any disjunct.
func (oq OrQuery) MaterializeCols(ncols int) []int {
	if oq.Proj == nil {
		out := make([]int, ncols)
		for i := range out {
			out[i] = i
		}
		return out
	}
	seen := make([]bool, ncols)
	mark := func(c int) {
		if c >= 0 && c < ncols {
			seen[c] = true
		}
	}
	for _, c := range oq.Proj {
		mark(c)
	}
	for _, q := range oq.Disjuncts {
		for _, p := range q.Preds {
			mark(p.Col)
		}
	}
	var out []int
	for c, ok := range seen {
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// String renders the disjunction with parenthesized conjunctions.
func (oq OrQuery) String() string {
	parts := make([]string, len(oq.Disjuncts))
	for i, q := range oq.Disjuncts {
		parts[i] = "(" + q.String() + ")"
	}
	return strings.Join(parts, " OR ")
}

// OrFilter is an OrQuery compiled against a schema: it evaluates the
// disjunction directly on encoded heap tuples, running the structural
// check once and each disjunct's compiled conjunction (with its own
// cheapest-first predicate order and early exit) until one accepts.
type OrFilter struct {
	sch     table.Schema
	filters []*TupleFilter
}

// CompileOrFilter compiles every disjunct against the schema.
func CompileOrFilter(sch table.Schema, oq OrQuery) *OrFilter {
	sch = sch.Normalized()
	f := &OrFilter{sch: sch, filters: make([]*TupleFilter, len(oq.Disjuncts))}
	for i, q := range oq.Disjuncts {
		f.filters[i] = CompileFilter(sch, q)
	}
	return f
}

// Matches evaluates the disjunction on an encoded tuple; it reports true
// as soon as any disjunct matches.
func (f *OrFilter) Matches(tuple []byte) (bool, error) {
	if err := f.sch.CheckTuple(tuple); err != nil {
		return false, err
	}
	for _, tf := range f.filters {
		ok, err := tf.matchPreds(tuple)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// OrPlan is the chosen execution strategy for an OrQuery: either a
// RID-dedup union of per-disjunct probe plans, or a single filtered
// table scan.
type OrPlan struct {
	// Union reports whether the plan probes each disjunct and unions the
	// RIDs; false means one filtered sequential scan.
	Union bool
	// Plans holds one access-path plan per disjunct when Union is true.
	Plans []Plan
	// Cost is the predicted total cost: the summed probe costs for a
	// union, the sequential-scan cost for the fallback.
	Cost time.Duration
}

// ChooseOrPlan plans an OR query: each disjunct is planned independently
// with the Section 4 cost model, and the union path is chosen only when
// every disjunct found a probe-based plan and their summed costs beat
// one sequential scan. Otherwise the whole disjunction falls back to a
// single filtered scan — a disjunct that would scan anyway makes
// per-disjunct probing pure overhead.
func ChooseOrPlan(t *table.Table, oq OrQuery, sp StatsProvider) OrPlan {
	ts := sp.TableStats(t)
	scanCost := costmodel.Scan(costmodel.DefaultHardware(), ts)
	plans := make([]Plan, len(oq.Disjuncts))
	var sum time.Duration
	union := len(oq.Disjuncts) > 0
	for i, q := range oq.Disjuncts {
		plans[i] = ChoosePlan(t, q, sp)
		if plans[i].Method == MethodTableScan {
			union = false
			break
		}
		sum += plans[i].Cost
	}
	if !union || sum >= scanCost {
		return OrPlan{Union: false, Cost: scanCost}
	}
	return OrPlan{Union: true, Plans: plans, Cost: sum}
}

// collectPlanRIDs gathers the RIDs one disjunct's probe-based plan would
// read, fanning the probe out across the worker pool.
func collectPlanRIDs(t *table.Table, p Plan, q Query, workers int) ([]heap.RID, error) {
	switch p.Method {
	case MethodSorted, MethodPipelined:
		return parallelRangeRIDs(q.Ctx, p.Index, sortRanges(probeRanges(p.Index, q)), workers)
	case MethodCM:
		return parallelCMRIDs(t, p.CM, q, workers)
	default:
		// ChooseOrPlan never unions a table-scan disjunct; reaching here
		// means a hand-built OrPlan — treat it as "probe nothing" and let
		// the caller's sweep find nothing for this disjunct.
		return nil, nil
	}
}

// RunParallel executes the OR plan with the given scan fan-out. The
// union path collects each disjunct's RIDs through its own access path,
// deduplicates at page granularity and sweeps the pages once in
// physical order, re-filtering with the compiled disjunction; the
// fallback path is a single filtered scan. Rows emit in physical order
// either way, identical for any worker count.
func (op OrPlan) RunParallel(t *table.Table, oq OrQuery, workers int, fn RowFunc) error {
	ls := newOrLazyScan(t, oq)
	if !op.Union {
		return parallelTableScanLS(t, ls, workers, fn)
	}
	var rids []heap.RID
	for i, p := range op.Plans {
		r, err := collectPlanRIDs(t, p, oq.Disjuncts[i], workers)
		if err != nil {
			return err
		}
		rids = append(rids, r...)
	}
	return parallelSweepPagesLS(t, pagesOf(rids), ls, workers, fn)
}

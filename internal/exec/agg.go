package exec

import (
	"bytes"
	"context"
	"fmt"
	"sort"

	"repro/internal/heap"
	"repro/internal/keyenc"
	"repro/internal/table"
	"repro/internal/value"
)

// This file implements streaming aggregation — the paper's own running
// example is `SELECT AVG(salary) FROM employees WHERE city = ...`, and
// the lazy-materialization layer makes it a zero-materialization fold:
// tuples are filtered on encoded bytes, survivors decode only the
// predicated + aggregated + grouped columns into a per-worker scratch
// row, and no result row is ever built for the scan itself.
//
// Parallel execution uses per-chunk partial aggregates merged at the
// barrier. Chunk boundaries depend only on the page list (a fixed
// granularity, aggChunkPages), never on the worker count, and partials
// merge in chunk order — so the result is byte-identical for any
// worker count, including non-associative float sums. AVG is carried
// as sum + count through the merge (the partial-aggregate contract the
// README documents); only Rows() divides.

// AggKind identifies an aggregate function.
type AggKind int

// The aggregate functions.
const (
	// AggCount counts rows. The engine has no NULLs, so COUNT(col) and
	// COUNT(*) agree; Col -1 denotes the star form.
	AggCount AggKind = iota
	// AggSum sums a numeric column (int columns sum exactly in int64).
	AggSum
	// AggAvg averages a numeric column, carried as sum + count until the
	// final division.
	AggAvg
	// AggMin tracks the minimum value of a column (any kind).
	AggMin
	// AggMax tracks the maximum value of a column (any kind).
	AggMax
)

// String names the function in lowercase SQL form.
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("agg(%d)", int(k))
	}
}

// AggSpec is one aggregate expression: a function over a column.
// Col -1 means COUNT(*).
type AggSpec struct {
	Kind AggKind
	Col  int
}

// String renders the expression in SQL form, e.g. "avg(col2)".
func (a AggSpec) String() string {
	if a.Col < 0 {
		return a.Kind.String() + "(*)"
	}
	return fmt.Sprintf("%s(col%d)", a.Kind, a.Col)
}

// aggCell is the partial state of one aggregate within one group: the
// merge-ready carriers (count, exact int sum, float sum, running
// min/max). AVG finalizes as sum/count only in Rows().
type aggCell struct {
	count int64
	sumI  int64
	sumF  float64
	minV  value.Value
	maxV  value.Value
	seen  bool
}

// merge folds another partial cell into c (the partial-aggregate merge
// contract: counts and sums add, min/max compare).
func (c *aggCell) merge(o *aggCell, kind AggKind) {
	c.count += o.count
	c.sumI += o.sumI
	c.sumF += o.sumF
	if o.seen {
		if !c.seen {
			c.minV, c.maxV, c.seen = o.minV, o.maxV, true
		} else {
			if kind == AggMin && o.minV.Compare(c.minV) < 0 {
				c.minV = o.minV
			}
			if kind == AggMax && o.maxV.Compare(c.maxV) > 0 {
				c.maxV = o.maxV
			}
		}
	}
}

// GroupAgg is a streaming (optionally grouped) aggregator: Add folds
// rows in, Merge folds another aggregator's partial state in, and Rows
// finalizes. Groups hash on the order-preserving key encoding of the
// GROUP BY columns; with no grouping columns a single global group
// exists from construction, so an empty input still yields one result
// row (COUNT 0, zero-valued SUM/AVG/MIN/MAX — the engine has no NULLs).
//
// A GroupAgg is not safe for concurrent use; parallel executors give
// each chunk its own and merge at the barrier.
type GroupAgg struct {
	specs   []AggSpec
	kinds   []value.Kind // column kind per spec (Int for COUNT(*))
	groupBy []int
	idx     map[string]int
	keys    []value.Row // group-by values per group, in first-seen order
	encKeys [][]byte    // order-preserving encoded group keys
	cells   [][]aggCell
	keyBuf  []byte
}

// NewGroupAgg builds an aggregator for the given specs and grouping
// columns (nil or empty groupBy = one global group) over a schema.
func NewGroupAgg(sch table.Schema, specs []AggSpec, groupBy []int) *GroupAgg {
	g := &GroupAgg{
		specs:   specs,
		kinds:   make([]value.Kind, len(specs)),
		groupBy: groupBy,
		idx:     make(map[string]int),
	}
	for i, sp := range specs {
		if sp.Col >= 0 {
			g.kinds[i] = sch.Cols[sp.Col].Kind
		}
	}
	if len(groupBy) == 0 {
		g.group(nil) // the global group exists even for empty inputs
	}
	return g
}

// group resolves (creating on first sight) the group for an encoded key.
func (g *GroupAgg) group(key []byte) int {
	gi, ok := g.idx[string(key)]
	if !ok {
		gi = len(g.keys)
		g.idx[string(key)] = gi
		g.encKeys = append(g.encKeys, append([]byte(nil), key...))
		g.keys = append(g.keys, nil) // filled by the caller that has the values
		g.cells = append(g.cells, make([]aggCell, len(g.specs)))
	}
	return gi
}

// Add folds one row into its group. The row is only read during the
// call (scratch-row reuse by the caller is fine): group key values are
// cloned on first sight, and min/max retain plain value copies.
func (g *GroupAgg) Add(row value.Row) {
	g.keyBuf = g.keyBuf[:0]
	for _, c := range g.groupBy {
		g.keyBuf = keyenc.AppendValue(g.keyBuf, row[c])
	}
	gi := g.group(g.keyBuf)
	if g.keys[gi] == nil && len(g.groupBy) > 0 {
		kv := make(value.Row, len(g.groupBy))
		for i, c := range g.groupBy {
			kv[i] = row[c]
		}
		g.keys[gi] = kv
	}
	cells := g.cells[gi]
	for i := range g.specs {
		sp := &g.specs[i]
		cell := &cells[i]
		cell.count++
		if sp.Col < 0 {
			continue
		}
		v := row[sp.Col]
		switch sp.Kind {
		case AggSum, AggAvg:
			if v.K == value.Int {
				cell.sumI += v.I
			} else {
				cell.sumF += v.F
			}
		case AggMin:
			if !cell.seen || v.Compare(cell.minV) < 0 {
				cell.minV = v
			}
			cell.seen = true
		case AggMax:
			if !cell.seen || v.Compare(cell.maxV) > 0 {
				cell.maxV = v
			}
			cell.seen = true
		}
	}
}

// Partial is a pre-aggregated input for one aggregate spec of a
// GroupAgg: Count matching tuples whose spec-column values sum to
// SumI/SumF with extremes Min/Max (consulted only for AggMin/AggMax
// specs, where they must be set whenever Count > 0). The cm-agg path
// folds CM per-entry statistics through these instead of visiting heap
// tuples.
type Partial struct {
	Count int64
	SumI  int64
	SumF  float64
	Min   value.Value
	Max   value.Value
}

// FoldPartial merges one pre-aggregated partial per spec into the group
// identified by groupVals (nil or empty for the global group; values in
// groupBy order, cloned on first sight like Add). parts must align with
// the aggregator's specs. Because counts, integer sums and extreme
// values are exact, folding order does not affect the result, so
// statistics-fed groups merge byte-identically with tuple-fed ones.
func (g *GroupAgg) FoldPartial(groupVals value.Row, parts []Partial) {
	g.keyBuf = g.keyBuf[:0]
	for _, v := range groupVals {
		g.keyBuf = keyenc.AppendValue(g.keyBuf, v)
	}
	gi := g.group(g.keyBuf)
	if g.keys[gi] == nil && len(g.groupBy) > 0 {
		g.keys[gi] = append(value.Row(nil), groupVals...)
	}
	cells := g.cells[gi]
	for i := range g.specs {
		p := parts[i]
		if p.Count == 0 {
			continue
		}
		cell := &cells[i]
		cell.count += p.Count
		cell.sumI += p.SumI
		cell.sumF += p.SumF
		switch g.specs[i].Kind {
		case AggMin:
			if !cell.seen || p.Min.Compare(cell.minV) < 0 {
				cell.minV = p.Min
			}
			cell.seen = true
		case AggMax:
			if !cell.seen || p.Max.Compare(cell.maxV) > 0 {
				cell.maxV = p.Max
			}
			cell.seen = true
		}
	}
}

// Merge folds another aggregator's partial state into g. Both must have
// been built with the same specs and grouping columns. o's groups are
// visited in o's first-seen order, so merging chunk partials in chunk
// order reproduces the serial aggregation exactly (float sums add in
// the same sequence).
func (g *GroupAgg) Merge(o *GroupAgg) {
	for oi, key := range o.encKeys {
		gi := g.group(key)
		if g.keys[gi] == nil {
			g.keys[gi] = o.keys[oi]
		}
		dst, src := g.cells[gi], o.cells[oi]
		for i := range g.specs {
			dst[i].merge(&src[i], g.specs[i].Kind)
		}
	}
}

// Rows finalizes the aggregation: one row per group — the group-by
// values in groupBy order followed by the aggregate results in spec
// order — with groups sorted by group key. AVG divides here; SUM of an
// int column stays int64, AVG is always float.
func (g *GroupAgg) Rows() []value.Row {
	order := make([]int, len(g.keys))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return bytes.Compare(g.encKeys[order[a]], g.encKeys[order[b]]) < 0
	})
	out := make([]value.Row, 0, len(order))
	for _, gi := range order {
		row := make(value.Row, 0, len(g.groupBy)+len(g.specs))
		row = append(row, g.keys[gi]...)
		for i := range g.specs {
			row = append(row, g.finalize(&g.cells[gi][i], i))
		}
		out = append(out, row)
	}
	return out
}

// NumGroups reports how many groups have been seen so far.
func (g *GroupAgg) NumGroups() int { return len(g.keys) }

// finalize computes one aggregate's result value from its cell.
func (g *GroupAgg) finalize(cell *aggCell, i int) value.Value {
	sp := g.specs[i]
	kind := g.kinds[i]
	switch sp.Kind {
	case AggCount:
		return value.NewInt(cell.count)
	case AggSum:
		if kind == value.Int {
			return value.NewInt(cell.sumI)
		}
		return value.NewFloat(cell.sumF)
	case AggAvg:
		if cell.count == 0 {
			return value.NewFloat(0)
		}
		if kind == value.Int {
			return value.NewFloat(float64(cell.sumI) / float64(cell.count))
		}
		return value.NewFloat(cell.sumF / float64(cell.count))
	case AggMin:
		if !cell.seen {
			return zeroOf(kind)
		}
		return cell.minV
	default: // AggMax
		if !cell.seen {
			return zeroOf(kind)
		}
		return cell.maxV
	}
}

// zeroOf returns the zero value of a column kind, the engine's stand-in
// for NULL on empty-set MIN/MAX (documented in the README).
func zeroOf(k value.Kind) value.Value {
	switch k {
	case value.Int:
		return value.NewInt(0)
	case value.Float:
		return value.NewFloat(0)
	default:
		return value.NewString("")
	}
}

// aggChunkPages fixes the partial-aggregate chunk granularity. Chunk
// boundaries must depend only on the page list — never on the worker
// count — so that partials merged in chunk order give byte-identical
// results (float sums included) for any fan-out; workers only decide
// how many chunks run concurrently.
const aggChunkPages = 64

// aggNeedCols returns the sorted distinct columns aggregation must
// decode — every predicated column of every disjunct, every aggregated
// column, and every grouping column — by treating the aggregated +
// grouped columns as the disjunction's projection.
func aggNeedCols(ncols int, oq OrQuery, specs []AggSpec, groupBy []int) []int {
	proj := make([]int, 0, len(specs)+len(groupBy))
	for _, sp := range specs {
		if sp.Col >= 0 {
			proj = append(proj, sp.Col)
		}
	}
	proj = append(proj, groupBy...)
	return OrQuery{Disjuncts: oq.Disjuncts, Proj: proj}.MaterializeCols(ncols)
}

// AggregateOr evaluates the aggregation over the OR plan's access
// paths: the union path probes each disjunct for RIDs and sweeps the
// deduplicated pages, the fallback path sweeps the whole heap; either
// way tuples filter on encoded bytes and survivors fold straight into
// per-chunk partial aggregates (no result-row materialization), merged
// at the barrier in fixed chunk order. The returned rows are
// GroupAgg.Rows of the merged state. A single-conjunction aggregate is
// the one-disjunct special case.
func AggregateOr(t *table.Table, oq OrQuery, op OrPlan, workers int, specs []AggSpec, groupBy []int) ([]value.Row, error) {
	filter := CompileOrFilter(t.Schema(), oq)
	var pages []int64
	if op.Union {
		var rids []heap.RID
		for i, p := range op.Plans {
			r, err := collectPlanRIDs(t, p, oq.Disjuncts[i], workers)
			if err != nil {
				return nil, err
			}
			rids = append(rids, r...)
		}
		pages = pagesOf(rids)
	} else {
		n := t.Heap().NumPages()
		pages = make([]int64, n)
		for i := range pages {
			pages[i] = int64(i)
		}
	}
	need := aggNeedCols(len(t.Schema().Cols), oq, specs, groupBy)
	return aggregatePages(oq.Ctx, t, pages, filter, need, oq.Snap, workers, specs, groupBy, oq.Obs)
}

// aggregatePages folds the tuples of the given pages (visible to snap)
// into partial aggregates, one per fixed-size chunk, and merges the
// partials in chunk order. obs, when non-nil, receives per-chunk
// physical-work tallies (tuples examined, rows folded, page visits);
// ctx, when non-nil, cancels between chunks.
func aggregatePages(ctx context.Context, t *table.Table, pages []int64, m tupleMatcher, need []int, snap uint64, workers int, specs []AggSpec, groupBy []int, obs *ScanObs) ([]value.Row, error) {
	sch := t.Schema()
	nchunks := (len(pages) + aggChunkPages - 1) / aggChunkPages
	chunks := chunkSlices(len(pages), nchunks)
	partials := make([]*GroupAgg, len(chunks))
	err := runTasks(ctx, workers, len(chunks), func(i int) error {
		ga := NewGroupAgg(sch, specs, groupBy)
		scratch := make(value.Row, len(sch.Cols))
		sub := pages[chunks[i][0]:chunks[i][1]]
		ta := newTally()
		defer func() { ta.flush(obs) }()
		err := forEachPageRun(sub, maxGapFor(t), func(lo, hi int64) (bool, error) {
			var innerErr error
			err := t.Heap().ScanPagesAt(lo, hi, snap, func(rid heap.RID, tuple []byte) bool {
				if ctx != nil && rid.Page != ta.lastPage {
					// Page boundary: poll for cancellation so the fold
					// stops within one heap page even when the whole
					// table fits inside a single chunk.
					if err := ctxErr(ctx); err != nil {
						innerErr = err
						return false
					}
				}
				ta.page(rid.Page)
				ta.tuples++
				ok, err := m.Matches(tuple)
				if err != nil {
					innerErr = err
					return false
				}
				if !ok {
					return true
				}
				if err := sch.DecodeCols(scratch, tuple, need); err != nil {
					innerErr = err
					return false
				}
				ta.rows++
				ga.Add(scratch)
				return true
			})
			if innerErr != nil {
				return false, innerErr
			}
			return err == nil, err
		})
		partials[i] = ga
		return err
	})
	if err != nil {
		return nil, err
	}
	merged := NewGroupAgg(sch, specs, groupBy)
	for _, p := range partials {
		merged.Merge(p)
	}
	return merged.Rows(), nil
}

package exec

import (
	"context"
	"fmt"

	"repro/internal/heap"
	"repro/internal/table"
	"repro/internal/value"
)

// This file is the UPDATE executor. An UPDATE runs in two phases under
// the table's writer gate: a read phase that collects the RIDs and new
// images of every matching row through the planned access path, and a
// write phase that applies them as one MVCC writer statement
// (WriteTxn.UpdateBatch — Algorithm 1's retraction + reinsert per row).
// Collecting fully before writing sidesteps the Halloween problem: the
// scan can never see the rows it is about to produce. Because every
// access path emits rows in physical heap order at any worker count, the
// collected RID sequence — and therefore the written table state — is
// byte-identical for serial and parallel execution.

// SetClause is one assignment of an UPDATE statement: the target column
// and the literal value it takes. (The SQL surface only admits literal
// right-hand sides.)
type SetClause struct {
	Col int
	Val value.Value
}

// String renders the assignment for plan details.
func (s SetClause) String() string {
	return fmt.Sprintf("col%d = %v", s.Col, s.Val)
}

// CheckSets validates the assignments against a schema: known columns,
// no duplicate targets, and value kinds matching the column kinds.
func CheckSets(sch table.Schema, sets []SetClause) error {
	if len(sets) == 0 {
		return fmt.Errorf("exec: UPDATE with no assignments")
	}
	seen := make(map[int]bool, len(sets))
	for _, s := range sets {
		if s.Col < 0 || s.Col >= len(sch.Cols) {
			return fmt.Errorf("exec: UPDATE of unknown column %d", s.Col)
		}
		if seen[s.Col] {
			return fmt.Errorf("exec: duplicate assignment to column %s", sch.Cols[s.Col].Name)
		}
		seen[s.Col] = true
		if s.Val.K != sch.Cols[s.Col].Kind {
			return fmt.Errorf("exec: cannot assign %v value to %v column %s",
				s.Val.K, sch.Cols[s.Col].Kind, sch.Cols[s.Col].Name)
		}
	}
	return nil
}

// ApplySets returns a fresh row: src with every assignment applied.
func ApplySets(src value.Row, sets []SetClause) value.Row {
	out := src.Clone()
	for _, s := range sets {
		out[s.Col] = s.Val
	}
	return out
}

// UpdateByScan executes an UPDATE: run streams the matching rows (full
// rows, physical order) out of the chosen access path, and the write
// phase replaces each under one writer statement. It returns the number
// of rows updated. The caller must NOT hold the table latch — the writer
// statement takes the writer gate itself and latches per batch. ctx,
// when non-nil, cancels both phases: the read phase through the access
// path's own context and the write phase between latched bursts (a
// cancelled write aborts cleanly, leaving the table untouched).
func UpdateByScan(ctx context.Context, t *table.Table, run func(fn RowFunc) error, sets []SetClause) (int64, error) {
	if err := CheckSets(t.Schema(), sets); err != nil {
		return 0, err
	}
	tx := t.BeginWrite()
	tx.SetContext(ctx)
	var olds []heap.RID
	var news []value.Row
	err := run(func(rid heap.RID, row value.Row) bool {
		olds = append(olds, rid)
		news = append(news, ApplySets(row, sets))
		return true
	})
	if err == nil {
		err = tx.UpdateBatch(olds, news)
	}
	if err != nil {
		tx.Abort()
		return 0, err
	}
	return int64(len(olds)), tx.Publish()
}

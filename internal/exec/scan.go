package exec

import (
	"bytes"
	"sort"

	"repro/internal/heap"
	"repro/internal/keyenc"
	"repro/internal/table"
	"repro/internal/value"
)

// RowFunc receives result rows; returning false stops execution early.
type RowFunc func(rid heap.RID, row value.Row) bool

// TableScan evaluates the query with a full sequential heap scan.
func TableScan(t *table.Table, q Query, fn RowFunc) error {
	return t.Scan(func(rid heap.RID, row value.Row) bool {
		if !q.Matches(row) {
			return true
		}
		return fn(rid, row)
	})
}

// probeRange is an encoded key interval probed in an index: every entry
// whose attribute prefix lies in [Lo, Hi] (inclusive prefixes) matches.
type probeRange struct {
	Lo, Hi []byte
}

// indexProbeRanges converts the query's predicates over the index's key
// columns into encoded probe ranges. Leading equality predicates extend a
// fixed prefix, one IN fans out into several prefixes, and one range
// predicate terminates the key prefix — matching how a composite B+Tree
// can only use the prefix of its key for ranges (the effect behind the
// paper's Table 6, where B+Tree(ra, dec) degrades on two-range queries).
func indexProbeRanges(cols []int, q Query) []probeRange {
	prefixes := [][]byte{nil}
	for _, col := range cols {
		p := q.IndexablePredOn(col)
		if p == nil {
			break
		}
		switch p.Op {
		case OpEq:
			for i := range prefixes {
				prefixes[i] = keyenc.AppendValue(prefixes[i], p.Vals[0])
			}
			continue
		case OpIn:
			var next [][]byte
			for _, pre := range prefixes {
				for _, v := range p.Vals {
					key := make([]byte, len(pre), len(pre)+10)
					copy(key, pre)
					next = append(next, keyenc.AppendValue(key, v))
				}
			}
			prefixes = next
			// Further key columns could extend each branch; stop here
			// and re-filter instead, as real optimizers commonly do.
		case OpRange:
			out := make([]probeRange, 0, len(prefixes))
			for _, pre := range prefixes {
				lo := pre
				if p.Lo != nil {
					lo = keyenc.AppendValue(append([]byte(nil), pre...), *p.Lo)
				}
				hi := pre
				if p.Hi != nil {
					hi = keyenc.AppendValue(append([]byte(nil), pre...), *p.Hi)
				}
				out = append(out, probeRange{Lo: lo, Hi: hi})
			}
			return out
		}
		break
	}
	out := make([]probeRange, len(prefixes))
	for i, pre := range prefixes {
		out[i] = probeRange{Lo: pre, Hi: pre}
	}
	return out
}

// sortRanges orders probe ranges by their lower bound — the paper's
// "standard optimization is to sort the index keys before looking them
// up": consecutive probes then walk the index in key order, turning leaf
// accesses into a mostly sequential pass instead of random re-descents.
func sortRanges(ranges []probeRange) []probeRange {
	sort.Slice(ranges, func(i, j int) bool {
		return bytes.Compare(ranges[i].Lo, ranges[j].Lo) < 0
	})
	return ranges
}

// collectRIDs gathers the RIDs of every index entry in the probe ranges.
func collectRIDs(ix *table.Index, ranges []probeRange) ([]heap.RID, error) {
	var rids []heap.RID
	for _, r := range ranges {
		err := ix.ScanRange(r.Lo, r.Hi, func(rid heap.RID) bool {
			rids = append(rids, rid)
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	return rids, nil
}

// PipelinedIndexScan evaluates the query by probing the index and
// fetching each matching tuple immediately (the Section 3.1 iterator
// pattern): every tuple access is a potential random seek, which is why
// this path only pays off for very selective lookups.
func PipelinedIndexScan(t *table.Table, ix *table.Index, q Query, fn RowFunc) error {
	ranges := indexProbeRanges(ix.Cols, q)
	for _, r := range ranges {
		var cbErr error
		stop := false
		err := ix.ScanRange(r.Lo, r.Hi, func(rid heap.RID) bool {
			row, err := t.FetchRow(rid)
			if err != nil {
				cbErr = err
				return false
			}
			if row == nil || !q.Matches(row) {
				return true
			}
			if !fn(rid, row) {
				stop = true
				return false
			}
			return true
		})
		if cbErr != nil {
			return cbErr
		}
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// SortedIndexScan evaluates the query with the Section 3.2 optimization:
// probe the index for all matching RIDs up front, sort them, and sweep
// the heap pages in physical order (PostgreSQL's bitmap heap scan).
// Fetched pages are re-filtered with the full predicate set.
func SortedIndexScan(t *table.Table, ix *table.Index, q Query, fn RowFunc) error {
	rids, err := collectRIDs(ix, sortRanges(indexProbeRanges(ix.Cols, q)))
	if err != nil {
		return err
	}
	return sweepPages(t, pagesOf(rids), q, fn)
}

// pagesOf returns the sorted distinct pages referenced by the RIDs.
func pagesOf(rids []heap.RID) []int64 {
	seen := make(map[int64]struct{}, len(rids))
	for _, r := range rids {
		seen[r.Page] = struct{}{}
	}
	pages := make([]int64, 0, len(seen))
	for p := range seen {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	return pages
}

// maxGapFor returns the largest page gap worth reading straight
// through: one seek's worth of sequential reads (the read-ahead
// economics a bitmap heap scan relies on; it is also what lets dense
// access degrade gracefully toward a sequential scan, the
// min(..., cost_scan) cap in the paper's model).
func maxGapFor(t *table.Table) int64 {
	cfg := t.Pool().Disk().Config()
	maxGap := int64(cfg.SeekCost / cfg.SeqPageCost)
	if maxGap < 1 {
		maxGap = 1
	}
	return maxGap
}

// forEachPageRun coalesces the sorted distinct pages into maximal runs
// whose internal gaps are at most maxGap, invoking visit per run.
// Returning false from visit stops the iteration.
func forEachPageRun(pages []int64, maxGap int64, visit func(lo, hi int64) (cont bool, err error)) error {
	for i := 0; i < len(pages); {
		j := i
		for j+1 < len(pages) && pages[j+1]-pages[j] <= maxGap {
			j++
		}
		cont, err := visit(pages[i], pages[j])
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
		i = j + 1
	}
	return nil
}

// sweepPages reads the given heap pages in ascending order, re-filters
// rows against the query and emits matches. Rows on gap pages read
// through by a run are filtered out by the query like any other
// non-match.
func sweepPages(t *table.Table, pages []int64, q Query, fn RowFunc) error {
	sch := t.Schema()
	return forEachPageRun(pages, maxGapFor(t), func(lo, hi int64) (bool, error) {
		var decodeErr error
		stop := false
		err := t.Heap().ScanPages(lo, hi, func(rid heap.RID, tuple []byte) bool {
			row, err := sch.DecodeRow(tuple)
			if err != nil {
				decodeErr = err
				return false
			}
			if !q.Matches(row) {
				return true
			}
			if !fn(rid, row) {
				stop = true
				return false
			}
			return true
		})
		if decodeErr != nil {
			return false, decodeErr
		}
		if err != nil {
			return false, err
		}
		return !stop, nil
	})
}

// Collect runs an access method and gathers all result rows, a
// convenience for tests and examples.
func Collect(run func(fn RowFunc) error) ([]value.Row, error) {
	var out []value.Row
	err := run(func(_ heap.RID, row value.Row) bool {
		out = append(out, row.Clone())
		return true
	})
	return out, err
}

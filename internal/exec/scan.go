package exec

import (
	"bytes"
	"context"
	"sort"

	"repro/internal/heap"
	"repro/internal/keyenc"
	"repro/internal/table"
	"repro/internal/value"
)

// RowFunc receives result rows; returning false stops execution early.
//
// Scratch-row contract: the row is only valid for the duration of the
// call — serial executors reuse one scratch row across survivors, so a
// caller that retains rows must Clone them. Extracted scalar values
// (row[i].I, row[i].S, ...) are plain copies and safe to keep. When the
// query carries a projection (Query.Proj), only the projected and
// predicated entries of the row are materialized; the rest are zero
// values.
type RowFunc func(rid heap.RID, row value.Row) bool

// tupleMatcher evaluates a predicate structure directly on an encoded
// heap tuple: a compiled conjunction (TupleFilter) or disjunction
// (OrFilter). The error contract matches DecodeRow's structural check.
type tupleMatcher interface {
	Matches(tuple []byte) (bool, error)
}

// lazyScan bundles what every lazy access path needs: the compiled
// filter, the columns to materialize for survivors, the MVCC snapshot the
// scan reads as of, and a reusable scratch row for serial emission.
type lazyScan struct {
	sch     table.Schema
	filter  tupleMatcher
	need    []int
	snap    uint64
	scratch value.Row
	// obs receives per-chunk tally flushes when the query asked for
	// observation (Query.Obs / OrQuery.Obs); nil drops them.
	obs *ScanObs
	// ctx, when non-nil, cancels the scan: emit polls it at page
	// boundaries, so every serial path (table scan, pipelined probe,
	// page sweep) stops within one heap page of cancellation.
	ctx context.Context
}

func newLazyScan(t *table.Table, q Query) *lazyScan {
	sch := t.Schema()
	return &lazyScan{
		sch:     sch,
		filter:  CompileFilter(sch, q),
		need:    q.MaterializeCols(len(sch.Cols)),
		snap:    q.Snap,
		scratch: make(value.Row, len(sch.Cols)),
		obs:     q.Obs,
		ctx:     q.Ctx,
	}
}

// newOrLazyScan is newLazyScan's disjunctive twin: the filter passes
// tuples matching any disjunct, and the materialized column set is the
// union over every disjunct's predicated columns plus the projection.
func newOrLazyScan(t *table.Table, oq OrQuery) *lazyScan {
	sch := t.Schema()
	return &lazyScan{
		sch:     sch,
		filter:  CompileOrFilter(sch, oq),
		need:    oq.MaterializeCols(len(sch.Cols)),
		snap:    oq.Snap,
		scratch: make(value.Row, len(sch.Cols)),
		obs:     oq.Obs,
		ctx:     oq.Ctx,
	}
}

// emit filters one encoded tuple and, for survivors, decodes the needed
// columns into the scratch row and calls fn. The returned cont is false
// when the scan should stop (error or early stop from fn). The tally
// counts the page visit, the filter evaluation and any survivor; the
// caller flushes it to ls.obs when its chunk ends.
func (ls *lazyScan) emit(rid heap.RID, tuple []byte, fn RowFunc, ta *tally) (cont bool, err error) {
	if ls.ctx != nil && rid.Page != ta.lastPage {
		// Page boundary: poll for cancellation so a serial scan stops
		// within one heap page of the context firing.
		if err := ctxErr(ls.ctx); err != nil {
			return false, err
		}
	}
	ta.page(rid.Page)
	ta.tuples++
	ok, err := ls.filter.Matches(tuple)
	if err != nil {
		return false, err
	}
	if !ok {
		return true, nil
	}
	if err := ls.sch.DecodeCols(ls.scratch, tuple, ls.need); err != nil {
		return false, err
	}
	ta.rows++
	return fn(rid, ls.scratch), nil
}

// collect is emit's buffering twin for the parallel collectors: a
// surviving tuple decodes into a fresh row (collected rows outlive the
// pinned frame and the scan), a rejected one returns nil. Safe to share
// one lazyScan across workers — collect never touches the scratch row
// and the filter is read-only after compilation; each worker counts
// into its own tally (page visits are the caller's, since only it sees
// RIDs).
func (ls *lazyScan) collect(tuple []byte, ta *tally) (value.Row, error) {
	ta.tuples++
	ok, err := ls.filter.Matches(tuple)
	if err != nil || !ok {
		return nil, err
	}
	row := make(value.Row, len(ls.sch.Cols))
	if err := ls.sch.DecodeCols(row, tuple, ls.need); err != nil {
		return nil, err
	}
	ta.rows++
	return row, nil
}

// TableScan evaluates the query with a full sequential heap scan,
// filtering on encoded bytes and materializing only surviving rows.
func TableScan(t *table.Table, q Query, fn RowFunc) error {
	return tableScanLS(t, newLazyScan(t, q), fn)
}

// tableScanLS is TableScan over a pre-built lazyScan, shared with the
// OR executor (whose filter is a disjunction).
func tableScanLS(t *table.Table, ls *lazyScan, fn RowFunc) error {
	h := t.Heap()
	var innerErr error
	ta := newTally()
	defer func() { ta.flush(ls.obs) }()
	err := h.ScanPagesAt(0, h.NumPages()-1, ls.snap, func(rid heap.RID, tuple []byte) bool {
		cont, err := ls.emit(rid, tuple, fn, &ta)
		if err != nil {
			innerErr = err
			return false
		}
		return cont
	})
	if innerErr != nil {
		return innerErr
	}
	return err
}

// probeRange is an encoded key interval probed in an index: every entry
// whose attribute prefix lies in [Lo, Hi] (inclusive prefixes) matches.
type probeRange struct {
	Lo, Hi []byte
}

// indexProbeRanges converts the query's predicates over the index's key
// columns into encoded probe ranges. Leading equality predicates extend a
// fixed prefix, one IN fans out into several prefixes, and one range
// predicate terminates the key prefix — matching how a composite B+Tree
// can only use the prefix of its key for ranges (the effect behind the
// paper's Table 6, where B+Tree(ra, dec) degrades on two-range queries).
//
// pointComplete reports that every index column was consumed by an
// equality or IN predicate: each returned range is then a single full
// attribute key (Lo == Hi), which is the precondition for bloom-filter
// pruning — a partial prefix or range endpoint is not a key the bloom
// ever saw.
func indexProbeRanges(cols []int, q Query) (ranges []probeRange, pointComplete bool) {
	prefixes := [][]byte{nil}
	consumed := 0
	for _, col := range cols {
		p := q.IndexablePredOn(col)
		if p == nil {
			break
		}
		switch p.Op {
		case OpEq:
			for i := range prefixes {
				prefixes[i] = keyenc.AppendValue(prefixes[i], p.Vals[0])
			}
			consumed++
			continue
		case OpIn:
			var next [][]byte
			for _, pre := range prefixes {
				for _, v := range p.Vals {
					key := make([]byte, len(pre), len(pre)+10)
					copy(key, pre)
					next = append(next, keyenc.AppendValue(key, v))
				}
			}
			prefixes = next
			consumed++
			// Further key columns could extend each branch; stop here
			// and re-filter instead, as real optimizers commonly do.
		case OpRange:
			out := make([]probeRange, 0, len(prefixes))
			for _, pre := range prefixes {
				lo := pre
				if p.Lo != nil {
					lo = keyenc.AppendValue(append([]byte(nil), pre...), *p.Lo)
				}
				hi := pre
				if p.Hi != nil {
					hi = keyenc.AppendValue(append([]byte(nil), pre...), *p.Hi)
				}
				out = append(out, probeRange{Lo: lo, Hi: hi})
			}
			return out, false
		}
		break
	}
	out := make([]probeRange, len(prefixes))
	for i, pre := range prefixes {
		out[i] = probeRange{Lo: pre, Hi: pre}
	}
	return out, consumed == len(cols)
}

// probeRanges builds the query's probe ranges over ix and, when every
// range is a complete point key and the index carries a bloom filter,
// drops the ranges the bloom proves empty — those probes then cost zero
// tree descents and zero page reads. Pruned probes are counted into the
// query's observation set.
func probeRanges(ix *table.Index, q Query) []probeRange {
	ranges, point := indexProbeRanges(ix.Cols, q)
	return pruneRanges(ix, ranges, point, q.Obs)
}

// pruneRanges drops point-complete probe ranges the index bloom proves
// empty, counting each into obs. Non-point ranges (or a bloom-less
// index) pass through untouched.
func pruneRanges(ix *table.Index, ranges []probeRange, pointComplete bool, obs *ScanObs) []probeRange {
	if !pointComplete || !ix.BloomEnabled() {
		return ranges
	}
	kept := ranges[:0]
	for _, r := range ranges {
		if ix.ProbePossible(r.Lo) {
			kept = append(kept, r)
		}
	}
	obs.AddBlooms(int64(len(ranges) - len(kept)))
	return kept
}

// sortRanges orders probe ranges by their lower bound — the paper's
// "standard optimization is to sort the index keys before looking them
// up": consecutive probes then walk the index in key order, turning leaf
// accesses into a mostly sequential pass instead of random re-descents.
func sortRanges(ranges []probeRange) []probeRange {
	sort.Slice(ranges, func(i, j int) bool {
		return bytes.Compare(ranges[i].Lo, ranges[j].Lo) < 0
	})
	return ranges
}

// collectRIDs gathers the RIDs of every index entry in the probe
// ranges, polling ctx every cancelCheckRIDs entries.
func collectRIDs(ctx context.Context, ix *table.Index, ranges []probeRange) ([]heap.RID, error) {
	var rids []heap.RID
	var ctxErrSeen error
	for _, r := range ranges {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		err := ix.ScanRange(r.Lo, r.Hi, func(rid heap.RID) bool {
			rids = append(rids, rid)
			if ctx != nil && len(rids)&(cancelCheckRIDs-1) == 0 {
				if err := ctxErr(ctx); err != nil {
					ctxErrSeen = err
					return false
				}
			}
			return true
		})
		if ctxErrSeen != nil {
			return nil, ctxErrSeen
		}
		if err != nil {
			return nil, err
		}
	}
	return rids, nil
}

// PipelinedIndexScan evaluates the query by probing the index and
// fetching each matching tuple immediately (the Section 3.1 iterator
// pattern): every tuple access is a potential random seek, which is why
// this path only pays off for very selective lookups. Fetched tuples are
// filtered on their encoded bytes; only survivors materialize.
// BatchedIndexScan is its parallel twin.
func PipelinedIndexScan(t *table.Table, ix *table.Index, q Query, fn RowFunc) error {
	ls := newLazyScan(t, q)
	h := t.Heap()
	ranges := probeRanges(ix, q)
	ta := newTally()
	defer func() { ta.flush(ls.obs) }()
	// One view closure for the whole scan (a fresh closure per probed
	// RID would allocate per tuple): it reads the current RID from
	// curRID, set by the probe loop below.
	var curRID heap.RID
	stop := false
	view := func(tuple []byte) error {
		// View hands out the pinned frame's bytes: a tuple the filter
		// rejects is never copied or decoded.
		cont, err := ls.emit(curRID, tuple, fn, &ta)
		if !cont && err == nil {
			stop = true
		}
		return err
	}
	for _, r := range ranges {
		var cbErr error
		err := ix.ScanRange(r.Lo, r.Hi, func(rid heap.RID) bool {
			curRID = rid
			if err := h.ViewAt(rid, ls.snap, view); err != nil {
				cbErr = err
				return false
			}
			return !stop
		})
		if cbErr != nil {
			return cbErr
		}
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// SortedIndexScan evaluates the query with the Section 3.2 optimization:
// probe the index for all matching RIDs up front, sort them, and sweep
// the heap pages in physical order (PostgreSQL's bitmap heap scan).
// Fetched pages are re-filtered with the full predicate set.
func SortedIndexScan(t *table.Table, ix *table.Index, q Query, fn RowFunc) error {
	rids, err := collectRIDs(q.Ctx, ix, sortRanges(probeRanges(ix, q)))
	if err != nil {
		return err
	}
	return sweepPages(t, pagesOf(rids), q, fn)
}

// pagesOf returns the sorted distinct pages referenced by the RIDs. It
// sorts the RID slice in place (its callers are done with the probe
// order) and dedupes into one exactly-sized slice — no per-query map.
func pagesOf(rids []heap.RID) []int64 {
	if len(rids) == 0 {
		return nil
	}
	sort.Slice(rids, func(i, j int) bool { return rids[i].Page < rids[j].Page })
	distinct := 1
	for i := 1; i < len(rids); i++ {
		if rids[i].Page != rids[i-1].Page {
			distinct++
		}
	}
	pages := make([]int64, 0, distinct)
	pages = append(pages, rids[0].Page)
	for i := 1; i < len(rids); i++ {
		if rids[i].Page != rids[i-1].Page {
			pages = append(pages, rids[i].Page)
		}
	}
	return pages
}

// maxGapFor returns the largest page gap worth reading straight
// through: one seek's worth of sequential reads (the read-ahead
// economics a bitmap heap scan relies on; it is also what lets dense
// access degrade gracefully toward a sequential scan, the
// min(..., cost_scan) cap in the paper's model).
func maxGapFor(t *table.Table) int64 {
	cfg := t.Pool().Disk().Config()
	maxGap := int64(cfg.SeekCost / cfg.SeqPageCost)
	if maxGap < 1 {
		maxGap = 1
	}
	return maxGap
}

// forEachPageRun coalesces the sorted distinct pages into maximal runs
// whose internal gaps are at most maxGap, invoking visit per run.
// Returning false from visit stops the iteration.
func forEachPageRun(pages []int64, maxGap int64, visit func(lo, hi int64) (cont bool, err error)) error {
	for i := 0; i < len(pages); {
		j := i
		for j+1 < len(pages) && pages[j+1]-pages[j] <= maxGap {
			j++
		}
		cont, err := visit(pages[i], pages[j])
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
		i = j + 1
	}
	return nil
}

// sweepPages reads the given heap pages in ascending order, filters
// tuples on their encoded bytes and emits surviving rows. Rows on gap
// pages read through by a run are filtered out by the query like any
// other non-match.
func sweepPages(t *table.Table, pages []int64, q Query, fn RowFunc) error {
	return sweepPagesLS(t, pages, newLazyScan(t, q), fn)
}

// sweepPagesLS is sweepPages over a pre-built lazyScan, shared with the
// OR union executor.
func sweepPagesLS(t *table.Table, pages []int64, ls *lazyScan, fn RowFunc) error {
	ta := newTally()
	defer func() { ta.flush(ls.obs) }()
	return forEachPageRun(pages, maxGapFor(t), func(lo, hi int64) (bool, error) {
		var innerErr error
		stop := false
		err := t.Heap().ScanPagesAt(lo, hi, ls.snap, func(rid heap.RID, tuple []byte) bool {
			cont, err := ls.emit(rid, tuple, fn, &ta)
			if err != nil {
				innerErr = err
				return false
			}
			if !cont {
				stop = true
				return false
			}
			return true
		})
		if innerErr != nil {
			return false, innerErr
		}
		if err != nil {
			return false, err
		}
		return !stop, nil
	})
}

// Collect runs an access method and gathers all result rows, a
// convenience for tests and examples.
func Collect(run func(fn RowFunc) error) ([]value.Row, error) {
	var out []value.Row
	err := run(func(_ heap.RID, row value.Row) bool {
		out = append(out, row.Clone())
		return true
	})
	return out, err
}

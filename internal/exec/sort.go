package exec

import (
	"container/heap"
	"sort"

	"repro/internal/value"
)

// OrderKey is one ORDER BY key: a column position (into whatever row
// shape the caller sorts — table rows for plain selects, output rows
// for aggregates) and a direction.
type OrderKey struct {
	Col  int
	Desc bool
}

// CompareRows orders a and b by the keys: the first key decides unless
// equal, then the next, and so on; 0 means equal on every key.
func CompareRows(keys []OrderKey, a, b value.Row) int {
	for _, k := range keys {
		c := a[k.Col].Compare(b[k.Col])
		if c == 0 {
			continue
		}
		if k.Desc {
			return -c
		}
		return c
	}
	return 0
}

// sortRow pairs a buffered row with its arrival sequence, the stable
// tie-break: rows equal on every key keep input (physical emission)
// order, which makes sorted output deterministic and identical between
// serial and parallel scans (both emit in physical order).
type sortRow struct {
	row value.Row
	seq int
}

// Sorter is the ORDER BY operator. With a positive limit it is a
// bounded top-K heap: only the current best K rows are retained (and
// cloned), so `ORDER BY ... LIMIT k` over a huge result buffers k rows,
// not all of them. Without a limit it is a spill-free in-memory sort:
// every row is buffered and sorted once in Rows.
//
// Add clones retained rows, so callers may feed it scratch rows that
// are only valid during the callback (the RowFunc contract).
type Sorter struct {
	keys  []OrderKey
	limit int
	rows  []sortRow
	next  int
}

// NewSorter builds a sorter for the keys; limit > 0 enables the
// bounded top-K heap, limit <= 0 sorts everything.
func NewSorter(keys []OrderKey, limit int) *Sorter {
	return &Sorter{keys: keys, limit: limit}
}

// worse reports whether a sorts after b (final order is ascending by
// keys then by arrival).
func (s *Sorter) worse(a, b sortRow) bool {
	c := CompareRows(s.keys, a.row, b.row)
	if c != 0 {
		return c > 0
	}
	return a.seq > b.seq
}

// Add offers one row. In top-K mode the row is dropped immediately —
// without cloning — when it sorts after the current K-th row.
func (s *Sorter) Add(row value.Row) {
	sr := sortRow{row: row, seq: s.next}
	s.next++
	if s.limit > 0 && len(s.rows) >= s.limit {
		// Full heap: the root is the worst retained row.
		if !s.worse(s.rows[0], sr) {
			return // incoming row is no better; stability keeps the earlier one
		}
		sr.row = row.Clone()
		s.rows[0] = sr
		heap.Fix((*sortHeap)(s), 0)
		return
	}
	sr.row = row.Clone()
	if s.limit > 0 {
		heap.Push((*sortHeap)(s), sr)
	} else {
		s.rows = append(s.rows, sr)
	}
}

// Rows finalizes: the retained rows sorted by the keys (ties in input
// order), truncated to the limit when one is set.
func (s *Sorter) Rows() []value.Row {
	sort.Slice(s.rows, func(i, j int) bool { return s.worse(s.rows[j], s.rows[i]) })
	out := make([]value.Row, len(s.rows))
	for i, sr := range s.rows {
		out[i] = sr.row
	}
	return out
}

// sortHeap adapts Sorter to container/heap as a max-heap on "worse":
// the root is the worst retained row, the one a better incoming row
// evicts.
type sortHeap Sorter

// Len implements heap.Interface.
func (h *sortHeap) Len() int { return len(h.rows) }

// Less implements heap.Interface: true when i is worse than j, making
// the root the worst retained row.
func (h *sortHeap) Less(i, j int) bool { return (*Sorter)(h).worse(h.rows[i], h.rows[j]) }

// Swap implements heap.Interface.
func (h *sortHeap) Swap(i, j int) { h.rows[i], h.rows[j] = h.rows[j], h.rows[i] }

// Push implements heap.Interface.
func (h *sortHeap) Push(x any) { h.rows = append(h.rows, x.(sortRow)) }

// Pop implements heap.Interface.
func (h *sortHeap) Pop() any {
	n := len(h.rows) - 1
	x := h.rows[n]
	h.rows = h.rows[:n]
	return x
}

package exec

import (
	"bytes"
	"encoding/binary"
	"math"
	"sort"

	"repro/internal/table"
	"repro/internal/value"
)

// TupleFilter is a Query compiled against a Schema: it evaluates the
// predicate conjunction directly on encoded heap tuples, so rows are
// only materialized for tuples that survive. Compilation happens once
// per query; evaluation allocates nothing.
//
// A compiled filter is exactly equivalent to DecodeRow + Query.Matches:
// it returns the same boolean for every tuple DecodeRow accepts and the
// same error for every tuple DecodeRow rejects (the structural check
// runs first, so predicate order never changes error behavior). The
// equivalence is pinned by the property and fuzz tests in filter_test.go.
type TupleFilter struct {
	sch   table.Schema
	preds []compiledPred
}

// compiledPred is one predicate with its comparison constants
// pre-extracted: int and float payloads are read once from the
// value.Value, string constants keep a byte-slice form so field
// comparisons run bytes.Compare against the raw tuple without building
// a string.
type compiledPred struct {
	op     Op
	col    int
	kind   value.Kind // column kind, not constant kind
	vals   []constVal
	lo, hi *constVal
	loExcl bool
	hiExcl bool
	cost   int
}

// constVal is a comparison constant in evaluation-ready form.
type constVal struct {
	v value.Value
	s []byte // string payload when v.K == value.String
}

func newConstVal(v value.Value) constVal {
	cv := constVal{v: v}
	if v.K == value.String {
		cv.s = []byte(v.S)
	}
	return cv
}

// CompileFilter compiles the query's conjunction against the schema.
// Predicates are reordered cheapest/most-selective first — constant
// field offsets before length-prefix walks, equality before ranges
// before IN lists — so the early exit rejects tuples on the cheapest
// test. Reordering is safe: predicates are pure and the structural
// tuple check runs before any of them.
func CompileFilter(sch table.Schema, q Query) *TupleFilter {
	sch = sch.Normalized() // one shared layout for every per-tuple access below
	f := &TupleFilter{sch: sch, preds: make([]compiledPred, 0, len(q.Preds))}
	for _, p := range q.Preds {
		cp := compiledPred{
			op:     p.Op,
			col:    p.Col,
			kind:   sch.Cols[p.Col].Kind,
			loExcl: p.LoExcl,
			hiExcl: p.HiExcl,
		}
		for _, v := range p.Vals {
			cp.vals = append(cp.vals, newConstVal(v))
		}
		if p.Lo != nil {
			cv := newConstVal(*p.Lo)
			cp.lo = &cv
		}
		if p.Hi != nil {
			cv := newConstVal(*p.Hi)
			cp.hi = &cv
		}
		cp.cost = predCost(sch, p)
		f.preds = append(f.preds, cp)
	}
	sort.SliceStable(f.preds, func(i, j int) bool { return f.preds[i].cost < f.preds[j].cost })
	return f
}

// predCost ranks predicate evaluation cost: a field at a constant offset
// is cheaper than one reached by a var-length walk, and within a column
// an equality check is assumed cheaper and more selective than an
// inequality, which beats a range, which beats an IN list.
func predCost(sch table.Schema, p Pred) int {
	c := 0
	if _, fixed := sch.FixedOffset(p.Col); !fixed {
		c += 8
	}
	switch p.Op {
	case OpEq:
	case OpNe:
		c++
	case OpRange:
		c += 2
	case OpIn:
		c += 3 + len(p.Vals)
	}
	return c
}

// Matches evaluates the conjunction on an encoded tuple. The structural
// check mirrors DecodeRow exactly; afterwards each predicate reads its
// field in place and compares without allocating.
func (f *TupleFilter) Matches(tuple []byte) (bool, error) {
	if err := f.sch.CheckTuple(tuple); err != nil {
		return false, err
	}
	return f.matchPreds(tuple)
}

// matchPreds evaluates the conjunction on a tuple that already passed
// the structural check — the per-disjunct step of an OrFilter, which
// checks structure once for the whole disjunction.
func (f *TupleFilter) matchPreds(tuple []byte) (bool, error) {
	for i := range f.preds {
		ok, err := f.matchPred(&f.preds[i], tuple)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// matchPred evaluates one compiled predicate on the tuple's raw field.
func (f *TupleFilter) matchPred(cp *compiledPred, tuple []byte) (bool, error) {
	b, err := f.sch.Field(tuple, cp.col)
	if err != nil {
		return false, err
	}
	var fi int64
	var ff float64
	switch cp.kind {
	case value.Int:
		fi = int64(binary.LittleEndian.Uint64(b))
	case value.Float:
		ff = math.Float64frombits(binary.LittleEndian.Uint64(b))
	}
	switch cp.op {
	case OpEq:
		return fieldCompare(cp.kind, fi, ff, b, &cp.vals[0]) == 0, nil
	case OpIn:
		for i := range cp.vals {
			if fieldCompare(cp.kind, fi, ff, b, &cp.vals[i]) == 0 {
				return true, nil
			}
		}
		return false, nil
	case OpNe:
		return fieldCompare(cp.kind, fi, ff, b, &cp.vals[0]) != 0, nil
	default:
		if cp.lo != nil {
			c := fieldCompare(cp.kind, fi, ff, b, cp.lo)
			if c < 0 || (c == 0 && cp.loExcl) {
				return false, nil
			}
		}
		if cp.hi != nil {
			c := fieldCompare(cp.kind, fi, ff, b, cp.hi)
			if c > 0 || (c == 0 && cp.hiExcl) {
				return false, nil
			}
		}
		return true, nil
	}
}

// fieldCompare orders a raw tuple field against a compiled constant with
// value.Compare's semantics: mismatched kinds order by kind tag, same
// kinds by payload (strings bytewise, which equals Go string order).
func fieldCompare(kind value.Kind, i int64, f float64, b []byte, c *constVal) int {
	if kind != c.v.K {
		if kind < c.v.K {
			return -1
		}
		return 1
	}
	switch kind {
	case value.Int:
		switch {
		case i < c.v.I:
			return -1
		case i > c.v.I:
			return 1
		}
		return 0
	case value.Float:
		switch {
		case f < c.v.F:
			return -1
		case f > c.v.F:
			return 1
		}
		return 0
	default:
		return bytes.Compare(b, c.s)
	}
}

package wal

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/sim"
)

func newLog() (*Log, *sim.Disk) {
	d := sim.NewDisk(sim.Config{PageSize: 128})
	return NewLog(d), d
}

func TestAppendReplayRoundTrip(t *testing.T) {
	l, _ := newLog()
	var want []Record
	for i := 0; i < 50; i++ {
		r := Record{
			Type:    RecInsert,
			Target:  fmt.Sprintf("table%d", i%3),
			Payload: bytes.Repeat([]byte{byte(i)}, i%40),
		}
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	l.Flush()
	var got []Record
	if err := l.Replay(func(r Record) bool {
		got = append(got, r)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || got[i].Target != want[i].Target ||
			!bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestRecordsSpanPages(t *testing.T) {
	l, d := newLog()
	// One record much larger than a 128-byte page.
	big := bytes.Repeat([]byte{7}, 500)
	if err := l.Append(Record{Type: RecCheckpoint, Target: "cm", Payload: big}); err != nil {
		t.Fatal(err)
	}
	l.Flush()
	if d.NumPages(l.file) < 4 {
		t.Errorf("pages = %d, record should span several", d.NumPages(l.file))
	}
	n := 0
	if err := l.Replay(func(r Record) bool {
		n++
		if !bytes.Equal(r.Payload, big) {
			t.Error("payload corrupted across pages")
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("replayed %d records", n)
	}
}

func TestFlushCostsSync(t *testing.T) {
	l, d := newLog()
	if err := l.Append(Record{Type: RecCommit, Target: "t"}); err != nil {
		t.Fatal(err)
	}
	before := d.Stats().Syncs
	l.Flush()
	if d.Stats().Syncs != before+1 {
		t.Error("flush should fsync")
	}
	if l.Flushes() != 1 {
		t.Errorf("flushes = %d", l.Flushes())
	}
}

func TestSequentialWritePattern(t *testing.T) {
	l, d := newLog()
	payload := bytes.Repeat([]byte{1}, 100)
	for i := 0; i < 20; i++ {
		if err := l.Append(Record{Type: RecInsert, Target: "t", Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	l.Flush()
	st := d.Stats()
	// Log writes must be overwhelmingly sequential.
	if st.SeqWrites < st.RandWrites {
		t.Errorf("log writes not sequential: seq=%d rand=%d", st.SeqWrites, st.RandWrites)
	}
}

func TestReplayEarlyStop(t *testing.T) {
	l, _ := newLog()
	for i := 0; i < 10; i++ {
		if err := l.Append(Record{Type: RecInsert, Target: "t"}); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	if err := l.Replay(func(Record) bool {
		n++
		return n < 3
	}); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("visited %d records after stop", n)
	}
}

func TestEmptyLogReplay(t *testing.T) {
	l, _ := newLog()
	if err := l.Replay(func(Record) bool {
		t.Error("unexpected record")
		return true
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendsCounter(t *testing.T) {
	l, _ := newLog()
	for i := 0; i < 5; i++ {
		if err := l.Append(Record{Type: RecDelete, Target: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	if l.Appends() != 5 {
		t.Errorf("appends = %d", l.Appends())
	}
	if l.Len() == 0 {
		t.Error("length should grow")
	}
}

func TestReplayFrom(t *testing.T) {
	l, _ := newLog()
	var lsns []int64
	for i := 0; i < 10; i++ {
		lsns = append(lsns, l.Len())
		if err := l.Append(Record{Type: RecInsert, Target: "t", Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	l.Flush()
	// Replay from the 6th record's boundary: exactly 5 records follow.
	var got []byte
	if err := l.ReplayFrom(lsns[5], func(r Record) bool {
		got = append(got, r.Payload[0])
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("replayed %d records from LSN, want 5", len(got))
	}
	for i, b := range got {
		if int(b) != i+5 {
			t.Fatalf("record %d payload = %d", i, b)
		}
	}
	// From the end: nothing.
	n := 0
	if err := l.ReplayFrom(l.Len(), func(Record) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("replay from end yielded %d records", n)
	}
	// Out of range LSNs fail.
	if err := l.ReplayFrom(-1, func(Record) bool { return true }); err == nil {
		t.Error("negative LSN accepted")
	}
	if err := l.ReplayFrom(l.Len()+1, func(Record) bool { return true }); err == nil {
		t.Error("past-end LSN accepted")
	}
}

// Package wal implements a write-ahead log on the simulated disk.
//
// The paper's prototype keeps correlation maps in main memory and makes
// them as recoverable as a secondary B+Tree by logging every maintenance
// operation and flushing the log during two-phase commit with PostgreSQL
// (Section 7.1). This log reproduces that cost structure: appends fill
// sequential pages, and Flush writes the partial tail page and pays one
// fsync barrier (a seek).
package wal

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// RecordType distinguishes logged operations.
type RecordType uint8

// Record types used by the engine.
const (
	RecInsert RecordType = iota + 1
	RecDelete
	RecCommit
	RecCheckpoint
)

// Record is one logged operation.
type Record struct {
	Type    RecordType
	Target  string // table or structure the record applies to
	Payload []byte
}

// Log is an append-only write-ahead log. Safe for concurrent use: one
// mutex serializes appends and flushes, since the log is shared by every
// table of a DB and writers on different tables may commit concurrently.
type Log struct {
	disk *sim.Disk
	file sim.FileID

	mu      sync.Mutex
	page    int64  // page currently being filled, -1 before first write
	buf     []byte // in-memory tail page image
	bufUsed int
	length  int64 // total logged bytes (LSN of the end of log)
	flushed int64 // bytes durably on disk
	appends uint64
	flushes uint64
	// owed accumulates deferred real-wait disk cost incurred under mu;
	// the public entry points pay it after unlocking so a flushing
	// writer does not convoy appenders and stat readers.
	owed time.Duration

	// flushHist, when set, records each Flush barrier's wall time —
	// the engine's commit-latency histogram. Stored atomically so a
	// late SetFlushHistogram does not race in-flight flushes.
	flushHist atomic.Pointer[metrics.Histogram]
}

// SetFlushHistogram wires a histogram that records each Flush's wall
// time (commit latency, since every Commit ends in a Flush). A nil
// histogram disables recording.
func (l *Log) SetFlushHistogram(h *metrics.Histogram) {
	l.flushHist.Store(h)
}

// takeOwed drains the deferred wait. Called with mu held.
func (l *Log) takeOwed() time.Duration {
	owed := l.owed
	l.owed = 0
	return owed
}

// NewLog creates an empty log in a fresh file.
func NewLog(disk *sim.Disk) *Log {
	return &Log{
		disk: disk,
		file: disk.CreateFile(),
		page: -1,
		buf:  make([]byte, disk.PageSize()),
	}
}

// Len returns the total number of bytes appended (the end-of-log LSN).
func (l *Log) Len() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.length
}

// Appends returns the number of records appended.
func (l *Log) Appends() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends
}

// Flushes returns the number of Flush barriers.
func (l *Log) Flushes() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushes
}

// Append adds a record to the log buffer. The record becomes durable at
// the next Flush. Record framing: type byte, target length (u16), target,
// payload length (u32), payload.
func (l *Log) Append(r Record) error {
	if len(r.Target) > 0xFFFF {
		return fmt.Errorf("wal: target name too long")
	}
	l.mu.Lock()
	hdr := make([]byte, 0, 7+len(r.Target))
	hdr = append(hdr, byte(r.Type))
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(r.Target)))
	hdr = append(hdr, r.Target...)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(r.Payload)))
	l.writeBytes(hdr)
	l.writeBytes(r.Payload)
	l.appends++
	owed := l.takeOwed()
	l.mu.Unlock()
	l.disk.PayWait(owed)
	return nil
}

// writeBytes streams bytes across page boundaries, writing out full pages.
func (l *Log) writeBytes(b []byte) {
	for len(b) > 0 {
		if l.page < 0 || l.bufUsed == len(l.buf) {
			l.rotatePage()
		}
		n := copy(l.buf[l.bufUsed:], b)
		l.bufUsed += n
		l.length += int64(n)
		b = b[n:]
		if l.bufUsed == len(l.buf) {
			// Full page: write it immediately (sequential I/O).
			l.writeTail()
		}
	}
}

func (l *Log) rotatePage() {
	l.page = l.disk.AllocPage(l.file)
	l.bufUsed = 0
}

func (l *Log) writeTail() {
	// Errors cannot occur for a page we just allocated; sim.Disk only
	// fails on out-of-range access. The real wait is deferred into
	// l.owed and paid outside the log mutex.
	cost, err := l.disk.WritePageDeferWait(l.file, l.page, l.buf)
	l.owed += cost
	if err != nil {
		panic(fmt.Sprintf("wal: tail write: %v", err))
	}
}

// Flush makes every appended record durable: it writes the partial tail
// page and issues an fsync barrier.
func (l *Log) Flush() {
	var start time.Time
	if l.flushHist.Load() != nil {
		start = time.Now()
	}
	l.mu.Lock()
	if l.length > l.flushed {
		if l.page >= 0 && l.bufUsed > 0 && l.bufUsed < len(l.buf) {
			l.writeTail()
		}
		l.flushed = l.length
	}
	l.owed += l.disk.SyncDeferWait()
	l.flushes++
	owed := l.takeOwed()
	l.mu.Unlock()
	l.disk.PayWait(owed)
	if h := l.flushHist.Load(); h != nil {
		h.ObserveSince(start)
	}
}

// Replay decodes every record in order and passes it to fn, reading the
// log pages back from disk (charging recovery I/O). It stops early if fn
// returns false.
func (l *Log) Replay(fn func(Record) bool) error {
	return l.ReplayFrom(0, fn)
}

// ReplayFrom replays records starting at the given LSN, which must be a
// record boundary previously obtained from Len() (for example at a
// checkpoint). Only the pages holding the suffix are read back.
func (l *Log) ReplayFrom(lsn int64, fn func(Record) bool) error {
	l.mu.Lock()
	payOwed := func() { l.disk.PayWait(l.takeOwed()) }
	defer l.mu.Unlock()
	defer payOwed() // runs before Unlock: recovery is exclusive anyway
	// Ensure the tail is readable from disk.
	if l.page >= 0 && l.bufUsed > 0 {
		l.writeTail()
		l.flushed = l.length
	}
	if lsn < 0 || lsn > l.length {
		return fmt.Errorf("wal: LSN %d out of range [0, %d]", lsn, l.length)
	}
	pageSize := int64(len(l.buf))
	firstPage := lsn / pageSize
	stream := make([]byte, 0, l.length-firstPage*pageSize)
	pageBuf := make([]byte, len(l.buf))
	numPages := l.disk.NumPages(l.file)
	for p := firstPage; p < numPages; p++ {
		cost, err := l.disk.ReadPageDeferWait(l.file, p, pageBuf)
		l.owed += cost
		if err != nil {
			return err
		}
		stream = append(stream, pageBuf...)
	}
	if max := l.length - firstPage*pageSize; int64(len(stream)) > max {
		stream = stream[:max]
	}
	for off := lsn - firstPage*pageSize; off < int64(len(stream)); {
		rest := stream[off:]
		if len(rest) < 7 {
			return fmt.Errorf("wal: truncated record header at %d", off)
		}
		typ := RecordType(rest[0])
		tlen := int(binary.LittleEndian.Uint16(rest[1:]))
		if len(rest) < 3+tlen+4 {
			return fmt.Errorf("wal: truncated record target at %d", off)
		}
		target := string(rest[3 : 3+tlen])
		plen := int(binary.LittleEndian.Uint32(rest[3+tlen:]))
		start := 3 + tlen + 4
		if len(rest) < start+plen {
			return fmt.Errorf("wal: truncated record payload at %d", off)
		}
		payload := append([]byte(nil), rest[start:start+plen]...)
		off += int64(start + plen)
		if !fn(Record{Type: typ, Target: target, Payload: payload}) {
			return nil
		}
	}
	return nil
}

// Package wal implements a write-ahead log on the simulated disk.
//
// The paper's prototype keeps correlation maps in main memory and makes
// them as recoverable as a secondary B+Tree by logging every maintenance
// operation and flushing the log during two-phase commit with PostgreSQL
// (Section 7.1). This log reproduces that cost structure: appends fill
// sequential pages, and Flush writes the partial tail page and pays one
// fsync barrier (a seek).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// errBroken reports a log whose in-memory tail could not be
// reconstructed after a failed append (the rollback read-back itself
// faulted). Every later Append, Flush or Replay fails fast with it
// rather than writing a tail image that no longer matches the log.
var errBroken = errors.New("wal: log broken by an unrecoverable tail fault")

// RecordType distinguishes logged operations.
type RecordType uint8

// Record types used by the engine.
const (
	RecInsert RecordType = iota + 1
	RecDelete
	RecCommit
	RecCheckpoint
)

// Record is one logged operation.
type Record struct {
	Type    RecordType
	Target  string // table or structure the record applies to
	Payload []byte
}

// Log is an append-only write-ahead log. Safe for concurrent use: one
// mutex serializes appends and flushes, since the log is shared by every
// table of a DB and writers on different tables may commit concurrently.
type Log struct {
	disk *sim.Disk
	file sim.FileID

	mu      sync.Mutex
	page    int64  // page currently being filled, -1 before first write
	buf     []byte // in-memory tail page image
	bufUsed int
	length  int64 // total logged bytes (LSN of the end of log)
	flushed int64 // bytes durably on disk
	appends uint64
	flushes uint64
	// broken is set when a failed append could not be rolled back (see
	// errBroken); it poisons every later operation.
	broken bool
	// owed accumulates deferred real-wait disk cost incurred under mu;
	// the public entry points pay it after unlocking so a flushing
	// writer does not convoy appenders and stat readers.
	owed time.Duration

	// flushHist, when set, records each Flush barrier's wall time —
	// the engine's commit-latency histogram. Stored atomically so a
	// late SetFlushHistogram does not race in-flight flushes.
	flushHist atomic.Pointer[metrics.Histogram]
}

// SetFlushHistogram wires a histogram that records each Flush's wall
// time (commit latency, since every Commit ends in a Flush). A nil
// histogram disables recording.
func (l *Log) SetFlushHistogram(h *metrics.Histogram) {
	l.flushHist.Store(h)
}

// takeOwed drains the deferred wait. Called with mu held.
func (l *Log) takeOwed() time.Duration {
	owed := l.owed
	l.owed = 0
	return owed
}

// NewLog creates an empty log in a fresh file.
func NewLog(disk *sim.Disk) *Log {
	return &Log{
		disk: disk,
		file: disk.CreateFile(),
		page: -1,
		buf:  make([]byte, disk.PageSize()),
	}
}

// Len returns the total number of bytes appended (the end-of-log LSN).
func (l *Log) Len() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.length
}

// Appends returns the number of records appended.
func (l *Log) Appends() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends
}

// Flushes returns the number of Flush barriers.
func (l *Log) Flushes() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushes
}

// Append adds a record to the log buffer. The record becomes durable at
// the next Flush. Record framing: type byte, target length (u16), target,
// payload length (u32), payload.
//
// Append is atomic against disk faults: a failed page write rolls the
// log back to its pre-append state (length, page and tail image), so a
// later Append or Replay sees no torn record. Only when the rollback
// itself cannot reconstruct the tail does the log mark itself broken.
func (l *Log) Append(r Record) error {
	if len(r.Target) > 0xFFFF {
		return fmt.Errorf("wal: target name too long")
	}
	// Build the whole frame up front so one writeBytes call covers it
	// and the rollback mark brackets the entire record.
	frame := make([]byte, 0, 7+len(r.Target)+len(r.Payload))
	frame = append(frame, byte(r.Type))
	frame = binary.LittleEndian.AppendUint16(frame, uint16(len(r.Target)))
	frame = append(frame, r.Target...)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(r.Payload)))
	frame = append(frame, r.Payload...)
	l.mu.Lock()
	var err error
	if l.broken {
		err = errBroken
	} else {
		mark := walMark{length: l.length, page: l.page, bufUsed: l.bufUsed}
		if err = l.writeBytes(frame); err != nil {
			l.rollback(mark)
			err = fmt.Errorf("wal: append: %w", err)
		} else {
			l.appends++
		}
	}
	owed := l.takeOwed()
	l.mu.Unlock()
	l.disk.PayWait(owed)
	return err
}

// walMark snapshots the append cursor for rollback.
type walMark struct {
	length  int64
	page    int64
	bufUsed int
}

// rollback restores the pre-append state after a failed writeBytes so
// the log stays replayable. When the failed append had already rotated
// past the marked page, that page was necessarily written out in full
// (rotation only follows a successful tail write), so its committed
// prefix reads back from disk. A failed read-back leaves the tail image
// unreconstructable: the log marks itself broken.
func (l *Log) rollback(m walMark) {
	l.length = m.length
	if l.page == m.page {
		// The failed write never left the marked page; bytes past
		// m.bufUsed are the torn record, masked by restoring the cursor.
		l.bufUsed = m.bufUsed
		return
	}
	if m.page >= 0 && m.bufUsed > 0 {
		cost, err := l.disk.ReadPageDeferWait(l.file, m.page, l.buf)
		l.owed += cost
		if err != nil {
			l.broken = true
			return
		}
	}
	l.page, l.bufUsed = m.page, m.bufUsed
}

// writeBytes streams bytes across page boundaries, writing out full
// pages as they fill. Outside a call the cursor invariant holds:
// l.bufUsed < len(l.buf) (a full page is written and rotated past
// before returning), so Append's rollback only ever restores a
// partially filled tail.
func (l *Log) writeBytes(b []byte) error {
	for len(b) > 0 {
		if l.page < 0 {
			l.rotatePage()
		}
		n := copy(l.buf[l.bufUsed:], b)
		l.bufUsed += n
		l.length += int64(n)
		b = b[n:]
		if l.bufUsed == len(l.buf) {
			// Full page: write it immediately (sequential I/O) and
			// advance to the next page.
			if err := l.writeTail(); err != nil {
				return err
			}
			l.rotatePage()
		}
	}
	return nil
}

// rotatePage advances the cursor to the next page, reusing a page a
// rolled-back append already allocated before extending the file —
// allocation holes would break Replay's contiguous page arithmetic.
func (l *Log) rotatePage() {
	next := l.page + 1
	if next >= l.disk.NumPages(l.file) {
		next = l.disk.AllocPage(l.file)
	}
	l.page = next
	l.bufUsed = 0
}

// writeTail writes the in-memory tail image to its page. The real wait
// is deferred into l.owed and paid outside the log mutex.
func (l *Log) writeTail() error {
	cost, err := l.disk.WritePageDeferWait(l.file, l.page, l.buf)
	l.owed += cost
	if err != nil {
		return fmt.Errorf("tail write: %w", err)
	}
	return nil
}

// Flush makes every appended record durable: it writes the partial tail
// page and issues an fsync barrier. On error nothing is marked durable;
// the tail stays buffered and a later Flush retries it.
func (l *Log) Flush() error {
	var start time.Time
	if l.flushHist.Load() != nil {
		start = time.Now()
	}
	l.mu.Lock()
	var err error
	switch {
	case l.broken:
		err = errBroken
	case l.length > l.flushed:
		if l.page >= 0 && l.bufUsed > 0 {
			err = l.writeTail()
		}
		if err == nil {
			l.flushed = l.length
		}
	}
	if err == nil {
		l.owed += l.disk.SyncDeferWait()
		l.flushes++
	}
	owed := l.takeOwed()
	l.mu.Unlock()
	l.disk.PayWait(owed)
	if h := l.flushHist.Load(); h != nil && err == nil {
		h.ObserveSince(start)
	}
	if err != nil && !errors.Is(err, errBroken) {
		err = fmt.Errorf("wal: flush: %w", err)
	}
	return err
}

// Replay decodes every record in order and passes it to fn, reading the
// log pages back from disk (charging recovery I/O). It stops early if fn
// returns false.
func (l *Log) Replay(fn func(Record) bool) error {
	return l.ReplayFrom(0, fn)
}

// ReplayFrom replays records starting at the given LSN, which must be a
// record boundary previously obtained from Len() (for example at a
// checkpoint). Only the pages holding the suffix are read back.
func (l *Log) ReplayFrom(lsn int64, fn func(Record) bool) error {
	l.mu.Lock()
	payOwed := func() { l.disk.PayWait(l.takeOwed()) }
	defer l.mu.Unlock()
	defer payOwed() // runs before Unlock: recovery is exclusive anyway
	if l.broken {
		return errBroken
	}
	// Ensure the tail is readable from disk.
	if l.page >= 0 && l.bufUsed > 0 {
		if err := l.writeTail(); err != nil {
			return fmt.Errorf("wal: replay: %w", err)
		}
		l.flushed = l.length
	}
	if lsn < 0 || lsn > l.length {
		return fmt.Errorf("wal: LSN %d out of range [0, %d]", lsn, l.length)
	}
	pageSize := int64(len(l.buf))
	firstPage := lsn / pageSize
	stream := make([]byte, 0, l.length-firstPage*pageSize)
	pageBuf := make([]byte, len(l.buf))
	numPages := l.disk.NumPages(l.file)
	for p := firstPage; p < numPages; p++ {
		cost, err := l.disk.ReadPageDeferWait(l.file, p, pageBuf)
		l.owed += cost
		if err != nil {
			return err
		}
		stream = append(stream, pageBuf...)
	}
	if max := l.length - firstPage*pageSize; int64(len(stream)) > max {
		stream = stream[:max]
	}
	for off := lsn - firstPage*pageSize; off < int64(len(stream)); {
		rest := stream[off:]
		if len(rest) < 7 {
			return fmt.Errorf("wal: truncated record header at %d", off)
		}
		typ := RecordType(rest[0])
		tlen := int(binary.LittleEndian.Uint16(rest[1:]))
		if len(rest) < 3+tlen+4 {
			return fmt.Errorf("wal: truncated record target at %d", off)
		}
		target := string(rest[3 : 3+tlen])
		plen := int(binary.LittleEndian.Uint32(rest[3+tlen:]))
		start := 3 + tlen + 4
		if len(rest) < start+plen {
			return fmt.Errorf("wal: truncated record payload at %d", off)
		}
		payload := append([]byte(nil), rest[start:start+plen]...)
		off += int64(start + plen)
		if !fn(Record{Type: typ, Target: target, Payload: payload}) {
			return nil
		}
	}
	return nil
}

// Package heap implements slotted-page heap files: the tuple storage that
// every table, index scan and correlation-map scan ultimately reads.
//
// A heap page holds a small header, a slot directory that grows forward and
// tuple bytes that grow backward from the end of the page. Tuples are
// opaque byte strings; the table layer encodes and decodes rows.
//
// Every tuple additionally carries a pair of MVCC timestamps (begin, end)
// in an in-memory side array. A tuple is visible to a snapshot when it was
// created at or before the snapshot and not ended by it; snapshot 0 is the
// "latest" sentinel that sees exactly the tuples whose end timestamp is
// unset. Bulk-loaded and legacy appends begin at 0 ("since forever"), so
// single-threaded callers that never use snapshots observe the historical
// behavior: a tuple is live until ended or physically deleted.
package heap

import (
	"encoding/binary"
	"fmt"

	"repro/internal/buffer"
	"repro/internal/sim"
)

// Page header layout.
const (
	offNumSlots  = 0 // uint16
	offCellStart = 2 // uint16: lowest byte offset used by tuple data
	headerSize   = 4
	slotSize     = 4 // offset uint16, length uint16
)

// RID identifies a tuple: heap page number and slot within the page.
type RID struct {
	Page int64
	Slot uint16
}

// Less orders RIDs by physical position, which a sorted index scan uses to
// turn scattered lookups into one forward sweep.
func (r RID) Less(o RID) bool {
	if r.Page != o.Page {
		return r.Page < o.Page
	}
	return r.Slot < o.Slot
}

// String renders the RID as page:slot.
func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// tupleVersion holds the MVCC begin/end timestamps of one slot. A zero
// begin means "visible since forever" (bulk loads, legacy appends); a zero
// end means "not ended".
type tupleVersion struct {
	begin, end uint64
}

// visibleAt reports whether a version is visible to a snapshot. Snapshot 0
// is the latest-state sentinel: it sees exactly the un-ended tuples.
func visibleAt(v tupleVersion, snap uint64) bool {
	if snap == 0 {
		return v.end == 0
	}
	return v.begin <= snap && (v.end == 0 || v.end > snap)
}

// File is a heap file of slotted pages.
//
// Concurrency matches the owning table's latch discipline: the version side
// arrays are plain slices, so mutators (Append, SetEnd, Delete) must hold
// the table latch exclusively while readers hold it shared.
type File struct {
	pool *buffer.Pool
	file sim.FileID

	numPages int64
	tuples   int64

	// vers[page][slot] carries the tuple's MVCC timestamps. Grown in
	// lockstep with the slot directories.
	vers [][]tupleVersion
}

// NewFile creates an empty heap file on the pool's disk.
func NewFile(pool *buffer.Pool) *File {
	return &File{pool: pool, file: pool.Disk().CreateFile()}
}

// FileID returns the simulated-disk file backing the heap.
func (h *File) FileID() sim.FileID { return h.file }

// NumPages returns the number of allocated heap pages.
func (h *File) NumPages() int64 { return h.numPages }

// TupleCount returns the number of live tuples.
func (h *File) TupleCount() int64 { return h.tuples }

func pageNumSlots(d []byte) int {
	return int(binary.LittleEndian.Uint16(d[offNumSlots:]))
}

func pageCellStart(d []byte) int {
	return int(binary.LittleEndian.Uint16(d[offCellStart:]))
}

func setPageNumSlots(d []byte, n int) {
	binary.LittleEndian.PutUint16(d[offNumSlots:], uint16(n))
}

func setPageCellStart(d []byte, v int) {
	binary.LittleEndian.PutUint16(d[offCellStart:], uint16(v))
}

func slotAt(d []byte, i int) (off, length int) {
	base := headerSize + i*slotSize
	return int(binary.LittleEndian.Uint16(d[base:])), int(binary.LittleEndian.Uint16(d[base+2:]))
}

func setSlotAt(d []byte, i, off, length int) {
	base := headerSize + i*slotSize
	binary.LittleEndian.PutUint16(d[base:], uint16(off))
	binary.LittleEndian.PutUint16(d[base+2:], uint16(length))
}

// initPage prepares an empty slotted page.
func initPage(d []byte) {
	setPageNumSlots(d, 0)
	setPageCellStart(d, len(d))
}

// pageFree returns the free bytes between the slot directory and tuple data.
func pageFree(d []byte) int {
	return pageCellStart(d) - headerSize - pageNumSlots(d)*slotSize
}

// Append stores tuple at the end of the file and returns its RID. The
// tuple begins at timestamp 0, visible to every snapshot.
func (h *File) Append(tuple []byte) (RID, error) {
	return h.AppendAt(tuple, 0)
}

// AppendAt stores tuple at the end of the file with the given MVCC begin
// timestamp: the tuple is invisible to snapshots older than begin, which
// is how a writer statement keeps its new row versions hidden until it
// publishes.
func (h *File) AppendAt(tuple []byte, begin uint64) (RID, error) {
	need := len(tuple) + slotSize
	ps := h.pool.Disk().PageSize()
	if need > ps-headerSize {
		return RID{}, fmt.Errorf("heap: tuple of %d bytes exceeds page capacity", len(tuple))
	}
	if h.numPages > 0 {
		last := h.numPages - 1
		fr, err := h.pool.Get(h.file, last)
		if err != nil {
			return RID{}, err
		}
		if pageFree(fr.Data) >= need {
			rid := placeTuple(fr.Data, last, tuple)
			h.pool.Unpin(fr, true)
			h.vers[last] = append(h.vers[last], tupleVersion{begin: begin})
			h.tuples++
			return rid, nil
		}
		h.pool.Unpin(fr, false)
	}
	page, fr, err := h.pool.NewPage(h.file)
	if err != nil {
		return RID{}, err
	}
	initPage(fr.Data)
	rid := placeTuple(fr.Data, page, tuple)
	h.pool.Unpin(fr, true)
	h.vers = append(h.vers, []tupleVersion{{begin: begin}})
	h.numPages++
	h.tuples++
	return rid, nil
}

// SetEnd marks the tuple at rid logically deleted as of timestamp end: it
// stays readable by snapshots older than end (the tuple bytes are
// untouched) and disappears from newer ones. The live-tuple count drops by
// one. Space is not reclaimed.
func (h *File) SetEnd(rid RID, end uint64) error {
	v, err := h.version(rid)
	if err != nil {
		return err
	}
	if v.end != 0 {
		return fmt.Errorf("heap: RID %v already ended at %d", rid, v.end)
	}
	v.end = end
	h.tuples--
	return nil
}

// ClearEnd undoes a SetEnd (writer-statement abort), restoring the tuple
// to live.
func (h *File) ClearEnd(rid RID) error {
	v, err := h.version(rid)
	if err != nil {
		return err
	}
	if v.end == 0 {
		return fmt.Errorf("heap: RID %v is not ended", rid)
	}
	v.end = 0
	h.tuples++
	return nil
}

// version resolves the MVCC timestamps of a slot, checking bounds.
func (h *File) version(rid RID) (*tupleVersion, error) {
	if rid.Page < 0 || rid.Page >= h.numPages {
		return nil, fmt.Errorf("heap: RID %v out of range (pages=%d)", rid, h.numPages)
	}
	pv := h.vers[rid.Page]
	if int(rid.Slot) >= len(pv) {
		return nil, fmt.Errorf("heap: RID %v slot out of range", rid)
	}
	return &pv[rid.Slot], nil
}

// Visible reports whether the tuple at rid is visible to the snapshot
// (false for out-of-range RIDs).
func (h *File) Visible(rid RID, snap uint64) bool {
	v, err := h.version(rid)
	if err != nil {
		return false
	}
	return visibleAt(*v, snap)
}

// placeTuple writes the tuple into the page, assuming space was checked.
func placeTuple(d []byte, page int64, tuple []byte) RID {
	n := pageNumSlots(d)
	start := pageCellStart(d) - len(tuple)
	copy(d[start:], tuple)
	setSlotAt(d, n, start, len(tuple))
	setPageNumSlots(d, n+1)
	setPageCellStart(d, start)
	return RID{Page: page, Slot: uint16(n)}
}

// Get returns a copy of the tuple at rid as the latest state sees it.
// Deleted (physically or logically) tuples return nil data.
func (h *File) Get(rid RID) ([]byte, error) {
	if rid.Page < 0 || rid.Page >= h.numPages {
		return nil, fmt.Errorf("heap: RID %v out of range (pages=%d)", rid, h.numPages)
	}
	fr, err := h.pool.Get(h.file, rid.Page)
	if err != nil {
		return nil, err
	}
	defer h.pool.Unpin(fr, false)
	if int(rid.Slot) >= pageNumSlots(fr.Data) {
		return nil, fmt.Errorf("heap: RID %v slot out of range", rid)
	}
	off, length := slotAt(fr.Data, int(rid.Slot))
	if length == 0 || !visibleAt(h.vers[rid.Page][rid.Slot], 0) {
		return nil, nil // deleted
	}
	out := make([]byte, length)
	copy(out, fr.Data[off:off+length])
	return out, nil
}

// View calls fn with the latest-visible tuple bytes at rid; the slice
// aliases the pinned frame and is only valid during the call. Deleted
// tuples skip fn. Unlike Get, View copies nothing — the executor's probe
// path uses it so tuples rejected by the compiled filter cost no
// allocation.
func (h *File) View(rid RID, fn func(tuple []byte) error) error {
	return h.ViewAt(rid, 0, fn)
}

// ViewAt is View as of a snapshot: fn runs only when the tuple at rid is
// visible to snap.
func (h *File) ViewAt(rid RID, snap uint64, fn func(tuple []byte) error) error {
	if rid.Page < 0 || rid.Page >= h.numPages {
		return fmt.Errorf("heap: RID %v out of range (pages=%d)", rid, h.numPages)
	}
	fr, err := h.pool.Get(h.file, rid.Page)
	if err != nil {
		return err
	}
	defer h.pool.Unpin(fr, false)
	if int(rid.Slot) >= pageNumSlots(fr.Data) {
		return fmt.Errorf("heap: RID %v slot out of range", rid)
	}
	off, length := slotAt(fr.Data, int(rid.Slot))
	if length == 0 || !visibleAt(h.vers[rid.Page][rid.Slot], snap) {
		return nil // deleted or invisible to this snapshot
	}
	return fn(fr.Data[off : off+length])
}

// Delete physically erases the tuple at rid: the slot bytes are zeroed,
// so no snapshot can read it afterward. Writer statements use it only to
// discard their own never-published appends (abort); published history
// instead ends logically with SetEnd so older snapshots keep reading the
// bytes. Space is not reclaimed; the engine's workloads (like the
// paper's) are append-and-delete light.
func (h *File) Delete(rid RID) error {
	if rid.Page < 0 || rid.Page >= h.numPages {
		return fmt.Errorf("heap: RID %v out of range", rid)
	}
	fr, err := h.pool.Get(h.file, rid.Page)
	if err != nil {
		return err
	}
	defer h.pool.Unpin(fr, true)
	if int(rid.Slot) >= pageNumSlots(fr.Data) {
		return fmt.Errorf("heap: RID %v slot out of range", rid)
	}
	off, length := slotAt(fr.Data, int(rid.Slot))
	if length == 0 {
		return nil // already deleted
	}
	setSlotAt(fr.Data, int(rid.Slot), off, 0)
	if h.vers[rid.Page][rid.Slot].end == 0 {
		h.tuples-- // erasing a live tuple; ended ones were already counted out
	}
	h.vers[rid.Page][rid.Slot].end = ^uint64(0)
	return nil
}

// Scan visits every latest-visible tuple in physical order. The
// callback's tuple slice is only valid during the call. Returning false
// stops the scan.
func (h *File) Scan(fn func(rid RID, tuple []byte) bool) error {
	return h.ScanPagesAt(0, h.numPages-1, 0, fn)
}

// ScanPages visits latest-visible tuples on pages [from, to] in physical
// order.
func (h *File) ScanPages(from, to int64, fn func(rid RID, tuple []byte) bool) error {
	return h.ScanPagesAt(from, to, 0, fn)
}

// ScanPagesAt visits the tuples on pages [from, to] visible to the given
// snapshot, in physical order. Snapshot 0 means latest.
func (h *File) ScanPagesAt(from, to int64, snap uint64, fn func(rid RID, tuple []byte) bool) error {
	if from < 0 {
		from = 0
	}
	if to >= h.numPages {
		to = h.numPages - 1
	}
	for p := from; p <= to; p++ {
		fr, err := h.pool.Get(h.file, p)
		if err != nil {
			return err
		}
		n := pageNumSlots(fr.Data)
		pv := h.vers[p]
		for s := 0; s < n; s++ {
			off, length := slotAt(fr.Data, s)
			if length == 0 || !visibleAt(pv[s], snap) {
				continue
			}
			if !fn(RID{Page: p, Slot: uint16(s)}, fr.Data[off:off+length]) {
				h.pool.Unpin(fr, false)
				return nil
			}
		}
		h.pool.Unpin(fr, false)
	}
	return nil
}

// TuplesOnPage returns the number of live tuples on a page, used by the
// statistics collector for tups_per_page.
func (h *File) TuplesOnPage(page int64) (int, error) {
	fr, err := h.pool.Get(h.file, page)
	if err != nil {
		return 0, err
	}
	defer h.pool.Unpin(fr, false)
	n := pageNumSlots(fr.Data)
	pv := h.vers[page]
	live := 0
	for s := 0; s < n; s++ {
		if _, length := slotAt(fr.Data, s); length > 0 && pv[s].end == 0 {
			live++
		}
	}
	return live, nil
}

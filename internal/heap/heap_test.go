package heap

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/buffer"
	"repro/internal/sim"
)

func newHeap(t *testing.T, pageSize, frames int) *File {
	t.Helper()
	d := sim.NewDisk(sim.Config{PageSize: pageSize})
	return NewFile(buffer.NewPool(d, frames))
}

func TestAppendGetRoundTrip(t *testing.T) {
	h := newHeap(t, 256, 8)
	var rids []RID
	for i := 0; i < 50; i++ {
		rid, err := h.Append([]byte(fmt.Sprintf("tuple-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if h.TupleCount() != 50 {
		t.Errorf("tuple count = %d", h.TupleCount())
	}
	for i, rid := range rids {
		got, err := h.Get(rid)
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("tuple-%03d", i)
		if string(got) != want {
			t.Errorf("Get(%v) = %q, want %q", rid, got, want)
		}
	}
}

func TestTuplesSpanMultiplePages(t *testing.T) {
	h := newHeap(t, 128, 8)
	for i := 0; i < 40; i++ {
		if _, err := h.Append(make([]byte, 40)); err != nil {
			t.Fatal(err)
		}
	}
	if h.NumPages() < 2 {
		t.Errorf("expected multiple pages, got %d", h.NumPages())
	}
}

func TestOversizedTupleRejected(t *testing.T) {
	h := newHeap(t, 128, 4)
	if _, err := h.Append(make([]byte, 130)); err == nil {
		t.Error("oversized tuple accepted")
	}
}

func TestScanOrderAndCompleteness(t *testing.T) {
	h := newHeap(t, 256, 8)
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := h.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var seen []byte
	var last RID
	first := true
	err := h.Scan(func(rid RID, tuple []byte) bool {
		if !first && !last.Less(rid) {
			t.Errorf("scan out of order: %v then %v", last, rid)
		}
		last, first = rid, false
		seen = append(seen, tuple[0])
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("scan saw %d tuples", len(seen))
	}
	for i, b := range seen {
		if int(b) != i {
			t.Fatalf("tuple %d = %d", i, b)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	h := newHeap(t, 256, 8)
	for i := 0; i < 20; i++ {
		if _, err := h.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	if err := h.Scan(func(RID, []byte) bool {
		count++
		return count < 5
	}); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("scan visited %d tuples after stop", count)
	}
}

func TestDelete(t *testing.T) {
	h := newHeap(t, 256, 8)
	rid1, err := h.Append([]byte("one"))
	if err != nil {
		t.Fatal(err)
	}
	rid2, err := h.Append([]byte("two"))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Delete(rid1); err != nil {
		t.Fatal(err)
	}
	if got, err := h.Get(rid1); err != nil || got != nil {
		t.Errorf("deleted tuple Get = %q, %v", got, err)
	}
	if got, _ := h.Get(rid2); string(got) != "two" {
		t.Error("delete damaged neighbour")
	}
	if h.TupleCount() != 1 {
		t.Errorf("tuple count after delete = %d", h.TupleCount())
	}
	// Idempotent.
	if err := h.Delete(rid1); err != nil {
		t.Fatal(err)
	}
	if h.TupleCount() != 1 {
		t.Error("double delete decremented count twice")
	}
	// Scan skips deleted tuples.
	n := 0
	if err := h.Scan(func(RID, []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("scan visited %d tuples", n)
	}
}

func TestGetErrors(t *testing.T) {
	h := newHeap(t, 256, 8)
	if _, err := h.Get(RID{Page: 0, Slot: 0}); err == nil {
		t.Error("Get on empty heap should fail")
	}
	if _, err := h.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(RID{Page: 0, Slot: 9}); err == nil {
		t.Error("Get with bad slot should fail")
	}
	if err := h.Delete(RID{Page: 7}); err == nil {
		t.Error("Delete with bad page should fail")
	}
}

func TestScanPagesRange(t *testing.T) {
	h := newHeap(t, 128, 8)
	for i := 0; i < 60; i++ {
		if _, err := h.Append(make([]byte, 30)); err != nil {
			t.Fatal(err)
		}
	}
	if h.NumPages() < 3 {
		t.Skip("need at least 3 pages")
	}
	var pages []int64
	if err := h.ScanPages(1, 1, func(rid RID, _ []byte) bool {
		pages = append(pages, rid.Page)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(pages) == 0 {
		t.Fatal("no tuples on page 1")
	}
	for _, p := range pages {
		if p != 1 {
			t.Errorf("ScanPages(1,1) visited page %d", p)
		}
	}
	// Out-of-range bounds clamp instead of failing.
	n := 0
	if err := h.ScanPages(-5, 999, func(RID, []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 60 {
		t.Errorf("clamped scan saw %d", n)
	}
}

func TestTuplesOnPage(t *testing.T) {
	h := newHeap(t, 256, 8)
	var rids []RID
	for i := 0; i < 10; i++ {
		rid, err := h.Append([]byte("abcdef"))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	n, err := h.TuplesOnPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("TuplesOnPage = %d", n)
	}
	if err := h.Delete(rids[3]); err != nil {
		t.Fatal(err)
	}
	if n, _ := h.TuplesOnPage(0); n != 9 {
		t.Errorf("TuplesOnPage after delete = %d", n)
	}
}

func TestRIDLess(t *testing.T) {
	cases := []struct {
		a, b RID
		want bool
	}{
		{RID{1, 0}, RID{2, 0}, true},
		{RID{2, 0}, RID{1, 5}, false},
		{RID{1, 1}, RID{1, 2}, true},
		{RID{1, 2}, RID{1, 2}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v", c.a, c.b, got)
		}
	}
}

func TestAppendGetPropertyRandomSizes(t *testing.T) {
	h := newHeap(t, 512, 16)
	type stored struct {
		rid  RID
		data []byte
	}
	var all []stored
	f := func(raw []byte) bool {
		if len(raw) > 100 {
			raw = raw[:100]
		}
		rid, err := h.Append(raw)
		if err != nil {
			return false
		}
		all = append(all, stored{rid, append([]byte(nil), raw...)})
		got, err := h.Get(rid)
		if err != nil {
			return false
		}
		return string(got) == string(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// All earlier tuples still intact.
	for _, s := range all {
		got, err := h.Get(s.rid)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(s.data) {
			t.Fatalf("tuple at %v corrupted", s.rid)
		}
	}
}

func TestView(t *testing.T) {
	disk := sim.NewDisk(sim.Config{})
	pool := buffer.NewPool(disk, 16)
	h := NewFile(pool)
	a, err := h.Append([]byte("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Append([]byte("beta"))
	if err != nil {
		t.Fatal(err)
	}
	var got string
	if err := h.View(a, func(tuple []byte) error {
		got = string(tuple)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != "alpha" {
		t.Errorf("View = %q, want alpha", got)
	}
	if err := h.Delete(b); err != nil {
		t.Fatal(err)
	}
	called := false
	if err := h.View(b, func([]byte) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("View invoked fn for a deleted tuple")
	}
	if err := h.View(RID{Page: 99, Slot: 0}, func([]byte) error { return nil }); err == nil {
		t.Error("View accepted an out-of-range RID")
	}
	boom := fmt.Errorf("boom")
	if err := h.View(a, func([]byte) error { return boom }); err != boom {
		t.Errorf("View swallowed fn's error: %v", err)
	}
}

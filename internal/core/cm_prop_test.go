package core

import (
	"math/rand"
	"testing"

	"repro/internal/value"
)

// TestCMInsertDeleteRetraction is the Algorithm 1 invariant as a
// property test: for random add sequences (with heavy key and bucket
// collisions), removing every addition — in random order — retracts all
// co-occurrence state: no keys, no pairs, zero size.
func TestCMInsertDeleteRetraction(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cm := New(Spec{
			Name:      "p",
			UCols:     []int{0, 1},
			Bucketers: []Bucketer{IntWidth{Width: 4}, nil}, // one bucketed, one identity column
		})
		type op struct {
			row value.Row
			cb  int32
		}
		n := 200 + rng.Intn(800)
		ops := make([]op, n)
		for i := range ops {
			ops[i] = op{
				row: value.Row{
					value.NewInt(int64(rng.Intn(40))),
					value.NewInt(int64(rng.Intn(6))),
				},
				cb: int32(rng.Intn(12)),
			}
			cm.AddRow(ops[i].row, ops[i].cb)
		}
		if cm.Keys() == 0 || cm.Pairs() == 0 || cm.SizeBytes() <= 0 {
			t.Fatalf("seed %d: degenerate fixture: keys=%d pairs=%d size=%d",
				seed, cm.Keys(), cm.Pairs(), cm.SizeBytes())
		}
		rng.Shuffle(n, func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
		for i, o := range ops {
			if err := cm.RemoveRow(o.row, o.cb); err != nil {
				t.Fatalf("seed %d: remove %d/%d: %v", seed, i, n, err)
			}
		}
		if cm.Keys() != 0 {
			t.Errorf("seed %d: %d keys remain after full retraction", seed, cm.Keys())
		}
		if cm.Pairs() != 0 {
			t.Errorf("seed %d: %d pairs remain after full retraction", seed, cm.Pairs())
		}
		if cm.SizeBytes() != 0 {
			t.Errorf("seed %d: size %d after full retraction, want 0", seed, cm.SizeBytes())
		}
	}
}

// TestCMPartialRetractionMatchesRebuild checks a stronger property:
// after removing a random subset of additions, the CM is identical
// (lookups and size) to one built from only the surviving rows.
func TestCMPartialRetractionMatchesRebuild(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		spec := Spec{Name: "p", UCols: []int{0}, Bucketers: []Bucketer{IntWidth{Width: 8}}}
		cm := New(spec)
		type op struct {
			row value.Row
			cb  int32
		}
		n := 500
		ops := make([]op, n)
		for i := range ops {
			ops[i] = op{
				row: value.Row{value.NewInt(int64(rng.Intn(100)))},
				cb:  int32(rng.Intn(20)),
			}
			cm.AddRow(ops[i].row, ops[i].cb)
		}
		removed := map[int]bool{}
		for i := 0; i < n/2; i++ {
			k := rng.Intn(n)
			if removed[k] {
				continue
			}
			removed[k] = true
			if err := cm.RemoveRow(ops[k].row, ops[k].cb); err != nil {
				t.Fatalf("seed %d: remove: %v", seed, err)
			}
		}
		rebuilt := New(spec)
		for i, o := range ops {
			if !removed[i] {
				rebuilt.AddRow(o.row, o.cb)
			}
		}
		if cm.Keys() != rebuilt.Keys() || cm.Pairs() != rebuilt.Pairs() || cm.SizeBytes() != rebuilt.SizeBytes() {
			t.Fatalf("seed %d: retracted CM (keys=%d pairs=%d size=%d) != rebuilt (keys=%d pairs=%d size=%d)",
				seed, cm.Keys(), cm.Pairs(), cm.SizeBytes(), rebuilt.Keys(), rebuilt.Pairs(), rebuilt.SizeBytes())
		}
		for u := int64(0); u < 100; u++ {
			got := cm.Lookup(value.NewInt(u))
			want := rebuilt.Lookup(value.NewInt(u))
			if len(got) != len(want) {
				t.Fatalf("seed %d: lookup(%d): %v vs rebuilt %v", seed, u, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d: lookup(%d): %v vs rebuilt %v", seed, u, got, want)
				}
			}
		}
	}
}

// TestCMRemoveUnrecordedPair checks retraction refuses pairs that were
// never added (the error path recovery relies on).
func TestCMRemoveUnrecordedPair(t *testing.T) {
	cm := New(Spec{Name: "p", UCols: []int{0}})
	cm.AddRow(value.Row{value.NewInt(1)}, 3)
	if err := cm.RemoveRow(value.Row{value.NewInt(1)}, 4); err == nil {
		t.Error("remove of unrecorded bucket succeeded")
	}
	if err := cm.RemoveRow(value.Row{value.NewInt(2)}, 3); err == nil {
		t.Error("remove of unrecorded key succeeded")
	}
}

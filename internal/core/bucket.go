// Bucketers implement the paper's truncation bucketing (Section 5.4):
// ranges of an attribute's domain collapse onto a single representative
// value, shrinking the correlation map at the cost of false positives.
package core

import (
	"fmt"
	"math"

	"repro/internal/value"
)

// Bucketer maps an attribute value to its bucket representative. The
// representative of a bucket is its lower bound, as in the paper ("we
// only need to store the lower bounds of the intervals").
type Bucketer interface {
	// Bucket returns the representative for v. Representatives must be
	// monotone: v1 <= v2 implies Bucket(v1) <= Bucket(v2).
	Bucket(v value.Value) value.Value
	// String describes the bucketing for advisor output, e.g. "2^13".
	String() string
}

// Identity performs no bucketing: every distinct value is its own bucket.
type Identity struct{}

// Bucket returns v unchanged.
func (Identity) Bucket(v value.Value) value.Value { return v }

// String labels the identity bucketing like the paper's Table 4 ("none").
func (Identity) String() string { return "none" }

// IntWidth buckets integers by truncation to multiples of Width.
type IntWidth struct {
	Width int64
}

// Bucket returns the largest multiple of Width that is <= v (floor
// division, correct for negative values too).
func (b IntWidth) Bucket(v value.Value) value.Value {
	if b.Width <= 1 {
		return v
	}
	q := v.I / b.Width
	if v.I%b.Width != 0 && v.I < 0 {
		q--
	}
	return value.NewInt(q * b.Width)
}

// String renders the bucket width.
func (b IntWidth) String() string { return fmt.Sprintf("w=%d", b.Width) }

// FloatWidth buckets floats by truncation to multiples of Width, like the
// paper's 1°C / 1% humidity example.
type FloatWidth struct {
	Width float64
}

// Bucket returns Width * floor(v/Width).
func (b FloatWidth) Bucket(v value.Value) value.Value {
	if b.Width <= 0 {
		return v
	}
	return value.NewFloat(math.Floor(v.F/b.Width) * b.Width)
}

// String renders the bucket width.
func (b FloatWidth) String() string { return fmt.Sprintf("w=%g", b.Width) }

// StringPrefix buckets strings by their first Len bytes, the analogue of
// width truncation for categorical domains.
type StringPrefix struct {
	Len int
}

// Bucket returns the first Len bytes of v.
func (b StringPrefix) Bucket(v value.Value) value.Value {
	if b.Len <= 0 || len(v.S) <= b.Len {
		return v
	}
	return value.NewString(v.S[:b.Len])
}

// String renders the prefix length.
func (b StringPrefix) String() string { return fmt.Sprintf("prefix=%d", b.Len) }

// BucketerForLevel builds the standard power-of-two bucketer the advisor
// enumerates: for numeric kinds, a width of 2^level units; level 0 means
// no bucketing. (Figure 7's x axis is exactly this level.)
func BucketerForLevel(kind value.Kind, level int) Bucketer {
	if level <= 0 {
		return Identity{}
	}
	switch kind {
	case value.Int:
		return IntWidth{Width: int64(1) << uint(level)}
	case value.Float:
		return FloatWidth{Width: math.Pow(2, float64(level))}
	default:
		// Strings have no numeric width; shorten the prefix as the level
		// grows (min prefix 1 byte).
		l := 16 - level
		if l < 1 {
			l = 1
		}
		return StringPrefix{Len: l}
	}
}

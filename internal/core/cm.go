// Package core implements the Correlation Map, the paper's primary
// contribution (Section 5).
//
// A CM on an attribute (or attribute list) Au of a table clustered on Ac
// is a mapping
//
//	bucket(u) -> { clustered bucket IDs co-occurring with u }
//
// with a co-occurrence count per pair so deletions can retract entries
// (Algorithm 1). Compared to a dense secondary B+Tree — one entry per
// tuple — the CM stores one entry per distinct (bucketed) value pair,
// which is what makes it orders of magnitude smaller when the attributes
// are correlated.
//
// The CM lives in main memory (the paper's prototype caches CMs in a Java
// front end); recoverability comes from the engine's write-ahead log, and
// Serialize/Deserialize provide checkpoints and the honest size number
// reported by the experiments.
package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/filter"
	"repro/internal/keyenc"
	"repro/internal/value"
)

// Spec describes a correlation map design: which columns form the CM
// attribute and how each is bucketed.
type Spec struct {
	Name      string
	UCols     []int      // column indexes of the CM attribute(s)
	Bucketers []Bucketer // one per column; nil entries mean Identity
	// StatCols lists the table columns whose per-entry aggregate
	// statistics (sum, min, max) the CM maintains alongside the pair
	// counts, enabling the cm-agg index-only aggregation path. nil means
	// no per-column statistics (counts are always kept); the table layer
	// defaults it to every column when a CM is created through the
	// engine.
	StatCols []int
}

// normalize fills nil bucketers with Identity.
func (s *Spec) normalize() {
	if len(s.Bucketers) == 0 {
		s.Bucketers = make([]Bucketer, len(s.UCols))
	}
	for i := range s.Bucketers {
		if s.Bucketers[i] == nil {
			s.Bucketers[i] = Identity{}
		}
	}
}

// EntryStats is the per-(key, clustered-bucket) statistic block of one
// CM entry: the co-occurrence count (Algorithm 1's reference count) plus
// optional per-column aggregate carriers over the tuples the entry
// covers. Count and the sums retract exactly on delete; Min/Max cannot
// shrink, so a delete that removes a boundary value marks the entry
// MMDirty and index-only MIN/MAX answers fall back to sweeping it.
type EntryStats struct {
	// Count is how many live tuples share this (bucketed key, clustered
	// bucket) pair — the uint32 reference count of the original layout,
	// widened.
	Count int64
	// SumI / SumF accumulate each stat column's values (int columns in
	// SumI exactly, float columns in SumF), indexed like Spec.StatCols.
	SumI []int64
	SumF []float64
	// Min / Max track each stat column's extreme values, valid while
	// Count > 0 and !MMDirty.
	Min, Max []value.Value
	// MMDirty reports that a retraction removed a value equal to a
	// recorded Min or Max, so the extremes may be stale (count and sums
	// stay exact).
	MMDirty bool
}

// CM is a correlation map. Lookups may run concurrently with each other;
// AddRow/RemoveRow require exclusive access. The engine enforces this
// with the table latch (readers under RLock, maintenance under Lock), so
// the CM itself carries no lock.
type CM struct {
	spec  Spec
	m     map[string]map[int32]*EntryStats
	pairs int64
	size  int64 // serialized-size accounting
	// statsInvalid marks per-entry statistics as incomplete: a CM
	// restored from a checkpoint (whose format predates the statistics)
	// cannot answer aggregates index-only until rebuilt.
	statsInvalid bool
	// bloom, when enabled, summarizes the CM's distinct (bucketed) keys
	// so a point probe for an absent key skips the lookup (and the heap
	// fetches behind it) entirely. Maintained through the Algorithm-1
	// hooks: entry adds a key on first sight, RemoveRow retracts it when
	// its last pair disappears. nil means no bloom (the default).
	bloom *filter.Bloom
	// bloomExpected remembers the sizing EnableBloom was called with so
	// Reset and checkpoint recovery can rebuild an equivalent filter.
	bloomExpected int64
	// bloomSkips counts probes the bloom answered negatively (atomic:
	// lookups run concurrently under the table read latch).
	bloomSkips atomic.Int64
}

// cmBloomSeed keeps CM bloom hashing deterministic across runs; the
// bloom also serializes its seed, so a recovered filter answers
// identically.
const cmBloomSeed = 0xC0AB10C5F17E

// cmBloomFPP is the CM bloom's target false-positive rate. A false
// positive only costs the probe the bloom would have skipped, so a
// modest rate keeps the filter small (CMs are the compact structure).
const cmBloomFPP = 0.01

// entry size accounting: per distinct key 2 (len) + len + 4 (pair count);
// per pair 4 (bucket id) + 4 (count).
const (
	keyOverhead  = 6
	pairOverhead = 8
)

// New creates an empty CM from a spec.
func New(spec Spec) *CM {
	spec.normalize()
	if len(spec.UCols) == 0 {
		panic("core: CM spec needs at least one column")
	}
	if len(spec.Bucketers) != len(spec.UCols) {
		panic("core: spec bucketer count mismatch")
	}
	return &CM{spec: spec, m: make(map[string]map[int32]*EntryStats)}
}

// Spec returns the CM's design.
func (cm *CM) Spec() Spec { return cm.spec }

// BucketValues applies the spec's bucketers to the CM-attribute values.
func (cm *CM) BucketValues(vals []value.Value) []value.Value {
	out := make([]value.Value, len(vals))
	for i, v := range vals {
		out[i] = cm.spec.Bucketers[i].Bucket(v)
	}
	return out
}

// KeyForRow buckets and encodes the CM attribute of a full table row.
func (cm *CM) KeyForRow(row value.Row) []byte {
	dst := make([]byte, 0, 10*len(cm.spec.UCols))
	for i, c := range cm.spec.UCols {
		dst = keyenc.AppendValue(dst, cm.spec.Bucketers[i].Bucket(row[c]))
	}
	return dst
}

// keyForValues buckets and encodes explicit CM-attribute values.
func (cm *CM) keyForValues(vals []value.Value) []byte {
	dst := make([]byte, 0, 10*len(vals))
	for i, v := range vals {
		dst = keyenc.AppendValue(dst, cm.spec.Bucketers[i].Bucket(v))
	}
	return dst
}

// AddRow records the co-occurrence of the row's CM attribute with the
// clustered bucket, incrementing the pair's count and folding the row's
// stat-column values into the entry statistics (Algorithm 1, extended).
func (cm *CM) AddRow(row value.Row, cbucket int32) {
	st := cm.entry(cm.KeyForRow(row), cbucket)
	st.Count++
	for i, c := range cm.spec.StatCols {
		v := row[c]
		switch v.K {
		case value.Int:
			st.SumI[i] += v.I
		case value.Float:
			st.SumF[i] += v.F
		}
		if st.Count == 1 {
			st.Min[i], st.Max[i] = v, v
			continue
		}
		if v.Compare(st.Min[i]) < 0 {
			st.Min[i] = v
		}
		if v.Compare(st.Max[i]) > 0 {
			st.Max[i] = v
		}
	}
}

// EnableBloom arms the CM's key bloom filter, sized for expectedN
// distinct keys, and seeds it with the keys already present. Callers
// hold the table write latch (like AddRow).
func (cm *CM) EnableBloom(expectedN int64) {
	cm.bloomExpected = expectedN
	cm.bloom = filter.NewBloom(expectedN, cmBloomFPP, cmBloomSeed)
	for k := range cm.m {
		cm.bloom.Add([]byte(k))
	}
}

// BloomEnabled reports whether the CM maintains a key bloom filter.
func (cm *CM) BloomEnabled() bool { return cm.bloom != nil }

// BloomSkips returns how many point probes the bloom pruned.
func (cm *CM) BloomSkips() int64 { return cm.bloomSkips.Load() }

// BloomSizeBytes returns the bloom filter's footprint (0 when disabled).
func (cm *CM) BloomSizeBytes() int64 {
	if cm.bloom == nil {
		return 0
	}
	return cm.bloom.SizeBytes()
}

// ProbePossible reports whether a point lookup for the given
// CM-attribute values can possibly match: false (definitive, counted
// as a bloom skip) only when the bloom proves the bucketed key absent.
// Without a bloom it always reports true.
func (cm *CM) ProbePossible(vals []value.Value) bool {
	if cm.bloom == nil {
		return true
	}
	if cm.bloom.MayContain(cm.keyForValues(vals)) {
		return true
	}
	cm.bloomSkips.Add(1)
	return false
}

// entry resolves (creating on first sight) the stats block for a pair.
func (cm *CM) entry(key []byte, cbucket int32) *EntryStats {
	set, ok := cm.m[string(key)]
	if !ok {
		set = make(map[int32]*EntryStats, 2)
		cm.m[string(key)] = set
		cm.size += keyOverhead + int64(len(key))
		if cm.bloom != nil {
			cm.bloom.Add(key)
		}
	}
	st, ok := set[cbucket]
	if !ok {
		nstat := len(cm.spec.StatCols)
		st = &EntryStats{
			SumI: make([]int64, nstat),
			SumF: make([]float64, nstat),
			Min:  make([]value.Value, nstat),
			Max:  make([]value.Value, nstat),
		}
		set[cbucket] = st
		cm.pairs++
		cm.size += pairOverhead
	}
	return st
}

// RemoveRow retracts one co-occurrence, deleting the pair when its count
// reaches zero and the key when its last pair disappears. Count and sums
// retract exactly; removing a value equal to the entry's recorded min or
// max marks the entry MMDirty (the new extreme cannot be known without a
// rescan), which index-only MIN/MAX answers treat as impure.
func (cm *CM) RemoveRow(row value.Row, cbucket int32) error {
	key := cm.KeyForRow(row)
	set, ok := cm.m[string(key)]
	if !ok || set[cbucket] == nil || set[cbucket].Count == 0 {
		return fmt.Errorf("core: remove of unrecorded pair (%x, %d)", key, cbucket)
	}
	st := set[cbucket]
	st.Count--
	if st.Count == 0 {
		delete(set, cbucket)
		cm.pairs--
		cm.size -= pairOverhead
		if len(set) == 0 {
			delete(cm.m, string(key))
			cm.size -= keyOverhead + int64(len(key))
			if cm.bloom != nil {
				cm.bloom.Remove(key)
			}
		}
		return nil
	}
	for i, c := range cm.spec.StatCols {
		v := row[c]
		switch v.K {
		case value.Int:
			st.SumI[i] -= v.I
		case value.Float:
			st.SumF[i] -= v.F
		}
		if v.Compare(st.Min[i]) == 0 || v.Compare(st.Max[i]) == 0 {
			st.MMDirty = true
		}
	}
	return nil
}

// StatsValid reports whether the per-entry aggregate statistics cover
// every live row — true for CMs built and maintained in this process and
// for CMs restored from a current-format checkpoint; false after reading
// a legacy (stats-less) checkpoint, until rebuilt.
func (cm *CM) StatsValid() bool { return !cm.statsInvalid }

// StatsSizeBytes estimates the in-memory footprint of the per-entry
// aggregate statistics (not counted in SizeBytes, which remains the
// paper's serialized-CM metric): per pair, the widened count plus sum
// carriers and min/max value headers for each stat column, plus the
// string payloads the min/max values of string columns retain. The walk
// is O(pairs) — CMs are small and memory-resident by design.
func (cm *CM) StatsSizeBytes() int64 {
	perPair := int64(8) // widened count
	for range cm.spec.StatCols {
		perPair += 8 + 8 + 2*16 // SumI + SumF + two value headers
	}
	total := cm.pairs * perPair
	for _, set := range cm.m {
		for _, st := range set {
			for i := range cm.spec.StatCols {
				if st.Min[i].K == value.String {
					total += int64(len(st.Min[i].S) + len(st.Max[i].S))
				}
			}
		}
	}
	return total
}

// Lookup returns the clustered buckets co-occurring with the given CM
// attribute values (one value per CM column), sorted ascending.
func (cm *CM) Lookup(vals ...value.Value) []int32 {
	if len(vals) != len(cm.spec.UCols) {
		panic("core: Lookup arity mismatch")
	}
	set := cm.m[string(cm.keyForValues(vals))]
	out := make([]int32, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LookupMany unions the clustered buckets for several CM-attribute value
// combinations (the cm_lookup({vu1..vuN}) API of Section 5.2), sorted.
func (cm *CM) LookupMany(valLists [][]value.Value) []int32 {
	seen := make(map[int32]struct{})
	for _, vals := range valLists {
		for _, b := range cm.Lookup(vals...) {
			seen[b] = struct{}{}
		}
	}
	return setToSorted(seen)
}

// LookupMatch returns the clustered buckets of every CM entry whose
// bucketed attribute values satisfy match. Range predicates use this
// path: the whole CM is scanned, which is cheap because CMs are small
// and memory-resident.
func (cm *CM) LookupMatch(match func(vals []value.Value) bool) ([]int32, error) {
	seen := make(map[int32]struct{})
	for key, set := range cm.m {
		vals, err := keyenc.DecodeAll([]byte(key))
		if err != nil {
			return nil, err
		}
		if !match(vals) {
			continue
		}
		for b := range set {
			seen[b] = struct{}{}
		}
	}
	return setToSorted(seen), nil
}

func setToSorted(seen map[int32]struct{}) []int32 {
	out := make([]int32, 0, len(seen))
	for b := range seen {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Walk visits every entry (decoded bucketed values, bucket->count map).
// Iteration order is unspecified. Returning false stops the walk.
func (cm *CM) Walk(fn func(vals []value.Value, buckets map[int32]uint32) bool) error {
	for key, set := range cm.m {
		vals, err := keyenc.DecodeAll([]byte(key))
		if err != nil {
			return err
		}
		counts := make(map[int32]uint32, len(set))
		for b, st := range set {
			counts[b] = uint32(st.Count)
		}
		if !fn(vals, counts) {
			return nil
		}
	}
	return nil
}

// WalkStats visits every key with its encoded form, decoded bucketed
// values and the per-clustered-bucket statistics blocks. The stats are
// the CM's live state: callers must not mutate them. Iteration order is
// unspecified; returning false stops the walk.
func (cm *CM) WalkStats(fn func(key []byte, vals []value.Value, buckets map[int32]*EntryStats) bool) error {
	for key, set := range cm.m {
		vals, err := keyenc.DecodeAll([]byte(key))
		if err != nil {
			return err
		}
		if !fn([]byte(key), vals, set) {
			return nil
		}
	}
	return nil
}

// Keys returns the number of distinct (bucketed) CM-attribute values.
func (cm *CM) Keys() int { return len(cm.m) }

// Pairs returns the number of distinct (u, c-bucket) pairs — the quantity
// that determines CM size ("the CM needs to store every unique pair").
func (cm *CM) Pairs() int64 { return cm.pairs }

// SizeBytes returns the serialized size of the CM's count structure
// (the legacy v1 checkpoint layout), maintained incrementally. This is
// the number experiments report against B+Tree footprints; the
// per-entry aggregate statistics are accounted separately by
// StatsSizeBytes, and the v2 checkpoint carries both.
func (cm *CM) SizeBytes() int64 { return cm.size }

// CPerU returns the average number of clustered buckets per CM key — the
// bucket-level c_per_u that drives the cost model's CM predictions.
func (cm *CM) CPerU() float64 {
	if len(cm.m) == 0 {
		return 0
	}
	return float64(cm.pairs) / float64(len(cm.m))
}

// Checkpoint format versioning. The original (v1) layout opens with the
// key count; versioned layouts open with a magic word no plausible v1
// key count can collide with (it decodes as ~3.2 billion keys), so
// Deserialize distinguishes the formats from the first four bytes.
// v2 added per-entry statistics; v3 appends an optional key bloom
// filter after the entries. Deserialize reads all three.
const (
	cmCheckpointMagic   uint32 = 0xC0AB10C5
	cmCheckpointVersion uint32 = 3
)

// Serialize writes the CM checkpoint in the current (v3) binary format,
// which carries the full per-entry statistics so a recovered CM keeps its
// index-only aggregation pushdown, plus the key bloom when one is
// enabled:
//
//	[magic u32][version u32][nStatCols u32][statCol i32]*
//	[numKeys u32] then per key
//	  [klen u16][key][npairs u32] per pair (buckets sorted)
//	    [bucket i32][count i64][mmdirty u8]
//	    per stat col [sumI i64][sumF f64][min value][max value]
//	[bloomPresent u8][bloom bytes when present]
//
// Values serialize as a kind byte (0 int, 1 float, 2 string) and their
// payload (i64, f64, or u32-length-prefixed bytes). Keys and buckets are
// written in sorted order, making the output stable.
func (cm *CM) Serialize(w io.Writer) error {
	var buf [9]byte // writeValue needs kind byte + 8-byte payload
	u32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(buf[:4], v)
		_, err := w.Write(buf[:4])
		return err
	}
	for _, v := range []uint32{cmCheckpointMagic, cmCheckpointVersion, uint32(len(cm.spec.StatCols))} {
		if err := u32(v); err != nil {
			return err
		}
	}
	for _, c := range cm.spec.StatCols {
		if err := u32(uint32(int32(c))); err != nil {
			return err
		}
	}
	keys := make([]string, 0, len(cm.m))
	for k := range cm.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if err := u32(uint32(len(keys))); err != nil {
		return err
	}
	for _, k := range keys {
		set := cm.m[k]
		binary.LittleEndian.PutUint16(buf[:2], uint16(len(k)))
		if _, err := w.Write(buf[:2]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, k); err != nil {
			return err
		}
		if err := u32(uint32(len(set))); err != nil {
			return err
		}
		buckets := make([]int32, 0, len(set))
		for b := range set {
			buckets = append(buckets, b)
		}
		sort.Slice(buckets, func(i, j int) bool { return buckets[i] < buckets[j] })
		for _, b := range buckets {
			st := set[b]
			if err := u32(uint32(b)); err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(buf[:8], uint64(st.Count))
			if _, err := w.Write(buf[:8]); err != nil {
				return err
			}
			dirty := byte(0)
			if st.MMDirty {
				dirty = 1
			}
			if _, err := w.Write([]byte{dirty}); err != nil {
				return err
			}
			for i := range cm.spec.StatCols {
				binary.LittleEndian.PutUint64(buf[:8], uint64(st.SumI[i]))
				if _, err := w.Write(buf[:8]); err != nil {
					return err
				}
				binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(st.SumF[i]))
				if _, err := w.Write(buf[:8]); err != nil {
					return err
				}
				if err := writeValue(w, buf[:], st.Min[i]); err != nil {
					return err
				}
				if err := writeValue(w, buf[:], st.Max[i]); err != nil {
					return err
				}
			}
		}
	}
	present := byte(0)
	if cm.bloom != nil {
		present = 1
	}
	if _, err := w.Write([]byte{present}); err != nil {
		return err
	}
	if cm.bloom != nil {
		if _, err := cm.bloom.WriteTo(w); err != nil {
			return err
		}
	}
	return nil
}

// SerializeV1 writes the CM in the legacy stats-less checkpoint format:
// [numKeys u32] then per key [klen u16][key][npairs u32][(bucket i32,
// count u32)*] with keys and buckets in sorted order. It exists so the
// v1 read path stays testable; new checkpoints use Serialize.
func (cm *CM) SerializeV1(w io.Writer) error {
	keys := make([]string, 0, len(cm.m))
	for k := range cm.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(keys)))
	if _, err := w.Write(buf[:4]); err != nil {
		return err
	}
	for _, k := range keys {
		set := cm.m[k]
		binary.LittleEndian.PutUint16(buf[:2], uint16(len(k)))
		if _, err := w.Write(buf[:2]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, k); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(buf[:4], uint32(len(set)))
		if _, err := w.Write(buf[:4]); err != nil {
			return err
		}
		buckets := make([]int32, 0, len(set))
		for b := range set {
			buckets = append(buckets, b)
		}
		sort.Slice(buckets, func(i, j int) bool { return buckets[i] < buckets[j] })
		for _, b := range buckets {
			binary.LittleEndian.PutUint32(buf[:4], uint32(b))
			binary.LittleEndian.PutUint32(buf[4:8], uint32(set[b].Count))
			if _, err := w.Write(buf[:8]); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeValue serializes one value as kind byte + payload.
func writeValue(w io.Writer, buf []byte, v value.Value) error {
	switch v.K {
	case value.Int:
		buf[0] = 0
		binary.LittleEndian.PutUint64(buf[1:9], uint64(v.I))
		_, err := w.Write(buf[:9])
		return err
	case value.Float:
		buf[0] = 1
		binary.LittleEndian.PutUint64(buf[1:9], math.Float64bits(v.F))
		_, err := w.Write(buf[:9])
		return err
	default:
		buf[0] = 2
		binary.LittleEndian.PutUint32(buf[1:5], uint32(len(v.S)))
		if _, err := w.Write(buf[:5]); err != nil {
			return err
		}
		_, err := io.WriteString(w, v.S)
		return err
	}
}

// readValue reads one value written by writeValue.
func readValue(r io.Reader, buf []byte) (value.Value, error) {
	if _, err := io.ReadFull(r, buf[:1]); err != nil {
		return value.Value{}, err
	}
	switch buf[0] {
	case 0:
		if _, err := io.ReadFull(r, buf[:8]); err != nil {
			return value.Value{}, err
		}
		return value.NewInt(int64(binary.LittleEndian.Uint64(buf[:8]))), nil
	case 1:
		if _, err := io.ReadFull(r, buf[:8]); err != nil {
			return value.Value{}, err
		}
		return value.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf[:8]))), nil
	case 2:
		if _, err := io.ReadFull(r, buf[:4]); err != nil {
			return value.Value{}, err
		}
		sb := make([]byte, binary.LittleEndian.Uint32(buf[:4]))
		if _, err := io.ReadFull(r, sb); err != nil {
			return value.Value{}, err
		}
		return value.NewString(string(sb)), nil
	default:
		return value.Value{}, fmt.Errorf("core: bad value kind byte %d in checkpoint", buf[0])
	}
}

// Deserialize replaces the CM's contents from a checkpoint, accepting
// every format. A v2/v3 checkpoint whose stat-column layout matches the
// spec restores the per-entry statistics in full, so index-only
// aggregation (cm-agg) works immediately. A legacy v1 checkpoint — or a
// newer one written under a different stat-column layout — carries no
// usable statistics; the pair counts load and the statistics are marked
// invalid, which the table layer repairs with a heap-scan rebuild at
// recovery. When the CM has its bloom enabled, a v3 checkpoint's bloom
// is adopted directly; older checkpoints (or v3 ones written without a
// bloom) trigger a rebuild from the loaded keys, so negative-probe
// pruning survives recovery either way. The spec is unchanged: callers
// pair a checkpoint with the CM it came from.
func (cm *CM) Deserialize(r io.Reader) error {
	var buf [9]byte
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return err
	}
	head := binary.LittleEndian.Uint32(buf[:4])
	if head != cmCheckpointMagic {
		if err := cm.deserializeV1(r, head); err != nil {
			return err
		}
		cm.rebuildBloom()
		return nil
	}
	if _, err := io.ReadFull(r, buf[:8]); err != nil {
		return err
	}
	ver := binary.LittleEndian.Uint32(buf[:4])
	if ver != 2 && ver != cmCheckpointVersion {
		return fmt.Errorf("core: unsupported CM checkpoint version %d", ver)
	}
	nstat := int(binary.LittleEndian.Uint32(buf[4:8]))
	statCols := make([]int, nstat)
	for i := range statCols {
		if _, err := io.ReadFull(r, buf[:4]); err != nil {
			return err
		}
		statCols[i] = int(int32(binary.LittleEndian.Uint32(buf[:4])))
	}
	// Statistics are only meaningful under the layout they were written
	// with; a mismatched layout degrades to counts-only (like v1).
	layoutOK := len(statCols) == len(cm.spec.StatCols)
	for i := range statCols {
		if !layoutOK || statCols[i] != cm.spec.StatCols[i] {
			layoutOK = false
			break
		}
	}
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return err
	}
	nk := binary.LittleEndian.Uint32(buf[:4])
	m := make(map[string]map[int32]*EntryStats, nk)
	var pairs, size int64
	specStats := len(cm.spec.StatCols)
	for i := uint32(0); i < nk; i++ {
		if _, err := io.ReadFull(r, buf[:2]); err != nil {
			return err
		}
		klen := binary.LittleEndian.Uint16(buf[:2])
		kb := make([]byte, klen)
		if _, err := io.ReadFull(r, kb); err != nil {
			return err
		}
		if _, err := io.ReadFull(r, buf[:4]); err != nil {
			return err
		}
		np := binary.LittleEndian.Uint32(buf[:4])
		set := make(map[int32]*EntryStats, np)
		for j := uint32(0); j < np; j++ {
			if _, err := io.ReadFull(r, buf[:4]); err != nil {
				return err
			}
			bucket := int32(binary.LittleEndian.Uint32(buf[:4]))
			if _, err := io.ReadFull(r, buf[:9]); err != nil {
				return err
			}
			st := &EntryStats{
				Count:   int64(binary.LittleEndian.Uint64(buf[:8])),
				MMDirty: buf[8] != 0,
				SumI:    make([]int64, specStats),
				SumF:    make([]float64, specStats),
				Min:     make([]value.Value, specStats),
				Max:     make([]value.Value, specStats),
			}
			for s := 0; s < nstat; s++ {
				if _, err := io.ReadFull(r, buf[:8]); err != nil {
					return err
				}
				sumI := int64(binary.LittleEndian.Uint64(buf[:8]))
				if _, err := io.ReadFull(r, buf[:8]); err != nil {
					return err
				}
				sumF := math.Float64frombits(binary.LittleEndian.Uint64(buf[:8]))
				minV, err := readValue(r, buf[:])
				if err != nil {
					return err
				}
				maxV, err := readValue(r, buf[:])
				if err != nil {
					return err
				}
				if layoutOK {
					st.SumI[s], st.SumF[s] = sumI, sumF
					st.Min[s], st.Max[s] = minV, maxV
				}
			}
			set[bucket] = st
		}
		m[string(kb)] = set
		pairs += int64(np)
		size += keyOverhead + int64(klen) + pairOverhead*int64(np)
	}
	cm.m = m
	cm.pairs = pairs
	cm.size = size
	cm.statsInvalid = !layoutOK
	var loaded *filter.Bloom
	if ver >= 3 {
		if _, err := io.ReadFull(r, buf[:1]); err != nil {
			return err
		}
		if buf[0] != 0 {
			b, err := filter.ReadBloom(r)
			if err != nil {
				return err
			}
			loaded = b
		}
	}
	if cm.bloom != nil {
		if loaded != nil {
			cm.bloom = loaded
		} else {
			cm.rebuildBloom()
		}
	}
	return nil
}

// rebuildBloom repopulates an enabled bloom from the CM's current keys
// (no-op when the bloom is disabled), growing the sizing when the
// loaded key count outstrips the original expectation.
func (cm *CM) rebuildBloom() {
	if cm.bloom == nil {
		return
	}
	if n := int64(len(cm.m)); n > cm.bloomExpected {
		cm.bloomExpected = n
	}
	cm.bloom = filter.NewBloom(cm.bloomExpected, cmBloomFPP, cmBloomSeed)
	for k := range cm.m {
		cm.bloom.Add([]byte(k))
	}
}

// deserializeV1 finishes reading a legacy checkpoint whose leading u32
// (the key count) was already consumed. Statistics are marked invalid.
func (cm *CM) deserializeV1(r io.Reader, nk uint32) error {
	var buf [8]byte
	m := make(map[string]map[int32]*EntryStats, nk)
	var pairs, size int64
	for i := uint32(0); i < nk; i++ {
		if _, err := io.ReadFull(r, buf[:2]); err != nil {
			return err
		}
		klen := binary.LittleEndian.Uint16(buf[:2])
		kb := make([]byte, klen)
		if _, err := io.ReadFull(r, kb); err != nil {
			return err
		}
		if _, err := io.ReadFull(r, buf[:4]); err != nil {
			return err
		}
		np := binary.LittleEndian.Uint32(buf[:4])
		set := make(map[int32]*EntryStats, np)
		nstat := len(cm.spec.StatCols)
		for j := uint32(0); j < np; j++ {
			if _, err := io.ReadFull(r, buf[:8]); err != nil {
				return err
			}
			set[int32(binary.LittleEndian.Uint32(buf[:4]))] = &EntryStats{
				Count: int64(binary.LittleEndian.Uint32(buf[4:8])),
				SumI:  make([]int64, nstat),
				SumF:  make([]float64, nstat),
				Min:   make([]value.Value, nstat),
				Max:   make([]value.Value, nstat),
			}
		}
		m[string(kb)] = set
		pairs += int64(np)
		size += keyOverhead + int64(klen) + pairOverhead*int64(np)
	}
	cm.m = m
	cm.pairs = pairs
	cm.size = size
	cm.statsInvalid = true
	return nil
}

// Reset empties the CM (keys, pairs, size accounting) and marks its
// statistics valid again: the entry point for a full rebuild, after which
// the caller re-adds every live row with AddRow. An enabled bloom is
// rebuilt empty at its original sizing.
func (cm *CM) Reset() {
	cm.m = make(map[string]map[int32]*EntryStats)
	cm.pairs = 0
	cm.size = 0
	cm.statsInvalid = false
	if cm.bloom != nil {
		cm.bloom = filter.NewBloom(cm.bloomExpected, cmBloomFPP, cmBloomSeed)
	}
}

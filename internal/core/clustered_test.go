package core

import (
	"fmt"
	"testing"

	"repro/internal/keyenc"
	"repro/internal/value"
)

func intKey(i int64) []byte { return keyenc.EncodeValue(value.NewInt(i)) }

func TestBuilderTargetsAndBoundaryRule(t *testing.T) {
	// 4 tuples per bucket, but a clustered value must never straddle a
	// boundary: value 1 appears 6 times and must stay in one bucket.
	b := NewBuilder(4)
	var ids []int32
	keys := []int64{1, 1, 1, 1, 1, 1, 2, 2, 3, 3, 3, 3, 4}
	for _, k := range keys {
		ids = append(ids, b.Add(intKey(k)))
	}
	// First 6 tuples (value 1): bucket 0 — extended past target 4.
	for i := 0; i < 6; i++ {
		if ids[i] != 0 {
			t.Errorf("tuple %d bucket = %d, want 0", i, ids[i])
		}
	}
	// Tuple 6 (value 2) starts bucket 1.
	if ids[6] != 1 {
		t.Errorf("value 2 bucket = %d, want 1", ids[6])
	}
	cb := b.Finish()
	if cb.NumBuckets() < 2 {
		t.Fatalf("buckets = %d", cb.NumBuckets())
	}
}

func TestBuilderSameValueNeverSplits(t *testing.T) {
	b := NewBuilder(2)
	var ids []int32
	// Each distinct value appears 5 times with target 2.
	for v := int64(0); v < 10; v++ {
		for r := 0; r < 5; r++ {
			ids = append(ids, b.Add(intKey(v)))
		}
	}
	// Check: all 5 occurrences of each value share one bucket.
	for v := 0; v < 10; v++ {
		first := ids[v*5]
		for r := 1; r < 5; r++ {
			if ids[v*5+r] != first {
				t.Fatalf("value %d split across buckets %d and %d", v, first, ids[v*5+r])
			}
		}
	}
}

func TestLocate(t *testing.T) {
	b := NewBuilder(2)
	for _, k := range []int64{10, 10, 20, 20, 30, 30} {
		b.Add(intKey(k))
	}
	cb := b.Finish()
	if cb.NumBuckets() != 3 {
		t.Fatalf("buckets = %d, want 3", cb.NumBuckets())
	}
	cases := []struct {
		key  int64
		want int32
	}{
		{5, 0}, // below first bound clamps to 0
		{10, 0}, {15, 0},
		{20, 1}, {25, 1},
		{30, 2}, {99, 2},
	}
	for _, c := range cases {
		if got := cb.Locate(intKey(c.key)); got != c.want {
			t.Errorf("Locate(%d) = %d, want %d", c.key, got, c.want)
		}
	}
}

func TestUpperLowerBounds(t *testing.T) {
	b := NewBuilder(1)
	for _, k := range []int64{1, 2, 3} {
		b.Add(intKey(k))
	}
	cb := b.Finish()
	if got := cb.LowerBound(1); string(got) != string(intKey(2)) {
		t.Error("lower bound of bucket 1 wrong")
	}
	up, ok := cb.UpperBound(0)
	if !ok || string(up) != string(intKey(2)) {
		t.Error("upper bound of bucket 0 wrong")
	}
	if _, ok := cb.UpperBound(2); ok {
		t.Error("last bucket should have no upper bound")
	}
}

func TestLocateEmptyDirectory(t *testing.T) {
	cb := NewClusteredBuckets(nil)
	if got := cb.Locate(intKey(5)); got != 0 {
		t.Errorf("empty directory Locate = %d", got)
	}
}

func TestDirectorySize(t *testing.T) {
	b := NewBuilder(1)
	for i := int64(0); i < 100; i++ {
		b.Add(intKey(i))
	}
	cb := b.Finish()
	if cb.DirectorySizeBytes() <= 0 {
		t.Error("directory size should be positive")
	}
	// 100 bounds of 9-byte keys plus overhead: well under 2 KB.
	if cb.DirectorySizeBytes() > 2048 {
		t.Errorf("directory unexpectedly large: %d", cb.DirectorySizeBytes())
	}
}

func TestBuilderStringKeys(t *testing.T) {
	b := NewBuilder(3)
	states := []string{"AL", "AL", "AL", "AL", "CA", "CA", "MA", "MA", "MA", "NH"}
	var ids []int32
	for _, s := range states {
		ids = append(ids, b.Add(keyenc.EncodeValue(value.NewString(s))))
	}
	// AL (4 tuples) fills bucket 0 past target 3; CA starts bucket 1.
	if ids[3] != 0 || ids[4] != 1 {
		t.Errorf("ids = %v", ids)
	}
	cb := b.Finish()
	if got := cb.Locate(keyenc.EncodeValue(value.NewString("MA"))); got != cb.Locate(keyenc.EncodeValue(value.NewString("MD"))) {
		// MD sorts after MA and before NH; both fall in MA's bucket.
		t.Error("Locate for absent value should fall in enclosing bucket")
	}
	_ = fmt.Sprintf("%v", ids)
}

package core

import (
	"bytes"
	"sort"
)

// ClusteredBuckets is the clustered-attribute bucket directory of Section
// 6.1.1. During the clustered load the table assigns consecutive tuples to
// buckets of roughly b tuples, never splitting one clustered value across
// buckets. The directory records each bucket's encoded lower-bound key; a
// correlation map then stores small bucket IDs instead of clustered-key
// values, and the executor converts IDs back to clustered key ranges.
//
// The directory is engine metadata (like a histogram): it lives in memory
// and its size is charged to the correlation maps that use it via
// DirectorySizeBytes.
type ClusteredBuckets struct {
	bounds [][]byte // bounds[i] = encoded first clustered key of bucket i
}

// NewClusteredBuckets wraps a sorted list of encoded lower bounds.
// Bounds must be strictly increasing; bucket i spans [bounds[i],
// bounds[i+1]).
func NewClusteredBuckets(bounds [][]byte) *ClusteredBuckets {
	return &ClusteredBuckets{bounds: bounds}
}

// Builder incrementally assigns bucket IDs during a clustered scan,
// implementing the paper's rule: fill a bucket with targetTuples tuples,
// then keep extending it until the clustered key changes.
type Builder struct {
	target  int
	bounds  [][]byte
	inCur   int    // tuples in the current bucket
	lastKey []byte // last clustered key seen
}

// NewBuilder creates a builder targeting targetTuples per bucket
// (minimum 1).
func NewBuilder(targetTuples int) *Builder {
	if targetTuples < 1 {
		targetTuples = 1
	}
	return &Builder{target: targetTuples}
}

// Add assigns the next tuple (in clustered order) to a bucket and returns
// the bucket ID. key is the tuple's encoded clustered key.
func (b *Builder) Add(key []byte) int32 {
	switch {
	case len(b.bounds) == 0:
		b.bounds = append(b.bounds, append([]byte(nil), key...))
		b.inCur = 1
	case b.inCur >= b.target && !bytes.Equal(key, b.lastKey):
		b.bounds = append(b.bounds, append([]byte(nil), key...))
		b.inCur = 1
	default:
		b.inCur++
	}
	b.lastKey = append(b.lastKey[:0], key...)
	return int32(len(b.bounds) - 1)
}

// Finish returns the completed directory.
func (b *Builder) Finish() *ClusteredBuckets {
	return NewClusteredBuckets(b.bounds)
}

// NumBuckets returns the number of buckets.
func (cb *ClusteredBuckets) NumBuckets() int { return len(cb.bounds) }

// Locate returns the bucket containing the encoded clustered key: the
// rightmost bucket whose lower bound is <= key. Keys below the first
// bound map to bucket 0 so the function is total (new small keys inserted
// after load still resolve).
func (cb *ClusteredBuckets) Locate(key []byte) int32 {
	if len(cb.bounds) == 0 {
		return 0
	}
	// First bound > key.
	i := sort.Search(len(cb.bounds), func(i int) bool {
		return bytes.Compare(cb.bounds[i], key) > 0
	})
	if i == 0 {
		return 0
	}
	return int32(i - 1)
}

// LowerBound returns bucket i's encoded lower-bound key.
func (cb *ClusteredBuckets) LowerBound(i int32) []byte {
	return cb.bounds[i]
}

// UpperBound returns the encoded lower bound of bucket i+1 (the exclusive
// upper bound of bucket i), or ok=false for the last bucket, whose range
// is unbounded above.
func (cb *ClusteredBuckets) UpperBound(i int32) (key []byte, ok bool) {
	if int(i)+1 >= len(cb.bounds) {
		return nil, false
	}
	return cb.bounds[i+1], true
}

// DirectorySizeBytes returns the in-memory footprint of the directory,
// counted against the access method that relies on it.
func (cb *ClusteredBuckets) DirectorySizeBytes() int64 {
	var n int64
	for _, b := range cb.bounds {
		n += int64(len(b)) + 8 // key bytes + slice header overhead estimate
	}
	return n
}

package core

import (
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func obs(v int64, buckets ...int32) ValueBuckets {
	set := make(map[int32]struct{}, len(buckets))
	for _, b := range buckets {
		set[b] = struct{}{}
	}
	return ValueBuckets{Val: value.NewInt(v), Buckets: set}
}

func TestBuildVarWidthMergesRedundantValues(t *testing.T) {
	// Values 0..9 all map to cluster bucket 1 (a skewed hot region);
	// values 10..12 map to distinct buckets. The skewed region should
	// collapse into one bucket; the tail should stay separate.
	var o []ValueBuckets
	for v := int64(0); v < 10; v++ {
		o = append(o, obs(v, 1))
	}
	o = append(o, obs(10, 2), obs(11, 3), obs(12, 4))
	b := BuildVarWidth(o, 1)
	if len(b.Bounds) != 4 {
		t.Fatalf("bounds = %d, want 4 (hot region + 3 tail values)", len(b.Bounds))
	}
	// All hot values share a representative.
	rep := b.Bucket(value.NewInt(0))
	for v := int64(1); v < 10; v++ {
		if !b.Bucket(value.NewInt(v)).Equal(rep) {
			t.Errorf("value %d not merged into hot bucket", v)
		}
	}
	// Tail values are separate.
	if b.Bucket(value.NewInt(10)).Equal(rep) || b.Bucket(value.NewInt(11)).Equal(b.Bucket(value.NewInt(12))) {
		t.Error("tail values wrongly merged")
	}
}

func TestBuildVarWidthRespectsBudget(t *testing.T) {
	// Adjacent values hit alternating buckets; with budget 2 pairs can
	// merge, with budget 1 nothing merges.
	var o []ValueBuckets
	for v := int64(0); v < 8; v++ {
		o = append(o, obs(v, int32(v%2)))
	}
	tight := BuildVarWidth(o, 1)
	if len(tight.Bounds) != 8 {
		t.Errorf("budget 1 bounds = %d, want 8", len(tight.Bounds))
	}
	loose := BuildVarWidth(o, 2)
	if len(loose.Bounds) != 1 {
		t.Errorf("budget 2 bounds = %d, want 1 (union {0,1} fits)", len(loose.Bounds))
	}
}

func TestVarWidthBucketMonotone(t *testing.T) {
	b := VarWidth{Bounds: []value.Value{
		value.NewInt(0), value.NewInt(10), value.NewInt(100),
	}}
	f := func(x, y int16) bool {
		vx, vy := b.Bucket(value.NewInt(int64(x))), b.Bucket(value.NewInt(int64(y)))
		if x <= y {
			return vx.Compare(vy) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarWidthClampsBelowFirstBound(t *testing.T) {
	b := VarWidth{Bounds: []value.Value{value.NewInt(10), value.NewInt(20)}}
	if got := b.Bucket(value.NewInt(-5)); got.I != 10 {
		t.Errorf("below-range bucket = %v", got)
	}
	if got := b.Bucket(value.NewInt(15)); got.I != 10 {
		t.Errorf("mid bucket = %v", got)
	}
	if got := b.Bucket(value.NewInt(99)); got.I != 20 {
		t.Errorf("top bucket = %v", got)
	}
	// Empty bounds: identity.
	if got := (VarWidth{}).Bucket(value.NewInt(7)); got.I != 7 {
		t.Error("empty VarWidth should be identity")
	}
}

func TestObserver(t *testing.T) {
	o := NewObserver()
	o.Add(value.NewInt(1), 5)
	o.Add(value.NewInt(1), 6)
	o.Add(value.NewInt(1), 5) // duplicate
	o.Add(value.NewInt(2), 5)
	obs := o.Observations()
	if len(obs) != 2 {
		t.Fatalf("observations = %d", len(obs))
	}
	for _, vb := range obs {
		switch vb.Val.I {
		case 1:
			if len(vb.Buckets) != 2 {
				t.Errorf("value 1 buckets = %d", len(vb.Buckets))
			}
		case 2:
			if len(vb.Buckets) != 1 {
				t.Errorf("value 2 buckets = %d", len(vb.Buckets))
			}
		}
	}
}

func TestVarWidthInCM(t *testing.T) {
	// A CM built with a VarWidth bucketer over a skewed column is much
	// smaller than unbucketed but still correct for lookups.
	var o []ValueBuckets
	for v := int64(0); v < 1000; v++ {
		o = append(o, obs(v, int32(v/250))) // 4 clustered buckets
	}
	b := BuildVarWidth(o, 1)
	if len(b.Bounds) != 4 {
		t.Fatalf("skewed bounds = %d, want 4", len(b.Bounds))
	}
	cm := New(Spec{Name: "s", UCols: []int{0}, Bucketers: []Bucketer{b}})
	for v := int64(0); v < 1000; v++ {
		cm.AddRow(value.Row{value.NewInt(v)}, int32(v/250))
	}
	if cm.Keys() != 4 {
		t.Errorf("CM keys = %d, want 4", cm.Keys())
	}
	got := cm.Lookup(value.NewInt(300))
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("lookup(300) = %v", got)
	}
}

package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

// cityStateCM builds the paper's Figure 4 example: a CM on city with the
// table clustered on state, where each distinct state is its own
// clustered bucket (0=MA, 1=MN, 2=MS, 3=NH, 4=OH).
func cityStateCM() *CM {
	cm := New(Spec{Name: "city", UCols: []int{0}})
	rows := []struct {
		city    string
		cbucket int32
	}{
		{"boston", 0}, {"boston", 0}, {"boston", 0}, {"boston", 3},
		{"cambridge", 0},
		{"manchester", 1}, {"manchester", 3},
		{"jackson", 2},
		{"springfield", 0}, {"springfield", 4},
		{"toledo", 4},
	}
	for _, r := range rows {
		cm.AddRow(value.Row{value.NewString(r.city)}, r.cbucket)
	}
	return cm
}

func TestLookupFigure4(t *testing.T) {
	cm := cityStateCM()
	cases := []struct {
		city string
		want []int32
	}{
		{"boston", []int32{0, 3}},      // {MA, NH}
		{"springfield", []int32{0, 4}}, // {MA, OH}
		{"jackson", []int32{2}},        // {MS}
		{"nowhere", nil},
	}
	for _, c := range cases {
		got := cm.Lookup(value.NewString(c.city))
		if len(got) != len(c.want) {
			t.Errorf("Lookup(%s) = %v, want %v", c.city, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Lookup(%s) = %v, want %v", c.city, got, c.want)
			}
		}
	}
	if cm.Keys() != 6 {
		t.Errorf("keys = %d, want 6 distinct cities", cm.Keys())
	}
	if cm.Pairs() != 9 {
		t.Errorf("pairs = %d, want 9 unique (city,state) pairs", cm.Pairs())
	}
}

func TestLookupManyUnion(t *testing.T) {
	cm := cityStateCM()
	// The paper's query: city = 'Boston' OR city = 'Springfield'
	// must scan MA, NH, OH = buckets {0, 3, 4}.
	got := cm.LookupMany([][]value.Value{
		{value.NewString("boston")},
		{value.NewString("springfield")},
	})
	want := []int32{0, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("union = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("union = %v, want %v", got, want)
		}
	}
}

func TestCoOccurrenceCountsSupportDeletes(t *testing.T) {
	cm := cityStateCM()
	boston := value.Row{value.NewString("boston")}
	// Three Boston/MA tuples: two removals keep the pair alive.
	for i := 0; i < 2; i++ {
		if err := cm.RemoveRow(boston, 0); err != nil {
			t.Fatal(err)
		}
		if got := cm.Lookup(value.NewString("boston")); len(got) != 2 {
			t.Fatalf("after %d removals lookup = %v", i+1, got)
		}
	}
	// Third removal drops MA from Boston's set.
	if err := cm.RemoveRow(boston, 0); err != nil {
		t.Fatal(err)
	}
	got := cm.Lookup(value.NewString("boston"))
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("after final removal lookup = %v, want [3]", got)
	}
	// Removing the NH tuple erases the key entirely.
	if err := cm.RemoveRow(boston, 3); err != nil {
		t.Fatal(err)
	}
	if got := cm.Lookup(value.NewString("boston")); len(got) != 0 {
		t.Fatalf("key should be gone, lookup = %v", got)
	}
	if cm.Keys() != 5 {
		t.Errorf("keys = %d after erasing boston", cm.Keys())
	}
}

func TestRemoveUnrecordedPairFails(t *testing.T) {
	cm := cityStateCM()
	if err := cm.RemoveRow(value.Row{value.NewString("boston")}, 4); err == nil {
		t.Error("removing unrecorded pair should error")
	}
	if err := cm.RemoveRow(value.Row{value.NewString("zzz")}, 0); err == nil {
		t.Error("removing missing key should error")
	}
}

func TestBucketedCM(t *testing.T) {
	// Temperature -> humidity example from Section 5.4: 1-degree buckets.
	cm := New(Spec{
		Name:      "temp",
		UCols:     []int{0},
		Bucketers: []Bucketer{FloatWidth{Width: 1.0}},
	})
	add := func(temp float64, cbucket int32) {
		cm.AddRow(value.Row{value.NewFloat(temp)}, cbucket)
	}
	add(12.3, 17)
	add(12.3, 18)
	add(12.7, 18)
	add(12.7, 20)
	add(14.4, 20)
	add(14.9, 21)
	// 12.3 and 12.7 collapse into bucket 12.
	if cm.Keys() != 2 {
		t.Errorf("keys = %d, want 2 buckets (12, 14)", cm.Keys())
	}
	got := cm.Lookup(value.NewFloat(12.5)) // any value in [12,13)
	want := []int32{17, 18, 20}
	if len(got) != len(want) {
		t.Fatalf("bucket 12 lookup = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("bucket 12 lookup = %v, want %v", got, want)
		}
	}
}

func TestLookupMatchRange(t *testing.T) {
	cm := New(Spec{
		Name:      "price",
		UCols:     []int{0},
		Bucketers: []Bucketer{IntWidth{Width: 10}},
	})
	for p := int64(0); p < 200; p++ {
		cm.AddRow(value.Row{value.NewInt(p)}, int32(p/50))
	}
	// Range [95, 124] covers buckets 90..120 -> cbuckets 1 (50-99) and 2 (100-149).
	got, err := cm.LookupMatch(func(vals []value.Value) bool {
		return vals[0].I >= 90 && vals[0].I <= 120
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{1, 2}
	if len(got) != len(want) || got[0] != 1 || got[1] != 2 {
		t.Fatalf("range lookup = %v, want %v", got, want)
	}
}

func TestCompositeCM(t *testing.T) {
	// (longitude, latitude) -> zipcode-bucket from Section 6: the pair
	// determines the bucket even though each alone does not.
	cm := New(Spec{
		Name:  "lonlat",
		UCols: []int{0, 1},
		Bucketers: []Bucketer{
			FloatWidth{Width: 0.5},
			FloatWidth{Width: 0.5},
		},
	})
	cm.AddRow(value.Row{value.NewFloat(10.1), value.NewFloat(20.1)}, 1)
	cm.AddRow(value.Row{value.NewFloat(10.2), value.NewFloat(20.3)}, 1)
	cm.AddRow(value.Row{value.NewFloat(10.1), value.NewFloat(21.1)}, 2)
	cm.AddRow(value.Row{value.NewFloat(11.1), value.NewFloat(20.1)}, 3)
	if cm.Keys() != 3 {
		t.Errorf("keys = %d", cm.Keys())
	}
	got := cm.Lookup(value.NewFloat(10.3), value.NewFloat(20.4))
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("composite lookup = %v", got)
	}
	// Each single attribute is ambiguous; the composite is not.
	if cm.CPerU() != 1 {
		t.Errorf("composite c_per_u = %v, want 1", cm.CPerU())
	}
}

func TestSizeAccountingMatchesSerializedSize(t *testing.T) {
	cm := cityStateCM()
	// SizeBytes incrementally tracks the counts-only (v1) layout; the
	// real v1 serialization adds only the 4-byte key count header.
	var v1 bytes.Buffer
	if err := cm.SerializeV1(&v1); err != nil {
		t.Fatal(err)
	}
	if got, want := cm.SizeBytes()+4, int64(v1.Len()); got != want {
		t.Errorf("SizeBytes+4 = %d, v1 serialized = %d", got, want)
	}
	// The v2 checkpoint carries the stats blocks on top, so it is
	// strictly larger than the count structure alone.
	var v2 bytes.Buffer
	if err := cm.Serialize(&v2); err != nil {
		t.Fatal(err)
	}
	if int64(v2.Len()) <= int64(v1.Len()) {
		t.Errorf("v2 checkpoint (%d bytes) not larger than v1 (%d bytes)", v2.Len(), v1.Len())
	}
}

// statsCM builds a CM carrying per-entry statistics over a two-column
// row shape (col 0 an int key, col 1 a float measure), exercising both
// sum carriers plus min/max.
func statsCM() *CM {
	cm := New(Spec{Name: "k", UCols: []int{0}, StatCols: []int{0, 1}})
	for i := 0; i < 40; i++ {
		row := value.Row{value.NewInt(int64(i % 5)), value.NewFloat(float64(i) + 0.25)}
		cm.AddRow(row, int32(i/10))
	}
	return cm
}

// flatStats flattens a CM's per-entry statistic blocks into a
// comparable map keyed by (key bytes, clustered bucket).
func flatStats(t *testing.T, cm *CM) map[string]EntryStats {
	t.Helper()
	out := map[string]EntryStats{}
	err := cm.WalkStats(func(key []byte, _ []value.Value, buckets map[int32]*EntryStats) bool {
		for cb, es := range buckets {
			flat := *es
			out[string(key)+"/"+string(rune(cb))] = flat
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func statsEqual(a, b EntryStats) bool {
	if a.Count != b.Count || a.MMDirty != b.MMDirty {
		return false
	}
	if len(a.SumI) != len(b.SumI) || len(a.SumF) != len(b.SumF) ||
		len(a.Min) != len(b.Min) || len(a.Max) != len(b.Max) {
		return false
	}
	for i := range a.SumI {
		if a.SumI[i] != b.SumI[i] {
			return false
		}
	}
	for i := range a.SumF {
		if a.SumF[i] != b.SumF[i] {
			return false
		}
	}
	for i := range a.Min {
		if a.Min[i] != b.Min[i] || a.Max[i] != b.Max[i] {
			return false
		}
	}
	return true
}

// TestSerializeV2PreservesStats pins the versioned checkpoint: a
// Serialize -> Deserialize round trip keeps every per-entry statistic
// block bit-exact and the CM still reports StatsValid, so index-only
// aggregation survives recovery.
func TestSerializeV2PreservesStats(t *testing.T) {
	cm := statsCM()
	var buf bytes.Buffer
	if err := cm.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	cm2 := New(cm.Spec())
	if err := cm2.Deserialize(&buf); err != nil {
		t.Fatal(err)
	}
	if !cm2.StatsValid() {
		t.Fatal("v2 round trip lost statistics validity")
	}
	want, got := flatStats(t, cm), flatStats(t, cm2)
	if len(got) != len(want) {
		t.Fatalf("round trip has %d entries, want %d", len(got), len(want))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("entry %q missing after round trip", k)
		}
		if !statsEqual(g, w) {
			t.Errorf("entry %q stats drifted: got %+v want %+v", k, g, w)
		}
	}
}

// TestSerializeV1DropsStats pins the legacy path: a counts-only v1
// checkpoint deserializes with the pair structure intact but the CM
// marked statistics-invalid, so the planner will not answer aggregates
// from it until the table layer rebuilds the stats.
func TestSerializeV1DropsStats(t *testing.T) {
	cm := statsCM()
	var buf bytes.Buffer
	if err := cm.SerializeV1(&buf); err != nil {
		t.Fatal(err)
	}
	cm2 := New(cm.Spec())
	if err := cm2.Deserialize(&buf); err != nil {
		t.Fatal(err)
	}
	if cm2.StatsValid() {
		t.Fatal("v1 checkpoint must leave statistics invalid")
	}
	if cm2.Keys() != cm.Keys() || cm2.Pairs() != cm.Pairs() {
		t.Fatalf("v1 counts drifted: keys %d/%d pairs %d/%d",
			cm2.Keys(), cm.Keys(), cm2.Pairs(), cm.Pairs())
	}
	got := cm2.Lookup(value.NewInt(2))
	if len(got) != 4 {
		t.Fatalf("v1 lookup = %v, want the 4 buckets", got)
	}
	// A stats-layout mismatch in a v2 header degrades the same way:
	// counts load, stats are marked invalid rather than misattributed.
	other := New(Spec{Name: "k", UCols: []int{0}, StatCols: []int{1}})
	var v2 bytes.Buffer
	if err := cm.Serialize(&v2); err != nil {
		t.Fatal(err)
	}
	if err := other.Deserialize(&v2); err != nil {
		t.Fatal(err)
	}
	if other.StatsValid() {
		t.Fatal("stat-column layout mismatch must invalidate statistics")
	}
	if other.Pairs() != cm.Pairs() {
		t.Fatalf("layout mismatch lost counts: %d vs %d", other.Pairs(), cm.Pairs())
	}
}

func TestSerializeDeserializeRoundTrip(t *testing.T) {
	cm := cityStateCM()
	var buf bytes.Buffer
	if err := cm.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	cm2 := New(cm.Spec())
	if err := cm2.Deserialize(&buf); err != nil {
		t.Fatal(err)
	}
	if cm2.Keys() != cm.Keys() || cm2.Pairs() != cm.Pairs() || cm2.SizeBytes() != cm.SizeBytes() {
		t.Errorf("roundtrip mismatch: keys %d/%d pairs %d/%d size %d/%d",
			cm2.Keys(), cm.Keys(), cm2.Pairs(), cm.Pairs(), cm2.SizeBytes(), cm.SizeBytes())
	}
	got := cm2.Lookup(value.NewString("boston"))
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("roundtrip lookup = %v", got)
	}
	// Counts survive: two removals then the pair disappears.
	boston := value.Row{value.NewString("boston")}
	for i := 0; i < 3; i++ {
		if err := cm2.RemoveRow(boston, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := cm2.Lookup(value.NewString("boston")); len(got) != 1 {
		t.Errorf("counts lost in roundtrip: %v", got)
	}
}

func TestAddRemoveInverseProperty(t *testing.T) {
	cm := New(Spec{Name: "p", UCols: []int{0}, Bucketers: []Bucketer{IntWidth{Width: 4}}})
	f := func(vals []int16, buckets []uint8) bool {
		n := len(vals)
		if len(buckets) < n {
			n = len(buckets)
		}
		before := cm.SizeBytes()
		kb, pb := cm.Keys(), cm.Pairs()
		for i := 0; i < n; i++ {
			cm.AddRow(value.Row{value.NewInt(int64(vals[i]))}, int32(buckets[i]%8))
		}
		for i := n - 1; i >= 0; i-- {
			if err := cm.RemoveRow(value.Row{value.NewInt(int64(vals[i]))}, int32(buckets[i]%8)); err != nil {
				return false
			}
		}
		return cm.SizeBytes() == before && cm.Keys() == kb && cm.Pairs() == pb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCPerU(t *testing.T) {
	cm := cityStateCM()
	// 9 pairs over 6 keys.
	want := 9.0 / 6.0
	if got := cm.CPerU(); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("CPerU = %v, want %v", got, want)
	}
	empty := New(Spec{Name: "e", UCols: []int{0}})
	if empty.CPerU() != 0 {
		t.Error("empty CM CPerU should be 0")
	}
}

func TestWalk(t *testing.T) {
	cm := cityStateCM()
	n := 0
	if err := cm.Walk(func(vals []value.Value, buckets map[int32]uint32) bool {
		if len(vals) != 1 || vals[0].K != value.String {
			t.Error("walk decoded wrong shape")
		}
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != cm.Keys() {
		t.Errorf("walk visited %d of %d", n, cm.Keys())
	}
	// Early stop.
	n = 0
	if err := cm.Walk(func([]value.Value, map[int32]uint32) bool { n++; return false }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("walk did not stop early: %d", n)
	}
}

func TestLookupArityPanics(t *testing.T) {
	cm := cityStateCM()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on arity mismatch")
		}
	}()
	cm.Lookup(value.NewString("a"), value.NewString("b"))
}

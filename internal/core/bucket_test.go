package core

import (
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func TestIntWidthTruncation(t *testing.T) {
	b := IntWidth{Width: 10}
	cases := []struct{ in, want int64 }{
		{0, 0}, {9, 0}, {10, 10}, {19, 10}, {-1, -10}, {-10, -10}, {-11, -20},
	}
	for _, c := range cases {
		if got := b.Bucket(value.NewInt(c.in)).I; got != c.want {
			t.Errorf("IntWidth(10).Bucket(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestIntWidthMonotone(t *testing.T) {
	b := IntWidth{Width: 7}
	f := func(x, y int32) bool {
		vx, vy := b.Bucket(value.NewInt(int64(x))), b.Bucket(value.NewInt(int64(y)))
		if x <= y {
			return vx.Compare(vy) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntWidthOneIsIdentity(t *testing.T) {
	b := IntWidth{Width: 1}
	if got := b.Bucket(value.NewInt(-37)).I; got != -37 {
		t.Errorf("width-1 bucket changed value: %d", got)
	}
}

func TestFloatWidth(t *testing.T) {
	b := FloatWidth{Width: 1.0}
	cases := []struct{ in, want float64 }{
		{12.3, 12}, {12.99, 12}, {-0.5, -1}, {3, 3},
	}
	for _, c := range cases {
		if got := b.Bucket(value.NewFloat(c.in)).F; got != c.want {
			t.Errorf("FloatWidth(1).Bucket(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Zero width is identity.
	if got := (FloatWidth{}).Bucket(value.NewFloat(1.25)).F; got != 1.25 {
		t.Error("zero width should be identity")
	}
}

func TestFloatWidthMonotone(t *testing.T) {
	b := FloatWidth{Width: 2.5}
	f := func(x, y float32) bool {
		vx, vy := b.Bucket(value.NewFloat(float64(x))), b.Bucket(value.NewFloat(float64(y)))
		if x <= y {
			return vx.Compare(vy) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringPrefix(t *testing.T) {
	b := StringPrefix{Len: 3}
	if got := b.Bucket(value.NewString("abcdef")).S; got != "abc" {
		t.Errorf("prefix = %q", got)
	}
	if got := b.Bucket(value.NewString("ab")).S; got != "ab" {
		t.Errorf("short string changed: %q", got)
	}
	if got := (StringPrefix{}).Bucket(value.NewString("xyz")).S; got != "xyz" {
		t.Error("zero prefix should be identity")
	}
}

func TestIdentity(t *testing.T) {
	v := value.NewString("anything")
	if got := (Identity{}).Bucket(v); !got.Equal(v) {
		t.Error("identity changed value")
	}
	if (Identity{}).String() != "none" {
		t.Error("identity label")
	}
}

func TestBucketerForLevel(t *testing.T) {
	if _, ok := BucketerForLevel(value.Int, 0).(Identity); !ok {
		t.Error("level 0 should be identity")
	}
	if b, ok := BucketerForLevel(value.Int, 13).(IntWidth); !ok || b.Width != 8192 {
		t.Errorf("int level 13 = %+v", b)
	}
	if b, ok := BucketerForLevel(value.Float, 3).(FloatWidth); !ok || b.Width != 8 {
		t.Errorf("float level 3 = %+v", b)
	}
	if b, ok := BucketerForLevel(value.String, 20).(StringPrefix); !ok || b.Len != 1 {
		t.Errorf("string deep level = %+v", b)
	}
}

func TestBucketerStrings(t *testing.T) {
	for _, b := range []Bucketer{IntWidth{8}, FloatWidth{0.5}, StringPrefix{2}, Identity{}} {
		if b.String() == "" {
			t.Errorf("%T has empty description", b)
		}
	}
}

package core

import (
	"fmt"
	"sort"

	"repro/internal/value"
)

// VarWidth is the paper's future-work bucketing (Section 8): variable
// width buckets for skewed distributions, packing more attribute values
// into a bucket where doing so does not grow the set of clustered
// buckets the CM must record. Boundaries are explicit lower bounds; a
// value belongs to the rightmost bucket whose bound is <= it.
type VarWidth struct {
	// Bounds are encoded-comparison-free: plain values sorted ascending.
	// Bounds[0] is the representative of everything below Bounds[1].
	Bounds []value.Value
}

// Bucket returns the lower bound of the bucket containing v. Values
// below the first bound clamp to it, keeping the function total.
func (b VarWidth) Bucket(v value.Value) value.Value {
	if len(b.Bounds) == 0 {
		return v
	}
	i := sort.Search(len(b.Bounds), func(i int) bool {
		return b.Bounds[i].Compare(v) > 0
	})
	if i == 0 {
		return b.Bounds[0]
	}
	return b.Bounds[i-1]
}

// String describes the bucketing.
func (b VarWidth) String() string { return fmt.Sprintf("var(%d)", len(b.Bounds)) }

// BuildVarWidth derives a variable-width bucketing from (value, clustered
// bucket) observations using the paper's own intuition: "if there are two
// adjacent buckets in the CM that point to the same set of buckets in the
// clustered index, doubling the CM bucket size has no effect on c_per_u."
// It sorts the distinct values, then greedily merges each run of adjacent
// values whose clustered-bucket sets are subsets of the running union, as
// long as the union stays within maxCBuckets. Skewed regions — many
// values hitting the same few clustered buckets — collapse into single
// wide buckets; transition regions keep narrow ones.
func BuildVarWidth(obs []ValueBuckets, maxCBuckets int) VarWidth {
	if maxCBuckets < 1 {
		maxCBuckets = 1
	}
	sorted := make([]ValueBuckets, len(obs))
	copy(sorted, obs)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Val.Compare(sorted[j].Val) < 0
	})

	var bounds []value.Value
	var union map[int32]struct{}
	for _, o := range sorted {
		if union != nil {
			grown := 0
			for b := range o.Buckets {
				if _, ok := union[b]; !ok {
					grown++
				}
			}
			if len(union)+grown <= maxCBuckets {
				for b := range o.Buckets {
					union[b] = struct{}{}
				}
				continue
			}
		}
		// Start a new bucket at this value.
		bounds = append(bounds, o.Val)
		union = make(map[int32]struct{}, len(o.Buckets))
		for b := range o.Buckets {
			union[b] = struct{}{}
		}
	}
	return VarWidth{Bounds: bounds}
}

// ValueBuckets pairs one distinct attribute value with the clustered
// buckets it co-occurs with, the observation unit BuildVarWidth consumes.
type ValueBuckets struct {
	Val     value.Value
	Buckets map[int32]struct{}
}

// ObserveValueBuckets folds a stream of (value, clustered bucket) pairs
// into per-value bucket sets, a convenience for building the BuildVarWidth
// input from a scan or sample.
type ObserveValueBuckets struct {
	m map[string]*ValueBuckets
}

// NewObserver creates an empty observer.
func NewObserver() *ObserveValueBuckets {
	return &ObserveValueBuckets{m: make(map[string]*ValueBuckets)}
}

// Add records one co-occurrence.
func (o *ObserveValueBuckets) Add(v value.Value, cbucket int32) {
	key := v.String() + "\x00" + v.K.String()
	vb, ok := o.m[key]
	if !ok {
		vb = &ValueBuckets{Val: v, Buckets: make(map[int32]struct{}, 2)}
		o.m[key] = vb
	}
	vb.Buckets[cbucket] = struct{}{}
}

// Observations returns the accumulated per-value bucket sets.
func (o *ObserveValueBuckets) Observations() []ValueBuckets {
	out := make([]ValueBuckets, 0, len(o.m))
	for _, vb := range o.m {
		out = append(out, *vb)
	}
	return out
}

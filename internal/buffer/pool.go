// Package buffer implements a fixed-size buffer pool over the simulated
// disk with clock-sweep eviction and dirty-page write-back.
//
// The buffer pool is central to the paper's Experiment 3: maintaining many
// secondary B+Trees floods the pool with dirty pages, forcing evictions
// and random write-back I/O, while correlation maps are small enough to
// live outside the pool entirely. The pool therefore tracks hits, misses,
// evictions and dirty write-backs so experiments can report them.
package buffer

import (
	"fmt"

	"repro/internal/sim"
)

// PageKey identifies a page on the simulated disk.
type PageKey struct {
	File sim.FileID
	Page int64
}

// Stats aggregates buffer pool counters.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	DirtyWrites uint64 // evictions (or flushes) that wrote a dirty page
}

// Frame is a pinned page in the pool. Callers mutate Data in place and
// must Unpin (marking dirty when modified) when done.
type Frame struct {
	Data []byte

	key   PageKey
	pin   int
	dirty bool
	ref   bool // clock reference bit
	used  bool
}

// Key returns the page identity held by the frame.
func (f *Frame) Key() PageKey { return f.key }

// Pool is a clock-sweep buffer pool. Not safe for concurrent use.
type Pool struct {
	disk   *sim.Disk
	frames []Frame
	table  map[PageKey]int
	hand   int
	stats  Stats
}

// NewPool creates a pool of capacity pages over disk.
func NewPool(disk *sim.Disk, capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	p := &Pool{
		disk:   disk,
		frames: make([]Frame, capacity),
		table:  make(map[PageKey]int, capacity),
	}
	ps := disk.PageSize()
	for i := range p.frames {
		p.frames[i].Data = make([]byte, ps)
	}
	return p
}

// Disk returns the underlying simulated disk.
func (p *Pool) Disk() *sim.Disk { return p.disk }

// Capacity returns the number of frames.
func (p *Pool) Capacity() int { return len(p.frames) }

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() Stats { return p.stats }

// ResetStats zeroes the counters (page contents are unaffected).
func (p *Pool) ResetStats() { p.stats = Stats{} }

// victim finds an evictable frame using the clock algorithm, writing back
// dirty contents. It returns an error if every frame is pinned.
func (p *Pool) victim() (int, error) {
	for scanned := 0; scanned < 2*len(p.frames); scanned++ {
		i := p.hand
		p.hand = (p.hand + 1) % len(p.frames)
		fr := &p.frames[i]
		if !fr.used {
			return i, nil
		}
		if fr.pin > 0 {
			continue
		}
		if fr.ref {
			fr.ref = false
			continue
		}
		if fr.dirty {
			if err := p.disk.WritePage(fr.key.File, fr.key.Page, fr.Data); err != nil {
				return 0, err
			}
			p.stats.DirtyWrites++
		}
		delete(p.table, fr.key)
		p.stats.Evictions++
		fr.used = false
		return i, nil
	}
	return 0, fmt.Errorf("buffer: all %d frames pinned", len(p.frames))
}

// Get pins the page into the pool, reading it from disk on a miss.
func (p *Pool) Get(file sim.FileID, page int64) (*Frame, error) {
	key := PageKey{file, page}
	if i, ok := p.table[key]; ok {
		fr := &p.frames[i]
		fr.pin++
		fr.ref = true
		p.stats.Hits++
		return fr, nil
	}
	p.stats.Misses++
	i, err := p.victim()
	if err != nil {
		return nil, err
	}
	fr := &p.frames[i]
	if err := p.disk.ReadPage(file, page, fr.Data); err != nil {
		return nil, err
	}
	fr.key = key
	fr.pin = 1
	fr.dirty = false
	fr.ref = true
	fr.used = true
	p.table[key] = i
	return fr, nil
}

// NewPage allocates a fresh page in the file and pins a zeroed frame for
// it without any read I/O. The page reaches disk when evicted or flushed.
func (p *Pool) NewPage(file sim.FileID) (int64, *Frame, error) {
	page := p.disk.AllocPage(file)
	i, err := p.victim()
	if err != nil {
		return 0, nil, err
	}
	fr := &p.frames[i]
	for j := range fr.Data {
		fr.Data[j] = 0
	}
	fr.key = PageKey{file, page}
	fr.pin = 1
	fr.dirty = true // a new page must eventually be written
	fr.ref = true
	fr.used = true
	p.table[fr.key] = i
	return page, fr, nil
}

// Unpin releases a pin, marking the frame dirty when the caller modified it.
func (p *Pool) Unpin(fr *Frame, dirty bool) {
	if fr.pin <= 0 {
		panic("buffer: unpin of unpinned frame")
	}
	fr.pin--
	if dirty {
		fr.dirty = true
	}
}

// FlushAll writes every dirty page back to disk. Pages stay cached.
func (p *Pool) FlushAll() error {
	for i := range p.frames {
		fr := &p.frames[i]
		if fr.used && fr.dirty {
			if err := p.disk.WritePage(fr.key.File, fr.key.Page, fr.Data); err != nil {
				return err
			}
			p.stats.DirtyWrites++
			fr.dirty = false
		}
	}
	return nil
}

// Invalidate drops every cached page without writing dirty contents. It
// models the paper's cold-cache methodology (dropping OS caches between
// runs); callers flush first when contents must survive.
func (p *Pool) Invalidate() {
	for i := range p.frames {
		fr := &p.frames[i]
		if fr.pin > 0 {
			panic("buffer: invalidate with pinned frames")
		}
		fr.used = false
		fr.dirty = false
	}
	p.table = make(map[PageKey]int, len(p.frames))
}

// DirtyCount returns the number of dirty frames, used by experiments to
// observe pool pressure.
func (p *Pool) DirtyCount() int {
	n := 0
	for i := range p.frames {
		if p.frames[i].used && p.frames[i].dirty {
			n++
		}
	}
	return n
}

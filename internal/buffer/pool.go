// Package buffer implements a fixed-size buffer pool over the simulated
// disk with clock-sweep eviction and dirty-page write-back.
//
// The buffer pool is central to the paper's Experiment 3: maintaining many
// secondary B+Trees floods the pool with dirty pages, forcing evictions
// and random write-back I/O, while correlation maps are small enough to
// live outside the pool entirely. The pool therefore tracks hits, misses,
// evictions and dirty write-backs so experiments can report them.
//
// The pool is safe for concurrent use. Frames are partitioned into shards
// (pages hash to a shard by identity), each with its own lock, frame
// table and clock hand, so parallel scan workers and concurrent queries
// contend only when they touch the same shard. Small pools collapse to a
// single shard and behave exactly like the classic one-clock pool.
//
// EnableAdmission arms scan resistance: a per-shard W-TinyLFU filter
// (count-min sketch + doorkeeper, internal/filter) estimates page
// frequencies, and on a miss the incoming page only takes the clock
// victim's frame when its frequency beats the victim's. Rejected pages
// recycle a single probation frame per shard instead, so a one-pass
// analytic sweep churns one frame while the hot working set stays
// resident. Admission changes only which frames stay cached — Get
// always returns correct page bytes — so results are unaffected.
package buffer

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/filter"
	"repro/internal/sim"
)

// PageKey identifies a page on the simulated disk.
type PageKey struct {
	File sim.FileID
	Page int64
}

// Stats aggregates buffer pool counters. Every counter lives in this
// struct — per shard, reset by one zero-assignment in ResetStats — so
// counters added later are covered by reset automatically (a
// regression test asserts this by reflection).
type Stats struct {
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	DirtyWrites uint64 // evictions (or flushes) that wrote a dirty page
	// Admitted and Rejected split the misses decided by the admission
	// filter (EnableAdmission): admitted pages evicted the clock victim,
	// rejected ones recycled the shard's probation frame. Both stay zero
	// without admission.
	Admitted uint64
	Rejected uint64
	// SketchResets counts closed TinyLFU sample windows (sketch
	// halvings) — the aging cadence of the admission filter.
	SketchResets uint64
}

// Frame is a pinned page in the pool. Callers mutate Data in place and
// must Unpin (marking dirty when modified) when done. Frame contents may
// be read concurrently by multiple pinners; mutation requires external
// write serialization (the table-level write lock in this engine).
type Frame struct {
	Data []byte

	key   PageKey
	pin   int
	dirty bool
	ref   bool // clock reference bit
	used  bool
}

// Key returns the page identity held by the frame.
func (f *Frame) Key() PageKey { return f.key }

// Sharding parameters: shards hold at least minShardFrames frames so tiny
// pools (unit tests, height-bounded trees) keep one deterministic clock,
// and at most maxShards so shard state stays cache-friendly.
const (
	minShardFrames = 64
	maxShards      = 16
)

// shard is one lock domain: a slice of frames with its own page table and
// clock hand, plus (under admission) its own TinyLFU filter and the
// probation frame rejected pages recycle.
type shard struct {
	mu     sync.Mutex
	frames []Frame
	table  map[PageKey]int
	hand   int
	stats  Stats

	// adm is the shard's W-TinyLFU admission filter; nil when admission
	// is off (the default), in which case Get behaves exactly like the
	// classic clock pool.
	adm *filter.TinyLFU
	// transient indexes the shard's probation frame — the one slot a
	// run of rejected pages churns — or -1 when none is designated. A
	// hit on the probation frame promotes it (clears the designation).
	transient int
}

// Pool is a sharded clock-sweep buffer pool, safe for concurrent use.
type Pool struct {
	disk   *sim.Disk
	shards []shard
}

// NewPool creates a pool of capacity pages over disk.
func NewPool(disk *sim.Disk, capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	n := capacity / minShardFrames
	if n > maxShards {
		n = maxShards
	}
	if n < 1 {
		n = 1
	}
	p := &Pool{disk: disk, shards: make([]shard, n)}
	ps := disk.PageSize()
	base, extra := capacity/n, capacity%n
	for i := range p.shards {
		sz := base
		if i < extra {
			sz++
		}
		sh := &p.shards[i]
		sh.frames = make([]Frame, sz)
		sh.table = make(map[PageKey]int, sz)
		sh.transient = -1
		for j := range sh.frames {
			sh.frames[j].Data = make([]byte, ps)
		}
	}
	return p
}

// admissionSeed keeps the admission filter's hashing deterministic
// across runs, preserving the engine's reproducibility contract.
const admissionSeed = 0xC0FFEE5EED

// EnableAdmission arms W-TinyLFU admission control (scan resistance)
// on every shard. Call it right after NewPool, before the pool serves
// traffic; the filters size themselves to each shard's frame count.
func (p *Pool) EnableAdmission() {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		sh.adm = filter.NewTinyLFU(len(sh.frames), admissionSeed+uint64(i))
		sh.transient = -1
		sh.mu.Unlock()
	}
}

// AdmissionEnabled reports whether the pool runs admission control.
func (p *Pool) AdmissionEnabled() bool {
	sh := &p.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.adm != nil
}

// pageHash mixes a page identity into the 64-bit key the admission
// filter consumes.
func pageHash(key PageKey) uint64 {
	h := (uint64(key.File) + 1) * 0x9E3779B97F4A7C15
	h ^= uint64(key.Page) * 0xBF58476D1CE4E5B9
	h ^= h >> 29
	h *= 0x94D049BB133111EB
	h ^= h >> 32
	return h
}

// shardFor maps a page identity to its shard.
func (p *Pool) shardFor(key PageKey) *shard {
	if len(p.shards) == 1 {
		return &p.shards[0]
	}
	h := (uint64(key.File) + 1) * 0x9E3779B97F4A7C15
	h ^= uint64(key.Page) * 0xBF58476D1CE4E5B9
	h ^= h >> 29
	return &p.shards[h%uint64(len(p.shards))]
}

// Disk returns the underlying simulated disk.
func (p *Pool) Disk() *sim.Disk { return p.disk }

// Capacity returns the number of frames.
func (p *Pool) Capacity() int {
	n := 0
	for i := range p.shards {
		n += len(p.shards[i].frames)
	}
	return n
}

// Shards returns the number of lock domains the frames are split into.
func (p *Pool) Shards() int { return len(p.shards) }

// Stats returns a snapshot of the counters, aggregated over shards.
func (p *Pool) Stats() Stats {
	var out Stats
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		out.Hits += sh.stats.Hits
		out.Misses += sh.stats.Misses
		out.Evictions += sh.stats.Evictions
		out.DirtyWrites += sh.stats.DirtyWrites
		out.Admitted += sh.stats.Admitted
		out.Rejected += sh.stats.Rejected
		out.SketchResets += sh.stats.SketchResets
		sh.mu.Unlock()
	}
	return out
}

// ShardStats returns one counter snapshot per shard, in shard order.
// The metrics registry publishes these so per-shard skew (one hot
// shard thrashing while the others idle) is visible in SHOW METRICS.
func (p *Pool) ShardStats() []Stats {
	out := make([]Stats, len(p.shards))
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		out[i] = sh.stats
		sh.mu.Unlock()
	}
	return out
}

// ResetStats zeroes the counters (page contents are unaffected).
func (p *Pool) ResetStats() {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		sh.stats = Stats{}
		sh.mu.Unlock()
	}
}

// clockCandidate advances the shard's clock to the next evictable
// frame — an unused slot or an unpinned frame whose reference bit has
// expired — without evicting it. It returns an error if every frame is
// pinned. Called with the shard lock held.
func (sh *shard) clockCandidate() (int, error) {
	for scanned := 0; scanned < 2*len(sh.frames); scanned++ {
		i := sh.hand
		sh.hand = (sh.hand + 1) % len(sh.frames)
		fr := &sh.frames[i]
		if !fr.used {
			return i, nil
		}
		if fr.pin > 0 {
			continue
		}
		if fr.ref {
			fr.ref = false
			continue
		}
		return i, nil
	}
	return 0, fmt.Errorf("buffer: all %d frames of shard pinned", len(sh.frames))
}

// evictFrame finalizes eviction of frame i, writing back dirty
// contents and dropping the page-table entry; an unused slot is a
// no-op. It returns the deferred real-wait cost of any write-back.
// Called with the shard lock held.
func (sh *shard) evictFrame(disk *sim.Disk, i int) (time.Duration, error) {
	var owed time.Duration
	fr := &sh.frames[i]
	if !fr.used {
		return 0, nil
	}
	if fr.dirty {
		cost, err := disk.WritePageDeferWait(fr.key.File, fr.key.Page, fr.Data)
		owed += cost
		if err != nil {
			return owed, err
		}
		sh.stats.DirtyWrites++
	}
	delete(sh.table, fr.key)
	sh.stats.Evictions++
	fr.used = false
	return owed, nil
}

// victim finds an evictable frame using the shard's clock and evicts
// it, writing back dirty contents — the classic no-admission path,
// used for fresh-page allocation and for pools without admission.
// Called with the shard lock held.
func (sh *shard) victim(disk *sim.Disk) (int, time.Duration, error) {
	i, err := sh.clockCandidate()
	if err != nil {
		return 0, 0, err
	}
	owed, err := sh.evictFrame(disk, i)
	return i, owed, err
}

// admit chooses the frame an incoming missed page loads into under
// admission control (sh.adm != nil). The clock candidate is evicted
// only when the newcomer's TinyLFU frequency beats the resident's
// (W-TinyLFU); a rejected newcomer recycles the shard's probation
// frame instead, so a cold sweep churns one slot while the hot set
// stays resident. Called with the shard lock held.
func (sh *shard) admit(disk *sim.Disk, key PageKey) (int, time.Duration, error) {
	i, err := sh.clockCandidate()
	if err != nil {
		return 0, 0, err
	}
	fr := &sh.frames[i]
	if !fr.used {
		// Free slot: nothing to displace, no decision to make.
		return i, 0, nil
	}
	if sh.adm.Estimate(pageHash(key)) > sh.adm.Estimate(pageHash(fr.key)) {
		sh.stats.Admitted++
		if sh.transient == i {
			sh.transient = -1
		}
		owed, err := sh.evictFrame(disk, i)
		return i, owed, err
	}
	sh.stats.Rejected++
	// Rejected: reuse the probation frame when one exists and is free,
	// leaving the clock victim resident.
	if t := sh.transient; t >= 0 && t != i && sh.frames[t].used && sh.frames[t].pin == 0 {
		owed, err := sh.evictFrame(disk, t)
		return t, owed, err
	}
	// No usable probation frame (first rejection, or an admission just
	// consumed it). Designate a fresh one: the unpinned frame with the
	// lowest frequency estimate — never the clock candidate the filter
	// just voted to keep, unless it genuinely is the coldest resident.
	// The linear scan runs only on this rare path; steady-state
	// rejections recycle in O(1) above.
	best, bestEst := -1, uint32(0)
	for j := range sh.frames {
		cand := &sh.frames[j]
		if cand.pin > 0 || !cand.used {
			continue
		}
		e := sh.adm.Estimate(pageHash(cand.key))
		if best == -1 || e < bestEst {
			best, bestEst = j, e
		}
	}
	if best == -1 {
		// The clock candidate itself is used and unpinned, so this is
		// unreachable; keep the classic behavior as a safety net.
		best = i
	}
	sh.transient = best
	owed, err := sh.evictFrame(disk, best)
	return best, owed, err
}

// Get pins the page into the pool, reading it from disk on a miss. The
// shard lock is held across the disk read so concurrent requests for the
// same missing page load it exactly once; the real I/O wait (when the
// disk runs with RealWaitScale) is paid after the lock is released so
// waiting does not convoy other pages of the shard.
func (p *Pool) Get(file sim.FileID, page int64) (*Frame, error) {
	key := PageKey{file, page}
	sh := p.shardFor(key)
	sh.mu.Lock()
	if i, ok := sh.table[key]; ok {
		fr := &sh.frames[i]
		fr.pin++
		fr.ref = true
		sh.stats.Hits++
		if sh.adm != nil {
			if sh.adm.Touch(pageHash(key)) {
				sh.stats.SketchResets++
			}
			// A hit on the probation frame proves the page re-referenced:
			// promote it to ordinary residency.
			if sh.transient == i {
				sh.transient = -1
			}
		}
		sh.mu.Unlock()
		return fr, nil
	}
	sh.stats.Misses++
	var (
		i    int
		owed time.Duration
		err  error
	)
	if sh.adm != nil {
		if sh.adm.Touch(pageHash(key)) {
			sh.stats.SketchResets++
		}
		i, owed, err = sh.admit(p.disk, key)
	} else {
		i, owed, err = sh.victim(p.disk)
	}
	if err != nil {
		sh.mu.Unlock()
		p.disk.PayWait(owed)
		return nil, err
	}
	fr := &sh.frames[i]
	cost, err := p.disk.ReadPageDeferWait(file, page, fr.Data)
	owed += cost
	if err != nil {
		sh.mu.Unlock()
		p.disk.PayWait(owed)
		return nil, err
	}
	fr.key = key
	fr.pin = 1
	fr.dirty = false
	fr.ref = true
	fr.used = true
	sh.table[key] = i
	sh.mu.Unlock()
	p.disk.PayWait(owed)
	return fr, nil
}

// NewPage allocates a fresh page in the file and pins a zeroed frame for
// it without any read I/O. The page reaches disk when evicted or flushed.
func (p *Pool) NewPage(file sim.FileID) (int64, *Frame, error) {
	page := p.disk.AllocPage(file)
	key := PageKey{file, page}
	sh := p.shardFor(key)
	sh.mu.Lock()
	i, owed, err := sh.victim(p.disk)
	if err != nil {
		sh.mu.Unlock()
		p.disk.PayWait(owed)
		return 0, nil, err
	}
	fr := &sh.frames[i]
	for j := range fr.Data {
		fr.Data[j] = 0
	}
	fr.key = key
	fr.pin = 1
	fr.dirty = true // a new page must eventually be written
	fr.ref = true
	fr.used = true
	sh.table[key] = i
	sh.mu.Unlock()
	p.disk.PayWait(owed)
	return page, fr, nil
}

// Unpin releases a pin, marking the frame dirty when the caller modified it.
func (p *Pool) Unpin(fr *Frame, dirty bool) {
	// fr.key is stable while the caller holds its pin.
	sh := p.shardFor(fr.key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if fr.pin <= 0 {
		panic("buffer: unpin of unpinned frame")
	}
	fr.pin--
	if dirty {
		fr.dirty = true
	}
}

// FlushAll writes every dirty page back to disk. Pages stay cached.
func (p *Pool) FlushAll() error {
	for si := range p.shards {
		sh := &p.shards[si]
		sh.mu.Lock()
		var owed time.Duration
		for i := range sh.frames {
			fr := &sh.frames[i]
			if fr.used && fr.dirty {
				cost, err := p.disk.WritePageDeferWait(fr.key.File, fr.key.Page, fr.Data)
				owed += cost
				if err != nil {
					sh.mu.Unlock()
					p.disk.PayWait(owed)
					return err
				}
				sh.stats.DirtyWrites++
				fr.dirty = false
			}
		}
		sh.mu.Unlock()
		p.disk.PayWait(owed)
	}
	return nil
}

// Invalidate drops every cached page without writing dirty contents. It
// models the paper's cold-cache methodology (dropping OS caches between
// runs); callers flush first when contents must survive, and must ensure
// no frames are pinned (no queries in flight).
func (p *Pool) Invalidate() {
	for si := range p.shards {
		sh := &p.shards[si]
		sh.mu.Lock()
		for i := range sh.frames {
			fr := &sh.frames[i]
			if fr.pin > 0 {
				sh.mu.Unlock()
				panic("buffer: invalidate with pinned frames")
			}
			fr.used = false
			fr.dirty = false
		}
		sh.table = make(map[PageKey]int, len(sh.frames))
		sh.mu.Unlock()
	}
}

// PinnedFrames returns the number of frames with a nonzero pin count.
// Error-path tests assert it returns to zero after a cancelled or
// fault-injected scan: a leaked pin would wedge eviction forever.
func (p *Pool) PinnedFrames() int {
	n := 0
	for si := range p.shards {
		sh := &p.shards[si]
		sh.mu.Lock()
		for i := range sh.frames {
			if sh.frames[i].used && sh.frames[i].pin > 0 {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// DirtyCount returns the number of dirty frames, used by experiments to
// observe pool pressure.
func (p *Pool) DirtyCount() int {
	n := 0
	for si := range p.shards {
		sh := &p.shards[si]
		sh.mu.Lock()
		for i := range sh.frames {
			if sh.frames[i].used && sh.frames[i].dirty {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

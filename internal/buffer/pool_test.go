package buffer

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/sim"
)

func newPool(t *testing.T, frames int) (*Pool, *sim.Disk, sim.FileID) {
	t.Helper()
	d := sim.NewDisk(sim.Config{PageSize: 64})
	return NewPool(d, frames), d, d.CreateFile()
}

func TestNewPageAndGet(t *testing.T) {
	p, _, f := newPool(t, 4)
	page, fr, err := p.NewPage(f)
	if err != nil {
		t.Fatal(err)
	}
	copy(fr.Data, "abc")
	p.Unpin(fr, true)

	fr2, err := p.Get(f, page)
	if err != nil {
		t.Fatal(err)
	}
	if string(fr2.Data[:3]) != "abc" {
		t.Errorf("data = %q", fr2.Data[:3])
	}
	p.Unpin(fr2, false)
	st := p.Stats()
	if st.Hits != 1 {
		t.Errorf("hits = %d, want 1 (page still cached)", st.Hits)
	}
}

func TestEvictionWritesDirtyPages(t *testing.T) {
	p, d, f := newPool(t, 2)
	// Create 3 pages through a 2-frame pool; first must be evicted dirty.
	var pages []int64
	for i := 0; i < 3; i++ {
		pg, fr, err := p.NewPage(f)
		if err != nil {
			t.Fatal(err)
		}
		fr.Data[0] = byte(i + 1)
		p.Unpin(fr, true)
		pages = append(pages, pg)
	}
	st := p.Stats()
	if st.Evictions == 0 || st.DirtyWrites == 0 {
		t.Fatalf("expected evictions with dirty writes, got %+v", st)
	}
	// Reading page 0 back must observe the written byte (it went to disk).
	fr, err := p.Get(f, pages[0])
	if err != nil {
		t.Fatal(err)
	}
	if fr.Data[0] != 1 {
		t.Errorf("evicted page content lost: %d", fr.Data[0])
	}
	p.Unpin(fr, false)
	if d.Stats().Writes == 0 {
		t.Error("disk writes expected from eviction")
	}
}

func TestPinnedFramesNotEvicted(t *testing.T) {
	p, _, f := newPool(t, 2)
	_, fr1, err := p.NewPage(f)
	if err != nil {
		t.Fatal(err)
	}
	_, fr2, err := p.NewPage(f)
	if err != nil {
		t.Fatal(err)
	}
	// Both frames pinned; a third page must fail.
	if _, _, err := p.NewPage(f); err == nil {
		t.Fatal("expected all-pinned error")
	}
	p.Unpin(fr1, false)
	p.Unpin(fr2, false)
	if _, fr3, err := p.NewPage(f); err != nil {
		t.Fatal(err)
	} else {
		p.Unpin(fr3, false)
	}
}

func TestFlushAll(t *testing.T) {
	p, d, f := newPool(t, 4)
	pg, fr, err := p.NewPage(f)
	if err != nil {
		t.Fatal(err)
	}
	fr.Data[0] = 0xAB
	p.Unpin(fr, true)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if p.DirtyCount() != 0 {
		t.Error("dirty pages remain after flush")
	}
	// Verify on-disk contents directly.
	buf := make([]byte, 64)
	if err := d.ReadPage(f, pg, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xAB {
		t.Error("flush did not reach disk")
	}
}

func TestInvalidateDropsCache(t *testing.T) {
	p, d, f := newPool(t, 4)
	pg, fr, err := p.NewPage(f)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(fr, true)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	p.Invalidate()
	d.ResetStats()
	fr2, err := p.Get(f, pg)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(fr2, false)
	if d.Stats().Reads != 1 {
		t.Error("invalidated page should be re-read from disk")
	}
}

func TestUnpinPanicsWhenNotPinned(t *testing.T) {
	p, _, f := newPool(t, 2)
	_, fr, err := p.NewPage(f)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(fr, false)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on double unpin")
		}
	}()
	p.Unpin(fr, false)
}

func TestClockSecondChance(t *testing.T) {
	p, _, f := newPool(t, 2)
	newPage := func() int64 {
		pg, fr, err := p.NewPage(f)
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(fr, true)
		return pg
	}
	newPage()        // pg0
	pg1 := newPage() // pg1
	pg2 := newPage() // evicts pg0 after one sweep; clears pg1's ref bit
	// Now pg2 is referenced (just created) and pg1 is not: the next
	// allocation must evict the unreferenced pg1, not pg2, even though
	// pg1 entered the pool earlier.
	newPage() // pg3
	before := p.Stats().Hits
	fr, err := p.Get(f, pg2)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(fr, false)
	if p.Stats().Hits != before+1 {
		t.Error("referenced page pg2 was evicted before cold page pg1")
	}
	misses := p.Stats().Misses
	fr, err = p.Get(f, pg1)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(fr, false)
	if p.Stats().Misses != misses+1 {
		t.Error("unreferenced page pg1 should have been the eviction victim")
	}
}

func TestMinimumCapacity(t *testing.T) {
	d := sim.NewDisk(sim.Config{PageSize: 64})
	p := NewPool(d, 0)
	if p.Capacity() != 1 {
		t.Errorf("capacity = %d, want clamped to 1", p.Capacity())
	}
}

func TestShardingPreservesCapacity(t *testing.T) {
	d := sim.NewDisk(sim.Config{PageSize: 64})
	for _, cap := range []int{1, 2, 63, 64, 128, 1000, 4096} {
		p := NewPool(d, cap)
		if p.Capacity() != cap {
			t.Errorf("capacity %d: got %d", cap, p.Capacity())
		}
		if cap < 2*minShardFrames && p.Shards() != 1 {
			t.Errorf("capacity %d: %d shards, want 1 (small pools keep one clock)", cap, p.Shards())
		}
		if p.Shards() > maxShards {
			t.Errorf("capacity %d: %d shards exceeds max %d", cap, p.Shards(), maxShards)
		}
	}
}

// TestConcurrentGets hammers the pool from many goroutines over a page
// set larger than capacity, forcing concurrent misses and evictions,
// then verifies page contents and counter totals. Run with -race.
func TestConcurrentGets(t *testing.T) {
	d := sim.NewDisk(sim.Config{PageSize: 64})
	p := NewPool(d, 256)
	f := d.CreateFile()
	const pages = 600
	for i := 0; i < pages; i++ {
		pg, fr, err := p.NewPage(f)
		if err != nil {
			t.Fatal(err)
		}
		fr.Data[0] = byte(pg % 251)
		p.Unpin(fr, true)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	p.Invalidate()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 2000; i++ {
				pg := int64(rng.Intn(pages))
				fr, err := p.Get(f, pg)
				if err != nil {
					t.Error(err)
					return
				}
				if fr.Data[0] != byte(pg%251) {
					t.Errorf("page %d holds wrong contents %d", pg, fr.Data[0])
					p.Unpin(fr, false)
					return
				}
				p.Unpin(fr, false)
			}
		}(g)
	}
	wg.Wait()
	st := p.Stats()
	if st.Hits+st.Misses != 8*2000 {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, 8*2000)
	}
	if p.DirtyCount() != 0 {
		t.Errorf("dirty frames after read-only load: %d", p.DirtyCount())
	}
}

package buffer

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// touchHot drives repeated Get traffic over the given pages so the
// admission filter accumulates frequency for them.
func touchHot(t *testing.T, p *Pool, f sim.FileID, pages []int64, rounds int) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		for _, pg := range pages {
			fr, err := p.Get(f, pg)
			if err != nil {
				t.Fatal(err)
			}
			p.Unpin(fr, false)
		}
	}
}

// TestCacheAdmissionHotPagesSurviveSweep is the core scan-resistance
// property: after hot pages build frequency, a one-pass sweep over a
// large cold file must not evict them — re-reading the hot set hits
// without misses, while the same sweep on a no-admission pool flushes
// the hot set entirely.
func TestCacheAdmissionHotPagesSurviveSweep(t *testing.T) {
	const frames, hotN, sweepN = 32, 8, 512
	run := func(admission bool) (hotMissesAfterSweep uint64) {
		d := sim.NewDisk(sim.Config{PageSize: 64})
		p := NewPool(d, frames)
		if admission {
			p.EnableAdmission()
		}
		f := d.CreateFile()
		var hot []int64
		for i := 0; i < hotN; i++ {
			pg, fr, err := p.NewPage(f)
			if err != nil {
				t.Fatal(err)
			}
			p.Unpin(fr, true)
			hot = append(hot, pg)
		}
		var cold []int64
		for i := 0; i < sweepN; i++ {
			pg, fr, err := p.NewPage(f)
			if err != nil {
				t.Fatal(err)
			}
			p.Unpin(fr, true)
			cold = append(cold, pg)
		}
		if err := p.FlushAll(); err != nil {
			t.Fatal(err)
		}
		p.Invalidate()
		// Build hot frequency, then sweep the cold range once.
		touchHot(t, p, f, hot, 8)
		for _, pg := range cold {
			fr, err := p.Get(f, pg)
			if err != nil {
				t.Fatal(err)
			}
			p.Unpin(fr, false)
		}
		before := p.Stats().Misses
		touchHot(t, p, f, hot, 1)
		return p.Stats().Misses - before
	}
	withAdm := run(true)
	withoutAdm := run(false)
	if withAdm != 0 {
		t.Errorf("admission pool lost %d hot pages to the sweep, want 0", withAdm)
	}
	if withoutAdm == 0 {
		t.Errorf("no-admission pool kept the whole hot set through a %d-page sweep; sweep too small to distinguish", sweepN)
	}
}

// TestCacheAdmissionProbationChurn checks the probation-frame design:
// a cold sweep against a frequency-laden pool is rejected page after
// page and must recycle (roughly) one frame, leaving the resident set
// intact and counting every rejection.
func TestCacheAdmissionProbationChurn(t *testing.T) {
	const frames = 16
	d := sim.NewDisk(sim.Config{PageSize: 64})
	p := NewPool(d, frames)
	p.EnableAdmission()
	f := d.CreateFile()
	var hot, cold []int64
	for i := 0; i < frames; i++ {
		pg, fr, err := p.NewPage(f)
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(fr, true)
		hot = append(hot, pg)
	}
	for i := 0; i < 128; i++ {
		pg, fr, err := p.NewPage(f)
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(fr, true)
		cold = append(cold, pg)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	p.Invalidate()
	touchHot(t, p, f, hot, 8) // residency + frequency
	st0 := p.Stats()
	for _, pg := range cold {
		fr, err := p.Get(f, pg)
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(fr, false)
	}
	st := p.Stats()
	if got := st.Rejected - st0.Rejected; got == 0 {
		t.Fatalf("cold sweep over a hot pool produced no rejections: %+v", st)
	}
	if st.Admitted-st0.Admitted > uint64(len(cold))/4 {
		t.Errorf("cold one-touch pages admitted %d times, want rare: %+v", st.Admitted-st0.Admitted, st)
	}
	if p.PinnedFrames() != 0 {
		t.Errorf("PinnedFrames = %d after sweep, want 0", p.PinnedFrames())
	}
}

// TestCacheAdmissionSerialIdentity asserts the byte-identity contract:
// the same Get sequence returns the same page bytes with admission on
// and off — admission only changes which frames stay resident.
func TestCacheAdmissionSerialIdentity(t *testing.T) {
	build := func(admission bool) ([]int64, *Pool, sim.FileID) {
		d := sim.NewDisk(sim.Config{PageSize: 64})
		p := NewPool(d, 8)
		if admission {
			p.EnableAdmission()
		}
		f := d.CreateFile()
		var pages []int64
		for i := 0; i < 64; i++ {
			pg, fr, err := p.NewPage(f)
			if err != nil {
				t.Fatal(err)
			}
			fr.Data[0] = byte(i)
			fr.Data[1] = byte(i >> 4)
			p.Unpin(fr, true)
			pages = append(pages, pg)
		}
		return pages, p, f
	}
	pagesOn, pOn, fOn := build(true)
	pagesOff, pOff, fOff := build(false)
	// Interleaved re-reads in a fixed pattern: bytes must match pairwise.
	for step := 0; step < 200; step++ {
		i := (step * 7) % len(pagesOn)
		frOn, err := pOn.Get(fOn, pagesOn[i])
		if err != nil {
			t.Fatal(err)
		}
		frOff, err := pOff.Get(fOff, pagesOff[i])
		if err != nil {
			t.Fatal(err)
		}
		if frOn.Data[0] != frOff.Data[0] || frOn.Data[1] != frOff.Data[1] {
			t.Fatalf("step %d page %d: admission bytes %v vs plain %v", step, i, frOn.Data[:2], frOff.Data[:2])
		}
		pOn.Unpin(frOn, false)
		pOff.Unpin(frOff, false)
	}
}

// TestCacheResetStatsCoversEveryField is the satellite regression for
// counters added after PR 7: it drives traffic that moves every Stats
// field (including the admission counters), snapshots, resets, and
// asserts — by reflection, so a future field cannot dodge the test —
// that every field reads zero after ResetStats.
func TestCacheResetStatsCoversEveryField(t *testing.T) {
	d := sim.NewDisk(sim.Config{PageSize: 64})
	p := NewPool(d, 16)
	p.EnableAdmission()
	f := d.CreateFile()
	var pages []int64
	for i := 0; i < 256; i++ {
		pg, fr, err := p.NewPage(f)
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(fr, true)
		pages = append(pages, pg)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	p.Invalidate()
	touchHot(t, p, f, pages[:4], 16)
	for r := 0; r < 8; r++ { // enough touches to close a sample window
		touchHot(t, p, f, pages, 1)
	}
	st := reflect.ValueOf(p.Stats())
	for i := 0; i < st.NumField(); i++ {
		if st.Field(i).Uint() == 0 {
			t.Errorf("workload left Stats.%s at zero; extend the workload so reset coverage is meaningful", st.Type().Field(i).Name)
		}
	}
	p.ResetStats()
	after := reflect.ValueOf(p.Stats())
	for i := 0; i < after.NumField(); i++ {
		if v := after.Field(i).Uint(); v != 0 {
			t.Errorf("ResetStats left Stats.%s = %d, want 0", after.Type().Field(i).Name, v)
		}
	}
	for si, ss := range p.ShardStats() {
		sv := reflect.ValueOf(ss)
		for i := 0; i < sv.NumField(); i++ {
			if v := sv.Field(i).Uint(); v != 0 {
				t.Errorf("ResetStats left shard %d %s = %d, want 0", si, sv.Type().Field(i).Name, v)
			}
		}
	}
}

// Package stats implements the statistics machinery behind the paper's
// cost model and CM Advisor:
//
//   - Distinct Sampling (Gibbons, VLDB'01) for accurate single-attribute
//     cardinalities in one scan,
//   - the GEE estimator and an adaptive variant (after Charikar et al.,
//     PODS'00) for composite cardinalities over a random sample,
//   - reservoir sampling for collecting that random sample during the
//     same scan (Olken-style), and
//   - the c_per_u soft-FD strength measure, c_per_u = D(Au,Ac)/D(Au)
//     (Section 4.2), both exact and estimated.
package stats

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// hash64 hashes a byte key for distinct sampling.
func hash64(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// DistinctSampler implements Gibbons' distinct sampling: it retains the
// keys whose hash has at least `level` leading zero bits, doubling the
// threshold whenever the sample outgrows its capacity. The estimate is
// |sample| * 2^level. One full pass yields estimates far more accurate
// than uniform row sampling, which is why the paper uses it for
// single-attribute cardinalities.
type DistinctSampler struct {
	capacity int
	level    uint
	sample   map[uint64]struct{}
	total    uint64
}

// NewDistinctSampler creates a sampler retaining at most capacity distinct
// hash values (minimum 16).
func NewDistinctSampler(capacity int) *DistinctSampler {
	if capacity < 16 {
		capacity = 16
	}
	return &DistinctSampler{capacity: capacity, sample: make(map[uint64]struct{})}
}

// Add feeds one attribute value (in any canonical byte encoding).
func (d *DistinctSampler) Add(key []byte) {
	d.total++
	h := hash64(key)
	if leadingZeros(h) < d.level {
		return
	}
	d.sample[h] = struct{}{}
	for len(d.sample) > d.capacity {
		d.level++
		for k := range d.sample {
			if leadingZeros(k) < d.level {
				delete(d.sample, k)
			}
		}
	}
}

func leadingZeros(h uint64) uint {
	n := uint(0)
	for mask := uint64(1) << 63; mask != 0 && h&mask == 0; mask >>= 1 {
		n++
	}
	return n
}

// Estimate returns the estimated number of distinct values seen.
func (d *DistinctSampler) Estimate() float64 {
	return float64(len(d.sample)) * math.Pow(2, float64(d.level))
}

// Total returns the number of values fed to the sampler.
func (d *DistinctSampler) Total() uint64 { return d.total }

// FreqCounts summarizes a random sample for distinct-value estimation:
// F[i] is the number of distinct values occurring exactly i times in the
// sample (i >= 1), d the number of distinct values, n the sample size.
type FreqCounts struct {
	F map[int]int
	D int // distinct values in sample
	N int // sample size
}

// CountFrequencies builds FreqCounts from a sample of canonical byte keys.
func CountFrequencies(keys [][]byte) FreqCounts {
	counts := make(map[uint64]int, len(keys))
	for _, k := range keys {
		counts[hash64(k)]++
	}
	f := make(map[int]int)
	for _, c := range counts {
		f[c]++
	}
	return FreqCounts{F: f, D: len(counts), N: len(keys)}
}

// GEE is the Guaranteed-Error Estimator of Charikar et al.:
//
//	D̂ = sqrt(N/n)·f1 + Σ_{i≥2} f_i
//
// where N is the table size and n the sample size. It matches the ratio
// error bound sqrt(N/n) for any distribution.
func GEE(tableSize int64, fc FreqCounts) float64 {
	if fc.N == 0 {
		return 0
	}
	if int64(fc.N) >= tableSize {
		return float64(fc.D)
	}
	scale := math.Sqrt(float64(tableSize) / float64(fc.N))
	est := scale * float64(fc.F[1])
	for i, c := range fc.F {
		if i >= 2 {
			est += float64(c)
		}
	}
	return clampEstimate(est, fc, tableSize)
}

// Chao is Chao's 1984 species-richness lower bound D̂ = d + f1²/(2·f2),
// from the estimation literature the paper cites ([10], Bunge et al.).
func Chao(fc FreqCounts) float64 {
	if fc.F[2] == 0 {
		// Degenerate form (Chao's bias-corrected variant).
		return float64(fc.D) + float64(fc.F[1]*(fc.F[1]-1))/2
	}
	return float64(fc.D) + float64(fc.F[1]*fc.F[1])/(2*float64(fc.F[2]))
}

// AdaptiveEstimate is the advisor's composite-cardinality estimator
// (the role AE plays in the paper). GEE's sqrt(N/n)·f1 term overshoots
// on skewed data where singletons are genuinely rare values rather than
// a uniform slice of a huge domain; Chao's estimator is a sharp lower
// bound in exactly those cases. Following the adaptive idea of Charikar
// et al. — pick the scaling according to observed skew — we interpolate
// between the two on a log scale, weighting by the duplication rate of
// the sample, and clamp to the feasible range [d, N_table].
func AdaptiveEstimate(tableSize int64, fc FreqCounts) float64 {
	if fc.N == 0 {
		return 0
	}
	if int64(fc.N) >= tableSize {
		return float64(fc.D)
	}
	if fc.F[1] == 0 {
		// Every sampled value was seen at least twice: the domain is
		// effectively covered.
		return float64(fc.D)
	}
	gee := GEE(tableSize, fc)
	chao := clampEstimate(Chao(fc), fc, tableSize)
	// Duplication rate: 0 when all sample values unique (no skew signal,
	// trust GEE), →1 when heavy duplication (trust Chao).
	dup := 1 - float64(fc.D)/float64(fc.N)
	est := math.Exp((1-dup)*math.Log(gee) + dup*math.Log(chao))
	return clampEstimate(est, fc, tableSize)
}

func clampEstimate(est float64, fc FreqCounts, tableSize int64) float64 {
	if est < float64(fc.D) {
		est = float64(fc.D)
	}
	if est > float64(tableSize) {
		est = float64(tableSize)
	}
	return est
}

// Reservoir maintains a uniform random sample of byte-encoded items using
// Vitter's algorithm R. The CM Advisor samples composite keys this way
// during the Distinct Sampling scan, as in the paper (Section 4.2).
type Reservoir struct {
	capacity int
	items    [][]byte
	seen     int64
	rng      *rand.Rand
}

// NewReservoir creates a reservoir of the given capacity with a
// deterministic seed (experiments must be reproducible).
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity < 1 {
		capacity = 1
	}
	return &Reservoir{capacity: capacity, rng: rand.New(rand.NewSource(seed))}
}

// Add offers one item to the reservoir. The slice is copied.
func (r *Reservoir) Add(item []byte) {
	r.seen++
	cp := append([]byte(nil), item...)
	if len(r.items) < r.capacity {
		r.items = append(r.items, cp)
		return
	}
	if j := r.rng.Int63n(r.seen); j < int64(r.capacity) {
		r.items[j] = cp
	}
}

// Items returns the sampled items (do not modify).
func (r *Reservoir) Items() [][]byte { return r.items }

// Seen returns how many items were offered.
func (r *Reservoir) Seen() int64 { return r.seen }

// CPerUExact computes the paper's soft-FD strength measure from exact
// distinct counts: c_per_u = D(Au,Ac) / D(Au).
func CPerUExact(dU, dUC float64) float64 {
	if dU <= 0 {
		return 0
	}
	return dUC / dU
}

// PairCounter computes exact D(Au), D(Ac), D(Au,Ac), u_tups and c_tups
// for one attribute pair in a single pass, for tests and for small tables
// where sampling is unnecessary.
type PairCounter struct {
	u  map[uint64]int64
	c  map[uint64]int64
	uc map[uint64]struct{}
	n  int64
}

// NewPairCounter creates an empty counter.
func NewPairCounter() *PairCounter {
	return &PairCounter{
		u:  make(map[uint64]int64),
		c:  make(map[uint64]int64),
		uc: make(map[uint64]struct{}),
	}
}

// Add feeds one tuple's encoded Au and Ac keys.
func (p *PairCounter) Add(uKey, cKey []byte) {
	p.n++
	hu, hc := hash64(uKey), hash64(cKey)
	p.u[hu]++
	p.c[hc]++
	// Combine the two hashes order-dependently for the pair count.
	comb := hu*0x9E3779B97F4A7C15 ^ hc
	p.uc[comb] = struct{}{}
}

// DU returns D(Au).
func (p *PairCounter) DU() int64 { return int64(len(p.u)) }

// DC returns D(Ac).
func (p *PairCounter) DC() int64 { return int64(len(p.c)) }

// DUC returns D(Au,Ac).
func (p *PairCounter) DUC() int64 { return int64(len(p.uc)) }

// CPerU returns D(Au,Ac)/D(Au).
func (p *PairCounter) CPerU() float64 {
	return CPerUExact(float64(p.DU()), float64(p.DUC()))
}

// UTups returns the average tuples per Au value.
func (p *PairCounter) UTups() float64 {
	if len(p.u) == 0 {
		return 0
	}
	return float64(p.n) / float64(len(p.u))
}

// CTups returns the average tuples per Ac value.
func (p *PairCounter) CTups() float64 {
	if len(p.c) == 0 {
		return 0
	}
	return float64(p.n) / float64(len(p.c))
}

// Rows returns the number of tuples fed.
func (p *PairCounter) Rows() int64 { return p.n }

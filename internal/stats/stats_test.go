package stats

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func key(i int) []byte { return []byte(fmt.Sprintf("k%08d", i)) }

func TestDistinctSamplerExactWhenSmall(t *testing.T) {
	d := NewDistinctSampler(1024)
	for i := 0; i < 500; i++ {
		d.Add(key(i % 100)) // 100 distinct
	}
	if got := d.Estimate(); got != 100 {
		t.Errorf("estimate = %v, want exactly 100 (fits in sample)", got)
	}
	if d.Total() != 500 {
		t.Errorf("total = %d", d.Total())
	}
}

func TestDistinctSamplerLargeDomainAccuracy(t *testing.T) {
	d := NewDistinctSampler(1024)
	const distinct = 50000
	for i := 0; i < distinct; i++ {
		d.Add(key(i))
		d.Add(key(i)) // duplicates must not inflate the estimate
	}
	got := d.Estimate()
	if got < 0.7*distinct || got > 1.3*distinct {
		t.Errorf("estimate = %v for %d distinct (>30%% error)", got, distinct)
	}
}

func TestDistinctSamplerMonotoneLevels(t *testing.T) {
	d := NewDistinctSampler(16)
	for i := 0; i < 10000; i++ {
		d.Add(key(i))
	}
	if d.level == 0 {
		t.Error("sampler never raised its level despite overflow")
	}
	if len(d.sample) > d.capacity {
		t.Error("sample exceeds capacity")
	}
}

func TestGEEExactSample(t *testing.T) {
	// When the "sample" is the whole table, GEE returns the exact count.
	var keys [][]byte
	for i := 0; i < 200; i++ {
		keys = append(keys, key(i%40))
	}
	fc := CountFrequencies(keys)
	if got := GEE(200, fc); got != 40 {
		t.Errorf("GEE full-sample = %v, want 40", got)
	}
}

func TestGEEUniformDomain(t *testing.T) {
	// Sample n of N uniform distinct values: most appear once, and GEE
	// should land within its sqrt(N/n) guarantee of the truth.
	rng := rand.New(rand.NewSource(5))
	const tableSize = 100000
	const distinct = 100000 // all unique
	const n = 10000
	var keys [][]byte
	for i := 0; i < n; i++ {
		keys = append(keys, key(rng.Intn(distinct)))
	}
	fc := CountFrequencies(keys)
	got := GEE(tableSize, fc)
	ratio := got / distinct
	// GEE's ratio error is O(sqrt(N/n)); allow a modest constant factor.
	bound := 1.5 * math.Sqrt(float64(tableSize)/float64(n))
	if ratio > bound || 1/ratio > bound {
		t.Errorf("GEE ratio error %v exceeds bound %v", ratio, bound)
	}
}

func TestChaoSkewed(t *testing.T) {
	// Heavy skew: a few hot values plus a tail. Chao should be close to
	// the true distinct count and far below naive sqrt-scaling.
	rng := rand.New(rand.NewSource(9))
	var keys [][]byte
	for i := 0; i < 10000; i++ {
		if rng.Float64() < 0.9 {
			keys = append(keys, key(rng.Intn(10))) // hot set
		} else {
			keys = append(keys, key(10+rng.Intn(500))) // tail
		}
	}
	fc := CountFrequencies(keys)
	got := Chao(fc)
	if got < 400 || got > 800 {
		t.Errorf("Chao = %v for ~510 true distinct", got)
	}
}

func TestAdaptiveEstimateBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(400)
		domain := 1 + rng.Intn(1000)
		var keys [][]byte
		for i := 0; i < n; i++ {
			keys = append(keys, key(rng.Intn(domain)))
		}
		fc := CountFrequencies(keys)
		tableSize := int64(n * 100)
		est := AdaptiveEstimate(tableSize, fc)
		return est >= float64(fc.D) && est <= float64(tableSize)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAdaptiveEstimateCompleteSample(t *testing.T) {
	var keys [][]byte
	for i := 0; i < 300; i++ {
		keys = append(keys, key(i%30))
	}
	fc := CountFrequencies(keys)
	// No singletons: sampled domain is covered.
	if got := AdaptiveEstimate(3000, fc); got != 30 {
		t.Errorf("AE with covered domain = %v, want 30", got)
	}
}

func TestAdaptiveBetweenChaoAndGEE(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var keys [][]byte
	for i := 0; i < 5000; i++ {
		keys = append(keys, key(rng.Intn(2000)))
	}
	fc := CountFrequencies(keys)
	const tableSize = 500000
	ae := AdaptiveEstimate(tableSize, fc)
	gee := GEE(tableSize, fc)
	chao := Chao(fc)
	lo, hi := math.Min(gee, chao), math.Max(gee, chao)
	if ae < float64(fc.D) || (ae < lo*0.99 || ae > hi*1.01) {
		t.Errorf("AE=%v outside [%v,%v]", ae, lo, hi)
	}
}

func TestEmptyInputs(t *testing.T) {
	fc := CountFrequencies(nil)
	if GEE(100, fc) != 0 || AdaptiveEstimate(100, fc) != 0 {
		t.Error("empty sample should estimate 0")
	}
	d := NewDistinctSampler(0)
	if d.capacity < 16 {
		t.Error("capacity clamp failed")
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Statistical check: sampling 100 of 10000 repeatedly, the mean of
	// sampled indices should approach the population mean.
	var sum, count float64
	for trial := 0; trial < 30; trial++ {
		r := NewReservoir(100, int64(trial))
		for i := 0; i < 10000; i++ {
			r.Add([]byte{byte(i >> 8), byte(i)})
		}
		if len(r.Items()) != 100 {
			t.Fatalf("reservoir size %d", len(r.Items()))
		}
		for _, it := range r.Items() {
			sum += float64(int(it[0])<<8 | int(it[1]))
			count++
		}
	}
	mean := sum / count
	if mean < 4500 || mean > 5500 {
		t.Errorf("sample mean %v far from 5000: not uniform", mean)
	}
}

func TestReservoirSmallStream(t *testing.T) {
	r := NewReservoir(10, 1)
	for i := 0; i < 5; i++ {
		r.Add(key(i))
	}
	if len(r.Items()) != 5 || r.Seen() != 5 {
		t.Error("reservoir should keep everything when under capacity")
	}
}

func TestReservoirCopiesItems(t *testing.T) {
	r := NewReservoir(4, 1)
	buf := []byte("abc")
	r.Add(buf)
	buf[0] = 'z'
	if string(r.Items()[0]) != "abc" {
		t.Error("reservoir aliases caller buffer")
	}
}

func TestPairCounterExactCPerU(t *testing.T) {
	// city -> state example from the paper: boston maps to {MA, NH},
	// springfield to {MA, OH}, toledo to {OH}.
	p := NewPairCounter()
	add := func(city, state string, times int) {
		for i := 0; i < times; i++ {
			p.Add([]byte(city), []byte(state))
		}
	}
	add("boston", "MA", 3)
	add("boston", "NH", 1)
	add("springfield", "MA", 2)
	add("springfield", "OH", 1)
	add("toledo", "OH", 2)
	if p.DU() != 3 {
		t.Errorf("D(city) = %d", p.DU())
	}
	if p.DC() != 3 {
		t.Errorf("D(state) = %d", p.DC())
	}
	if p.DUC() != 5 {
		t.Errorf("D(city,state) = %d", p.DUC())
	}
	want := 5.0 / 3.0
	if got := p.CPerU(); math.Abs(got-want) > 1e-9 {
		t.Errorf("c_per_u = %v, want %v", got, want)
	}
	if got := p.UTups(); math.Abs(got-3) > 1e-9 {
		t.Errorf("u_tups = %v, want 3", got)
	}
	if got := p.CTups(); math.Abs(got-3) > 1e-9 {
		t.Errorf("c_tups = %v, want 3", got)
	}
	if p.Rows() != 9 {
		t.Errorf("rows = %d", p.Rows())
	}
}

func TestCPerUExactEdge(t *testing.T) {
	if CPerUExact(0, 5) != 0 {
		t.Error("zero D(Au) should yield 0")
	}
	if CPerUExact(4, 8) != 2 {
		t.Error("basic ratio wrong")
	}
}

func TestPerfectFDHasCPerUOne(t *testing.T) {
	// A hard functional dependency Au -> Ac gives c_per_u == 1.
	p := NewPairCounter()
	for i := 0; i < 1000; i++ {
		u := i % 50
		c := u / 5 // deterministic function of u
		p.Add(key(u), key(1000+c))
	}
	if got := p.CPerU(); got != 1 {
		t.Errorf("hard FD c_per_u = %v, want 1", got)
	}
}

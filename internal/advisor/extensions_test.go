package advisor

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/heap"
	"repro/internal/sim"
	"repro/internal/table"
	"repro/internal/value"
)

// skewedFixture builds a table whose u column is heavily skewed: half
// the domain maps to one clustered region, the rest spreads out.
func skewedFixture(t *testing.T) (*table.Table, *Advisor) {
	t.Helper()
	d := sim.NewDisk(sim.Config{})
	pool := buffer.NewPool(d, 1024)
	sch := table.NewSchema(
		table.Column{Name: "c", Kind: value.Int},
		table.Column{Name: "u", Kind: value.Int},
	)
	tbl, err := table.New(pool, nil, table.Config{
		Name: "t", Schema: sch, ClusteredCols: []int{0}, BucketTuples: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	var rows []value.Row
	for i := 0; i < 8000; i++ {
		u := int64(i % 1000)
		var c int64
		if u < 500 {
			c = 1 // hot clustered region: half the u domain lands here
		} else {
			c = u / 10
		}
		rows = append(rows, value.Row{value.NewInt(c), value.NewInt(u)})
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	adv, err := New(tbl, Config{SampleSize: 8000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return tbl, adv
}

func TestVariableBucketingCompressesSkew(t *testing.T) {
	tbl, adv := skewedFixture(t)
	vb := adv.VariableBucketing(1, 1)
	// 500 hot values collapse toward one bucket; the spread tail keeps
	// roughly one bucket per clustered region. Far fewer than 1000.
	if len(vb.Bounds) >= 500 {
		t.Fatalf("variable bucketing kept %d bounds for 1000 values", len(vb.Bounds))
	}
	// A CM built with it is both small and exact.
	cm, err := tbl.CreateCM(core.Spec{Name: "u_var", UCols: []int{1},
		Bucketers: []core.Bucketer{vb}})
	if err != nil {
		t.Fatal(err)
	}
	if cm.Keys() != len(vb.Bounds) {
		t.Errorf("CM keys %d != bounds %d", cm.Keys(), len(vb.Bounds))
	}
	// Compare against a fixed-width CM with a similar key budget: the
	// variable one should not have a worse c_per_u.
	fixedWidth := int64(1000 / len(vb.Bounds))
	if fixedWidth < 1 {
		fixedWidth = 1
	}
	fixed, err := tbl.CreateCM(core.Spec{Name: "u_fixed", UCols: []int{1},
		Bucketers: []core.Bucketer{core.IntWidth{Width: fixedWidth}}})
	if err != nil {
		t.Fatal(err)
	}
	if cm.CPerU() > fixed.CPerU()+1e-9 {
		t.Errorf("variable c_per_u %.3f worse than fixed %.3f at similar size",
			cm.CPerU(), fixed.CPerU())
	}
}

func TestVariableBucketingLookupStaysExact(t *testing.T) {
	tbl, adv := skewedFixture(t)
	vb := adv.VariableBucketing(1, 1)
	cm, err := tbl.CreateCM(core.Spec{Name: "u_var", UCols: []int{1},
		Bucketers: []core.Bucketer{vb}})
	if err != nil {
		t.Fatal(err)
	}
	// Every u value's true clustered bucket must be covered by the CM.
	missed := 0
	if err := tbl.Scan(func(_ heap.RID, row value.Row) bool {
		buckets := cm.Lookup(row[1])
		cb := tbl.ClusterBucketFor(row)
		found := false
		for _, b := range buckets {
			if b == cb {
				found = true
				break
			}
		}
		if !found {
			missed++
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if missed > 0 {
		t.Errorf("%d rows not covered by variable-width CM", missed)
	}
}

func TestSuggestClustering(t *testing.T) {
	// Build a table where column "hub" correlates with two others and
	// "noise" with none; the suggester must rank hub first and noise
	// last.
	d := sim.NewDisk(sim.Config{})
	pool := buffer.NewPool(d, 1024)
	sch := table.NewSchema(
		table.Column{Name: "id", Kind: value.Int},
		table.Column{Name: "hub", Kind: value.Int},
		table.Column{Name: "friend1", Kind: value.Int},
		table.Column{Name: "friend2", Kind: value.Int},
		table.Column{Name: "noise", Kind: value.Int},
	)
	tbl, err := table.New(pool, nil, table.Config{Name: "t", Schema: sch, ClusteredCols: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	var rows []value.Row
	for i := 0; i < 6000; i++ {
		hub := int64(i % 300)
		rows = append(rows, value.Row{
			value.NewInt(int64(i)),
			value.NewInt(hub),
			value.NewInt(hub / 3),
			value.NewInt(hub * 2),
			value.NewInt(int64((i * 7919) % 6000)),
		})
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	adv, err := New(tbl, Config{SampleSize: 6000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cands := adv.SuggestClustering([]int{1, 2, 3, 4}, 5)
	if len(cands) != 4 {
		t.Fatalf("candidates = %d", len(cands))
	}
	if cands[0].Col != 1 {
		t.Errorf("best clustering col = %d, want hub (1); %+v", cands[0].Col, cands)
	}
	if cands[0].CorrelatedAttrs < 2 {
		t.Errorf("hub correlated attrs = %d, want >= 2", cands[0].CorrelatedAttrs)
	}
	// noise correlates with nothing.
	for _, c := range cands {
		if c.Col == 4 && c.CorrelatedAttrs != 0 {
			t.Errorf("noise correlated attrs = %d", c.CorrelatedAttrs)
		}
	}
	if cands[len(cands)-1].Col != 4 {
		t.Errorf("worst clustering col = %d, want noise (4)", cands[len(cands)-1].Col)
	}
}

func TestSuggestClusteringOnSDSS(t *testing.T) {
	_, adv := sdssFixture(t)
	cols := []int{
		datagen.SDSSFieldID, datagen.SDSSRun, datagen.SDSSMjd,
		datagen.SDSSPsfMagG, datagen.SDSSRowc,
	}
	cands := adv.SuggestClustering(cols, 10)
	if len(cands) != len(cols) {
		t.Fatalf("candidates = %d", len(cands))
	}
	// The position-group attributes must outrank the noise column rowc.
	rankOf := func(col int) int {
		for i, c := range cands {
			if c.Col == col {
				return i
			}
		}
		return -1
	}
	if rankOf(datagen.SDSSFieldID) > rankOf(datagen.SDSSRowc) {
		t.Errorf("fieldID ranked below rowc: %+v", cands)
	}
}

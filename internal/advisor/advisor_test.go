package advisor

import (
	"math"
	"testing"

	"repro/internal/buffer"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/sim"
	"repro/internal/table"
	"repro/internal/value"
	"repro/internal/wal"
)

// sdssFixture loads a small PhotoTag table clustered on objID.
func sdssFixture(t *testing.T) (*table.Table, *Advisor) {
	t.Helper()
	d := sim.NewDisk(sim.Config{})
	pool := buffer.NewPool(d, 2048)
	log := wal.NewLog(d)
	tbl, err := table.New(pool, log, table.Config{
		Name:          "phototag",
		Schema:        datagen.SDSSSchema(),
		ClusteredCols: []int{datagen.SDSSObjID},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := datagen.PhotoTag(datagen.SDSSConfig{
		Stripes: 5, FieldsPerStripe: 10, ObjsPerField: 40, Seed: 3,
	})
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	adv, err := New(tbl, Config{SampleSize: 4000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return tbl, adv
}

func TestDistinctEstimates(t *testing.T) {
	_, adv := sdssFixture(t)
	// mode has 3 distinct values; the DS estimate should be exact.
	if got := adv.DistinctEstimate(datagen.SDSSMode); got != 3 {
		t.Errorf("D(mode) = %v, want 3", got)
	}
	// fieldID has 50 in this fixture.
	if got := adv.DistinctEstimate(datagen.SDSSFieldID); got != 50 {
		t.Errorf("D(fieldID) = %v, want 50", got)
	}
}

func TestBucketingsForFewValued(t *testing.T) {
	_, adv := sdssFixture(t)
	// mode (3 values) needs no bucketing, like the paper's Table 4.
	opts := adv.BucketingsFor(datagen.SDSSMode)
	if len(opts) == 0 || opts[0].Level != 0 {
		t.Fatalf("mode options = %+v, want identity first", opts)
	}
}

func TestBucketingsForManyValued(t *testing.T) {
	_, adv := sdssFixture(t)
	// psfMag_g is effectively unique per row: identity bucketing is
	// allowed only if cardinality <= 2^16, and width options must exist.
	opts := adv.BucketingsFor(datagen.SDSSPsfMagG)
	hasWidth := false
	for _, o := range opts {
		if o.Level > 0 {
			hasWidth = true
			if o.EstBuckets > math.Pow(2, 16)+1 {
				t.Errorf("option %+v exceeds max buckets", o)
			}
		}
	}
	if !hasWidth {
		t.Error("many-valued column offers no width bucketings")
	}
}

func TestRecommendSX6(t *testing.T) {
	_, adv := sdssFixture(t)
	// SX6-style query: fieldID IN (2 values) AND mode = 1 AND type = 6
	// AND psfMag_g < 20.
	q := exec.NewQuery(
		exec.In(datagen.SDSSFieldID, value.NewInt(105), value.NewInt(120)),
		exec.Eq(datagen.SDSSMode, value.NewInt(1)),
		exec.Eq(datagen.SDSSType, value.NewInt(6)),
		exec.Le(datagen.SDSSPsfMagG, value.NewFloat(20)),
	)
	cands, err := adv.Recommend(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates within 10% slowdown")
	}
	// Recommendation is the smallest; must be far smaller than the
	// estimated B+Tree.
	best := cands[0]
	if best.EstSize <= 0 {
		t.Fatal("zero size estimate")
	}
	if best.EstSize >= best.EstBTreeSz {
		t.Errorf("recommended CM size %d not smaller than B+Tree %d", best.EstSize, best.EstBTreeSz)
	}
	// Sizes ascend through the list.
	for i := 1; i < len(cands); i++ {
		if cands[i].EstSize < cands[i-1].EstSize {
			t.Fatal("candidates not sorted by size")
		}
	}
	// Describe produces Table 5-style labels.
	if best.Describe(adv.tbl.Schema()) == "" {
		t.Error("empty description")
	}
}

func TestAllCandidatesSortedByRuntime(t *testing.T) {
	_, adv := sdssFixture(t)
	q := exec.NewQuery(
		exec.Eq(datagen.SDSSMode, value.NewInt(1)),
		exec.In(datagen.SDSSFieldID, value.NewInt(110), value.NewInt(111)),
	)
	cands, err := adv.AllCandidates(q)
	if err != nil {
		t.Fatal(err)
	}
	// Subsets {mode}, {fieldID}, {mode, fieldID} with >=1 bucketing each.
	if len(cands) < 3 {
		t.Fatalf("only %d candidates", len(cands))
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].EstRuntime < cands[i-1].EstRuntime {
			t.Fatal("not sorted by estimated runtime")
		}
	}
}

func TestRecommendRejectsEmptyQuery(t *testing.T) {
	_, adv := sdssFixture(t)
	if _, err := adv.Recommend(exec.NewQuery(), 10); err == nil {
		t.Error("empty query should error")
	}
}

func TestDiscoverFDsFindsStructure(t *testing.T) {
	_, adv := sdssFixture(t)
	cols := []int{
		datagen.SDSSFieldID, datagen.SDSSRun, datagen.SDSSMode,
		datagen.SDSSPsfMagG, datagen.SDSSRowc,
	}
	fds := adv.DiscoverFDs(cols, 0.8, false)
	// fieldID -> run is a hard FD (each field belongs to one run):
	// must be discovered with strength ~1.
	found := false
	for _, fd := range fds {
		if len(fd.Determinant) == 1 && fd.Determinant[0] == datagen.SDSSFieldID &&
			fd.Dependent == datagen.SDSSRun {
			found = true
			if fd.Strength < 0.95 {
				t.Errorf("fieldID->run strength = %v", fd.Strength)
			}
		}
		// rowc (uniform float) must not be discovered as a dependent of
		// mode.
		if fd.Dependent == datagen.SDSSRowc && len(fd.Determinant) == 1 &&
			fd.Determinant[0] == datagen.SDSSMode {
			t.Errorf("spurious FD mode->rowc with strength %v", fd.Strength)
		}
	}
	if !found {
		t.Error("fieldID->run not discovered")
	}
	// Sorted by strength.
	for i := 1; i < len(fds); i++ {
		if fds[i].Strength > fds[i-1].Strength {
			t.Fatal("FDs not sorted")
		}
	}
}

func TestDiscoverMultiAttributeFD(t *testing.T) {
	// The city/state/zip shape: build a table where (a,b) determines c
	// but neither a nor b alone does.
	d := sim.NewDisk(sim.Config{})
	pool := buffer.NewPool(d, 512)
	sch := table.NewSchema(
		table.Column{Name: "id", Kind: value.Int},
		table.Column{Name: "a", Kind: value.Int},
		table.Column{Name: "b", Kind: value.Int},
		table.Column{Name: "c", Kind: value.Int},
	)
	tbl, err := table.New(pool, nil, table.Config{Name: "t", Schema: sch, ClusteredCols: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	var rows []value.Row
	for i := 0; i < 4000; i++ {
		a := int64(i % 20)
		b := int64((i / 20) % 20)
		c := a*20 + b // determined by the pair only
		rows = append(rows, value.Row{
			value.NewInt(int64(i)), value.NewInt(a), value.NewInt(b), value.NewInt(c),
		})
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	adv, err := New(tbl, Config{SampleSize: 3000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	fds := adv.DiscoverFDs([]int{1, 2, 3}, 0.9, true)
	var pairFound, singleFound bool
	for _, fd := range fds {
		if fd.Dependent == 3 {
			if len(fd.Determinant) == 2 {
				pairFound = true
			}
			if len(fd.Determinant) == 1 {
				singleFound = true
			}
		}
	}
	if !pairFound {
		t.Error("(a,b)->c not discovered")
	}
	if singleFound {
		t.Error("a->c or b->c wrongly discovered at strength 0.9")
	}
}

func TestSampleSize(t *testing.T) {
	_, adv := sdssFixture(t)
	if adv.SampleSize() != 2000 {
		// 5*10*40 = 2000 rows, all fit in the 4000 reservoir.
		t.Errorf("sample size = %d, want 2000", adv.SampleSize())
	}
}

func TestParetoFront(t *testing.T) {
	cands := []Candidate{
		{EstRuntime: 10, EstSize: 100},
		{EstRuntime: 12, EstSize: 120}, // dominated: slower and bigger
		{EstRuntime: 15, EstSize: 50},
		{EstRuntime: 20, EstSize: 50}, // dominated: slower, same size
		{EstRuntime: 25, EstSize: 10},
	}
	front := ParetoFront(cands)
	if len(front) != 3 {
		t.Fatalf("front size = %d, want 3", len(front))
	}
	if front[0].EstSize != 100 || front[1].EstSize != 50 || front[2].EstSize != 10 {
		t.Errorf("front = %+v", front)
	}
	if len(ParetoFront(nil)) != 0 {
		t.Error("empty input should yield empty front")
	}
}

package advisor

import (
	"sort"

	"repro/internal/core"
	"repro/internal/keyenc"
	"repro/internal/stats"
	"repro/internal/value"
)

// VariableBucketing implements the paper's future-work extension
// (Section 8): variable-width buckets for skewed value distributions,
// packing more attribute values into a bucket when that bucket's values
// share the same clustered buckets. The bucketing is derived from the
// advisor's row sample; maxCBucketsPerBucket bounds how many clustered
// buckets one CM bucket may fan out to (1 keeps per-bucket c_per_u at
// the minimum; larger values trade lookup cost for fewer CM keys).
func (a *Advisor) VariableBucketing(col int, maxCBucketsPerBucket int) core.VarWidth {
	o := core.NewObserver()
	for _, row := range a.rows {
		o.Add(row[col], a.tbl.ClusterBucketFor(row))
	}
	return core.BuildVarWidth(o.Observations(), maxCBucketsPerBucket)
}

// ClusteringCandidate scores one attribute as a clustered-index choice.
type ClusteringCandidate struct {
	Col int
	// CorrelatedAttrs counts the other candidate attributes whose
	// estimated c_per_u against this clustering stays below the
	// threshold — the "correlations to many unclustered attributes"
	// criterion of Section 4.1.
	CorrelatedAttrs int
	// CPages is c_tups/tups_per_page for this attribute: the expected
	// scan length per clustered value — Section 4.1's "small c_pages"
	// criterion. Few-valued attributes (the gender example) score badly.
	CPages float64
	// MeanCPerU is the average estimated c_per_u over the other
	// attributes, for reporting.
	MeanCPerU float64
}

// SuggestClustering ranks candidate attributes as clustered-index
// choices for the table, generalizing the Figure 2 observation into the
// designer the paper's conclusions sketch: a good clustering has (1) a
// small c_pages and (2) correlations to many of the attributes queries
// predicate. Estimates come from the advisor's sample; candidates are
// returned best first.
func (a *Advisor) SuggestClustering(candidateCols []int, cPerUThreshold float64) []ClusteringCandidate {
	if cPerUThreshold <= 0 {
		cPerUThreshold = 10
	}
	// Precompute per-column sample keys once.
	keyCache := make(map[int][][]byte, len(candidateCols))
	for _, c := range candidateCols {
		keys := make([][]byte, len(a.rows))
		for i, row := range a.rows {
			keys[i] = encodeSampleCol(row, c)
		}
		keyCache[c] = keys
	}
	estimateD := func(keys [][]byte) float64 {
		return adaptive(a.total, keys)
	}
	var out []ClusteringCandidate
	for _, cc := range candidateCols {
		dC := estimateD(keyCache[cc])
		if dC <= 0 {
			continue
		}
		cTups := float64(a.total) / dC
		cand := ClusteringCandidate{
			Col:    cc,
			CPages: cTups / nonZero(a.tstats.TupsPerPage),
		}
		var sum float64
		var n int
		for _, uc := range candidateCols {
			if uc == cc {
				continue
			}
			// c_per_u of uc against clustering cc, at value granularity:
			// D(uc, cc) / D(uc).
			pairKeys := make([][]byte, len(a.rows))
			for i := range a.rows {
				pairKeys[i] = append(append([]byte{}, keyCache[uc][i]...), keyCache[cc][i]...)
			}
			dU := estimateD(keyCache[uc])
			if dU <= 0 {
				continue
			}
			cPerU := estimateD(pairKeys) / dU
			sum += cPerU
			n++
			if cPerU <= cPerUThreshold {
				cand.CorrelatedAttrs++
			}
		}
		if n > 0 {
			cand.MeanCPerU = sum / float64(n)
		}
		out = append(out, cand)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CorrelatedAttrs != out[j].CorrelatedAttrs {
			return out[i].CorrelatedAttrs > out[j].CorrelatedAttrs
		}
		return out[i].CPages < out[j].CPages
	})
	return out
}

func nonZero(f float64) float64 {
	if f <= 0 {
		return 1
	}
	return f
}

// encodeSampleCol and adaptive keep SuggestClustering readable.
func encodeSampleCol(row value.Row, col int) []byte {
	return keyenc.AppendValue(nil, row[col])
}

func adaptive(total int64, keys [][]byte) float64 {
	return stats.AdaptiveEstimate(total, stats.CountFrequencies(keys))
}

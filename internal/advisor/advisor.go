// Package advisor implements the CM Advisor (Section 6): soft-FD
// discovery, bucketing enumeration, composite-design search and CM
// recommendation under a user performance target.
//
// The advisor works from one table scan that feeds per-column Distinct
// Samplers (exact-ish single-attribute cardinalities) and a reservoir row
// sample. Composite cardinalities — needed for every candidate design's
// c_per_u — come from the Adaptive Estimator over the sample, so costing
// a candidate takes microseconds and the design space of Section 6.1.3
// (hundreds of combinations per query) stays cheap to search.
package advisor

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/exec"
	"repro/internal/heap"
	"repro/internal/keyenc"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/value"
)

// Config tunes the advisor.
type Config struct {
	SampleSize    int   // reservoir size; default 30000 as in the paper
	Seed          int64 // sampling determinism
	MinBucketsLog int   // smallest bucket count considered, log2; default 2
	MaxBucketsLog int   // largest bucket count considered, log2; default 16
}

func (c *Config) defaults() {
	if c.SampleSize <= 0 {
		c.SampleSize = 30000
	}
	if c.MinBucketsLog <= 0 {
		c.MinBucketsLog = 2
	}
	if c.MaxBucketsLog <= 0 {
		c.MaxBucketsLog = 16
	}
}

// Advisor holds the statistics gathered by the preparation scan.
type Advisor struct {
	cfg   Config
	tbl   *table.Table
	rows  []value.Row // reservoir sample
	total int64

	du     map[int]float64 // per-column distinct estimates (Distinct Sampling)
	colMin map[int]float64 // numeric column minima
	colMax map[int]float64 // numeric column maxima
	hw     costmodel.Hardware
	tstats costmodel.TableStats
}

// New scans the table once, building the distinct samplers and the
// reservoir sample (Section 4.2: the sample is collected during the DS
// scan).
func New(tbl *table.Table, cfg Config) (*Advisor, error) {
	cfg.defaults()
	sch := tbl.Schema()
	ncols := len(sch.Cols)
	samplers := make([]*stats.DistinctSampler, ncols)
	for i := range samplers {
		samplers[i] = stats.NewDistinctSampler(4096)
	}
	res := stats.NewReservoir(cfg.SampleSize, cfg.Seed)
	colMin := make(map[int]float64, ncols)
	colMax := make(map[int]float64, ncols)
	var rows []value.Row
	err := tbl.Scan(func(rid heap.RID, row value.Row) bool {
		for i := range row {
			samplers[i].Add(keyenc.EncodeValue(row[i]))
			if row[i].K != value.String {
				f := row[i].F
				if row[i].K == value.Int {
					f = float64(row[i].I)
				}
				if cur, ok := colMin[i]; !ok || f < cur {
					colMin[i] = f
				}
				if cur, ok := colMax[i]; !ok || f > cur {
					colMax[i] = f
				}
			}
		}
		res.Add(encodeSampleRow(row))
		return true
	})
	if err != nil {
		return nil, err
	}
	for _, item := range res.Items() {
		row, err := decodeSampleRow(sch, item)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	st := tbl.Stats()
	a := &Advisor{
		cfg:    cfg,
		tbl:    tbl,
		rows:   rows,
		total:  st.TotalTups,
		du:     make(map[int]float64, ncols),
		colMin: colMin,
		colMax: colMax,
		hw:     costmodel.DefaultHardware(),
		tstats: costmodel.TableStats{
			TupsPerPage: st.TupsPerPage,
			TotalTups:   float64(st.TotalTups),
			BTreeHeight: float64(st.BTreeHeight),
		},
	}
	for i, s := range samplers {
		a.du[i] = s.Estimate()
	}
	return a, nil
}

func encodeSampleRow(row value.Row) []byte {
	var out []byte
	for _, v := range row {
		out = keyenc.AppendValue(out, v)
	}
	return out
}

func decodeSampleRow(sch table.Schema, b []byte) (value.Row, error) {
	vals, err := keyenc.DecodeAll(b)
	if err != nil {
		return nil, err
	}
	if len(vals) != len(sch.Cols) {
		return nil, fmt.Errorf("advisor: sample row has %d values, want %d", len(vals), len(sch.Cols))
	}
	return vals, nil
}

// SampleSize returns the number of sampled rows.
func (a *Advisor) SampleSize() int { return len(a.rows) }

// DistinctEstimate returns the Distinct Sampling estimate for a column.
func (a *Advisor) DistinctEstimate(col int) float64 { return a.du[col] }

// BucketingOption is one bucketing the advisor considers for a column
// (Table 4 of the paper).
type BucketingOption struct {
	// Level is the paper's bucket-size exponent: each bucket holds
	// about 2^Level distinct values (0 = no bucketing).
	Level      int
	Bucketer   core.Bucketer
	EstBuckets float64
}

// BucketingsFor enumerates the bucketings for a column per Section 6.1.2:
// the identity bucketing when the domain is small enough, then bucket
// sizes of 2^level values per bucket for every level whose bucket count
// stays within [2^MinBucketsLog, 2^MaxBucketsLog] — exactly the scheme
// behind the paper's Table 4 ("psfMag_g: 2^2 ~ 2^16").
func (a *Advisor) BucketingsFor(col int) []BucketingOption {
	kind := a.tbl.Schema().Cols[col].Kind
	d := a.du[col]
	var out []BucketingOption
	maxBuckets := math.Pow(2, float64(a.cfg.MaxBucketsLog))
	minBuckets := math.Pow(2, float64(a.cfg.MinBucketsLog))
	if d <= maxBuckets {
		out = append(out, BucketingOption{Level: 0, Bucketer: core.Identity{}, EstBuckets: d})
	}
	if kind == value.String {
		// Categorical domains only bucket by prefix; enumerate a few
		// prefix lengths that plausibly reduce cardinality.
		for _, l := range []int{8, 4, 2, 1} {
			out = append(out, BucketingOption{
				Level:      l,
				Bucketer:   core.StringPrefix{Len: l},
				EstBuckets: math.Min(d, math.Pow(2, float64(4*l))),
			})
		}
		return out
	}
	span := a.colMax[col] - a.colMin[col]
	if span <= 0 || d <= 0 {
		return out
	}
	for level := 1; level <= 62; level++ {
		perBucket := math.Pow(2, float64(level))
		buckets := d / perBucket
		if buckets > maxBuckets {
			continue
		}
		if buckets < minBuckets {
			break
		}
		// 2^level values per bucket over a roughly uniform domain is a
		// truncation width of span * 2^level / D.
		width := span * perBucket / d
		var b core.Bucketer
		if kind == value.Int {
			w := int64(width)
			if w < 1 {
				w = 1
			}
			b = core.IntWidth{Width: w}
		} else {
			b = core.FloatWidth{Width: width}
		}
		out = append(out, BucketingOption{Level: level, Bucketer: b, EstBuckets: buckets})
	}
	return out
}

// Candidate is one CM design with its estimates.
type Candidate struct {
	Cols      []int
	Bucketers []core.Bucketer
	Levels    []int

	EstKeys     float64 // distinct bucketed CM keys
	EstCPerU    float64 // clustered buckets per key
	EstSize     int64   // CM bytes
	EstRuntime  time.Duration
	EstBTree    time.Duration // sorted B+Tree scan baseline for the query
	EstBTreeSz  int64
	SlowdownPct float64 // (EstRuntime - EstBTree) / EstBTree * 100
}

// Describe renders the design like the paper's Table 5 rows.
func (c Candidate) Describe(sch table.Schema) string {
	s := ""
	for i, col := range c.Cols {
		if i > 0 {
			s += ", "
		}
		s += sch.Cols[col].Name
		if c.Levels[i] > 0 {
			s += fmt.Sprintf("(2^%d)", c.Levels[i])
		}
	}
	return s
}

// estimateDesign computes the candidate's statistics from the sample.
func (a *Advisor) estimateDesign(cols []int, bucketers []core.Bucketer, nLookups int) Candidate {
	// Build bucketed keys over the sample, paired with clustered buckets.
	uKeys := make([][]byte, 0, len(a.rows))
	ucKeys := make([][]byte, 0, len(a.rows))
	var keyBytes int64
	for _, row := range a.rows {
		var uk []byte
		for i, col := range cols {
			uk = keyenc.AppendValue(uk, bucketers[i].Bucket(row[col]))
		}
		cb := a.tbl.ClusterBucketFor(row)
		uc := make([]byte, len(uk), len(uk)+5)
		copy(uc, uk)
		uc = append(uc, byte(cb), byte(cb>>8), byte(cb>>16), byte(cb>>24))
		uKeys = append(uKeys, uk)
		ucKeys = append(ucKeys, uc)
		keyBytes += int64(len(uk))
	}
	fcU := stats.CountFrequencies(uKeys)
	fcUC := stats.CountFrequencies(ucKeys)
	dU := stats.AdaptiveEstimate(a.total, fcU)
	dUC := stats.AdaptiveEstimate(a.total, fcUC)
	cPerU := stats.CPerUExact(dU, dUC)

	avgKeyLen := float64(12)
	if len(uKeys) > 0 {
		avgKeyLen = float64(keyBytes) / float64(len(uKeys))
	}
	estSize := int64(dU*(avgKeyLen+6) + dUC*8)

	nb := a.tbl.Buckets().NumBuckets()
	ppb := 1.0
	if nb > 0 {
		ppb = a.tstats.Pages() / float64(nb)
	}
	runtime := costmodel.CMLookup(a.hw, a.tstats, costmodel.CMStats{
		CPerU:           cPerU,
		PagesPerCBucket: ppb,
	}, nLookups)
	return Candidate{
		Cols:       cols,
		Bucketers:  bucketers,
		EstKeys:    dU,
		EstCPerU:   cPerU,
		EstSize:    estSize,
		EstRuntime: runtime,
	}
}

// btreeBaseline estimates the sorted secondary B+Tree scan the CM would
// replace, including its size (entry = key + RID at ~2/3 fill).
func (a *Advisor) btreeBaseline(cols []int, nLookups int) (time.Duration, int64) {
	uKeys := make([][]byte, 0, len(a.rows))
	ucKeys := make([][]byte, 0, len(a.rows))
	var keyBytes int64
	for _, row := range a.rows {
		var uk []byte
		for _, col := range cols {
			uk = keyenc.AppendValue(uk, row[col])
		}
		ck := keyenc.EncodeRowPrefix(row, a.tbl.ClusteredCols())
		uKeys = append(uKeys, uk)
		ucKeys = append(ucKeys, append(append([]byte{}, uk...), ck...))
		keyBytes += int64(len(uk))
	}
	fcU := stats.CountFrequencies(uKeys)
	fcUC := stats.CountFrequencies(ucKeys)
	dU := stats.AdaptiveEstimate(a.total, fcU)
	dUC := stats.AdaptiveEstimate(a.total, fcUC)
	var uTups float64
	if dU > 0 {
		uTups = float64(a.total) / dU
	}
	// c_tups: tuples per clustered value.
	dc := a.du[a.tbl.ClusteredCols()[0]]
	var cTups float64
	if dc > 0 {
		cTups = float64(a.total) / dc
	}
	ps := costmodel.PairStats{
		UTups: uTups,
		CTups: cTups,
		CPerU: stats.CPerUExact(dU, dUC),
	}
	cost := costmodel.SortedIndex(a.hw, a.tstats, ps, nLookups)
	avgKeyLen := float64(12)
	if len(uKeys) > 0 {
		avgKeyLen = float64(keyBytes) / float64(len(uKeys))
	}
	size := int64(float64(a.total) * (avgKeyLen + 10) * 1.5)
	return cost, size
}

// Recommend enumerates composite CM designs for a training query
// (Section 6.2.2): every non-empty subset of the predicated columns,
// crossed with every bucketing option per column, estimated via AE, then
// filtered to the user's performance target (max slowdown vs the B+Tree
// baseline, in percent) and sorted by size. The first element is the
// recommendation; the full list reproduces Table 5.
func (a *Advisor) Recommend(q exec.Query, maxSlowdownPct float64) ([]Candidate, error) {
	cols := q.Cols()
	if len(cols) == 0 {
		return nil, fmt.Errorf("advisor: query has no predicates")
	}
	nLookups := 1
	for _, p := range q.Preds {
		nLookups *= p.NLookups()
	}

	var all []Candidate
	// Enumerate non-empty subsets of predicated columns.
	for mask := 1; mask < 1<<len(cols); mask++ {
		var subset []int
		for i := range cols {
			if mask&(1<<i) != 0 {
				subset = append(subset, cols[i])
			}
		}
		options := make([][]BucketingOption, len(subset))
		feasible := true
		for i, col := range subset {
			options[i] = a.BucketingsFor(col)
			if len(options[i]) == 0 {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		// Cross product of bucketing options.
		idx := make([]int, len(subset))
		for {
			bucketers := make([]core.Bucketer, len(subset))
			levels := make([]int, len(subset))
			for i := range subset {
				bucketers[i] = options[i][idx[i]].Bucketer
				levels[i] = options[i][idx[i]].Level
			}
			cand := a.estimateDesign(subset, bucketers, nLookups)
			cand.Levels = levels
			all = append(all, cand)

			// Advance the mixed-radix counter.
			j := 0
			for ; j < len(idx); j++ {
				idx[j]++
				if idx[j] < len(options[j]) {
					break
				}
				idx[j] = 0
			}
			if j == len(idx) {
				break
			}
		}
	}

	// Baseline: a composite secondary B+Tree over all predicated columns.
	btCost, btSize := a.btreeBaseline(cols, nLookups)
	for i := range all {
		all[i].EstBTree = btCost
		all[i].EstBTreeSz = btSize
		if btCost > 0 {
			all[i].SlowdownPct = 100 * (float64(all[i].EstRuntime) - float64(btCost)) / float64(btCost)
		}
	}

	// Keep candidates within the performance target; sort by size.
	var kept []Candidate
	for _, c := range all {
		if c.SlowdownPct <= maxSlowdownPct {
			kept = append(kept, c)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].EstSize != kept[j].EstSize {
			return kept[i].EstSize < kept[j].EstSize
		}
		return kept[i].EstRuntime < kept[j].EstRuntime
	})
	return kept, nil
}

// AllCandidates is Recommend without the performance filter, sorted by
// estimated runtime then size — the full Table 5 view.
func (a *Advisor) AllCandidates(q exec.Query) ([]Candidate, error) {
	kept, err := a.Recommend(q, math.Inf(1))
	if err != nil {
		return nil, err
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].EstRuntime != kept[j].EstRuntime {
			return kept[i].EstRuntime < kept[j].EstRuntime
		}
		return kept[i].EstSize < kept[j].EstSize
	})
	return kept, nil
}

// ParetoFront drops dominated candidates: designs that are no faster and
// no smaller than some other design. The survivors, sorted by runtime,
// trace the runtime-vs-size tradeoff curve of the paper's Table 5. The
// input must be sorted by runtime ascending (AllCandidates' order).
func ParetoFront(cands []Candidate) []Candidate {
	var out []Candidate
	bestSize := int64(math.MaxInt64)
	for _, c := range cands {
		if c.EstSize < bestSize {
			out = append(out, c)
			bestSize = c.EstSize
		}
	}
	return out
}

// SoftFD is a discovered approximate functional dependency.
type SoftFD struct {
	Determinant []int
	Dependent   int
	Strength    float64 // D(det) / D(det ∪ dep); 1 = hard FD
}

// DiscoverFDs searches single- and two-attribute determinants for soft
// FDs onto each other column, using AE estimates over the sample. Only
// FDs at least minStrength strong are returned, strongest first. This is
// the generalization of BHUNT/CORDS discovery described in Section 1:
// it handles categorical domains and multi-attribute determinants.
func (a *Advisor) DiscoverFDs(candidateCols []int, minStrength float64, includePairs bool) []SoftFD {
	var out []SoftFD
	singles := make(map[int]float64, len(candidateCols))
	keyFor := func(row value.Row, cols []int) []byte {
		var k []byte
		for _, c := range cols {
			k = keyenc.AppendValue(k, row[c])
		}
		return k
	}
	estimate := func(cols []int) float64 {
		keys := make([][]byte, 0, len(a.rows))
		for _, row := range a.rows {
			keys = append(keys, keyFor(row, cols))
		}
		return stats.AdaptiveEstimate(a.total, stats.CountFrequencies(keys))
	}
	for _, c := range candidateCols {
		singles[c] = estimate([]int{c})
	}
	consider := func(det []int, dep int) {
		dDet := estimate(det)
		// Prune near-unique determinants (CORDS' soft-key rule): a key
		// trivially determines everything.
		if dDet > 0.8*float64(a.total) {
			return
		}
		dBoth := estimate(append(append([]int{}, det...), dep))
		if dBoth <= 0 {
			return
		}
		s := dDet / dBoth
		if s >= minStrength {
			out = append(out, SoftFD{Determinant: det, Dependent: dep, Strength: s})
		}
	}
	for _, det := range candidateCols {
		for _, dep := range candidateCols {
			if det == dep {
				continue
			}
			// Prune trivial FDs: near-unique determinants determine
			// everything (CORDS' soft-key pruning rule).
			if singles[det] > 0.8*float64(a.total) {
				continue
			}
			consider([]int{det}, dep)
		}
	}
	if includePairs {
		for i := 0; i < len(candidateCols); i++ {
			for j := i + 1; j < len(candidateCols); j++ {
				d1, d2 := candidateCols[i], candidateCols[j]
				for _, dep := range candidateCols {
					if dep == d1 || dep == d2 {
						continue
					}
					consider([]int{d1, d2}, dep)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Strength > out[j].Strength })
	return out
}

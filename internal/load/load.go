// Package load is the production load generator behind cmd/cmload and
// cmbench's wire experiment: it drives the paper's Figure 6 / Table 6
// correlated workloads (point probes, CM range sweeps, aggregates)
// against a cmserver over real TCP connections — configurable up to
// thousands — in closed- or open-loop arrival, and reports latency
// percentiles (p50/p95/p99/max) with request and row throughput. It
// can also self-serve: StartServer builds the correlated-items fixture
// and a server in-process, and RunCompare measures cross-connection
// batch coalescing against per-statement execution on identical
// workloads.
package load

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/datagen"
)

// Mix weights the workload's statement classes. Zero-valued weights
// disable a class; an all-zero Mix means point probes only.
type Mix struct {
	// Point weights single-subcategory point probes
	// (SELECT price FROM items WHERE subcat = k) — the statements
	// cross-connection coalescing batches.
	Point int `json:"point"`
	// Range weights the paper's Figure 6 IN-list sweeps: 16 scattered
	// subcategories per query (datagen.CorrelatedLookup).
	Range int `json:"range"`
	// Agg weights per-category aggregates
	// (SELECT COUNT(*), AVG(price) FROM items WHERE cat = c).
	Agg int `json:"agg"`
}

// Config describes one load run against an already-listening server.
type Config struct {
	// Addr is the server's TCP address.
	Addr string
	// Conns is the number of concurrent connections (default 1).
	Conns int
	// Requests, when positive, stops the run after this many requests
	// in total across all connections.
	Requests int
	// Duration, when positive, stops the run after this much wall time;
	// with Requests it is a cap (whichever ends first). One of the two
	// must be set.
	Duration time.Duration
	// RatePerSec, when positive, switches to open-loop arrival: the
	// generator targets this aggregate request rate, spread evenly
	// across connections, instead of issuing back-to-back (closed
	// loop). Latencies are measured from actual send time (coordinated
	// omission is not corrected).
	RatePerSec int
	// ChunkRows, when positive, opts every connection into wire
	// protocol v2 with this many rows per frame.
	ChunkRows int
	// AuthToken, when non-empty, is sent as AUTH <token> first.
	AuthToken string
	// Mix weights the statement classes (zero value = point probes).
	Mix Mix
	// Seed makes the workload reproducible (0 picks seed 1).
	Seed int64
}

// Report is one load run's measured outcome. Latency fields are
// nanoseconds over the merged per-request samples.
type Report struct {
	Conns      int     `json:"conns"`
	Requests   int     `json:"requests"`
	Errors     int     `json:"errors"`
	Rows       int64   `json:"rows"`
	ElapsedNS  int64   `json:"elapsed_ns"`
	ReqPerSec  float64 `json:"req_per_sec"`
	RowsPerSec float64 `json:"rows_per_sec"`
	P50NS      int64   `json:"p50_ns"`
	P95NS      int64   `json:"p95_ns"`
	P99NS      int64   `json:"p99_ns"`
	MaxNS      int64   `json:"max_ns"`
}

// Run executes one load run and aggregates the per-connection
// measurements. A connection that fails to dial or authenticate fails
// the run; per-request statement errors (timeouts, injected faults)
// count into Report.Errors and the run continues.
func Run(cfg Config) (Report, error) {
	if cfg.Addr == "" {
		return Report{}, fmt.Errorf("load: no server address")
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	if cfg.Requests <= 0 && cfg.Duration <= 0 {
		return Report{}, fmt.Errorf("load: set Requests or Duration")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	conns := make([]*lconn, cfg.Conns)
	for i := range conns {
		c, err := dialConn(cfg)
		if err != nil {
			for _, p := range conns[:i] {
				p.close()
			}
			return Report{}, fmt.Errorf("load: conn %d: %w", i, err)
		}
		conns[i] = c
	}
	defer func() {
		for _, c := range conns {
			c.close()
		}
	}()

	var issued atomic.Int64
	deadline := time.Time{}
	if cfg.Duration > 0 {
		deadline = time.Now().Add(cfg.Duration)
	}
	var interval time.Duration
	if cfg.RatePerSec > 0 {
		interval = time.Duration(cfg.Conns) * time.Second / time.Duration(cfg.RatePerSec)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i, c := range conns {
		wg.Add(1)
		go func(i int, c *lconn) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(i)*7919))
			next := start
			if interval > 0 {
				// Stagger open-loop senders across the first interval.
				next = start.Add(interval * time.Duration(i) / time.Duration(len(conns)))
			}
			for {
				if cfg.Requests > 0 && issued.Add(1) > int64(cfg.Requests) {
					return
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					return
				}
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval)
				}
				if !c.do(statement(cfg.Mix, rng)) {
					return // connection unusable
				}
			}
		}(i, c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := Report{Conns: cfg.Conns, ElapsedNS: elapsed.Nanoseconds()}
	var lats []int64
	for _, c := range conns {
		rep.Requests += len(c.lats)
		rep.Errors += c.errors
		rep.Rows += c.rows
		lats = append(lats, c.lats...)
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	if n := len(lats); n > 0 {
		rep.P50NS = lats[n/2]
		rep.P95NS = lats[n*95/100]
		rep.P99NS = lats[n*99/100]
		rep.MaxNS = lats[n-1]
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.ReqPerSec = float64(rep.Requests) / secs
		rep.RowsPerSec = float64(rep.Rows) / secs
	}
	return rep, nil
}

// statement draws one workload statement from the mix.
func statement(m Mix, rng *rand.Rand) string {
	total := m.Point + m.Range + m.Agg
	if total <= 0 {
		m, total = Mix{Point: 1}, 1
	}
	n := rng.Intn(total)
	switch {
	case n < m.Point:
		return fmt.Sprintf("SELECT price FROM items WHERE subcat = %d", rng.Intn(datagen.CorrelatedSubcats))
	case n < m.Point+m.Range:
		subcats := datagen.CorrelatedLookup(rng.Intn(4096), 16)
		parts := make([]string, len(subcats))
		for i, s := range subcats {
			parts[i] = fmt.Sprintf("%d", s)
		}
		return fmt.Sprintf("SELECT price FROM items WHERE subcat IN (%s)", strings.Join(parts, ", "))
	default:
		return fmt.Sprintf("SELECT COUNT(*), AVG(price) FROM items WHERE cat = %d", rng.Intn(datagen.CorrelatedCats))
	}
}

// lconn is one load connection with its local measurements (merged
// after the run; only its own goroutine touches them).
type lconn struct {
	conn   net.Conn
	r      *bufio.Reader
	chunk  int
	lats   []int64
	rows   int64
	errors int
}

// wireResult is the minimal client-side mirror of the server's
// per-statement response.
type wireResult struct {
	RowCount int    `json:"row_count"`
	Error    string `json:"error"`
}

// wireResponse mirrors one v1 response line.
type wireResponse struct {
	Results []wireResult `json:"results"`
	Error   string       `json:"error"`
}

// wireFrame mirrors one v2 frame line; chunk rows stay raw (the load
// generator counts them, it does not decode cells).
type wireFrame struct {
	Chunk *struct {
		Rows []json.RawMessage `json:"rows"`
	} `json:"chunk"`
	Done *wireResponse `json:"done"`
}

// dialConn connects, authenticates and opts into chunked mode per cfg.
func dialConn(cfg Config) (*lconn, error) {
	conn, err := net.Dial("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	c := &lconn{conn: conn, r: bufio.NewReaderSize(conn, 16<<10), chunk: cfg.ChunkRows}
	if cfg.AuthToken != "" {
		if err := c.expectOK("AUTH " + cfg.AuthToken); err != nil {
			conn.Close()
			return nil, fmt.Errorf("auth: %w", err)
		}
	}
	if cfg.ChunkRows > 0 {
		if err := c.expectOK(fmt.Sprintf("SET wire_chunk_rows = %d", cfg.ChunkRows)); err != nil {
			conn.Close()
			return nil, fmt.Errorf("chunk setup: %w", err)
		}
	}
	return c, nil
}

// expectOK sends one raw line and requires a clean v1 response.
func (c *lconn) expectOK(line string) error {
	if _, err := c.conn.Write([]byte(line + "\n")); err != nil {
		return err
	}
	raw, err := c.r.ReadBytes('\n')
	if err != nil {
		return err
	}
	var resp wireResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return err
	}
	if resp.Error != "" {
		return fmt.Errorf("%s", resp.Error)
	}
	for _, r := range resp.Results {
		if r.Error != "" {
			return fmt.Errorf("%s", r.Error)
		}
	}
	return nil
}

// do sends one statement and consumes its full response, recording the
// request latency and row count. It reports false when the connection
// is no longer usable.
func (c *lconn) do(sql string) bool {
	start := time.Now()
	if _, err := c.conn.Write([]byte(sql + "\n")); err != nil {
		c.errors++
		return false
	}
	rows, ok, stmtErr := c.readResult()
	if !ok {
		c.errors++
		return false
	}
	c.lats = append(c.lats, time.Since(start).Nanoseconds())
	c.rows += rows
	if stmtErr {
		c.errors++
	}
	return true
}

// readResult consumes one response — a v1 line or a v2 frame stream —
// returning the row count, connection liveness, and whether any
// statement reported an error.
func (c *lconn) readResult() (rows int64, ok, stmtErr bool) {
	if c.chunk <= 0 {
		raw, err := c.r.ReadBytes('\n')
		if err != nil {
			return 0, false, false
		}
		var resp wireResponse
		if err := json.Unmarshal(raw, &resp); err != nil {
			return 0, false, false
		}
		if resp.Error != "" {
			return 0, true, true
		}
		for _, r := range resp.Results {
			rows += int64(r.RowCount)
			if r.Error != "" {
				stmtErr = true
			}
		}
		return rows, true, stmtErr
	}
	for {
		raw, err := c.r.ReadBytes('\n')
		if err != nil {
			return rows, false, false
		}
		var f wireFrame
		if err := json.Unmarshal(raw, &f); err != nil {
			return rows, false, false
		}
		switch {
		case f.Chunk != nil:
			rows += int64(len(f.Chunk.Rows))
		case f.Done != nil:
			if f.Done.Error != "" {
				return rows, true, true
			}
			for _, r := range f.Done.Results {
				if r.Error != "" {
					stmtErr = true
				}
			}
			return rows, true, stmtErr
		default:
			return rows, false, false
		}
	}
}

// close shuts the connection down.
func (c *lconn) close() {
	if c.conn != nil {
		c.conn.Close()
	}
}

package load

import (
	"fmt"
	"net"
	"time"

	"repro"
	"repro/internal/datagen"
	"repro/internal/server"
)

// ServerConfig describes a self-served measurement server: the
// correlated-items fixture (datagen.CorrelatedItems, with a secondary
// index and a correlation map on subcat — the Figure 6 physical
// design) behind a TCP server on a loopback port.
type ServerConfig struct {
	// Rows sizes the items table (default 60000, the benchmark suite's
	// standard scale — about 1250 heap pages).
	Rows int
	// Workers is the DB's scan worker pool (default GOMAXPROCS).
	Workers int
	// PoolPages sizes the buffer pool (default 256: far smaller than
	// the table, so probes miss and pay simulated I/O like a working
	// set that does not fit in memory).
	PoolPages int
	// IOWaitScale makes simulated I/O really block the calling
	// goroutine at 1/scale of the virtual cost (default 10: a 5.5ms
	// seek sleeps 0.55ms). This is what makes concurrency observable:
	// overlapped probes overlap their sleeps.
	IOWaitScale int
	// Gate bounds request lines executing at once
	// (Config.MaxConcurrentStmts; default 0 = unbounded). Production
	// servers bound statement concurrency because one statement may
	// fan out across the whole worker pool; a coalesced batch takes
	// one slot — which is exactly where coalescing pays.
	Gate int
	// StatementTimeout is the per-statement deadline (0 = none).
	StatementTimeout time.Duration
	// AuthToken, Coalesce, CoalesceWindow, CoalesceMax and
	// CoalesceStripes pass through to server.Config.
	AuthToken       string
	Coalesce        bool
	CoalesceWindow  time.Duration
	CoalesceMax     int
	CoalesceStripes int
}

// Fixture is one self-served server: the database, the listening
// address and the server handle. Close shuts both down.
type Fixture struct {
	DB   *repro.DB
	Srv  *server.Server
	Addr string
}

// StartServer builds the correlated-items database, starts a server
// over it on a loopback port and returns the running fixture.
func StartServer(cfg ServerConfig) (*Fixture, error) {
	if cfg.Rows <= 0 {
		cfg.Rows = 60000
	}
	if cfg.PoolPages <= 0 {
		cfg.PoolPages = 256
	}
	if cfg.IOWaitScale <= 0 {
		cfg.IOWaitScale = 10
	}
	db := repro.Open(repro.Config{
		Workers:          cfg.Workers,
		BufferPoolPages:  cfg.PoolPages,
		IOWaitScale:      cfg.IOWaitScale,
		StatementTimeout: cfg.StatementTimeout,
	})
	if err := loadItems(db, cfg.Rows); err != nil {
		return nil, err
	}
	srv := server.New(db, server.Config{
		MaxConcurrentStmts: cfg.Gate,
		AuthToken:          cfg.AuthToken,
		WriteTimeout:       30 * time.Second,
		Coalesce:           cfg.Coalesce,
		CoalesceWindow:     cfg.CoalesceWindow,
		CoalesceMax:        cfg.CoalesceMax,
		CoalesceStripes:    cfg.CoalesceStripes,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln)
	return &Fixture{DB: db, Srv: srv, Addr: ln.Addr().String()}, nil
}

// Close stops the fixture's server (cutting any live connections).
func (f *Fixture) Close() { f.Srv.Close() }

// loadItems builds the correlated-items table with the benchmark
// suite's standard physical design.
func loadItems(db *repro.DB, rows int) error {
	tbl, err := db.CreateTable(repro.TableSpec{
		Name: "items",
		Columns: []repro.Column{
			{Name: "cat", Kind: repro.Int},
			{Name: "subcat", Kind: repro.Int},
			{Name: "price", Kind: repro.Int},
			{Name: "desc", Kind: repro.String},
		},
		ClusteredBy: []string{"cat"},
		BucketPages: 1,
	})
	if err != nil {
		return fmt.Errorf("load: create items: %w", err)
	}
	items := datagen.CorrelatedItems(rows)
	data := make([]repro.Row, len(items))
	for i, it := range items {
		data[i] = repro.Row{
			repro.IntVal(it.Cat), repro.IntVal(it.Subcat),
			repro.IntVal(it.Price), repro.StringVal(it.Desc),
		}
	}
	if err := tbl.Load(data); err != nil {
		return fmt.Errorf("load: load items: %w", err)
	}
	if err := tbl.CreateIndex("ix_subcat", "subcat"); err != nil {
		return fmt.Errorf("load: index: %w", err)
	}
	if err := tbl.CreateCM("subcat_cm", repro.CMColumn{Name: "subcat"}); err != nil {
		return fmt.Errorf("load: cm: %w", err)
	}
	return nil
}

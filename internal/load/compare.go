package load

import (
	"fmt"
	"time"
)

// CompareConfig describes one coalescing A/B measurement: the same
// workload driven twice against identical self-served servers, first
// with cross-connection coalescing off, then on.
type CompareConfig struct {
	// Conns and Requests size the workload (defaults 64 and 3000).
	Conns    int
	Requests int
	// Mix weights the statement classes (zero value = point probes,
	// the class coalescing targets).
	Mix Mix
	// ChunkRows, when positive, runs both legs in chunked mode.
	ChunkRows int
	// Seed makes the workload reproducible (0 picks seed 1).
	Seed int64
	// Server configures both legs' servers; its Coalesce field is
	// overridden per leg. A zero value takes the measurement defaults:
	// 16 workers, 128 pool pages, IOWaitScale 5, statement gate 4 —
	// an I/O-bound server whose statement gate is far below the worker
	// pool, the production shape where coalescing pays (tiny point
	// probes cannot use a statement's pool-wide fan-out, so per-
	// statement execution wastes the pool; a coalesced batch fills it
	// under one gate slot).
	Server ServerConfig
}

// CompareReport carries both legs and the coalescing speedup in
// aggregate request throughput.
type CompareReport struct {
	Off     Report  `json:"off"`
	On      Report  `json:"on"`
	Speedup float64 `json:"speedup"`
}

// RunCompare measures cross-connection coalescing: one leg with the
// batcher off, one with it on, identical workload and server shape,
// speedup = on.req_per_sec / off.req_per_sec.
func RunCompare(cfg CompareConfig) (CompareReport, error) {
	if cfg.Conns <= 0 {
		cfg.Conns = 64
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 3000
	}
	srv := cfg.Server
	if srv.Workers == 0 {
		srv.Workers = 16
	}
	if srv.Gate == 0 {
		srv.Gate = 4
	}
	if srv.PoolPages == 0 {
		srv.PoolPages = 128
	}
	if srv.IOWaitScale == 0 {
		srv.IOWaitScale = 5
	}
	var rep CompareReport
	for _, leg := range []struct {
		coalesce bool
		out      *Report
	}{{false, &rep.Off}, {true, &rep.On}} {
		sc := srv
		sc.Coalesce = leg.coalesce
		f, err := StartServer(sc)
		if err != nil {
			return rep, err
		}
		r, err := Run(Config{
			Addr:      f.Addr,
			Conns:     cfg.Conns,
			Requests:  cfg.Requests,
			ChunkRows: cfg.ChunkRows,
			Mix:       cfg.Mix,
			Seed:      cfg.Seed,
			Duration:  5 * time.Minute, // backstop; Requests ends the leg
		})
		f.Close()
		if err != nil {
			return rep, fmt.Errorf("load: coalesce=%v leg: %w", leg.coalesce, err)
		}
		*leg.out = r
	}
	if rep.Off.ReqPerSec > 0 {
		rep.Speedup = rep.On.ReqPerSec / rep.Off.ReqPerSec
	}
	return rep, nil
}

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"repro"
)

// This file is the wire-protocol-v2 streaming engine: a chunk pump
// that turns the facade's RowStreamer callbacks into bounded,
// backpressured chunk frames on the connection. The session goroutine
// produces frames (it is the one running ExecScriptStreamCtx); a
// dedicated writer goroutine drains them onto the socket with
// per-frame write deadlines. A full frame queue blocks the producing
// statement at chunk granularity — real backpressure, accounted into
// server.backpressure_waits_ns — until the client reads, the statement
// deadline fires, or the connection dies.

// frameSlack reserves room inside maxLineBytes for the chunk frame's
// JSON envelope ({"chunk":{"stmt":...,"columns":[...],"rows":[...]}})
// and per-row separators, so a frame flushed just under the row-bytes
// budget still encodes under the line cap.
const frameSlack = 64 << 10

// chunkPump adapts one chunked request: the RowStreamer callbacks
// accumulate encoded rows into the current frame, flushing at the
// session's wire_chunk_rows count or the frame byte budget. All fields
// except the frames channel are touched only by the session goroutine.
type chunkPump struct {
	s         *Server
	reqCtx    context.Context // request context: connection + write-failure cancel
	cancel    context.CancelFunc
	frames    chan []byte
	writerErr chan error // writer's exit status, buffered 1
	chunkRows int

	stmtCtx  context.Context // current statement's effective context
	stmt     int
	columns  []string // pending header for the current statement's first frame
	rows     []json.RawMessage
	rowBytes int
	chunks   map[int]int   // statement -> frames sent
	rowErr   map[int]error // statement -> framing error (row too large)
	waited   time.Duration // total backpressure block time this request
}

// newChunkPump wires a pump and starts its writer goroutine. cancel
// must cancel the request context; the writer invokes it when a write
// fails or times out, which aborts the producing statement.
func (s *Server) newChunkPump(reqCtx context.Context, cancel context.CancelFunc, conn net.Conn, chunkRows int) *chunkPump {
	p := &chunkPump{
		s:         s,
		reqCtx:    reqCtx,
		cancel:    cancel,
		frames:    make(chan []byte, s.chunkQueue),
		writerErr: make(chan error, 1),
		chunkRows: chunkRows,
		chunks:    make(map[int]int),
		rowErr:    make(map[int]error),
	}
	go p.writeLoop(conn)
	return p
}

// writeLoop drains frames onto the socket, one line per frame, flushed
// immediately so the client streams. On a write error it cancels the
// request — aborting the producing statement — and keeps draining so
// the producer can never block forever on a dead connection.
func (p *chunkPump) writeLoop(conn net.Conn) {
	var err error
	for line := range p.frames {
		if err != nil {
			continue // drain after failure
		}
		if p.s.writeTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(p.s.writeTimeout))
		}
		if _, werr := conn.Write(append(line, '\n')); werr != nil {
			err = werr
			p.cancel()
		}
	}
	if p.s.writeTimeout > 0 {
		conn.SetWriteDeadline(time.Time{})
	}
	p.writerErr <- err
}

// streamer returns the RowStreamer that feeds this pump.
func (p *chunkPump) streamer() repro.RowStreamer {
	return repro.RowStreamer{
		Ctx: func(stmt int, ctx context.Context) {
			p.stmtCtx = ctx
		},
		Begin: func(stmt int, columns []string) {
			p.stmt = stmt
			p.columns = columns
			p.rows = p.rows[:0]
			p.rowBytes = 0
		},
		Row: func(stmt int, row repro.Row) bool {
			b, err := json.Marshal(encodeRow(row))
			if err != nil { // unreachable for engine value kinds
				p.rowErr[stmt] = fmt.Errorf("server: row encoding failed: %v", err)
				return false
			}
			if len(b) > maxLineBytes-frameSlack {
				p.rowErr[stmt] = fmt.Errorf(
					"server: statement %d produced a %d-byte row, past the %d-byte frame cap",
					stmt+1, len(b), maxLineBytes)
				return false
			}
			if p.rowBytes > 0 && p.rowBytes+len(b) > maxLineBytes-frameSlack {
				if !p.flush() {
					return false
				}
			}
			p.rows = append(p.rows, b)
			p.rowBytes += len(b) + 1
			if len(p.rows) >= p.chunkRows {
				return p.flush()
			}
			return true
		},
		End: func(stmt int) {
			if len(p.rows) > 0 && p.rowErr[stmt] == nil {
				p.flush()
			}
			p.stmtCtx = nil
		},
	}
}

// flush frames the accumulated rows and sends them to the writer,
// blocking — with backpressure accounting — when the queue is full.
// It reports false when the statement's context died while blocked,
// which aborts the statement.
func (p *chunkPump) flush() bool {
	cf := &ChunkFrame{Stmt: p.stmt, Columns: p.columns, Rows: p.rows}
	line, err := json.Marshal(Frame{Chunk: cf})
	if err != nil { // unreachable: inputs are RawMessage and strings
		p.rowErr[p.stmt] = fmt.Errorf("server: chunk encoding failed: %v", err)
		return false
	}
	p.columns = nil
	p.rows = nil
	p.rowBytes = 0
	if !p.send(line) {
		return false
	}
	p.chunks[p.stmt]++
	p.s.db.RecordStreamChunk()
	return true
}

// send queues one frame line for the writer. The fast path never
// blocks; when the queue is full it blocks under the statement's
// context (falling back to the request context) and records the wait
// as backpressure.
func (p *chunkPump) send(line []byte) bool {
	select {
	case p.frames <- line:
		return true
	default:
	}
	ctx := p.stmtCtx
	if ctx == nil {
		ctx = p.reqCtx
	}
	start := time.Now()
	defer func() {
		d := time.Since(start)
		p.waited += d
		p.s.db.RecordBackpressureWait(d)
	}()
	select {
	case p.frames <- line:
		return true
	case <-ctx.Done():
		return false
	}
}

// finish sends the done frame, closes the queue and waits for the
// writer to drain, returning the writer's error (nil when every frame
// — including the summary — reached the socket).
func (p *chunkPump) finish(done Response) error {
	line, err := json.Marshal(Frame{Done: &done})
	if err != nil {
		line, _ = json.Marshal(Frame{Done: &Response{
			Error: "server: response encoding failed: " + err.Error()}})
	}
	p.frames <- line // writer drains even after failure; never blocks forever
	close(p.frames)
	return <-p.writerErr
}

// handleChunked executes one request line's SQL in chunked mode: rows
// stream through the pump as the executor produces them, then the
// summary frame reports per-statement outcomes with rows omitted. It
// returns false when the connection is no longer usable (a frame write
// failed, or the connection died while queued at the statement gate).
func (s *Server) handleChunked(connCtx context.Context, conn net.Conn, sqlText string, sess int64, chunkRows int, st *sessionStats) bool {
	if s.gate != nil {
		select {
		case s.gate <- struct{}{}:
			defer func() { <-s.gate }()
		case <-connCtx.Done():
			return false
		}
	}
	reqCtx, cancel := context.WithCancel(connCtx)
	defer cancel()
	p := s.newChunkPump(reqCtx, cancel, conn, chunkRows)
	results, err := s.db.ExecScriptStreamCtx(reqCtx, sqlText, p.streamer())
	if err != nil {
		return p.finish(Response{Error: err.Error()}) == nil
	}
	resp := Response{Results: make([]StmtResult, len(results))}
	for i, r := range results {
		if fe := p.rowErr[i]; fe != nil {
			// A framing failure (row past the frame cap) surfaced to the
			// facade as an abort; report the real reason instead.
			r.Err = fe
		}
		s.accountStmt(sess, i, r, st)
		sr := stmtResult(r)
		sr.Rows = nil // rows went out in chunk frames
		sr.Chunks = p.chunks[i]
		resp.Results[i] = sr
	}
	return p.finish(resp) == nil
}

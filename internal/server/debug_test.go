package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro"
)

// TestStartDebugOff pins the security default: an empty -debug-addr
// starts nothing, so a deployment that omits the flag has no pprof or
// metrics HTTP surface at all.
func TestStartDebugOff(t *testing.T) {
	db := repro.Open(repro.Config{})
	ln, err := StartDebug("", db)
	if err != nil {
		t.Fatalf("StartDebug(\"\"): %v", err)
	}
	if ln != nil {
		ln.Close()
		t.Fatal("StartDebug(\"\") opened a listener; the debug surface must stay off by default")
	}
}

// TestDebugEndpoints boots the debug listener and checks each route:
// /debug/metrics serves the DB snapshot as a JSON object with ?like
// filtering, /debug/vars serves expvar, /debug/pprof/ serves the
// profile index.
func TestDebugEndpoints(t *testing.T) {
	db := repro.Open(repro.Config{})
	if _, err := db.Exec("CREATE TABLE kv (k INT, v STRING) CLUSTERED BY (k)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("LOAD INTO kv VALUES (1, 'one'), (2, 'two')"); err != nil {
		t.Fatal(err)
	}
	ln, err := StartDebug("127.0.0.1:0", db)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	base := "http://" + ln.Addr().String()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s body: %v", path, err)
		}
		return resp.StatusCode, body
	}

	// The full snapshot carries every subsystem's counters.
	code, body := get("/debug/metrics")
	if code != http.StatusOK {
		t.Fatalf("/debug/metrics status %d", code)
	}
	var all map[string]int64
	if err := json.Unmarshal(body, &all); err != nil {
		t.Fatalf("/debug/metrics is not a JSON object: %v\n%s", err, body)
	}
	for _, name := range []string{"disk.reads", "pool.hits", "wal.appends", "table.rows_written"} {
		if _, ok := all[name]; !ok {
			t.Errorf("/debug/metrics missing %q", name)
		}
	}
	if all["table.rows_written"] != 2 {
		t.Errorf("table.rows_written = %d, want 2", all["table.rows_written"])
	}

	// ?like narrows with SQL-LIKE semantics, same as SHOW METRICS LIKE.
	code, body = get("/debug/metrics?like=pool.%25")
	if code != http.StatusOK {
		t.Fatalf("/debug/metrics?like status %d", code)
	}
	var pool map[string]int64
	if err := json.Unmarshal(body, &pool); err != nil {
		t.Fatal(err)
	}
	if len(pool) == 0 {
		t.Fatal("like=pool.% matched nothing")
	}
	for name := range pool {
		if !strings.HasPrefix(name, "pool.") {
			t.Errorf("like=pool.%% leaked %q", name)
		}
	}

	if code, body = get("/debug/vars"); code != http.StatusOK || !strings.Contains(string(body), "memstats") {
		t.Errorf("/debug/vars status %d, memstats present %v", code, strings.Contains(string(body), "memstats"))
	}
	if code, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}
}

// logCapture is a goroutine-safe Logf sink.
type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (lc *logCapture) logf(format string, args ...any) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.lines = append(lc.lines, fmt.Sprintf(format, args...))
}

func (lc *logCapture) slowLines() []string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	var out []string
	for _, l := range lc.lines {
		if strings.Contains(l, "slow query") {
			out = append(out, l)
		}
	}
	return out
}

// TestSlowQueryLog drives the slow-query gate deterministically: with
// IOWaitScale on, a cold scan pays real sleep per simulated seek, so a
// 1 ms threshold always fires on cold I/O and never on a metadata
// statement. The logged line must carry the structured fields and a
// plan summary.
func TestSlowQueryLog(t *testing.T) {
	db := repro.Open(repro.Config{IOWaitScale: 1})
	if _, err := db.Exec("CREATE TABLE items (k INT, grp INT) CLUSTERED BY (k)"); err != nil {
		t.Fatal(err)
	}
	var load strings.Builder
	load.WriteString("LOAD INTO items VALUES ")
	for i := 0; i < 2000; i++ {
		if i > 0 {
			load.WriteString(", ")
		}
		fmt.Fprintf(&load, "(%d, %d)", i, i%10)
	}
	if _, err := db.Exec(load.String()); err != nil {
		t.Fatal(err)
	}

	var lc logCapture
	srv := New(db, Config{Logf: lc.logf, SlowQueryMs: 1})
	var st sessionStats

	// Metadata statements stay under any sane threshold: no slow line.
	resp := srv.handle(nil, "SHOW TABLES", 7, &st)
	if resp.Error != "" || resp.Results[0].Error != "" {
		t.Fatalf("show tables: %+v", resp)
	}
	if lines := lc.slowLines(); len(lines) != 0 {
		t.Fatalf("SHOW TABLES logged as slow: %q", lines)
	}

	// A cold scan pays at least one real-time seek (>= 1 ms): logged.
	if err := db.ColdCache(); err != nil {
		t.Fatal(err)
	}
	resp = srv.handle(nil, "SELECT count(*) FROM items WHERE grp = 3", 7, &st)
	if resp.Error != "" || resp.Results[0].Error != "" {
		t.Fatalf("scan: %+v", resp)
	}
	lines := lc.slowLines()
	if len(lines) != 1 {
		t.Fatalf("slow lines = %q, want exactly one", lines)
	}
	line := lines[0]
	for _, want := range []string{
		"session=7", "stmt=1", "elapsed_ms=", "rows=1", "pages=",
		`sql="SELECT count(*) FROM items WHERE grp = 3"`,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("slow line %q missing %q", line, want)
		}
	}
	// The plan summary is derived by explaining the statement.
	if !strings.Contains(line, `plan="`) || strings.Contains(line, `plan=""`) {
		t.Errorf("slow line %q lacks a plan summary", line)
	}

	// A server without SlowQueryMs never logs, however slow the query.
	var quiet logCapture
	off := New(db, Config{Logf: quiet.logf})
	if err := db.ColdCache(); err != nil {
		t.Fatal(err)
	}
	off.handle(nil, "SELECT count(*) FROM items", 1, &st)
	if lines := quiet.slowLines(); len(lines) != 0 {
		t.Fatalf("slow log fired with the feature off: %q", lines)
	}
}

// TestWireMeasurements asserts every statement result on the wire
// carries its execution measurements: wall time, result row count and
// the disk page-read delta.
func TestWireMeasurements(t *testing.T) {
	db, addr, stop := startServer(t)
	defer stop()
	c := dial(t, addr)
	defer c.close()

	mustOK(t, c.roundTrip(t, "CREATE TABLE m (k INT, v STRING) CLUSTERED BY (k)"))
	var load strings.Builder
	load.WriteString("LOAD INTO m VALUES ")
	for i := 0; i < 500; i++ {
		if i > 0 {
			load.WriteString(", ")
		}
		fmt.Fprintf(&load, "(%d, 'v%d')", i, i)
	}
	mustOK(t, c.roundTrip(t, load.String()))
	if err := db.ColdCache(); err != nil {
		t.Fatal(err)
	}

	resp := mustOK(t, c.roundTrip(t, "SELECT v FROM m WHERE k >= 100"))
	r := resp.Results[0]
	if r.ElapsedNS <= 0 {
		t.Errorf("elapsed_ns = %d, want > 0", r.ElapsedNS)
	}
	if r.RowCount != len(r.Rows) || r.RowCount != 400 {
		t.Errorf("row_count = %d with %d rows, want 400", r.RowCount, len(r.Rows))
	}
	if r.PagesRead == 0 {
		t.Error("pages_read = 0 after ColdCache; the scan must have hit disk")
	}

	// Errored statements still report their wall time.
	resp = c.roundTrip(t, "SELECT * FROM ghosts")
	if resp.Results[0].Error == "" {
		t.Fatal("expected a per-statement error")
	}
	if resp.Results[0].ElapsedNS <= 0 {
		t.Errorf("errored statement elapsed_ns = %d, want > 0", resp.Results[0].ElapsedNS)
	}
}

// Resilience tests: admission control rejects connections over the
// cap with a clean wire-level error, a client disconnect cancels the
// statement it left running, and Shutdown drains in-flight work
// without leaking goroutines.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro"
)

// startServerCfg is startServer with explicit DB and server configs.
func startServerCfg(t *testing.T, dbCfg repro.Config, cfg Config) (*repro.DB, *Server, string, func()) {
	t.Helper()
	db := repro.Open(dbCfg)
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	srv := New(db, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	stopped := false
	return db, srv, ln.Addr().String(), func() {
		if stopped {
			return
		}
		stopped = true
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
}

// loadWideTable creates a table big enough that a cold scan with real
// I/O waits takes tens of milliseconds — room to disconnect or drain
// mid-statement.
func loadWideTable(t *testing.T, db *repro.DB, rows int) {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("CREATE TABLE wide (c INT, u INT) CLUSTERED BY (c) BUCKET PAGES 1; LOAD INTO wide VALUES ")
	for i := 0; i < rows; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d)", i, i%50)
	}
	results, err := db.ExecScript(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
}

// slowDiskCfg makes every page access cost ~2ms of real wait: a
// 15-page scan spans tens of milliseconds with a cancellation check
// after every page, so mid-flight disconnects and drains land inside
// the statement reliably even under the race detector.
func slowDiskCfg() repro.Config {
	return repro.Config{
		IOWaitScale: 1,
		Workers:     1,
		SeqPageCost: 2 * time.Millisecond,
	}
}

// metric reads one counter from the DB's registry.
func metric(t *testing.T, db *repro.DB, name string) int64 {
	t.Helper()
	ms := db.Metrics(name)
	if len(ms) != 1 {
		t.Fatalf("Metrics(%q) returned %d entries", name, len(ms))
	}
	return ms[0].Value
}

// TestAdmissionControl caps the server at one connection and asserts
// the second dialer is turned away with the ErrServerBusy message as a
// well-formed response line, counted in server.rejected, while the
// admitted connection keeps working.
func TestAdmissionControl(t *testing.T) {
	db, _, addr, stop := startServerCfg(t, repro.Config{}, Config{MaxConns: 1})
	defer stop()

	first := dial(t, addr)
	defer first.close()
	mustOK(t, first.roundTrip(t, "SHOW TABLES")) // admitted and serving

	second := dial(t, addr)
	defer second.close()
	raw, err := bufio.NewReader(second.conn).ReadBytes('\n')
	if err != nil {
		t.Fatalf("rejected connection: reading the busy line: %v", err)
	}
	var resp Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("busy line %q is not a Response: %v", raw, err)
	}
	if !strings.Contains(resp.Error, "too many connections") {
		t.Fatalf("busy response error = %q, want the ErrServerBusy text", resp.Error)
	}
	if _, err := bufio.NewReader(second.conn).ReadBytes('\n'); err == nil {
		t.Fatal("rejected connection was not closed after the busy line")
	}
	if got := metric(t, db, "server.rejected"); got != 1 {
		t.Fatalf("server.rejected = %d, want 1", got)
	}

	// The admitted session is unaffected, and once it leaves a new
	// dialer gets its slot.
	mustOK(t, first.roundTrip(t, "SHOW TABLES"))
	first.close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		third := dial(t, addr)
		resp, ok := tryRoundTrip(third, "SHOW TABLES")
		third.close()
		if ok && resp.Error == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slot was not released after the first connection closed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// tryRoundTrip is roundTrip without test fatality, for polling loops.
func tryRoundTrip(c *client, line string) (Response, bool) {
	if _, err := fmt.Fprintf(c.conn, "%s\n", line); err != nil {
		return Response{}, false
	}
	raw, err := c.r.ReadBytes('\n')
	if err != nil {
		return Response{}, false
	}
	var resp Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		return Response{}, false
	}
	return resp, true
}

// TestDisconnectCancelsStatement starts a slow cold scan (real I/O
// waits on), drops the client mid-flight and asserts the server
// cancels the running statement: query.cancelled rises and the engine
// serves the next client immediately.
func TestDisconnectCancelsStatement(t *testing.T) {
	db, _, addr, stop := startServerCfg(t, slowDiskCfg(), Config{})
	defer stop()
	loadWideTable(t, db, 6000)
	if err := db.ColdCache(); err != nil {
		t.Fatal(err)
	}

	c := dial(t, addr)
	if _, err := fmt.Fprintf(c.conn, "SELECT count(*) FROM wide WHERE u = 3\n"); err != nil {
		t.Fatal(err)
	}
	// Give the statement time to start reading, then vanish.
	time.Sleep(5 * time.Millisecond)
	c.close()

	deadline := time.Now().Add(5 * time.Second)
	for metric(t, db, "query.cancelled") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("query.cancelled never rose after the client disconnected")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The engine took no damage: a fresh client gets exact answers.
	c2 := dial(t, addr)
	defer c2.close()
	resp := mustOK(t, c2.roundTrip(t, "SELECT count(*) FROM wide WHERE u = 3"))
	if len(resp.Results) != 1 || len(resp.Results[0].Rows) != 1 {
		t.Fatalf("follow-up query shape: %+v", resp.Results)
	}
}

// TestShutdownDrains issues a statement, calls Shutdown while it runs,
// and asserts the in-flight statement still gets its full response
// before the connection closes — and that the server's goroutines are
// gone afterwards.
func TestShutdownDrains(t *testing.T) {
	before := runtime.NumGoroutine()
	db, srv, addr, _ := startServerCfg(t, slowDiskCfg(), Config{})
	loadWideTable(t, db, 6000)
	if err := db.ColdCache(); err != nil {
		t.Fatal(err)
	}

	c := dial(t, addr)
	defer c.close()
	if _, err := fmt.Fprintf(c.conn, "SELECT count(*) FROM wide WHERE u = 3\n"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // let the statement get going

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The busy session's response arrived complete despite the drain.
	raw, err := c.r.ReadBytes('\n')
	if err != nil {
		t.Fatalf("draining cut off the in-flight response: %v", err)
	}
	var resp Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("drained response %q: %v", raw, err)
	}
	if resp.Error != "" || len(resp.Results) != 1 || resp.Results[0].Error != "" {
		t.Fatalf("drained response: %+v", resp)
	}
	// And the server is really gone: new dials fail.
	if conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		conn.Close()
		t.Fatal("server still accepting after Shutdown")
	}

	// No goroutine leaks: everything the server spawned has exited.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after shutdown", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStatementGate bounds concurrent statements to one and asserts a
// second session's statement still completes (it queues at the gate
// rather than erroring) while both sessions stay correct.
func TestStatementGate(t *testing.T) {
	db, _, addr, stop := startServerCfg(t, repro.Config{}, Config{MaxConcurrentStmts: 1})
	defer stop()
	loadWideTable(t, db, 2000)

	a, b := dial(t, addr), dial(t, addr)
	defer a.close()
	defer b.close()
	done := make(chan Response, 2)
	for _, c := range []*client{a, b} {
		go func(c *client) {
			resp, _ := tryRoundTrip(c, "SELECT count(*) FROM wide WHERE u = 3")
			done <- resp
		}(c)
	}
	for i := 0; i < 2; i++ {
		select {
		case resp := <-done:
			if resp.Error != "" || len(resp.Results) != 1 || resp.Results[0].Error != "" {
				t.Fatalf("gated statement %d: %+v", i, resp)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("gated statements deadlocked")
		}
	}
}

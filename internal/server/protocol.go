// Package server is the engine's network front door: a line-oriented
// TCP protocol carrying SQL in and JSON results out, multiplexing
// per-connection sessions onto one shared repro.DB. Reads from
// concurrent sessions run in parallel under the engine's table latches;
// a line carrying several ';'-separated SELECTs additionally fans out
// across the worker pool through DB.ExecScript / SelectMany.
package server

import (
	"encoding/json"

	"repro"
)

// The wire protocol, newline-delimited in both directions:
//
//	client -> server: one line per request, either raw SQL (which may
//	  contain several ';'-separated statements) or a JSON object
//	  {"sql": "..."} — lines whose first non-blank byte is '{' are JSON.
//	client <- server: exactly one JSON line per request:
//	  {"results": [stmtResult, ...], "error": "..."}
//	where "error" is set only when the whole line failed to parse (then
//	"results" is absent), and each stmtResult is
//	  {"columns": [...], "rows": [[...]], "message": "...",
//	   "affected": N, "error": "...",
//	   "elapsed_ns": N, "row_count": N, "pages_read": N}
//	with "error" set when that statement failed. The three measurement
//	fields report the statement's server-side wall time, result row
//	count and disk page-read delta (cmsql's \timing prints them; each
//	statement of a batched SELECT group reports the group's time and
//	pages). Ints arrive as JSON numbers, floats as numbers, strings as
//	strings. A statement whose encoded result would exceed the 4 MiB
//	line cap answers with a per-statement "error" naming the statement
//	and its row count; the session stays alive and later statements
//	still run.
//
// Wire protocol v2 — chunked results. A session opts in with
//
//	SET wire_chunk_rows = N
//
// (a server-side session setting, answered with a plain v1 response;
// N = 0 switches back to buffered mode). While it is set, every
// request is answered by a stream of JSON lines instead of one:
//
//	{"chunk": {"stmt": I, "columns": [...], "rows": [[...], ...]}}  (0+ times)
//	{"done":  {"results": [stmtResult, ...], "error": "..."}}       (exactly once)
//
// Chunk frames carry up to N result rows of statement I (0-based
// within the request line); "columns" appears only on a statement's
// first frame. Frames for a statement arrive in row order and rows
// are encoded exactly as buffered mode encodes them, so the
// concatenation of a statement's chunk rows is byte-identical to the
// "rows" array a buffered response would have carried. The "done"
// frame is the v1 response with each streamed statement's "rows"
// omitted ("row_count" still counts them, and "chunks" reports how
// many frames carried them); its "error" field covers whole-line
// failures exactly as in v1. The 4 MiB line cap still bounds every
// frame — it is a framing limit now, not a result-size limit, so a
// streamed result of any size completes as long as each single row
// fits in a frame. Statements inside one chunked request run strictly
// in order (no intra-line SELECT batching: rows must leave in
// statement order).
//
// Authentication. When the server is started with a token, the first
// line of every connection must be
//
//	AUTH <token>
//
// answered with {"results":[{"message":"AUTH ok"}]} on success;
// anything else is answered with one JSON error line and the
// connection closes. Servers without a token accept and answer an
// AUTH line the same way, so clients can always send one.

// Request is the JSON form of one client request line.
type Request struct {
	SQL string `json:"sql"`
}

// StmtResult is one statement's outcome on the wire.
type StmtResult struct {
	Columns  []string `json:"columns,omitempty"`
	Rows     [][]any  `json:"rows,omitempty"`
	Message  string   `json:"message,omitempty"`
	Affected int      `json:"affected,omitempty"`
	Error    string   `json:"error,omitempty"`
	// ElapsedNS, RowCount and PagesRead carry the statement's execution
	// measurements (see the protocol comment above).
	ElapsedNS int64  `json:"elapsed_ns,omitempty"`
	RowCount  int    `json:"row_count,omitempty"`
	PagesRead uint64 `json:"pages_read,omitempty"`
	// Chunks counts the chunk frames that carried this statement's rows
	// in wire-protocol-v2 streaming mode (0 in buffered responses and
	// for statements that streamed no rows).
	Chunks int `json:"chunks,omitempty"`
}

// Frame is one line of a wire-protocol-v2 response stream: either a
// chunk of result rows or the terminating summary. Exactly one field
// is set.
type Frame struct {
	Chunk *ChunkFrame `json:"chunk,omitempty"`
	Done  *Response   `json:"done,omitempty"`
}

// ChunkFrame carries a run of result rows for one statement of the
// request line. Columns is set only on the statement's first frame.
// Rows are pre-encoded exactly as buffered mode encodes them, so
// reassembled chunked results are byte-identical to buffered ones.
type ChunkFrame struct {
	Stmt    int               `json:"stmt"`
	Columns []string          `json:"columns,omitempty"`
	Rows    []json.RawMessage `json:"rows"`
}

// Response is one JSON response line.
type Response struct {
	Results []StmtResult `json:"results,omitempty"`
	Error   string       `json:"error,omitempty"`
}

// encodeRow renders a result row with native JSON types.
func encodeRow(r repro.Row) []any {
	out := make([]any, len(r))
	for i, v := range r {
		switch v.Kind() {
		case repro.Int:
			out[i] = v.Int()
		case repro.Float:
			out[i] = v.Float()
		default:
			out[i] = v.Str()
		}
	}
	return out
}

// stmtResult converts one facade result to its wire form.
func stmtResult(sr repro.ScriptResult) StmtResult {
	out := StmtResult{
		ElapsedNS: sr.Elapsed.Nanoseconds(),
		RowCount:  sr.Rows,
		PagesRead: sr.PagesRead,
	}
	if sr.Err != nil {
		out.Error = sr.Err.Error()
		return out
	}
	res := sr.Res
	out.Columns = res.Columns
	out.Message = res.Message
	out.Affected = res.Affected
	for _, row := range res.Rows {
		out.Rows = append(out.Rows, encodeRow(row))
	}
	return out
}

// marshalResponse renders a response line (without the trailing newline).
// A response that somehow fails to marshal degrades to a JSON error line
// rather than killing the session.
func marshalResponse(resp Response) []byte {
	b, err := json.Marshal(resp)
	if err != nil {
		b, _ = json.Marshal(Response{Error: "server: response encoding failed: " + err.Error()})
	}
	return b
}

// Package server is the engine's network front door: a line-oriented
// TCP protocol carrying SQL in and JSON results out, multiplexing
// per-connection sessions onto one shared repro.DB. Reads from
// concurrent sessions run in parallel under the engine's table latches;
// a line carrying several ';'-separated SELECTs additionally fans out
// across the worker pool through DB.ExecScript / SelectMany.
package server

import (
	"encoding/json"

	"repro"
)

// The wire protocol, newline-delimited in both directions:
//
//	client -> server: one line per request, either raw SQL (which may
//	  contain several ';'-separated statements) or a JSON object
//	  {"sql": "..."} — lines whose first non-blank byte is '{' are JSON.
//	client <- server: exactly one JSON line per request:
//	  {"results": [stmtResult, ...], "error": "..."}
//	where "error" is set only when the whole line failed to parse (then
//	"results" is absent), and each stmtResult is
//	  {"columns": [...], "rows": [[...]], "message": "...",
//	   "affected": N, "error": "...",
//	   "elapsed_ns": N, "row_count": N, "pages_read": N}
//	with "error" set when that statement failed. The three measurement
//	fields report the statement's server-side wall time, result row
//	count and disk page-read delta (cmsql's \timing prints them; each
//	statement of a batched SELECT group reports the group's time and
//	pages). Ints arrive as JSON numbers, floats as numbers, strings as
//	strings. A statement whose encoded result would exceed the 4 MiB
//	line cap answers with a per-statement "error" naming the statement
//	and its row count; the session stays alive and later statements
//	still run.

// Request is the JSON form of one client request line.
type Request struct {
	SQL string `json:"sql"`
}

// StmtResult is one statement's outcome on the wire.
type StmtResult struct {
	Columns  []string `json:"columns,omitempty"`
	Rows     [][]any  `json:"rows,omitempty"`
	Message  string   `json:"message,omitempty"`
	Affected int      `json:"affected,omitempty"`
	Error    string   `json:"error,omitempty"`
	// ElapsedNS, RowCount and PagesRead carry the statement's execution
	// measurements (see the protocol comment above).
	ElapsedNS int64  `json:"elapsed_ns,omitempty"`
	RowCount  int    `json:"row_count,omitempty"`
	PagesRead uint64 `json:"pages_read,omitempty"`
}

// Response is one JSON response line.
type Response struct {
	Results []StmtResult `json:"results,omitempty"`
	Error   string       `json:"error,omitempty"`
}

// encodeRow renders a result row with native JSON types.
func encodeRow(r repro.Row) []any {
	out := make([]any, len(r))
	for i, v := range r {
		switch v.Kind() {
		case repro.Int:
			out[i] = v.Int()
		case repro.Float:
			out[i] = v.Float()
		default:
			out[i] = v.Str()
		}
	}
	return out
}

// stmtResult converts one facade result to its wire form.
func stmtResult(sr repro.ScriptResult) StmtResult {
	out := StmtResult{
		ElapsedNS: sr.Elapsed.Nanoseconds(),
		RowCount:  sr.Rows,
		PagesRead: sr.PagesRead,
	}
	if sr.Err != nil {
		out.Error = sr.Err.Error()
		return out
	}
	res := sr.Res
	out.Columns = res.Columns
	out.Message = res.Message
	out.Affected = res.Affected
	for _, row := range res.Rows {
		out.Rows = append(out.Rows, encodeRow(row))
	}
	return out
}

// marshalResponse renders a response line (without the trailing newline).
// A response that somehow fails to marshal degrades to a JSON error line
// rather than killing the session.
func marshalResponse(resp Response) []byte {
	b, err := json.Marshal(resp)
	if err != nil {
		b, _ = json.Marshal(Response{Error: "server: response encoding failed: " + err.Error()})
	}
	return b
}

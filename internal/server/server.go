package server

import (
	"bufio"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	sqlfe "repro/internal/sql"
)

// maxLineBytes bounds one request line (a giant INSERT script still
// fits; a runaway client cannot balloon server memory). The same cap
// bounds one statement's encoded result on the way out: clients mirror
// it on their read side, so a response past it would cut their session
// instead of reporting anything useful.
const maxLineBytes = 4 << 20

// ErrServerBusy is the admission-control rejection: the server is at
// its MaxConns cap. It travels to the client as the error of a one-line
// JSON response before the connection closes, so clients can tell
// "busy, retry later" apart from a network failure.
var ErrServerBusy = errors.New("server: too many connections, try again later")

// Config tunes a Server.
type Config struct {
	// Logf receives connection lifecycle lines; nil disables logging.
	Logf func(format string, args ...any)
	// SlowQueryMs, when positive, logs every statement whose wall time
	// reaches this many milliseconds as one structured key=value line:
	// session, statement index, elapsed, rows, pages, how the statement
	// ended (completed, timeout, cancelled, error), a plan summary
	// (derived lazily by explaining the statement — only slow
	// statements pay for it) and the SQL text.
	SlowQueryMs int
	// MaxConns, when positive, caps concurrent sessions. A connection
	// past the cap is answered with one JSON line carrying ErrServerBusy
	// and closed; each rejection counts into the server.rejected metric.
	MaxConns int
	// MaxConcurrentStmts, when positive, bounds request lines executing
	// at once across all sessions; excess requests wait at the gate and
	// give up cleanly if their connection goes away while queued. A
	// coalesced batch takes one slot for the whole batch.
	MaxConcurrentStmts int
	// AuthToken, when non-empty, requires every connection's first line
	// to be "AUTH <token>" (constant-time compare). A wrong or missing
	// token gets one JSON error line and the connection closes; each
	// failure counts into server.auth_failures.
	AuthToken string
	// WriteTimeout, when positive, bounds each chunk-frame write in
	// wire-protocol-v2 streaming mode: a client that stops reading past
	// it has its connection failed, which cancels the producing
	// statement. Zero leaves socket writes unbounded.
	WriteTimeout time.Duration
	// ChunkQueue is the per-request send-queue depth (in frames) for
	// chunked streaming; when the queue is full the producing statement
	// blocks — backpressure — until the client drains a frame or the
	// statement's context dies. Zero means the default of 4.
	ChunkQueue int
	// Coalesce enables the cross-connection batch coalescer: single
	// SELECT request lines from different sessions arriving within
	// CoalesceWindow (default 200µs) are collected — up to CoalesceMax
	// (default 32) per batch, across CoalesceStripes stripes (default
	// 1) — and executed as one ExecPreparedBatch fan-out under one
	// statement-gate slot.
	Coalesce        bool
	CoalesceWindow  time.Duration
	CoalesceMax     int
	CoalesceStripes int
}

// Server serves the line/JSON protocol over a shared database. Every
// connection gets its own session goroutine plus a reader goroutine, so
// a client disconnect is noticed while a statement is still executing
// and cancels it; statement execution goes through DB.ExecScriptCtx, so
// concurrent sessions interleave under the engine's table latches
// exactly like native concurrent callers.
type Server struct {
	db           *repro.DB
	logf         func(format string, args ...any)
	slowQuery    time.Duration // 0 disables the slow-query log
	maxConns     int
	gate         chan struct{} // nil means unbounded statement concurrency
	authToken    string
	writeTimeout time.Duration
	chunkQueue   int
	coalesce     *batcher // nil means no cross-connection coalescing

	mu       sync.Mutex
	ln       net.Listener
	sessions map[*session]struct{}
	closed   bool

	wg       sync.WaitGroup
	nextSess atomic.Int64
	active   atomic.Int64
}

// session is one connection's server-side state. busy flips around each
// statement execution so Shutdown can tell draining sessions (left to
// finish their statement) from idle ones (closed immediately).
type session struct {
	conn net.Conn
	busy atomic.Bool
}

// New creates a server over db.
func New(db *repro.DB, cfg Config) *Server {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var gate chan struct{}
	if cfg.MaxConcurrentStmts > 0 {
		gate = make(chan struct{}, cfg.MaxConcurrentStmts)
	}
	chunkQueue := cfg.ChunkQueue
	if chunkQueue <= 0 {
		chunkQueue = 4
	}
	s := &Server{
		db:           db,
		logf:         logf,
		slowQuery:    time.Duration(cfg.SlowQueryMs) * time.Millisecond,
		maxConns:     cfg.MaxConns,
		gate:         gate,
		authToken:    cfg.AuthToken,
		writeTimeout: cfg.WriteTimeout,
		chunkQueue:   chunkQueue,
		sessions:     make(map[*session]struct{}),
	}
	if cfg.Coalesce {
		s.coalesce = newBatcher(s, cfg.CoalesceWindow, cfg.CoalesceMax, cfg.CoalesceStripes)
	}
	return s
}

// ActiveSessions reports the number of connected sessions.
func (s *Server) ActiveSessions() int { return int(s.active.Load()) }

// ListenAndServe listens on addr and serves until Close or Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close or Shutdown. It always
// closes ln.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.logf("cmserver: listening on %s", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		if s.maxConns > 0 && len(s.sessions) >= s.maxConns {
			s.mu.Unlock()
			s.reject(conn)
			continue
		}
		sess := &session{conn: conn}
		s.sessions[sess] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.run(sess)
	}
}

// reject answers an over-capacity connection with one ErrServerBusy
// JSON line and closes it. The write carries a short deadline so a
// stalled client cannot hold up the accept loop.
func (s *Server) reject(conn net.Conn) {
	defer conn.Close()
	s.db.RecordRejectedConn()
	s.logf("cmserver: rejecting %s: %v", conn.RemoteAddr(), ErrServerBusy)
	conn.SetWriteDeadline(time.Now().Add(time.Second))
	b := marshalResponse(Response{Error: ErrServerBusy.Error()})
	conn.Write(append(b, '\n'))
}

// Close stops accepting, closes every live session — cancelling any
// statement mid-flight — and waits for their goroutines to drain. For a
// graceful stop that lets running statements finish, use Shutdown.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for sess := range s.sessions {
		sess.conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Shutdown drains the server: it stops accepting, closes idle sessions
// immediately, and lets sessions that are mid-statement finish and
// deliver their response before closing. If ctx expires first, the
// remaining connections are closed — which cancels their in-flight
// statements through the per-connection context — and ctx's error is
// returned after every session goroutine has exited. Either way, no
// goroutines are left behind.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	var idle []net.Conn
	for sess := range s.sessions {
		if !sess.busy.Load() {
			idle = append(idle, sess.conn)
		}
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range idle {
		c.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// draining reports whether Close or Shutdown has begun; sessions exit
// after their current statement once it flips.
func (s *Server) draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// run serves one connection. Reads happen on a dedicated reader
// goroutine feeding whole request lines to this loop; when the reader
// exits — client disconnect, oversized line, or our own close — it
// cancels the connection context, aborting whatever statement this loop
// is executing at that moment.
func (s *Server) run(sess *session) {
	defer s.wg.Done()
	conn := sess.conn
	id := s.nextSess.Add(1)
	s.active.Add(1)
	s.logf("cmserver: session %d open from %s (%d active)", id, conn.RemoteAddr(), s.active.Load())
	var st sessionStats
	defer func() {
		s.mu.Lock()
		delete(s.sessions, sess)
		s.mu.Unlock()
		conn.Close()
		s.active.Add(-1)
		s.logf("cmserver: session %d closed after %d statements (%d rows, %d pages, %v busy) (%d active)",
			id, st.statements, st.rows, st.pages, st.elapsed.Round(time.Microsecond), s.active.Load())
	}()

	connCtx, connCancel := context.WithCancel(context.Background())
	defer connCancel()
	lines := make(chan string)
	var readErr error
	go func() {
		defer connCancel()
		defer close(lines)
		scanner := bufio.NewScanner(conn)
		scanner.Buffer(make([]byte, 64<<10), maxLineBytes)
		for scanner.Scan() {
			line := strings.TrimSpace(scanner.Text())
			if line == "" {
				continue
			}
			select {
			case lines <- line:
			case <-connCtx.Done():
				return
			}
		}
		readErr = scanner.Err()
	}()

	w := bufio.NewWriter(conn)
	writeResp := func(resp Response) bool {
		b := marshalResponse(resp)
		if _, err := w.Write(append(b, '\n')); err != nil {
			return false
		}
		return w.Flush() == nil
	}
	authed := s.authToken == ""
	chunkRows := 0 // 0 = buffered v1 responses; set by SET wire_chunk_rows
	for line := range lines {
		sess.busy.Store(true)
		ok := s.dispatch(connCtx, conn, line, id, sess, &st, writeResp, &authed, &chunkRows)
		sess.busy.Store(false)
		if !ok || s.draining() {
			return
		}
	}
	// Reader errors (oversized line, connection reset) end the session;
	// there is no request boundary left to answer on. Reads cut short by
	// our own Close/Shutdown are expected and not worth a log line.
	if readErr != nil && !s.draining() {
		s.logf("cmserver: session %d read error: %v", id, readErr)
	}
}

// sessionStats accumulates one session's execution totals for the
// close log line. Only the session goroutine touches it.
type sessionStats struct {
	statements int
	rows       int64
	pages      uint64
	elapsed    time.Duration
}

// dispatch routes one request line: AUTH enforcement first, then the
// SET wire_chunk_rows session intercept, then — when the coalescer is
// on and the line is a single plain SELECT — the cross-connection
// batch path, and finally ordinary execution in chunked or buffered
// mode. It reports false when the session must close (failed auth, a
// dead connection, a failed write).
func (s *Server) dispatch(ctx context.Context, conn net.Conn, line string, id int64, sess *session, st *sessionStats, writeResp func(Response) bool, authed *bool, chunkRows *int) bool {
	if token, isAuth := cutAuth(line); isAuth {
		if s.authOK(token) {
			*authed = true
			return writeResp(Response{Results: []StmtResult{{Message: "AUTH ok"}}})
		}
		s.db.RecordAuthFailure()
		s.logf("cmserver: session %d auth failure", id)
		writeResp(Response{Error: "server: authentication failed"})
		return false
	}
	if !*authed {
		s.db.RecordAuthFailure()
		s.logf("cmserver: session %d auth failure (no AUTH line)", id)
		writeResp(Response{Error: "server: authentication required (send AUTH <token> as the first line)"})
		return false
	}
	sqlText, jsonErr := requestSQL(line)
	if jsonErr != nil {
		if *chunkRows > 0 {
			p := s.newChunkPump(ctx, func() {}, conn, *chunkRows)
			return p.finish(Response{Error: jsonErr.Error()}) == nil
		}
		return writeResp(Response{Error: jsonErr.Error()})
	}
	if n, ok := parseWireChunkSet(sqlText); ok {
		if n < 0 {
			return writeResp(Response{Error: "server: SET wire_chunk_rows takes a non-negative row count"})
		}
		*chunkRows = n
		return writeResp(Response{Results: []StmtResult{{Message: fmt.Sprintf("SET wire_chunk_rows = %d", n)}}})
	}
	if s.coalesce != nil {
		if prep := s.db.PrepareSelect(sqlText); prep != nil {
			sr := <-s.coalesce.submit(ctx, prep)
			s.accountStmt(id, 0, sr, st)
			if *chunkRows > 0 {
				return s.respondChunkedResult(ctx, conn, sr, *chunkRows)
			}
			return writeResp(Response{Results: []StmtResult{capStmtResult(0, stmtResult(sr))}})
		}
	}
	if *chunkRows > 0 {
		return s.handleChunked(ctx, conn, sqlText, id, *chunkRows, st)
	}
	return writeResp(s.handle(ctx, sqlText, id, st))
}

// cutAuth recognizes an AUTH request line and extracts its token.
func cutAuth(line string) (string, bool) {
	if line == "AUTH" {
		return "", true
	}
	return strings.CutPrefix(line, "AUTH ")
}

// authOK checks a presented token against the configured one in
// constant time. Servers without a token accept any AUTH line, so
// clients can send one unconditionally.
func (s *Server) authOK(token string) bool {
	if s.authToken == "" {
		return true
	}
	return subtle.ConstantTimeCompare([]byte(token), []byte(s.authToken)) == 1
}

// requestSQL extracts the SQL text from a request line (raw SQL, or
// the JSON {"sql": ...} form when the line starts with '{').
func requestSQL(line string) (string, error) {
	if !strings.HasPrefix(line, "{") {
		return line, nil
	}
	var req Request
	if err := json.Unmarshal([]byte(line), &req); err != nil {
		return "", fmt.Errorf("server: bad JSON request: %v", err)
	}
	return req.SQL, nil
}

// parseWireChunkSet recognizes a request line that is exactly one
// SET wire_chunk_rows = N statement — the session-level setting the
// server intercepts before the engine (which only knows engine-wide
// settings) would reject it.
func parseWireChunkSet(sqlText string) (int, bool) {
	stmts, _, err := sqlfe.ParseScriptSpans(sqlText)
	if err != nil || len(stmts) != 1 {
		return 0, false
	}
	set, ok := stmts[0].(*sqlfe.SetStmt)
	if !ok || set.Name != "wire_chunk_rows" {
		return 0, false
	}
	return int(set.Value), true
}

// accountStmt folds one statement's measurements into the session
// stats and logs it when it crossed the slow-query threshold — shared
// by the buffered, chunked and coalesced response paths.
func (s *Server) accountStmt(sess int64, idx int, r repro.ScriptResult, st *sessionStats) {
	st.statements++
	st.rows += int64(r.Rows)
	st.pages += r.PagesRead
	st.elapsed += r.Elapsed
	if s.slowQuery > 0 && r.Elapsed >= s.slowQuery {
		s.logSlowQuery(sess, idx, r)
	}
}

// respondChunkedResult replays one coalesced (buffered) statement
// result as a chunked response stream, so coalescing and chunked mode
// compose: the rows go out in frames through the same pump —
// backpressure included — followed by the summary frame.
func (s *Server) respondChunkedResult(connCtx context.Context, conn net.Conn, sr repro.ScriptResult, chunkRows int) bool {
	reqCtx, cancel := context.WithCancel(connCtx)
	defer cancel()
	p := s.newChunkPump(reqCtx, cancel, conn, chunkRows)
	rs := p.streamer()
	if sr.Err == nil && sr.Res != nil && len(sr.Res.Columns) > 0 {
		rs.Ctx(0, reqCtx)
		rs.Begin(0, sr.Res.Columns)
		for _, row := range sr.Res.Rows {
			if !rs.Row(0, row) {
				break
			}
		}
		rs.End(0)
	}
	out := stmtResult(sr)
	out.Rows = nil // rows went out in chunk frames
	out.Chunks = p.chunks[0]
	if fe := p.rowErr[0]; fe != nil {
		out = StmtResult{Error: fe.Error(), ElapsedNS: out.ElapsedNS, PagesRead: out.PagesRead}
	}
	return p.finish(Response{Results: []StmtResult{out}}) == nil
}

// handle executes one request line's SQL under the connection's
// context, folds its measurements into the session stats, logs slow
// statements and returns the buffered response.
func (s *Server) handle(ctx context.Context, sqlText string, sess int64, st *sessionStats) Response {
	if s.gate != nil {
		select {
		case s.gate <- struct{}{}:
			defer func() { <-s.gate }()
		case <-ctx.Done():
			return Response{Error: "server: request abandoned at the statement gate: " + ctx.Err().Error()}
		}
	}
	results, err := s.db.ExecScriptCtx(ctx, sqlText)
	if err != nil {
		return Response{Error: err.Error()}
	}
	resp := Response{Results: make([]StmtResult, len(results))}
	for i, r := range results {
		s.accountStmt(sess, i, r, st)
		resp.Results[i] = capStmtResult(i, stmtResult(r))
	}
	return resp
}

// logSlowQuery emits one structured line for a statement at or past the
// slow-query threshold, including how it ended — completed, timeout,
// cancelled (client disconnect) or error.
func (s *Server) logSlowQuery(sess int64, idx int, r repro.ScriptResult) {
	plan := ""
	if r.Err == nil {
		plan = s.planSummary(r.SQL)
	}
	s.logf("cmserver: slow query session=%d stmt=%d elapsed_ms=%d rows=%d pages=%d outcome=%s plan=%q sql=%q",
		sess, idx+1, r.Elapsed.Milliseconds(), r.Rows, r.PagesRead, repro.StatementOutcome(r.Err), plan, r.SQL)
}

// planSummary derives a one-line operator summary for the slow-query
// log by explaining the statement — EXPLAIN accepts both SELECT and
// UPDATE, so every plannable slow statement gets one; anything EXPLAIN
// rejects (DDL, INSERT, nested EXPLAIN) reports "". Only statements
// already past the threshold pay this cost.
func (s *Server) planSummary(sql string) string {
	res, err := s.db.Exec("EXPLAIN " + sql)
	if err != nil || res.Plan == nil || len(res.Plan.Nodes) == 0 {
		return ""
	}
	kinds := make([]string, len(res.Plan.Nodes))
	for i, n := range res.Plan.Nodes {
		kinds[i] = n.Kind
	}
	sum := strings.Join(kinds, "->")
	if res.Plan.Uses != "" {
		sum += " uses " + res.Plan.Uses
	}
	return sum
}

// capStmtResult enforces the response-size cap per statement: a result
// whose JSON encoding exceeds maxLineBytes is replaced by a clean
// per-statement error naming the statement and its row count, so the
// session survives and every other statement on the line still answers.
// Without this, an oversized response line kills the connection on the
// client side, which reads with the same maxLineBytes bound.
func capStmtResult(i int, sr StmtResult) StmtResult {
	b, err := json.Marshal(sr)
	if err != nil || len(b) <= maxLineBytes {
		return sr
	}
	return StmtResult{Error: fmt.Sprintf(
		"server: statement %d result is %d bytes, past the %d-byte response cap (%d rows); add a LIMIT or a tighter WHERE",
		i+1, len(b), maxLineBytes, len(sr.Rows))}
}

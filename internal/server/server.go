package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

// maxLineBytes bounds one request line (a giant INSERT script still
// fits; a runaway client cannot balloon server memory). The same cap
// bounds one statement's encoded result on the way out: clients mirror
// it on their read side, so a response past it would cut their session
// instead of reporting anything useful.
const maxLineBytes = 4 << 20

// ErrServerBusy is the admission-control rejection: the server is at
// its MaxConns cap. It travels to the client as the error of a one-line
// JSON response before the connection closes, so clients can tell
// "busy, retry later" apart from a network failure.
var ErrServerBusy = errors.New("server: too many connections, try again later")

// Config tunes a Server.
type Config struct {
	// Logf receives connection lifecycle lines; nil disables logging.
	Logf func(format string, args ...any)
	// SlowQueryMs, when positive, logs every statement whose wall time
	// reaches this many milliseconds as one structured key=value line:
	// session, statement index, elapsed, rows, pages, how the statement
	// ended (completed, timeout, cancelled, error), a plan summary
	// (derived lazily by explaining the statement — only slow
	// statements pay for it) and the SQL text.
	SlowQueryMs int
	// MaxConns, when positive, caps concurrent sessions. A connection
	// past the cap is answered with one JSON line carrying ErrServerBusy
	// and closed; each rejection counts into the server.rejected metric.
	MaxConns int
	// MaxConcurrentStmts, when positive, bounds request lines executing
	// at once across all sessions; excess requests wait at the gate and
	// give up cleanly if their connection goes away while queued.
	MaxConcurrentStmts int
}

// Server serves the line/JSON protocol over a shared database. Every
// connection gets its own session goroutine plus a reader goroutine, so
// a client disconnect is noticed while a statement is still executing
// and cancels it; statement execution goes through DB.ExecScriptCtx, so
// concurrent sessions interleave under the engine's table latches
// exactly like native concurrent callers.
type Server struct {
	db        *repro.DB
	logf      func(format string, args ...any)
	slowQuery time.Duration // 0 disables the slow-query log
	maxConns  int
	gate      chan struct{} // nil means unbounded statement concurrency

	mu       sync.Mutex
	ln       net.Listener
	sessions map[*session]struct{}
	closed   bool

	wg       sync.WaitGroup
	nextSess atomic.Int64
	active   atomic.Int64
}

// session is one connection's server-side state. busy flips around each
// statement execution so Shutdown can tell draining sessions (left to
// finish their statement) from idle ones (closed immediately).
type session struct {
	conn net.Conn
	busy atomic.Bool
}

// New creates a server over db.
func New(db *repro.DB, cfg Config) *Server {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var gate chan struct{}
	if cfg.MaxConcurrentStmts > 0 {
		gate = make(chan struct{}, cfg.MaxConcurrentStmts)
	}
	return &Server{
		db:        db,
		logf:      logf,
		slowQuery: time.Duration(cfg.SlowQueryMs) * time.Millisecond,
		maxConns:  cfg.MaxConns,
		gate:      gate,
		sessions:  make(map[*session]struct{}),
	}
}

// ActiveSessions reports the number of connected sessions.
func (s *Server) ActiveSessions() int { return int(s.active.Load()) }

// ListenAndServe listens on addr and serves until Close or Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close or Shutdown. It always
// closes ln.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.logf("cmserver: listening on %s", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		if s.maxConns > 0 && len(s.sessions) >= s.maxConns {
			s.mu.Unlock()
			s.reject(conn)
			continue
		}
		sess := &session{conn: conn}
		s.sessions[sess] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.run(sess)
	}
}

// reject answers an over-capacity connection with one ErrServerBusy
// JSON line and closes it. The write carries a short deadline so a
// stalled client cannot hold up the accept loop.
func (s *Server) reject(conn net.Conn) {
	defer conn.Close()
	s.db.RecordRejectedConn()
	s.logf("cmserver: rejecting %s: %v", conn.RemoteAddr(), ErrServerBusy)
	conn.SetWriteDeadline(time.Now().Add(time.Second))
	b := marshalResponse(Response{Error: ErrServerBusy.Error()})
	conn.Write(append(b, '\n'))
}

// Close stops accepting, closes every live session — cancelling any
// statement mid-flight — and waits for their goroutines to drain. For a
// graceful stop that lets running statements finish, use Shutdown.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for sess := range s.sessions {
		sess.conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Shutdown drains the server: it stops accepting, closes idle sessions
// immediately, and lets sessions that are mid-statement finish and
// deliver their response before closing. If ctx expires first, the
// remaining connections are closed — which cancels their in-flight
// statements through the per-connection context — and ctx's error is
// returned after every session goroutine has exited. Either way, no
// goroutines are left behind.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	var idle []net.Conn
	for sess := range s.sessions {
		if !sess.busy.Load() {
			idle = append(idle, sess.conn)
		}
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range idle {
		c.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// draining reports whether Close or Shutdown has begun; sessions exit
// after their current statement once it flips.
func (s *Server) draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// run serves one connection. Reads happen on a dedicated reader
// goroutine feeding whole request lines to this loop; when the reader
// exits — client disconnect, oversized line, or our own close — it
// cancels the connection context, aborting whatever statement this loop
// is executing at that moment.
func (s *Server) run(sess *session) {
	defer s.wg.Done()
	conn := sess.conn
	id := s.nextSess.Add(1)
	s.active.Add(1)
	s.logf("cmserver: session %d open from %s (%d active)", id, conn.RemoteAddr(), s.active.Load())
	var st sessionStats
	defer func() {
		s.mu.Lock()
		delete(s.sessions, sess)
		s.mu.Unlock()
		conn.Close()
		s.active.Add(-1)
		s.logf("cmserver: session %d closed after %d statements (%d rows, %d pages, %v busy) (%d active)",
			id, st.statements, st.rows, st.pages, st.elapsed.Round(time.Microsecond), s.active.Load())
	}()

	connCtx, connCancel := context.WithCancel(context.Background())
	defer connCancel()
	lines := make(chan string)
	var readErr error
	go func() {
		defer connCancel()
		defer close(lines)
		scanner := bufio.NewScanner(conn)
		scanner.Buffer(make([]byte, 64<<10), maxLineBytes)
		for scanner.Scan() {
			line := strings.TrimSpace(scanner.Text())
			if line == "" {
				continue
			}
			select {
			case lines <- line:
			case <-connCtx.Done():
				return
			}
		}
		readErr = scanner.Err()
	}()

	w := bufio.NewWriter(conn)
	for line := range lines {
		sess.busy.Store(true)
		resp := s.handle(connCtx, line, id, &st)
		sess.busy.Store(false)
		b := marshalResponse(resp)
		if _, err := w.Write(append(b, '\n')); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
		if s.draining() {
			return
		}
	}
	// Reader errors (oversized line, connection reset) end the session;
	// there is no request boundary left to answer on. Reads cut short by
	// our own Close/Shutdown are expected and not worth a log line.
	if readErr != nil && !s.draining() {
		s.logf("cmserver: session %d read error: %v", id, readErr)
	}
}

// sessionStats accumulates one session's execution totals for the
// close log line. Only the session goroutine touches it.
type sessionStats struct {
	statements int
	rows       int64
	pages      uint64
	elapsed    time.Duration
}

// handle executes one request line under the connection's context,
// folds its measurements into the session stats, logs slow statements
// and returns the response.
func (s *Server) handle(ctx context.Context, line string, sess int64, st *sessionStats) Response {
	sqlText := line
	if strings.HasPrefix(line, "{") {
		var req Request
		if err := json.Unmarshal([]byte(line), &req); err != nil {
			return Response{Error: fmt.Sprintf("server: bad JSON request: %v", err)}
		}
		sqlText = req.SQL
	}
	if s.gate != nil {
		select {
		case s.gate <- struct{}{}:
			defer func() { <-s.gate }()
		case <-ctx.Done():
			return Response{Error: "server: request abandoned at the statement gate: " + ctx.Err().Error()}
		}
	}
	results, err := s.db.ExecScriptCtx(ctx, sqlText)
	if err != nil {
		return Response{Error: err.Error()}
	}
	resp := Response{Results: make([]StmtResult, len(results))}
	for i, r := range results {
		st.statements++
		st.rows += int64(r.Rows)
		st.pages += r.PagesRead
		st.elapsed += r.Elapsed
		if s.slowQuery > 0 && r.Elapsed >= s.slowQuery {
			s.logSlowQuery(sess, i, r)
		}
		resp.Results[i] = capStmtResult(i, stmtResult(r))
	}
	return resp
}

// logSlowQuery emits one structured line for a statement at or past the
// slow-query threshold, including how it ended — completed, timeout,
// cancelled (client disconnect) or error.
func (s *Server) logSlowQuery(sess int64, idx int, r repro.ScriptResult) {
	plan := ""
	if r.Err == nil {
		plan = s.planSummary(r.SQL)
	}
	s.logf("cmserver: slow query session=%d stmt=%d elapsed_ms=%d rows=%d pages=%d outcome=%s plan=%q sql=%q",
		sess, idx+1, r.Elapsed.Milliseconds(), r.Rows, r.PagesRead, repro.StatementOutcome(r.Err), plan, r.SQL)
}

// planSummary derives a one-line operator summary for the slow-query
// log by explaining the statement — EXPLAIN accepts both SELECT and
// UPDATE, so every plannable slow statement gets one; anything EXPLAIN
// rejects (DDL, INSERT, nested EXPLAIN) reports "". Only statements
// already past the threshold pay this cost.
func (s *Server) planSummary(sql string) string {
	res, err := s.db.Exec("EXPLAIN " + sql)
	if err != nil || res.Plan == nil || len(res.Plan.Nodes) == 0 {
		return ""
	}
	kinds := make([]string, len(res.Plan.Nodes))
	for i, n := range res.Plan.Nodes {
		kinds[i] = n.Kind
	}
	sum := strings.Join(kinds, "->")
	if res.Plan.Uses != "" {
		sum += " uses " + res.Plan.Uses
	}
	return sum
}

// capStmtResult enforces the response-size cap per statement: a result
// whose JSON encoding exceeds maxLineBytes is replaced by a clean
// per-statement error naming the statement and its row count, so the
// session survives and every other statement on the line still answers.
// Without this, an oversized response line kills the connection on the
// client side, which reads with the same maxLineBytes bound.
func capStmtResult(i int, sr StmtResult) StmtResult {
	b, err := json.Marshal(sr)
	if err != nil || len(b) <= maxLineBytes {
		return sr
	}
	return StmtResult{Error: fmt.Sprintf(
		"server: statement %d result is %d bytes, past the %d-byte response cap (%d rows); add a LIMIT or a tighter WHERE",
		i+1, len(b), maxLineBytes, len(sr.Rows))}
}

package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

// maxLineBytes bounds one request line (a giant INSERT script still
// fits; a runaway client cannot balloon server memory). The same cap
// bounds one statement's encoded result on the way out: clients mirror
// it on their read side, so a response past it would cut their session
// instead of reporting anything useful.
const maxLineBytes = 4 << 20

// Config tunes a Server.
type Config struct {
	// Logf receives connection lifecycle lines; nil disables logging.
	Logf func(format string, args ...any)
	// SlowQueryMs, when positive, logs every statement whose wall time
	// reaches this many milliseconds as one structured key=value line:
	// session, statement index, elapsed, rows, pages, a plan summary
	// (derived lazily by explaining the statement — only slow
	// statements pay for it) and the SQL text.
	SlowQueryMs int
}

// Server serves the line/JSON protocol over a shared database. Every
// connection gets its own session goroutine; statement execution goes
// straight through DB.ExecScript, so concurrent sessions interleave
// under the engine's table latches exactly like native concurrent
// callers.
type Server struct {
	db        *repro.DB
	logf      func(format string, args ...any)
	slowQuery time.Duration // 0 disables the slow-query log

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	wg       sync.WaitGroup
	nextSess atomic.Int64
	active   atomic.Int64
}

// New creates a server over db.
func New(db *repro.DB, cfg Config) *Server {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{
		db:        db,
		logf:      logf,
		slowQuery: time.Duration(cfg.SlowQueryMs) * time.Millisecond,
		conns:     make(map[net.Conn]struct{}),
	}
}

// ActiveSessions reports the number of connected sessions.
func (s *Server) ActiveSessions() int { return int(s.active.Load()) }

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close. It always closes ln.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.logf("cmserver: listening on %s", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.session(conn)
	}
}

// Close stops accepting, closes every live session and waits for their
// goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// session runs one connection: read a line, execute, write a JSON line.
func (s *Server) session(conn net.Conn) {
	defer s.wg.Done()
	id := s.nextSess.Add(1)
	s.active.Add(1)
	s.logf("cmserver: session %d open from %s (%d active)", id, conn.RemoteAddr(), s.active.Load())
	var st sessionStats
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.active.Add(-1)
		s.logf("cmserver: session %d closed after %d statements (%d rows, %d pages, %v busy) (%d active)",
			id, st.statements, st.rows, st.pages, st.elapsed.Round(time.Microsecond), s.active.Load())
	}()

	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 64<<10), maxLineBytes)
	w := bufio.NewWriter(conn)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		resp := s.handle(line, id, &st)
		b := marshalResponse(resp)
		if _, err := w.Write(append(b, '\n')); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
	// Scanner errors (oversized line, connection reset) end the session;
	// there is no request boundary left to answer on. Reads cut short by
	// our own Close are expected and not worth a log line.
	if err := scanner.Err(); err != nil {
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if !closed {
			s.logf("cmserver: session %d read error: %v", id, err)
		}
	}
}

// sessionStats accumulates one session's execution totals for the
// close log line. Only the session goroutine touches it.
type sessionStats struct {
	statements int
	rows       int64
	pages      uint64
	elapsed    time.Duration
}

// handle executes one request line, folds its measurements into the
// session stats, logs slow statements and returns the response.
func (s *Server) handle(line string, sess int64, st *sessionStats) Response {
	sqlText := line
	if strings.HasPrefix(line, "{") {
		var req Request
		if err := json.Unmarshal([]byte(line), &req); err != nil {
			return Response{Error: fmt.Sprintf("server: bad JSON request: %v", err)}
		}
		sqlText = req.SQL
	}
	results, err := s.db.ExecScript(sqlText)
	if err != nil {
		return Response{Error: err.Error()}
	}
	resp := Response{Results: make([]StmtResult, len(results))}
	for i, r := range results {
		st.statements++
		st.rows += int64(r.Rows)
		st.pages += r.PagesRead
		st.elapsed += r.Elapsed
		if s.slowQuery > 0 && r.Elapsed >= s.slowQuery && r.Err == nil {
			s.logSlowQuery(sess, i, r)
		}
		resp.Results[i] = capStmtResult(i, stmtResult(r))
	}
	return resp
}

// logSlowQuery emits one structured line for a statement at or past
// the slow-query threshold.
func (s *Server) logSlowQuery(sess int64, idx int, r repro.ScriptResult) {
	s.logf("cmserver: slow query session=%d stmt=%d elapsed_ms=%d rows=%d pages=%d plan=%q sql=%q",
		sess, idx+1, r.Elapsed.Milliseconds(), r.Rows, r.PagesRead, s.planSummary(r.SQL), r.SQL)
}

// planSummary derives a one-line operator summary for the slow-query
// log by explaining the statement — EXPLAIN accepts both SELECT and
// UPDATE, so every plannable slow statement gets one; anything EXPLAIN
// rejects (DDL, INSERT, nested EXPLAIN) reports "". Only statements
// already past the threshold pay this cost.
func (s *Server) planSummary(sql string) string {
	res, err := s.db.Exec("EXPLAIN " + sql)
	if err != nil || res.Plan == nil || len(res.Plan.Nodes) == 0 {
		return ""
	}
	kinds := make([]string, len(res.Plan.Nodes))
	for i, n := range res.Plan.Nodes {
		kinds[i] = n.Kind
	}
	sum := strings.Join(kinds, "->")
	if res.Plan.Uses != "" {
		sum += " uses " + res.Plan.Uses
	}
	return sum
}

// capStmtResult enforces the response-size cap per statement: a result
// whose JSON encoding exceeds maxLineBytes is replaced by a clean
// per-statement error naming the statement and its row count, so the
// session survives and every other statement on the line still answers.
// Without this, an oversized response line kills the connection on the
// client side, which reads with the same maxLineBytes bound.
func capStmtResult(i int, sr StmtResult) StmtResult {
	b, err := json.Marshal(sr)
	if err != nil || len(b) <= maxLineBytes {
		return sr
	}
	return StmtResult{Error: fmt.Sprintf(
		"server: statement %d result is %d bytes, past the %d-byte response cap (%d rows); add a LIMIT or a tighter WHERE",
		i+1, len(b), maxLineBytes, len(sr.Rows))}
}

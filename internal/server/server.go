package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"repro"
)

// maxLineBytes bounds one request line (a giant INSERT script still
// fits; a runaway client cannot balloon server memory). The same cap
// bounds one statement's encoded result on the way out: clients mirror
// it on their read side, so a response past it would cut their session
// instead of reporting anything useful.
const maxLineBytes = 4 << 20

// Config tunes a Server.
type Config struct {
	// Logf receives connection lifecycle lines; nil disables logging.
	Logf func(format string, args ...any)
}

// Server serves the line/JSON protocol over a shared database. Every
// connection gets its own session goroutine; statement execution goes
// straight through DB.ExecScript, so concurrent sessions interleave
// under the engine's table latches exactly like native concurrent
// callers.
type Server struct {
	db   *repro.DB
	logf func(format string, args ...any)

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	wg       sync.WaitGroup
	nextSess atomic.Int64
	active   atomic.Int64
}

// New creates a server over db.
func New(db *repro.DB, cfg Config) *Server {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{db: db, logf: logf, conns: make(map[net.Conn]struct{})}
}

// ActiveSessions reports the number of connected sessions.
func (s *Server) ActiveSessions() int { return int(s.active.Load()) }

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close. It always closes ln.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.logf("cmserver: listening on %s", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.session(conn)
	}
}

// Close stops accepting, closes every live session and waits for their
// goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// session runs one connection: read a line, execute, write a JSON line.
func (s *Server) session(conn net.Conn) {
	defer s.wg.Done()
	id := s.nextSess.Add(1)
	s.active.Add(1)
	s.logf("cmserver: session %d open from %s (%d active)", id, conn.RemoteAddr(), s.active.Load())
	statements := 0
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.active.Add(-1)
		s.logf("cmserver: session %d closed after %d statements (%d active)",
			id, statements, s.active.Load())
	}()

	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 64<<10), maxLineBytes)
	w := bufio.NewWriter(conn)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		resp, n := s.handle(line)
		statements += n
		b := marshalResponse(resp)
		if _, err := w.Write(append(b, '\n')); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
	// Scanner errors (oversized line, connection reset) end the session;
	// there is no request boundary left to answer on. Reads cut short by
	// our own Close are expected and not worth a log line.
	if err := scanner.Err(); err != nil {
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if !closed {
			s.logf("cmserver: session %d read error: %v", id, err)
		}
	}
}

// handle executes one request line and returns the response plus the
// number of statements it carried.
func (s *Server) handle(line string) (Response, int) {
	sqlText := line
	if strings.HasPrefix(line, "{") {
		var req Request
		if err := json.Unmarshal([]byte(line), &req); err != nil {
			return Response{Error: fmt.Sprintf("server: bad JSON request: %v", err)}, 0
		}
		sqlText = req.SQL
	}
	results, err := s.db.ExecScript(sqlText)
	if err != nil {
		return Response{Error: err.Error()}, 0
	}
	resp := Response{Results: make([]StmtResult, len(results))}
	for i, r := range results {
		resp.Results[i] = capStmtResult(i, stmtResult(r))
	}
	return resp, len(results)
}

// capStmtResult enforces the response-size cap per statement: a result
// whose JSON encoding exceeds maxLineBytes is replaced by a clean
// per-statement error naming the statement and its row count, so the
// session survives and every other statement on the line still answers.
// Without this, an oversized response line kills the connection on the
// client side, which reads with the same maxLineBytes bound.
func capStmtResult(i int, sr StmtResult) StmtResult {
	b, err := json.Marshal(sr)
	if err != nil || len(b) <= maxLineBytes {
		return sr
	}
	return StmtResult{Error: fmt.Sprintf(
		"server: statement %d result is %d bytes, past the %d-byte response cap (%d rows); add a LIMIT or a tighter WHERE",
		i+1, len(b), maxLineBytes, len(sr.Rows))}
}

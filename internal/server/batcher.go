package server

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

// This file is the cross-connection batch coalescer: sessions hand
// their single-SELECT request lines to a striped batcher, which
// collects statements arriving from different connections within a
// small window (CoalesceWindow, default 200µs) or up to a batch cap
// (CoalesceMax, default 32), whichever fills first, and flushes them
// through one DB.ExecPreparedBatch call — the SelectMany fan-out the
// engine already had, now fed by the whole server instead of one
// ';'-separated line. Each statement keeps its own context, MVCC
// snapshot, outcome and error; the flush takes ONE statement-gate slot
// for the whole batch, which is where coalescing pays at high
// connection counts: tiny point probes that could never use the worker
// pool alone share a slot and fill it together.

// batchReq is one session's statement waiting in a stripe.
type batchReq struct {
	ctx  context.Context
	prep *repro.PreparedSelect
	out  chan repro.ScriptResult // buffered 1; flush always delivers
}

// batcher coalesces single SELECTs across sessions. Stripes cut
// submit-side lock contention: a session picks one round-robin, so
// batches form per stripe.
type batcher struct {
	s       *Server
	window  time.Duration
	maxSize int
	next    atomic.Int64
	stripes []*stripe
}

// stripe is one independently flushing collection point.
type stripe struct {
	b       *batcher
	mu      sync.Mutex
	pending []batchReq
	timer   *time.Timer // armed while pending is non-empty
}

// newBatcher wires the stripes. Zero config values take the defaults
// documented on Config.
func newBatcher(s *Server, window time.Duration, maxSize, stripes int) *batcher {
	if window <= 0 {
		window = 200 * time.Microsecond
	}
	if maxSize <= 0 {
		maxSize = 32
	}
	if stripes <= 0 {
		stripes = 1
	}
	b := &batcher{s: s, window: window, maxSize: maxSize}
	for i := 0; i < stripes; i++ {
		b.stripes = append(b.stripes, &stripe{b: b})
	}
	return b
}

// submit enqueues one prepared statement and returns the channel its
// result will arrive on. Delivery is guaranteed: every enqueued
// request is part of exactly one flush, and ExecPreparedBatch always
// returns a result per statement (a dead ctx fails that statement
// alone, fast).
func (b *batcher) submit(ctx context.Context, prep *repro.PreparedSelect) <-chan repro.ScriptResult {
	req := batchReq{ctx: ctx, prep: prep, out: make(chan repro.ScriptResult, 1)}
	st := b.stripes[int(b.next.Add(1))%len(b.stripes)]
	st.mu.Lock()
	st.pending = append(st.pending, req)
	if len(st.pending) >= b.maxSize {
		batch := st.take()
		st.mu.Unlock()
		st.flush(batch) // cap reached: flush on the submitter's goroutine
		return req.out
	}
	if len(st.pending) == 1 {
		st.timer = time.AfterFunc(b.window, st.flushTimed)
	}
	st.mu.Unlock()
	return req.out
}

// take detaches the pending batch and disarms the window timer. Caller
// holds st.mu.
func (st *stripe) take() []batchReq {
	batch := st.pending
	st.pending = nil
	if st.timer != nil {
		st.timer.Stop()
		st.timer = nil
	}
	return batch
}

// flushTimed is the window-expiry path, on the timer's goroutine. A
// cap-triggered flush may have raced it and emptied the stripe.
func (st *stripe) flushTimed() {
	st.mu.Lock()
	batch := st.take()
	st.mu.Unlock()
	if len(batch) > 0 {
		st.flush(batch)
	}
}

// flush executes one batch through ExecPreparedBatch under a single
// statement-gate slot and delivers each statement's result to its
// session.
func (st *stripe) flush(batch []batchReq) {
	s := st.b.s
	if s.gate != nil {
		s.gate <- struct{}{}
		defer func() { <-s.gate }()
	}
	ctxs := make([]context.Context, len(batch))
	preps := make([]*repro.PreparedSelect, len(batch))
	for i, r := range batch {
		ctxs[i] = r.ctx
		preps[i] = r.prep
	}
	results := s.db.ExecPreparedBatch(ctxs, preps)
	s.db.RecordCoalescedBatch(len(batch))
	for i, r := range batch {
		r.out <- results[i]
	}
}

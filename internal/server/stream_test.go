// Wire-protocol-v2 and coalescing tests: chunked responses are
// byte-identical to buffered ones at any worker count, oversized
// results complete in frames where buffered mode caps them, slow and
// vanished readers cancel the producing statement without leaking
// goroutines or pinned frames, cross-connection coalescing preserves
// per-statement results and fault isolation, and token auth gates the
// session. Every test name matches the CI race sweep's
// Stream|Coalesce|Auth filter.
package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
)

// rawStmtResult mirrors StmtResult with rows kept as raw JSON, so
// equivalence tests compare encoded bytes, not decoded values.
type rawStmtResult struct {
	Columns   []string          `json:"columns"`
	Rows      []json.RawMessage `json:"rows"`
	Message   string            `json:"message"`
	Affected  int               `json:"affected"`
	Error     string            `json:"error"`
	RowCount  int               `json:"row_count"`
	PagesRead uint64            `json:"pages_read"`
	Chunks    int               `json:"chunks"`
}

// rawResponse mirrors Response with raw rows.
type rawResponse struct {
	Results []rawStmtResult `json:"results"`
	Error   string          `json:"error"`
}

// rawFrame mirrors Frame with a raw done payload.
type rawFrame struct {
	Chunk *ChunkFrame  `json:"chunk"`
	Done  *rawResponse `json:"done"`
}

// rawTrip sends one line and decodes the buffered response with raw
// row bytes.
func (c *client) rawTrip(t *testing.T, line string) rawResponse {
	t.Helper()
	if _, err := fmt.Fprintf(c.conn, "%s\n", line); err != nil {
		t.Fatalf("write: %v", err)
	}
	raw, err := c.r.ReadBytes('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	var resp rawResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("decode %q: %v", raw, err)
	}
	return resp
}

// setChunk opts the session into chunked mode with n rows per frame.
func (c *client) setChunk(t *testing.T, n int) {
	t.Helper()
	resp := mustOK(t, c.roundTrip(t, fmt.Sprintf("SET wire_chunk_rows = %d", n)))
	if len(resp.Results) != 1 || resp.Results[0].Message != fmt.Sprintf("SET wire_chunk_rows = %d", n) {
		t.Fatalf("SET wire_chunk_rows answer: %+v", resp.Results)
	}
}

// chunkTrip sends one line in chunked mode and collects the full frame
// stream, asserting every frame line stays under the wire line cap.
func (c *client) chunkTrip(t *testing.T, line string) ([]ChunkFrame, rawResponse) {
	t.Helper()
	if _, err := fmt.Fprintf(c.conn, "%s\n", line); err != nil {
		t.Fatalf("write: %v", err)
	}
	var chunks []ChunkFrame
	for {
		raw, err := c.r.ReadBytes('\n')
		if err != nil {
			t.Fatalf("read frame: %v", err)
		}
		if len(raw) > maxLineBytes {
			t.Fatalf("frame is %d bytes, past the %d-byte cap", len(raw), maxLineBytes)
		}
		var f rawFrame
		if err := json.Unmarshal(raw, &f); err != nil {
			t.Fatalf("decode frame %q: %v", raw[:min(len(raw), 200)], err)
		}
		switch {
		case f.Chunk != nil:
			chunks = append(chunks, *f.Chunk)
		case f.Done != nil:
			return chunks, *f.Done
		default:
			t.Fatalf("frame with neither chunk nor done: %q", raw[:min(len(raw), 200)])
		}
	}
}

// streamFixture loads a small correlated table through the SQL surface.
func streamFixture(t *testing.T, db *repro.DB) {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("CREATE TABLE t (c INT, u INT, s STRING) CLUSTERED BY (c) BUCKET PAGES 1; LOAD INTO t VALUES ")
	for i := 0; i < 500; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d, 'row-%d')", i, i%20, i)
	}
	sb.WriteString("; CREATE CORRELATION MAP cm_u ON t (u); CREATE TABLE ins (k INT) CLUSTERED BY (k)")
	results, err := db.ExecScript(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
}

// TestStreamChunkedMatchesBuffered runs one request line covering every
// statement form — plain SELECT, ordered SELECT, grouped aggregate,
// LIMIT 0, SHOW, EXPLAIN, INSERT and a failing statement — in buffered
// then chunked mode, at one and at eight workers, and asserts the
// reassembled chunk rows are byte-identical to the buffered rows with
// matching columns, counts and errors.
func TestStreamChunkedMatchesBuffered(t *testing.T) {
	// One request line; the INSERT targets a scratch table so the second
	// (chunked) run sees identical result rows everywhere else.
	const script = "SELECT * FROM t WHERE u = 3; " +
		"SELECT s FROM t WHERE c BETWEEN 490 AND 499 ORDER BY c DESC; " +
		"SELECT u, count(*), avg(c) FROM t GROUP BY u ORDER BY u LIMIT 5; " +
		"SELECT * FROM t WHERE u = 3 LIMIT 0; " +
		"SHOW CMS FOR t; " +
		"EXPLAIN SELECT * FROM t WHERE u = 3; " +
		"INSERT INTO ins VALUES (1); " +
		"SELECT * FROM ghosts"
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			db, _, addr, stop := startServerCfg(t, repro.Config{Workers: workers}, Config{})
			defer stop()
			streamFixture(t, db)

			c := dial(t, addr)
			defer c.close()
			buffered := c.rawTrip(t, script)
			if buffered.Error != "" {
				t.Fatalf("buffered line error: %s", buffered.Error)
			}

			c.setChunk(t, 7) // odd size: most statements span several frames
			chunks, done := c.chunkTrip(t, script)
			if done.Error != "" {
				t.Fatalf("chunked line error: %s", done.Error)
			}
			if len(done.Results) != len(buffered.Results) {
				t.Fatalf("chunked %d results, buffered %d", len(done.Results), len(buffered.Results))
			}

			// Reassemble per-statement rows and first-frame columns.
			rows := make(map[int][]json.RawMessage)
			cols := make(map[int][]string)
			frames := make(map[int]int)
			for _, cf := range chunks {
				if len(cf.Rows) == 0 {
					t.Fatalf("empty chunk frame for stmt %d", cf.Stmt)
				}
				if _, seen := rows[cf.Stmt]; !seen {
					if cf.Columns == nil {
						t.Fatalf("stmt %d first frame lacks columns", cf.Stmt)
					}
					cols[cf.Stmt] = cf.Columns
				} else if cf.Columns != nil {
					t.Fatalf("stmt %d repeated columns on a later frame", cf.Stmt)
				}
				rows[cf.Stmt] = append(rows[cf.Stmt], cf.Rows...)
				frames[cf.Stmt]++
			}

			for i, want := range buffered.Results {
				got := done.Results[i]
				if got.Error != want.Error {
					t.Errorf("stmt %d error: chunked %q, buffered %q", i, got.Error, want.Error)
				}
				if got.Message != want.Message || got.Affected != want.Affected {
					t.Errorf("stmt %d outcome: chunked %q/%d, buffered %q/%d",
						i, got.Message, got.Affected, want.Message, want.Affected)
				}
				if got.RowCount != want.RowCount || len(got.Rows) != 0 {
					t.Errorf("stmt %d rows: chunked count %d (inline %d), buffered count %d",
						i, got.RowCount, len(got.Rows), want.RowCount)
				}
				if got.Chunks != frames[i] {
					t.Errorf("stmt %d reported %d chunks, observed %d frames", i, got.Chunks, frames[i])
				}
				streamed := rows[i]
				if len(streamed) != len(want.Rows) {
					t.Fatalf("stmt %d streamed %d rows, buffered %d", i, len(streamed), len(want.Rows))
				}
				if len(streamed) > 0 && strings.Join(cols[i], ",") != strings.Join(want.Columns, ",") {
					t.Errorf("stmt %d columns: chunked %v, buffered %v", i, cols[i], want.Columns)
				}
				for j := range streamed {
					if string(streamed[j]) != string(want.Rows[j]) {
						t.Fatalf("stmt %d row %d bytes diverge:\nchunked  %s\nbuffered %s",
							i, j, streamed[j], want.Rows[j])
					}
				}
			}

			// The session drops back to buffered mode cleanly.
			c.setChunk(t, 0)
			mustOK(t, c.roundTrip(t, "SELECT count(*) FROM t"))

			// A negative row count is rejected and the session survives.
			resp := c.roundTrip(t, "SET wire_chunk_rows = -1")
			if resp.Error == "" {
				t.Error("negative wire_chunk_rows accepted")
			}
			mustOK(t, c.roundTrip(t, "SELECT count(*) FROM t"))
		})
	}
}

// TestStreamLargeResultBeyondLineCap builds a result whose buffered
// encoding exceeds the 4 MiB response cap and asserts buffered mode
// still answers with the capped per-statement error while chunked mode
// delivers every row, each frame under the line cap.
func TestStreamLargeResultBeyondLineCap(t *testing.T) {
	db, _, addr, stop := startServerCfg(t, repro.Config{}, Config{})
	defer stop()
	if _, err := db.CreateTable(repro.TableSpec{
		Name:        "big",
		Columns:     []repro.Column{{Name: "k", Kind: repro.Int}, {Name: "body", Kind: repro.String}},
		ClusteredBy: []string{"k"},
	}); err != nil {
		t.Fatal(err)
	}
	wide := strings.Repeat("x", 2<<10)
	rows := make([]repro.Row, 2560) // 2560 * 2 KiB of payload > 4 MiB encoded
	for i := range rows {
		rows[i] = repro.Row{repro.IntVal(int64(i)), repro.StringVal(wide)}
	}
	if err := db.Table("big").Load(rows); err != nil {
		t.Fatal(err)
	}

	c := dial(t, addr)
	defer c.close()

	// Buffered: the PR 6 cap error, session intact.
	resp := c.roundTrip(t, "SELECT * FROM big")
	if e := resp.Results[0].Error; !strings.Contains(e, "response cap") {
		t.Fatalf("buffered oversized result error = %q", e)
	}

	// Chunked: the same statement completes, row-complete and in order.
	c.setChunk(t, 256)
	chunks, done := c.chunkTrip(t, "SELECT * FROM big")
	if done.Error != "" || done.Results[0].Error != "" {
		t.Fatalf("chunked oversized result failed: %+v", done)
	}
	total := 0
	for _, cf := range chunks {
		total += len(cf.Rows)
	}
	if total != 2560 || done.Results[0].RowCount != 2560 {
		t.Fatalf("streamed %d rows (summary %d), want 2560", total, done.Results[0].RowCount)
	}
	if done.Results[0].Chunks != len(chunks) {
		t.Errorf("summary chunks %d, observed %d", done.Results[0].Chunks, len(chunks))
	}
	if v := metric(t, db, "server.stream_chunks"); v < int64(len(chunks)) {
		t.Errorf("server.stream_chunks = %d, want >= %d", v, len(chunks))
	}
}

// TestStreamSlowReaderBackpressure stalls a chunked client behind a
// tiny send queue and asserts the producing statement blocks (counted
// in server.backpressure_waits_ns), dies by its statement timeout, and
// leaves no pinned frames or goroutines behind.
func TestStreamSlowReaderBackpressure(t *testing.T) {
	before := runtime.NumGoroutine()
	db, _, addr, stop := startServerCfg(t,
		repro.Config{StatementTimeout: 300 * time.Millisecond},
		Config{ChunkQueue: 1, WriteTimeout: 600 * time.Millisecond})
	// A fat-row table so the socket buffers fill fast.
	if _, err := db.CreateTable(repro.TableSpec{
		Name:        "fat",
		Columns:     []repro.Column{{Name: "k", Kind: repro.Int}, {Name: "pad", Kind: repro.String}},
		ClusteredBy: []string{"k"},
	}); err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("y", 2<<10)
	wide := make([]repro.Row, 8000)
	for i := range wide {
		wide[i] = repro.Row{repro.IntVal(int64(i)), repro.StringVal(pad)}
	}
	if err := db.Table("fat").Load(wide); err != nil {
		t.Fatal(err)
	}

	c := dial(t, addr)
	c.setChunk(t, 1)
	if _, err := fmt.Fprintf(c.conn, "SELECT * FROM fat\n"); err != nil {
		t.Fatal(err)
	}
	// Do not read: the queue fills, the producer blocks, the statement
	// timeout fires, and the write timeout fails the stalled connection.
	deadline := time.Now().Add(10 * time.Second)
	for metric(t, db, "query.timed_out") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("statement never timed out behind the stalled reader")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if v := metric(t, db, "server.backpressure_waits_ns"); v <= 0 {
		t.Errorf("server.backpressure_waits_ns = %d, want > 0", v)
	}
	c.close()
	stop()

	if pinned := db.PinnedFrames(); pinned != 0 {
		t.Errorf("%d pinned frames after the aborted stream", pinned)
	}
	waitGoroutines(t, before)
}

// TestStreamClientDisconnectMidStream drops a chunked client after a
// few frames of a slow cold scan and asserts the statement cancels,
// frames unpin, the server keeps serving and nothing leaks.
func TestStreamClientDisconnectMidStream(t *testing.T) {
	before := runtime.NumGoroutine()
	db, _, addr, stop := startServerCfg(t, slowDiskCfg(), Config{WriteTimeout: time.Second})
	loadWideTable(t, db, 6000)
	if err := db.ColdCache(); err != nil {
		t.Fatal(err)
	}

	c := dial(t, addr)
	c.setChunk(t, 1)
	if _, err := fmt.Fprintf(c.conn, "SELECT * FROM wide\n"); err != nil {
		t.Fatal(err)
	}
	// Read a few frames to prove the stream started, then vanish.
	for i := 0; i < 3; i++ {
		if _, err := c.r.ReadBytes('\n'); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	c.close()

	deadline := time.Now().Add(10 * time.Second)
	for metric(t, db, "query.cancelled") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("query.cancelled never rose after the mid-stream disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The engine took no damage: a fresh buffered client gets answers.
	c2 := dial(t, addr)
	resp := mustOK(t, c2.roundTrip(t, "SELECT count(*) FROM wide"))
	if len(resp.Results[0].Rows) != 1 {
		t.Fatalf("follow-up query: %+v", resp.Results)
	}
	c2.close()
	stop()

	if pinned := db.PinnedFrames(); pinned != 0 {
		t.Errorf("%d pinned frames after the cancelled stream", pinned)
	}
	waitGoroutines(t, before)
}

// waitGoroutines polls until the goroutine count returns to the given
// baseline (plus scheduler slack).
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCoalesceCrossConnection sends point probes from many connections
// into a coalescing server and asserts every session gets its own
// correct rows, the batcher actually formed cross-connection batches,
// and a chunked session's coalesced result still arrives in frames.
func TestCoalesceCrossConnection(t *testing.T) {
	db, _, addr, stop := startServerCfg(t, repro.Config{Workers: 4},
		Config{Coalesce: true, CoalesceWindow: 20 * time.Millisecond, MaxConcurrentStmts: 2})
	defer stop()
	streamFixture(t, db)

	const conns = 8
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReaderSize(conn, 1<<20)
			for round := 0; round < 5; round++ {
				k := i*5 + round // distinct key per probe: c = k, s = "row-k"
				if _, err := fmt.Fprintf(conn, "SELECT s FROM t WHERE c = %d\n", k); err != nil {
					errs <- err
					return
				}
				raw, err := r.ReadBytes('\n')
				if err != nil {
					errs <- err
					return
				}
				var resp Response
				if err := json.Unmarshal(raw, &resp); err != nil {
					errs <- err
					return
				}
				if resp.Error != "" || len(resp.Results) != 1 || resp.Results[0].Error != "" {
					errs <- fmt.Errorf("probe %d: %+v", k, resp)
					return
				}
				rows := resp.Results[0].Rows
				if len(rows) != 1 || rows[0][0] != fmt.Sprintf("row-%d", k) {
					errs <- fmt.Errorf("probe %d got %v", k, rows)
					return
				}
			}
			errs <- nil
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	batches := metric(t, db, "server.coalesced_batches")
	stmts := metric(t, db, "server.coalesced_stmts")
	if batches < 1 || stmts != conns*5 {
		t.Fatalf("coalesced_batches = %d, coalesced_stmts = %d (want >=1 and %d)", batches, stmts, conns*5)
	}
	if stmts <= batches {
		t.Errorf("no cross-connection batching: %d stmts in %d batches", stmts, batches)
	}

	// Coalesced + chunked compose: a chunked session's coalescible probe
	// streams its rows in frames with the summary after.
	cc := dial(t, addr)
	defer cc.close()
	cc.setChunk(t, 2)
	chunks, done := cc.chunkTrip(t, "SELECT * FROM t WHERE u = 3")
	if done.Error != "" || done.Results[0].Error != "" {
		t.Fatalf("chunked coalesced probe: %+v", done)
	}
	total := 0
	for _, cf := range chunks {
		total += len(cf.Rows)
	}
	if total == 0 || total != done.Results[0].RowCount {
		t.Fatalf("chunked coalesced probe streamed %d rows, summary %d", total, done.Results[0].RowCount)
	}
}

// TestCoalesceFaultIsolation injects a single disk fault into one
// statement of a coalesced batch and asserts only that statement fails
// while its batchmates succeed, with no pinned frames left behind.
func TestCoalesceFaultIsolation(t *testing.T) {
	db, _, addr, stop := startServerCfg(t, repro.Config{Workers: 4},
		Config{Coalesce: true, CoalesceWindow: 50 * time.Millisecond, CoalesceMax: 8})
	defer stop()

	// Two tables: a stays pool-resident (warmed below), b stays cold so
	// only its probe touches the disk once the plan is armed.
	results, err := db.ExecScript(
		"CREATE TABLE a (k INT, v STRING) CLUSTERED BY (k); LOAD INTO a VALUES (1,'a1'), (2,'a2'), (3,'a3');" +
			"CREATE TABLE b (k INT, v STRING) CLUSTERED BY (k); LOAD INTO b VALUES (1,'b1'), (2,'b2')")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if err := db.ColdCache(); err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 3; k++ {
		if _, err := db.Exec(fmt.Sprintf("SELECT v FROM a WHERE k = %d", k)); err != nil {
			t.Fatal(err)
		}
	}
	// Armed now: counters are relative to SetFaultPlan, so the very next
	// disk read — b's cold probe, a's probes are pool hits — fails once.
	db.SetFaultPlan(&repro.FaultPlan{FailReadN: 1})
	defer db.SetFaultPlan(nil)

	// Fire the batch: three warm probes on a and one cold probe on b,
	// concurrently, inside one coalescing window.
	type probeResult struct {
		sql  string
		resp Response
		err  error
	}
	stmts := []string{
		"SELECT v FROM a WHERE k = 1",
		"SELECT v FROM a WHERE k = 2",
		"SELECT v FROM a WHERE k = 3",
		"SELECT v FROM b WHERE k = 1",
	}
	out := make(chan probeResult, len(stmts))
	for _, sql := range stmts {
		go func(sql string) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				out <- probeResult{sql: sql, err: err}
				return
			}
			defer conn.Close()
			r := bufio.NewReaderSize(conn, 1<<20)
			if _, err := fmt.Fprintf(conn, "%s\n", sql); err != nil {
				out <- probeResult{sql: sql, err: err}
				return
			}
			raw, err := r.ReadBytes('\n')
			if err != nil {
				out <- probeResult{sql: sql, err: err}
				return
			}
			var resp Response
			if err := json.Unmarshal(raw, &resp); err != nil {
				out <- probeResult{sql: sql, err: err}
				return
			}
			out <- probeResult{sql: sql, resp: resp}
		}(sql)
	}
	for i := 0; i < len(stmts); i++ {
		pr := <-out
		if pr.err != nil {
			t.Fatalf("%s: %v", pr.sql, pr.err)
		}
		if pr.resp.Error != "" || len(pr.resp.Results) != 1 {
			t.Fatalf("%s: %+v", pr.sql, pr.resp)
		}
		sr := pr.resp.Results[0]
		if strings.Contains(pr.sql, "FROM b") {
			if !strings.Contains(sr.Error, "injected") {
				t.Errorf("%s: error = %q, want the injected fault", pr.sql, sr.Error)
			}
		} else {
			if sr.Error != "" || len(sr.Rows) != 1 {
				t.Errorf("%s: batchmate damaged by the fault: %+v", pr.sql, sr)
			}
		}
	}

	if v := metric(t, db, "server.coalesced_batches"); v < 1 {
		t.Errorf("server.coalesced_batches = %d, want >= 1", v)
	}
	if v := metric(t, db, "disk.injected_faults"); v != 1 {
		t.Errorf("disk.injected_faults = %d, want 1", v)
	}
	if pinned := db.PinnedFrames(); pinned != 0 {
		t.Errorf("%d pinned frames after the injected fault", pinned)
	}
}

// TestStreamMetricsReset drives every wire-v2 counter nonzero —
// through real traffic where deterministic, directly where timing
// would be flaky — and asserts ResetMetrics zeroes all five.
func TestStreamMetricsReset(t *testing.T) {
	db, _, addr, stop := startServerCfg(t, repro.Config{},
		Config{Coalesce: true, AuthToken: "sesame"})
	defer stop()
	streamFixture(t, db)

	good := dial(t, addr)
	defer good.close()
	mustOK(t, good.roundTrip(t, "AUTH sesame"))
	good.setChunk(t, 4)
	if _, done := good.chunkTrip(t, "SELECT * FROM t WHERE u = 3"); done.Error != "" {
		t.Fatalf("chunked probe: %+v", done)
	}

	bad := dial(t, addr)
	bad.roundTrip(t, "AUTH wrong")
	bad.close()

	// Backpressure waits depend on a full queue at the right instant;
	// record one directly — the counter wiring is what this test pins.
	db.RecordBackpressureWait(time.Millisecond)

	names := []string{"server.stream_chunks", "server.backpressure_waits_ns",
		"server.coalesced_batches", "server.coalesced_stmts", "server.auth_failures"}
	for _, name := range names {
		if v := metric(t, db, name); v <= 0 {
			t.Fatalf("%s = %d before reset, want > 0", name, v)
		}
	}
	db.ResetMetrics()
	for _, name := range names {
		if v := metric(t, db, name); v != 0 {
			t.Errorf("%s = %d after ResetMetrics, want 0", name, v)
		}
	}
}

// TestAuthToken pins the auth handshake: the right token opens the
// session, a wrong or missing token gets one clean JSON error and a
// closed connection (counted in server.auth_failures), and a server
// without a token accepts any AUTH line.
func TestAuthToken(t *testing.T) {
	db, _, addr, stop := startServerCfg(t, repro.Config{}, Config{AuthToken: "open-sesame"})
	defer stop()

	// Right token: session opens and serves.
	c := dial(t, addr)
	resp := mustOK(t, c.roundTrip(t, "AUTH open-sesame"))
	if len(resp.Results) != 1 || resp.Results[0].Message != "AUTH ok" {
		t.Fatalf("AUTH answer: %+v", resp.Results)
	}
	mustOK(t, c.roundTrip(t, "SHOW TABLES"))
	c.close()

	// Wrong token: one error line, then the connection closes.
	c = dial(t, addr)
	resp = c.roundTrip(t, "AUTH wrong")
	if !strings.Contains(resp.Error, "authentication failed") {
		t.Fatalf("wrong-token error = %q", resp.Error)
	}
	if _, err := c.r.ReadBytes('\n'); err == nil {
		t.Fatal("connection stayed open after a failed AUTH")
	}
	c.close()
	if v := metric(t, db, "server.auth_failures"); v != 1 {
		t.Fatalf("server.auth_failures = %d, want 1", v)
	}

	// Missing token: the first SQL line is refused and the connection
	// closes without executing anything.
	c = dial(t, addr)
	resp = c.roundTrip(t, "SHOW TABLES")
	if !strings.Contains(resp.Error, "authentication required") {
		t.Fatalf("unauthed error = %q", resp.Error)
	}
	if _, err := c.r.ReadBytes('\n'); err == nil {
		t.Fatal("connection stayed open after an unauthenticated statement")
	}
	c.close()
	if v := metric(t, db, "server.auth_failures"); v != 2 {
		t.Fatalf("server.auth_failures = %d, want 2", v)
	}

	// A token-less server accepts any AUTH line, so clients can always
	// send one.
	_, openAddr, openStop := startServer(t)
	defer openStop()
	c = dial(t, openAddr)
	defer c.close()
	resp = mustOK(t, c.roundTrip(t, "AUTH anything-at-all"))
	if resp.Results[0].Message != "AUTH ok" {
		t.Fatalf("token-less AUTH answer: %+v", resp.Results)
	}
	mustOK(t, c.roundTrip(t, "SHOW TABLES"))
}

package server

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"

	"repro"
)

// StartDebug starts the optional debug HTTP listener on addr and
// returns it. addr == "" returns (nil, nil) and starts nothing — the
// SQL port never exposes profiling, so a deployment that omits
// -debug-addr has no pprof surface at all. The mux is private (not
// http.DefaultServeMux, which other packages can pollute) and serves:
//
//	/debug/metrics  — the DB's metrics snapshot as one JSON object
//	                  (name -> value); ?like=pattern filters names
//	                  with SQL-LIKE matching, as SHOW METRICS LIKE
//	/debug/vars     — expvar JSON (Go runtime counters)
//	/debug/pprof/*  — net/http/pprof profiles (heap, CPU, trace, ...)
//
// Close the returned listener to stop serving.
func StartDebug(addr string, db *repro.DB) (net.Listener, error) {
	if addr == "" {
		return nil, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		obj := make(map[string]int64)
		for _, m := range db.Metrics(r.URL.Query().Get("like")) {
			obj[m.Name] = m.Value
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(obj)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}

package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"repro"
)

// startServer boots a server on a loopback port over a fresh DB and
// returns its address plus a shutdown func.
func startServer(t *testing.T) (*repro.DB, string, func()) {
	t.Helper()
	db := repro.Open(repro.Config{})
	srv := New(db, Config{Logf: t.Logf})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return db, ln.Addr().String(), func() {
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
}

// client is a test connection speaking the wire protocol.
type client struct {
	conn net.Conn
	r    *bufio.Reader
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return &client{conn: conn, r: bufio.NewReaderSize(conn, 1<<20)}
}

func (c *client) close() { c.conn.Close() }

// roundTrip sends one line (raw SQL or JSON) and decodes the response.
func (c *client) roundTrip(t *testing.T, line string) Response {
	t.Helper()
	if _, err := fmt.Fprintf(c.conn, "%s\n", line); err != nil {
		t.Fatalf("write: %v", err)
	}
	raw, err := c.r.ReadBytes('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	var resp Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("decode %q: %v", raw, err)
	}
	return resp
}

// mustOK asserts every statement in the response succeeded.
func mustOK(t *testing.T, resp Response) Response {
	t.Helper()
	if resp.Error != "" {
		t.Fatalf("response error: %s", resp.Error)
	}
	for i, r := range resp.Results {
		if r.Error != "" {
			t.Fatalf("statement %d: %s", i, r.Error)
		}
	}
	return resp
}

func TestServerBasicRoundTrips(t *testing.T) {
	_, addr, stop := startServer(t)
	defer stop()
	c := dial(t, addr)
	defer c.close()

	mustOK(t, c.roundTrip(t, "CREATE TABLE kv (k INT, v STRING) CLUSTERED BY (k)"))
	mustOK(t, c.roundTrip(t, "LOAD INTO kv VALUES (1, 'one'), (2, 'two'), (3, 'three')"))

	// Raw SQL line.
	resp := mustOK(t, c.roundTrip(t, "SELECT v FROM kv WHERE k >= 2"))
	if len(resp.Results) != 1 || len(resp.Results[0].Rows) != 2 {
		t.Fatalf("select: %+v", resp)
	}
	if resp.Results[0].Rows[0][0] != "two" {
		t.Errorf("row payload: %+v", resp.Results[0].Rows[0])
	}

	// JSON-framed request with several statements: one response line,
	// one result per statement.
	req, _ := json.Marshal(Request{SQL: "SELECT * FROM kv WHERE k = 1; SELECT * FROM kv WHERE k != 1; INSERT INTO kv VALUES (4, 'four')"})
	resp = mustOK(t, c.roundTrip(t, string(req)))
	if len(resp.Results) != 3 {
		t.Fatalf("batched: %+v", resp)
	}
	if len(resp.Results[0].Rows) != 1 || len(resp.Results[1].Rows) != 2 {
		t.Errorf("batched rows: %+v", resp.Results)
	}
	if resp.Results[2].Affected != 1 {
		t.Errorf("insert affected: %+v", resp.Results[2])
	}

	// Numbers survive as JSON numbers (int column round-trips).
	resp = mustOK(t, c.roundTrip(t, "SELECT k FROM kv WHERE v = 'four'"))
	if n, ok := resp.Results[0].Rows[0][0].(float64); !ok || n != 4 {
		t.Errorf("int cell decoded as %#v", resp.Results[0].Rows[0][0])
	}

	// Statement errors are per-statement, not connection-fatal.
	resp = c.roundTrip(t, "SELECT * FROM ghosts; SELECT k FROM kv WHERE k = 1")
	if resp.Error != "" {
		t.Fatalf("line error: %s", resp.Error)
	}
	if resp.Results[0].Error == "" || resp.Results[1].Error != "" {
		t.Errorf("per-statement errors: %+v", resp.Results)
	}

	// Parse errors answer on the line without executing anything.
	resp = c.roundTrip(t, "SELEKT * FROM kv")
	if resp.Error == "" {
		t.Error("parse error not reported")
	}

	// Bad JSON answers too.
	resp = c.roundTrip(t, "{not json")
	if resp.Error == "" {
		t.Error("bad JSON not reported")
	}
}

// TestServerConcurrentClients runs 12 client connections hammering one
// table with mixed reads and writes. Under -race this exercises the
// session goroutines, ExecScript batching and the engine latches
// together; every client must see internally consistent results.
func TestServerConcurrentClients(t *testing.T) {
	db, addr, stop := startServer(t)
	defer stop()

	setup := dial(t, addr)
	mustOK(t, setup.roundTrip(t, "CREATE TABLE grid (c INT, u INT, tag STRING) CLUSTERED BY (c) BUCKET TUPLES 16"))
	var load strings.Builder
	load.WriteString("LOAD INTO grid VALUES ")
	const seedRows = 2000
	for i := 0; i < seedRows; i++ {
		if i > 0 {
			load.WriteString(", ")
		}
		fmt.Fprintf(&load, "(%d, %d, 'seed')", i, i/20)
	}
	mustOK(t, setup.roundTrip(t, load.String()))
	mustOK(t, setup.roundTrip(t, "CREATE CORRELATION MAP cm_u ON grid (u)"))
	mustOK(t, setup.roundTrip(t, "CREATE INDEX ix_u ON grid (u)"))
	setup.close()

	const clients = 12
	const rounds = 15
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReaderSize(conn, 1<<20)
			trip := func(line string) (Response, error) {
				if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
					return Response{}, err
				}
				raw, err := r.ReadBytes('\n')
				if err != nil {
					return Response{}, err
				}
				var resp Response
				if err := json.Unmarshal(raw, &resp); err != nil {
					return Response{}, err
				}
				return resp, nil
			}
			for round := 0; round < rounds; round++ {
				u := (w*rounds + round) % 100
				switch w % 3 {
				case 0: // writer: insert then read back its tag
					tag := fmt.Sprintf("w%d-%d", w, round)
					resp, err := trip(fmt.Sprintf(
						"INSERT INTO grid VALUES (%d, %d, '%s')", 100000+w*1000+round, u, tag))
					if err != nil {
						errs <- err
						return
					}
					if resp.Error != "" || resp.Results[0].Error != "" {
						errs <- fmt.Errorf("insert: %+v", resp)
						return
					}
					resp, err = trip(fmt.Sprintf("SELECT tag FROM grid WHERE tag = '%s'", tag))
					if err != nil {
						errs <- err
						return
					}
					if len(resp.Results[0].Rows) != 1 {
						errs <- fmt.Errorf("client %d lost its insert %q", w, tag)
						return
					}
				case 1: // batch reader: ';'-separated SELECTs hit SelectMany
					resp, err := trip(fmt.Sprintf(
						"SELECT * FROM grid WHERE u = %d; SELECT c FROM grid WHERE u BETWEEN %d AND %d LIMIT 5; EXPLAIN SELECT * FROM grid WHERE u = %d",
						u, u, u+3, u))
					if err != nil {
						errs <- err
						return
					}
					if resp.Error != "" {
						errs <- fmt.Errorf("batch: %s", resp.Error)
						return
					}
					for i, res := range resp.Results {
						if res.Error != "" {
							errs <- fmt.Errorf("batch stmt %d: %s", i, res.Error)
							return
						}
					}
					if n := len(resp.Results[1].Rows); n > 5 {
						errs <- fmt.Errorf("LIMIT 5 returned %d rows", n)
						return
					}
				default: // metadata reader
					resp, err := trip("SHOW TABLES; SHOW CMS FOR grid; SHOW STATS")
					if err != nil {
						errs <- err
						return
					}
					if resp.Error != "" || len(resp.Results) != 3 {
						errs <- fmt.Errorf("show: %+v", resp)
						return
					}
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Every seed row plus every writer insert must be visible.
	wantInserts := 0
	for w := 0; w < clients; w++ {
		if w%3 == 0 {
			wantInserts += rounds
		}
	}
	if got := db.Table("grid").RowCount(); got != int64(seedRows+wantInserts) {
		t.Errorf("final rowcount %d, want %d", got, seedRows+wantInserts)
	}
}

// TestServerSessionIsolation asserts one session's oversized or broken
// input does not affect another live session.
func TestServerSessionIsolation(t *testing.T) {
	_, addr, stop := startServer(t)
	defer stop()

	good := dial(t, addr)
	defer good.close()
	mustOK(t, good.roundTrip(t, "CREATE TABLE t (a INT) CLUSTERED BY (a)"))

	// A client that sends garbage and hangs up mid-line.
	bad := dial(t, addr)
	fmt.Fprint(bad.conn, "SELECT * FROM t WHERE a = 'unterminated\n")
	bad.conn.(*net.TCPConn).CloseWrite()
	bad.close()

	// The good session keeps working.
	resp := mustOK(t, good.roundTrip(t, "LOAD INTO t VALUES (1), (2); SELECT * FROM t"))
	if len(resp.Results[1].Rows) != 2 {
		t.Errorf("post-garbage select: %+v", resp.Results[1])
	}
}

// TestServerOversizedResultCap asserts a statement whose encoded result
// exceeds the 4 MiB line cap answers with a clean per-statement error
// (naming the statement and its row count) instead of killing the
// connection: the other statements on the line still run and the
// session stays alive for later requests.
func TestServerOversizedResultCap(t *testing.T) {
	db, addr, stop := startServer(t)
	defer stop()

	// Build > 4 MiB of result payload natively — the request-line cap
	// would reject loading this over the wire in one statement.
	if _, err := db.CreateTable(repro.TableSpec{
		Name:        "big",
		Columns:     []repro.Column{{Name: "k", Kind: repro.Int}, {Name: "body", Kind: repro.String}},
		ClusteredBy: []string{"k"},
	}); err != nil {
		t.Fatal(err)
	}
	wide := strings.Repeat("x", 2<<10)
	rows := make([]repro.Row, 2560) // 2560 * 2 KiB of string payload > 4 MiB encoded
	for i := range rows {
		rows[i] = repro.Row{repro.IntVal(int64(i)), repro.StringVal(wide)}
	}
	if err := db.Table("big").Load(rows); err != nil {
		t.Fatal(err)
	}

	c := dial(t, addr)
	defer c.close()

	resp := c.roundTrip(t, "SELECT * FROM big; SELECT count(*) FROM big")
	if resp.Error != "" {
		t.Fatalf("line error: %s", resp.Error)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(resp.Results))
	}
	errMsg := resp.Results[0].Error
	if !strings.Contains(errMsg, "statement 1") || !strings.Contains(errMsg, "2560 rows") {
		t.Fatalf("cap error = %q; want the statement id and row count", errMsg)
	}
	if len(resp.Results[0].Rows) != 0 {
		t.Errorf("oversized result still carried %d rows", len(resp.Results[0].Rows))
	}
	if resp.Results[1].Error != "" || len(resp.Results[1].Rows) != 1 {
		t.Fatalf("follow-up statement on the same line: %+v", resp.Results[1])
	}

	// The session survives for later round trips.
	resp = mustOK(t, c.roundTrip(t, "SELECT k FROM big LIMIT 3"))
	if len(resp.Results[0].Rows) != 3 {
		t.Errorf("post-cap select: %+v", resp.Results[0])
	}
}

// paperFixture loads a correlated employees table (city soft-determines
// state, the paper's running example) into db through the SQL surface
// and returns the load script's row count.
func paperFixture(t *testing.T, db *repro.DB) {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("CREATE TABLE employees (state STRING, city STRING, salary INT) CLUSTERED BY (state) BUCKET TUPLES 8;\n")
	sb.WriteString("LOAD INTO employees VALUES ")
	states := []string{"AL", "CA", "MA", "NH", "OH", "TX"}
	cities := []string{"auburn", "fresno", "boston", "nashua", "toledo", "austin"}
	for i := 0; i < 480; i++ {
		si := (i / 80) % len(states)
		ci := si
		if i%17 == 0 { // soft FD: a few cross-state outliers
			ci = (si + 1) % len(cities)
		}
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "('%s', '%s', %d)", states[si], cities[ci], 20000+(i*37)%90000)
	}
	sb.WriteString(";\nCREATE CORRELATION MAP cm_city ON employees (city);")
	results, err := db.ExecScript(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("fixture statement %d: %v", i, r.Err)
		}
	}
}

// TestServerPaperAggregateWorkload runs the paper's own query shape —
// SELECT AVG(salary) FROM employees WHERE city = ... — through the wire
// protocol and pins it to the native SelectAggregate result, with the
// EXPLAIN plan showing the agg/sort nodes and a workers=8 server
// byte-identical to a serial engine.
func TestServerPaperAggregateWorkload(t *testing.T) {
	db := repro.Open(repro.Config{Workers: 8})
	paperFixture(t, db)
	srv := New(db, Config{Logf: t.Logf})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	c := dial(t, ln.Addr().String())
	defer c.close()

	// The paper's example, verbatim shape, over the wire.
	resp := mustOK(t, c.roundTrip(t, "SELECT AVG(salary) FROM employees WHERE city = 'boston'"))
	if len(resp.Results) != 1 || len(resp.Results[0].Rows) != 1 {
		t.Fatalf("avg response: %+v", resp)
	}
	wireAvg := resp.Results[0].Rows[0][0].(float64)
	hdr, rows, err := db.SelectAggregate(repro.QuerySpec{
		Table: "employees",
		Preds: []repro.Pred{repro.Eq("city", repro.StringVal("boston"))},
		Aggs:  []repro.Agg{{Func: repro.Avg, Col: "salary"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if hdr[0] != "avg(salary)" || resp.Results[0].Columns[0] != "avg(salary)" {
		t.Errorf("headers: native %v, wire %v", hdr, resp.Results[0].Columns)
	}
	if native := rows[0][0].Float(); wireAvg != native {
		t.Errorf("wire avg %v != native %v", wireAvg, native)
	}

	// Grouped + ordered + limited, still one wire line.
	stmt := "SELECT city, avg(salary), count(*) FROM employees GROUP BY city ORDER BY avg(salary) DESC, city LIMIT 4"
	resp = mustOK(t, c.roundTrip(t, stmt))
	_, nativeRows, err := db.SelectAggregate(repro.QuerySpec{
		Table:   "employees",
		Aggs:    []repro.Agg{{Func: repro.Avg, Col: "salary"}, {Func: repro.Count}},
		GroupBy: []string{"city"},
		OrderBy: []repro.Order{{Col: "avg(salary)", Desc: true}, {Col: "city"}},
		Limit:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := resp.Results[0].Rows
	if len(got) != len(nativeRows) {
		t.Fatalf("wire %d rows, native %d", len(got), len(nativeRows))
	}
	for i := range got {
		// Wire order is the SELECT list (city, avg, count); native
		// canonical order is (city, avg, count) too.
		if got[i][0].(string) != nativeRows[i][0].Str() ||
			got[i][1].(float64) != nativeRows[i][1].Float() ||
			int64(got[i][2].(float64)) != nativeRows[i][2].Int() {
			t.Errorf("row %d: wire %v vs native %v", i, got[i], nativeRows[i])
		}
	}

	// Workers=8 must be byte-identical to a fully serial engine.
	serial := repro.Open(repro.Config{Workers: 1})
	paperFixture(t, serial)
	_, serialRows, err := serial.SelectAggregate(repro.QuerySpec{
		Table:   "employees",
		Aggs:    []repro.Agg{{Func: repro.Avg, Col: "salary"}, {Func: repro.Count}},
		GroupBy: []string{"city"},
		OrderBy: []repro.Order{{Col: "avg(salary)", Desc: true}, {Col: "city"}},
		Limit:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range nativeRows {
		for j := range nativeRows[i] {
			if nativeRows[i][j].String() != serialRows[i][j].String() {
				t.Errorf("parallel row %d col %d = %v, serial %v", i, j, nativeRows[i][j], serialRows[i][j])
			}
		}
	}

	// EXPLAIN over the wire surfaces the plan tree: the paper's grouped
	// AVG is fully covered by the city CM, so the access row is the
	// index-only cm-agg node with sort and limit above it.
	resp = mustOK(t, c.roundTrip(t, "EXPLAIN "+stmt))
	kinds := make([]string, 0, len(resp.Results[0].Rows))
	for _, row := range resp.Results[0].Rows {
		kinds = append(kinds, row[0].(string))
	}
	if len(kinds) != 3 || kinds[0] != "cm-agg" || kinds[1] != "sort" || kinds[2] != "limit" {
		t.Errorf("EXPLAIN node rows = %v", kinds)
	}
}

package experiments

import (
	"io"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/heap"
	"repro/internal/table"
	"repro/internal/value"
)

// indexableCols are the ten eBay attribute sets the maintenance
// experiments index (Experiment 3 scales the index count 0..10).
func indexableCols() [][]int {
	return [][]int{
		{datagen.EBayCAT1},
		{datagen.EBayCAT2},
		{datagen.EBayCAT3},
		{datagen.EBayCAT4},
		{datagen.EBayCAT5},
		{datagen.EBayCAT6},
		{datagen.EBayPrice},
		{datagen.EBayItemID},
		{datagen.EBayCAT2, datagen.EBayCAT3},
		{datagen.EBayCAT4, datagen.EBayCAT5},
	}
}

// Figure8Config scales the insert-maintenance experiment.
type Figure8Config struct {
	EBay        datagen.EBayConfig
	InsertRows  int   // total tuples inserted; paper: 500k
	BatchSize   int   // tuples per committed batch; paper: 10k
	IndexCounts []int // x axis; paper: 0..10
	PoolPages   int   // buffer pool size; must be small vs index working set
	Seed        int64
}

func (c *Figure8Config) defaults() {
	if c.InsertRows <= 0 {
		c.InsertRows = 50000
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 5000
	}
	if len(c.IndexCounts) == 0 {
		c.IndexCounts = []int{0, 2, 4, 6, 8, 10}
	}
	if c.PoolPages <= 0 {
		c.PoolPages = 600
	}
}

// Figure8Point is one index count.
type Figure8Point struct {
	Indexes     int
	BTreeTime   time.Duration
	CMTime      time.Duration
	BTreeRate   float64 // tuples per second under B+Tree maintenance
	CMRate      float64
	BTreeDirty  uint64 // dirty page write-backs during the B+Tree run
	CMSizeBytes int64  // total CM footprint at the end
}

// Figure8Result is the maintenance sweep.
type Figure8Result struct {
	Points     []Figure8Point
	InsertRows int
}

// RunFigure8 reproduces Experiment 3 (Figure 8): the cost of bulk
// inserts as the number of secondary access methods grows, B+Trees vs
// CMs. B+Tree maintenance floods the buffer pool with dirty leaf pages
// whose eviction write-backs are random I/O; CMs stay in memory and pay
// only (shared) WAL traffic, so their line stays flat.
func RunFigure8(cfg Figure8Config) (*Figure8Result, error) {
	cfg.defaults()
	res := &Figure8Result{InsertRows: cfg.InsertRows}
	cols := indexableCols()
	for _, k := range cfg.IndexCounts {
		runSide := func(useCM bool) (time.Duration, uint64, int64, error) {
			env := NewEnv(cfg.PoolPages)
			tbl, err := env.LoadTable(table.Config{
				Name:          "items",
				Schema:        datagen.EBaySchema(),
				ClusteredCols: []int{datagen.EBayCATID},
				BucketTuples:  1,
			}, datagen.EBayItems(cfg.EBay))
			if err != nil {
				return 0, 0, 0, err
			}
			for i := 0; i < k; i++ {
				if useCM {
					spec := core.Spec{Name: "cm", UCols: cols[i]}
					if cols[i][0] == datagen.EBayPrice {
						spec.Bucketers = []core.Bucketer{core.FloatWidth{Width: 100}}
					}
					if _, err := tbl.CreateCM(spec); err != nil {
						return 0, 0, 0, err
					}
				} else {
					if _, err := tbl.CreateIndex("ix", cols[i]); err != nil {
						return 0, 0, 0, err
					}
				}
			}
			batch := datagen.EBayInsertBatch(cfg.EBay, cfg.InsertRows, cfg.Seed+77)
			dirtyBefore := env.Pool.Stats().DirtyWrites
			elapsed, _, err := env.Warm(func() error {
				for off := 0; off < len(batch); off += cfg.BatchSize {
					end := off + cfg.BatchSize
					if end > len(batch) {
						end = len(batch)
					}
					for _, row := range batch[off:end] {
						if _, err := tbl.Insert(row); err != nil {
							return err
						}
					}
					if err := tbl.Commit(); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return 0, 0, 0, err
			}
			var cmBytes int64
			for _, cm := range tbl.CMs() {
				cmBytes += cm.SizeBytes()
			}
			return elapsed, env.Pool.Stats().DirtyWrites - dirtyBefore, cmBytes, nil
		}
		bt, btDirty, _, err := runSide(false)
		if err != nil {
			return nil, err
		}
		ct, _, cmBytes, err := runSide(true)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Figure8Point{
			Indexes:     k,
			BTreeTime:   bt,
			CMTime:      ct,
			BTreeRate:   rate(cfg.InsertRows, bt),
			CMRate:      rate(cfg.InsertRows, ct),
			BTreeDirty:  btDirty,
			CMSizeBytes: cmBytes,
		})
	}
	return res, nil
}

func rate(rows int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(rows) / d.Seconds()
}

// Print renders the maintenance sweep and the Section 1 headline rates.
func (r *Figure8Result) Print(w io.Writer) {
	fprintf(w, "Figure 8 (Experiment 3): cost of %d insertions vs #indexes\n", r.InsertRows)
	fprintf(w, "%8s %14s %12s %16s %14s %14s\n",
		"indexes", "B+Tree [s]", "CM [s]", "B+Tree dirty pg", "B+Tree tup/s", "CM tup/s")
	for _, p := range r.Points {
		fprintf(w, "%8d %14s %12s %16d %14.0f %14.0f\n",
			p.Indexes, sec(p.BTreeTime), sec(p.CMTime), p.BTreeDirty, p.BTreeRate, p.CMRate)
	}
}

// Figure9Config scales the mixed-workload experiment.
type Figure9Config struct {
	EBay       datagen.EBayConfig
	Rounds     int // paper: 50 rounds
	InsertsPer int // paper: 10k per round
	SelectsPer int // paper: 100 per round
	Indexes    int // paper: 5
	PoolPages  int
	Seed       int64
}

func (c *Figure9Config) defaults() {
	if c.Rounds <= 0 {
		c.Rounds = 10
	}
	if c.InsertsPer <= 0 {
		c.InsertsPer = 2000
	}
	if c.SelectsPer <= 0 {
		c.SelectsPer = 20
	}
	if c.Indexes <= 0 {
		c.Indexes = 5
	}
	if c.PoolPages <= 0 {
		c.PoolPages = 600
	}
}

// Figure9Bar is one bar of the figure: a method under a workload, split
// into insert and select time.
type Figure9Bar struct {
	Label  string
	Insert time.Duration
	Select time.Duration
}

// Figure9Result holds the four bars.
type Figure9Result struct {
	Bars []Figure9Bar
}

// RunFigure9 reproduces the mixed-workload comparison of Experiment 3
// (Figure 9): rounds of bulk inserts followed by AVG(Price) selections on
// random CAT1..CAT6 values, under 5 B+Trees vs 5 CMs, against the
// insert-only baseline. Under B+Trees, selects and inserts fight for the
// buffer pool; CMs leave the pool to the heap.
func RunFigure9(cfg Figure9Config) (*Figure9Result, error) {
	cfg.defaults()
	// CAT2..CAT6: at reduced category counts CAT1 has so few values
	// that equality predicates cover ~10% of the table and every method
	// degenerates to a scan; the deeper levels keep the paper's
	// selectivity profile.
	catCols := []int{
		datagen.EBayCAT2, datagen.EBayCAT3,
		datagen.EBayCAT4, datagen.EBayCAT5, datagen.EBayCAT6,
	}
	if cfg.Indexes > len(catCols) {
		cfg.Indexes = len(catCols)
	}
	run := func(useCM, mixed bool) (Figure9Bar, error) {
		env := NewEnv(cfg.PoolPages)
		rows := datagen.EBayItems(cfg.EBay)
		tbl, err := env.LoadTable(table.Config{
			Name:          "items",
			Schema:        datagen.EBaySchema(),
			ClusteredCols: []int{datagen.EBayCATID},
			BucketTuples:  1,
		}, rows)
		if err != nil {
			return Figure9Bar{}, err
		}
		var cms []*core.CM
		var ixs []*table.Index
		for i := 0; i < cfg.Indexes; i++ {
			if useCM {
				cm, err := tbl.CreateCM(core.Spec{Name: "cm", UCols: []int{catCols[i]}})
				if err != nil {
					return Figure9Bar{}, err
				}
				cms = append(cms, cm)
			} else {
				ix, err := tbl.CreateIndex("ix", []int{catCols[i]})
				if err != nil {
					return Figure9Bar{}, err
				}
				ixs = append(ixs, ix)
			}
		}
		// Collect predicate values present in the data (sorted for
		// deterministic query selection).
		catVals := make([][]string, len(catCols))
		for i, col := range catCols {
			seen := map[string]struct{}{}
			for _, r := range rows {
				seen[r[col].S] = struct{}{}
			}
			for s := range seen {
				catVals[i] = append(catVals[i], s)
			}
			sort.Strings(catVals[i])
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 5))
		batch := datagen.EBayInsertBatch(cfg.EBay, cfg.Rounds*cfg.InsertsPer, cfg.Seed+6)
		var insertTime, selectTime time.Duration
		for round := 0; round < cfg.Rounds; round++ {
			ins := batch[round*cfg.InsertsPer : (round+1)*cfg.InsertsPer]
			el, _, err := env.Warm(func() error {
				for _, row := range ins {
					if _, err := tbl.Insert(row); err != nil {
						return err
					}
				}
				return tbl.Commit()
			})
			if err != nil {
				return Figure9Bar{}, err
			}
			insertTime += el
			if !mixed {
				continue
			}
			for s := 0; s < cfg.SelectsPer; s++ {
				ci := rng.Intn(cfg.Indexes)
				val := catVals[ci][rng.Intn(len(catVals[ci]))]
				q := exec.NewQuery(exec.Eq(catCols[ci], value.NewString(val)))
				var sum float64
				var n int64
				agg := func(_ heap.RID, row value.Row) bool {
					sum += row[datagen.EBayPrice].F
					n++
					return true
				}
				el, _, err := env.Warm(func() error {
					if useCM {
						return exec.CMScan(tbl, cms[ci], q, agg)
					}
					return exec.SortedIndexScan(tbl, ixs[ci], q, agg)
				})
				if err != nil {
					return Figure9Bar{}, err
				}
				selectTime += el
			}
		}
		label := "B+Tree"
		if useCM {
			label = "CM"
		}
		if mixed {
			label += "-mix"
		}
		return Figure9Bar{Label: label, Insert: insertTime, Select: selectTime}, nil
	}

	res := &Figure9Result{}
	for _, c := range []struct{ cm, mixed bool }{
		{false, true}, {false, false}, {true, true}, {true, false},
	} {
		bar, err := run(c.cm, c.mixed)
		if err != nil {
			return nil, err
		}
		res.Bars = append(res.Bars, bar)
	}
	return res, nil
}

// Print renders the four bars.
func (r *Figure9Result) Print(w io.Writer) {
	fprintf(w, "Figure 9 (Experiment 3): mixed workload, 5 indexes\n")
	fprintf(w, "%-12s %12s %12s %12s\n", "config", "INSERT [s]", "SELECT [s]", "total [s]")
	for _, b := range r.Bars {
		fprintf(w, "%-12s %12s %12s %12s\n", b.Label, sec(b.Insert), sec(b.Select), sec(b.Insert+b.Select))
	}
}

package experiments

import (
	"io"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/heap"
	"repro/internal/table"
	"repro/internal/value"
)

// ebayFixture is the shared setup of Experiments 1, 2 and 4: the items
// table clustered on CATID with a CM and a secondary B+Tree on Price.
type ebayFixture struct {
	env *Env
	tbl *table.Table
	ix  *table.Index
	cm  *core.CM
}

// priceWidthForTuples converts the paper's "tuples per bucket" knob into
// a Price bucket width: with N tuples spread over the price span, a
// bucket of k tuples is k/N of the span.
func priceWidthForTuples(rows []value.Row, tuplesPerBucket int) float64 {
	lo, hi := rows[0][datagen.EBayPrice].F, rows[0][datagen.EBayPrice].F
	for _, r := range rows {
		p := r[datagen.EBayPrice].F
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	span := hi - lo
	if span <= 0 {
		return 1
	}
	return span * float64(tuplesPerBucket) / float64(len(rows))
}

func buildEBay(cfg datagen.EBayConfig, priceBucketTuples int, poolPages int) (*ebayFixture, []value.Row, error) {
	rows := datagen.EBayItems(cfg)
	env := NewEnv(poolPages)
	tbl, err := env.LoadTable(table.Config{
		Name:          "items",
		Schema:        datagen.EBaySchema(),
		ClusteredCols: []int{datagen.EBayCATID},
		BucketTuples:  1, // one clustered bucket per category
	}, rows)
	if err != nil {
		return nil, nil, err
	}
	ix, err := tbl.CreateIndex("price", []int{datagen.EBayPrice})
	if err != nil {
		return nil, nil, err
	}
	cm, err := tbl.CreateCM(core.Spec{
		Name:  "price",
		UCols: []int{datagen.EBayPrice},
		Bucketers: []core.Bucketer{
			core.FloatWidth{Width: priceWidthForTuples(rows, priceBucketTuples)},
		},
	})
	if err != nil {
		return nil, nil, err
	}
	return &ebayFixture{env: env, tbl: tbl, ix: ix, cm: cm}, rows, nil
}

// Figure6Config scales Experiment 1.
type Figure6Config struct {
	EBay datagen.EBayConfig
	// BucketTuples is the Price CM bucket size in tuples. The paper's
	// 4096 corresponds to a ~$100 bucket at 43M rows; 0 picks the width
	// preserving that bucket-to-query-range ratio at the actual scale
	// (rows/10000, min 4).
	BucketTuples int
	Ranges       []int // price range widths in dollars
}

func (c *Figure6Config) defaults() {
	if len(c.Ranges) == 0 {
		c.Ranges = []int{0, 1000, 2000, 4000, 6000, 8000, 10000}
	}
}

// scaledBucketTuples preserves the paper's bucket-width economics at any
// row count: 4096 tuples of 43M ≈ 1/10500 of the table.
func scaledBucketTuples(configured, rows int) int {
	if configured > 0 {
		return configured
	}
	t := rows / 10000
	if t < 4 {
		t = 4
	}
	return t
}

// populatedBase returns a price at the 40th percentile of the data, so
// range queries anchored there always intersect real categories
// regardless of scale (the paper's fixed $1000 anchor relies on its 43M
// rows leaving no empty price regions).
func populatedBase(rows []value.Row) float64 {
	prices := make([]float64, len(rows))
	for i, r := range rows {
		prices[i] = r[datagen.EBayPrice].F
	}
	sortFloats(prices)
	return prices[int(float64(len(prices))*0.4)]
}

func sortFloats(s []float64) {
	sort.Float64s(s)
}

// Figure6Point is one x position: a price range width.
type Figure6Point struct {
	RangeDollars int
	CM           time.Duration
	BTree        time.Duration
	MatchedRows  int
}

// Figure6Result holds the sweep and the size comparison the experiment
// text highlights (CM ~0.9 MB vs B+Tree 860 MB in the paper).
type Figure6Result struct {
	Points    []Figure6Point
	CMBytes   int64
	TreeBytes int64
	Rows      int64
}

// RunFigure6 reproduces Experiment 1 (Figure 6):
//
//	SELECT COUNT(DISTINCT CAT2) FROM items
//	WHERE Price BETWEEN 1000 AND 1000+R
//
// comparing the CM on Price (bucketed) with the secondary B+Tree, both
// exploiting the clustering on the correlated CATID.
func RunFigure6(cfg Figure6Config) (*Figure6Result, error) {
	cfg.defaults()
	rowsData := datagen.EBayItems(cfg.EBay)
	bt := scaledBucketTuples(cfg.BucketTuples, len(rowsData))
	fx, _, err := buildEBay(cfg.EBay, bt, 4096)
	if err != nil {
		return nil, err
	}
	base := populatedBase(rowsData)
	res := &Figure6Result{
		CMBytes:   fx.cm.SizeBytes(),
		TreeBytes: fx.ix.SizeBytes(),
		Rows:      fx.tbl.Stats().TotalTups,
	}
	for _, r := range cfg.Ranges {
		q := exec.NewQuery(exec.Between(datagen.EBayPrice,
			value.NewFloat(base), value.NewFloat(base+float64(r))))
		matched := 0
		countDistinct := func(_ heap.RID, row value.Row) bool {
			matched++
			_ = row[datagen.EBayCAT2].S
			return true
		}
		cmT, _, err := fx.env.Cold(func() error {
			return exec.CMScan(fx.tbl, fx.cm, q, countDistinct)
		})
		if err != nil {
			return nil, err
		}
		cmMatched := matched
		matched = 0
		btT, _, err := fx.env.Cold(func() error {
			return exec.SortedIndexScan(fx.tbl, fx.ix, q, countDistinct)
		})
		if err != nil {
			return nil, err
		}
		if matched != cmMatched {
			return nil, errMismatch(cmMatched, matched)
		}
		res.Points = append(res.Points, Figure6Point{
			RangeDollars: r,
			CM:           cmT,
			BTree:        btT,
			MatchedRows:  matched,
		})
	}
	return res, nil
}

type mismatchError struct{ cm, bt int }

func errMismatch(cm, bt int) error { return mismatchError{cm, bt} }

func (e mismatchError) Error() string {
	return "experiments: CM and B+Tree row counts disagree"
}

// Print renders the figure.
func (r *Figure6Result) Print(w io.Writer) {
	fprintf(w, "Figure 6 (Experiment 1): CM vs B+Tree over Price ranges (%d rows)\n", r.Rows)
	fprintf(w, "CM size %s MB, B+Tree size %s MB (ratio 1:%.0f)\n",
		mb(r.CMBytes), mb(r.TreeBytes), float64(r.TreeBytes)/float64(r.CMBytes))
	fprintf(w, "%12s %12s %12s %10s\n", "range [$]", "CM [ms]", "B+Tree [ms]", "rows")
	for _, p := range r.Points {
		fprintf(w, "%12d %12s %12s %10d\n", p.RangeDollars, ms(p.CM), ms(p.BTree), p.MatchedRows)
	}
}

package experiments

import (
	"io"
	"math/rand"
	"time"

	"repro/internal/costmodel"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/heap"
	"repro/internal/table"
	"repro/internal/value"
)

// Figure3Config scales the correlated-vs-uncorrelated B+Tree experiment.
type Figure3Config struct {
	Orders  int // default 20000 (≈80k lineitems)
	Seed    int64
	NPoints []int // numbers of shipdates to look up; default 1..100 sweep
}

func (c *Figure3Config) defaults() {
	if c.Orders <= 0 {
		c.Orders = 20000
	}
	if len(c.NPoints) == 0 {
		c.NPoints = []int{1, 2, 4, 8, 16, 25, 50, 75, 100}
	}
}

// Figure3Point is one x position of Figure 3.
type Figure3Point struct {
	NLookups     int
	Correlated   time.Duration // clustered on receiptdate
	Uncorrelated time.Duration // clustered on (orderkey, linenumber)
	TableScan    time.Duration
	Model        time.Duration // cost model prediction for the correlated case
	CorrPages    uint64        // heap+index pages read by the correlated run
	UncPages     uint64
}

// Figure3Result is the full sweep.
type Figure3Result struct {
	Points []Figure3Point
	Rows   int64
}

// RunFigure3 reproduces Figure 3: the query
//
//	SELECT AVG(extendedprice*discount) FROM lineitem
//	WHERE shipdate IN (n random shipdates)
//
// through a secondary B+Tree on shipdate, with the table clustered on the
// correlated receiptdate versus the uncorrelated primary key, against the
// table-scan baseline and the Section 4 cost model's prediction.
func RunFigure3(cfg Figure3Config) (*Figure3Result, error) {
	cfg.defaults()
	rows := datagen.Lineitems(datagen.TPCHConfig{Orders: cfg.Orders, Seed: cfg.Seed})
	dates := datagen.ShipDates(rows)
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	rng.Shuffle(len(dates), func(i, j int) { dates[i], dates[j] = dates[j], dates[i] })

	type setup struct {
		env *Env
		tbl *table.Table
		ix  *table.Index
	}
	build := func(cluster []int) (*setup, error) {
		env := NewEnv(4096)
		tbl, err := env.LoadTable(table.Config{
			Name:          "lineitem",
			Schema:        datagen.LineitemSchema(),
			ClusteredCols: cluster,
		}, rows)
		if err != nil {
			return nil, err
		}
		ix, err := tbl.CreateIndex("shipdate", []int{datagen.LShipDate})
		if err != nil {
			return nil, err
		}
		return &setup{env: env, tbl: tbl, ix: ix}, nil
	}
	corr, err := build([]int{datagen.LReceiptDate})
	if err != nil {
		return nil, err
	}
	unc, err := build([]int{datagen.LOrderKey, datagen.LLineNumber})
	if err != nil {
		return nil, err
	}

	// Cost model statistics for the correlated clustering.
	st := corr.tbl.Stats()
	ts := costmodel.TableStats{
		TupsPerPage: st.TupsPerPage,
		TotalTups:   float64(st.TotalTups),
		BTreeHeight: float64(st.BTreeHeight),
	}
	pc, err := corr.tbl.PairStats([]int{datagen.LShipDate})
	if err != nil {
		return nil, err
	}
	pair := costmodel.PairStats{UTups: pc.UTups(), CTups: pc.CTups(), CPerU: pc.CPerU()}
	hw := costmodel.DefaultHardware()

	res := &Figure3Result{Rows: st.TotalTups}
	for _, n := range cfg.NPoints {
		if n > len(dates) {
			n = len(dates)
		}
		vals := make([]value.Value, n)
		for i := 0; i < n; i++ {
			vals[i] = value.NewInt(dates[i])
		}
		q := exec.NewQuery(exec.In(datagen.LShipDate, vals...))
		runQuery := func(s *setup) (time.Duration, uint64, error) {
			var sum float64
			var cnt int64
			elapsed, st, err := s.env.Cold(func() error {
				return exec.SortedIndexScan(s.tbl, s.ix, q, func(_ heap.RID, row value.Row) bool {
					sum += row[datagen.LExtendedPrice].F * row[datagen.LDiscount].F
					cnt++
					return true
				})
			})
			_ = sum
			return elapsed, st.Reads, err
		}
		ct, cp, err := runQuery(corr)
		if err != nil {
			return nil, err
		}
		ut, up, err := runQuery(unc)
		if err != nil {
			return nil, err
		}
		scanT, _, err := corr.env.Cold(func() error {
			return exec.TableScan(corr.tbl, q, func(heap.RID, value.Row) bool { return true })
		})
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Figure3Point{
			NLookups:     n,
			Correlated:   ct,
			Uncorrelated: ut,
			TableScan:    scanT,
			Model:        costmodel.SortedIndex(hw, ts, pair, n),
			CorrPages:    cp,
			UncPages:     up,
		})
	}
	return res, nil
}

// Print renders the sweep as the paper's Figure 3 series.
func (r *Figure3Result) Print(w io.Writer) {
	fprintf(w, "Figure 3: B+Tree on shipdate, correlated vs uncorrelated clustering (%d rows)\n", r.Rows)
	fprintf(w, "%8s %14s %16s %12s %14s\n", "n", "corr [ms]", "uncorr [ms]", "scan [ms]", "model [ms]")
	for _, p := range r.Points {
		fprintf(w, "%8d %14s %16s %12s %14s\n",
			p.NLookups, ms(p.Correlated), ms(p.Uncorrelated), ms(p.TableScan), ms(p.Model))
	}
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7 plus the motivating experiments of Section 3.4).
// Each experiment returns a structured result and can print itself in the
// paper's format; cmd/cmbench drives them from the command line and
// bench_test.go wraps them as Go benchmarks.
//
// Times reported as "elapsed" are virtual, disk-bound milliseconds from
// the simulated disk (paper constants: 5.5 ms seek, 0.078 ms/page) — the
// same methodology the paper itself uses for Table 3. Scales are reduced
// from the paper's multi-gigabyte tables but chosen so the page-count
// ratios that produce each result's shape are preserved; EXPERIMENTS.md
// records the paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/buffer"
	"repro/internal/sim"
	"repro/internal/table"
	"repro/internal/value"
	"repro/internal/wal"
)

// Env is a fresh database environment: one simulated disk, buffer pool
// and WAL.
type Env struct {
	Disk *sim.Disk
	Pool *buffer.Pool
	Log  *wal.Log
}

// NewEnv creates an environment with the given buffer pool capacity in
// pages (the paper's machine has 1 GB RAM against multi-GB tables;
// experiments pick pool sizes preserving that pool-to-data ratio).
func NewEnv(poolPages int) *Env {
	d := sim.NewDisk(sim.Config{})
	return &Env{
		Disk: d,
		Pool: buffer.NewPool(d, poolPages),
		Log:  wal.NewLog(d),
	}
}

// Cold runs fn against a cold cache — the paper drops OS caches and
// restarts PostgreSQL between runs — and returns the virtual elapsed time
// and I/O statistics of fn alone.
func (e *Env) Cold(fn func() error) (time.Duration, sim.Stats, error) {
	if err := e.Pool.FlushAll(); err != nil {
		return 0, sim.Stats{}, err
	}
	e.Pool.Invalidate()
	e.Disk.ResetStats()
	err := fn()
	return e.Disk.Elapsed(), e.Disk.Stats(), err
}

// Warm runs fn without invalidating caches, still isolating its I/O
// statistics. The mixed-workload experiment uses this mode, where buffer
// pool contention is the effect under study.
func (e *Env) Warm(fn func() error) (time.Duration, sim.Stats, error) {
	e.Disk.ResetStats()
	err := fn()
	return e.Disk.Elapsed(), e.Disk.Stats(), err
}

// LoadTable creates and loads a clustered table in the environment.
func (e *Env) LoadTable(cfg table.Config, rows []value.Row) (*table.Table, error) {
	t, err := table.New(e.Pool, e.Log, cfg)
	if err != nil {
		return nil, err
	}
	if err := t.Load(rows); err != nil {
		return nil, err
	}
	return t, nil
}

// ms formats a duration as milliseconds with two decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// sec formats a duration as seconds with three decimals.
func sec(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// mb formats a byte count in megabytes.
func mb(n int64) string {
	return fmt.Sprintf("%.3f", float64(n)/(1<<20))
}

func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}

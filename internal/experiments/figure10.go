package experiments

import (
	"io"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/heap"
	"repro/internal/table"
	"repro/internal/value"
)

// Figure10Config scales Experiment 4: cost model validation across
// c_per_u values.
type Figure10Config struct {
	EBay   datagen.EBayConfig
	Values int // number of CAT5 values spanning the c_per_u range; default 5
}

func (c *Figure10Config) defaults() {
	if c.Values <= 0 {
		c.Values = 5
	}
}

// Figure10Point is one predicated CAT5 value.
type Figure10Point struct {
	Cat5     string
	CPerU    int
	Measured time.Duration
	Model    time.Duration
}

// Figure10Result holds the validation points.
type Figure10Result struct {
	Points []Figure10Point
	Rows   int64
}

// RunFigure10 reproduces Experiment 4 (Figure 10): a CM on CAT5 over the
// items table clustered on CATID, querying
//
//	SELECT AVG(Price) FROM items WHERE CAT5 = X
//
// for CAT5 values with widely varying c_per_u (specific sub-category
// names map to few categories, generic names like "Others" to many),
// checking that measured runtime tracks the c_per_u-based cost model.
func RunFigure10(cfg Figure10Config) (*Figure10Result, error) {
	cfg.defaults()
	rows := datagen.EBayItems(cfg.EBay)
	env := NewEnv(4096)
	tbl, err := env.LoadTable(table.Config{
		Name:          "items",
		Schema:        datagen.EBaySchema(),
		ClusteredCols: []int{datagen.EBayCATID},
		BucketTuples:  1,
	}, rows)
	if err != nil {
		return nil, err
	}
	cm, err := tbl.CreateCM(core.Spec{Name: "cat5", UCols: []int{datagen.EBayCAT5}})
	if err != nil {
		return nil, err
	}

	// Rank CAT5 values by their c_per_u (number of clustered buckets)
	// and pick a spread from low to high.
	type kv struct {
		name  string
		cperu int
	}
	var all []kv
	if err := cm.Walk(func(vals []value.Value, buckets map[int32]uint32) bool {
		all = append(all, kv{name: vals[0].S, cperu: len(buckets)})
		return true
	}); err != nil {
		return nil, err
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].cperu != all[j].cperu {
			return all[i].cperu < all[j].cperu
		}
		return all[i].name < all[j].name // deterministic tie-break
	})
	// Deduplicate by c_per_u so the picks span the range instead of
	// sampling the (large) population of specific names repeatedly.
	uniq := all[:0:0]
	lastCPU := -1
	for _, kvp := range all {
		if kvp.cperu != lastCPU {
			uniq = append(uniq, kvp)
			lastCPU = kvp.cperu
		}
	}
	picks := spread(uniq, cfg.Values)

	st := tbl.Stats()
	ts := costmodel.TableStats{
		TupsPerPage: st.TupsPerPage,
		TotalTups:   float64(st.TotalTups),
		BTreeHeight: float64(st.BTreeHeight),
	}
	bps := tbl.BucketPairStatsFor(cm)
	hw := costmodel.DefaultHardware()

	res := &Figure10Result{Rows: st.TotalTups}
	for _, pick := range picks {
		q := exec.NewQuery(exec.Eq(datagen.EBayCAT5, value.NewString(pick.name)))
		var sum float64
		var n int64
		elapsed, _, err := env.Cold(func() error {
			return exec.CMScan(tbl, cm, q, func(_ heap.RID, row value.Row) bool {
				sum += row[datagen.EBayPrice].F
				n++
				return true
			})
		})
		if err != nil {
			return nil, err
		}
		// The model, per predicated value: c_per_u clustered-index
		// descents plus a sweep of the value's buckets.
		model := costmodel.CMLookup(hw, ts, costmodel.CMStats{
			CPerU:           float64(pick.cperu),
			PagesPerCBucket: bps.PagesPerCBucket,
		}, 1)
		res.Points = append(res.Points, Figure10Point{
			Cat5:     pick.name,
			CPerU:    pick.cperu,
			Measured: elapsed,
			Model:    model,
		})
	}
	return res, nil
}

// spread picks k elements spanning the sorted slice from low to high.
func spread[T any](s []T, k int) []T {
	if k >= len(s) {
		return s
	}
	out := make([]T, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, s[i*(len(s)-1)/(k-1)])
	}
	return out
}

// Print renders the validation points.
func (r *Figure10Result) Print(w io.Writer) {
	fprintf(w, "Figure 10 (Experiment 4): CM cost model vs measurement by c_per_u (%d rows)\n", r.Rows)
	fprintf(w, "%-20s %10s %14s %12s\n", "CAT5 value", "c_per_u", "measured [ms]", "model [ms]")
	for _, p := range r.Points {
		fprintf(w, "%-20s %10d %14s %12s\n", p.Cat5, p.CPerU, ms(p.Measured), ms(p.Model))
	}
}

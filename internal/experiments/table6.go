package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/heap"
	"repro/internal/table"
	"repro/internal/value"
)

func sprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// Table6Config scales the composite-CM experiment.
type Table6Config struct {
	SDSS     datagen.SDSSConfig
	RaLevel  int // bucket level for ra; paper uses 2^14-ish widths
	DecLevel int
}

func (c *Table6Config) defaults() {
	if c.SDSS.Rows() == 0 {
		c.SDSS = datagen.SDSSConfig{Stripes: 10, FieldsPerStripe: 25, ObjsPerField: 200}
	}
	if c.RaLevel <= 0 {
		c.RaLevel = 2 // 4-degree buckets over the 0..360 ra span
	}
	if c.DecLevel <= 0 {
		c.DecLevel = 1 // 2-degree buckets over the dec span
	}
}

// Table6Row is one access method on the range query.
type Table6Row struct {
	Index     string
	Bucketing string
	Runtime   time.Duration
	SizeBytes int64
	Rows      int
	PagesRead uint64
}

// Table6Result is the comparison table.
type Table6Result struct {
	Rows      []Table6Row
	TableRows int64
}

// RunTable6 reproduces Experiment 5 (Table 6): the SDSS Q2 variant
//
//	SELECT COUNT(*) FROM PhotoTag
//	WHERE ra BETWEEN .. AND dec BETWEEN .. AND g .. AND rho ..
//
// under four access methods: single-attribute CMs on ra and dec, the
// composite CM on (ra, dec), and a composite secondary B+Tree on
// (ra, dec). Neither coordinate alone determines the clustered objID
// region, but the pair does, so the composite CM dominates — and the
// B+Tree can only use its ra prefix for the two-range predicate.
func RunTable6(cfg Table6Config) (*Table6Result, error) {
	cfg.defaults()
	env := NewEnv(4096)
	tbl, err := env.LoadTable(table.Config{
		Name:          "phototag",
		Schema:        datagen.SDSSSchema(),
		ClusteredCols: []int{datagen.SDSSObjID},
	}, datagen.PhotoTag(cfg.SDSS))
	if err != nil {
		return nil, err
	}
	raB := core.BucketerForLevel(value.Float, cfg.RaLevel)
	decB := core.BucketerForLevel(value.Float, cfg.DecLevel)
	cmRa, err := tbl.CreateCM(core.Spec{Name: "ra", UCols: []int{datagen.SDSSRa},
		Bucketers: []core.Bucketer{raB}})
	if err != nil {
		return nil, err
	}
	cmDec, err := tbl.CreateCM(core.Spec{Name: "dec", UCols: []int{datagen.SDSSDec},
		Bucketers: []core.Bucketer{decB}})
	if err != nil {
		return nil, err
	}
	cmPair, err := tbl.CreateCM(core.Spec{Name: "radec",
		UCols:     []int{datagen.SDSSRa, datagen.SDSSDec},
		Bucketers: []core.Bucketer{raB, decB}})
	if err != nil {
		return nil, err
	}
	ixPair, err := tbl.CreateIndex("radec", []int{datagen.SDSSRa, datagen.SDSSDec})
	if err != nil {
		return nil, err
	}

	// A small sky region plus brightness filters, like the paper's Q2
	// variant (g+rho arithmetic becomes separate range predicates).
	q := exec.NewQuery(
		exec.Between(datagen.SDSSRa, value.NewFloat(100.0), value.NewFloat(105.5)),
		exec.Between(datagen.SDSSDec, value.NewFloat(2.0), value.NewFloat(4.2)),
		exec.Between(datagen.SDSSG, value.NewFloat(14), value.NewFloat(23)),
		exec.Between(datagen.SDSSRho, value.NewFloat(0), value.NewFloat(3)),
	)

	res := &Table6Result{TableRows: tbl.Stats().TotalTups}
	type method struct {
		label, bucketing string
		size             int64
		run              func(fn exec.RowFunc) error
	}
	methods := []method{
		{"CM(ra)", raB.String(), cmRa.SizeBytes(), func(fn exec.RowFunc) error {
			return exec.CMScan(tbl, cmRa, q, fn)
		}},
		{"CM(dec)", decB.String(), cmDec.SizeBytes(), func(fn exec.RowFunc) error {
			return exec.CMScan(tbl, cmDec, q, fn)
		}},
		{"CM(ra,dec)", raB.String() + " " + decB.String(), cmPair.SizeBytes(), func(fn exec.RowFunc) error {
			return exec.CMScan(tbl, cmPair, q, fn)
		}},
		{"B+Tree(ra,dec)", "-", ixPair.SizeBytes(), func(fn exec.RowFunc) error {
			return exec.SortedIndexScan(tbl, ixPair, q, fn)
		}},
	}
	want := -1
	for _, m := range methods {
		count := 0
		elapsed, st, err := env.Cold(func() error {
			return m.run(func(heap.RID, value.Row) bool {
				count++
				return true
			})
		})
		if err != nil {
			return nil, err
		}
		if want == -1 {
			want = count
		} else if count != want {
			return nil, fmt.Errorf("experiments: %s returned %d rows, want %d", m.label, count, want)
		}
		res.Rows = append(res.Rows, Table6Row{
			Index:     m.label,
			Bucketing: m.bucketing,
			Runtime:   elapsed,
			SizeBytes: m.size,
			Rows:      count,
			PagesRead: st.Reads,
		})
	}
	return res, nil
}

// Print renders the table like the paper's Table 6.
func (r *Table6Result) Print(w io.Writer) {
	fprintf(w, "Table 6: single and composite CMs for an SDSS range query (%d rows)\n", r.TableRows)
	fprintf(w, "%-16s %-14s %12s %12s %8s %8s\n", "Index", "Bucketing", "Runtime [ms]", "Size [KB]", "pages", "rows")
	for _, row := range r.Rows {
		fprintf(w, "%-16s %-14s %12s %12.1f %8d %8d\n",
			row.Index, row.Bucketing, ms(row.Runtime), float64(row.SizeBytes)/1024, row.PagesRead, row.Rows)
	}
}

package experiments

import (
	"io"
	"sort"
	"time"

	"repro/internal/datagen"
	"repro/internal/sim"
	"repro/internal/value"
)

// Figure2Config scales the SDSS clustering sweep.
type Figure2Config struct {
	SDSS        datagen.SDSSConfig
	Selectivity float64 // per-query fraction of rows; paper uses 1%
	TupsPerPage int     // heap density for the page model; default from row size
}

func (c *Figure2Config) defaults() {
	if c.Selectivity <= 0 {
		c.Selectivity = 0.01
	}
	if c.SDSS.Rows() == 0 {
		c.SDSS = datagen.SDSSConfig{Stripes: 10, FieldsPerStripe: 25, ObjsPerField: 400}
	}
	if c.TupsPerPage <= 0 {
		// PhotoTag rows are ~340 bytes encoded; 8 KiB pages hold ~24.
		c.TupsPerPage = 24
	}
}

// Figure2Row is one clustering choice with its query speedup histogram.
type Figure2Row struct {
	ClusterAttr string
	Speedup2x   int
	Speedup4x   int
	Speedup8x   int
	Speedup16x  int
}

// Figure2Result is the full 39-attribute sweep.
type Figure2Result struct {
	Rows        []Figure2Row
	Queries     int
	TableRows   int
	TableScanMS float64
}

// RunFigure2 reproduces Figure 2: 39 single-attribute queries of ~1%
// selectivity over PhotoTag, evaluated under each of the 39 possible
// clusterings, counting how many queries a clustering accelerates by at
// least 2/4/8/16x over a table scan.
//
// Methodology: as in the paper's own Table 3 simulation, the sorted index
// scan's cost is derived from its page-access pattern — one clustered
// B+Tree descent plus index leaf reads, then a heap sweep whose seeks are
// the contiguous runs of touched pages — converted to time with the
// measured hardware constants. This keeps a 39x39 sweep tractable at a
// table scale (thousands of pages) where the paper's disk economics hold.
func RunFigure2(cfg Figure2Config) (*Figure2Result, error) {
	cfg.defaults()
	rows := datagen.PhotoTag(cfg.SDSS)
	sch := datagen.SDSSSchema()
	n := len(rows)
	hw := sim.DefaultConfig()
	seek := float64(hw.SeekCost) / float64(time.Millisecond)
	seq := float64(hw.SeqPageCost) / float64(time.Millisecond)

	attrs := make([]int, 0, datagen.SDSSNumCols-1)
	for col := 1; col < datagen.SDSSNumCols; col++ {
		attrs = append(attrs, col)
	}

	// Matching row sets per query: a ~1%-selectivity window around a
	// central quantile of each attribute.
	matches := make([][]int, len(attrs))
	for qi, col := range attrs {
		matches[qi] = selectWindow(rows, col, cfg.Selectivity)
	}

	pages := float64(n) / float64(cfg.TupsPerPage)
	scanMS := pages * seq
	// Dense index entries are ~20 bytes: ~400 per 8 KiB leaf.
	leafFanout := 400.0
	btreeHeight := 3.0

	res := &Figure2Result{Queries: len(attrs), TableRows: n, TableScanMS: scanMS}
	order := make([]int, n)
	for _, clusterCol := range attrs {
		// Position of each original row under this clustering.
		for i := range order {
			order[i] = i
		}
		cc := clusterCol
		sort.SliceStable(order, func(a, b int) bool {
			return rows[order[a]][cc].Compare(rows[order[b]][cc]) < 0
		})
		pos := make([]int, n)
		for p, orig := range order {
			pos[orig] = p
		}

		row := Figure2Row{ClusterAttr: sch.Cols[clusterCol].Name}
		for qi := range attrs {
			m := matches[qi]
			if len(m) == 0 {
				continue
			}
			pageSet := map[int]struct{}{}
			for _, orig := range m {
				pageSet[pos[orig]/cfg.TupsPerPage] = struct{}{}
			}
			runs := 0
			for p := range pageSet {
				if _, ok := pageSet[p-1]; !ok {
					runs++
				}
			}
			leafPages := float64(len(m))/leafFanout + 1
			cost := btreeHeight*seek + leafPages*seq + // index descent + leaves
				float64(runs)*seek + float64(len(pageSet))*seq // heap sweep
			if cost > scanMS {
				cost = scanMS
			}
			speedup := scanMS / cost
			if speedup >= 2 {
				row.Speedup2x++
			}
			if speedup >= 4 {
				row.Speedup4x++
			}
			if speedup >= 8 {
				row.Speedup8x++
			}
			if speedup >= 16 {
				row.Speedup16x++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// selectWindow returns the indexes of rows whose col value lies in a
// window of ~the given selectivity around the 40th percentile. For
// few-valued attributes where any window vastly overshoots the target,
// it falls back to equality on the least frequent value — the benchmark
// needs an achievable ~1% predicate per attribute.
func selectWindow(rows []value.Row, col int, selectivity float64) []int {
	n := len(rows)
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i
	}
	sort.SliceStable(vals, func(a, b int) bool {
		return rows[vals[a]][col].Compare(rows[vals[b]][col]) < 0
	})
	want := int(float64(n) * selectivity)
	if want < 1 {
		want = 1
	}
	start := int(float64(n) * 0.4)
	if start+want > n {
		start = n - want
	}
	lo := rows[vals[start]][col]
	hi := rows[vals[start+want-1]][col]
	var out []int
	for i, r := range rows {
		if r[col].Compare(lo) >= 0 && r[col].Compare(hi) <= 0 {
			out = append(out, i)
		}
	}
	if len(out) <= 3*want {
		return out
	}
	// Few-valued attribute: use the rarest value instead.
	counts := map[string]int{}
	for _, r := range rows {
		counts[r[col].String()]++
	}
	rare, rareCount := "", n+1
	for v, c := range counts {
		if c < rareCount {
			rare, rareCount = v, c
		}
	}
	out = out[:0]
	for i, r := range rows {
		if r[col].String() == rare {
			out = append(out, i)
		}
	}
	return out
}

// Print renders the histogram like the paper's Figure 2.
func (r *Figure2Result) Print(w io.Writer) {
	fprintf(w, "Figure 2: queries accelerated by clustering choice (%d rows, %d queries, scan=%.1fms)\n",
		r.TableRows, r.Queries, r.TableScanMS)
	fprintf(w, "%-12s %6s %6s %6s %6s\n", "clustered on", ">=2x", ">=4x", ">=8x", ">=16x")
	for _, row := range r.Rows {
		fprintf(w, "%-12s %6d %6d %6d %6d\n",
			row.ClusterAttr, row.Speedup2x, row.Speedup4x, row.Speedup8x, row.Speedup16x)
	}
}

// Best returns the clustering attribute accelerating the most queries at
// 2x, mirroring the paper's observation about fieldID.
func (r *Figure2Result) Best() Figure2Row {
	best := Figure2Row{}
	for _, row := range r.Rows {
		if row.Speedup2x > best.Speedup2x {
			best = row
		}
	}
	return best
}

package experiments

import (
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/heap"
	"repro/internal/table"
	"repro/internal/value"
)

// Figure7Config scales Experiment 2: the bucket-level sweep.
type Figure7Config struct {
	EBay    datagen.EBayConfig
	Levels  []int // bucket levels: 2^level tuples per bucket
	PriceLo float64
	PriceHi float64
}

func (c *Figure7Config) defaults() {
	if len(c.Levels) == 0 {
		c.Levels = []int{2, 4, 6, 8, 10, 12, 14}
	}
}

// Figure7Point is one bucket level.
type Figure7Point struct {
	Level       int
	CM          time.Duration
	Model       time.Duration
	CMBytes     int64
	MatchedRows int
}

// Figure7Result holds the sweep plus the fixed B+Tree baseline.
type Figure7Result struct {
	Points    []Figure7Point
	BTree     time.Duration
	TreeBytes int64
	Rows      int64
}

// RunFigure7 reproduces Experiment 2 (Figure 7): query runtime and CM
// size as a function of the bucket level (2^level tuples per bucket) for
//
//	SELECT COUNT(DISTINCT CAT3) FROM items WHERE Price BETWEEN 1000 AND 1100
//
// demonstrating the knee: size shrinks with wider buckets while runtime
// stays near the B+Tree's until buckets outgrow the queried range.
func RunFigure7(cfg Figure7Config) (*Figure7Result, error) {
	cfg.defaults()
	rows := datagen.EBayItems(cfg.EBay)
	env := NewEnv(4096)
	tbl, err := env.LoadTable(table.Config{
		Name:          "items",
		Schema:        datagen.EBaySchema(),
		ClusteredCols: []int{datagen.EBayCATID},
		BucketTuples:  1,
	}, rows)
	if err != nil {
		return nil, err
	}
	ix, err := tbl.CreateIndex("price", []int{datagen.EBayPrice})
	if err != nil {
		return nil, err
	}
	if cfg.PriceHi <= cfg.PriceLo {
		// A populated $100 window, like the paper's 1000..1100 at its
		// scale.
		cfg.PriceLo = populatedBase(rows)
		cfg.PriceHi = cfg.PriceLo + 100
	}
	q := exec.NewQuery(exec.Between(datagen.EBayPrice,
		value.NewFloat(cfg.PriceLo), value.NewFloat(cfg.PriceHi)))

	res := &Figure7Result{TreeBytes: ix.SizeBytes(), Rows: tbl.Stats().TotalTups}
	bt, _, err := env.Cold(func() error {
		return exec.SortedIndexScan(tbl, ix, q, func(heap.RID, value.Row) bool { return true })
	})
	if err != nil {
		return nil, err
	}
	res.BTree = bt

	st := tbl.Stats()
	ts := costmodel.TableStats{
		TupsPerPage: st.TupsPerPage,
		TotalTups:   float64(st.TotalTups),
		BTreeHeight: float64(st.BTreeHeight),
	}
	hw := costmodel.DefaultHardware()

	for _, level := range cfg.Levels {
		width := priceWidthForTuples(rows, 1<<uint(level))
		cm, err := tbl.CreateCM(core.Spec{
			Name:      "price",
			UCols:     []int{datagen.EBayPrice},
			Bucketers: []core.Bucketer{core.FloatWidth{Width: width}},
		})
		if err != nil {
			return nil, err
		}
		matched := 0
		cmT, _, err := env.Cold(func() error {
			return exec.CMScan(tbl, cm, q, func(heap.RID, value.Row) bool {
				matched++
				return true
			})
		})
		if err != nil {
			return nil, err
		}
		bps := tbl.BucketPairStatsFor(cm)
		model := costmodel.CMLookup(hw, ts, costmodel.CMStats{
			CPerU:           bps.CPerU,
			PagesPerCBucket: bps.PagesPerCBucket,
		}, 1)
		res.Points = append(res.Points, Figure7Point{
			Level:       level,
			CM:          cmT,
			Model:       model,
			CMBytes:     cm.SizeBytes(),
			MatchedRows: matched,
		})
	}
	return res, nil
}

// Print renders the figure's two panels as one table.
func (r *Figure7Result) Print(w io.Writer) {
	fprintf(w, "Figure 7 (Experiment 2): runtime and CM size vs bucket level (%d rows)\n", r.Rows)
	fprintf(w, "B+Tree baseline: %s ms, %s MB\n", ms(r.BTree), mb(r.TreeBytes))
	fprintf(w, "%8s %12s %12s %12s %10s\n", "level", "CM [ms]", "model [ms]", "size [MB]", "rows")
	for _, p := range r.Points {
		fprintf(w, "%8d %12s %12s %12s %10d\n",
			p.Level, ms(p.CM), ms(p.Model), mb(p.CMBytes), p.MatchedRows)
	}
}

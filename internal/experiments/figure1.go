package experiments

import (
	"io"
	"math/rand"
	"strings"

	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/heap"
	"repro/internal/table"
	"repro/internal/value"
)

// Figure1Config scales the access-pattern visualization.
type Figure1Config struct {
	TPCH   datagen.TPCHConfig
	Values int // values of Au looked up per case; paper uses 3
	Strip  int // characters in the ASCII strip; default 100
}

func (c *Figure1Config) defaults() {
	if c.TPCH.Orders <= 0 {
		// Enough suppliers that a few suppkey lookups stay sparse
		// relative to the table (the paper's table is 18M rows).
		c.TPCH = datagen.TPCHConfig{Orders: 6000, Suppliers: 500}
	}
	if c.Values <= 0 {
		c.Values = 3
	}
	if c.Strip <= 0 {
		c.Strip = 100
	}
}

// Figure1Case is one row of the figure: which pages a sorted secondary
// index lookup touches under a given clustering.
type Figure1Case struct {
	Label        string
	TotalPages   int64
	PagesTouched int
	Runs         int // contiguous page runs (each run = one seek)
	Strip        string
}

// Figure1Result holds the four cases of the paper's Figure 1.
type Figure1Result struct {
	Cases []Figure1Case
}

// RunFigure1 reproduces Figure 1: lineitem lookups on suppkey with and
// without clustering on the correlated partkey, and on shipdate with and
// without clustering on the correlated receiptdate. Correlated
// clusterings localize the sorted index scan into a few contiguous runs;
// unclustered layouts scatter it.
func RunFigure1(cfg Figure1Config) (*Figure1Result, error) {
	cfg.defaults()
	rows := datagen.Lineitems(cfg.TPCH)
	rng := rand.New(rand.NewSource(cfg.TPCH.Seed + 1))

	// Pick lookup values present in the data.
	suppVals := pickDistinct(rows, datagen.LSuppKey, cfg.Values, rng)
	shipVals := pickDistinct(rows, datagen.LShipDate, cfg.Values, rng)

	cases := []struct {
		label     string
		cluster   []int
		lookupCol int
		vals      []value.Value
	}{
		{"suppkey lookup, clustered on partkey", []int{datagen.LPartKey}, datagen.LSuppKey, suppVals},
		{"suppkey lookup, not clustered (PK order)", []int{datagen.LOrderKey, datagen.LLineNumber}, datagen.LSuppKey, suppVals},
		{"shipdate lookup, clustered on receiptdate", []int{datagen.LReceiptDate}, datagen.LShipDate, shipVals},
		{"shipdate lookup, not clustered (PK order)", []int{datagen.LOrderKey, datagen.LLineNumber}, datagen.LShipDate, shipVals},
	}

	result := &Figure1Result{}
	for _, c := range cases {
		env := NewEnv(4096)
		tbl, err := env.LoadTable(table.Config{
			Name:          "lineitem",
			Schema:        datagen.LineitemSchema(),
			ClusteredCols: c.cluster,
		}, rows)
		if err != nil {
			return nil, err
		}
		ix, err := tbl.CreateIndex("au", []int{c.lookupCol})
		if err != nil {
			return nil, err
		}
		q := exec.NewQuery(exec.In(c.lookupCol, c.vals...))
		touched := map[int64]struct{}{}
		_, _, err = env.Cold(func() error {
			return exec.SortedIndexScan(tbl, ix, q, func(rid heap.RID, _ value.Row) bool {
				touched[rid.Page] = struct{}{}
				return true
			})
		})
		if err != nil {
			return nil, err
		}
		total := tbl.Heap().NumPages()
		result.Cases = append(result.Cases, Figure1Case{
			Label:        c.label,
			TotalPages:   total,
			PagesTouched: len(touched),
			Runs:         countRuns(touched),
			Strip:        renderStrip(touched, total, cfg.Strip),
		})
	}
	return result, nil
}

func pickDistinct(rows []value.Row, col, n int, rng *rand.Rand) []value.Value {
	seen := map[int64]struct{}{}
	var out []value.Value
	for len(out) < n {
		r := rows[rng.Intn(len(rows))]
		v := r[col]
		if _, ok := seen[v.I]; ok {
			continue
		}
		seen[v.I] = struct{}{}
		out = append(out, v)
	}
	return out
}

func countRuns(pages map[int64]struct{}) int {
	runs := 0
	for p := range pages {
		if _, ok := pages[p-1]; !ok {
			runs++
		}
	}
	return runs
}

func renderStrip(pages map[int64]struct{}, total int64, width int) string {
	if total == 0 {
		return ""
	}
	cells := make([]bool, width)
	for p := range pages {
		idx := int(p * int64(width) / total)
		if idx >= width {
			idx = width - 1
		}
		cells[idx] = true
	}
	var b strings.Builder
	for _, hit := range cells {
		if hit {
			b.WriteByte('#')
		} else {
			b.WriteByte('.')
		}
	}
	return b.String()
}

// Print renders the figure like the paper: one strip per case.
func (r *Figure1Result) Print(w io.Writer) {
	fprintf(w, "Figure 1: access patterns for unclustered B+Tree lookups (page strips)\n")
	for _, c := range r.Cases {
		fprintf(w, "%-45s pages=%4d/%4d runs=%4d\n  |%s|\n",
			c.Label, c.PagesTouched, c.TotalPages, c.Runs, c.Strip)
	}
}

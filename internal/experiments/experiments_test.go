package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
)

// Small scales keep the test suite fast; shape assertions (who wins, by
// what rough factor, monotonicity) are what we check here. bench_test.go
// runs the fuller scales.

func tinyEBay() datagen.EBayConfig {
	return datagen.EBayConfig{Categories: 120, ItemsPerCatMin: 20, ItemsPerCatMax: 40, Seed: 5}
}

func tinySDSS() datagen.SDSSConfig {
	return datagen.SDSSConfig{Stripes: 5, FieldsPerStripe: 10, ObjsPerField: 40, Seed: 5}
}

func TestFigure1CorrelationLocalizesAccess(t *testing.T) {
	res, err := RunFigure1(Figure1Config{
		TPCH:   datagen.TPCHConfig{Orders: 3000, Suppliers: 400, Seed: 3},
		Values: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 4 {
		t.Fatalf("cases = %d", len(res.Cases))
	}
	// Correlated clusterings produce far fewer contiguous runs.
	suppClustered, suppRandom := res.Cases[0], res.Cases[1]
	shipClustered, shipRandom := res.Cases[2], res.Cases[3]
	if suppClustered.Runs >= suppRandom.Runs {
		t.Errorf("suppkey: clustered runs %d !< random runs %d", suppClustered.Runs, suppRandom.Runs)
	}
	if shipClustered.Runs >= shipRandom.Runs {
		t.Errorf("shipdate: clustered runs %d !< random runs %d", shipClustered.Runs, shipRandom.Runs)
	}
	// The high-correlation case (shipdate/receiptdate) should collapse
	// to a handful of runs.
	if shipClustered.Runs > 25 {
		t.Errorf("shipdate clustered runs = %d, expected a handful", shipClustered.Runs)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "receiptdate") {
		t.Error("print output missing case labels")
	}
}

func TestFigure2ClusteringSweep(t *testing.T) {
	res, err := RunFigure2(Figure2Config{
		SDSS: datagen.SDSSConfig{Stripes: 10, FieldsPerStripe: 25, ObjsPerField: 120, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 39 {
		t.Fatalf("clusterings = %d, want 39", len(res.Rows))
	}
	best := res.Best()
	if best.Speedup2x < 5 {
		t.Errorf("best clustering (%s) accelerates only %d queries", best.ClusterAttr, best.Speedup2x)
	}
	for _, row := range res.Rows {
		if row.Speedup4x > row.Speedup2x || row.Speedup8x > row.Speedup4x || row.Speedup16x > row.Speedup8x {
			t.Fatalf("histogram not monotone for %s: %+v", row.ClusterAttr, row)
		}
		// Clustering on any attribute accelerates at least the query on
		// that attribute itself.
		if row.Speedup2x < 1 {
			t.Errorf("clustering on %s accelerates nothing", row.ClusterAttr)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), ">=16x") {
		t.Error("print output malformed")
	}
}

func TestFigure3CorrelatedBeatsUncorrelated(t *testing.T) {
	// At test scale (12k rows) the fixed per-lookup index probe cost is
	// a large share of both clusterings, so the separation the paper
	// shows at n up to 100 is visible here at small n; the bench runs a
	// scale where the full sweep separates. See EXPERIMENTS.md.
	res, err := RunFigure3(Figure3Config{Orders: 3000, Seed: 1, NPoints: []int{1, 2, 4, 8}})
	if err != nil {
		t.Fatal(err)
	}
	// The scale-robust invariant is the I/O pattern (Figure 1's
	// mechanism): the correlated clustering localizes each lookup, so it
	// reads far fewer pages than the uncorrelated layout, whose bitmap
	// sweep degrades to a near-full read-through. Elapsed-time ordering
	// additionally needs scan >> per-lookup seeks and is checked at
	// bench scale.
	for _, p := range res.Points {
		if p.NLookups >= 2 && p.CorrPages >= p.UncPages {
			t.Errorf("n=%d: correlated pages %d !< uncorrelated %d",
				p.NLookups, p.CorrPages, p.UncPages)
		}
	}
	// The uncorrelated side must sit at or above the scan plateau (the
	// paper's "reaching the cost of a sequential scan" effect).
	last := res.Points[len(res.Points)-1]
	if last.Uncorrelated < last.TableScan/2 {
		t.Errorf("uncorrelated at n=%d (%v) far below scan (%v)", last.NLookups, last.Uncorrelated, last.TableScan)
	}
	// Cost model: monotone in n, capped by the scan cost, and within an
	// order of magnitude of the measurement (exact level agreement is a
	// scale property; the model omits secondary-index probe I/O).
	for i, p := range res.Points {
		if i > 0 && p.Model < res.Points[i-1].Model {
			t.Error("model not monotone in n")
		}
		if p.Model > p.TableScan+time.Millisecond {
			t.Errorf("n=%d: model %v above scan cap %v", p.NLookups, p.Model, p.TableScan)
		}
		ratio := float64(p.Model) / float64(p.Correlated)
		if ratio < 0.1 || ratio > 10 {
			t.Errorf("n=%d: model %v vs measured %v (ratio %.2f)", p.NLookups, p.Model, p.Correlated, ratio)
		}
	}
	// Correlated grows with n (more lookups, more work).
	if res.Points[0].Correlated >= res.Points[len(res.Points)-1].Correlated {
		t.Error("correlated cost not increasing in n")
	}
}

func TestTable3WideningAddsOnlySequentialIO(t *testing.T) {
	res, err := RunTable3(Table3Config{SDSS: tinySDSS(), BucketSizes: []int{1, 5, 10, 20, 40}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].PagesScanned < res.Rows[i-1].PagesScanned {
			t.Errorf("pages scanned decreased at bucket size %d", res.Rows[i].BucketPages)
		}
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	// 40x wider buckets must NOT cost 40x more: the paper's point is the
	// cost grows by sequential reads only (15.34 -> 19.5 ms, ~1.3x).
	if last.IOCost > first.IOCost*3 {
		t.Errorf("40-page buckets cost %v vs %v at 1 page: widening too expensive", last.IOCost, first.IOCost)
	}
}

func TestAdvisorTables(t *testing.T) {
	res, err := RunAdvisorTables(AdvisorTablesConfig{SDSS: tinySDSS(), SampleSize: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table4) != 4 {
		t.Fatalf("table 4 rows = %d", len(res.Table4))
	}
	// mode is few-valued: identity must be offered (MinLevel 0).
	for _, row := range res.Table4 {
		if row.Column == "mode" && row.MinLevel != 0 {
			t.Error("mode should have a 'none' bucketing")
		}
		if row.Column == "psfMag_g" && row.MaxLevel == 0 {
			t.Error("psfMag_g should have width bucketings")
		}
	}
	if len(res.Table5) == 0 {
		t.Fatal("table 5 empty")
	}
	for i := 1; i < len(res.Table5); i++ {
		if res.Table5[i].Runtime < res.Table5[i-1].Runtime {
			t.Fatal("table 5 not sorted by estimated runtime")
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "Table 4") || !strings.Contains(out, "Table 5") {
		t.Error("print output malformed")
	}
}

func TestFigure6CMCompetitiveAndTiny(t *testing.T) {
	res, err := RunFigure6(Figure6Config{EBay: tinyEBay(), BucketTuples: 256})
	if err != nil {
		t.Fatal(err)
	}
	if res.CMBytes*10 > res.TreeBytes {
		t.Errorf("CM %d bytes not ≪ B+Tree %d bytes", res.CMBytes, res.TreeBytes)
	}
	for _, p := range res.Points {
		// CM within a moderate factor of the B+Tree. (The paper sees
		// 1-4s worse on ~10s queries; at test scale fixed seek costs
		// weigh heavier, so allow more headroom — the bench runs the
		// paper-shaped scale.)
		if p.CM > 8*p.BTree {
			t.Errorf("range %d: CM %v vs B+Tree %v", p.RangeDollars, p.CM, p.BTree)
		}
	}
	// Wider ranges match at least as many rows.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].MatchedRows < res.Points[i-1].MatchedRows {
			t.Error("matched rows not monotone in range width")
		}
	}
}

func TestFigure7SizeRuntimeTradeoff(t *testing.T) {
	res, err := RunFigure7(Figure7Config{EBay: tinyEBay(), Levels: []int{4, 6, 8, 10, 12}})
	if err != nil {
		t.Fatal(err)
	}
	// CM size strictly shrinks as buckets widen.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].CMBytes > res.Points[i-1].CMBytes {
			t.Errorf("CM size grew from level %d to %d", res.Points[i-1].Level, res.Points[i].Level)
		}
	}
	// Runtime at the widest bucketing is at least the runtime at the
	// narrowest (the knee effect: wider buckets add false positives).
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.CM < first.CM {
		t.Errorf("runtime improved with much wider buckets: %v -> %v", first.CM, last.CM)
	}
	// Exactness: every level matches the same rows.
	for _, p := range res.Points {
		if p.MatchedRows != first.MatchedRows {
			t.Errorf("level %d matched %d rows, want %d", p.Level, p.MatchedRows, first.MatchedRows)
		}
	}
}

func TestFigure8BTreeMaintenanceDeteriorates(t *testing.T) {
	res, err := RunFigure8(Figure8Config{
		EBay:        tinyEBay(),
		InsertRows:  4000,
		BatchSize:   1000,
		IndexCounts: []int{0, 5, 10},
		PoolPages:   200,
	})
	if err != nil {
		t.Fatal(err)
	}
	p0, p10 := res.Points[0], res.Points[len(res.Points)-1]
	// With no indexes the two sides are near-identical.
	ratio0 := float64(p0.BTreeTime) / float64(p0.CMTime)
	if ratio0 < 0.8 || ratio0 > 1.3 {
		t.Errorf("k=0 ratio = %.2f, expected ~1", ratio0)
	}
	// At 10 indexes B+Trees must be much slower than CMs.
	if p10.BTreeTime < 3*p10.CMTime {
		t.Errorf("k=10: B+Tree %v vs CM %v — expected large gap", p10.BTreeTime, p10.CMTime)
	}
	// B+Tree time grows with index count; CM stays near flat.
	if p10.BTreeTime <= p0.BTreeTime {
		t.Error("B+Tree maintenance did not deteriorate with more indexes")
	}
	if float64(p10.CMTime) > 2.0*float64(p0.CMTime) {
		t.Errorf("CM maintenance not flat: %v -> %v", p0.CMTime, p10.CMTime)
	}
	// The headline: CM sustains a much higher update rate at k=10.
	if p10.CMRate < 3*p10.BTreeRate {
		t.Errorf("update rates: CM %.0f/s vs B+Tree %.0f/s", p10.CMRate, p10.BTreeRate)
	}
	// Dirty-page evictions explain the gap.
	if p10.BTreeDirty == 0 {
		t.Error("no dirty write-backs recorded for 10 B+Trees")
	}
}

func TestFigure9MixedWorkload(t *testing.T) {
	res, err := RunFigure9(Figure9Config{
		EBay:       tinyEBay(),
		Rounds:     4,
		InsertsPer: 800,
		SelectsPer: 10,
		PoolPages:  200,
	})
	if err != nil {
		t.Fatal(err)
	}
	bars := map[string]Figure9Bar{}
	for _, b := range res.Bars {
		bars[b.Label] = b
	}
	btMix, cmMix := bars["B+Tree-mix"], bars["CM-mix"]
	if cmTotal, btTotal := cmMix.Insert+cmMix.Select, btMix.Insert+btMix.Select; btTotal < 2*cmTotal {
		t.Errorf("mixed workload: B+Tree %v vs CM %v — expected >2x gap", btTotal, cmTotal)
	}
	// Inserts cost at least as much in the mixed run as insert-only
	// (selects steal buffer pool space).
	if btMix.Insert < bars["B+Tree"].Insert {
		t.Error("B+Tree mixed inserts cheaper than insert-only")
	}
}

func TestFigure10ModelTracksCPerU(t *testing.T) {
	res, err := RunFigure10(Figure10Config{EBay: tinyEBay(), Values: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// c_per_u spans a real range (generic vs specific CAT5 names).
	lo, hi := res.Points[0], res.Points[len(res.Points)-1]
	if hi.CPerU < 4*lo.CPerU {
		t.Errorf("c_per_u range too narrow: %d..%d", lo.CPerU, hi.CPerU)
	}
	// Measured runtime increases with c_per_u, and the model does not
	// decrease. (At test scale the model is scan-capped early, so exact
	// level agreement is a bench-scale property; see EXPERIMENTS.md.)
	if hi.Measured <= lo.Measured {
		t.Error("measured runtime not increasing with c_per_u")
	}
	if hi.Model < lo.Model {
		t.Error("model decreasing with c_per_u")
	}
}

func TestTable6CompositeCMWins(t *testing.T) {
	res, err := RunTable6(Table6Config{SDSS: datagen.SDSSConfig{
		Stripes: 8, FieldsPerStripe: 20, ObjsPerField: 60, Seed: 7,
	}})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table6Row{}
	for _, row := range res.Rows {
		byName[row.Index] = row
	}
	pair := byName["CM(ra,dec)"]
	ra, dec, bt := byName["CM(ra)"], byName["CM(dec)"], byName["B+Tree(ra,dec)"]
	// The composite CM touches the fewest pages: each single coordinate
	// over-covers (ra hits every stripe; dec hits whole stripes), and
	// the composite B+Tree can only use its ra prefix. Runtime ordering
	// versus CM(dec) is a scale property (dec reads few big contiguous
	// regions, cheap per page but many pages) — the invariant here is
	// I/O volume; the bench scale shows the paper's runtime ordering.
	if pair.PagesRead >= ra.PagesRead || pair.PagesRead >= dec.PagesRead {
		t.Errorf("composite CM pages %d not below singles (ra %d, dec %d)",
			pair.PagesRead, ra.PagesRead, dec.PagesRead)
	}
	if pair.PagesRead >= bt.PagesRead {
		t.Errorf("composite CM pages %d not below B+Tree %d", pair.PagesRead, bt.PagesRead)
	}
	if pair.Runtime >= bt.Runtime {
		t.Errorf("composite CM (%v) not faster than composite B+Tree (%v)", pair.Runtime, bt.Runtime)
	}
	if pair.SizeBytes*10 > bt.SizeBytes {
		t.Errorf("composite CM %d bytes not ≪ B+Tree %d bytes", pair.SizeBytes, bt.SizeBytes)
	}
	if pair.Rows == 0 {
		t.Error("query matched no rows; fixture broken")
	}
}

package experiments

import (
	"io"
	"time"

	"repro/internal/advisor"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/table"
	"repro/internal/value"
)

// AdvisorTablesConfig scales Tables 4 and 5, which share the SX6 query
// and the advisor preparation scan.
type AdvisorTablesConfig struct {
	SDSS       datagen.SDSSConfig
	SampleSize int
}

func (c *AdvisorTablesConfig) defaults() {
	if c.SDSS.Rows() == 0 {
		c.SDSS = datagen.SDSSConfig{Stripes: 10, FieldsPerStripe: 25, ObjsPerField: 120}
	}
	if c.SampleSize <= 0 {
		c.SampleSize = 30000
	}
}

// Table4Row describes the bucketings considered for one attribute.
type Table4Row struct {
	Column      string
	Cardinality float64
	MinLevel    int // 0 = "none"
	MaxLevel    int
	Options     int
}

// Table5Row is one candidate CM design.
type Table5Row struct {
	SlowdownPct float64
	Design      string
	SizeBytes   int64
	SizeRatio   float64 // CM size / B+Tree size
	Runtime     time.Duration
}

// AdvisorTablesResult bundles both tables.
type AdvisorTablesResult struct {
	Table4 []Table4Row
	Table5 []Table5Row
}

// sx6Query builds the SX6-style training query of the paper:
// fieldID IN (...) AND mode = 1 AND type = 6 AND psfMag_g < 20.
func sx6Query() exec.Query {
	return exec.NewQuery(
		exec.In(datagen.SDSSFieldID, value.NewInt(105), value.NewInt(140)),
		exec.Eq(datagen.SDSSMode, value.NewInt(1)),
		exec.Eq(datagen.SDSSType, value.NewInt(6)),
		exec.Le(datagen.SDSSPsfMagG, value.NewFloat(20)),
	)
}

// RunAdvisorTables reproduces Table 4 (bucketings considered per
// attribute of the SX6 query) and Table 5 (candidate CM designs ranked
// by estimated slowdown vs a secondary B+Tree, with size ratios).
func RunAdvisorTables(cfg AdvisorTablesConfig) (*AdvisorTablesResult, error) {
	cfg.defaults()
	env := NewEnv(4096)
	tbl, err := env.LoadTable(table.Config{
		Name:          "phototag",
		Schema:        datagen.SDSSSchema(),
		ClusteredCols: []int{datagen.SDSSObjID},
	}, datagen.PhotoTag(cfg.SDSS))
	if err != nil {
		return nil, err
	}
	adv, err := advisor.New(tbl, advisor.Config{SampleSize: cfg.SampleSize, Seed: 1})
	if err != nil {
		return nil, err
	}

	res := &AdvisorTablesResult{}
	sch := tbl.Schema()
	for _, col := range []int{datagen.SDSSMode, datagen.SDSSType, datagen.SDSSPsfMagG, datagen.SDSSFieldID} {
		opts := adv.BucketingsFor(col)
		row := Table4Row{
			Column:      sch.Cols[col].Name,
			Cardinality: adv.DistinctEstimate(col),
			Options:     len(opts),
		}
		if len(opts) > 0 {
			row.MinLevel, row.MaxLevel = opts[0].Level, opts[0].Level
			for _, o := range opts {
				if o.Level < row.MinLevel {
					row.MinLevel = o.Level
				}
				if o.Level > row.MaxLevel {
					row.MaxLevel = o.Level
				}
			}
		}
		res.Table4 = append(res.Table4, row)
	}

	cands, err := adv.AllCandidates(sx6Query())
	if err != nil {
		return nil, err
	}
	// The paper's Table 5 presents the runtime-vs-size tradeoff curve;
	// dominated designs (no faster, no smaller) are uninformative.
	cands = advisor.ParetoFront(cands)
	limit := 12
	if len(cands) < limit {
		limit = len(cands)
	}
	for _, c := range cands[:limit] {
		ratio := 0.0
		if c.EstBTreeSz > 0 {
			ratio = float64(c.EstSize) / float64(c.EstBTreeSz)
		}
		res.Table5 = append(res.Table5, Table5Row{
			SlowdownPct: c.SlowdownPct,
			Design:      c.Describe(sch),
			SizeBytes:   c.EstSize,
			SizeRatio:   ratio,
			Runtime:     c.EstRuntime,
		})
	}
	return res, nil
}

// Print renders both tables in the paper's format.
func (r *AdvisorTablesResult) Print(w io.Writer) {
	fprintf(w, "Table 4: unclustered attribute bucketings considered for the SX6 query\n")
	fprintf(w, "%-12s %14s %18s\n", "Column", "Cardinality", "Bucket Widths")
	for _, row := range r.Table4 {
		widths := "none"
		if row.MaxLevel > 0 {
			if row.MinLevel == 0 {
				widths = fprintfs("none ~ 2^%d", row.MaxLevel)
			} else {
				widths = fprintfs("2^%d ~ 2^%d", row.MinLevel, row.MaxLevel)
			}
		}
		fprintf(w, "%-12s %14.0f %18s\n", row.Column, row.Cardinality, widths)
	}
	fprintf(w, "\nTable 5: CM designs vs estimated performance drop (smallest within target wins)\n")
	fprintf(w, "%10s  %-44s %12s %10s\n", "Runtime", "CM Design", "Size [KB]", "Ratio")
	for _, row := range r.Table5 {
		fprintf(w, "%+9.1f%%  %-44s %12.1f %9.2f%%\n",
			row.SlowdownPct, row.Design, float64(row.SizeBytes)/1024, row.SizeRatio*100)
	}
}

func fprintfs(format string, args ...any) string {
	return sprintf(format, args...)
}

package experiments

import (
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/heap"
	"repro/internal/table"
	"repro/internal/value"
)

// Table3Config scales the clustered-bucketing granularity study.
type Table3Config struct {
	SDSS        datagen.SDSSConfig
	BucketSizes []int // pages per clustered bucket; paper: 1,5,10,15,20,40
	FieldValues int   // fieldID values per lookup; paper's SX6 uses 2
}

func (c *Table3Config) defaults() {
	if len(c.BucketSizes) == 0 {
		c.BucketSizes = []int{1, 5, 10, 15, 20, 40}
	}
	if c.FieldValues <= 0 {
		c.FieldValues = 2
	}
	if c.SDSS.Rows() == 0 {
		c.SDSS = datagen.SDSSConfig{Stripes: 10, FieldsPerStripe: 25, ObjsPerField: 200}
	}
}

// Table3Row is one bucket granularity.
type Table3Row struct {
	BucketPages  int
	PagesScanned uint64
	IOCost       time.Duration
}

// Table3Result is the granularity sweep.
type Table3Result struct {
	Rows      []Table3Row
	TableRows int64
}

// RunTable3 reproduces Table 3: an SX6-style lookup of two fieldID
// values through a CM, as the clustered attribute bucketing widens from
// 1 to 40 pages per bucket. Wider buckets add only sequential reads, so
// cost grows slowly — the observation that lets the paper default to ~10
// pages per bucket.
func RunTable3(cfg Table3Config) (*Table3Result, error) {
	cfg.defaults()
	rows := datagen.PhotoTag(cfg.SDSS)
	res := &Table3Result{}
	for _, bp := range cfg.BucketSizes {
		env := NewEnv(4096)
		tbl, err := env.LoadTable(table.Config{
			Name:          "phototag",
			Schema:        datagen.SDSSSchema(),
			ClusteredCols: []int{datagen.SDSSObjID},
			BucketPages:   bp,
		}, rows)
		if err != nil {
			return nil, err
		}
		cm, err := tbl.CreateCM(core.Spec{Name: "fieldID", UCols: []int{datagen.SDSSFieldID}})
		if err != nil {
			return nil, err
		}
		res.TableRows = tbl.Stats().TotalTups
		// Two mid-survey fields, as in the SX6 query.
		q := exec.NewQuery(exec.In(datagen.SDSSFieldID,
			value.NewInt(100+int64(cfg.SDSS.FieldsPerStripe)), // start of stripe 2
			value.NewInt(100+2*int64(cfg.SDSS.FieldsPerStripe)+3),
		))
		elapsed, st, err := env.Cold(func() error {
			return exec.CMScan(tbl, cm, q, func(heap.RID, value.Row) bool { return true })
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table3Row{
			BucketPages:  bp,
			PagesScanned: st.Reads,
			IOCost:       elapsed,
		})
	}
	return res, nil
}

// Print renders the table like the paper's Table 3.
func (r *Table3Result) Print(w io.Writer) {
	fprintf(w, "Table 3: clustered bucketing granularity vs I/O cost (%d rows)\n", r.TableRows)
	fprintf(w, "%24s %16s %14s\n", "Bucket Size [pgs/bucket]", "Pages Scanned", "IO Cost [ms]")
	for _, row := range r.Rows {
		fprintf(w, "%24d %16d %14s\n", row.BucketPages, row.PagesScanned, ms(row.IOCost))
	}
}

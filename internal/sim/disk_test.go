package sim

import (
	"testing"
	"time"
)

func newTestDisk() *Disk {
	return NewDisk(Config{PageSize: 128})
}

func TestDefaults(t *testing.T) {
	d := NewDisk(Config{})
	if d.PageSize() != DefaultPageSize {
		t.Errorf("page size = %d", d.PageSize())
	}
	if d.Config().SeekCost != DefaultSeekCost || d.Config().SeqPageCost != DefaultSeqPageCost {
		t.Error("default costs not applied")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	d := newTestDisk()
	f := d.CreateFile()
	p := d.AllocPage(f)
	src := make([]byte, 128)
	copy(src, "hello")
	if err := d.WritePage(f, p, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 128)
	if err := d.ReadPage(f, p, dst); err != nil {
		t.Fatal(err)
	}
	if string(dst[:5]) != "hello" {
		t.Errorf("read back %q", dst[:5])
	}
}

func TestSequentialVsRandomClassification(t *testing.T) {
	d := newTestDisk()
	f := d.CreateFile()
	for i := 0; i < 10; i++ {
		d.AllocPage(f)
	}
	buf := make([]byte, 128)
	// Pages 0..9 in order: first read is a seek, the rest sequential.
	for p := int64(0); p < 10; p++ {
		if err := d.ReadPage(f, p, buf); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.RandReads != 1 || st.SeqReads != 9 {
		t.Errorf("rand=%d seq=%d, want 1/9", st.RandReads, st.SeqReads)
	}
	// Jumping backwards is a seek.
	if err := d.ReadPage(f, 0, buf); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.RandReads != 2 {
		t.Errorf("backward jump not a seek: rand=%d", st.RandReads)
	}
}

func TestCrossFileAccessIsSeek(t *testing.T) {
	d := newTestDisk()
	f1, f2 := d.CreateFile(), d.CreateFile()
	d.AllocPage(f1)
	d.AllocPage(f2)
	buf := make([]byte, 128)
	if err := d.ReadPage(f1, 0, buf); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadPage(f2, 0, buf); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.RandReads != 2 {
		t.Errorf("cross-file read should seek, rand=%d", st.RandReads)
	}
}

func TestElapsedAccounting(t *testing.T) {
	d := NewDisk(Config{PageSize: 128, SeekCost: 10 * time.Millisecond, SeqPageCost: time.Millisecond})
	f := d.CreateFile()
	for i := 0; i < 4; i++ {
		d.AllocPage(f)
	}
	buf := make([]byte, 128)
	for p := int64(0); p < 4; p++ {
		if err := d.ReadPage(f, p, buf); err != nil {
			t.Fatal(err)
		}
	}
	want := 10*time.Millisecond + 3*time.Millisecond
	if got := d.Elapsed(); got != want {
		t.Errorf("elapsed = %v, want %v", got, want)
	}
}

func TestSyncCostsOneSeekAndForgetsPosition(t *testing.T) {
	d := NewDisk(Config{PageSize: 128, SeekCost: 10 * time.Millisecond, SeqPageCost: time.Millisecond})
	f := d.CreateFile()
	d.AllocPage(f)
	d.AllocPage(f)
	buf := make([]byte, 128)
	if err := d.ReadPage(f, 0, buf); err != nil {
		t.Fatal(err)
	}
	d.Sync()
	if err := d.ReadPage(f, 1, buf); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Syncs != 1 {
		t.Errorf("syncs = %d", st.Syncs)
	}
	// Page 1 would have been sequential after page 0, but the sync
	// invalidated the head position.
	if st.RandReads != 2 {
		t.Errorf("read after sync should seek; rand=%d", st.RandReads)
	}
	if st.Seeks() != 3 {
		t.Errorf("Seeks() = %d, want 3", st.Seeks())
	}
}

func TestResetStats(t *testing.T) {
	d := newTestDisk()
	f := d.CreateFile()
	d.AllocPage(f)
	buf := make([]byte, 128)
	if err := d.ReadPage(f, 0, buf); err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	if st := d.Stats(); st.Reads != 0 || st.Elapsed != 0 {
		t.Error("reset did not clear stats")
	}
	// First access after reset is a seek again (cold cache methodology).
	if err := d.ReadPage(f, 0, buf); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.RandReads != 1 {
		t.Error("post-reset access should be random")
	}
}

func TestErrors(t *testing.T) {
	d := newTestDisk()
	buf := make([]byte, 128)
	if err := d.ReadPage(5, 0, buf); err == nil {
		t.Error("read of missing file should fail")
	}
	f := d.CreateFile()
	if err := d.ReadPage(f, 0, buf); err == nil {
		t.Error("read of missing page should fail")
	}
	if err := d.WritePage(f, 3, buf); err == nil {
		t.Error("write of missing page should fail")
	}
}

func TestWriteClassification(t *testing.T) {
	d := newTestDisk()
	f := d.CreateFile()
	for i := 0; i < 3; i++ {
		d.AllocPage(f)
	}
	buf := make([]byte, 128)
	for p := int64(0); p < 3; p++ {
		if err := d.WritePage(f, p, buf); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.RandWrites != 1 || st.SeqWrites != 2 || st.Writes != 3 {
		t.Errorf("write classification rand=%d seq=%d total=%d", st.RandWrites, st.SeqWrites, st.Writes)
	}
}

// TestStreamStatsAndReset pins the read-ahead stream accounting —
// sequential runs start streams, scattered seeks at the cap evict
// them — and that ResetStats zeroes the stream counters and the live
// stream contexts together with the exact counters: a snapshot after
// reset starts from a clean slate, with the next read classified as a
// fresh stream start, not a continuation of pre-reset history.
func TestStreamStatsAndReset(t *testing.T) {
	d := newTestDisk()
	f := d.CreateFile()
	const pages = 64
	buf := make([]byte, 128)
	for i := 0; i < pages; i++ {
		d.AllocPage(f)
	}
	// Two interleaved sequential runs: two live streams.
	for i := 0; i < 8; i++ {
		if err := d.ReadPage(f, int64(i), buf); err != nil {
			t.Fatal(err)
		}
		if err := d.ReadPage(f, int64(32+i), buf); err != nil {
			t.Fatal(err)
		}
	}
	s := d.Stats()
	if s.StreamStarts < 2 || s.ActiveStreams < 2 {
		t.Fatalf("stream stats = %+v, want >= 2 starts and active", s)
	}
	if s.SeqReads == 0 {
		t.Fatalf("interleaved sequential runs classified no seq reads: %+v", s)
	}

	d.ResetStats()
	s = d.Stats()
	if s != (Stats{}) {
		t.Fatalf("stats after reset = %+v, want zero", s)
	}

	// The stream table was dropped with the counters: continuing one of
	// the pre-reset runs is a fresh stream start (a seek), not a
	// sequential continuation of forgotten history.
	if err := d.ReadPage(f, 8, buf); err != nil {
		t.Fatal(err)
	}
	s = d.Stats()
	if s.StreamStarts != 1 || s.RandReads != 1 || s.SeqReads != 0 {
		t.Fatalf("first post-reset read = %+v, want one fresh stream start", s)
	}
	if s.ActiveStreams != 1 {
		t.Fatalf("active streams = %d, want 1", s.ActiveStreams)
	}
}

// Package sim implements the simulated disk that underlies every access
// method in this reproduction.
//
// The paper's experiments are disk-bound on a 7200rpm SATA drive and its
// analytical methodology (Table 1, Table 3) converts page-access patterns
// into elapsed time using two measured constants:
//
//	seek_cost     = 5.5 ms   time to seek to a random page and read it
//	seq_page_cost = 0.078 ms time to read one page sequentially
//
// sim.Disk stores pages in memory, classifies each access as sequential or
// random by comparing it with the previous head position, and accumulates a
// virtual elapsed time from the same constants. Every "Elapsed [s]" number
// in our experiment output is this virtual, disk-bound time, so result
// shapes are independent of host hardware and dataset scale.
package sim

import (
	"fmt"
	"time"
)

// Default hardware parameters, matching Table 1 of the paper.
const (
	DefaultPageSize    = 8192
	DefaultSeekCost    = 5500 * time.Microsecond
	DefaultSeqPageCost = 78 * time.Microsecond
)

// Config holds the simulated hardware parameters.
type Config struct {
	PageSize    int           // bytes per page
	SeekCost    time.Duration // random page access (seek + read)
	SeqPageCost time.Duration // sequential page read/write
}

// DefaultConfig returns the paper's measured hardware parameters.
func DefaultConfig() Config {
	return Config{
		PageSize:    DefaultPageSize,
		SeekCost:    DefaultSeekCost,
		SeqPageCost: DefaultSeqPageCost,
	}
}

// FileID names a file (segment) on the simulated disk.
type FileID uint32

// Stats aggregates I/O counters and the virtual clock.
type Stats struct {
	Reads      uint64 // total page reads
	Writes     uint64 // total page writes
	SeqReads   uint64 // reads classified sequential
	RandReads  uint64 // reads classified random (seeks)
	SeqWrites  uint64
	RandWrites uint64
	Syncs      uint64        // fsync-style barriers (each costs one seek)
	Elapsed    time.Duration // accumulated virtual time
}

// Seeks returns the total number of random accesses including syncs.
func (s Stats) Seeks() uint64 { return s.RandReads + s.RandWrites + s.Syncs }

// Disk is an in-memory page store with mechanical-disk cost accounting.
// It is not safe for concurrent use; the engine serializes access.
type Disk struct {
	cfg   Config
	files [][][]byte

	hasPos   bool
	lastFile FileID
	lastPage int64

	stats Stats
}

// NewDisk creates a disk with the given configuration. Zero fields fall
// back to the defaults.
func NewDisk(cfg Config) *Disk {
	if cfg.PageSize <= 0 {
		cfg.PageSize = DefaultPageSize
	}
	if cfg.SeekCost <= 0 {
		cfg.SeekCost = DefaultSeekCost
	}
	if cfg.SeqPageCost <= 0 {
		cfg.SeqPageCost = DefaultSeqPageCost
	}
	return &Disk{cfg: cfg}
}

// Config returns the disk's configuration.
func (d *Disk) Config() Config { return d.cfg }

// PageSize returns the configured page size in bytes.
func (d *Disk) PageSize() int { return d.cfg.PageSize }

// CreateFile allocates a new empty file and returns its ID.
func (d *Disk) CreateFile() FileID {
	d.files = append(d.files, nil)
	return FileID(len(d.files) - 1)
}

// NumPages returns the number of pages in the file.
func (d *Disk) NumPages(f FileID) int64 {
	return int64(len(d.files[f]))
}

// AllocPage appends a zeroed page to the file and returns its page number.
// Allocation itself is free; the subsequent write pays the I/O cost.
func (d *Disk) AllocPage(f FileID) int64 {
	d.files[f] = append(d.files[f], make([]byte, d.cfg.PageSize))
	return int64(len(d.files[f]) - 1)
}

func (d *Disk) page(f FileID, p int64) ([]byte, error) {
	if int(f) >= len(d.files) {
		return nil, fmt.Errorf("sim: no such file %d", f)
	}
	pages := d.files[f]
	if p < 0 || p >= int64(len(pages)) {
		return nil, fmt.Errorf("sim: file %d has no page %d (size %d)", f, p, len(pages))
	}
	return pages[p], nil
}

// charge classifies an access at (f, p) and advances the virtual clock.
func (d *Disk) charge(f FileID, p int64, write bool) {
	seq := d.hasPos && d.lastFile == f && p == d.lastPage+1
	d.hasPos = true
	d.lastFile = f
	d.lastPage = p
	if seq {
		d.stats.Elapsed += d.cfg.SeqPageCost
		if write {
			d.stats.SeqWrites++
		} else {
			d.stats.SeqReads++
		}
	} else {
		d.stats.Elapsed += d.cfg.SeekCost
		if write {
			d.stats.RandWrites++
		} else {
			d.stats.RandReads++
		}
	}
	if write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
}

// ReadPage reads page p of file f into dst (which must be PageSize bytes)
// and charges the access.
func (d *Disk) ReadPage(f FileID, p int64, dst []byte) error {
	pg, err := d.page(f, p)
	if err != nil {
		return err
	}
	d.charge(f, p, false)
	copy(dst, pg)
	return nil
}

// WritePage writes src to page p of file f and charges the access.
func (d *Disk) WritePage(f FileID, p int64, src []byte) error {
	pg, err := d.page(f, p)
	if err != nil {
		return err
	}
	d.charge(f, p, true)
	copy(pg, src)
	return nil
}

// Sync models an fsync barrier: one random access.
func (d *Disk) Sync() {
	d.stats.Syncs++
	d.stats.Elapsed += d.cfg.SeekCost
	d.hasPos = false // the head position is unknown after a barrier
}

// Stats returns a snapshot of the counters.
func (d *Disk) Stats() Stats { return d.stats }

// Elapsed returns the accumulated virtual time.
func (d *Disk) Elapsed() time.Duration { return d.stats.Elapsed }

// ResetStats zeroes the counters and the virtual clock. The head position
// is also forgotten so the first access after a reset is a seek, matching
// the paper's cold-cache methodology.
func (d *Disk) ResetStats() {
	d.stats = Stats{}
	d.hasPos = false
}

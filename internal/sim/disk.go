// Package sim implements the simulated disk that underlies every access
// method in this reproduction.
//
// The paper's experiments are disk-bound on a 7200rpm SATA drive and its
// analytical methodology (Table 1, Table 3) converts page-access patterns
// into elapsed time using two measured constants:
//
//	seek_cost     = 5.5 ms   time to seek to a random page and read it
//	seq_page_cost = 0.078 ms time to read one page sequentially
//
// sim.Disk stores pages in memory, classifies each access as sequential or
// random by comparing it with the recently active access streams (the
// read-ahead contexts a drive or OS keeps alive — see Disk), and
// accumulates a virtual elapsed time from the same constants. Every
// "Elapsed [s]" number in our experiment output is this virtual,
// disk-bound time, so result shapes are independent of host hardware and
// dataset scale.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Default hardware parameters, matching Table 1 of the paper.
const (
	DefaultPageSize    = 8192
	DefaultSeekCost    = 5500 * time.Microsecond
	DefaultSeqPageCost = 78 * time.Microsecond
)

// Config holds the simulated hardware parameters.
type Config struct {
	PageSize    int           // bytes per page
	SeekCost    time.Duration // random page access (seek + read)
	SeqPageCost time.Duration // sequential page read/write
	// RealWaitScale, when positive, makes every access also block the
	// calling goroutine for its virtual cost divided by this factor
	// (RealWaitScale 10 turns a 5.5 ms seek into a 0.55 ms sleep). The
	// wait happens after the disk mutex is released, so independent
	// accesses from concurrent scan workers overlap their waits the way
	// requests overlap on hardware with internal parallelism (command
	// queueing, SSD channels, disk arrays). Zero (the default) disables
	// real waits: accesses only advance the virtual clock. The virtual
	// clock itself remains a single serial time line either way.
	RealWaitScale int
}

// DefaultConfig returns the paper's measured hardware parameters.
func DefaultConfig() Config {
	return Config{
		PageSize:    DefaultPageSize,
		SeekCost:    DefaultSeekCost,
		SeqPageCost: DefaultSeqPageCost,
	}
}

// FileID names a file (segment) on the simulated disk.
type FileID uint32

// ErrInjected is the sentinel under every fault the disk injects from a
// FaultPlan. Error paths match it with errors.Is to distinguish an
// injected (or real) device fault from logic errors like out-of-range
// page numbers.
var ErrInjected = errors.New("sim: injected disk fault")

// FaultPlan describes deterministic fault injection for chaos testing.
// All trigger fields compose: an access fails when any armed trigger
// matches, and the page-range gate (when set) restricts every trigger.
// Counters are relative to SetFaultPlan, so re-installing a plan replays
// the same fault sequence — runs are reproducible by construction, and
// the probabilistic trigger draws from a stream seeded by Seed.
type FaultPlan struct {
	// FailReadN fails the Nth page read (1-based) exactly once.
	FailReadN int64
	// FailWriteN fails the Nth page write (1-based) exactly once.
	FailWriteN int64
	// EveryKth fails every Kth access (reads and writes pooled).
	EveryKth int64
	// PageLo/PageHi, when PageHi > 0, gate every trigger to accesses of
	// pages in [PageLo, PageHi].
	PageLo, PageHi int64
	// ReadProb fails each read independently with this probability,
	// drawn from a deterministic stream seeded by Seed.
	ReadProb float64
	// Seed seeds the ReadProb stream (0 behaves as an arbitrary fixed
	// seed; equal seeds give equal fault sequences).
	Seed int64
}

// armed reports whether the plan can trigger at all.
func (fp FaultPlan) armed() bool {
	return fp.FailReadN > 0 || fp.FailWriteN > 0 || fp.EveryKth > 0 || fp.ReadProb > 0
}

// Stats aggregates I/O counters and the virtual clock. Every field is
// maintained and snapshotted under the one disk mutex, so a Stats read
// mid-query is internally consistent — the read-ahead stream counters
// can never be torn against the page counters.
type Stats struct {
	Reads      uint64 // total page reads
	Writes     uint64 // total page writes
	SeqReads   uint64 // reads classified sequential
	RandReads  uint64 // reads classified random (seeks)
	SeqWrites  uint64
	RandWrites uint64
	Syncs      uint64        // fsync-style barriers (each costs one seek)
	Elapsed    time.Duration // accumulated virtual time

	// Read-ahead stream accounting: StreamStarts counts streams opened
	// by a seek, StreamEvictions counts live streams dropped to make
	// room at the maxStreams cap, and ActiveStreams is the number of
	// live read-ahead contexts at snapshot time. Stream continuations
	// are exactly SeqReads + SeqWrites.
	StreamStarts    uint64
	StreamEvictions uint64
	ActiveStreams   int

	// IOWait is the cumulative real sleep time paid in RealWaitScale
	// mode (zero when real waits are disabled).
	IOWait time.Duration

	// InjectedFaults counts accesses failed by the installed FaultPlan.
	InjectedFaults uint64
}

// Seeks returns the total number of random accesses including syncs.
func (s Stats) Seeks() uint64 { return s.RandReads + s.RandWrites + s.Syncs }

// Disk is an in-memory page store with mechanical-disk cost accounting.
// It is safe for concurrent use: a single mutex serializes every access,
// modeling the one spindle the cost constants describe — concurrent
// requests queue at the disk exactly as they would at real hardware.
//
// Sequential classification tracks up to maxStreams recent access
// streams, not just one head position: drives and operating systems keep
// several read-ahead contexts alive (NCQ, per-file read-ahead), so a
// scan interleaved with another scan — or with WAL appends — still reads
// sequentially within each stream. This is what lets the parallel
// executor's chunked sweeps stay sequential instead of charging a full
// seek per page once two workers interleave. A single monotonically
// advancing scan classifies exactly as the old single-head model did;
// serial patterns that alternate between streams (a sweep interleaved
// with log appends, runs resumed after a gap) now classify sequential
// where the single head charged seeks — intended, since real read-ahead
// absorbs exactly those patterns.
type Disk struct {
	cfg Config

	mu    sync.Mutex
	files [][][]byte

	// streams holds the next expected page of each live access stream,
	// most recently used first.
	streams []stream

	stats Stats

	// Fault injection (all under mu): the installed plan, the access
	// counters it triggers on (relative to SetFaultPlan, so reinstalling
	// a plan replays its fault sequence) and the seeded stream behind the
	// probabilistic trigger.
	fp          *FaultPlan
	faultReads  int64
	faultWrites int64
	faultAccs   int64
	faultRng    *rand.Rand

	// owed pools un-slept real-wait time (RealWaitScale mode). Host
	// sleep granularity is ~1 ms, far above a scaled sequential page
	// read, so waits accumulate here and are paid in chunks: totals are
	// preserved, and concurrent accessors still overlap their sleeps.
	owed atomic.Int64

	// slept accumulates real wait time actually paid, surfaced as
	// Stats.IOWait. Updated outside the mutex (sleeps must overlap),
	// read atomically by Stats.
	slept atomic.Int64
}

// stream is one sequential access context: the page an access must
// touch to continue the stream.
type stream struct {
	file FileID
	next int64
}

// maxStreams bounds the live read-ahead contexts. It must comfortably
// exceed the scan fan-out (Config.Workers defaults to GOMAXPROCS) plus
// log/index traffic, or concurrent chunk sweeps LRU-thrash the table
// and every access charges a seek; hits move to the front, so the
// linear probe stays short for the hot streams even at this size.
const maxStreams = 64

// waitChunk is the minimum real wait paid at once, chosen above typical
// host sleep granularity so chunked sleeps stay accurate.
const waitChunk = 2 * time.Millisecond

// NewDisk creates a disk with the given configuration. Zero fields fall
// back to the defaults.
func NewDisk(cfg Config) *Disk {
	if cfg.PageSize <= 0 {
		cfg.PageSize = DefaultPageSize
	}
	if cfg.SeekCost <= 0 {
		cfg.SeekCost = DefaultSeekCost
	}
	if cfg.SeqPageCost <= 0 {
		cfg.SeqPageCost = DefaultSeqPageCost
	}
	return &Disk{cfg: cfg}
}

// Config returns the disk's configuration.
func (d *Disk) Config() Config { return d.cfg }

// PageSize returns the configured page size in bytes.
func (d *Disk) PageSize() int { return d.cfg.PageSize }

// CreateFile allocates a new empty file and returns its ID.
func (d *Disk) CreateFile() FileID {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.files = append(d.files, nil)
	return FileID(len(d.files) - 1)
}

// NumPages returns the number of pages in the file.
func (d *Disk) NumPages(f FileID) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.files[f]))
}

// AllocPage appends a zeroed page to the file and returns its page number.
// Allocation itself is free; the subsequent write pays the I/O cost.
func (d *Disk) AllocPage(f FileID) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.files[f] = append(d.files[f], make([]byte, d.cfg.PageSize))
	return int64(len(d.files[f]) - 1)
}

// SetFaultPlan installs (or, with nil, removes) a fault-injection plan.
// Installation resets the plan's access counters and reseeds its
// probability stream, so the same plan on the same workload injects the
// same faults. Stats.InjectedFaults keeps accumulating across plans.
func (d *Disk) SetFaultPlan(fp *FaultPlan) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if fp != nil && !fp.armed() {
		fp = nil
	}
	d.fp = fp
	d.faultReads, d.faultWrites, d.faultAccs = 0, 0, 0
	d.faultRng = nil
	if fp != nil && fp.ReadProb > 0 {
		d.faultRng = rand.New(rand.NewSource(fp.Seed))
	}
}

// injectFault consults the installed FaultPlan for an access of page p
// and returns the injected error when a trigger fires. Called with the
// disk mutex held, before the access is charged or applied — an
// injected fault costs nothing and moves no data, like a request the
// device rejected.
func (d *Disk) injectFault(f FileID, p int64, write bool) error {
	fp := d.fp
	if fp == nil {
		return nil
	}
	d.faultAccs++
	if write {
		d.faultWrites++
	} else {
		d.faultReads++
	}
	if fp.PageHi > 0 && (p < fp.PageLo || p > fp.PageHi) {
		return nil
	}
	fire := false
	switch {
	case !write && fp.FailReadN > 0 && d.faultReads == fp.FailReadN:
		fire = true
	case write && fp.FailWriteN > 0 && d.faultWrites == fp.FailWriteN:
		fire = true
	case fp.EveryKth > 0 && d.faultAccs%fp.EveryKth == 0:
		fire = true
	case !write && d.faultRng != nil && d.faultRng.Float64() < fp.ReadProb:
		fire = true
	}
	if !fire {
		return nil
	}
	d.stats.InjectedFaults++
	op := "read"
	if write {
		op = "write"
	}
	return fmt.Errorf("sim: %s of file %d page %d: %w", op, f, p, ErrInjected)
}

func (d *Disk) page(f FileID, p int64) ([]byte, error) {
	if int(f) >= len(d.files) {
		return nil, fmt.Errorf("sim: no such file %d", f)
	}
	pages := d.files[f]
	if p < 0 || p >= int64(len(pages)) {
		return nil, fmt.Errorf("sim: file %d has no page %d (size %d)", f, p, len(pages))
	}
	return pages[p], nil
}

// charge classifies an access at (f, p) against the live streams,
// advances the virtual clock and returns the virtual cost of the access.
func (d *Disk) charge(f FileID, p int64, write bool) time.Duration {
	seq := false
	for i := range d.streams {
		if d.streams[i].file == f && d.streams[i].next == p {
			seq = true
			d.streams[i].next = p + 1
			// Move to front: the LRU slot is the replacement victim.
			s := d.streams[i]
			copy(d.streams[1:i+1], d.streams[:i])
			d.streams[0] = s
			break
		}
	}
	if !seq {
		// A seek starts (or restarts) a stream at the new position.
		if len(d.streams) < maxStreams {
			d.streams = append(d.streams, stream{})
		} else {
			d.stats.StreamEvictions++
		}
		copy(d.streams[1:], d.streams)
		d.streams[0] = stream{file: f, next: p + 1}
		d.stats.StreamStarts++
	}
	var cost time.Duration
	if seq {
		cost = d.cfg.SeqPageCost
		if write {
			d.stats.SeqWrites++
		} else {
			d.stats.SeqReads++
		}
	} else {
		cost = d.cfg.SeekCost
		if write {
			d.stats.RandWrites++
		} else {
			d.stats.RandReads++
		}
	}
	d.stats.Elapsed += cost
	if write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	return cost
}

// wait blocks for the access's scaled real-time cost when the disk is
// configured with RealWaitScale. Called without the mutex held so
// concurrent accesses overlap their waits. Sub-chunk costs pool in owed
// and the accessor that pushes the pool past waitChunk sleeps it off.
func (d *Disk) wait(cost time.Duration) {
	if d.cfg.RealWaitScale <= 0 {
		return
	}
	real := cost / time.Duration(d.cfg.RealWaitScale)
	owed := d.owed.Add(int64(real))
	if owed < int64(waitChunk) {
		return
	}
	// Claim the whole pool; on a lost race the racing accessor observed
	// an even larger pool and claims it instead.
	if d.owed.CompareAndSwap(owed, 0) {
		time.Sleep(time.Duration(owed))
		d.slept.Add(owed)
	}
}

// ReadPage reads page p of file f into dst (which must be PageSize bytes)
// and charges the access.
func (d *Disk) ReadPage(f FileID, p int64, dst []byte) error {
	cost, err := d.ReadPageDeferWait(f, p, dst)
	d.PayWait(cost)
	return err
}

// ReadPageDeferWait is ReadPage without the real wait: it returns the
// access's virtual cost for the caller to pay with PayWait once it has
// released its own locks (the buffer pool holds a shard lock across the
// read, and sleeping inside it would convoy unrelated accessors).
func (d *Disk) ReadPageDeferWait(f FileID, p int64, dst []byte) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	pg, err := d.page(f, p)
	if err != nil {
		return 0, err
	}
	if err := d.injectFault(f, p, false); err != nil {
		return 0, err
	}
	cost := d.charge(f, p, false)
	copy(dst, pg)
	return cost, nil
}

// WritePage writes src to page p of file f and charges the access.
func (d *Disk) WritePage(f FileID, p int64, src []byte) error {
	cost, err := d.WritePageDeferWait(f, p, src)
	d.PayWait(cost)
	return err
}

// WritePageDeferWait is WritePage without the real wait; see
// ReadPageDeferWait.
func (d *Disk) WritePageDeferWait(f FileID, p int64, src []byte) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	pg, err := d.page(f, p)
	if err != nil {
		return 0, err
	}
	if err := d.injectFault(f, p, true); err != nil {
		return 0, err
	}
	cost := d.charge(f, p, true)
	copy(pg, src)
	return cost, nil
}

// PayWait blocks for a previously deferred access cost. A zero cost is
// free.
func (d *Disk) PayWait(cost time.Duration) {
	if cost > 0 {
		d.wait(cost)
	}
}

// Sync models an fsync barrier: one random access.
func (d *Disk) Sync() {
	d.PayWait(d.SyncDeferWait())
}

// SyncDeferWait is Sync without the real wait; see ReadPageDeferWait.
func (d *Disk) SyncDeferWait() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Syncs++
	d.stats.Elapsed += d.cfg.SeekCost
	d.streams = d.streams[:0] // head position is unknown after a barrier
	return d.cfg.SeekCost
}

// Stats returns a snapshot of the counters. The page and stream
// counters are captured under one mutex hold, so they are mutually
// consistent even while a query is mid-flight.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats
	s.ActiveStreams = len(d.streams)
	s.IOWait = time.Duration(d.slept.Load())
	return s
}

// Elapsed returns the accumulated virtual time.
func (d *Disk) Elapsed() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats.Elapsed
}

// ResetStats zeroes the counters and the virtual clock. The head position
// is also forgotten so the first access after a reset is a seek, matching
// the paper's cold-cache methodology. The stream counters, the pooled
// real-wait debt and the paid-wait total reset in the same critical
// section as the page counters, so a concurrent Stats snapshot sees
// either the old epoch or the new one — never a mix.
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
	d.streams = d.streams[:0]
	d.owed.Store(0)
	d.slept.Store(0)
}

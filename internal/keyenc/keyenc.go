// Package keyenc provides order-preserving byte encodings of values and
// composite keys.
//
// Both B+Trees and correlation maps need keys whose bytewise order matches
// the logical order of the encoded values, so that range scans over encoded
// keys visit values in sorted order. The encodings used here follow the
// conventions common to storage engines:
//
//   - int64: sign bit flipped, big-endian (so negative sorts before positive)
//   - float64: IEEE-754 bits with the usual monotone transform
//   - string: raw bytes with 0x00 escaped as 0x00 0xFF, terminated by
//     0x00 0x01, making composite keys self-delimiting
//
// Each encoded field is prefixed with a one-byte kind tag so heterogeneous
// composites still order deterministically and can be decoded.
package keyenc

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/value"
)

// Kind tags. They double as order discriminators between kinds.
const (
	tagInt    byte = 0x10
	tagFloat  byte = 0x20
	tagString byte = 0x30
)

// String escape bytes.
const (
	strEscape  byte = 0x00
	strEscaped byte = 0xFF
	strTerm    byte = 0x01
)

// AppendValue appends the order-preserving encoding of v to dst.
func AppendValue(dst []byte, v value.Value) []byte {
	switch v.K {
	case value.Int:
		dst = append(dst, tagInt)
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(v.I)^(1<<63))
		return append(dst, buf[:]...)
	case value.Float:
		dst = append(dst, tagFloat)
		bits := math.Float64bits(v.F)
		if bits&(1<<63) != 0 {
			bits = ^bits // negative: flip all so larger magnitude sorts first
		} else {
			bits |= 1 << 63 // positive: set sign so it sorts after negatives
		}
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], bits)
		return append(dst, buf[:]...)
	default:
		dst = append(dst, tagString)
		for i := 0; i < len(v.S); i++ {
			c := v.S[i]
			if c == strEscape {
				dst = append(dst, strEscape, strEscaped)
			} else {
				dst = append(dst, c)
			}
		}
		return append(dst, strEscape, strTerm)
	}
}

// EncodeValue returns the order-preserving encoding of a single value.
func EncodeValue(v value.Value) []byte {
	return AppendValue(make([]byte, 0, 10), v)
}

// EncodeRowPrefix encodes the given columns of row, in order, as one
// composite key.
func EncodeRowPrefix(row value.Row, cols []int) []byte {
	dst := make([]byte, 0, 10*len(cols))
	for _, c := range cols {
		dst = AppendValue(dst, row[c])
	}
	return dst
}

// EncodeValues encodes the given values, in order, as one composite key.
func EncodeValues(vals ...value.Value) []byte {
	dst := make([]byte, 0, 10*len(vals))
	for _, v := range vals {
		dst = AppendValue(dst, v)
	}
	return dst
}

// DecodeValue decodes the first value in b and returns it together with the
// remainder of the buffer.
func DecodeValue(b []byte) (value.Value, []byte, error) {
	if len(b) == 0 {
		return value.Value{}, nil, fmt.Errorf("keyenc: empty buffer")
	}
	switch b[0] {
	case tagInt:
		if len(b) < 9 {
			return value.Value{}, nil, fmt.Errorf("keyenc: truncated int key")
		}
		u := binary.BigEndian.Uint64(b[1:9])
		return value.NewInt(int64(u ^ (1 << 63))), b[9:], nil
	case tagFloat:
		if len(b) < 9 {
			return value.Value{}, nil, fmt.Errorf("keyenc: truncated float key")
		}
		bits := binary.BigEndian.Uint64(b[1:9])
		if bits&(1<<63) != 0 {
			bits &^= 1 << 63
		} else {
			bits = ^bits
		}
		return value.NewFloat(math.Float64frombits(bits)), b[9:], nil
	case tagString:
		out := make([]byte, 0, 16)
		i := 1
		for i < len(b) {
			c := b[i]
			if c != strEscape {
				out = append(out, c)
				i++
				continue
			}
			if i+1 >= len(b) {
				return value.Value{}, nil, fmt.Errorf("keyenc: truncated string key")
			}
			switch b[i+1] {
			case strEscaped:
				out = append(out, strEscape)
				i += 2
			case strTerm:
				return value.NewString(string(out)), b[i+2:], nil
			default:
				return value.Value{}, nil, fmt.Errorf("keyenc: bad string escape 0x%02x", b[i+1])
			}
		}
		return value.Value{}, nil, fmt.Errorf("keyenc: unterminated string key")
	default:
		return value.Value{}, nil, fmt.Errorf("keyenc: unknown tag 0x%02x", b[0])
	}
}

// DecodeAll decodes every value in a composite key.
func DecodeAll(b []byte) ([]value.Value, error) {
	var out []value.Value
	for len(b) > 0 {
		v, rest, err := DecodeValue(b)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		b = rest
	}
	return out, nil
}

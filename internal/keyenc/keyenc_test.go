package keyenc

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func TestIntOrderPreserved(t *testing.T) {
	f := func(a, b int64) bool {
		ea, eb := EncodeValue(value.NewInt(a)), EncodeValue(value.NewInt(b))
		cmp := bytes.Compare(ea, eb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatOrderPreserved(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ea, eb := EncodeValue(value.NewFloat(a)), EncodeValue(value.NewFloat(b))
		cmp := bytes.Compare(ea, eb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringOrderPreserved(t *testing.T) {
	f := func(a, b string) bool {
		ea, eb := EncodeValue(value.NewString(a)), EncodeValue(value.NewString(b))
		cmp := bytes.Compare(ea, eb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringWithNulBytes(t *testing.T) {
	a := value.NewString("a\x00b")
	b := value.NewString("a\x00c")
	ea, eb := EncodeValue(a), EncodeValue(b)
	if bytes.Compare(ea, eb) >= 0 {
		t.Error("NUL-containing strings mis-ordered")
	}
	got, rest, err := DecodeValue(ea)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v rest=%d", err, len(rest))
	}
	if got.S != "a\x00b" {
		t.Errorf("roundtrip = %q", got.S)
	}
}

func TestRoundTripInt(t *testing.T) {
	f := func(a int64) bool {
		v, rest, err := DecodeValue(EncodeValue(value.NewInt(a)))
		return err == nil && len(rest) == 0 && v.I == a && v.K == value.Int
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundTripFloat(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) {
			return true
		}
		v, rest, err := DecodeValue(EncodeValue(value.NewFloat(a)))
		return err == nil && len(rest) == 0 && v.F == a && v.K == value.Float
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundTripString(t *testing.T) {
	f := func(s string) bool {
		v, rest, err := DecodeValue(EncodeValue(value.NewString(s)))
		return err == nil && len(rest) == 0 && v.S == s && v.K == value.String
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompositeOrder(t *testing.T) {
	// ("boston", 2) must sort before ("boston", 10) and before ("chicago", 1).
	k1 := EncodeValues(value.NewString("boston"), value.NewInt(2))
	k2 := EncodeValues(value.NewString("boston"), value.NewInt(10))
	k3 := EncodeValues(value.NewString("chicago"), value.NewInt(1))
	if !(bytes.Compare(k1, k2) < 0 && bytes.Compare(k2, k3) < 0) {
		t.Error("composite ordering violated")
	}
}

func TestCompositePrefixOrder(t *testing.T) {
	// A key must sort after any of its proper prefixes.
	p := EncodeValues(value.NewString("bos"))
	full := EncodeValues(value.NewString("bos"), value.NewInt(-5))
	if bytes.Compare(p, full) >= 0 {
		t.Error("prefix should sort before extension")
	}
}

func TestDecodeAll(t *testing.T) {
	k := EncodeValues(value.NewInt(7), value.NewFloat(1.25), value.NewString("x"))
	vals, err := DecodeAll(k)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || vals[0].I != 7 || vals[1].F != 1.25 || vals[2].S != "x" {
		t.Errorf("DecodeAll = %v", vals)
	}
}

func TestEncodeRowPrefix(t *testing.T) {
	row := value.Row{value.NewInt(1), value.NewString("a"), value.NewFloat(3)}
	k := EncodeRowPrefix(row, []int{2, 0})
	vals, err := DecodeAll(k)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0].F != 3 || vals[1].I != 1 {
		t.Errorf("EncodeRowPrefix order wrong: %v", vals)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x99},                  // unknown tag
		{tagInt, 1, 2},          // truncated int
		{tagFloat, 1},           // truncated float
		{tagString, 'a'},        // unterminated string
		{tagString, 0x00},       // truncated escape
		{tagString, 0x00, 0x7F}, // invalid escape
	}
	for i, c := range cases {
		if _, _, err := DecodeValue(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

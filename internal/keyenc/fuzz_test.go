package keyenc

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/value"
)

// FuzzRoundTrip checks that encoding any (int, float, string) triple and
// decoding it back yields the original values bit-for-bit, and that the
// encoding preserves composite ordering properties the engine relies on
// (each field is self-delimiting, so the decode consumes exactly the
// encoded bytes).
func FuzzRoundTrip(f *testing.F) {
	f.Add(int64(0), 0.0, "")
	f.Add(int64(-1), -0.0, "a\x00b")
	f.Add(int64(math.MaxInt64), math.Inf(1), "\x00\x00")
	f.Add(int64(math.MinInt64), math.Inf(-1), "zzz")
	f.Add(int64(42), 3.14, "correlation map")
	f.Fuzz(func(t *testing.T, i int64, fl float64, s string) {
		key := EncodeValues(value.NewInt(i), value.NewFloat(fl), value.NewString(s))
		vals, err := DecodeAll(key)
		if err != nil {
			t.Fatalf("DecodeAll(%x): %v", key, err)
		}
		if len(vals) != 3 {
			t.Fatalf("decoded %d values, want 3", len(vals))
		}
		if vals[0].K != value.Int || vals[0].I != i {
			t.Errorf("int round-trip: got %v, want %d", vals[0], i)
		}
		if vals[1].K != value.Float || math.Float64bits(vals[1].F) != math.Float64bits(fl) {
			t.Errorf("float round-trip: got %v (bits %x), want %v (bits %x)",
				vals[1].F, math.Float64bits(vals[1].F), fl, math.Float64bits(fl))
		}
		if vals[2].K != value.String || vals[2].S != s {
			t.Errorf("string round-trip: got %q, want %q", vals[2].S, s)
		}
		// Re-encoding the decoded values must reproduce the bytes: the
		// encoding is canonical.
		if again := EncodeValues(vals...); !bytes.Equal(again, key) {
			t.Errorf("re-encode mismatch: %x vs %x", again, key)
		}
	})
}

// FuzzOrderPreserving checks the core contract: bytewise order of
// encoded keys matches logical order of the values.
func FuzzOrderPreserving(f *testing.F) {
	f.Add(int64(1), int64(2))
	f.Add(int64(-5), int64(5))
	f.Add(int64(math.MinInt64), int64(math.MaxInt64))
	f.Fuzz(func(t *testing.T, a, b int64) {
		ka := EncodeValue(value.NewInt(a))
		kb := EncodeValue(value.NewInt(b))
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b && cmp >= 0:
			t.Errorf("%d < %d but keys compare %d", a, b, cmp)
		case a > b && cmp <= 0:
			t.Errorf("%d > %d but keys compare %d", a, b, cmp)
		case a == b && cmp != 0:
			t.Errorf("%d == %d but keys compare %d", a, b, cmp)
		}
	})
}

// FuzzDecodeArbitrary throws arbitrary bytes at the decoder: it must
// never panic, and anything it accepts must re-encode to exactly the
// input (no two byte strings decode to the same values).
func FuzzDecodeArbitrary(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x10})
	f.Add(EncodeValue(value.NewInt(77)))
	f.Add(EncodeValue(value.NewString("x\x00y")))
	f.Add([]byte{0x30, 0x00, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := DecodeAll(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if again := EncodeValues(vals...); !bytes.Equal(again, data) {
			t.Errorf("accepted non-canonical encoding: %x decodes to %v, re-encodes to %x", data, vals, again)
		}
	})
}

package table

import (
	"repro/internal/btree"
	"repro/internal/buffer"
)

// newTree creates an empty B+Tree on the pool; split out for testability.
func newTree(pool *buffer.Pool) (*btree.Tree, error) {
	return btree.New(pool)
}

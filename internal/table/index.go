package table

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"repro/internal/btree"
	"repro/internal/filter"
	"repro/internal/heap"
	"repro/internal/keyenc"
	"repro/internal/value"
)

// ridKeyLen is the fixed RID suffix appended to index keys: page (8 bytes
// big-endian) + slot (2 bytes big-endian), ordering entries physically
// within equal attribute values.
const ridKeyLen = 10

// AppendRID appends the RID suffix to an encoded key prefix.
func AppendRID(key []byte, rid heap.RID) []byte {
	key = binary.BigEndian.AppendUint64(key, uint64(rid.Page))
	key = binary.BigEndian.AppendUint16(key, rid.Slot)
	return key
}

// ridFromKey extracts the RID from an index entry key.
func ridFromKey(key []byte) (heap.RID, error) {
	if len(key) < ridKeyLen {
		return heap.RID{}, fmt.Errorf("table: index key too short for RID suffix")
	}
	tail := key[len(key)-ridKeyLen:]
	return heap.RID{
		Page: int64(binary.BigEndian.Uint64(tail[:8])),
		Slot: binary.BigEndian.Uint16(tail[8:]),
	}, nil
}

// Index is a dense B+Tree index: one (attribute key ‖ RID) entry per
// tuple. It serves both as the clustered index (over the clustering
// attribute of a physically sorted heap) and as the secondary indexes the
// paper's correlation maps compress away.
type Index struct {
	Name string
	Cols []int // indexed column positions, in key order
	Tree *btree.Tree

	// bloom, when enabled, summarizes the index's distinct attribute
	// keys (the encoded column prefix, without the RID suffix) so a
	// point probe for an absent key skips the B+Tree descent — and the
	// page reads it would cost — entirely. Maintained by Insert/Delete;
	// nil means no bloom (the default).
	bloom *filter.Bloom
	// bloomSkips counts probes the bloom pruned (atomic: probes run
	// concurrently under the table read latch).
	bloomSkips atomic.Int64
}

// indexBloomSeed and indexBloomFPP fix the index bloom's hashing and
// target false-positive rate; determinism preserves the engine's
// reproducibility contract, and a false positive only costs the tree
// descent the bloom would have skipped.
const (
	indexBloomSeed uint64 = 0x1DEBB100F
	indexBloomFPP         = 0.01
)

// EnableBloom arms the index's key bloom filter, sized for expectedN
// entries. Call under the table write latch; existing entries are
// folded in by scanning the tree.
func (ix *Index) EnableBloom(expectedN int64) error {
	ix.bloom = filter.NewBloom(expectedN, indexBloomFPP, indexBloomSeed)
	it, err := ix.Tree.SeekFirst()
	if err != nil {
		return err
	}
	for it.Valid() {
		k := it.Key()
		if len(k) < ridKeyLen {
			return fmt.Errorf("table: index key too short for RID suffix")
		}
		ix.bloom.Add(k[:len(k)-ridKeyLen])
		if err := it.Next(); err != nil {
			return err
		}
	}
	return nil
}

// BloomEnabled reports whether the index maintains a key bloom filter.
func (ix *Index) BloomEnabled() bool { return ix.bloom != nil }

// BloomSkips returns how many point probes the bloom pruned.
func (ix *Index) BloomSkips() int64 { return ix.bloomSkips.Load() }

// ProbePossible reports whether an equality probe for the encoded
// attribute prefix can possibly match: false (definitive, counted as a
// bloom skip) only when the bloom proves the key absent. Without a
// bloom it always reports true.
func (ix *Index) ProbePossible(prefix []byte) bool {
	if ix.bloom == nil {
		return true
	}
	if ix.bloom.MayContain(prefix) {
		return true
	}
	ix.bloomSkips.Add(1)
	return false
}

// keyFor builds the full entry key for a row at rid.
func (ix *Index) keyFor(row value.Row, rid heap.RID) []byte {
	return AppendRID(keyenc.EncodeRowPrefix(row, ix.Cols), rid)
}

// Insert adds the entry for row at rid.
func (ix *Index) Insert(row value.Row, rid heap.RID) error {
	prefix := keyenc.EncodeRowPrefix(row, ix.Cols)
	if err := ix.Tree.Insert(AppendRID(prefix, rid), nil); err != nil {
		return err
	}
	if ix.bloom != nil {
		// AppendRID may share prefix's backing array; re-slice the
		// attribute bytes for the bloom.
		ix.bloom.Add(prefix[:len(prefix):len(prefix)])
	}
	return nil
}

// Delete removes the entry for row at rid, reporting whether it existed.
func (ix *Index) Delete(row value.Row, rid heap.RID) (bool, error) {
	prefix := keyenc.EncodeRowPrefix(row, ix.Cols)
	existed, err := ix.Tree.Delete(AppendRID(prefix, rid))
	if err == nil && existed && ix.bloom != nil {
		ix.bloom.Remove(prefix[:len(prefix):len(prefix)])
	}
	return existed, err
}

// maxSuffix extends an encoded prefix so every entry sharing the prefix
// compares <= the result (RID suffix is 10 bytes; 11 x 0xFF dominates).
func maxSuffix(prefix []byte) []byte {
	out := make([]byte, 0, len(prefix)+ridKeyLen+1)
	out = append(out, prefix...)
	for i := 0; i <= ridKeyLen; i++ {
		out = append(out, 0xFF)
	}
	return out
}

// ScanPrefix visits the RIDs of every entry whose attribute key equals the
// encoded prefix (an equality lookup). Field encodings are prefix-free, so
// a bytes prefix match is an exact attribute match.
func (ix *Index) ScanPrefix(prefix []byte, fn func(rid heap.RID) bool) error {
	return ix.ScanRange(prefix, prefix, fn)
}

// ScanRange visits the RIDs of entries with attribute keys in [lo, hi]
// (both inclusive encoded prefixes; nil means open). Entries stream in
// key order.
func (ix *Index) ScanRange(lo, hi []byte, fn func(rid heap.RID) bool) error {
	var it *btree.Iterator
	var err error
	if lo == nil {
		it, err = ix.Tree.SeekFirst()
	} else {
		it, err = ix.Tree.SeekGE(lo)
	}
	if err != nil {
		return err
	}
	var hiMax []byte
	if hi != nil {
		hiMax = maxSuffix(hi)
	}
	for it.Valid() {
		k := it.Key()
		if hiMax != nil && bytes.Compare(k, hiMax) > 0 {
			return nil
		}
		rid, err := ridFromKey(k)
		if err != nil {
			return err
		}
		if !fn(rid) {
			return nil
		}
		if err := it.Next(); err != nil {
			return err
		}
	}
	return nil
}

// ScanKeyRange visits the RIDs of entries whose full key is >= lo and
// strictly below hiExcl in raw byte order (nil bounds are open). The CM
// executor uses this form for clustered-bucket runs, whose upper bound is
// the next bucket's lower bound. Column encodings of a fixed column count
// are prefix-free, so the raw comparison respects value order.
func (ix *Index) ScanKeyRange(lo, hiExcl []byte, fn func(rid heap.RID) bool) error {
	var it *btree.Iterator
	var err error
	if lo == nil {
		it, err = ix.Tree.SeekFirst()
	} else {
		it, err = ix.Tree.SeekGE(lo)
	}
	if err != nil {
		return err
	}
	for it.Valid() {
		k := it.Key()
		if hiExcl != nil && bytes.Compare(k, hiExcl) >= 0 {
			return nil
		}
		rid, err := ridFromKey(k)
		if err != nil {
			return err
		}
		if !fn(rid) {
			return nil
		}
		if err := it.Next(); err != nil {
			return err
		}
	}
	return nil
}

// SizeBytes returns the on-disk footprint of the index.
func (ix *Index) SizeBytes() int64 { return ix.Tree.SizeBytes() }

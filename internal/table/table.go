// Package table ties the storage substrates together: a slotted-page heap
// holding rows physically sorted by the clustered attribute, a dense
// clustered B+Tree index, optional secondary B+Tree indexes, and
// correlation maps maintained alongside them. It also collects the
// statistics the cost model and CM Advisor consume (Tables 1 and 2 of the
// paper).
package table

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/keyenc"
	"repro/internal/stats"
	"repro/internal/value"
	"repro/internal/wal"
)

// Config describes a table to create.
type Config struct {
	Name          string
	Schema        Schema
	ClusteredCols []int // columns of the clustering key, in order
	// BucketPages sets the clustered bucket directory granularity in
	// pages per bucket (Section 6.1.1). The paper finds ~10 pages per
	// bucket loses almost nothing (Table 3); 0 selects that default.
	BucketPages int
	// BucketTuples, when positive, sets the bucket target directly in
	// tuples per bucket, overriding BucketPages. A value of 1 gives every
	// distinct clustered value its own bucket (an unbucketed clustered
	// attribute, as in the paper's Figure 4 example).
	BucketTuples int
	// ProbeBlooms arms key bloom filters on every secondary index and CM
	// the table builds (and on CMs it recovers), so point probes for
	// absent keys answer negatively without touching a page.
	ProbeBlooms bool
}

// DefaultBucketPages is the clustered bucketing granularity used when the
// configuration does not specify one.
const DefaultBucketPages = 10

// Table is a clustered table with its access methods.
//
// Concurrency: the table carries a reader/writer latch but its methods do
// not take it themselves — callers bracket whole operations so a
// multi-step read (index probe, then heap sweep) observes one consistent
// state. Readers (Scan, FetchRow, index and CM probes) run concurrently
// under RLock; mutators (Load, Insert, Delete, Commit, CreateIndex,
// CreateCM, RecoverCM, CheckpointCM) require Lock. The repro facade
// acquires the latch automatically; code driving Table directly
// single-threaded (experiments, tests) may skip it entirely.
type Table struct {
	cfg  Config
	pool *buffer.Pool
	log  *wal.Log

	mu sync.RWMutex

	// wmu is the writer gate: it serializes writer statements (Insert,
	// Delete, Update, Load) and DDL against each other while leaving
	// readers on the mu side free. Lock ordering is always wmu before mu.
	wmu sync.Mutex

	// clock is the published commit timestamp. Readers snapshot it under
	// RLock; a writer statement stamps its versions with clock+1 and
	// publishes by storing that value after its last exclusive hold.
	clock atomic.Uint64

	// writerActive is true while a writer statement is between BeginWrite
	// and Publish/Abort. The optimizer consults it to skip cm-agg
	// lowering: mid-statement CM statistics include the writer's
	// additions but not its deferred retractions.
	writerActive atomic.Bool

	heapf     *heap.File
	clustered *Index
	cbuckets  *core.ClusteredBuckets

	secondary []*Index
	cms       []*core.CM

	// writeObs is the optional write-path metric set (see WriteObs),
	// installed by SetWriteObs and read atomically by writer statements.
	writeObs atomic.Pointer[WriteObs]

	loaded bool
}

// SetWriteObs installs (or, with nil, removes) the write-path metric
// set. Safe to call while writer statements run.
func (t *Table) SetWriteObs(o *WriteObs) { t.writeObs.Store(o) }

// New creates an empty table. Rows are added either with Load (bulk,
// clustered) or Insert (appended, as in the paper's update experiments).
func New(pool *buffer.Pool, log *wal.Log, cfg Config) (*Table, error) {
	if len(cfg.ClusteredCols) == 0 {
		return nil, fmt.Errorf("table %s: clustered columns required", cfg.Name)
	}
	for _, c := range cfg.ClusteredCols {
		if c < 0 || c >= len(cfg.Schema.Cols) {
			return nil, fmt.Errorf("table %s: clustered column %d out of range", cfg.Name, c)
		}
	}
	if cfg.BucketPages <= 0 {
		cfg.BucketPages = DefaultBucketPages
	}
	// Attach the shared schema layout (name map, field offsets) so every
	// Schema() copy handed to binders and executors has the fast paths.
	cfg.Schema = cfg.Schema.Normalized()
	t := &Table{cfg: cfg, pool: pool, log: log}
	t.heapf = heap.NewFile(pool)
	tree, err := newTree(pool)
	if err != nil {
		return nil, err
	}
	t.clustered = &Index{Name: cfg.Name + ".clustered", Cols: cfg.ClusteredCols, Tree: tree}
	t.cbuckets = core.NewClusteredBuckets(nil)
	// The clock starts published at 1 so snapshot 0 stays free as the
	// "latest" sentinel: every facade reader gets a real timestamp.
	t.clock.Store(1)
	return t, nil
}

// RLock takes the table latch in shared mode: any number of concurrent
// readers, no writers. Hold it for the full duration of a query so its
// index probes and heap sweeps see one consistent table state.
func (t *Table) RLock() { t.mu.RLock() }

// RUnlock releases a shared hold of the table latch.
func (t *Table) RUnlock() { t.mu.RUnlock() }

// Lock takes the table latch exclusively, for mutations.
func (t *Table) Lock() { t.mu.Lock() }

// Unlock releases an exclusive hold of the table latch.
func (t *Table) Unlock() { t.mu.Unlock() }

// LockWrite acquires the writer gate and then the table latch
// exclusively — the bracket for DDL (CreateIndex, CreateCM, RecoverCM,
// Commit, cache drops), which must not interleave with a writer
// statement's batched latch holds.
func (t *Table) LockWrite() { t.wmu.Lock(); t.mu.Lock() }

// UnlockWrite releases what LockWrite acquired.
func (t *Table) UnlockWrite() { t.mu.Unlock(); t.wmu.Unlock() }

// Snapshot returns the published commit timestamp. Capture it under a
// shared latch hold and pass it to the executor: the statement then sees
// exactly the versions published at that point, regardless of concurrent
// writer batches.
func (t *Table) Snapshot() uint64 { return t.clock.Load() }

// WriterActive reports whether a writer statement is currently in flight
// (begun, not yet published or aborted).
func (t *Table) WriterActive() bool { return t.writerActive.Load() }

// Name returns the table name.
func (t *Table) Name() string { return t.cfg.Name }

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.cfg.Schema }

// ClusteredCols returns the clustering key column positions.
func (t *Table) ClusteredCols() []int { return t.cfg.ClusteredCols }

// Heap returns the underlying heap file.
func (t *Table) Heap() *heap.File { return t.heapf }

// Clustered returns the clustered index.
func (t *Table) Clustered() *Index { return t.clustered }

// Buckets returns the clustered bucket directory.
func (t *Table) Buckets() *core.ClusteredBuckets { return t.cbuckets }

// Pool returns the buffer pool the table runs on.
func (t *Table) Pool() *buffer.Pool { return t.pool }

// clusteredKey encodes the row's clustering attribute.
func (t *Table) clusteredKey(row value.Row) []byte {
	return keyenc.EncodeRowPrefix(row, t.cfg.ClusteredCols)
}

// ClusterBucketFor returns the clustered bucket holding the row's
// clustering key.
func (t *Table) ClusterBucketFor(row value.Row) int32 {
	return t.cbuckets.Locate(t.clusteredKey(row))
}

// Load bulk-loads rows in clustered order: rows are sorted by the
// clustering key, appended to the heap, indexed, and assigned to
// clustered buckets with the Section 6.1.1 boundary rule. Load must run
// before any secondary index or CM is created and only on an empty table.
//
// Load is itself an MVCC writer statement: it takes the writer gate (not
// the table latch) and appends in short batched exclusive holds, so
// concurrent readers keep running — they see an empty table until the
// load publishes, then all of it.
func (t *Table) Load(rows []value.Row) error {
	tx := t.BeginWrite()
	tx.logged = false // bulk loads predate every CM; replay starts after them
	if t.loaded || t.heapf.TupleCount() > 0 {
		tx.Abort()
		return fmt.Errorf("table %s: already loaded", t.cfg.Name)
	}
	abort := func(err error) error {
		tx.Abort()
		return err
	}
	for _, r := range rows {
		if err := t.cfg.Schema.Validate(r); err != nil {
			return abort(err)
		}
	}
	type keyed struct {
		key []byte
		row value.Row
	}
	ks := make([]keyed, len(rows))
	var rowBytes int64
	for i, r := range rows {
		ks[i] = keyed{key: t.clusteredKey(r), row: r}
	}
	sort.SliceStable(ks, func(i, j int) bool { return bytes.Compare(ks[i].key, ks[j].key) < 0 })

	// Estimate tuples per page to convert the pages-per-bucket setting
	// into the bucket builder's tuples-per-bucket target.
	for i := 0; i < len(ks) && i < 100; i++ {
		enc, err := t.cfg.Schema.EncodeRow(ks[i].row)
		if err != nil {
			return abort(err)
		}
		rowBytes += int64(len(enc) + 4)
	}
	target := 1
	switch {
	case t.cfg.BucketTuples > 0:
		target = t.cfg.BucketTuples
	case len(ks) > 0 && rowBytes > 0:
		sampled := int64(len(ks))
		if sampled > 100 {
			sampled = 100
		}
		perRow := rowBytes / sampled
		if perRow < 1 {
			perRow = 1
		}
		tpp := int64(t.pool.Disk().PageSize()) / perRow
		if tpp < 1 {
			tpp = 1
		}
		target = int(tpp) * t.cfg.BucketPages
	}
	builder := core.NewBuilder(target)
	batch := make([]value.Row, 0, writeBatchRows)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := tx.InsertBatch(batch); err != nil {
			return err
		}
		batch = batch[:0]
		return nil
	}
	for _, k := range ks {
		builder.Add(k.key)
		batch = append(batch, k.row)
		if len(batch) >= writeBatchRows {
			if err := flush(); err != nil {
				return abort(err)
			}
		}
	}
	if err := flush(); err != nil {
		return abort(err)
	}
	t.mu.Lock()
	t.cbuckets = builder.Finish()
	t.loaded = true
	t.mu.Unlock()
	return tx.Publish()
}

// CreateIndex builds a dense secondary B+Tree index over cols by scanning
// the heap.
func (t *Table) CreateIndex(name string, cols []int) (*Index, error) {
	for _, c := range cols {
		if c < 0 || c >= len(t.cfg.Schema.Cols) {
			return nil, fmt.Errorf("table %s: index column %d out of range", t.cfg.Name, c)
		}
	}
	tree, err := newTree(t.pool)
	if err != nil {
		return nil, err
	}
	ix := &Index{Name: name, Cols: cols, Tree: tree}
	var n int64
	err = t.Scan(func(rid heap.RID, row value.Row) bool {
		if e := ix.Insert(row, rid); e != nil {
			err = e
			return false
		}
		n++
		return true
	})
	if err != nil {
		return nil, err
	}
	if t.cfg.ProbeBlooms {
		// The build scan left the tree's pages hot, so folding the
		// entries into the bloom re-reads them from cache.
		if err := ix.EnableBloom(n); err != nil {
			return nil, err
		}
	}
	t.secondary = append(t.secondary, ix)
	return ix, nil
}

// CreateCM builds a correlation map per Algorithm 1: one scan recording
// the co-occurrence of each (bucketed) CM key with its clustered bucket.
// When the spec does not name stat columns, every table column's
// per-entry aggregate statistics are maintained, so covered aggregates
// can later answer index-only (the cm-agg path).
func (t *Table) CreateCM(spec core.Spec) (*core.CM, error) {
	for _, c := range spec.UCols {
		if c < 0 || c >= len(t.cfg.Schema.Cols) {
			return nil, fmt.Errorf("table %s: CM column %d out of range", t.cfg.Name, c)
		}
	}
	if spec.StatCols == nil {
		spec.StatCols = t.allCols()
	}
	cm := core.New(spec)
	var err error
	scanErr := t.Scan(func(rid heap.RID, row value.Row) bool {
		cm.AddRow(row, t.ClusterBucketFor(row))
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	if err != nil {
		return nil, err
	}
	if t.cfg.ProbeBlooms {
		cm.EnableBloom(int64(cm.Keys()))
	}
	t.cms = append(t.cms, cm)
	return cm, nil
}

// allCols lists every column position, the default stat-column set for
// CMs created through the engine.
func (t *Table) allCols() []int {
	out := make([]int, len(t.cfg.Schema.Cols))
	for i := range out {
		out[i] = i
	}
	return out
}

// Indexes returns the secondary indexes.
func (t *Table) Indexes() []*Index { return t.secondary }

// CMs returns the table's correlation maps.
func (t *Table) CMs() []*core.CM { return t.cms }

// IndexOn returns the first secondary index whose key starts with cols,
// or nil.
func (t *Table) IndexOn(cols ...int) *Index {
	for _, ix := range t.secondary {
		if len(ix.Cols) < len(cols) {
			continue
		}
		match := true
		for i, c := range cols {
			if ix.Cols[i] != c {
				match = false
				break
			}
		}
		if match {
			return ix
		}
	}
	return nil
}

// CMOn returns the first CM whose attribute columns are exactly cols, or
// nil.
func (t *Table) CMOn(cols ...int) *core.CM {
	for _, cm := range t.cms {
		sc := cm.Spec().UCols
		if len(sc) != len(cols) {
			continue
		}
		match := true
		for i, c := range cols {
			if sc[i] != c {
				match = false
				break
			}
		}
		if match {
			return cm
		}
	}
	return nil
}

// Insert appends a row: heap, clustered index, secondary indexes and CMs
// are all maintained, and the operation is WAL-logged. The row's bucket
// comes from the directory built at load time, so CM lookups keep finding
// tuples inserted after the load.
func (t *Table) Insert(row value.Row) (heap.RID, error) {
	enc, err := t.cfg.Schema.EncodeRow(row)
	if err != nil {
		return heap.RID{}, err
	}
	rid, err := t.heapf.Append(enc)
	if err != nil {
		return heap.RID{}, err
	}
	if err := t.clustered.Insert(row, rid); err != nil {
		return heap.RID{}, err
	}
	for _, ix := range t.secondary {
		if err := ix.Insert(row, rid); err != nil {
			return heap.RID{}, err
		}
	}
	cb := t.ClusterBucketFor(row)
	for _, cm := range t.cms {
		cm.AddRow(row, cb)
	}
	if t.log != nil {
		if err := t.log.Append(wal.Record{Type: wal.RecInsert, Target: t.cfg.Name, Payload: enc}); err != nil {
			return heap.RID{}, err
		}
	}
	return rid, nil
}

// Delete removes the row at rid from the heap and all access methods.
func (t *Table) Delete(rid heap.RID) error {
	row, err := t.FetchRow(rid)
	if err != nil {
		return err
	}
	if row == nil {
		return fmt.Errorf("table %s: delete of missing row %v", t.cfg.Name, rid)
	}
	if err := t.heapf.Delete(rid); err != nil {
		return err
	}
	if _, err := t.clustered.Delete(row, rid); err != nil {
		return err
	}
	for _, ix := range t.secondary {
		if _, err := ix.Delete(row, rid); err != nil {
			return err
		}
	}
	cb := t.ClusterBucketFor(row)
	for _, cm := range t.cms {
		if err := cm.RemoveRow(row, cb); err != nil {
			return err
		}
	}
	if t.log != nil {
		enc, err := t.cfg.Schema.EncodeRow(row)
		if err != nil {
			return err
		}
		if err := t.log.Append(wal.Record{Type: wal.RecDelete, Target: t.cfg.Name, Payload: enc}); err != nil {
			return err
		}
	}
	return nil
}

// Commit makes pending logged work durable with the prototype's 2PC
// discipline: PREPARE flush then COMMIT PREPARED flush (Section 7.1).
func (t *Table) Commit() error {
	if t.log == nil {
		return nil
	}
	if err := t.log.Append(wal.Record{Type: wal.RecCommit, Target: t.cfg.Name}); err != nil {
		return err
	}
	if err := t.log.Flush(); err != nil { // PREPARE COMMIT
		return err
	}
	if err := t.log.Flush(); err != nil { // COMMIT PREPARED
		return err
	}
	return nil
}

// RecoverCM reconstructs a correlation map after a crash, as the
// prototype does (Section 7.1): start from an optional checkpoint
// (written earlier with CheckpointCM) and replay the table's logged
// inserts and deletes through the CM's maintenance operations. Replay
// reads the log from disk, charging recovery I/O. The recovered CM is
// registered with the table.
func (t *Table) RecoverCM(spec core.Spec, checkpoint io.Reader, fromLSN int64) (*core.CM, error) {
	if t.log == nil {
		return nil, fmt.Errorf("table %s: no WAL to recover from", t.cfg.Name)
	}
	if spec.StatCols == nil {
		spec.StatCols = t.allCols()
	}
	cm := core.New(spec)
	if t.cfg.ProbeBlooms {
		// Enabled before the checkpoint loads so Deserialize adopts a
		// serialized bloom (or rebuilds one from the loaded keys) and
		// log replay maintains it through AddRow/RemoveRow.
		cm.EnableBloom(1)
	}
	if checkpoint != nil {
		if err := cm.Deserialize(checkpoint); err != nil {
			return nil, err
		}
	}
	var replayErr error
	err := t.log.ReplayFrom(fromLSN, func(rec wal.Record) bool {
		if rec.Target != t.cfg.Name {
			return true
		}
		switch rec.Type {
		case wal.RecInsert, wal.RecDelete:
			row, err := t.cfg.Schema.DecodeRow(rec.Payload)
			if err != nil {
				replayErr = err
				return false
			}
			cb := t.ClusterBucketFor(row)
			if rec.Type == wal.RecInsert {
				cm.AddRow(row, cb)
			} else if err := cm.RemoveRow(row, cb); err != nil {
				replayErr = err
				return false
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if replayErr != nil {
		return nil, replayErr
	}
	// A legacy (stats-less) checkpoint leaves the per-entry statistics
	// invalid, which would silently disable index-only aggregation on the
	// recovered CM. Rebuild them from one heap scan before registering:
	// recovery is already an offline, exclusive operation, so the extra
	// scan rides on the same bracket.
	if !cm.StatsValid() {
		if err := t.rebuildCMStats(cm); err != nil {
			return nil, err
		}
	}
	t.cms = append(t.cms, cm)
	return cm, nil
}

// rebuildCMStats reconstructs a CM — pair counts and per-entry aggregate
// statistics — from one scan of the live heap, restoring cm-agg pushdown
// for CMs recovered from statistics-less checkpoints.
func (t *Table) rebuildCMStats(cm *core.CM) error {
	cm.Reset()
	return t.Scan(func(rid heap.RID, row value.Row) bool {
		cm.AddRow(row, t.ClusterBucketFor(row))
		return true
	})
}

// CheckpointCM serializes a CM to the writer, appends a checkpoint
// record to the WAL (the prototype's "occasionally flushes to disk"
// policy) and returns the LSN recovery should replay from.
func (t *Table) CheckpointCM(cm *core.CM, w io.Writer) (lsn int64, err error) {
	if err := cm.Serialize(w); err != nil {
		return 0, err
	}
	if t.log != nil {
		if err := t.log.Append(wal.Record{Type: wal.RecCheckpoint, Target: t.cfg.Name}); err != nil {
			return 0, err
		}
		if err := t.log.Flush(); err != nil {
			return 0, err
		}
		return t.log.Len(), nil
	}
	return 0, nil
}

// FetchRow reads and decodes the row at rid; nil for deleted rows.
func (t *Table) FetchRow(rid heap.RID) (value.Row, error) {
	data, err := t.heapf.Get(rid)
	if err != nil {
		return nil, err
	}
	if data == nil {
		return nil, nil
	}
	return t.cfg.Schema.DecodeRow(data)
}

// Scan visits every live row in physical order.
func (t *Table) Scan(fn func(rid heap.RID, row value.Row) bool) error {
	var decodeErr error
	err := t.heapf.Scan(func(rid heap.RID, tuple []byte) bool {
		row, err := t.cfg.Schema.DecodeRow(tuple)
		if err != nil {
			decodeErr = err
			return false
		}
		return fn(rid, row)
	})
	if decodeErr != nil {
		return decodeErr
	}
	return err
}

// Stats are the per-table quantities of the paper's Table 1.
type Stats struct {
	Pages       int64
	TotalTups   int64
	TupsPerPage float64
	BTreeHeight int // clustered index height
}

// Stats computes the current table statistics.
func (t *Table) Stats() Stats {
	pages := t.heapf.NumPages()
	tups := t.heapf.TupleCount()
	tpp := 0.0
	if pages > 0 {
		tpp = float64(tups) / float64(pages)
	}
	return Stats{
		Pages:       pages,
		TotalTups:   tups,
		TupsPerPage: tpp,
		BTreeHeight: t.clustered.Tree.Height(),
	}
}

// PairStats scans the table once and computes the exact Table 2
// correlation statistics between the given attribute(s) and the
// clustering attribute: u_tups, c_tups and c_per_u.
func (t *Table) PairStats(uCols []int) (*stats.PairCounter, error) {
	pc := stats.NewPairCounter()
	err := t.Scan(func(rid heap.RID, row value.Row) bool {
		pc.Add(keyenc.EncodeRowPrefix(row, uCols), t.clusteredKey(row))
		return true
	})
	if err != nil {
		return nil, err
	}
	return pc, nil
}

// BucketPairStats computes correlation statistics at bucket granularity
// for a CM design: the average number of clustered *buckets* per bucketed
// CM key and the average pages spanned by one clustered bucket. These
// feed the cost model's CM prediction.
type BucketPairStats struct {
	CPerU           float64 // clustered buckets per CM key
	PagesPerCBucket float64
	Keys            int
}

// BucketPairStatsFor derives bucket-level statistics from an existing CM.
func (t *Table) BucketPairStatsFor(cm *core.CM) BucketPairStats {
	st := t.Stats()
	nb := t.cbuckets.NumBuckets()
	ppb := 0.0
	if nb > 0 {
		ppb = float64(st.Pages) / float64(nb)
	}
	return BucketPairStats{
		CPerU:           cm.CPerU(),
		PagesPerCBucket: ppb,
		Keys:            cm.Keys(),
	}
}

package table

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/value"
)

// Column describes one attribute.
type Column struct {
	Name string
	Kind value.Kind
}

// Schema is an ordered list of columns.
//
// Schemas built with NewSchema (and every schema owned by a Table) carry
// a shared, lazily built layout: a name→index map for ColIndex and a
// per-column byte-offset table that lets the executor address fields of
// an encoded tuple without materializing the row. Copies of such a
// schema share one layout. A zero-literal Schema{Cols: ...} still works
// everywhere, but ColIndex degrades to a linear scan and the tuple
// accessors (CheckTuple, Field, DecodeCols) rebuild the layout on every
// call — call Normalized once (hot-path entry points like
// exec.CompileFilter do) before per-tuple use.
type Schema struct {
	Cols []Column
	lay  *layout
}

// layout caches what the heap encoding implies about a schema: ints and
// floats occupy 8 bytes, so every column up to and including the first
// string column sits at a constant byte offset; columns past it need a
// cheap length-prefix walk.
type layout struct {
	once     sync.Once
	byName   map[string]int
	off      []int // constant byte offset of column i, or -1
	firstVar int   // index of the first string column; len(cols) if none
	minSize  int   // minimum encoded tuple size (strings counted empty)
}

func (l *layout) build(cols []Column) {
	l.byName = make(map[string]int, len(cols))
	l.off = make([]int, len(cols))
	l.firstVar = len(cols)
	off := 0
	for i, c := range cols {
		if _, dup := l.byName[c.Name]; !dup {
			l.byName[c.Name] = i
		}
		// Offsets are constant up to and including the first string
		// column (firstVar still holds len(cols) until that column is
		// seen, so the comparison admits it); everything past it needs
		// a length-prefix walk.
		if i <= l.firstVar {
			l.off[i] = off
		} else {
			l.off[i] = -1
		}
		if c.Kind == value.String {
			if l.firstVar == len(cols) {
				l.firstVar = i
			}
			l.minSize += 2
		} else {
			l.minSize += 8
			off += 8
		}
	}
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) Schema { return Schema{Cols: cols, lay: &layout{}} }

// layout returns the built layout, creating a throwaway one for schemas
// that bypassed NewSchema (correct but rebuilt per call — see the
// Schema doc and Normalized).
func (s Schema) layout() *layout {
	l := s.lay
	if l == nil {
		l = &layout{}
	}
	l.once.Do(func() { l.build(s.Cols) })
	return l
}

// Normalized returns s with a shareable layout attached: copies of the
// result share one lazily built layout, giving ColIndex and the tuple
// accessors their O(1) paths. table.New normalizes every table-owned
// schema; per-tuple machinery compiled against a caller-supplied schema
// (exec.CompileFilter) normalizes its own copy.
func (s Schema) Normalized() Schema {
	if s.lay == nil {
		s.lay = &layout{}
	}
	return s
}

// ColIndex returns the position of the named column, or -1. On schemas
// built with NewSchema this is a map lookup; binders and predicate
// construction call it per column reference, so it must not scan.
func (s Schema) ColIndex(name string) int {
	if s.lay != nil {
		if i, ok := s.layout().byName[name]; ok {
			return i
		}
		return -1
	}
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustCol returns the position of the named column, panicking when absent;
// used by experiment code where schemas are static.
func (s Schema) MustCol(name string) int {
	i := s.ColIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("table: no column %q", name))
	}
	return i
}

// FixedOffset returns col's constant byte offset within every encoded
// tuple, ok=false when the offset depends on preceding string columns.
func (s Schema) FixedOffset(col int) (int, bool) {
	o := s.layout().off[col]
	return o, o >= 0
}

// Validate checks a row against the schema.
func (s Schema) Validate(row value.Row) error {
	if len(row) != len(s.Cols) {
		return fmt.Errorf("table: row has %d values, schema has %d columns", len(row), len(s.Cols))
	}
	for i, v := range row {
		if v.K != s.Cols[i].Kind {
			return fmt.Errorf("table: column %s expects %v, got %v", s.Cols[i].Name, s.Cols[i].Kind, v.K)
		}
	}
	return nil
}

// EncodeRow serializes a row for heap storage: ints and floats as 8
// little-endian bytes, strings as a 2-byte length prefix plus bytes.
func (s Schema) EncodeRow(row value.Row) ([]byte, error) {
	if err := s.Validate(row); err != nil {
		return nil, err
	}
	size := 0
	for i, c := range s.Cols {
		if c.Kind == value.String {
			size += 2 + len(row[i].S)
		} else {
			size += 8
		}
	}
	out := make([]byte, 0, size)
	for i, c := range s.Cols {
		switch c.Kind {
		case value.Int:
			out = binary.LittleEndian.AppendUint64(out, uint64(row[i].I))
		case value.Float:
			out = binary.LittleEndian.AppendUint64(out, floatBits(row[i].F))
		default:
			if len(row[i].S) > 0xFFFF {
				return nil, fmt.Errorf("table: string too long in column %s", c.Name)
			}
			out = binary.LittleEndian.AppendUint16(out, uint16(len(row[i].S)))
			out = append(out, row[i].S...)
		}
	}
	return out, nil
}

func truncatedErr(c Column) error {
	switch c.Kind {
	case value.Int:
		return fmt.Errorf("table: truncated int column %s", c.Name)
	case value.Float:
		return fmt.Errorf("table: truncated float column %s", c.Name)
	default:
		return fmt.Errorf("table: truncated string column %s", c.Name)
	}
}

// CheckTuple validates an encoded tuple's structure without
// materializing any value: it returns exactly the error DecodeRow would
// return on the same bytes, or nil when DecodeRow would succeed. The
// compiled tuple filter runs it once per tuple before addressing fields,
// so rejected tuples never allocate.
func (s Schema) CheckTuple(data []byte) error {
	l := s.layout()
	if l.firstVar == len(s.Cols) {
		// All fixed-width: the tuple is valid iff it is exactly minSize.
		if len(data) == l.minSize {
			return nil
		}
		if len(data) > l.minSize {
			return fmt.Errorf("table: %d trailing bytes after row", len(data)-l.minSize)
		}
		return truncatedErr(s.Cols[len(data)/8])
	}
	off := 0
	for _, c := range s.Cols {
		if c.Kind != value.String {
			if off+8 > len(data) {
				return truncatedErr(c)
			}
			off += 8
			continue
		}
		if off+2 > len(data) {
			return truncatedErr(c)
		}
		n := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if off+n > len(data) {
			return truncatedErr(c)
		}
		off += n
	}
	if off != len(data) {
		return fmt.Errorf("table: %d trailing bytes after row", len(data)-off)
	}
	return nil
}

// fieldStart returns the byte offset of col's encoding within tuple,
// walking length prefixes only for columns past the first string column.
func (s Schema) fieldStart(tuple []byte, col int) (int, error) {
	l := s.layout()
	if o := l.off[col]; o >= 0 {
		return o, nil
	}
	off := l.off[l.firstVar] // constant by construction
	for i := l.firstVar; i < col; i++ {
		if s.Cols[i].Kind != value.String {
			off += 8
			continue
		}
		if off+2 > len(tuple) {
			return 0, truncatedErr(s.Cols[i])
		}
		off += 2 + int(binary.LittleEndian.Uint16(tuple[off:]))
	}
	return off, nil
}

// Field returns the encoded payload of col within tuple: the 8
// little-endian bytes of an int or float, or a string's bytes without
// the length prefix. The returned slice aliases tuple and is only valid
// while tuple is.
func (s Schema) Field(tuple []byte, col int) ([]byte, error) {
	start, err := s.fieldStart(tuple, col)
	if err != nil {
		return nil, err
	}
	c := s.Cols[col]
	if c.Kind != value.String {
		if start+8 > len(tuple) {
			return nil, truncatedErr(c)
		}
		return tuple[start : start+8], nil
	}
	if start+2 > len(tuple) {
		return nil, truncatedErr(c)
	}
	n := int(binary.LittleEndian.Uint16(tuple[start:]))
	start += 2
	if start+n > len(tuple) {
		return nil, truncatedErr(c)
	}
	return tuple[start : start+n], nil
}

// decodeField materializes one field payload (as returned by Field).
func decodeField(c Column, b []byte) value.Value {
	switch c.Kind {
	case value.Int:
		return value.NewInt(int64(binary.LittleEndian.Uint64(b)))
	case value.Float:
		return value.NewFloat(floatFromBits(binary.LittleEndian.Uint64(b)))
	default:
		return value.NewString(string(b))
	}
}

// DecodeCols decodes only the listed columns of an encoded tuple into
// dst, which must have len(s.Cols) entries; other entries are left
// untouched. With cols sorted ascending (as Query.MaterializeCols
// produces) the tuple is walked once; unsorted lists fall back to
// per-column addressing. It is the executor's lazy-materialization
// primitive: survivors of the compiled filter decode just the referenced
// and projected columns into a reusable scratch row.
func (s Schema) DecodeCols(dst value.Row, tuple []byte, cols []int) error {
	if len(dst) != len(s.Cols) {
		return fmt.Errorf("table: scratch row has %d values, schema has %d columns", len(dst), len(s.Cols))
	}
	if len(cols) == 0 {
		return nil
	}
	sorted := true
	for i := 1; i < len(cols); i++ {
		if cols[i] <= cols[i-1] {
			sorted = false
			break
		}
	}
	if !sorted {
		for _, col := range cols {
			b, err := s.Field(tuple, col)
			if err != nil {
				return err
			}
			dst[col] = decodeField(s.Cols[col], b)
		}
		return nil
	}
	start, err := s.fieldStart(tuple, cols[0])
	if err != nil {
		return err
	}
	ci := 0
	off := start
	for i := cols[0]; i < len(s.Cols) && ci < len(cols); i++ {
		c := s.Cols[i]
		want := cols[ci] == i
		if c.Kind != value.String {
			if off+8 > len(tuple) {
				return truncatedErr(c)
			}
			if want {
				dst[i] = decodeField(c, tuple[off:off+8])
				ci++
			}
			off += 8
			continue
		}
		if off+2 > len(tuple) {
			return truncatedErr(c)
		}
		n := int(binary.LittleEndian.Uint16(tuple[off:]))
		off += 2
		if off+n > len(tuple) {
			return truncatedErr(c)
		}
		if want {
			dst[i] = decodeField(c, tuple[off:off+n])
			ci++
		}
		off += n
	}
	return nil
}

// DecodeRow deserializes a heap tuple.
func (s Schema) DecodeRow(data []byte) (value.Row, error) {
	row := make(value.Row, len(s.Cols))
	off := 0
	for i, c := range s.Cols {
		switch c.Kind {
		case value.Int:
			if off+8 > len(data) {
				return nil, fmt.Errorf("table: truncated int column %s", c.Name)
			}
			row[i] = value.NewInt(int64(binary.LittleEndian.Uint64(data[off:])))
			off += 8
		case value.Float:
			if off+8 > len(data) {
				return nil, fmt.Errorf("table: truncated float column %s", c.Name)
			}
			row[i] = value.NewFloat(floatFromBits(binary.LittleEndian.Uint64(data[off:])))
			off += 8
		default:
			if off+2 > len(data) {
				return nil, fmt.Errorf("table: truncated string column %s", c.Name)
			}
			n := int(binary.LittleEndian.Uint16(data[off:]))
			off += 2
			if off+n > len(data) {
				return nil, fmt.Errorf("table: truncated string column %s", c.Name)
			}
			row[i] = value.NewString(string(data[off : off+n]))
			off += n
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("table: %d trailing bytes after row", len(data)-off)
	}
	return row, nil
}

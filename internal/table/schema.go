package table

import (
	"encoding/binary"
	"fmt"

	"repro/internal/value"
)

// Column describes one attribute.
type Column struct {
	Name string
	Kind value.Kind
}

// Schema is an ordered list of columns.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) Schema { return Schema{Cols: cols} }

// ColIndex returns the position of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustCol returns the position of the named column, panicking when absent;
// used by experiment code where schemas are static.
func (s Schema) MustCol(name string) int {
	i := s.ColIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("table: no column %q", name))
	}
	return i
}

// Validate checks a row against the schema.
func (s Schema) Validate(row value.Row) error {
	if len(row) != len(s.Cols) {
		return fmt.Errorf("table: row has %d values, schema has %d columns", len(row), len(s.Cols))
	}
	for i, v := range row {
		if v.K != s.Cols[i].Kind {
			return fmt.Errorf("table: column %s expects %v, got %v", s.Cols[i].Name, s.Cols[i].Kind, v.K)
		}
	}
	return nil
}

// EncodeRow serializes a row for heap storage: ints and floats as 8
// little-endian bytes, strings as a 2-byte length prefix plus bytes.
func (s Schema) EncodeRow(row value.Row) ([]byte, error) {
	if err := s.Validate(row); err != nil {
		return nil, err
	}
	size := 0
	for i, c := range s.Cols {
		if c.Kind == value.String {
			size += 2 + len(row[i].S)
		} else {
			size += 8
		}
	}
	out := make([]byte, 0, size)
	for i, c := range s.Cols {
		switch c.Kind {
		case value.Int:
			out = binary.LittleEndian.AppendUint64(out, uint64(row[i].I))
		case value.Float:
			out = binary.LittleEndian.AppendUint64(out, floatBits(row[i].F))
		default:
			if len(row[i].S) > 0xFFFF {
				return nil, fmt.Errorf("table: string too long in column %s", c.Name)
			}
			out = binary.LittleEndian.AppendUint16(out, uint16(len(row[i].S)))
			out = append(out, row[i].S...)
		}
	}
	return out, nil
}

// DecodeRow deserializes a heap tuple.
func (s Schema) DecodeRow(data []byte) (value.Row, error) {
	row := make(value.Row, len(s.Cols))
	off := 0
	for i, c := range s.Cols {
		switch c.Kind {
		case value.Int:
			if off+8 > len(data) {
				return nil, fmt.Errorf("table: truncated int column %s", c.Name)
			}
			row[i] = value.NewInt(int64(binary.LittleEndian.Uint64(data[off:])))
			off += 8
		case value.Float:
			if off+8 > len(data) {
				return nil, fmt.Errorf("table: truncated float column %s", c.Name)
			}
			row[i] = value.NewFloat(floatFromBits(binary.LittleEndian.Uint64(data[off:])))
			off += 8
		default:
			if off+2 > len(data) {
				return nil, fmt.Errorf("table: truncated string column %s", c.Name)
			}
			n := int(binary.LittleEndian.Uint16(data[off:]))
			off += 2
			if off+n > len(data) {
				return nil, fmt.Errorf("table: truncated string column %s", c.Name)
			}
			row[i] = value.NewString(string(data[off : off+n]))
			off += n
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("table: %d trailing bytes after row", len(data)-off)
	}
	return row, nil
}

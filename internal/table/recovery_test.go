package table

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/value"
)

// TestRecoverCMFromCheckpointAndLog reproduces the prototype's recovery
// story (Section 7.1): a CM is checkpointed, more logged changes arrive,
// the in-memory CM is "lost", and recovery reconstructs it from the
// checkpoint plus the WAL suffix.
func TestRecoverCMFromCheckpointAndLog(t *testing.T) {
	tbl, _ := newPeople(t)
	cm, err := tbl.CreateCM(core.Spec{Name: "city", UCols: []int{1}})
	if err != nil {
		t.Fatal(err)
	}

	// Some maintenance before the checkpoint.
	if _, err := tbl.Insert(value.Row{
		value.NewString("OH"), value.NewString("boston"), value.NewInt(1),
	}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Commit(); err != nil {
		t.Fatal(err)
	}

	var checkpoint bytes.Buffer
	lsn, err := tbl.CheckpointCM(cm, &checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	if lsn <= 0 {
		t.Fatal("checkpoint LSN not positive")
	}

	// Post-checkpoint maintenance: an insert and a delete.
	if _, err := tbl.Insert(value.Row{
		value.NewString("MN"), value.NewString("boston"), value.NewInt(2),
	}); err != nil {
		t.Fatal(err)
	}
	var target heap.RID
	if err := tbl.Scan(func(rid heap.RID, row value.Row) bool {
		if row[0].S == "NH" && row[1].S == "boston" {
			target = rid
			return false
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete(target); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Commit(); err != nil {
		t.Fatal(err)
	}

	// "Crash": recover a fresh CM from checkpoint + log suffix.
	recovered, err := tbl.RecoverCM(cm.Spec(), &checkpoint, lsn)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Keys() != cm.Keys() || recovered.Pairs() != cm.Pairs() ||
		recovered.SizeBytes() != cm.SizeBytes() {
		t.Fatalf("recovered CM differs: keys %d/%d pairs %d/%d size %d/%d",
			recovered.Keys(), cm.Keys(), recovered.Pairs(), cm.Pairs(),
			recovered.SizeBytes(), cm.SizeBytes())
	}
	// Identical lookup results, including the post-checkpoint changes:
	// boston gained MN and OH, lost NH.
	want := cm.Lookup(value.NewString("boston"))
	got := recovered.Lookup(value.NewString("boston"))
	if len(want) != len(got) {
		t.Fatalf("lookup %v vs %v", got, want)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("lookup %v vs %v", got, want)
		}
	}
}

// TestRecoverCMFullLogWithoutCheckpoint replays from LSN 0 into an empty
// CM: only the logged (post-load) changes are reconstructed.
func TestRecoverCMFullLogWithoutCheckpoint(t *testing.T) {
	tbl, _ := newPeople(t)
	for i := 0; i < 5; i++ {
		if _, err := tbl.Insert(value.Row{
			value.NewString("WY"), value.NewString("newtown"), value.NewInt(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Commit(); err != nil {
		t.Fatal(err)
	}
	cm, err := tbl.RecoverCM(core.Spec{Name: "city", UCols: []int{1}}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Only the five logged inserts exist in the recovered CM.
	if cm.Keys() != 1 {
		t.Errorf("recovered keys = %d, want 1 (newtown)", cm.Keys())
	}
	got := cm.Lookup(value.NewString("newtown"))
	if len(got) != 1 {
		t.Errorf("newtown buckets = %v", got)
	}
	// Count survives: five removals empty the CM.
	for i := 0; i < 5; i++ {
		if err := cm.RemoveRow(value.Row{
			value.NewString("WY"), value.NewString("newtown"), value.NewInt(int64(i)),
		}, got[0]); err != nil {
			t.Fatal(err)
		}
	}
	if cm.Keys() != 0 {
		t.Error("co-occurrence counts not recovered correctly")
	}
}

func TestRecoverCMWithoutWALFails(t *testing.T) {
	d := simDiskForTest()
	tbl, err := New(poolForTest(d, 64), nil, Config{
		Name:          "t",
		Schema:        peopleSchema(),
		ClusteredCols: []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.RecoverCM(core.Spec{Name: "c", UCols: []int{1}}, nil, 0); err == nil {
		t.Error("recovery without WAL should fail")
	}
}

package table

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/keyenc"
	"repro/internal/sim"
	"repro/internal/value"
	"repro/internal/wal"
)

// peopleSchema is the Figure 4 example: (state, city, salary).
func peopleSchema() Schema {
	return NewSchema(
		Column{Name: "state", Kind: value.String},
		Column{Name: "city", Kind: value.String},
		Column{Name: "salary", Kind: value.Int},
	)
}

func peopleRows() []value.Row {
	data := []struct {
		state, city string
		salary      int64
	}{
		{"MA", "boston", 25000},
		{"NH", "boston", 45000},
		{"MA", "boston", 50000},
		{"MN", "manchester", 40000},
		{"MA", "cambridge", 110000},
		{"MS", "jackson", 80000},
		{"MA", "springfield", 90000},
		{"NH", "manchester", 60000},
		{"OH", "springfield", 95000},
		{"OH", "toledo", 70000},
	}
	rows := make([]value.Row, len(data))
	for i, d := range data {
		rows[i] = value.Row{value.NewString(d.state), value.NewString(d.city), value.NewInt(d.salary)}
	}
	return rows
}

func newPeople(t *testing.T) (*Table, *sim.Disk) {
	t.Helper()
	d := sim.NewDisk(sim.Config{PageSize: 512})
	pool := buffer.NewPool(d, 64)
	log := wal.NewLog(d)
	tbl, err := New(pool, log, Config{
		Name:          "people",
		Schema:        peopleSchema(),
		ClusteredCols: []int{0}, // clustered on state
		BucketTuples:  1,        // one bucket per distinct state
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Load(peopleRows()); err != nil {
		t.Fatal(err)
	}
	return tbl, d
}

func TestLoadSortsByClusteredKey(t *testing.T) {
	tbl, _ := newPeople(t)
	var states []string
	if err := tbl.Scan(func(rid heap.RID, row value.Row) bool {
		states = append(states, row[0].S)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(states) != 10 {
		t.Fatalf("scanned %d rows", len(states))
	}
	for i := 1; i < len(states); i++ {
		if states[i-1] > states[i] {
			t.Fatalf("heap not clustered: %v", states)
		}
	}
}

func TestLoadTwiceFails(t *testing.T) {
	tbl, _ := newPeople(t)
	if err := tbl.Load(peopleRows()); err == nil {
		t.Error("second Load should fail")
	}
}

func TestClusteredIndexFindsRows(t *testing.T) {
	tbl, _ := newPeople(t)
	prefix := keyenc.EncodeValue(value.NewString("MA"))
	var rids []heap.RID
	if err := tbl.Clustered().ScanPrefix(prefix, func(rid heap.RID) bool {
		rids = append(rids, rid)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(rids) != 4 {
		t.Fatalf("MA rows = %d, want 4", len(rids))
	}
	for _, rid := range rids {
		row, err := tbl.FetchRow(rid)
		if err != nil {
			t.Fatal(err)
		}
		if row[0].S != "MA" {
			t.Errorf("clustered index returned %v", row)
		}
	}
}

func TestCreateIndexAndScanRange(t *testing.T) {
	tbl, _ := newPeople(t)
	ix, err := tbl.CreateIndex("salary", []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Tree.Len() != 10 {
		t.Fatalf("index entries = %d", ix.Tree.Len())
	}
	lo := keyenc.EncodeValue(value.NewInt(50000))
	hi := keyenc.EncodeValue(value.NewInt(90000))
	count := 0
	if err := ix.ScanRange(lo, hi, func(rid heap.RID) bool {
		row, err := tbl.FetchRow(rid)
		if err != nil {
			t.Fatal(err)
		}
		if row[2].I < 50000 || row[2].I > 90000 {
			t.Errorf("range scan returned salary %d", row[2].I)
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("range matched %d rows, want 5 (50,60,70,80,90k)", count)
	}
}

func TestCreateCMMatchesFigure4(t *testing.T) {
	tbl, _ := newPeople(t)
	cm, err := tbl.CreateCM(core.Spec{Name: "city", UCols: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if cm.Keys() != 6 {
		t.Errorf("CM keys = %d, want 6 cities", cm.Keys())
	}
	// Boston co-occurs with MA and NH: with per-value buckets those are
	// two distinct clustered buckets.
	got := cm.Lookup(value.NewString("boston"))
	if len(got) != 2 {
		t.Errorf("boston buckets = %v", got)
	}
	// The buckets must map back to the pages holding MA and NH rows.
	for _, b := range got {
		lo := tbl.Buckets().LowerBound(b)
		vals, err := keyenc.DecodeAll(lo)
		if err != nil {
			t.Fatal(err)
		}
		if s := vals[0].S; s != "MA" && s != "NH" {
			t.Errorf("boston bucket bound = %q", s)
		}
	}
}

func TestInsertMaintainsEverything(t *testing.T) {
	tbl, _ := newPeople(t)
	ix, err := tbl.CreateIndex("city", []int{1})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := tbl.CreateCM(core.Spec{Name: "city", UCols: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	// A Boston in Ohio appears.
	row := value.Row{value.NewString("OH"), value.NewString("boston"), value.NewInt(1)}
	rid, err := tbl.Insert(row)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Commit(); err != nil {
		t.Fatal(err)
	}
	// Heap row readable.
	got, err := tbl.FetchRow(rid)
	if err != nil || got == nil || got[1].S != "boston" {
		t.Fatalf("fetch after insert: %v %v", got, err)
	}
	// Secondary index sees it.
	n := 0
	if err := ix.ScanPrefix(keyenc.EncodeValue(value.NewString("boston")), func(heap.RID) bool {
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("city index boston entries = %d, want 4", n)
	}
	// CM now maps boston to a third bucket (OH's).
	if got := cm.Lookup(value.NewString("boston")); len(got) != 3 {
		t.Errorf("CM boston buckets after insert = %v", got)
	}
	// Clustered index finds the row by state even though the heap page is
	// appended out of order.
	found := false
	if err := tbl.Clustered().ScanPrefix(keyenc.EncodeValue(value.NewString("OH")), func(r heap.RID) bool {
		if r == rid {
			found = true
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Error("clustered index missing appended row")
	}
}

func TestDeleteMaintainsEverything(t *testing.T) {
	tbl, _ := newPeople(t)
	ix, err := tbl.CreateIndex("city", []int{1})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := tbl.CreateCM(core.Spec{Name: "city", UCols: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	// Find the single NH boston row and delete it.
	var target heap.RID
	if err := tbl.Scan(func(rid heap.RID, row value.Row) bool {
		if row[0].S == "NH" && row[1].S == "boston" {
			target = rid
			return false
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete(target); err != nil {
		t.Fatal(err)
	}
	if row, _ := tbl.FetchRow(target); row != nil {
		t.Error("row still readable after delete")
	}
	n := 0
	if err := ix.ScanPrefix(keyenc.EncodeValue(value.NewString("boston")), func(heap.RID) bool {
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("boston index entries after delete = %d, want 2", n)
	}
	// CM retracts NH from boston's bucket set.
	if got := cm.Lookup(value.NewString("boston")); len(got) != 1 {
		t.Errorf("CM boston buckets after delete = %v", got)
	}
	// Deleting again fails.
	if err := tbl.Delete(target); err == nil {
		t.Error("double delete should fail")
	}
}

func TestStats(t *testing.T) {
	tbl, _ := newPeople(t)
	st := tbl.Stats()
	if st.TotalTups != 10 {
		t.Errorf("total tups = %d", st.TotalTups)
	}
	if st.Pages < 1 || st.TupsPerPage <= 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.BTreeHeight < 1 {
		t.Errorf("height = %d", st.BTreeHeight)
	}
}

func TestPairStats(t *testing.T) {
	tbl, _ := newPeople(t)
	pc, err := tbl.PairStats([]int{1}) // city vs state
	if err != nil {
		t.Fatal(err)
	}
	if pc.DU() != 6 {
		t.Errorf("D(city) = %d", pc.DU())
	}
	if pc.DUC() != 9 {
		t.Errorf("D(city,state) = %d", pc.DUC())
	}
	want := 9.0 / 6.0
	if got := pc.CPerU(); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("c_per_u = %v", got)
	}
}

func TestSchemaValidation(t *testing.T) {
	tbl, _ := newPeople(t)
	if _, err := tbl.Insert(value.Row{value.NewInt(1)}); err == nil {
		t.Error("short row accepted")
	}
	if _, err := tbl.Insert(value.Row{value.NewInt(1), value.NewString("x"), value.NewInt(2)}); err == nil {
		t.Error("mistyped row accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	d := sim.NewDisk(sim.Config{PageSize: 512})
	pool := buffer.NewPool(d, 16)
	if _, err := New(pool, nil, Config{Name: "x", Schema: peopleSchema()}); err == nil {
		t.Error("missing clustered cols accepted")
	}
	if _, err := New(pool, nil, Config{Name: "x", Schema: peopleSchema(), ClusteredCols: []int{9}}); err == nil {
		t.Error("out-of-range clustered col accepted")
	}
}

func TestIndexAndCMDiscovery(t *testing.T) {
	tbl, _ := newPeople(t)
	if _, err := tbl.CreateIndex("city", []int{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.CreateCM(core.Spec{Name: "citycm", UCols: []int{1}}); err != nil {
		t.Fatal(err)
	}
	if tbl.IndexOn(1) == nil {
		t.Error("IndexOn(1) not found")
	}
	if tbl.IndexOn(2) != nil {
		t.Error("IndexOn(2) should be nil")
	}
	if tbl.CMOn(1) == nil {
		t.Error("CMOn(1) not found")
	}
	if tbl.CMOn(0) != nil {
		t.Error("CMOn(0) should be nil")
	}
}

func TestLargerTableClusteredCorrelation(t *testing.T) {
	// A larger synthetic check: cluster on A, where B = A/10 is perfectly
	// determined. The CM on B must have c_per_u == number of clustered
	// buckets its 10-value span covers, and lookups must locate exactly
	// the pages holding matching tuples.
	d := sim.NewDisk(sim.Config{PageSize: 1024})
	pool := buffer.NewPool(d, 256)
	sch := NewSchema(
		Column{Name: "a", Kind: value.Int},
		Column{Name: "b", Kind: value.Int},
	)
	tbl, err := New(pool, nil, Config{Name: "t", Schema: sch, ClusteredCols: []int{0}, BucketPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var rows []value.Row
	for i := 0; i < 5000; i++ {
		a := int64(rng.Intn(1000))
		rows = append(rows, value.Row{value.NewInt(a), value.NewInt(a / 10)})
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	cm, err := tbl.CreateCM(core.Spec{Name: "b", UCols: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	// Every b value maps to few buckets (a-range of 10 values is
	// contiguous in the clustered order).
	if cm.CPerU() > 4 {
		t.Errorf("correlated CM c_per_u = %v, too high", cm.CPerU())
	}
	// Verify completeness: CM lookup of b=42 must cover all rows with
	// b=42 (a in 420..429).
	buckets := cm.Lookup(value.NewInt(42))
	inBuckets := map[int32]bool{}
	for _, b := range buckets {
		inBuckets[b] = true
	}
	if err := tbl.Scan(func(rid heap.RID, row value.Row) bool {
		if row[1].I == 42 && !inBuckets[tbl.ClusterBucketFor(row)] {
			t.Errorf("row a=%d b=42 in bucket %d not covered by CM", row[0].I, tbl.ClusterBucketFor(row))
			return false
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	_ = fmt.Sprint(buckets)
}

func TestRowCodecRoundTrip(t *testing.T) {
	sch := peopleSchema()
	row := value.Row{value.NewString("MA"), value.NewString("bo\x00ston"), value.NewInt(-5)}
	enc, err := sch.EncodeRow(row)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sch.DecodeRow(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range row {
		if !row[i].Equal(got[i]) {
			t.Errorf("col %d: %v != %v", i, row[i], got[i])
		}
	}
	// Trailing garbage is rejected.
	if _, err := sch.DecodeRow(append(enc, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Truncation is rejected.
	if _, err := sch.DecodeRow(enc[:len(enc)-1]); err == nil {
		t.Error("truncated row accepted")
	}
}

func TestFloatColumnRoundTrip(t *testing.T) {
	sch := NewSchema(Column{Name: "f", Kind: value.Float})
	enc, err := sch.EncodeRow(value.Row{value.NewFloat(-12.75)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sch.DecodeRow(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].F != -12.75 {
		t.Errorf("float = %v", got[0].F)
	}
}

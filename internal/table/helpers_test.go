package table

import (
	"repro/internal/buffer"
	"repro/internal/sim"
)

func simDiskForTest() *sim.Disk {
	return sim.NewDisk(sim.Config{PageSize: 512})
}

func poolForTest(d *sim.Disk, frames int) *buffer.Pool {
	return buffer.NewPool(d, frames)
}

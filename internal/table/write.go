package table

import (
	"context"
	"fmt"
	"time"

	"repro/internal/heap"
	"repro/internal/metrics"
	"repro/internal/value"
	"repro/internal/wal"
)

// This file implements the MVCC writer statement. A writer never holds the
// table latch for its whole run: it takes the per-table writer gate (which
// only excludes other writers and DDL), stamps its new row versions with
// clock+1, and applies mutations in small batches under short exclusive
// latch holds, so a concurrent reader waits at most one batch. Readers
// capture the published clock at statement start and filter every heap
// access through the per-tuple begin/end timestamps, so a half-applied
// statement is invisible to them.
//
// Correlation-map maintenance follows the paper's Algorithm 1, split
// across the statement so snapshot readers stay correct mid-flight:
// additions (AddRow for new versions) apply immediately — harmless,
// because the new heap versions are invisible until publish and CM scans
// re-filter on heap bytes — while retractions (RemoveRow for replaced or
// deleted versions) are deferred to Publish. Removing a CM pair early
// could hide rows a pre-publish snapshot must still find through the CM
// access path. The same deferral covers the clustered and secondary index
// entries of old versions. WAL records are also queued until Publish, so
// an aborted statement leaves no trace for CM recovery replay.

// writeBatchRows bounds how many rows one exclusive latch hold applies:
// small enough that a waiting reader stalls for microseconds, large
// enough to amortize the latch handoff across a bulk statement.
const writeBatchRows = 128

// WriteObs is the write path's metric set. All fields are optional
// (nil disables that metric); the struct is installed atomically via
// SetWriteObs so live writer statements never race a wiring change.
type WriteObs struct {
	// Publishes counts committed writer statements.
	Publishes *metrics.Counter
	// Aborts counts rolled-back writer statements.
	Aborts *metrics.Counter
	// Rows counts row versions written (inserted plus ended).
	Rows *metrics.Counter
	// LatchHold records the wall time of each exclusive latch hold in
	// nanoseconds — the writeBatchRows-chunked holds plus the final
	// publish hold, i.e. exactly the stalls a concurrent reader can see.
	LatchHold *metrics.Histogram
}

// lockLatched takes the exclusive latch and, when latch observation is
// wired, returns the acquisition time for unlockLatched to record.
func (t *Table) lockLatched() time.Time {
	t.mu.Lock()
	if o := t.writeObs.Load(); o != nil && o.LatchHold != nil {
		return time.Now()
	}
	return time.Time{}
}

// unlockLatched releases the exclusive latch and records the hold time
// started by lockLatched.
func (t *Table) unlockLatched(start time.Time) {
	t.mu.Unlock()
	if !start.IsZero() {
		if o := t.writeObs.Load(); o != nil {
			o.LatchHold.ObserveSince(start)
		}
	}
}

// retraction is one old row version whose index entries and CM pairs are
// removed when the statement publishes.
type retraction struct {
	row value.Row
	rid heap.RID
	cb  int32
}

// undoInsert is one new row version to unwind if the statement aborts.
type undoInsert struct {
	row value.Row
	rid heap.RID
	cb  int32
}

// WriteTxn is one MVCC writer statement on a table: a sequence of
// InsertBatch / DeleteBatch / UpdateBatch calls between BeginWrite and
// Publish (or Abort). It is single-goroutine; the writer gate it holds
// excludes concurrent writer statements and DDL, but not readers.
type WriteTxn struct {
	t  *Table
	ts uint64

	inserted []undoInsert
	ended    []heap.RID
	retract  []retraction
	recs     []wal.Record
	logged   bool
	done     bool
	ctx      context.Context
}

// SetContext attaches a cancellation context to the statement. Batch
// application checks it between latch bursts: a cancelled statement
// stops at the next chunk boundary with the context's error, leaving
// the caller to Abort (the physical unwind restores the pre-statement
// state). A nil context — the default — never cancels.
func (tx *WriteTxn) SetContext(ctx context.Context) { tx.ctx = ctx }

// ctxErr reports the statement context's cancellation error, if any.
func (tx *WriteTxn) ctxErr() error {
	if tx.ctx == nil {
		return nil
	}
	select {
	case <-tx.ctx.Done():
		return tx.ctx.Err()
	default:
		return nil
	}
}

// BeginWrite starts a writer statement: it acquires the writer gate and
// assigns the statement's version timestamp (published clock + 1). Every
// BeginWrite must be paired with exactly one Publish or Abort.
func (t *Table) BeginWrite() *WriteTxn {
	t.wmu.Lock()
	t.writerActive.Store(true)
	return &WriteTxn{t: t, ts: t.clock.Load() + 1, logged: true}
}

// Timestamp returns the version timestamp new rows are stamped with.
func (tx *WriteTxn) Timestamp() uint64 { return tx.ts }

// InsertBatch appends the rows as new versions: heap append at the
// statement timestamp, clustered and secondary index entries, and CM
// additions (Algorithm 1's insert half). Validation and encoding happen
// outside the latch; the mutations apply in writeBatchRows chunks, each
// under its own short exclusive hold. The rows stay invisible to readers
// until Publish.
func (tx *WriteTxn) InsertBatch(rows []value.Row) error {
	t := tx.t
	encs := make([][]byte, len(rows))
	for i, r := range rows {
		if err := t.cfg.Schema.Validate(r); err != nil {
			return err
		}
		enc, err := t.cfg.Schema.EncodeRow(r)
		if err != nil {
			return err
		}
		encs[i] = enc
	}
	for start := 0; start < len(rows); start += writeBatchRows {
		if err := tx.ctxErr(); err != nil {
			return err
		}
		end := start + writeBatchRows
		if end > len(rows) {
			end = len(rows)
		}
		held := t.lockLatched()
		for i := start; i < end; i++ {
			if err := tx.applyInsert(rows[i], encs[i]); err != nil {
				t.unlockLatched(held)
				return err
			}
		}
		t.unlockLatched(held)
	}
	return nil
}

// applyInsert installs one new row version. Caller holds the latch.
func (tx *WriteTxn) applyInsert(row value.Row, enc []byte) error {
	t := tx.t
	rid, err := t.heapf.AppendAt(enc, tx.ts)
	if err != nil {
		return err
	}
	cb := t.ClusterBucketFor(row)
	tx.inserted = append(tx.inserted, undoInsert{row: row, rid: rid, cb: cb})
	if err := t.clustered.Insert(row, rid); err != nil {
		return err
	}
	for _, ix := range t.secondary {
		if err := ix.Insert(row, rid); err != nil {
			return err
		}
	}
	for _, cm := range t.cms {
		cm.AddRow(row, cb)
	}
	if tx.logged {
		tx.recs = append(tx.recs, wal.Record{Type: wal.RecInsert, Target: t.cfg.Name, Payload: enc})
	}
	return nil
}

// DeleteBatch logically ends the rows at the given RIDs, applying in
// writeBatchRows chunks under short exclusive latch holds. The tuple
// bytes stay readable by older snapshots; index entries and CM pairs are
// retracted at Publish.
func (tx *WriteTxn) DeleteBatch(rids []heap.RID) error {
	t := tx.t
	for start := 0; start < len(rids); start += writeBatchRows {
		if err := tx.ctxErr(); err != nil {
			return err
		}
		end := start + writeBatchRows
		if end > len(rids) {
			end = len(rids)
		}
		held := t.lockLatched()
		for i := start; i < end; i++ {
			if err := tx.applyDelete(rids[i]); err != nil {
				t.unlockLatched(held)
				return err
			}
		}
		t.unlockLatched(held)
	}
	return nil
}

// applyDelete ends one row version. Caller holds the latch.
func (tx *WriteTxn) applyDelete(rid heap.RID) error {
	t := tx.t
	data, err := t.heapf.Get(rid)
	if err != nil {
		return err
	}
	if data == nil {
		return fmt.Errorf("table %s: delete of missing row %v", t.cfg.Name, rid)
	}
	row, err := t.cfg.Schema.DecodeRow(data)
	if err != nil {
		return err
	}
	if err := t.heapf.SetEnd(rid, tx.ts); err != nil {
		return err
	}
	tx.ended = append(tx.ended, rid)
	tx.retract = append(tx.retract, retraction{row: row, rid: rid, cb: t.ClusterBucketFor(row)})
	if tx.logged {
		tx.recs = append(tx.recs, wal.Record{Type: wal.RecDelete, Target: t.cfg.Name, Payload: data})
	}
	return nil
}

// UpdateBatch replaces the rows at olds with news (position-matched) —
// Algorithm 1's retraction + reinsert: the old version is logically ended
// and queued for index/CM retraction at Publish, the new version is
// appended, indexed and added to every CM, so per-entry statistics come
// out exact once the statement publishes. Mutations apply in
// writeBatchRows chunks under short exclusive latch holds.
func (tx *WriteTxn) UpdateBatch(olds []heap.RID, news []value.Row) error {
	t := tx.t
	if len(olds) != len(news) {
		return fmt.Errorf("table %s: update batch mismatch: %d rids, %d rows", t.cfg.Name, len(olds), len(news))
	}
	encs := make([][]byte, len(news))
	for i, r := range news {
		if err := t.cfg.Schema.Validate(r); err != nil {
			return err
		}
		enc, err := t.cfg.Schema.EncodeRow(r)
		if err != nil {
			return err
		}
		encs[i] = enc
	}
	for start := 0; start < len(olds); start += writeBatchRows {
		if err := tx.ctxErr(); err != nil {
			return err
		}
		end := start + writeBatchRows
		if end > len(olds) {
			end = len(olds)
		}
		held := t.lockLatched()
		for i := start; i < end; i++ {
			if err := tx.applyDelete(olds[i]); err != nil {
				t.unlockLatched(held)
				return err
			}
			if err := tx.applyInsert(news[i], encs[i]); err != nil {
				t.unlockLatched(held)
				return err
			}
		}
		t.unlockLatched(held)
	}
	return nil
}

// Publish commits the statement: under one final exclusive latch hold it
// appends the statement's WAL records, applies the deferred retractions
// (index entries and CM pairs of replaced and deleted versions —
// Algorithm 1's retraction half), and advances the published clock so
// new reader snapshots see the statement's versions. Then it releases
// the writer gate.
//
// WAL appends go first on purpose: a failing log (injected or real disk
// fault) then leaves the in-memory structures untouched, and the
// physical unwind below restores exactly the pre-statement state — the
// statement fails cleanly and the table stays consistent. A failed
// Publish self-aborts; callers must not call Abort afterwards (doing so
// is a no-op).
func (tx *WriteTxn) Publish() error {
	t := tx.t
	held := t.lockLatched()
	var err error
	if t.log != nil {
		for _, rec := range tx.recs {
			if err = t.log.Append(rec); err != nil {
				break
			}
		}
	}
	if err == nil {
		// A retraction failure past this point restores the retracted
		// entries (see applyRetractions) and unwinds, but the appended
		// WAL records cannot be taken back; a later CM recovery replay
		// would include the aborted statement. Retractions are in-memory
		// except for B+Tree page faults, so the window is narrow.
		err = tx.applyRetractions()
	}
	if err == nil {
		t.clock.Store(tx.ts)
	} else {
		tx.unwind()
	}
	t.unlockLatched(held)
	if o := t.writeObs.Load(); o != nil {
		if err == nil {
			o.Publishes.Inc()
			o.Rows.Add(int64(len(tx.inserted) + len(tx.ended)))
		} else {
			o.Aborts.Inc()
		}
	}
	tx.release()
	return err
}

// applyRetractions removes the index entries and CM pairs of every
// retracted old version. Caller holds the latch. On error every
// operation already applied is reverted (in reverse order, best
// effort), so the old versions stay fully indexed and counted and the
// caller sees a clean pre-retraction state.
func (tx *WriteTxn) applyRetractions() error {
	t := tx.t
	var undo []func()
	fail := func(err error) error {
		for i := len(undo) - 1; i >= 0; i-- {
			undo[i]()
		}
		return err
	}
	for _, r := range tx.retract {
		r := r
		if _, err := t.clustered.Delete(r.row, r.rid); err != nil {
			return fail(err)
		}
		undo = append(undo, func() { _ = t.clustered.Insert(r.row, r.rid) })
		for _, ix := range t.secondary {
			ix := ix
			if _, err := ix.Delete(r.row, r.rid); err != nil {
				return fail(err)
			}
			undo = append(undo, func() { _ = ix.Insert(r.row, r.rid) })
		}
		for _, cm := range t.cms {
			cm := cm
			if err := cm.RemoveRow(r.row, r.cb); err != nil {
				return fail(err)
			}
			undo = append(undo, func() { cm.AddRow(r.row, r.cb) })
		}
	}
	return nil
}

// unwind physically removes the statement's work: appended versions are
// deleted (heap, indexes, CMs) in reverse order and logically-ended old
// versions are restored to live. Caller holds the latch. Inverse
// operations are best-effort — they undo work that was just applied, so
// a failure here means the structure was already inconsistent.
func (tx *WriteTxn) unwind() {
	t := tx.t
	for i := len(tx.inserted) - 1; i >= 0; i-- {
		u := tx.inserted[i]
		_, _ = t.clustered.Delete(u.row, u.rid)
		for _, ix := range t.secondary {
			_, _ = ix.Delete(u.row, u.rid)
		}
		for _, cm := range t.cms {
			_ = cm.RemoveRow(u.row, u.cb)
		}
		_ = t.heapf.Delete(u.rid)
	}
	for i := len(tx.ended) - 1; i >= 0; i-- {
		_ = t.heapf.ClearEnd(tx.ended[i])
	}
}

// Abort rolls the statement back: the physical unwind removes appended
// versions and restores logically-ended old versions. No WAL records
// were written, so recovery replay never sees the statement. The writer
// gate is released. Abort after a failed Publish (which self-aborts) is
// a no-op.
func (tx *WriteTxn) Abort() {
	if tx.done {
		return
	}
	t := tx.t
	held := t.lockLatched()
	tx.unwind()
	t.unlockLatched(held)
	if o := t.writeObs.Load(); o != nil {
		o.Aborts.Inc()
	}
	tx.release()
}

// release drops the writer gate once, whether publishing or aborting.
func (tx *WriteTxn) release() {
	if tx.done {
		return
	}
	tx.done = true
	tx.t.writerActive.Store(false)
	tx.t.wmu.Unlock()
}

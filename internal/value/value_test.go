package value

import (
	"testing"
	"testing/quick"
)

func TestCompareInts(t *testing.T) {
	cases := []struct {
		a, b int64
		want int
	}{
		{1, 2, -1}, {2, 1, 1}, {5, 5, 0}, {-3, 3, -1}, {-3, -4, 1},
	}
	for _, c := range cases {
		if got := NewInt(c.a).Compare(NewInt(c.b)); got != c.want {
			t.Errorf("Compare(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareFloats(t *testing.T) {
	if got := NewFloat(1.5).Compare(NewFloat(1.6)); got != -1 {
		t.Errorf("1.5 vs 1.6 = %d, want -1", got)
	}
	if got := NewFloat(-0.0).Compare(NewFloat(0.0)); got != 0 {
		t.Errorf("-0.0 vs 0.0 = %d, want 0", got)
	}
}

func TestCompareStrings(t *testing.T) {
	if got := NewString("apple").Compare(NewString("banana")); got != -1 {
		t.Errorf("apple vs banana = %d, want -1", got)
	}
	if !NewString("x").Equal(NewString("x")) {
		t.Error("identical strings not Equal")
	}
}

func TestCompareMixedKinds(t *testing.T) {
	// Kinds order Int < Float < String.
	if got := NewInt(100).Compare(NewFloat(0)); got != -1 {
		t.Errorf("int vs float = %d, want -1", got)
	}
	if got := NewString("").Compare(NewFloat(1e30)); got != 1 {
		t.Errorf("string vs float = %d, want 1", got)
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	f := func(a, b int64) bool {
		return NewInt(a).Compare(NewInt(b)) == -NewInt(b).Compare(NewInt(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitivityOnFloats(t *testing.T) {
	f := func(a, b, c float64) bool {
		va, vb, vc := NewFloat(a), NewFloat(b), NewFloat(c)
		if va.Compare(vb) <= 0 && vb.Compare(vc) <= 0 {
			return va.Compare(vc) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	if s := NewInt(-42).String(); s != "-42" {
		t.Errorf("int string = %q", s)
	}
	if s := NewFloat(2.5).String(); s != "2.5" {
		t.Errorf("float string = %q", s)
	}
	if s := NewString("hi").String(); s != "hi" {
		t.Errorf("string string = %q", s)
	}
}

func TestKindString(t *testing.T) {
	if Int.String() != "int" || Float.String() != "float" || String.String() != "string" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{NewInt(1), NewString("a")}
	c := r.Clone()
	c[0] = NewInt(2)
	if r[0].I != 1 {
		t.Error("Clone aliases original row")
	}
	if len(c) != 2 {
		t.Errorf("clone length %d", len(c))
	}
}

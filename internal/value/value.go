// Package value defines the typed scalar values that flow through the
// storage engine, indexes, correlation maps and query executor.
//
// The engine supports three kinds: 64-bit signed integers, 64-bit floats
// and strings. These cover every attribute used by the paper's three
// evaluation datasets (eBay, TPC-H lineitem, SDSS PhotoObj/PhotoTag).
package value

import (
	"fmt"
	"strconv"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported value kinds.
const (
	Int Kind = iota
	Float
	String
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed scalar. The zero Value is the integer 0.
type Value struct {
	K Kind
	I int64
	F float64
	S string
}

// NewInt returns an integer Value.
func NewInt(i int64) Value { return Value{K: Int, I: i} }

// NewFloat returns a float Value.
func NewFloat(f float64) Value { return Value{K: Float, F: f} }

// NewString returns a string Value.
func NewString(s string) Value { return Value{K: String, S: s} }

// Compare orders v relative to o: -1 if v < o, 0 if equal, +1 if v > o.
// Values of different kinds order by kind; callers normally compare values
// of the same column and therefore the same kind.
func (v Value) Compare(o Value) int {
	if v.K != o.K {
		if v.K < o.K {
			return -1
		}
		return 1
	}
	switch v.K {
	case Int:
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		}
		return 0
	case Float:
		switch {
		case v.F < o.F:
			return -1
		case v.F > o.F:
			return 1
		}
		return 0
	default:
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		}
		return 0
	}
}

// Equal reports whether v and o hold the same kind and payload.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// String renders the payload; integers and floats use decimal notation.
func (v Value) String() string {
	switch v.K {
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Float:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	default:
		return v.S
	}
}

// Row is a tuple of values positionally matching a table schema.
type Row []Value

// Clone returns an independent copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

package datagen

import (
	"math/rand"
	"sort"

	"repro/internal/table"
	"repro/internal/value"
)

// TPCHConfig scales the lineitem table. The paper runs scale factor 3
// (~18M rows); defaults here produce a small table with the same
// correlation structure.
type TPCHConfig struct {
	Orders    int // default 5000 (≈ 20k lineitems)
	Parts     int // default Orders/2, min 100
	Suppliers int // default Parts/10, min 20
	Seed      int64
}

func (c *TPCHConfig) defaults() {
	if c.Orders <= 0 {
		c.Orders = 5000
	}
	if c.Parts <= 0 {
		c.Parts = c.Orders / 2
		if c.Parts < 100 {
			c.Parts = 100
		}
	}
	if c.Suppliers <= 0 {
		c.Suppliers = c.Parts / 10
		if c.Suppliers < 20 {
			c.Suppliers = 20
		}
	}
}

// Lineitem column positions.
const (
	LOrderKey = iota
	LLineNumber
	LPartKey
	LSuppKey
	LQuantity
	LExtendedPrice
	LDiscount
	LTax
	LReturnFlag
	LLineStatus
	LShipDate
	LCommitDate
	LReceiptDate
	LShipMode
	LShipInstruct
	LComment
)

// LineitemSchema returns the 16-attribute lineitem table the paper
// searches for correlations.
func LineitemSchema() table.Schema {
	return table.NewSchema(
		table.Column{Name: "orderkey", Kind: value.Int},
		table.Column{Name: "linenumber", Kind: value.Int},
		table.Column{Name: "partkey", Kind: value.Int},
		table.Column{Name: "suppkey", Kind: value.Int},
		table.Column{Name: "quantity", Kind: value.Int},
		table.Column{Name: "extendedprice", Kind: value.Float},
		table.Column{Name: "discount", Kind: value.Float},
		table.Column{Name: "tax", Kind: value.Float},
		table.Column{Name: "returnflag", Kind: value.String},
		table.Column{Name: "linestatus", Kind: value.String},
		table.Column{Name: "shipdate", Kind: value.Int},
		table.Column{Name: "commitdate", Kind: value.Int},
		table.Column{Name: "receiptdate", Kind: value.Int},
		table.Column{Name: "shipmode", Kind: value.String},
		table.Column{Name: "shipinstruct", Kind: value.String},
		table.Column{Name: "comment", Kind: value.String},
	)
}

var shipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
var shipInstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
var comments = []string{"quick", "fluffy", "regular", "express", "ironic", "careful"}

// receiptBump draws the ship-to-receipt delay: the paper's "bumps" —
// roughly 2 days for air, 4 for standard, 5 for ground — that make
// receiptdate a strong soft predictor of shipdate.
func receiptBump(rng *rand.Rand) int64 {
	r := rng.Float64()
	switch {
	case r < 0.40:
		return 2
	case r < 0.70:
		return 4
	case r < 0.90:
		return 5
	case r < 0.95:
		return 3
	default:
		return 7
	}
}

// Lineitems generates the lineitem rows. Embedded soft FDs:
//
//   - receiptdate = shipdate + bump{2,4,5,...}: the Figure 1/3 pair
//   - suppkey is one of 4 suppliers determined by partkey (TPC-H's own
//     part-supplier formula), the moderate Figure 1 pair
//   - shipdate = orderdate + U[1,121], so orderkey correlates weakly
//
// Dates are integer day numbers over a ~7-year range (0..2555), matching
// TPC-H's ~2526 distinct ship dates.
func Lineitems(cfg TPCHConfig) []value.Row {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var rows []value.Row
	for o := 1; o <= cfg.Orders; o++ {
		orderDate := int64(rng.Intn(2400))
		lines := 1 + rng.Intn(7)
		for l := 1; l <= lines; l++ {
			part := 1 + rng.Intn(cfg.Parts)
			// TPC-H: supplier j of part p is
			// (p + j*(S/4 + (p-1)/S)) mod S + 1, j in 0..3.
			j := rng.Intn(4)
			s := cfg.Suppliers
			supp := (part+j*(s/4+(part-1)/s))%s + 1
			ship := orderDate + 1 + int64(rng.Intn(121))
			commit := orderDate + 30 + int64(rng.Intn(61))
			receipt := ship + receiptBump(rng)
			qty := 1 + rng.Intn(50)
			price := float64(qty) * (900 + float64(part%2000))
			rows = append(rows, value.Row{
				value.NewInt(int64(o)),
				value.NewInt(int64(l)),
				value.NewInt(int64(part)),
				value.NewInt(int64(supp)),
				value.NewInt(int64(qty)),
				value.NewFloat(price),
				value.NewFloat(float64(rng.Intn(11)) / 100),
				value.NewFloat(float64(rng.Intn(9)) / 100),
				value.NewString([]string{"A", "N", "R"}[rng.Intn(3)]),
				value.NewString([]string{"F", "O"}[rng.Intn(2)]),
				value.NewInt(ship),
				value.NewInt(commit),
				value.NewInt(receipt),
				value.NewString(shipModes[rng.Intn(len(shipModes))]),
				value.NewString(shipInstructs[rng.Intn(len(shipInstructs))]),
				value.NewString(comments[rng.Intn(len(comments))]),
			})
		}
	}
	return rows
}

// ShipDates returns the distinct ship dates present in rows, sorted
// ascending (deterministic for query generation in Figure 3).
func ShipDates(rows []value.Row) []int64 {
	seen := map[int64]struct{}{}
	for _, r := range rows {
		seen[r[LShipDate].I] = struct{}{}
	}
	out := make([]int64, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

package datagen

import (
	"testing"

	"repro/internal/keyenc"
	"repro/internal/stats"
	"repro/internal/value"
)

func TestEBayDeterministic(t *testing.T) {
	cfg := EBayConfig{Categories: 20, ItemsPerCatMin: 10, ItemsPerCatMax: 20, Seed: 7}
	a := EBayItems(cfg)
	b := EBayItems(cfg)
	if len(a) != len(b) {
		t.Fatal("nondeterministic row count")
	}
	for i := range a {
		for j := range a[i] {
			if !a[i][j].Equal(b[i][j]) {
				t.Fatalf("row %d col %d differs", i, j)
			}
		}
	}
}

func TestEBaySchemaMatchesRows(t *testing.T) {
	sch := EBaySchema()
	rows := EBayItems(EBayConfig{Categories: 5, ItemsPerCatMin: 3, ItemsPerCatMax: 5})
	for _, r := range rows {
		if err := sch.Validate(r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEBayHierarchyIsFunctionOfCATID(t *testing.T) {
	rows := EBayItems(EBayConfig{Categories: 50, ItemsPerCatMin: 5, ItemsPerCatMax: 10})
	paths := map[int64][6]string{}
	for _, r := range rows {
		cat := r[EBayCATID].I
		var p [6]string
		for l := 0; l < 6; l++ {
			p[l] = r[EBayCAT1+l].S
		}
		if prev, ok := paths[cat]; ok && prev != p {
			t.Fatalf("CATID %d has two different paths", cat)
		}
		paths[cat] = p
	}
	// Level-1 names must be shared across many categories (a hierarchy,
	// not per-category labels).
	l1 := map[string]int{}
	for _, p := range paths {
		l1[p[0]]++
	}
	if len(l1) >= len(paths) {
		t.Error("CAT1 is unique per category; hierarchy not shared")
	}
}

func TestEBayPriceCorrelatesWithCategory(t *testing.T) {
	rows := EBayItems(EBayConfig{Categories: 100, ItemsPerCatMin: 30, ItemsPerCatMax: 60, Seed: 3})
	// c_per_u of bucketed Price -> CATID must be far below the number of
	// categories: a $1000 price bucket should map to only a few
	// categories (sigma is $100 and medians spread over $1M).
	pc := stats.NewPairCounter()
	for _, r := range rows {
		bucket := int64(r[EBayPrice].F / 1000)
		pc.Add(keyenc.EncodeValue(value.NewInt(bucket)), keyenc.EncodeValue(r[EBayCATID]))
	}
	if got := pc.CPerU(); got > 5 {
		t.Errorf("price-bucket c_per_u = %v, expected strong correlation", got)
	}
}

func TestEBayInsertBatchSharesDistribution(t *testing.T) {
	cfg := EBayConfig{Categories: 30, ItemsPerCatMin: 10, ItemsPerCatMax: 20, Seed: 5}
	base := EBayItems(cfg)
	batch := EBayInsertBatch(cfg, 100, 99)
	if len(batch) != 100 {
		t.Fatalf("batch size %d", len(batch))
	}
	// Batch categories must exist in the base set, with matching paths.
	basePaths := map[int64]string{}
	for _, r := range base {
		basePaths[r[EBayCATID].I] = r[EBayCAT1].S
	}
	for _, r := range batch {
		want, ok := basePaths[r[EBayCATID].I]
		if !ok {
			t.Fatalf("batch category %d not in base data", r[EBayCATID].I)
		}
		if r[EBayCAT1].S != want {
			t.Fatal("batch path differs from base path")
		}
	}
}

func TestLineitemCorrelations(t *testing.T) {
	rows := Lineitems(TPCHConfig{Orders: 2000, Seed: 11})
	if len(rows) < 2000 {
		t.Fatalf("too few lineitems: %d", len(rows))
	}
	sch := LineitemSchema()
	for _, r := range rows[:50] {
		if err := sch.Validate(r); err != nil {
			t.Fatal(err)
		}
	}
	// shipdate -> receiptdate: c_per_u must be tiny (bumps of 2,4,5...).
	sd := stats.NewPairCounter()
	// partkey -> suppkey: moderate (4 suppliers per part).
	ps := stats.NewPairCounter()
	// orderkey -> shipdate: weak.
	for _, r := range rows {
		sd.Add(keyenc.EncodeValue(r[LShipDate]), keyenc.EncodeValue(r[LReceiptDate]))
		ps.Add(keyenc.EncodeValue(r[LPartKey]), keyenc.EncodeValue(r[LSuppKey]))
	}
	if got := sd.CPerU(); got > 6 {
		t.Errorf("shipdate->receiptdate c_per_u = %v, want <= ~5 bumps", got)
	}
	if got := ps.CPerU(); got > 4.5 {
		t.Errorf("partkey->suppkey c_per_u = %v, want <= 4 suppliers", got)
	}
	// Receipt after ship, always.
	for _, r := range rows {
		if r[LReceiptDate].I <= r[LShipDate].I {
			t.Fatal("receipt date not after ship date")
		}
	}
}

func TestShipDates(t *testing.T) {
	rows := Lineitems(TPCHConfig{Orders: 500, Seed: 2})
	dates := ShipDates(rows)
	if len(dates) < 100 {
		t.Errorf("only %d distinct ship dates", len(dates))
	}
	seen := map[int64]bool{}
	for _, d := range dates {
		if seen[d] {
			t.Fatal("duplicate date returned")
		}
		seen[d] = true
	}
}

func TestSDSSShape(t *testing.T) {
	cfg := SDSSConfig{Stripes: 4, FieldsPerStripe: 10, ObjsPerField: 30, Seed: 13}
	rows := PhotoTag(cfg)
	if len(rows) != cfg.Rows() {
		t.Fatalf("rows = %d, want %d", len(rows), cfg.Rows())
	}
	sch := SDSSSchema()
	if len(sch.Cols) != SDSSNumCols {
		t.Fatalf("schema has %d cols, want %d", len(sch.Cols), SDSSNumCols)
	}
	for _, r := range rows[:20] {
		if err := sch.Validate(r); err != nil {
			t.Fatal(err)
		}
	}
	// objID strictly increasing (survey order).
	for i := 1; i < len(rows); i++ {
		if rows[i][SDSSObjID].I <= rows[i-1][SDSSObjID].I {
			t.Fatal("objID not increasing")
		}
	}
}

func TestSDSSFieldIDContiguousInObjIDOrder(t *testing.T) {
	rows := PhotoTag(SDSSConfig{Stripes: 3, FieldsPerStripe: 5, ObjsPerField: 20, Seed: 1})
	// fieldID changes monotonically along the survey order: each field's
	// objects form one contiguous objID run.
	last := int64(-1)
	seen := map[int64]bool{}
	for _, r := range rows {
		f := r[SDSSFieldID].I
		if f != last {
			if seen[f] {
				t.Fatalf("fieldID %d appears in two separate runs", f)
			}
			seen[f] = true
			last = f
		}
	}
}

func TestSDSSCompositeBeatsSingles(t *testing.T) {
	// The Table 6 premise: (ra, dec) predicts fieldID far better than ra
	// or dec alone. Measured as c_per_u of bucketed coordinates against
	// fieldID.
	rows := PhotoTag(SDSSConfig{Stripes: 8, FieldsPerStripe: 20, ObjsPerField: 40, Seed: 5})
	ra := stats.NewPairCounter()
	dec := stats.NewPairCounter()
	pair := stats.NewPairCounter()
	bucket := func(v float64, w float64) value.Value { return value.NewInt(int64(v / w)) }
	for _, r := range rows {
		f := keyenc.EncodeValue(r[SDSSFieldID])
		rb := keyenc.EncodeValue(bucket(r[SDSSRa].F, 2))
		db := keyenc.EncodeValue(bucket(r[SDSSDec].F+10, 1))
		ra.Add(rb, f)
		dec.Add(db, f)
		pair.Add(append(append([]byte{}, rb...), db...), f)
	}
	if pair.CPerU() > ra.CPerU() || pair.CPerU() > dec.CPerU() {
		t.Errorf("composite c_per_u %v should beat ra %v and dec %v",
			pair.CPerU(), ra.CPerU(), dec.CPerU())
	}
	if ra.CPerU() < 2*pair.CPerU() {
		t.Errorf("ra alone (%v) should be much weaker than the pair (%v)",
			ra.CPerU(), pair.CPerU())
	}
}

func TestSDSSMagnitudesMutuallyCorrelated(t *testing.T) {
	rows := PhotoTag(SDSSConfig{Stripes: 2, FieldsPerStripe: 5, ObjsPerField: 50, Seed: 9})
	// psfMag_g and petroMag_g differ by small noise: bucketed at 1 mag
	// they should rarely disagree by more than a bucket.
	agree := 0
	for _, r := range rows {
		a := int64(r[SDSSPsfMagG].F)
		b := int64(r[SDSSPetroMagG].F)
		if a == b || a == b+1 || a == b-1 {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(rows)); frac < 0.99 {
		t.Errorf("magnitude agreement %v too low", frac)
	}
}

func TestSDSSCardinalitiesForTable4(t *testing.T) {
	// Table 4 lists mode with 3 values and type with ~5-6; the defaults
	// produce 250 fields.
	rows := PhotoTag(SDSSConfig{Seed: 4})
	modes := map[int64]bool{}
	types := map[int64]bool{}
	fields := map[int64]bool{}
	for _, r := range rows {
		modes[r[SDSSMode].I] = true
		types[r[SDSSType].I] = true
		fields[r[SDSSFieldID].I] = true
	}
	if len(modes) != 3 {
		t.Errorf("mode cardinality = %d, want 3", len(modes))
	}
	if len(types) < 4 || len(types) > 7 {
		t.Errorf("type cardinality = %d, want ~5", len(types))
	}
	if len(fields) != 250 {
		t.Errorf("fieldID cardinality = %d, want 250", len(fields))
	}
}

// Package datagen synthesizes the paper's three evaluation datasets with
// the correlation structure each experiment exercises. All generators are
// deterministic given a seed and scale freely: tests run thousands of
// rows, benchmarks can run millions.
//
// Substitutions relative to the paper (see DESIGN.md): the eBay category
// feed, TPC-H dbgen output and the SDSS sky catalog are reproduced as
// synthetic equivalents preserving the attribute correlations (soft FDs)
// that the experiments measure.
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/table"
	"repro/internal/value"
)

// EBayConfig scales the hierarchical eBay items dataset. The paper uses
// 24,000 categories in a 6-level hierarchy and 43M rows (3.5 GB); the
// defaults shrink both while keeping items-per-category in the paper's
// 500–3000 band shape.
type EBayConfig struct {
	Categories     int // default 600
	ItemsPerCatMin int // default 50
	ItemsPerCatMax int // default 300
	Seed           int64
}

func (c *EBayConfig) defaults() {
	if c.Categories <= 0 {
		c.Categories = 600
	}
	if c.ItemsPerCatMin <= 0 {
		c.ItemsPerCatMin = 50
	}
	if c.ItemsPerCatMax < c.ItemsPerCatMin {
		c.ItemsPerCatMax = c.ItemsPerCatMin * 6
	}
}

// eBay column positions.
const (
	EBayCATID = iota
	EBayCAT1
	EBayCAT2
	EBayCAT3
	EBayCAT4
	EBayCAT5
	EBayCAT6
	EBayItemID
	EBayPrice
)

// EBaySchema returns ITEMS(CATID, CAT1..CAT6, ItemID, Price).
func EBaySchema() table.Schema {
	return table.NewSchema(
		table.Column{Name: "catid", Kind: value.Int},
		table.Column{Name: "cat1", Kind: value.String},
		table.Column{Name: "cat2", Kind: value.String},
		table.Column{Name: "cat3", Kind: value.String},
		table.Column{Name: "cat4", Kind: value.String},
		table.Column{Name: "cat5", Kind: value.String},
		table.Column{Name: "cat6", Kind: value.String},
		table.Column{Name: "itemid", Kind: value.Int},
		table.Column{Name: "price", Kind: value.Float},
	)
}

// catPath derives the 6-level category path of a category ID from a fixed
// fanout pyramid, so sub-category names are functions of CATID exactly as
// in a real hierarchy (CATID -> CAT1..CAT6 are hard FDs; CAT5 -> CATID is
// a strong soft FD because level-5 names are nearly unique).
var ebayFanout = [6]int{12, 5, 5, 4, 3, 2}

// genericLeafNames are category names like eBay's "Others" that appear
// under many different parents. They give some CAT5/CAT6 values a much
// higher c_per_u than specific names — the spread Experiment 4 (Figure
// 10) relies on, where CAT5 values range from c_per_u=4 to 145.
var genericLeafNames = []string{"Others", "Accessories", "Parts", "Vintage", "Mixed Lots"}

func catPath(catID int) [6]string {
	var path [6]string
	// Mixed-radix decomposition of the category id over the fanouts.
	digits := make([]int, 6)
	rem := catID
	for l := 5; l >= 0; l-- {
		digits[l] = rem % ebayFanout[l]
		rem /= ebayFanout[l]
	}
	for l := 0; l < 6; l++ {
		path[l] = fmt.Sprintf("L%d-%d-%d", l+1, digits[l], catID/levelGroup(l))
	}
	// Roughly a third of categories use a generic level-5/6 leaf name
	// shared across unrelated parents; a further tier uses "regional"
	// names shared by a handful of parents, giving CAT5 the wide
	// c_per_u spread of Figure 10 (the paper measures 4..145).
	switch {
	case catID%3 == 0:
		path[4] = genericLeafNames[(catID/3)%len(genericLeafNames)]
	case catID%7 == 1:
		path[4] = fmt.Sprintf("Regional-%d", (catID/7)%24)
	}
	if catID%5 == 0 {
		path[5] = genericLeafNames[(catID/5)%len(genericLeafNames)]
	}
	return path
}

// levelGroup makes level names shared among sibling categories: level l's
// name is common to the group of categories below the same ancestor.
func levelGroup(l int) int {
	g := 1
	for i := l + 1; i < 6; i++ {
		g *= ebayFanout[i]
	}
	return g
}

// EBayItems generates the items table rows. Prices follow the paper's
// recipe: each category gets a median drawn uniformly from [0, 1M] and
// items are Gaussian around it with sigma $100, making Price a strong
// (but soft) predictor of CATID.
func EBayItems(cfg EBayConfig) []value.Row {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var rows []value.Row
	itemID := int64(0)
	for cat := 0; cat < cfg.Categories; cat++ {
		path := catPath(cat)
		median := rng.Float64() * 1_000_000
		count := cfg.ItemsPerCatMin
		if cfg.ItemsPerCatMax > cfg.ItemsPerCatMin {
			count += rng.Intn(cfg.ItemsPerCatMax - cfg.ItemsPerCatMin)
		}
		for i := 0; i < count; i++ {
			price := median + rng.NormFloat64()*100
			if price < 0 {
				price = 0
			}
			rows = append(rows, value.Row{
				value.NewInt(int64(cat)),
				value.NewString(path[0]),
				value.NewString(path[1]),
				value.NewString(path[2]),
				value.NewString(path[3]),
				value.NewString(path[4]),
				value.NewString(path[5]),
				value.NewInt(itemID),
				value.NewFloat(price),
			})
			itemID++
		}
	}
	// Shuffle so Load's clustering sort is doing real work.
	rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
	return rows
}

// EBayInsertBatch generates additional rows for the maintenance
// experiments (Experiment 3): items in existing categories with prices
// from the same per-category distribution.
func EBayInsertBatch(cfg EBayConfig, n int, seed int64) []value.Row {
	cfg.defaults()
	rng := rand.New(rand.NewSource(seed))
	medians := categoryMedians(cfg)
	rows := make([]value.Row, 0, n)
	for i := 0; i < n; i++ {
		cat := rng.Intn(cfg.Categories)
		path := catPath(cat)
		price := medians[cat] + rng.NormFloat64()*100
		if price < 0 {
			price = 0
		}
		rows = append(rows, value.Row{
			value.NewInt(int64(cat)),
			value.NewString(path[0]),
			value.NewString(path[1]),
			value.NewString(path[2]),
			value.NewString(path[3]),
			value.NewString(path[4]),
			value.NewString(path[5]),
			value.NewInt(int64(1_000_000_000 + i)),
			value.NewFloat(price),
		})
	}
	return rows
}

// categoryMedians recomputes the deterministic per-category medians the
// base generator used (the rng consumption order must match EBayItems).
func categoryMedians(cfg EBayConfig) []float64 {
	rng := rand.New(rand.NewSource(cfg.Seed))
	medians := make([]float64, cfg.Categories)
	for cat := 0; cat < cfg.Categories; cat++ {
		medians[cat] = rng.Float64() * 1_000_000
		count := cfg.ItemsPerCatMin
		if cfg.ItemsPerCatMax > cfg.ItemsPerCatMin {
			count += rng.Intn(cfg.ItemsPerCatMax - cfg.ItemsPerCatMin)
		}
		for i := 0; i < count; i++ {
			rng.NormFloat64()
		}
	}
	return medians
}

package datagen

import (
	"math/rand"

	"repro/internal/table"
	"repro/internal/value"
)

// SDSSConfig scales the synthetic sky catalog standing in for the SDSS
// PhotoObj/PhotoTag tables. Objects are generated in survey order —
// stripe by stripe, field by field — which is what makes objID a spatial
// clustering key exactly as in the real SkyServer.
type SDSSConfig struct {
	Stripes         int // default 10
	FieldsPerStripe int // default 25 (250 fields total, near the paper's 251 fieldID cardinality)
	ObjsPerField    int // default 80
	Seed            int64
}

func (c *SDSSConfig) defaults() {
	if c.Stripes <= 0 {
		c.Stripes = 10
	}
	if c.FieldsPerStripe <= 0 {
		c.FieldsPerStripe = 25
	}
	if c.ObjsPerField <= 0 {
		c.ObjsPerField = 80
	}
}

// Rows returns the total row count the config generates.
func (c SDSSConfig) Rows() int {
	cc := c
	cc.defaults()
	return cc.Stripes * cc.FieldsPerStripe * cc.ObjsPerField
}

// SDSS column positions. Column 0 is the spatial object ID the paper
// clusters PhotoTag on; columns 1..39 are the 39 queryable attributes of
// the Figure 2 benchmark.
const (
	SDSSObjID = iota
	SDSSFieldID
	SDSSRa
	SDSSDec
	SDSSRun
	SDSSCamcol
	SDSSField
	SDSSMjd
	SDSSG
	SDSSPsfMagU
	SDSSPsfMagG
	SDSSPsfMagR
	SDSSPsfMagI
	SDSSPsfMagZ
	SDSSPetroMagU
	SDSSPetroMagG
	SDSSPetroMagR
	SDSSPetroMagI
	SDSSPetroMagZ
	SDSSModelMagU
	SDSSModelMagG
	SDSSModelMagR
	SDSSModelMagI
	SDSSModelMagZ
	SDSSFiberMagU
	SDSSFiberMagG
	SDSSFiberMagR
	SDSSFiberMagI
	SDSSFiberMagZ
	SDSSPetroRadR
	SDSSDeVRadR
	SDSSExpRadR
	SDSSRho
	SDSSType
	SDSSMode
	SDSSStatus
	SDSSNChild
	SDSSRowc
	SDSSColc
	SDSSFlags
	SDSSNumCols // 40: objID + 39 attributes
)

// SDSSSchema returns the PhotoTag-like schema.
func SDSSSchema() table.Schema {
	names := []struct {
		name string
		kind value.Kind
	}{
		{"objID", value.Int},
		{"fieldID", value.Int},
		{"ra", value.Float},
		{"dec", value.Float},
		{"run", value.Int},
		{"camcol", value.Int},
		{"field", value.Int},
		{"mjd", value.Float},
		{"g", value.Float},
		{"psfMag_u", value.Float},
		{"psfMag_g", value.Float},
		{"psfMag_r", value.Float},
		{"psfMag_i", value.Float},
		{"psfMag_z", value.Float},
		{"petroMag_u", value.Float},
		{"petroMag_g", value.Float},
		{"petroMag_r", value.Float},
		{"petroMag_i", value.Float},
		{"petroMag_z", value.Float},
		{"modelMag_u", value.Float},
		{"modelMag_g", value.Float},
		{"modelMag_r", value.Float},
		{"modelMag_i", value.Float},
		{"modelMag_z", value.Float},
		{"fiberMag_u", value.Float},
		{"fiberMag_g", value.Float},
		{"fiberMag_r", value.Float},
		{"fiberMag_i", value.Float},
		{"fiberMag_z", value.Float},
		{"petroRad_r", value.Float},
		{"deVRad_r", value.Float},
		{"expRad_r", value.Float},
		{"rho", value.Float},
		{"type", value.Int},
		{"mode", value.Int},
		{"status", value.Int},
		{"nChild", value.Int},
		{"rowc", value.Float},
		{"colc", value.Float},
		{"flags", value.Int},
	}
	cols := make([]table.Column, len(names))
	for i, n := range names {
		cols[i] = table.Column{Name: n.name, Kind: n.kind}
	}
	return table.NewSchema(cols...)
}

var psfBandOffsets = [5]float64{1.4, 0.0, -0.3, -0.5, -0.6}

// PhotoTag generates the catalog in survey order. Correlation groups:
//
//   - Position: objID, fieldID, run, mjd follow the survey order; dec
//     identifies the stripe (contiguous in survey order) while ra is the
//     position *within* a stripe, so neither coordinate alone pins down a
//     field but the (ra, dec) pair does — the Table 6 composite effect.
//   - Brightness: the 21 magnitude columns share a per-object base plus
//     a per-field systematic, so they predict one another strongly and
//     fieldID moderately.
//   - Size: petroRad/deVRad/expRad/rho share a per-object radius.
//   - Class: type follows size; status follows mode and type; nChild is
//     small and skewed.
//   - Noise: rowc, colc, flags carry no correlation.
func PhotoTag(cfg SDSSConfig) []value.Row {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	rows := make([]value.Row, 0, cfg.Rows())
	objID := int64(1000000)
	fieldID := int64(100)
	for stripe := 0; stripe < cfg.Stripes; stripe++ {
		decBase := -5.0 + float64(stripe)*2.5
		run := int64(2000 + stripe)
		for fpos := 0; fpos < cfg.FieldsPerStripe; fpos++ {
			raBase := float64(fpos) * (360.0 / float64(cfg.FieldsPerStripe))
			fieldSys := rng.NormFloat64() * 0.8 // per-field photometric systematic
			mjd := 51000 + float64(stripe*cfg.FieldsPerStripe+fpos)*0.3
			for o := 0; o < cfg.ObjsPerField; o++ {
				b := 14 + rng.Float64()*10    // base magnitude
				s := 0.5 + rng.ExpFloat64()*2 // base radius
				row := make(value.Row, SDSSNumCols)
				row[SDSSObjID] = value.NewInt(objID)
				row[SDSSFieldID] = value.NewInt(fieldID)
				row[SDSSRa] = value.NewFloat(raBase + rng.Float64()*(360.0/float64(cfg.FieldsPerStripe)))
				row[SDSSDec] = value.NewFloat(decBase + rng.Float64()*2.5)
				row[SDSSRun] = value.NewInt(run)
				row[SDSSCamcol] = value.NewInt(int64(1 + (stripe*cfg.FieldsPerStripe+fpos)%6))
				row[SDSSField] = value.NewInt(int64(fpos))
				row[SDSSMjd] = value.NewFloat(mjd + rng.Float64()*0.1)
				for band := 0; band < 5; band++ {
					mag := b + psfBandOffsets[band] + fieldSys + rng.NormFloat64()*0.15
					row[SDSSPsfMagU+band] = value.NewFloat(mag)
					row[SDSSPetroMagU+band] = value.NewFloat(mag + rng.NormFloat64()*0.1)
					row[SDSSModelMagU+band] = value.NewFloat(mag + rng.NormFloat64()*0.05)
					row[SDSSFiberMagU+band] = value.NewFloat(mag + rng.NormFloat64()*0.15)
				}
				row[SDSSG] = value.NewFloat(row[SDSSPsfMagG].F + rng.NormFloat64()*0.02)
				row[SDSSPetroRadR] = value.NewFloat(s + rng.NormFloat64()*0.1)
				row[SDSSDeVRadR] = value.NewFloat(s*0.8 + rng.NormFloat64()*0.1)
				row[SDSSExpRadR] = value.NewFloat(s*1.1 + rng.NormFloat64()*0.1)
				row[SDSSRho] = value.NewFloat(s*0.5 + rng.NormFloat64()*0.05)
				typ := int64(6) // star
				if s > 2.0 {
					typ = 3 // galaxy
				}
				if rng.Float64() < 0.05 {
					typ = int64(rng.Intn(5))
				}
				row[SDSSType] = value.NewInt(typ)
				mode := int64(1)
				r := rng.Float64()
				if r > 0.9 {
					mode = 2
				}
				if r > 0.98 {
					mode = 3
				}
				row[SDSSMode] = value.NewInt(mode)
				row[SDSSStatus] = value.NewInt(mode*16 + typ)
				nChild := int64(0)
				if rng.Float64() < 0.1 {
					nChild = int64(1 + rng.Intn(4))
				}
				row[SDSSNChild] = value.NewInt(nChild)
				row[SDSSRowc] = value.NewFloat(rng.Float64() * 1489)
				row[SDSSColc] = value.NewFloat(rng.Float64() * 2048)
				row[SDSSFlags] = value.NewInt(rng.Int63n(1 << 20))
				rows = append(rows, row)
				objID++
			}
			fieldID++
		}
	}
	return rows
}

package datagen

import (
	"math/rand"
	"strings"
)

// CorrelatedItem is one row of the Figure-6-style workload the parallel
// scan benchmarks and cmbench's parallel experiment share: a table
// clustered on Cat with the soft functional dependency Cat -> Subcat,
// and a wide Desc payload so sweeps stay page- rather than CPU-bound.
type CorrelatedItem struct {
	Cat, Subcat, Price int64
	Desc               string
}

// Domain constants of the correlated-items workload.
const (
	CorrelatedCats    = 4000
	CorrelatedSubcats = CorrelatedCats / 8
)

// CorrelatedItems generates the workload deterministically.
func CorrelatedItems(rows int) []CorrelatedItem {
	rng := rand.New(rand.NewSource(7))
	filler := strings.Repeat("x", 150) // realistic wide rows (item titles etc.)
	out := make([]CorrelatedItem, rows)
	for i := range out {
		c := int64(rng.Intn(CorrelatedCats))
		out[i] = CorrelatedItem{
			Cat:    c,
			Subcat: c / 8, // soft FD: subcat determined by cat
			Price:  int64(rng.Intn(10000)),
			Desc:   filler,
		}
	}
	return out
}

// CorrelatedLookup returns query q's IN-list of n subcategories
// scattered across the domain — answered through a CM as many disjoint
// clustered-bucket runs, the unit of work the parallel executor fans
// out.
func CorrelatedLookup(q, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64((q*131 + i*31) % CorrelatedSubcats)
	}
	return out
}

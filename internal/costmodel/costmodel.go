// Package costmodel implements the paper's analytical cost model
// (Section 4) — to our knowledge the first secondary-index cost model
// that embraces data correlations via the c_per_u statistic.
//
// All formulas translate page-access patterns into time using the two
// hardware constants of Table 1:
//
//	cost_scan         = seq_page_cost * p
//	cost_uncorrelated = n_lookups * u_tups * seek_cost * btree_height
//	c_pages           = c_tups / tups_per_page
//	cost_sorted       = min(n_lookups * c_per_u * (seek_cost*btree_height
//	                      + seq_page_cost*c_pages), cost_scan)
//
// The CM variant applies cost_sorted at clustered-bucket granularity:
// each CM lookup yields c_per_u clustered buckets, each requiring one
// clustered-index descent plus a sequential sweep of the bucket's pages.
package costmodel

import (
	"time"

	"repro/internal/sim"
)

// Hardware holds the I/O constants (Table 1).
type Hardware struct {
	SeekCost    time.Duration
	SeqPageCost time.Duration
}

// DefaultHardware returns the paper's measured values: 5.5 ms seek,
// 0.078 ms sequential page read.
func DefaultHardware() Hardware {
	return Hardware{SeekCost: sim.DefaultSeekCost, SeqPageCost: sim.DefaultSeqPageCost}
}

// TableStats are the per-table statistics of Table 1.
type TableStats struct {
	TupsPerPage float64
	TotalTups   float64
	BTreeHeight float64
}

// Pages returns the heap page count implied by the statistics.
func (t TableStats) Pages() float64 {
	if t.TupsPerPage <= 0 {
		return 0
	}
	return t.TotalTups / t.TupsPerPage
}

// PairStats are the per-attribute-pair statistics of Tables 1 and 2.
type PairStats struct {
	UTups float64 // avg tuples per Au value
	CTups float64 // avg tuples per Ac value
	CPerU float64 // avg distinct Ac values per Au value
}

// CPages returns c_tups/tups_per_page: pages scanned per clustered value.
func (p PairStats) CPages(t TableStats) float64 {
	if t.TupsPerPage <= 0 {
		return 0
	}
	return p.CTups / t.TupsPerPage
}

func dur(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

func ms(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// Scan predicts a full sequential table scan.
func Scan(h Hardware, t TableStats) time.Duration {
	return dur(ms(h.SeqPageCost) * t.Pages())
}

// PipelinedIndex predicts a pipelined (unsorted) secondary index scan,
// which seeks for every matching tuple: n_lookups * u_tups * seek_cost *
// btree_height.
func PipelinedIndex(h Hardware, t TableStats, p PairStats, nLookups int) time.Duration {
	return dur(float64(nLookups) * p.UTups * ms(h.SeekCost) * t.BTreeHeight)
}

// SortedIndex predicts a sorted (bitmap-style) secondary index scan in
// the presence of correlations, capped by the sequential scan cost.
func SortedIndex(h Hardware, t TableStats, p PairStats, nLookups int) time.Duration {
	cPages := p.CPages(t)
	cost := float64(nLookups) * p.CPerU *
		(ms(h.SeekCost)*t.BTreeHeight + ms(h.SeqPageCost)*cPages)
	if scan := ms(h.SeqPageCost) * t.Pages(); cost > scan {
		cost = scan
	}
	return dur(cost)
}

// CMStats describe a correlation map design at clustered-bucket
// granularity.
type CMStats struct {
	CPerU           float64 // clustered buckets per (bucketed) CM key
	PagesPerCBucket float64 // heap pages spanned by one clustered bucket
}

// CMLookup predicts a CM-driven lookup: per CM key, c_per_u clustered
// buckets are located through the clustered index (btree_height seeks
// each) and swept sequentially. Like SortedIndex it is capped by the
// table scan cost. The CM probe itself is memory-resident and free at
// this model's granularity.
func CMLookup(h Hardware, t TableStats, c CMStats, nLookups int) time.Duration {
	cost := float64(nLookups) * c.CPerU *
		(ms(h.SeekCost)*t.BTreeHeight + ms(h.SeqPageCost)*c.PagesPerCBucket)
	if scan := ms(h.SeqPageCost) * t.Pages(); cost > scan {
		cost = scan
	}
	return dur(cost)
}

// CMAggregate predicts the index-only aggregation path (cm-agg): the
// pure part of the answer folds from memory-resident per-entry
// statistics — free at this model's granularity, the same treatment
// CMLookup gives the probe — and each impure clustered bucket costs one
// clustered-index descent plus a sequential sweep of its pages. A fully
// pure plan therefore costs zero I/O, the term that makes covered
// aggregates always beat heap-visiting paths; like every other formula
// it is capped by the sequential scan cost.
func CMAggregate(h Hardware, t TableStats, c CMStats, nImpureBuckets int) time.Duration {
	cost := float64(nImpureBuckets) *
		(ms(h.SeekCost)*t.BTreeHeight + ms(h.SeqPageCost)*c.PagesPerCBucket)
	if scan := ms(h.SeqPageCost) * t.Pages(); cost > scan {
		cost = scan
	}
	return dur(cost)
}

package costmodel

import (
	"testing"
	"time"
)

// paperStats reproduces the TPC-H lineitem scale used by Figure 3:
// ~18M rows, ~136-byte tuples on 8K pages (~60 tups/page), height-3 tree.
func paperStats() (Hardware, TableStats) {
	return DefaultHardware(), TableStats{
		TupsPerPage: 60,
		TotalTups:   18e6,
		BTreeHeight: 3,
	}
}

func TestScanCost(t *testing.T) {
	h, ts := paperStats()
	got := Scan(h, ts)
	// 300k pages * 0.078ms = 23.4s.
	want := 23400 * time.Millisecond
	if got < want-time.Second || got > want+time.Second {
		t.Errorf("scan = %v, want ~%v", got, want)
	}
}

func TestPipelinedExplodesQuickly(t *testing.T) {
	h, ts := paperStats()
	p := PairStats{UTups: 7000, CTups: 7000, CPerU: 3}
	// Even one lookup costs u_tups * height seeks: far beyond a scan.
	if got := PipelinedIndex(h, ts, p, 1); got < Scan(h, ts) {
		t.Errorf("pipelined %v should exceed scan %v for 7000 matching tuples", got, Scan(h, ts))
	}
}

func TestSortedIndexCorrelatedVsUncorrelated(t *testing.T) {
	h, ts := paperStats()
	// Correlated (shipdate/receiptdate): c_per_u ~ 3 distinct receipt
	// dates per ship date.
	corr := PairStats{UTups: 7000, CTups: 7000, CPerU: 3}
	// Uncorrelated (clustered on orderkey): each shipdate's 7000 tuples
	// land on ~7000 distinct clustered values.
	unc := PairStats{UTups: 7000, CTups: 7000, CPerU: 7000}

	nc := SortedIndex(h, ts, corr, 10)
	nu := SortedIndex(h, ts, unc, 10)
	if nc >= nu {
		t.Errorf("correlated %v should beat uncorrelated %v", nc, nu)
	}
	// Uncorrelated must cap at scan cost (the paper's Figure 3 plateau).
	if nu != Scan(h, ts) {
		t.Errorf("uncorrelated 10-lookup cost %v should hit scan cap %v", nu, Scan(h, ts))
	}
	// The correlated case grows linearly in n_lookups below the cap.
	one := SortedIndex(h, ts, corr, 1)
	five := SortedIndex(h, ts, corr, 5)
	if five < 4*one || five > 6*one {
		t.Errorf("linear growth violated: 1->%v 5->%v", one, five)
	}
}

func TestSortedIndexScanCap(t *testing.T) {
	h, ts := paperStats()
	p := PairStats{UTups: 7000, CTups: 7000, CPerU: 7000}
	for _, n := range []int{1, 10, 100} {
		if got := SortedIndex(h, ts, p, n); got > Scan(h, ts) {
			t.Errorf("n=%d: %v exceeds scan cap", n, got)
		}
	}
}

func TestCPagesSmallClusteredDomain(t *testing.T) {
	// Few-valued clustered attribute: c_per_u small but c_pages huge —
	// the gender example from Section 5.3.
	h, ts := paperStats()
	gender := PairStats{UTups: 9e6, CTups: 9e6, CPerU: 2}
	got := SortedIndex(h, ts, gender, 1)
	// Scanning both genders' ranges is the whole table: cap at scan.
	if got != Scan(h, ts) {
		t.Errorf("few-valued clustered domain should cost a scan, got %v", got)
	}
	if cp := gender.CPages(ts); cp < 100000 {
		t.Errorf("c_pages = %v, expected huge", cp)
	}
}

func TestCMLookupMatchesSortedShape(t *testing.T) {
	h, ts := paperStats()
	cm := CMStats{CPerU: 3, PagesPerCBucket: 10}
	one := CMLookup(h, ts, cm, 1)
	ten := CMLookup(h, ts, cm, 10)
	if ten < 9*one || ten > 11*one {
		t.Errorf("CM cost not linear: %v -> %v", one, ten)
	}
	// Wider buckets only add sequential I/O: going 1 -> 40 pages per
	// bucket must cost ~39 * 0.078ms per bucket visit, not reseeks.
	narrow := CMLookup(h, ts, CMStats{CPerU: 2, PagesPerCBucket: 1}, 1)
	wide := CMLookup(h, ts, CMStats{CPerU: 2, PagesPerCBucket: 40}, 1)
	delta := wide - narrow
	want := time.Duration(2 * 39 * float64(h.SeqPageCost))
	if delta < want/2 || delta > want*2 {
		t.Errorf("bucket widening delta = %v, want ~%v", delta, want)
	}
	// And CM cost is also capped at scan.
	huge := CMLookup(h, ts, CMStats{CPerU: 1e6, PagesPerCBucket: 100}, 100)
	if huge != Scan(h, ts) {
		t.Errorf("CM cost should cap at scan, got %v", huge)
	}
}

func TestZeroStats(t *testing.T) {
	h := DefaultHardware()
	var ts TableStats
	if Scan(h, ts) != 0 {
		t.Error("empty table scan should be 0")
	}
	if (PairStats{}).CPages(ts) != 0 {
		t.Error("CPages of empty stats should be 0")
	}
}

func TestTable3Reproduction(t *testing.T) {
	// Table 3 of the paper: I/O cost of an SX6-style query (2 fieldID
	// values) as clustered bucketing widens. With c_per_u=1 and about
	// 48 pages per fieldID at bucket size 1, widening to 40 pages/bucket
	// adds purely sequential reads. The paper's numbers: 96 pages ->
	// 15.34ms, 160 pages -> 19.5ms. Our model: 2 lookups * 1 bucket *
	// (5.5ms*height + 0.078*pages/bucket).
	h, _ := paperStats()
	ts := TableStats{TupsPerPage: 100, TotalTups: 2e7, BTreeHeight: 1}
	base := CMLookup(h, ts, CMStats{CPerU: 1, PagesPerCBucket: 48}, 2)
	wide := CMLookup(h, ts, CMStats{CPerU: 1, PagesPerCBucket: 80}, 2)
	// base: 2*(5.5 + 48*0.078) = 18.5ms; paper reports 15.34 with
	// height folded differently — what matters is the delta shape:
	// +64 pages sequential = +5ms.
	delta := wide - base
	want := time.Duration(2 * 32 * float64(h.SeqPageCost))
	if delta < want-time.Millisecond || delta > want+time.Millisecond {
		t.Errorf("bucket widening delta = %v, want ~%v", delta, want)
	}
}

package filter

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// TestSketchNeverUndercounts is the count-min contract: for every
// inserted key, under any seed, the estimate is at least the true
// count (hash collisions can only inflate a row's counter).
func TestSketchNeverUndercounts(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xDEADBEEF, ^uint64(0)} {
		rng := rand.New(rand.NewSource(int64(seed) + 7))
		s := NewSketch(64, seed) // deliberately narrow: force collisions
		truth := make(map[string]uint32)
		for i := 0; i < 20000; i++ {
			key := []byte(fmt.Sprintf("key-%d", rng.Intn(500)))
			s.Add(Hash64(key, 0))
			truth[string(key)]++
		}
		for key, want := range truth {
			if got := s.Estimate(Hash64([]byte(key), 0)); got < want {
				t.Fatalf("seed %d: estimate(%q) = %d undercounts true %d", seed, key, got, want)
			}
		}
	}
}

// TestSketchHalveAges checks the aging step: halving rounds every
// counter down, so estimates never grow and a count of 1 decays to 0.
func TestSketchHalveAges(t *testing.T) {
	s := NewSketch(256, 9)
	hot, cold := Hash64([]byte("hot"), 0), Hash64([]byte("cold"), 0)
	for i := 0; i < 16; i++ {
		s.Add(hot)
	}
	s.Add(cold)
	before := s.Estimate(hot)
	s.Halve()
	if got := s.Estimate(hot); got > before/2+sketchDepth {
		t.Fatalf("halve left hot estimate %d (was %d)", got, before)
	}
	if got := s.Estimate(cold); got != 0 {
		t.Fatalf("halve left one-touch key at %d, want 0", got)
	}
}

// TestTinyLFUPrefersFrequent drives the admission filter with a hot
// key and a stream of one-touch keys: the hot key's estimate must
// dominate any cold key's, which is the whole admission decision.
func TestTinyLFUPrefersFrequent(t *testing.T) {
	tl := NewTinyLFU(256, 3)
	hot := Hash64([]byte("hot-page"), 0)
	for i := 0; i < 5000; i++ {
		tl.Touch(hot)
		tl.Touch(Hash64([]byte(fmt.Sprintf("sweep-%d", i)), 0))
	}
	coldest := Hash64([]byte("never-seen"), 0)
	if h, c := tl.Estimate(hot), tl.Estimate(coldest); h <= c {
		t.Fatalf("hot estimate %d not above unseen estimate %d", h, c)
	}
	if tl.Resets() == 0 {
		t.Fatalf("10000 touches on a 256-capacity filter closed no sample window")
	}
}

// TestBloomZeroFalseNegatives adds 50k random keys (with duplicate
// multiplicity), removes a third of them, and asserts every remaining
// member still answers MayContain — the one-sided bloom guarantee.
func TestBloomZeroFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := NewBloom(50000, 0.01, 77)
	live := make(map[string]int)
	for i := 0; i < 50000; i++ {
		key := fmt.Sprintf("member-%d", rng.Intn(30000))
		b.Add([]byte(key))
		live[key]++
	}
	removed := 0
	for key := range live {
		if removed >= len(live)/3 {
			break
		}
		for i := 0; i < live[key]; i++ {
			b.Remove([]byte(key))
		}
		delete(live, key)
		removed++
	}
	for key := range live {
		if !b.MayContain([]byte(key)) {
			t.Fatalf("false negative for live member %q", key)
		}
	}
}

// TestBloomFalsePositiveRate loads a filter to its design load and
// measures the false-positive rate over disjoint probe keys: it must
// stay within 2x the configured target (the sizing math plus
// power-of-two rounding keeps real rates at or below target, so 2x is
// a generous regression bound).
func TestBloomFalsePositiveRate(t *testing.T) {
	const n, target = 20000, 0.01
	b := NewBloom(n, target, 5)
	for i := 0; i < n; i++ {
		b.Add([]byte(fmt.Sprintf("in-%d", i)))
	}
	fp := 0
	const probes = 100000
	for i := 0; i < probes; i++ {
		if b.MayContain([]byte(fmt.Sprintf("out-%d", i))) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 2*target {
		t.Fatalf("false-positive rate %.4f exceeds 2x target %.4f", rate, target)
	}
}

// TestBloomRoundTrip serializes a loaded filter and asserts the
// reloaded filter answers identically over members and non-members.
func TestBloomRoundTrip(t *testing.T) {
	b := NewBloom(1000, 0.01, 123)
	for i := 0; i < 1000; i++ {
		b.Add([]byte(fmt.Sprintf("k%d", i)))
	}
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	r, err := ReadBloom(&buf)
	if err != nil {
		t.Fatalf("ReadBloom: %v", err)
	}
	if r.Members() != b.Members() {
		t.Fatalf("round trip changed member count: %d vs %d", r.Members(), b.Members())
	}
	for i := 0; i < 2000; i++ {
		key := []byte(fmt.Sprintf("k%d", i))
		if b.MayContain(key) != r.MayContain(key) {
			t.Fatalf("round trip changed answer for %q", key)
		}
	}
}

// TestReadBloomRejectsGarbage feeds ReadBloom a non-bloom stream and a
// truncated one; both must fail instead of building a bogus filter.
func TestReadBloomRejectsGarbage(t *testing.T) {
	if _, err := ReadBloom(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatalf("ReadBloom accepted zero garbage")
	}
	b := NewBloom(100, 0.01, 1)
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadBloom(bytes.NewReader(trunc)); err == nil {
		t.Fatalf("ReadBloom accepted a truncated stream")
	}
}

// FuzzSketch exercises the sketch over arbitrary key bytes and seeds:
// the estimate must never undercount the adds of the fuzzed key, and
// halving must never increase it.
func FuzzSketch(f *testing.F) {
	f.Add([]byte("page"), uint64(0), uint8(3))
	f.Add([]byte{}, uint64(42), uint8(1))
	f.Add([]byte{0xFF, 0x00, 0xFF}, ^uint64(0), uint8(9))
	f.Fuzz(func(t *testing.T, key []byte, seed uint64, reps uint8) {
		s := NewSketch(32, seed)
		h := Hash64(key, seed)
		n := uint32(reps%64) + 1
		for i := uint32(0); i < n; i++ {
			s.Add(h)
		}
		if got := s.Estimate(h); got < n {
			t.Fatalf("estimate %d undercounts %d adds (key %x, seed %d)", got, n, key, seed)
		}
		before := s.Estimate(h)
		s.Halve()
		if got := s.Estimate(h); got > before {
			t.Fatalf("halve increased estimate: %d -> %d", before, got)
		}
		tl := NewTinyLFU(16, seed)
		for i := uint32(0); i < n; i++ {
			tl.Touch(h)
		}
		if tl.Estimate(h) == 0 {
			t.Fatalf("touched key estimates 0 (key %x, seed %d)", key, seed)
		}
	})
}

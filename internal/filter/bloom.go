package filter

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Bloom is a counting bloom filter over byte keys, sized for an
// expected membership count and target false-positive rate. Counters
// (uint8) instead of bits make deletion possible — Remove decrements
// what Add incremented — which is what lets the engine maintain a
// bloom through the Algorithm-1 retraction hooks of indexes and CMs.
//
// Counters saturate sticky at 255: a saturated counter is never
// incremented or decremented again, so it errs permanently toward
// "may contain". The invariant that matters is one-sided and
// unconditional: a key whose every Add is matched by at most that many
// Removes can never produce a false negative.
type Bloom struct {
	counters []uint8
	mask     uint64
	k        int
	seed     uint64
	adds     int64
}

// bloomMinCounters keeps degenerate sizings (empty tables, tiny CMs)
// from building an always-colliding filter.
const bloomMinCounters = 1024

// NewBloom sizes a counting bloom filter for expectedN members at the
// target false-positive rate fpp (clamped to a sane range). The
// counter array is the standard -n*ln(p)/ln(2)^2 sizing rounded up to
// a power of two; k is the matching optimal hash count.
func NewBloom(expectedN int64, fpp float64, seed uint64) *Bloom {
	if expectedN < 1 {
		expectedN = 1
	}
	if fpp <= 0 || fpp >= 1 {
		fpp = 0.01
	}
	ln2 := math.Ln2
	m := int(math.Ceil(-float64(expectedN) * math.Log(fpp) / (ln2 * ln2)))
	if m < bloomMinCounters {
		m = bloomMinCounters
	}
	size := 1
	for size < m {
		size <<= 1
	}
	k := int(math.Round(float64(size) / float64(expectedN) * ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &Bloom{
		counters: make([]uint8, size),
		mask:     uint64(size) - 1,
		k:        k,
		seed:     seed,
	}
}

// slots derives the filter's k counter indexes for a key with double
// hashing (h1 + i*h2), the standard construction that preserves the
// bloom bound with two underlying hashes.
func (b *Bloom) slots(key []byte, visit func(i uint64)) {
	h1 := Hash64(key, b.seed)
	h2 := Hash64(key, b.seed^0x9E3779B97F4A7C15) | 1
	for i := 0; i < b.k; i++ {
		visit(h1 & b.mask)
		h1 += h2
	}
}

// Add records one occurrence of key.
func (b *Bloom) Add(key []byte) {
	b.slots(key, func(i uint64) {
		if b.counters[i] < math.MaxUint8 {
			b.counters[i]++
		}
	})
	b.adds++
}

// Remove retracts one prior Add of key. Saturated counters stay put
// (sticky toward "may contain"); a counter already at zero stays zero,
// which can only happen if Remove was called for a key never Added —
// a caller bug that still cannot produce false negatives for other
// keys' memberships beyond the ordinary collision rate.
func (b *Bloom) Remove(key []byte) {
	b.slots(key, func(i uint64) {
		if c := b.counters[i]; c > 0 && c < math.MaxUint8 {
			b.counters[i] = c - 1
		}
	})
	if b.adds > 0 {
		b.adds--
	}
}

// MayContain reports whether key may be a member: false is definitive
// (zero false negatives), true may be a false positive at roughly the
// configured rate while the filter holds about its design load.
func (b *Bloom) MayContain(key []byte) bool {
	out := true
	b.slots(key, func(i uint64) {
		if b.counters[i] == 0 {
			out = false
		}
	})
	return out
}

// Members returns the current net Add count (Adds minus Removes).
func (b *Bloom) Members() int64 { return b.adds }

// SizeBytes returns the counter array's footprint.
func (b *Bloom) SizeBytes() int64 { return int64(len(b.counters)) }

// bloomMagic opens a serialized bloom so a corrupted or misaligned
// checkpoint fails loudly instead of loading garbage counters.
const bloomMagic uint32 = 0xB100F17E

// WriteTo serializes the filter: magic, k, seed, counter length,
// net-add count, then the raw counters. The format is
// position-independent, so it embeds in larger checkpoint streams.
func (b *Bloom) WriteTo(w io.Writer) (int64, error) {
	var hdr [28]byte
	binary.LittleEndian.PutUint32(hdr[0:4], bloomMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(b.k))
	binary.LittleEndian.PutUint64(hdr[8:16], b.seed)
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(len(b.counters)))
	binary.LittleEndian.PutUint64(hdr[20:28], uint64(b.adds))
	n, err := w.Write(hdr[:])
	if err != nil {
		return int64(n), err
	}
	n2, err := w.Write(b.counters)
	return int64(n + n2), err
}

// ReadBloom deserializes a filter written by WriteTo.
func ReadBloom(r io.Reader) (*Bloom, error) {
	var hdr [28]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != bloomMagic {
		return nil, fmt.Errorf("filter: bad bloom magic %#x", m)
	}
	size := binary.LittleEndian.Uint32(hdr[16:20])
	if size == 0 || size&(size-1) != 0 || size > 1<<30 {
		return nil, fmt.Errorf("filter: bad bloom counter length %d", size)
	}
	b := &Bloom{
		k:        int(binary.LittleEndian.Uint32(hdr[4:8])),
		seed:     binary.LittleEndian.Uint64(hdr[8:16]),
		counters: make([]uint8, size),
		mask:     uint64(size) - 1,
		adds:     int64(binary.LittleEndian.Uint64(hdr[20:28])),
	}
	if b.k < 1 || b.k > 16 {
		return nil, fmt.Errorf("filter: bad bloom hash count %d", b.k)
	}
	if _, err := io.ReadFull(r, b.counters); err != nil {
		return nil, err
	}
	return b, nil
}

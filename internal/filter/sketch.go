// Package filter provides the compact probabilistic summaries the
// engine layers in front of expensive I/O: a count-min sketch and the
// W-TinyLFU admission policy built on it (the buffer pool's scan
// resistance), and a counting bloom filter (negative-probe skipping
// for secondary indexes and correlation maps).
//
// Everything here is deterministic — hashing is seeded explicitly and
// no structure consults a clock or a random source — so engine runs
// stay reproducible. None of the types are safe for concurrent use on
// their own; callers bring their own serialization (the pool's shard
// locks, the table latch).
package filter

// Hash64 hashes key bytes under a seed: FNV-1a folded through a
// splitmix-style finalizer, so single-byte differences avalanche
// across the word. All filter structures consume pre-hashed uint64
// keys derived from this (or any other well-mixed) hash.
func Hash64(key []byte, seed uint64) uint64 {
	h := seed ^ 14695981039346656037
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer, used to derive independent hash
// functions from one base hash.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// sketchDepth is the number of independent rows of a count-min sketch.
// Four rows put the estimate's error tail at (1/2)^4 of the stream per
// row width — the standard W-TinyLFU configuration.
const sketchDepth = 4

// Sketch is a count-min sketch: sketchDepth rows of power-of-two width,
// each indexed by an independently seeded hash of the key. Add
// increments one counter per row; Estimate returns the minimum across
// rows, which can only overcount (hash collisions inflate counters,
// nothing decrements them outside Halve). Counters are uint32, wide
// enough that saturation is unreachable at admission-control windows.
type Sketch struct {
	rows  [sketchDepth][]uint32
	seeds [sketchDepth]uint64
	shift uint // 64 - log2(width): multiply-shift row indexing
}

// NewSketch creates a sketch of at least width counters per row
// (rounded up to a power of two, minimum 16), seeded deterministically
// from seed.
func NewSketch(width int, seed uint64) *Sketch {
	w := 16
	for w < width {
		w <<= 1
	}
	shift := uint(64)
	for x := w; x > 1; x >>= 1 {
		shift--
	}
	s := &Sketch{shift: shift}
	for i := range s.rows {
		s.rows[i] = make([]uint32, w)
		s.seeds[i] = mix64(seed + uint64(i)*0x9E3779B97F4A7C15)
	}
	return s
}

// Width returns the per-row counter count.
func (s *Sketch) Width() int { return len(s.rows[0]) }

// index maps a hashed key to row i's counter slot.
func (s *Sketch) index(i int, h uint64) uint64 {
	return (mix64(h ^ s.seeds[i])) >> s.shift
}

// Add counts one occurrence of the hashed key.
func (s *Sketch) Add(h uint64) {
	for i := range s.rows {
		s.rows[i][s.index(i, h)]++
	}
}

// Estimate returns the key's estimated count: the row minimum, which
// is always >= the true count of occurrences added since the last
// Halve/Reset (collisions only inflate).
func (s *Sketch) Estimate(h uint64) uint32 {
	est := s.rows[0][s.index(0, h)]
	for i := 1; i < sketchDepth; i++ {
		if c := s.rows[i][s.index(i, h)]; c < est {
			est = c
		}
	}
	return est
}

// Halve ages the sketch by halving every counter (rounding down) — the
// periodic decay that lets admission frequencies track the recent
// window instead of all history.
func (s *Sketch) Halve() {
	for i := range s.rows {
		row := s.rows[i]
		for j := range row {
			row[j] >>= 1
		}
	}
}

// Reset zeroes every counter.
func (s *Sketch) Reset() {
	for i := range s.rows {
		row := s.rows[i]
		for j := range row {
			row[j] = 0
		}
	}
}

// TinyLFU is the W-TinyLFU admission filter: a doorkeeper bitset in
// front of a count-min sketch, aged by halving once per sample window.
// A key's first occurrence in a window only sets its doorkeeper bit;
// repeat occurrences count in the sketch, so one-touch keys (a scan's
// pages) never build frequency while genuinely hot keys do. Estimate
// adds the doorkeeper bit back, so a key seen once still beats a key
// not seen at all.
type TinyLFU struct {
	sketch   *Sketch
	door     []uint64
	doorMask uint64
	samples  int
	window   int
	resets   uint64
}

// NewTinyLFU sizes an admission filter for a cache of capacity
// entries: the sketch and doorkeeper hold ~8x capacity counters/bits
// (over-provisioned so a scan's one-touch keys can't inflate estimates
// through collisions within one window) and the aging window is 10x
// capacity touches (the standard TinyLFU sample size).
func NewTinyLFU(capacity int, seed uint64) *TinyLFU {
	if capacity < 16 {
		capacity = 16
	}
	s := NewSketch(8*capacity, seed)
	words := (s.Width() + 63) / 64
	return &TinyLFU{
		sketch:   s,
		door:     make([]uint64, words),
		doorMask: uint64(s.Width()) - 1,
		window:   10 * capacity,
	}
}

// doorBit locates the hashed key's doorkeeper bit.
func (t *TinyLFU) doorBit(h uint64) (word int, bit uint64) {
	i := mix64(h^0xA0761D6478BD642F) & t.doorMask
	return int(i >> 6), 1 << (i & 63)
}

// Touch records one access to the hashed key and reports whether the
// sample window closed (the caller's cue to count a sketch reset): at
// window boundaries the sketch halves and the doorkeeper clears.
func (t *TinyLFU) Touch(h uint64) (aged bool) {
	w, b := t.doorBit(h)
	if t.door[w]&b == 0 {
		t.door[w] |= b
	} else {
		t.sketch.Add(h)
	}
	t.samples++
	if t.samples >= t.window {
		t.sketch.Halve()
		for i := range t.door {
			t.door[i] = 0
		}
		t.samples = 0
		t.resets++
		return true
	}
	return false
}

// Estimate returns the hashed key's frequency estimate in the current
// window: the sketch estimate plus its doorkeeper bit.
func (t *TinyLFU) Estimate(h uint64) uint32 {
	est := t.sketch.Estimate(h)
	if w, b := t.doorBit(h); t.door[w]&b != 0 {
		est++
	}
	return est
}

// Resets returns how many sample windows have closed (sketch halvings).
func (t *TinyLFU) Resets() uint64 { return t.resets }

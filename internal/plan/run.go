package plan

import (
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/heap"
	"repro/internal/value"
)

// RowSink receives final result rows in output shape: projected columns
// for plain selects, canonical (GroupBy..., Aggs...) rows for aggregate
// specs. A row is only valid for the duration of the call (executors
// reuse scratch rows); return false to stop early.
type RowSink func(row value.Row) bool

// Run executes the optimized tree with the given scan fan-out,
// streaming result rows to sink. Callers must hold the table latch in
// shared mode across Optimize and Run.
func (tr *Tree) Run(workers int, sink RowSink) error {
	if !tr.optimized {
		return fmt.Errorf("plan: Run before Optimize")
	}
	if tr.spec.IsAggregate() {
		return tr.runAggregate(workers, sink)
	}
	if len(tr.spec.OrderBy) == 0 {
		return tr.runPlain(workers, sink)
	}
	return tr.runSorted(workers, sink)
}

// Rows is Run with the result buffered; rows are cloned out of the
// executor's scratch space.
func (tr *Tree) Rows(workers int) ([]value.Row, error) {
	var out []value.Row
	err := tr.Run(workers, func(r value.Row) bool {
		out = append(out, r.Clone())
		return true
	})
	return out, err
}

// runAccess dispatches the access leg of the tree: the single
// conjunction's plan, or the OR plan (RID-dedup union / filtered-scan
// fallback), with the scan-level projection pushed down.
func (tr *Tree) runAccess(scanProj []int, workers int, emit exec.RowFunc) error {
	obs := tr.scanObs()
	if tr.useOr {
		oq := exec.OrQuery{Disjuncts: tr.spec.Disjuncts, Proj: scanProj, Snap: tr.spec.Snap, Obs: obs, Ctx: tr.spec.Ctx}
		return tr.orPlan.RunParallel(tr.t, oq, workers, emit)
	}
	q := tr.spec.Disjuncts[0]
	q.Proj = scanProj
	q.Obs = obs
	return tr.single.RunParallel(tr.t, q, workers, emit)
}

// scanObs picks where the access path's physical-work tallies go: the
// analyzed run's private observer when one is active (its totals fold
// into the spec's engine-wide observer afterwards), otherwise the
// spec's observer directly (nil when metrics are off).
func (tr *Tree) scanObs() *exec.ScanObs {
	if tr.an != nil {
		return &tr.an.obs
	}
	return tr.spec.Obs
}

// runPlain evaluates an unordered plain select: rows stream out of the
// access path in physical order, the projection narrows them in place,
// and a positive limit stops the scan early through the executor's
// cancellation path.
func (tr *Tree) runPlain(workers int, sink RowSink) error {
	proj := tr.spec.Proj
	var projScratch value.Row
	if proj != nil {
		projScratch = make(value.Row, len(proj))
	}
	count := 0
	emit := func(_ heap.RID, row value.Row) bool {
		if tr.an != nil {
			tr.an.accessRows++
		}
		out := row
		if proj != nil {
			for i, c := range proj {
				projScratch[i] = row[c]
			}
			out = projScratch
		}
		if !sink(out) {
			return false
		}
		count++
		return tr.spec.Limit <= 0 || count < tr.spec.Limit
	}
	start := tr.an.now()
	err := tr.runAccess(proj, workers, emit)
	tr.an.addAccessTime(start)
	return err
}

// runSorted evaluates an ordered plain select: the scan materializes
// the projection plus the order columns and the sorter buffers compact
// rows (bounded top-K under a limit), so sorted queries keep the memory
// economics of projection pushdown; the sorted rows project down to the
// output shape on emission.
func (tr *Tree) runSorted(workers int, sink RowSink) error {
	spec := tr.spec
	proj := spec.Proj
	orderKeys := make([]exec.OrderKey, len(spec.OrderBy))
	for i, o := range spec.OrderBy {
		orderKeys[i] = exec.OrderKey{Col: o.Col, Desc: o.Desc}
	}
	scanProj := proj
	sortKeys := orderKeys
	compact := proj // compact row layout: proj columns, then order-only columns
	if proj != nil {
		compact = append([]int(nil), proj...)
		sortKeys = make([]exec.OrderKey, len(orderKeys))
		for i, k := range orderKeys {
			pos := -1
			for j, c := range compact {
				if c == k.Col {
					pos = j
					break
				}
			}
			if pos < 0 {
				pos = len(compact)
				compact = append(compact, k.Col)
			}
			sortKeys[i] = exec.OrderKey{Col: pos, Desc: k.Desc}
		}
		scanProj = compact
	}
	sorter := exec.NewSorter(sortKeys, spec.Limit)
	var compactScratch value.Row
	if proj != nil {
		compactScratch = make(value.Row, len(compact))
	}
	emit := func(_ heap.RID, row value.Row) bool {
		if tr.an != nil {
			tr.an.accessRows++
		}
		if proj == nil {
			sorter.Add(row)
			return true
		}
		for i, c := range compact {
			compactScratch[i] = row[c]
		}
		sorter.Add(compactScratch) // Sorter clones what it retains
		return true
	}
	start := tr.an.now()
	if err := tr.runAccess(scanProj, workers, emit); err != nil {
		return err
	}
	tr.an.addAccessTime(start)
	sortStart := tr.an.now()
	sorted := sorter.Rows()
	if tr.an != nil {
		tr.an.sortIn = tr.an.accessRows
		tr.an.sortOut = int64(len(sorted))
		tr.an.sortTime = time.Since(sortStart)
	}
	for _, row := range sorted {
		out := row
		if proj != nil {
			out = row[:len(proj)] // compact layout: projection is the prefix
		}
		if !sink(out) {
			break
		}
	}
	return nil
}

// runAggregate evaluates an aggregate spec: the cm-agg node answers
// from CM bucket statistics (sweeping only impure buckets), otherwise
// the streaming grouped fold runs over the access plan's pages; the
// small group rows then pass HAVING, sort and limit.
func (tr *Tree) runAggregate(workers int, sink RowSink) error {
	spec := tr.spec
	var rows []value.Row
	var err error
	start := tr.an.now()
	if tr.cmagg != nil {
		tr.cmagg.SetObs(tr.scanObs())
		rows, err = tr.cmagg.Run(tr.t, workers)
	} else {
		oq := exec.OrQuery{Disjuncts: spec.Disjuncts, Snap: spec.Snap, Obs: tr.scanObs(), Ctx: spec.Ctx}
		rows, err = exec.AggregateOr(tr.t, oq, tr.orPlan, workers, spec.Aggs, spec.GroupBy)
	}
	tr.an.addAccessTime(start)
	if err != nil {
		return err
	}
	if tr.an != nil {
		tr.an.groups = int64(len(rows))
	}
	if len(spec.Having) > 0 {
		kept := rows[:0]
		for _, r := range rows {
			ok := true
			for i := range spec.Having {
				if !spec.Having[i].Matches(r) {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, r)
			}
		}
		rows = kept
	}
	if tr.an != nil {
		tr.an.havingOut = int64(len(rows))
	}
	if len(spec.OrderBy) > 0 {
		keys := make([]exec.OrderKey, len(spec.OrderBy))
		for i, o := range spec.OrderBy {
			keys[i] = exec.OrderKey{Col: o.Col, Desc: o.Desc}
		}
		sortStart := tr.an.now()
		sorter := exec.NewSorter(keys, spec.Limit)
		if tr.an != nil {
			tr.an.sortIn = int64(len(rows))
		}
		for _, r := range rows {
			sorter.Add(r)
		}
		rows = sorter.Rows()
		if tr.an != nil {
			tr.an.sortOut = int64(len(rows))
			tr.an.sortTime = time.Since(sortStart)
		}
	} else if spec.Limit > 0 && len(rows) > spec.Limit {
		rows = rows[:spec.Limit]
	}
	for _, r := range rows {
		if !sink(r) {
			break
		}
	}
	return nil
}

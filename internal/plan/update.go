package plan

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/exec"
	"repro/internal/heap"
	"repro/internal/table"
	"repro/internal/value"
)

// UpdateTree is a compiled UPDATE statement: an update node on top of
// the read plan that finds the matching rows. The read side goes through
// the same Build → Optimize pipeline as a select, so UPDATE ... WHERE
// picks its access path with the Section 4 cost model and EXPLAIN shows
// exactly the chain Run executes.
type UpdateTree struct {
	// Root is the operator chain: the update node above the read plan.
	Root *Node

	inner *Tree
	sets  []exec.SetClause
}

// CompileUpdate builds and optimizes an UPDATE: the spec is the read
// side (WHERE clause in Disjuncts; aggregates, ordering, limits and
// projections are rejected — an UPDATE touches whole rows), sets are the
// assignments. Callers Run the result without holding the table latch.
func CompileUpdate(t *table.Table, spec Spec, sets []exec.SetClause, sp exec.StatsProvider) (*UpdateTree, error) {
	if spec.IsAggregate() || len(spec.Having) > 0 {
		return nil, fmt.Errorf("plan: UPDATE cannot aggregate")
	}
	if len(spec.OrderBy) > 0 || spec.Limit > 0 {
		return nil, fmt.Errorf("plan: UPDATE takes no ORDER BY or LIMIT")
	}
	if spec.Proj != nil {
		return nil, fmt.Errorf("plan: UPDATE takes no projection")
	}
	if err := exec.CheckSets(t.Schema(), sets); err != nil {
		return nil, err
	}
	inner, err := Compile(t, spec, sp)
	if err != nil {
		return nil, err
	}
	sch := t.Schema()
	parts := make([]string, len(sets))
	for i, s := range sets {
		parts[i] = fmt.Sprintf("%s = %v", sch.Cols[s.Col].Name, s.Val)
	}
	return &UpdateTree{
		Root: &Node{
			Kind:   KindUpdate,
			Detail: "set " + strings.Join(parts, ", "),
			Child:  inner.Root,
		},
		inner: inner,
		sets:  sets,
	}, nil
}

// Run executes the UPDATE with the given scan fan-out and returns the
// number of rows updated. The read phase streams matching rows in
// physical heap order (identical at any worker count), so the resulting
// table state is byte-identical for serial and parallel execution. The
// caller must not hold the table latch: the writer statement takes the
// writer gate for the whole read + write span and latches per batch, so
// concurrent readers are never blocked for more than one batch.
func (ut *UpdateTree) Run(workers int) (int64, error) {
	return exec.UpdateByScan(ut.inner.spec.Ctx, ut.inner.t, func(fn exec.RowFunc) error {
		return ut.inner.runAccess(nil, workers, fn)
	}, ut.sets)
}

// RunAnalyzed executes the UPDATE like Run while measuring per-node
// actuals — it really writes. The read chain's actuals mirror a
// select's; the update node reports rows written and the whole
// statement's wall time (read, write batches and publish together,
// since the MVCC writer interleaves them).
func (ut *UpdateTree) RunAnalyzed(workers int) (int64, *Analysis, error) {
	tr := ut.inner
	st := &analysisState{}
	tr.an = st
	defer func() { tr.an = nil }()

	pool := tr.t.Pool()
	disk := pool.Disk()
	d0, p0 := disk.Stats(), pool.Stats()
	start := time.Now()
	affected, err := exec.UpdateByScan(tr.spec.Ctx, tr.t, func(fn exec.RowFunc) error {
		accessStart := time.Now()
		defer func() { st.accessTime += time.Since(accessStart) }()
		return tr.runAccess(nil, workers, func(rid heap.RID, row value.Row) bool {
			st.accessRows++
			return fn(rid, row)
		})
	}, ut.sets)
	elapsed := time.Since(start)
	d1, p1 := disk.Stats(), pool.Stats()
	if err != nil {
		return affected, nil, err
	}
	tr.spec.Obs.Add(st.obs.Tuples.Load(), st.obs.Rows.Load(), st.obs.Pages.Load())
	st.outRows = affected

	an := &Analysis{
		TotalRows:      affected,
		Elapsed:        elapsed,
		DiskReads:      d1.Reads - d0.Reads,
		BufferHits:     p1.Hits - p0.Hits,
		BufferMisses:   p1.Misses - p0.Misses,
		TuplesExamined: st.obs.Tuples.Load(),
		HeapPages:      st.obs.Pages.Load(),
	}
	an.Nodes = tr.nodeActuals(st, an)
	// The update node sits above the read chain; its phase time is the
	// whole statement (the writer interleaves reading and writing).
	an.Nodes = append(an.Nodes, NodeActuals{Rows: affected, TuplesIn: st.accessRows, Elapsed: elapsed})
	return affected, an, nil
}

// Explain flattens the update tree for EXPLAIN: the read plan's info
// with the update node appended at the top of the chain.
func (ut *UpdateTree) Explain() Info {
	info := ut.inner.Explain()
	info.Nodes = append(info.Nodes, NodeInfo{Kind: ut.Root.Kind.String(), Detail: ut.Root.Detail})
	return info
}

package plan

import (
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/value"
)

// This file implements EXPLAIN ANALYZE's measurement layer. An
// analyzed run executes the exact same code path as Run — the hooks in
// the run functions record into an analysisState only when one is
// active — so the actuals can never drift from real execution. Pages
// and buffer hits come from two sources with different scopes: the
// tree's private exec.ScanObs counts the heap page visits and tuple
// filter evaluations of this query's own scans (chunk-flushed, exact),
// while the sim.Disk and buffer.Pool deltas captured around the run
// are engine-wide — exact when the query runs alone, approximate under
// concurrent load (noted in the README).

// analysisState accumulates one analyzed run's measurements. The
// fields written by plan-layer code (accessRows, phase times, ...) are
// only touched from the emitting goroutine — collectEmit streams rows
// serially — so they are plain ints; scan workers count into obs,
// which is atomic.
type analysisState struct {
	obs        exec.ScanObs
	accessRows int64 // rows out of the access leg (before sort/limit truncation)
	outRows    int64 // rows delivered to the caller's sink
	groups     int64 // aggregate rows out of the fold (before HAVING)
	havingOut  int64 // aggregate rows surviving HAVING
	sortIn     int64
	sortOut    int64
	accessTime time.Duration
	sortTime   time.Duration
}

// now returns the current time when analysis is active, else zero —
// the hooks stay one branch on plain runs.
func (st *analysisState) now() time.Time {
	if st == nil {
		return time.Time{}
	}
	return time.Now()
}

// addAccessTime accumulates the access/fold phase duration started at
// start (no-op when analysis is inactive).
func (st *analysisState) addAccessTime(start time.Time) {
	if st != nil && !start.IsZero() {
		st.accessTime += time.Since(start)
	}
}

// NodeActuals is one operator's measured execution, paired by position
// with the Info.Nodes entry of the same tree.
type NodeActuals struct {
	// Rows is the node's output cardinality (for the update node: rows
	// written).
	Rows int64
	// TuplesIn is the node's input cardinality where it differs from
	// Rows: tuples examined for access/filter nodes, rows folded for
	// agg, rows sorted for sort. Zero for pure pass-through nodes.
	TuplesIn int64
	// HeapPages counts heap page visits (access nodes only).
	HeapPages int64
	// DiskReads is the sim.Disk page-read delta during the run,
	// attributed to the access node (engine-wide; exact when the query
	// runs alone).
	DiskReads uint64
	// BufferHits is the buffer-pool hit delta during the run
	// (attributed like DiskReads).
	BufferHits uint64
	// Elapsed is the node's phase wall time. Streaming plans fuse
	// filter/project/agg into the access sweep, so their shared phase
	// reports on the access node and fused nodes show zero.
	Elapsed time.Duration
	// BloomSkips counts point probes a bloom filter pruned for this
	// query (access nodes only): lookups answered empty with zero tree
	// descents and zero page reads.
	BloomSkips int64
}

// Analysis is an analyzed run's full measurement: per-node actuals
// aligned with Explain().Nodes plus run-wide totals.
type Analysis struct {
	// Nodes holds one NodeActuals per Explain().Nodes entry, same order.
	Nodes []NodeActuals
	// TotalRows is the number of rows delivered to the sink.
	TotalRows int64
	// Elapsed is the whole run's wall time.
	Elapsed time.Duration
	// DiskReads and BufferHits/BufferMisses are engine-wide deltas
	// captured around the run (see NodeActuals.DiskReads).
	DiskReads    uint64
	BufferHits   uint64
	BufferMisses uint64
	// TuplesExamined and HeapPages total the query's own scan work
	// (exact, from the per-chunk tallies).
	TuplesExamined int64
	HeapPages      int64
	// BloomSkips totals the point probes bloom filters pruned during
	// the run (exact, counted at the probe sites).
	BloomSkips int64
}

// RunAnalyzed executes the optimized tree like Run while measuring
// per-operator actuals, streaming result rows to sink and returning
// the measurements. The run itself is the real one — side effects,
// locking discipline and results are identical to Run.
func (tr *Tree) RunAnalyzed(workers int, sink RowSink) (*Analysis, error) {
	if !tr.optimized {
		return nil, fmt.Errorf("plan: RunAnalyzed before Optimize")
	}
	st := &analysisState{}
	tr.an = st
	defer func() { tr.an = nil }()

	pool := tr.t.Pool()
	disk := pool.Disk()
	d0, p0 := disk.Stats(), pool.Stats()
	start := time.Now()
	err := tr.Run(workers, func(row value.Row) bool {
		st.outRows++
		return sink(row)
	})
	elapsed := time.Since(start)
	d1, p1 := disk.Stats(), pool.Stats()
	if err != nil {
		return nil, err
	}
	// Fold the private scan observations into the engine-wide counters
	// so analyzed queries still show up in SHOW METRICS totals.
	tr.spec.Obs.Add(st.obs.Tuples.Load(), st.obs.Rows.Load(), st.obs.Pages.Load())
	tr.spec.Obs.AddBlooms(st.obs.Blooms.Load())

	an := &Analysis{
		TotalRows:      st.outRows,
		Elapsed:        elapsed,
		DiskReads:      d1.Reads - d0.Reads,
		BufferHits:     p1.Hits - p0.Hits,
		BufferMisses:   p1.Misses - p0.Misses,
		TuplesExamined: st.obs.Tuples.Load(),
		HeapPages:      st.obs.Pages.Load(),
		BloomSkips:     st.obs.Blooms.Load(),
	}
	an.Nodes = tr.nodeActuals(st, an)
	return an, nil
}

// nodeActuals distributes the run's measurements over the operator
// chain, one entry per Explain().Nodes row (bottom-up order).
func (tr *Tree) nodeActuals(st *analysisState, an *Analysis) []NodeActuals {
	var out []NodeActuals
	// Walk bottom-up like Explain: collect the chain, then reverse.
	var chain []*Node
	for n := tr.Root; n != nil; n = n.Child {
		chain = append(chain, n)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		out = append(out, tr.actualsFor(chain[i].Kind, st, an))
	}
	return out
}

// actualsFor computes one node kind's measured row. The row counts
// thread through the chain the way rows flowed at run time: access
// emits accessRows (or groups for cm-agg), the fused filter reports
// the scan's tuple examinations, aggregation reports folded rows in
// and groups out, HAVING/sort/limit report their survivors.
func (tr *Tree) actualsFor(k Kind, st *analysisState, an *Analysis) NodeActuals {
	tuples := st.obs.Tuples.Load()
	scanRows := st.obs.Rows.Load()
	switch k {
	case KindScan, KindUnion:
		rows := st.accessRows
		if tr.spec.IsAggregate() {
			// The fold consumes scan survivors without emitting rows
			// through the plan layer; the scan's own count is exact.
			rows = scanRows
		}
		return NodeActuals{
			Rows:       rows,
			TuplesIn:   tuples,
			HeapPages:  st.obs.Pages.Load(),
			DiskReads:  an.DiskReads,
			BufferHits: an.BufferHits,
			Elapsed:    st.accessTime,
			BloomSkips: st.obs.Blooms.Load(),
		}
	case KindCMAgg:
		// Index-only answers show zero physical work here; a hybrid
		// sweep's pages/tuples come from the impure-bucket leg.
		return NodeActuals{
			Rows:       st.groups,
			TuplesIn:   tuples,
			HeapPages:  st.obs.Pages.Load(),
			DiskReads:  an.DiskReads,
			BufferHits: an.BufferHits,
			Elapsed:    st.accessTime,
			BloomSkips: st.obs.Blooms.Load(),
		}
	case KindFilter:
		return NodeActuals{Rows: scanRows, TuplesIn: tuples}
	case KindProject:
		rows := st.accessRows
		if tr.spec.IsAggregate() {
			rows = scanRows
		}
		return NodeActuals{Rows: rows}
	case KindGroupAgg:
		return NodeActuals{Rows: st.groups, TuplesIn: scanRows}
	case KindHaving:
		return NodeActuals{Rows: st.havingOut, TuplesIn: st.groups}
	case KindSort:
		return NodeActuals{Rows: st.sortOut, TuplesIn: st.sortIn, Elapsed: st.sortTime}
	case KindLimit:
		return NodeActuals{Rows: st.outRows}
	case KindUpdate:
		return NodeActuals{Rows: st.outRows}
	default:
		return NodeActuals{}
	}
}

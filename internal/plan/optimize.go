package plan

import (
	"fmt"
	"strings"

	"repro/internal/costmodel"
	"repro/internal/exec"
)

// Optimize finalizes the tree: it chooses the access path with the
// Section 4 cost model (or resolves a forced method to its structure),
// attempts the cm-agg lowering for covered aggregates, and materializes
// the operator node chain EXPLAIN prints. It must run under the same
// shared table latch hold as Run.
func (tr *Tree) Optimize(sp exec.StatsProvider) error {
	spec := tr.spec
	if len(spec.Disjuncts) > 1 {
		tr.useOr = true
		oq := exec.OrQuery{Disjuncts: spec.Disjuncts}
		tr.orPlan = exec.ChooseOrPlan(tr.t, oq, sp)
		tr.cost, tr.costEstimated = tr.orPlan.Cost, true
		if !tr.orPlan.Union {
			tr.method = exec.MethodTableScan
		}
	} else {
		p, err := tr.singlePlan(spec.Disjuncts[0], sp)
		if err != nil {
			return err
		}
		tr.single = p
		tr.method, tr.uses = p.Method, structureName(p)
		if spec.Force == Auto {
			tr.cost, tr.costEstimated = p.Cost, true
		}
		if spec.IsAggregate() {
			// The aggregate executor runs through the OR plan shape even
			// for one conjunction: a probe method unions its own RIDs, a
			// table scan sweeps the heap.
			if p.Method == exec.MethodTableScan {
				tr.orPlan = exec.OrPlan{Union: false, Cost: p.Cost}
			} else {
				tr.orPlan = exec.OrPlan{Union: true, Plans: []exec.Plan{p}, Cost: p.Cost}
			}
		}
	}

	// The cm-agg lowering: under Auto, a single-conjunction aggregate
	// whose predicates, grouping and aggregated columns are all covered
	// by one CM answers from the bucket statistics when the §4 model says
	// the hybrid remainder (impure buckets only) beats the best
	// heap-visiting path. A fully pure plan costs zero I/O and always
	// wins. While a writer statement is mid-flight the CM directory
	// already carries the statement's additions (its retractions are
	// deferred to publish), so the statistics describe a state no snapshot
	// can see — the lowering stands down and the heap-visiting paths,
	// which re-filter through tuple visibility, answer instead.
	if spec.IsAggregate() && spec.Force == Auto && !tr.useOr && !tr.t.WriterActive() {
		h := costmodel.DefaultHardware()
		ts := sp.TableStats(tr.t)
		for _, cm := range tr.t.CMs() {
			// PlanCMAgg walks the whole (memory-resident) CM directory and
			// eagerly folds the pure statistics — the same full-walk
			// economics the range CM scan already accepts (LookupMatch),
			// paid only for CMs that pass the cheap eligibility checks.
			// If planning latency over very large directories ever
			// matters, split classification (costing) from the fold.
			cp, ok := exec.PlanCMAgg(tr.t, cm, spec.Disjuncts[0], spec.Aggs, spec.GroupBy)
			if !ok {
				continue
			}
			bps := tr.t.BucketPairStatsFor(cm)
			cost := costmodel.CMAggregate(h, ts, costmodel.CMStats{
				CPerU:           bps.CPerU,
				PagesPerCBucket: bps.PagesPerCBucket,
			}, len(cp.ImpureBuckets))
			// Engage when the §4 model says the hybrid remainder is
			// strictly cheaper than the best heap-visiting path — at the
			// cap (hybrid sweep ~ full scan) the simpler plan wins the
			// tie — or when the alternative is a CM scan of the same CM,
			// which cm-agg dominates outright whenever the statistics
			// retire any of the buckets that scan would sweep (the fold
			// is free; the sweep is a strict subset).
			dominatesCMScan := tr.single.Method == exec.MethodCM && tr.single.CM == cm &&
				len(cp.ImpureBuckets) < cp.MatchedBuckets
			if (cost >= tr.single.Cost && !dominatesCMScan) || (tr.cmagg != nil && cost >= tr.cost) {
				continue
			}
			tr.cmagg = cp
			tr.cost, tr.costEstimated = cost, true
		}
		if tr.cmagg != nil {
			tr.uses = tr.cmagg.CM.Spec().Name
		}
	}

	tr.decodedCols = tr.computeDecodedCols()
	tr.buildNodes()
	tr.optimized = true
	return nil
}

// singlePlan resolves one conjunction's access plan: the cost model's
// choice under Auto, or the first applicable structure for a forced
// method.
func (tr *Tree) singlePlan(q exec.Query, sp exec.StatsProvider) (exec.Plan, error) {
	switch tr.spec.Force {
	case Auto:
		return exec.ChoosePlan(tr.t, q, sp), nil
	case ForceTableScan:
		return exec.Plan{Method: exec.MethodTableScan}, nil
	case ForceSorted, ForcePipelined:
		for _, ix := range tr.t.Indexes() {
			if q.IndexablePredOn(ix.Cols[0]) != nil {
				m := exec.MethodSorted
				if tr.spec.Force == ForcePipelined {
					m = exec.MethodPipelined
				}
				return exec.Plan{Method: m, Index: ix}, nil
			}
		}
		return exec.Plan{}, fmt.Errorf("plan: no secondary index applies to %s", q.String())
	case ForceCM:
		for _, cm := range tr.t.CMs() {
			for _, c := range cm.Spec().UCols {
				if q.IndexablePredOn(c) != nil {
					return exec.Plan{Method: exec.MethodCM, CM: cm}, nil
				}
			}
		}
		return exec.Plan{}, fmt.Errorf("plan: no CM applies to %s", q.String())
	default:
		return exec.Plan{}, fmt.Errorf("plan: unknown access method %v", tr.spec.Force)
	}
}

// structureName names the index or CM a plan reads, if any.
func structureName(p exec.Plan) string {
	switch p.Method {
	case exec.MethodSorted, exec.MethodPipelined:
		return p.Index.Name
	case exec.MethodCM:
		return p.CM.Spec().Name
	default:
		return ""
	}
}

// describePlan renders one access plan for node details.
func describePlan(p exec.Plan) string {
	if name := structureName(p); name != "" {
		return fmt.Sprintf("%s(%s)", p.Method, name)
	}
	return p.Method.String()
}

// computeDecodedCols mirrors what execution materializes per surviving
// tuple: the projection (plus predicated and order columns) for plain
// selects, the aggregated + grouped + predicated columns for heap
// aggregation, and the hybrid sweep's column set (zero when fully
// index-only) for cm-agg.
func (tr *Tree) computeDecodedCols() int {
	spec := tr.spec
	ncols := len(tr.t.Schema().Cols)
	if tr.cmagg != nil {
		if len(tr.cmagg.ImpureBuckets) == 0 {
			return 0
		}
		return len(tr.cmagg.NeedCols)
	}
	var scanProj []int
	if spec.IsAggregate() {
		scanProj = []int{}
		for _, sp := range spec.Aggs {
			if sp.Col >= 0 {
				scanProj = append(scanProj, sp.Col)
			}
		}
		scanProj = append(scanProj, spec.GroupBy...)
	} else if spec.Proj != nil {
		scanProj = append([]int(nil), spec.Proj...)
		for _, o := range spec.OrderBy {
			scanProj = append(scanProj, o.Col)
		}
	}
	if tr.useOr {
		oq := exec.OrQuery{Disjuncts: spec.Disjuncts, Proj: scanProj}
		return len(oq.MaterializeCols(ncols))
	}
	q := spec.Disjuncts[0]
	q.Proj = scanProj
	return len(q.MaterializeCols(ncols))
}

// buildNodes materializes the operator chain from the physical
// decisions, bottom-up: access (scan | union | cm-agg), filter,
// project, agg, having, sort, limit — each present only when it does
// work.
func (tr *Tree) buildNodes() {
	spec := tr.spec
	var chain []*Node

	hasPreds := false
	for _, q := range spec.Disjuncts {
		if len(q.Preds) > 0 {
			hasPreds = true
		}
	}

	switch {
	case tr.cmagg != nil:
		chain = append(chain, &Node{Kind: KindCMAgg, Detail: tr.cmagg.Describe(), Cost: tr.cost})
	case tr.useOr && tr.orPlan.Union:
		parts := make([]string, len(tr.orPlan.Plans))
		for i, p := range tr.orPlan.Plans {
			parts[i] = describePlan(p)
		}
		chain = append(chain, &Node{Kind: KindUnion, Cost: tr.cost, Detail: fmt.Sprintf(
			"%d disjuncts, rid-dedup union: %s", len(tr.orPlan.Plans), strings.Join(parts, " + "))})
	case tr.useOr:
		chain = append(chain, &Node{Kind: KindScan, Cost: tr.cost, Detail: fmt.Sprintf(
			"table-scan (filtered-scan fallback over %d disjuncts)", len(spec.Disjuncts))})
	default:
		chain = append(chain, &Node{Kind: KindScan, Detail: describePlan(tr.single), Cost: tr.cost})
	}

	if tr.cmagg == nil {
		if hasPreds {
			chain = append(chain, &Node{Kind: KindFilter, Detail: tr.filterDetail()})
		}
		if !spec.IsAggregate() && spec.Proj != nil && !tr.identityProj(spec.Proj) {
			chain = append(chain, &Node{Kind: KindProject, Detail: strings.Join(tr.colNames(spec.Proj), ", ")})
		}
		if spec.IsAggregate() {
			detail := strings.Join(tr.aggNames(), ", ")
			if len(spec.GroupBy) > 0 {
				withAggs := detail
				detail = "group by " + strings.Join(tr.colNames(spec.GroupBy), ", ")
				if withAggs != "" {
					detail = withAggs + " " + detail
				}
			}
			chain = append(chain, &Node{Kind: KindGroupAgg, Detail: detail})
		}
	}
	if len(spec.Having) > 0 {
		parts := make([]string, len(spec.Having))
		for i := range spec.Having {
			parts[i] = tr.havingDetail(spec.Having[i])
		}
		chain = append(chain, &Node{Kind: KindHaving, Detail: strings.Join(parts, " and ")})
	}
	if len(spec.OrderBy) > 0 {
		parts := make([]string, len(spec.OrderBy))
		for i, o := range spec.OrderBy {
			name := ""
			if spec.IsAggregate() {
				name = tr.outName(o.Col)
			} else {
				name = tr.colNames([]int{o.Col})[0]
			}
			dir := "asc"
			if o.Desc {
				dir = "desc"
			}
			parts[i] = name + " " + dir
		}
		mode := "full sort"
		if spec.Limit > 0 {
			mode = fmt.Sprintf("top-%d heap", spec.Limit)
		}
		chain = append(chain, &Node{Kind: KindSort, Detail: strings.Join(parts, ", ") + " (" + mode + ")"})
	}
	if spec.Limit > 0 {
		chain = append(chain, &Node{Kind: KindLimit, Detail: fmt.Sprintf("first %d rows", spec.Limit)})
	}

	// Link top-down: Root is the topmost operator, Child points toward
	// the access leaf.
	for i := len(chain) - 1; i > 0; i-- {
		chain[i].Child = chain[i-1]
	}
	tr.Root = chain[len(chain)-1]
}

// identityProj reports a projection that selects every column in schema
// order — SELECT * — which needs no project node.
func (tr *Tree) identityProj(proj []int) bool {
	if len(proj) != len(tr.t.Schema().Cols) {
		return false
	}
	for i, c := range proj {
		if c != i {
			return false
		}
	}
	return true
}

// colNames resolves schema column names for node details.
func (tr *Tree) colNames(cols []int) []string {
	sch := tr.t.Schema()
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = sch.Cols[c].Name
	}
	return out
}

// aggNames renders the canonical aggregate names of the spec.
func (tr *Tree) aggNames() []string {
	sch := tr.t.Schema()
	out := make([]string, len(tr.spec.Aggs))
	for i, sp := range tr.spec.Aggs {
		if sp.Col < 0 {
			out[i] = sp.Kind.String() + "(*)"
		} else {
			out[i] = sp.Kind.String() + "(" + sch.Cols[sp.Col].Name + ")"
		}
	}
	return out
}

// outName names one canonical aggregate-output position: a grouping
// column, then the aggregates.
func (tr *Tree) outName(pos int) string {
	if pos < len(tr.spec.GroupBy) {
		return tr.colNames(tr.spec.GroupBy[pos : pos+1])[0]
	}
	return tr.aggNames()[pos-len(tr.spec.GroupBy)]
}

// havingDetail renders one HAVING predicate over output-column names.
func (tr *Tree) havingDetail(p exec.Pred) string {
	return predDetail(tr.outName(p.Col), p)
}

// filterDetail renders the WHERE clause with schema column names: each
// disjunct's conjunction joined with AND, disjuncts parenthesized and
// joined with OR.
func (tr *Tree) filterDetail() string {
	sch := tr.t.Schema()
	conj := func(q exec.Query) string {
		parts := make([]string, len(q.Preds))
		for i, p := range q.Preds {
			parts[i] = predDetail(sch.Cols[p.Col].Name, p)
		}
		return strings.Join(parts, " AND ")
	}
	if len(tr.spec.Disjuncts) == 1 {
		return conj(tr.spec.Disjuncts[0])
	}
	parts := make([]string, len(tr.spec.Disjuncts))
	for i, q := range tr.spec.Disjuncts {
		parts[i] = "(" + conj(q) + ")"
	}
	return strings.Join(parts, " OR ")
}

// predDetail renders one executor predicate against a display name —
// the named twin of exec.Pred.String, built from the predicate struct
// rather than by placeholder substitution so a column literally named
// "colN" (or a string literal containing one) cannot corrupt the
// output.
func predDetail(name string, p exec.Pred) string {
	switch p.Op {
	case exec.OpEq:
		return fmt.Sprintf("%s = %v", name, p.Vals[0])
	case exec.OpIn:
		parts := make([]string, len(p.Vals))
		for i, v := range p.Vals {
			parts[i] = v.String()
		}
		return fmt.Sprintf("%s IN (%s)", name, strings.Join(parts, ", "))
	case exec.OpNe:
		return fmt.Sprintf("%s != %v", name, p.Vals[0])
	default:
		switch {
		case p.Lo != nil && p.Hi == nil:
			op := ">="
			if p.LoExcl {
				op = ">"
			}
			return fmt.Sprintf("%s %s %v", name, op, *p.Lo)
		case p.Lo == nil && p.Hi != nil:
			op := "<="
			if p.HiExcl {
				op = "<"
			}
			return fmt.Sprintf("%s %s %v", name, op, *p.Hi)
		case p.LoExcl || p.HiExcl:
			loOp, hiOp := ">=", "<="
			if p.LoExcl {
				loOp = ">"
			}
			if p.HiExcl {
				hiOp = "<"
			}
			return fmt.Sprintf("%s %s %v AND %s %s %v", name, loOp, *p.Lo, name, hiOp, *p.Hi)
		default:
			lo, hi := "-inf", "+inf"
			if p.Lo != nil {
				lo = p.Lo.String()
			}
			if p.Hi != nil {
				hi = p.Hi.String()
			}
			return fmt.Sprintf("%s BETWEEN %s AND %s", name, lo, hi)
		}
	}
}

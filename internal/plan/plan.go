// Package plan is the engine's physical plan layer: every query —
// whatever surface it arrives on — compiles to an explicit tree of
// operator nodes through one Build → Optimize → Run pipeline.
//
// Build shapes the resolved query (a plan.Spec of column indices and
// executor predicates) into a Tree; Optimize chooses the access path
// with the paper's Section 4 cost model — table scan, pipelined or
// sorted index scan, CM scan, the OR union, or the cm-agg lowering that
// answers covered aggregates from the correlation map's per-entry
// bucket statistics without touching the heap; Run executes the chosen
// tree on the parallel executors. The facade's five query surfaces
// (Exec, ExecScript, SelectMany, SelectAggregate and EXPLAIN) all lower
// through this package, so a statement cannot behave differently
// between surfaces, and EXPLAIN prints exactly the operator chain Run
// executes.
//
// The operator vocabulary: scan | union (access), filter (predicate
// evaluation — fused into the access path's compiled tuple filter at
// run time), project (projection pushdown), agg (the streaming grouped
// fold), cm-agg (index-only aggregation from CM bucket statistics, with
// an embedded hybrid sweep of impure buckets), having (post-aggregate
// filter), sort (full sort or bounded top-K heap) and limit. New
// operators are node insertions here, not new lowering branches.
package plan

import (
	"context"
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/table"
)

// Force pins the access path of a single-conjunction query; Auto lets
// the cost model choose (and is required for OR queries, whose
// disjuncts plan independently).
type Force int

// The forcible access paths, mirroring the facade's AccessMethod enum.
const (
	// Auto lets the Section 4 cost model choose (including cm-agg).
	Auto Force = iota
	// ForceTableScan forces a full sequential scan.
	ForceTableScan
	// ForceSorted forces a sorted (bitmap-style) secondary index scan.
	ForceSorted
	// ForcePipelined forces per-tuple index probing.
	ForcePipelined
	// ForceCM forces the correlation-map scan.
	ForceCM
)

// Order is one ORDER BY key of a Spec. For plain selects Col is a table
// column index; for aggregate specs it is a position in the canonical
// output row (GroupBy columns, then Aggs).
type Order struct {
	Col  int
	Desc bool
}

// Spec is a resolved query: every column is an index, every predicate
// an executor predicate. It is what the facade lowers a QuerySpec (or a
// bound SQL statement) into before compilation.
type Spec struct {
	// Disjuncts holds the WHERE clause in disjunctive normal form; a
	// query without predicates is one empty conjunction. More than one
	// disjunct requires Force == Auto.
	Disjuncts []exec.Query
	// Force pins the access path; see Force.
	Force Force
	// Proj lists the projected columns of a plain select (nil = all
	// columns). Ignored for aggregate specs.
	Proj []int
	// Aggs and GroupBy make the spec an aggregate query producing
	// canonical rows: GroupBy values in order, then aggregate results.
	Aggs    []exec.AggSpec
	GroupBy []int
	// Having filters canonical aggregate output rows; each predicate's
	// Col is a canonical output position.
	Having []exec.Pred
	// OrderBy sorts the result; see Order for the Col convention.
	OrderBy []Order
	// Limit caps the result rows when positive (plain unsorted queries
	// stop their scan early; sorted ones bound the top-K heap).
	Limit int
	// Snap is the MVCC snapshot every access path reads as of (see
	// exec.Query.Snap). Build stamps it onto each disjunct, so the whole
	// tree sees one consistent table version even while a concurrent
	// writer statement is mid-flight. 0 reads the latest state.
	Snap uint64
	// Obs, when non-nil, receives the engine-wide physical-work counts
	// of this query's scans (the facade wires the DB's global counters
	// here when metrics are enabled). An analyzed run measures into its
	// own private ScanObs and folds the totals into Obs afterwards.
	Obs *exec.ScanObs
	// Ctx, when non-nil, cancels execution (see exec.Query.Ctx). Build
	// stamps it onto each disjunct like Snap, so every access leg of the
	// tree polls the same context. nil never cancels.
	Ctx context.Context
}

// IsAggregate reports whether the spec computes aggregates or groups.
func (s Spec) IsAggregate() bool { return len(s.Aggs) > 0 || len(s.GroupBy) > 0 }

// Kind identifies an operator node of a plan tree.
type Kind int

// The operator kinds, bottom-up through a typical tree.
const (
	// KindScan is a single-path access node (table scan, index scan or
	// CM scan; the detail names the method and structure).
	KindScan Kind = iota
	// KindUnion is the OR access node: per-disjunct probes whose RIDs
	// union into one deduplicated page sweep.
	KindUnion
	// KindCMAgg answers aggregates from CM per-entry bucket statistics,
	// sweeping only impure buckets (the hybrid leg is embedded).
	KindCMAgg
	// KindFilter evaluates the WHERE predicates. At run time it is fused
	// into the access node's compiled tuple filter, so rejected tuples
	// are never materialized.
	KindFilter
	// KindProject narrows rows to the projected columns; pushed into the
	// scan, which decodes only projected + predicated columns.
	KindProject
	// KindGroupAgg is the streaming grouped aggregation fold.
	KindGroupAgg
	// KindHaving filters aggregate output rows.
	KindHaving
	// KindSort orders result rows (bounded top-K under a limit).
	KindSort
	// KindLimit caps the result row count.
	KindLimit
	// KindUpdate is the write operator of an UPDATE statement: it
	// consumes the matching rows from the access chain below it and
	// replaces each under one MVCC writer statement (Algorithm-1
	// retraction + reinsert per row).
	KindUpdate
)

// String names the kind as EXPLAIN prints it.
func (k Kind) String() string {
	switch k {
	case KindScan:
		return "scan"
	case KindUnion:
		return "union"
	case KindCMAgg:
		return "cm-agg"
	case KindFilter:
		return "filter"
	case KindProject:
		return "project"
	case KindGroupAgg:
		return "agg"
	case KindHaving:
		return "having"
	case KindSort:
		return "sort"
	case KindLimit:
		return "limit"
	case KindUpdate:
		return "update"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Node is one operator of a compiled plan tree. Nodes form a chain from
// the access operator up (Child points one level down, nil at the
// leaf). Multi-leg access shapes stay one node: a union node's Detail
// names every disjunct probe, and a hybrid cm-agg node's Detail names
// its sweep leg — exactly what EXPLAIN prints.
type Node struct {
	Kind   Kind
	Detail string
	Cost   time.Duration // access and cm-agg nodes; zero elsewhere
	Child  *Node
}

// Tree is a compiled query: the operator chain plus the physical
// decisions Run executes. Build constructs it, Optimize finalizes it,
// and Run/Rows execute it; all three must happen under one shared table
// latch hold so the plan sees a consistent table state.
type Tree struct {
	Root *Node

	t    *table.Table
	spec Spec

	optimized bool
	useOr     bool
	single    exec.Plan   // single-conjunction access plan
	orPlan    exec.OrPlan // multi-disjunct plan, or the aggregate wrapper
	cmagg     *exec.CMAggPlan

	method        exec.Method
	uses          string
	cost          time.Duration
	costEstimated bool
	decodedCols   int

	// an is the live analysis state of a RunAnalyzed call; nil for
	// plain runs, so the hooks in the run functions cost one branch.
	an *analysisState
}

// Build validates a spec against a table and returns the unoptimized
// tree. Callers then Optimize it with a statistics provider and Run it.
func Build(t *table.Table, spec Spec) (*Tree, error) {
	if len(spec.Disjuncts) == 0 {
		spec.Disjuncts = []exec.Query{{}}
	}
	for i := range spec.Disjuncts {
		spec.Disjuncts[i].Snap = spec.Snap
		spec.Disjuncts[i].Ctx = spec.Ctx
	}
	if len(spec.Disjuncts) > 1 && spec.Force != Auto {
		return nil, fmt.Errorf("plan: OR queries plan access paths per disjunct; the method must be Auto")
	}
	if !spec.IsAggregate() && len(spec.Having) > 0 {
		return nil, fmt.Errorf("plan: HAVING needs aggregates or GROUP BY")
	}
	return &Tree{t: t, spec: spec}, nil
}

// Compile is Build followed by Optimize — the one-call form every
// facade surface uses.
func Compile(t *table.Table, spec Spec, sp exec.StatsProvider) (*Tree, error) {
	tr, err := Build(t, spec)
	if err != nil {
		return nil, err
	}
	if err := tr.Optimize(sp); err != nil {
		return nil, err
	}
	return tr, nil
}

// NodeInfo is one operator row of an explained plan.
type NodeInfo struct {
	Kind   string
	Detail string
	// Cost is the node's predicted cost (access and cm-agg nodes; zero
	// elsewhere). EXPLAIN ANALYZE prints it beside the measured work.
	Cost time.Duration
}

// Info summarizes a compiled tree for EXPLAIN: the flattened operator
// chain bottom-up plus the access-path fields the facade's PlanInfo
// surfaces.
type Info struct {
	// Nodes is the operator chain bottom-up, one entry per node.
	Nodes []NodeInfo
	// Single reports a single-path access plan whose Method and Uses
	// are meaningful; Union and CMAgg mark the other two access shapes.
	Single bool
	Union  bool
	CMAgg  bool
	// Fallback marks the OR filtered-scan fallback.
	Fallback bool
	// Method and Uses name the single access path (see Single).
	Method exec.Method
	Uses   string
	// Cost is the predicted cost; CostEstimated reports whether the
	// cost model produced it (false for forced methods, whose cost is
	// not computed).
	Cost          time.Duration
	CostEstimated bool
	// DecodedCols counts the columns the executor materializes per
	// surviving tuple; TotalCols is the schema arity.
	DecodedCols int
	TotalCols   int
}

// Explain flattens the optimized tree into an Info.
func (tr *Tree) Explain() Info {
	info := Info{
		Method:        tr.method,
		Uses:          tr.uses,
		Cost:          tr.cost,
		CostEstimated: tr.costEstimated,
		DecodedCols:   tr.decodedCols,
		TotalCols:     len(tr.t.Schema().Cols),
	}
	for n := tr.Root; n != nil; n = n.Child {
		// The chain is rooted at the top operator; collect bottom-up.
		info.Nodes = append([]NodeInfo{{Kind: n.Kind.String(), Detail: n.Detail, Cost: n.Cost}}, info.Nodes...)
	}
	if len(info.Nodes) > 0 {
		switch info.Nodes[0].Kind {
		case "union":
			info.Union = true
		case "cm-agg":
			info.CMAgg = true
		default:
			if tr.useOr {
				info.Fallback = true
			} else {
				info.Single = true
			}
		}
	}
	return info
}

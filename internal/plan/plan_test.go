package plan

import (
	"strings"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/sim"
	"repro/internal/table"
	"repro/internal/value"
)

// fixture builds a small correlated table with an identity CM on col 1
// (u) and no secondary index, directly on the internal layers.
func fixture(t *testing.T) *table.Table {
	t.Helper()
	disk := sim.NewDisk(sim.Config{})
	pool := buffer.NewPool(disk, 1024)
	sch := table.NewSchema(
		table.Column{Name: "c", Kind: value.Int},
		table.Column{Name: "u", Kind: value.Int},
		table.Column{Name: "v", Kind: value.Int},
	)
	tbl, err := table.New(pool, nil, table.Config{Name: "t", Schema: sch, ClusteredCols: []int{0}, BucketTuples: 4})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]value.Row, 400)
	for i := range rows {
		c := int64(i / 4)
		rows[i] = value.Row{value.NewInt(c), value.NewInt(c / 2), value.NewInt(int64(i % 7))}
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.CreateCM(core.Spec{Name: "cm_u", UCols: []int{1}}); err != nil {
		t.Fatal(err)
	}
	return tbl
}

// kinds flattens a compiled tree's node kinds bottom-up.
func kinds(tr *Tree) []string {
	info := tr.Explain()
	out := make([]string, len(info.Nodes))
	for i, n := range info.Nodes {
		out[i] = n.Kind
	}
	return out
}

// TestBuildOptimizeShapes pins the operator chains the pipeline builds
// for representative specs.
func TestBuildOptimizeShapes(t *testing.T) {
	tbl := fixture(t)
	sp := exec.NewExactStats()
	eqU := exec.NewQuery(exec.Eq(1, value.NewInt(10)))

	cases := []struct {
		name string
		spec Spec
		want []string
	}{
		{"bare scan", Spec{}, []string{"scan"}},
		{"filtered", Spec{Disjuncts: []exec.Query{eqU}}, []string{"scan", "filter"}},
		{"projected", Spec{Disjuncts: []exec.Query{eqU}, Proj: []int{2}},
			[]string{"scan", "filter", "project"}},
		{"sorted limited", Spec{Disjuncts: []exec.Query{eqU}, Proj: []int{2},
			OrderBy: []Order{{Col: 2}}, Limit: 3},
			[]string{"scan", "filter", "project", "sort", "limit"}},
		// At this scale summed probe costs exceed the (tiny) scan cost,
		// so the OR plans as the filtered-scan fallback; the union shape
		// is pinned at the facade level (TestExplainOrUnionNodes).
		{"or fallback", Spec{Disjuncts: []exec.Query{eqU, exec.NewQuery(exec.Eq(1, value.NewInt(20)))}},
			[]string{"scan", "filter"}},
		{"heap agg", Spec{Disjuncts: []exec.Query{eqU},
			Aggs: []exec.AggSpec{{Kind: exec.AggSum, Col: 2}}, GroupBy: []int{2}},
			[]string{"scan", "filter", "agg"}},
		{"cm agg", Spec{Disjuncts: []exec.Query{eqU},
			Aggs: []exec.AggSpec{{Kind: exec.AggCount, Col: -1}, {Kind: exec.AggAvg, Col: 1}}},
			[]string{"cm-agg"}},
		{"cm agg having sort", Spec{
			Aggs: []exec.AggSpec{{Kind: exec.AggCount, Col: -1}}, GroupBy: []int{1},
			Having:  []exec.Pred{exec.Gt(1, value.NewInt(2))},
			OrderBy: []Order{{Col: 1, Desc: true}}},
			[]string{"cm-agg", "having", "sort"}},
	}
	for _, c := range cases {
		tr, err := Compile(tbl, c.spec, sp)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		got := kinds(tr)
		if strings.Join(got, ",") != strings.Join(c.want, ",") {
			t.Errorf("%s: kinds = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestPipelineContract pins the Build → Optimize → Run discipline and
// the error surface: running before optimizing fails, forced methods
// without structures fail, OR with a forced method fails at Build.
func TestPipelineContract(t *testing.T) {
	tbl := fixture(t)
	sp := exec.NewExactStats()
	eqU := exec.NewQuery(exec.Eq(1, value.NewInt(10)))

	tr, err := Build(tbl, Spec{Disjuncts: []exec.Query{eqU}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(1, func(value.Row) bool { return true }); err == nil {
		t.Error("Run before Optimize succeeded")
	}
	if err := tr.Optimize(sp); err != nil {
		t.Fatal(err)
	}
	rows, err := tr.Rows(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // u = 10 covers c in {20, 21}, 4 tuples each
		t.Errorf("Rows = %d, want 8", len(rows))
	}

	if _, err := Build(tbl, Spec{Force: ForceCM,
		Disjuncts: []exec.Query{eqU, eqU}}); err == nil {
		t.Error("OR with forced method accepted")
	}
	if _, err := Compile(tbl, Spec{Force: ForceSorted, Disjuncts: []exec.Query{eqU}}, sp); err == nil {
		t.Error("forced index scan without an index accepted")
	}
	if _, err := Build(tbl, Spec{Disjuncts: []exec.Query{eqU},
		Having: []exec.Pred{exec.Gt(0, value.NewInt(1))}}); err == nil {
		t.Error("HAVING on a plain select accepted")
	}
}

// TestCMAggMatchesHeap cross-checks the two aggregate executors inside
// the plan layer: the cm-agg tree and a forced table-scan tree must
// produce identical rows, and the cm-agg tree must report index-only
// decode (0 columns).
func TestCMAggMatchesHeap(t *testing.T) {
	tbl := fixture(t)
	sp := exec.NewExactStats()
	spec := Spec{
		Disjuncts: []exec.Query{exec.NewQuery(exec.Between(1, value.NewInt(5), value.NewInt(20)))},
		Aggs: []exec.AggSpec{{Kind: exec.AggCount, Col: -1}, {Kind: exec.AggSum, Col: 2},
			{Kind: exec.AggMin, Col: 2}, {Kind: exec.AggMax, Col: 2}},
		GroupBy: []int{1},
	}
	cmTree, err := Compile(tbl, spec, sp)
	if err != nil {
		t.Fatal(err)
	}
	if kinds(cmTree)[0] != "cm-agg" {
		t.Fatalf("expected cm-agg, got %v", kinds(cmTree))
	}
	if cmTree.Explain().DecodedCols != 0 {
		t.Errorf("cm-agg decoded cols = %d, want 0", cmTree.Explain().DecodedCols)
	}
	forced := spec
	forced.Force = ForceTableScan
	heapTree, err := Compile(tbl, forced, sp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cmTree.Rows(4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := heapTree.Rows(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("cm-agg %d rows, heap %d", len(got), len(want))
	}
	for i := range got {
		for j := range got[i] {
			if got[i][j].String() != want[i][j].String() {
				t.Errorf("row %d col %d: %v vs %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

package sql

import (
	"strconv"
	"strings"

	"repro/internal/value"
)

// Stmt is a parsed SQL statement.
type Stmt interface{ stmt() }

// LitKind classifies a literal before binding assigns it a column type.
type LitKind int

// The literal kinds.
const (
	LitInt LitKind = iota
	LitFloat
	LitString
)

// Lit is an unbound literal value.
type Lit struct {
	Kind LitKind
	Int  int64
	Flt  float64
	Str  string
}

// String renders the literal in SQL syntax.
func (l Lit) String() string {
	switch l.Kind {
	case LitInt:
		return strconv.FormatInt(l.Int, 10)
	case LitFloat:
		return strconv.FormatFloat(l.Flt, 'g', -1, 64)
	default:
		return "'" + strings.ReplaceAll(l.Str, "'", "''") + "'"
	}
}

// CondOp is a comparison operator in a WHERE conjunction.
type CondOp int

// The condition operators.
const (
	CondEq      CondOp = iota // =
	CondNe                    // != / <>
	CondLt                    // <
	CondLe                    // <=
	CondGt                    // >
	CondGe                    // >=
	CondBetween               // BETWEEN lo AND hi
	CondIn                    // IN (v1, ..., vn)
)

// String renders the operator.
func (op CondOp) String() string {
	switch op {
	case CondEq:
		return "="
	case CondNe:
		return "!="
	case CondLt:
		return "<"
	case CondLe:
		return "<="
	case CondGt:
		return ">"
	case CondGe:
		return ">="
	case CondBetween:
		return "BETWEEN"
	default:
		return "IN"
	}
}

// Cond is one predicate of a WHERE conjunction: column op args.
// CondBetween carries exactly two args (lo, hi); CondIn carries one or
// more; every other operator carries exactly one.
type Cond struct {
	Col  string
	Op   CondOp
	Args []Lit
}

// AggFn identifies an aggregate function in a SELECT list (AggNone
// marks a plain column reference).
type AggFn int

// The aggregate functions of the dialect.
const (
	AggNone AggFn = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String renders the function name in lowercase SQL form.
func (f AggFn) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return "none"
	}
}

// SelExpr is one SELECT-list (or ORDER BY) expression: a plain column
// (Fn == AggNone) or an aggregate over a column; Star marks COUNT(*).
type SelExpr struct {
	Fn   AggFn
	Col  string
	Star bool
}

// Name renders the expression as its result-column header: the column
// name for plain references, "fn(col)" / "count(*)" for aggregates.
func (e SelExpr) Name() string {
	if e.Fn == AggNone {
		return e.Col
	}
	if e.Star {
		return e.Fn.String() + "(*)"
	}
	return e.Fn.String() + "(" + e.Col + ")"
}

// OrderItem is one ORDER BY key: a select expression and a direction.
type OrderItem struct {
	Expr SelExpr
	Desc bool
}

// HavingCond is one conjunct of a HAVING clause: a select expression
// (a grouped column or an aggregate call, which need not appear in the
// SELECT list) compared against literals. Argument arity follows Cond:
// two for BETWEEN, one or more for IN, one otherwise.
type HavingCond struct {
	Expr SelExpr
	Op   CondOp
	Args []Lit
}

// SelectStmt is SELECT [DISTINCT] exprs FROM table [WHERE expr]
// [GROUP BY cols] [HAVING conds] [ORDER BY items] [LIMIT n]. Where is
// held in disjunctive normal form: an OR of conjunctions, already
// distributed by the parser (nil means no WHERE clause; a plain
// conjunction is one disjunct). DISTINCT is sugar the binder rewrites
// into GROUP BY over the projected columns; HAVING is a conjunction
// filtering aggregate output rows.
type SelectStmt struct {
	Exprs    []SelExpr // nil means *
	Distinct bool
	Table    string
	Where    [][]Cond
	GroupBy  []string
	Having   []HavingCond
	OrderBy  []OrderItem
	Limit    int // -1 means no LIMIT clause
}

func (*SelectStmt) stmt() {}

// InsertStmt is INSERT INTO table [(cols)] VALUES (..), (..), or the
// same shape with LOAD in place of INSERT. LOAD maps to the engine's
// clustered bulk load: it must run once, on an empty table, before any
// index or CM is created, and it is what builds the clustered bucket
// directory CMs probe against.
type InsertStmt struct {
	Table string
	Cols  []string // nil means positional full rows
	Rows  [][]Lit
	Load  bool // LOAD INTO instead of INSERT INTO
}

func (*InsertStmt) stmt() {}

// DeleteStmt is DELETE FROM table [WHERE conj]. An absent WHERE deletes
// every row.
type DeleteStmt struct {
	Table string
	Where []Cond
}

func (*DeleteStmt) stmt() {}

// SetItem is one assignment of an UPDATE statement: Col takes the
// literal Val for every matching row.
type SetItem struct {
	Col string
	Val Lit
}

// UpdateStmt is UPDATE table SET col = lit (, col = lit)* [WHERE expr].
// Where is held in disjunctive normal form like SelectStmt.Where (nil
// means update every row).
type UpdateStmt struct {
	Table string
	Sets  []SetItem
	Where [][]Cond
}

func (*UpdateStmt) stmt() {}

// ColDef declares one column of CREATE TABLE.
type ColDef struct {
	Name string
	Kind value.Kind
}

// CreateTableStmt is CREATE TABLE t (col type, ...) CLUSTERED BY (cols)
// [BUCKET PAGES n | BUCKET TUPLES n].
type CreateTableStmt struct {
	Name         string
	Cols         []ColDef
	ClusteredBy  []string
	BucketPages  int
	BucketTuples int
}

func (*CreateTableStmt) stmt() {}

// CreateIndexStmt is CREATE INDEX name ON t (cols).
type CreateIndexStmt struct {
	Name  string
	Table string
	Cols  []string
}

func (*CreateIndexStmt) stmt() {}

// CMCol is one column of a CREATE CORRELATION MAP statement with its
// bucketing options (zero values mean unbucketed).
type CMCol struct {
	Name   string
	Level  int
	Width  float64
	Prefix int
}

// CreateCMStmt is CREATE CORRELATION MAP name ON t (col [WIDTH w]
// [PREFIX p] [LEVEL l], ...) [WITH WIDTH w | PREFIX p | LEVEL l].
// Statement-level WITH options apply to every column that has no
// per-column option.
type CreateCMStmt struct {
	Name  string
	Table string
	Cols  []CMCol
}

func (*CreateCMStmt) stmt() {}

// ExplainStmt is EXPLAIN [ANALYZE] (SELECT ... | UPDATE ...): report
// the operator tree, the index or CM it uses and the estimated cost.
// Plain EXPLAIN only compiles; EXPLAIN ANALYZE executes the statement
// (an UPDATE really writes, PostgreSQL-style) and reports measured
// rows, pages and time beside the estimates. Exactly one of Sel and
// Upd is non-nil.
type ExplainStmt struct {
	Sel     *SelectStmt
	Upd     *UpdateStmt
	Analyze bool
}

func (*ExplainStmt) stmt() {}

// AdviseStmt is ADVISE CM FOR SELECT ... [WITHIN p PERCENT]: run the CM
// Advisor for the query with the given slowdown tolerance.
type AdviseStmt struct {
	Sel            *SelectStmt
	MaxSlowdownPct float64
}

func (*AdviseStmt) stmt() {}

// ShowWhat selects the subject of a SHOW statement.
type ShowWhat int

// The SHOW subjects.
const (
	ShowTables ShowWhat = iota
	ShowIndexes
	ShowCMs
	ShowStats
	ShowSoftFDs
	ShowMetrics
)

// ShowStmt is SHOW TABLES | SHOW STATS | SHOW INDEXES FOR t |
// SHOW CMS FOR t | SHOW SOFT FDS FOR t [MIN STRENGTH s] [WITH PAIRS] |
// SHOW METRICS [LIKE 'pattern'].
type ShowStmt struct {
	What        ShowWhat
	Table       string
	MinStrength float64 // SHOW SOFT FDS threshold
	Pairs       bool    // include two-attribute determinants
	Like        string  // SHOW METRICS name filter ("" = all)
}

func (*ShowStmt) stmt() {}

// CommitStmt is COMMIT [table]: flush the WAL for one table, or for
// every table when no name is given.
type CommitStmt struct {
	Table string // "" means all tables
}

func (*CommitStmt) stmt() {}

// SetStmt is SET name = value: adjust a session/engine setting.
// The engine executes statement_timeout (a non-negative millisecond
// count; 0 disables the deadline); wire_chunk_rows is a server
// session setting the wire layer intercepts before execution (rows
// per chunk frame; 0 restores buffered responses).
type SetStmt struct {
	Name  string
	Value int64
}

func (*SetStmt) stmt() {}

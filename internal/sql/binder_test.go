package sql

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/value"
)

// fakeCatalog is an in-memory Catalog for binder tests.
type fakeCatalog map[string]TableMeta

func (c fakeCatalog) TableMeta(name string) (TableMeta, bool) {
	tm, ok := c[name]
	return tm, ok
}

func testCatalog() fakeCatalog {
	return fakeCatalog{
		"items": {Name: "items", Cols: []ColMeta{
			{Name: "cat", Kind: value.Int},
			{Name: "price", Kind: value.Float},
			{Name: "title", Kind: value.String},
		}},
	}
}

func sel(t *testing.T, src string) *SelectStmt {
	t.Helper()
	return mustParse(t, src).(*SelectStmt)
}

func TestBindSelectStarAndProjection(t *testing.T) {
	cat := testCatalog()
	b, err := BindSelect(cat, sel(t, "SELECT * FROM items"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b.Proj, []int{0, 1, 2}) ||
		!reflect.DeepEqual(b.Cols, []string{"cat", "price", "title"}) {
		t.Errorf("star projection: %+v", b)
	}

	b, err = BindSelect(cat, sel(t, "SELECT title, cat FROM items LIMIT 7"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b.Proj, []int{2, 0}) || b.Limit != 7 {
		t.Errorf("named projection: %+v", b)
	}
}

func TestBindSelectCoercion(t *testing.T) {
	cat := testCatalog()
	// Int literal widens to a float column.
	b, err := BindSelect(cat, sel(t, "SELECT * FROM items WHERE price > 10"))
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Where[0][0].Vals[0]; got.K != value.Float || got.F != 10 {
		t.Errorf("int->float coercion: %+v", got)
	}
	// Float literal does not narrow to an int column.
	if _, err := BindSelect(cat, sel(t, "SELECT * FROM items WHERE cat = 1.5")); err == nil {
		t.Error("float->int narrowing accepted")
	}
	// Strings only bind to string columns.
	if _, err := BindSelect(cat, sel(t, "SELECT * FROM items WHERE cat = 'x'")); err == nil {
		t.Error("string->int accepted")
	}
	if _, err := BindSelect(cat, sel(t, "SELECT * FROM items WHERE title = 3")); err == nil {
		t.Error("int->string accepted")
	}
}

func TestBindSelectErrors(t *testing.T) {
	cat := testCatalog()
	if _, err := BindSelect(cat, sel(t, "SELECT * FROM nope")); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := BindSelect(cat, sel(t, "SELECT zz FROM items")); err == nil {
		t.Error("unknown projected column accepted")
	}
	if _, err := BindSelect(cat, sel(t, "SELECT * FROM items WHERE zz = 1")); err == nil {
		t.Error("unknown predicate column accepted")
	}
	_, err := BindSelect(cat, sel(t, "SELECT * FROM items WHERE cat BETWEEN 5 AND 2"))
	if err == nil || !strings.Contains(err.Error(), "inverted") {
		t.Errorf("inverted BETWEEN: %v", err)
	}
}

func TestBindAggSelect(t *testing.T) {
	cat := testCatalog()
	b, err := BindSelect(cat, sel(t, "SELECT count(*), title, avg(price) FROM items GROUP BY title ORDER BY avg(price) DESC, title"))
	if err != nil {
		t.Fatal(err)
	}
	if !b.IsAggregate() {
		t.Fatal("aggregate select not flagged")
	}
	if !reflect.DeepEqual(b.Cols, []string{"count(*)", "title", "avg(price)"}) {
		t.Errorf("header = %v", b.Cols)
	}
	// Canonical shape is (GroupBy..., Aggs...): title, count(*), avg(price).
	if !reflect.DeepEqual(b.OutPerm, []int{1, 0, 2}) {
		t.Errorf("OutPerm = %v", b.OutPerm)
	}
	if len(b.Aggs) != 2 || b.Aggs[0].Name() != "count(*)" || b.Aggs[1].Name() != "avg(price)" {
		t.Errorf("aggs = %+v", b.Aggs)
	}
	if !reflect.DeepEqual(b.GroupBy, []string{"title"}) || !reflect.DeepEqual(b.GroupByIdx, []int{2}) {
		t.Errorf("group by = %v / %v", b.GroupBy, b.GroupByIdx)
	}
	want := []BoundOrder{{Name: "avg(price)", Desc: true}, {Name: "title"}}
	if !reflect.DeepEqual(b.OrderBy, want) {
		t.Errorf("order by = %+v", b.OrderBy)
	}

	// An ORDER BY aggregate the list omits binds as a hidden trailing agg.
	b, err = BindSelect(cat, sel(t, "SELECT title FROM items GROUP BY title ORDER BY sum(price)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Aggs) != 1 || b.Aggs[0].Name() != "sum(price)" || !reflect.DeepEqual(b.OutPerm, []int{0}) {
		t.Errorf("hidden agg: aggs=%+v perm=%v", b.Aggs, b.OutPerm)
	}
	if b.OrderBy[0].Name != "sum(price)" {
		t.Errorf("hidden agg order name = %q", b.OrderBy[0].Name)
	}

	// Duplicate aggregate expressions share one canonical slot.
	b, err = BindSelect(cat, sel(t, "SELECT avg(price), avg(price) FROM items"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Aggs) != 1 || !reflect.DeepEqual(b.OutPerm, []int{0, 0}) {
		t.Errorf("dedup: aggs=%+v perm=%v", b.Aggs, b.OutPerm)
	}

	for _, bad := range []string{
		"SELECT sum(title) FROM items",
		"SELECT avg(title) FROM items",
		"SELECT price, count(*) FROM items",              // ungrouped plain column
		"SELECT price FROM items GROUP BY title",         // not in group by
		"SELECT * FROM items GROUP BY title",             // star grouped
		"SELECT count(zz) FROM items",                    // unknown agg column
		"SELECT count(*) FROM items GROUP BY zz",         // unknown group column
		"SELECT count(*) FROM items GROUP BY cat, cat",   // duplicate group column
		"SELECT count(*) FROM items ORDER BY price",      // order key not grouped
		"SELECT cat FROM items ORDER BY avg(price)",      // agg order on plain select
		"SELECT count(*) FROM items ORDER BY sum(title)", // bad hidden agg
	} {
		if _, err := BindSelect(cat, sel(t, bad)); err == nil {
			t.Errorf("BindSelect(%q) did not fail", bad)
		}
	}
}

func TestBindSelectDNFAndOrder(t *testing.T) {
	cat := testCatalog()
	b, err := BindSelect(cat, sel(t, "SELECT * FROM items WHERE cat = 1 OR price > 2.5 ORDER BY price DESC"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Where) != 2 || b.Where[0][0].ColIdx != 0 || b.Where[1][0].ColIdx != 1 {
		t.Errorf("bound dnf = %+v", b.Where)
	}
	if !reflect.DeepEqual(b.OrderBy, []BoundOrder{{Name: "price", Desc: true}}) {
		t.Errorf("order by = %+v", b.OrderBy)
	}
	// Every disjunct binds (and fails) independently.
	if _, err := BindSelect(cat, sel(t, "SELECT * FROM items WHERE cat = 1 OR zz = 2")); err == nil {
		t.Error("unknown column in second disjunct accepted")
	}
	// Plain-select ORDER BY may name an unprojected column, not an unknown one.
	if _, err := BindSelect(cat, sel(t, "SELECT cat FROM items ORDER BY price")); err != nil {
		t.Errorf("order by unprojected column rejected: %v", err)
	}
	if _, err := BindSelect(cat, sel(t, "SELECT cat FROM items ORDER BY zz")); err == nil {
		t.Error("order by unknown column accepted")
	}
}

func TestBindInsert(t *testing.T) {
	cat := testCatalog()
	ins := mustParse(t, "INSERT INTO items (title, cat, price) VALUES ('x', 3, 9.5)").(*InsertStmt)
	b, err := BindInsert(cat, ins)
	if err != nil {
		t.Fatal(err)
	}
	want := value.Row{value.NewInt(3), value.NewFloat(9.5), value.NewString("x")}
	if !reflect.DeepEqual(b.Rows[0], want) {
		t.Errorf("reordered row = %+v, want %+v", b.Rows[0], want)
	}

	for _, bad := range []string{
		"INSERT INTO items VALUES (1, 2.5)",                      // arity
		"INSERT INTO items (cat, price) VALUES (1, 2.5)",         // partial columns
		"INSERT INTO items (cat, cat, price) VALUES (1, 2, 3.5)", // duplicate
		"INSERT INTO items (cat, price, zz) VALUES (1, 2.5, 'x')",
		"INSERT INTO items VALUES (1.5, 2.5, 'x')", // kind mismatch
		"INSERT INTO nope VALUES (1)",
	} {
		if _, err := BindInsert(cat, mustParse(t, bad).(*InsertStmt)); err == nil {
			t.Errorf("BindInsert(%q) did not fail", bad)
		}
	}
}

func TestBindDelete(t *testing.T) {
	cat := testCatalog()
	b, err := BindDelete(cat, mustParse(t, "DELETE FROM items WHERE cat != 4").(*DeleteStmt))
	if err != nil {
		t.Fatal(err)
	}
	if b.Where[0].Op != CondNe || b.Where[0].ColIdx != 0 {
		t.Errorf("bound delete: %+v", b.Where[0])
	}
	if _, err := BindDelete(cat, mustParse(t, "DELETE FROM items WHERE zz = 1").(*DeleteStmt)); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestBindCreateTable(t *testing.T) {
	cat := testCatalog()
	ok := mustParse(t, "CREATE TABLE fresh (a INT, b STRING) CLUSTERED BY (a)").(*CreateTableStmt)
	if err := BindCreateTable(cat, ok); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"CREATE TABLE items (a INT) CLUSTERED BY (a)",    // exists
		"CREATE TABLE f (a INT, a INT) CLUSTERED BY (a)", // dup col
		"CREATE TABLE f (a INT) CLUSTERED BY (zz)",       // unknown clustering col
	} {
		if err := BindCreateTable(cat, mustParse(t, bad).(*CreateTableStmt)); err == nil {
			t.Errorf("BindCreateTable(%q) did not fail", bad)
		}
	}
}

func TestBindCreateIndexAndCM(t *testing.T) {
	cat := testCatalog()
	if err := BindCreateIndex(cat, mustParse(t, "CREATE INDEX ix ON items (price, cat)").(*CreateIndexStmt)); err != nil {
		t.Fatal(err)
	}
	if err := BindCreateIndex(cat, mustParse(t, "CREATE INDEX ix ON items (zz)").(*CreateIndexStmt)); err == nil {
		t.Error("unknown index column accepted")
	}

	if err := BindCreateCM(cat, mustParse(t, "CREATE CORRELATION MAP cm ON items (price WIDTH 5, title PREFIX 3)").(*CreateCMStmt)); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"CREATE CORRELATION MAP cm ON items (title WIDTH 5)", // width on string
		"CREATE CORRELATION MAP cm ON items (cat PREFIX 2)",  // prefix on int
		"CREATE CORRELATION MAP cm ON items (zz)",
		"CREATE CORRELATION MAP cm ON nope (cat)",
	} {
		if err := BindCreateCM(cat, mustParse(t, bad).(*CreateCMStmt)); err == nil {
			t.Errorf("BindCreateCM(%q) did not fail", bad)
		}
	}
}

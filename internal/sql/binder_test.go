package sql

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/value"
)

// fakeCatalog is an in-memory Catalog for binder tests.
type fakeCatalog map[string]TableMeta

func (c fakeCatalog) TableMeta(name string) (TableMeta, bool) {
	tm, ok := c[name]
	return tm, ok
}

func testCatalog() fakeCatalog {
	return fakeCatalog{
		"items": {Name: "items", Cols: []ColMeta{
			{Name: "cat", Kind: value.Int},
			{Name: "price", Kind: value.Float},
			{Name: "title", Kind: value.String},
		}},
	}
}

func sel(t *testing.T, src string) *SelectStmt {
	t.Helper()
	return mustParse(t, src).(*SelectStmt)
}

func TestBindSelectStarAndProjection(t *testing.T) {
	cat := testCatalog()
	b, err := BindSelect(cat, sel(t, "SELECT * FROM items"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b.Proj, []int{0, 1, 2}) ||
		!reflect.DeepEqual(b.Cols, []string{"cat", "price", "title"}) {
		t.Errorf("star projection: %+v", b)
	}

	b, err = BindSelect(cat, sel(t, "SELECT title, cat FROM items LIMIT 7"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b.Proj, []int{2, 0}) || b.Limit != 7 {
		t.Errorf("named projection: %+v", b)
	}
}

func TestBindSelectCoercion(t *testing.T) {
	cat := testCatalog()
	// Int literal widens to a float column.
	b, err := BindSelect(cat, sel(t, "SELECT * FROM items WHERE price > 10"))
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Where[0].Vals[0]; got.K != value.Float || got.F != 10 {
		t.Errorf("int->float coercion: %+v", got)
	}
	// Float literal does not narrow to an int column.
	if _, err := BindSelect(cat, sel(t, "SELECT * FROM items WHERE cat = 1.5")); err == nil {
		t.Error("float->int narrowing accepted")
	}
	// Strings only bind to string columns.
	if _, err := BindSelect(cat, sel(t, "SELECT * FROM items WHERE cat = 'x'")); err == nil {
		t.Error("string->int accepted")
	}
	if _, err := BindSelect(cat, sel(t, "SELECT * FROM items WHERE title = 3")); err == nil {
		t.Error("int->string accepted")
	}
}

func TestBindSelectErrors(t *testing.T) {
	cat := testCatalog()
	if _, err := BindSelect(cat, sel(t, "SELECT * FROM nope")); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := BindSelect(cat, sel(t, "SELECT zz FROM items")); err == nil {
		t.Error("unknown projected column accepted")
	}
	if _, err := BindSelect(cat, sel(t, "SELECT * FROM items WHERE zz = 1")); err == nil {
		t.Error("unknown predicate column accepted")
	}
	_, err := BindSelect(cat, sel(t, "SELECT * FROM items WHERE cat BETWEEN 5 AND 2"))
	if err == nil || !strings.Contains(err.Error(), "inverted") {
		t.Errorf("inverted BETWEEN: %v", err)
	}
}

func TestBindInsert(t *testing.T) {
	cat := testCatalog()
	ins := mustParse(t, "INSERT INTO items (title, cat, price) VALUES ('x', 3, 9.5)").(*InsertStmt)
	b, err := BindInsert(cat, ins)
	if err != nil {
		t.Fatal(err)
	}
	want := value.Row{value.NewInt(3), value.NewFloat(9.5), value.NewString("x")}
	if !reflect.DeepEqual(b.Rows[0], want) {
		t.Errorf("reordered row = %+v, want %+v", b.Rows[0], want)
	}

	for _, bad := range []string{
		"INSERT INTO items VALUES (1, 2.5)",                      // arity
		"INSERT INTO items (cat, price) VALUES (1, 2.5)",         // partial columns
		"INSERT INTO items (cat, cat, price) VALUES (1, 2, 3.5)", // duplicate
		"INSERT INTO items (cat, price, zz) VALUES (1, 2.5, 'x')",
		"INSERT INTO items VALUES (1.5, 2.5, 'x')", // kind mismatch
		"INSERT INTO nope VALUES (1)",
	} {
		if _, err := BindInsert(cat, mustParse(t, bad).(*InsertStmt)); err == nil {
			t.Errorf("BindInsert(%q) did not fail", bad)
		}
	}
}

func TestBindDelete(t *testing.T) {
	cat := testCatalog()
	b, err := BindDelete(cat, mustParse(t, "DELETE FROM items WHERE cat != 4").(*DeleteStmt))
	if err != nil {
		t.Fatal(err)
	}
	if b.Where[0].Op != CondNe || b.Where[0].ColIdx != 0 {
		t.Errorf("bound delete: %+v", b.Where[0])
	}
	if _, err := BindDelete(cat, mustParse(t, "DELETE FROM items WHERE zz = 1").(*DeleteStmt)); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestBindCreateTable(t *testing.T) {
	cat := testCatalog()
	ok := mustParse(t, "CREATE TABLE fresh (a INT, b STRING) CLUSTERED BY (a)").(*CreateTableStmt)
	if err := BindCreateTable(cat, ok); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"CREATE TABLE items (a INT) CLUSTERED BY (a)",    // exists
		"CREATE TABLE f (a INT, a INT) CLUSTERED BY (a)", // dup col
		"CREATE TABLE f (a INT) CLUSTERED BY (zz)",       // unknown clustering col
	} {
		if err := BindCreateTable(cat, mustParse(t, bad).(*CreateTableStmt)); err == nil {
			t.Errorf("BindCreateTable(%q) did not fail", bad)
		}
	}
}

func TestBindCreateIndexAndCM(t *testing.T) {
	cat := testCatalog()
	if err := BindCreateIndex(cat, mustParse(t, "CREATE INDEX ix ON items (price, cat)").(*CreateIndexStmt)); err != nil {
		t.Fatal(err)
	}
	if err := BindCreateIndex(cat, mustParse(t, "CREATE INDEX ix ON items (zz)").(*CreateIndexStmt)); err == nil {
		t.Error("unknown index column accepted")
	}

	if err := BindCreateCM(cat, mustParse(t, "CREATE CORRELATION MAP cm ON items (price WIDTH 5, title PREFIX 3)").(*CreateCMStmt)); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"CREATE CORRELATION MAP cm ON items (title WIDTH 5)", // width on string
		"CREATE CORRELATION MAP cm ON items (cat PREFIX 2)",  // prefix on int
		"CREATE CORRELATION MAP cm ON items (zz)",
		"CREATE CORRELATION MAP cm ON nope (cat)",
	} {
		if err := BindCreateCM(cat, mustParse(t, bad).(*CreateCMStmt)); err == nil {
			t.Errorf("BindCreateCM(%q) did not fail", bad)
		}
	}
}

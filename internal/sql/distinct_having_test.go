package sql

import (
	"strings"
	"testing"

	"repro/internal/value"
)

// TestParseDistinctHaving pins the parse shapes of the DISTINCT and
// HAVING extensions.
func TestParseDistinctHaving(t *testing.T) {
	stmt, err := Parse("SELECT DISTINCT city, qty FROM items WHERE qty > 3 HAVING count(*) > 5 AND city = 'x' ORDER BY city LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*SelectStmt)
	if !sel.Distinct {
		t.Error("DISTINCT not parsed")
	}
	if len(sel.Having) != 2 {
		t.Fatalf("Having = %+v", sel.Having)
	}
	if sel.Having[0].Expr.Fn != AggCount || !sel.Having[0].Expr.Star ||
		sel.Having[0].Op != CondGt || sel.Having[0].Args[0].Int != 5 {
		t.Errorf("having[0] = %+v", sel.Having[0])
	}
	if sel.Having[1].Expr.Col != "city" || sel.Having[1].Op != CondEq {
		t.Errorf("having[1] = %+v", sel.Having[1])
	}

	// BETWEEN and IN ride the same tail as WHERE conditions.
	stmt, err = Parse("SELECT city FROM t GROUP BY city HAVING sum(qty) BETWEEN 1 AND 9 AND avg(price) IN (1, 2)")
	if err != nil {
		t.Fatal(err)
	}
	sel = stmt.(*SelectStmt)
	if len(sel.Having) != 2 || sel.Having[0].Op != CondBetween || sel.Having[1].Op != CondIn {
		t.Fatalf("Having = %+v", sel.Having)
	}

	// A column named "distinct" stays addressable: the keyword only
	// engages where a select list can follow it.
	stmt, err = Parse("SELECT distinct FROM t")
	if err != nil {
		t.Fatal(err)
	}
	sel = stmt.(*SelectStmt)
	if sel.Distinct || len(sel.Exprs) != 1 || sel.Exprs[0].Col != "distinct" {
		t.Errorf("column-named-distinct parse = %+v", sel)
	}
	stmt, err = Parse("SELECT distinct, v FROM t")
	if err != nil {
		t.Fatal(err)
	}
	sel = stmt.(*SelectStmt)
	if sel.Distinct || len(sel.Exprs) != 2 {
		t.Errorf("distinct-comma parse = %+v", sel)
	}
}

// TestBindDistinctHaving pins the binder's DISTINCT rewrite and HAVING
// resolution, including literal coercion to the output kind and the
// error surface.
func TestBindDistinctHaving(t *testing.T) {
	cat := fakeCatalog{"items": TableMeta{Name: "items", Cols: []ColMeta{
		{Name: "cat", Kind: value.Int},
		{Name: "qty", Kind: value.Int},
		{Name: "price", Kind: value.Float},
		{Name: "city", Kind: value.String},
	}}}

	bind := func(src string) (*BoundSelect, error) {
		t.Helper()
		stmt, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		return BindSelect(cat, stmt.(*SelectStmt))
	}

	// DISTINCT rewrites into GROUP BY over the projected columns.
	b, err := bind("SELECT DISTINCT city, qty FROM items")
	if err != nil {
		t.Fatal(err)
	}
	if !b.IsAggregate() || len(b.GroupBy) != 2 || b.GroupBy[0] != "city" || b.GroupBy[1] != "qty" {
		t.Errorf("distinct bound = %+v", b)
	}
	if len(b.Aggs) != 0 || len(b.OutPerm) != 2 {
		t.Errorf("distinct aggs/perm = %+v", b)
	}

	// HAVING on a hidden aggregate appends it past the SELECT list, with
	// the literal coerced to the aggregate's kind (AVG -> float).
	b, err = bind("SELECT city FROM items GROUP BY city HAVING avg(price) > 4 AND count(*) <= 9")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Having) != 2 || b.Having[0].Name != "avg(price)" || b.Having[1].Name != "count(*)" {
		t.Fatalf("having = %+v", b.Having)
	}
	if b.Having[0].Vals[0].K != value.Float || b.Having[1].Vals[0].K != value.Int {
		t.Errorf("having literal kinds = %+v", b.Having)
	}
	if len(b.Aggs) != 2 {
		t.Errorf("hidden having aggregates not appended: %+v", b.Aggs)
	}

	for _, c := range []struct{ src, wantErr string }{
		{"SELECT qty FROM items HAVING count(*) > 1", "HAVING needs aggregates"},
		{"SELECT city FROM items GROUP BY city HAVING qty > 1", "not a GROUP BY column"},
		{"SELECT city FROM items GROUP BY city HAVING count(*) > 'x'", "does not fit"},
		{"SELECT city FROM items GROUP BY city HAVING sum(city) > 1", "does not apply"},
		{"SELECT DISTINCT count(*) FROM items", "DISTINCT does not combine"},
		{"SELECT DISTINCT city FROM items GROUP BY city", "DISTINCT with GROUP BY"},
		{"SELECT DISTINCT ghost FROM items", "no column"},
	} {
		_, err := bind(c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("bind(%q) = %v, want error containing %q", c.src, err, c.wantErr)
		}
	}
}

package sql

import (
	"fmt"

	"repro/internal/value"
)

// The binder resolves parsed statements against a Catalog: column names
// become indices, literals become typed values coerced to their column's
// kind, and semantic errors (unknown tables/columns, kind mismatches,
// inapplicable bucketing options) surface here with statement context,
// before anything touches the engine.

// ColMeta describes one column to the binder.
type ColMeta struct {
	Name string
	Kind value.Kind
}

// TableMeta describes one table to the binder.
type TableMeta struct {
	Name string
	Cols []ColMeta
}

// colIndex resolves a column name, or -1.
func (t TableMeta) colIndex(name string) int {
	for i, c := range t.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Catalog supplies table metadata; the facade's DB implements it.
type Catalog interface {
	// TableMeta returns the schema of the named table, ok=false when the
	// table does not exist.
	TableMeta(name string) (TableMeta, bool)
}

// BoundCond is a Cond with its column resolved and literals typed. For
// CondBetween Vals is [lo, hi]; for CondIn it is the member list; every
// other operator carries one value.
type BoundCond struct {
	Col    string
	ColIdx int
	Op     CondOp
	Vals   []value.Value
}

// BoundAgg is one aggregate of a bound SELECT: the function and the
// resolved column (ColIdx -1 for COUNT(*)).
type BoundAgg struct {
	Fn     AggFn
	Col    string
	ColIdx int
}

// Name renders the aggregate's canonical result-column name, e.g.
// "avg(salary)" or "count(*)" — the same form the facade derives for
// its QuerySpec.Aggs headers, so ORDER BY targets resolve by name.
func (a BoundAgg) Name() string {
	if a.ColIdx < 0 {
		return a.Fn.String() + "(*)"
	}
	return a.Fn.String() + "(" + a.Col + ")"
}

// BoundOrder is one resolved ORDER BY key. For plain selects Name is a
// table column; for aggregate selects it is an output column — a
// GROUP BY column name or a canonical aggregate name (BoundAgg.Name).
type BoundOrder struct {
	Name string
	Desc bool
}

// BoundHaving is one resolved HAVING conjunct: the output column it
// filters on (a GROUP BY column name or canonical aggregate name —
// aggregates the SELECT list omits are computed as hidden trailing
// entries, like ORDER BY keys) with literals coerced to that output's
// kind (COUNT and integer SUM are Int, AVG is Float, MIN/MAX and
// grouped columns follow the column).
type BoundHaving struct {
	Name string
	Op   CondOp
	Vals []value.Value
}

// BoundSelect is a SELECT resolved against the catalog.
//
// Aggregate selects (Aggs or GroupBy non-empty) evaluate in canonical
// output shape — the GROUP BY columns in GroupBy order followed by Aggs
// in order — and OutPerm maps each SELECT-list position onto that
// canonical row, restoring the written order (Aggs may carry hidden
// trailing entries that ORDER BY needs but the SELECT list omits).
type BoundSelect struct {
	Table string
	Proj  []int    // plain selects: projected column indices, SELECT-list order
	Cols  []string // result header, SELECT-list order
	Where [][]BoundCond
	Limit int // -1 means no limit

	Aggs       []BoundAgg
	GroupBy    []string // resolved GROUP BY column names
	GroupByIdx []int
	Having     []BoundHaving
	OrderBy    []BoundOrder
	OutPerm    []int // aggregate selects: SELECT position -> canonical position
}

// IsAggregate reports whether the SELECT computes aggregates or groups
// (GROUP BY without aggregates is a distinct-values query).
func (b *BoundSelect) IsAggregate() bool { return len(b.Aggs) > 0 || len(b.GroupBy) > 0 }

// BoundInsert is an INSERT with rows coerced to the table schema.
type BoundInsert struct {
	Table string
	Rows  []value.Row
}

// BoundDelete is a DELETE resolved against the catalog.
type BoundDelete struct {
	Table string
	Where []BoundCond
}

// lookupTable fetches table metadata or fails with a uniform error.
func lookupTable(cat Catalog, name string) (TableMeta, error) {
	tm, ok := cat.TableMeta(name)
	if !ok {
		return TableMeta{}, fmt.Errorf("sql: no table %q", name)
	}
	return tm, nil
}

// bindLit coerces a literal to a column kind. Integer literals widen to
// float columns; every other cross-kind use is an error.
func bindLit(l Lit, kind value.Kind, col string) (value.Value, error) {
	switch kind {
	case value.Int:
		if l.Kind == LitInt {
			return value.NewInt(l.Int), nil
		}
	case value.Float:
		switch l.Kind {
		case LitInt:
			return value.NewFloat(float64(l.Int)), nil
		case LitFloat:
			return value.NewFloat(l.Flt), nil
		}
	case value.String:
		if l.Kind == LitString {
			return value.NewString(l.Str), nil
		}
	}
	return value.Value{}, fmt.Errorf("sql: literal %s does not fit %s column %q", l, kind, col)
}

// bindDNF resolves a WHERE clause in disjunctive normal form.
func bindDNF(tm TableMeta, dnf [][]Cond) ([][]BoundCond, error) {
	if len(dnf) == 0 {
		return nil, nil
	}
	out := make([][]BoundCond, 0, len(dnf))
	for _, conj := range dnf {
		b, err := bindConds(tm, conj)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// bindConds resolves a WHERE conjunction against a table.
func bindConds(tm TableMeta, conds []Cond) ([]BoundCond, error) {
	out := make([]BoundCond, 0, len(conds))
	for _, c := range conds {
		ci := tm.colIndex(c.Col)
		if ci < 0 {
			return nil, fmt.Errorf("sql: table %q has no column %q", tm.Name, c.Col)
		}
		kind := tm.Cols[ci].Kind
		bc := BoundCond{Col: c.Col, ColIdx: ci, Op: c.Op}
		for _, a := range c.Args {
			v, err := bindLit(a, kind, c.Col)
			if err != nil {
				return nil, err
			}
			bc.Vals = append(bc.Vals, v)
		}
		if c.Op == CondBetween && bc.Vals[0].Compare(bc.Vals[1]) > 0 {
			return nil, fmt.Errorf("sql: BETWEEN bounds on %q are inverted (%s > %s)",
				c.Col, c.Args[0], c.Args[1])
		}
		out = append(out, bc)
	}
	return out, nil
}

// BindSelect resolves a SELECT statement: columns to indices, the WHERE
// DNF to typed conditions, aggregates/GROUP BY/ORDER BY validated
// against the schema (SUM/AVG need numeric columns, plain SELECT-list
// columns of a grouped query must be grouped, ORDER BY keys must be
// resolvable — table columns for plain selects, output columns for
// aggregate ones).
func BindSelect(cat Catalog, sel *SelectStmt) (*BoundSelect, error) {
	tm, err := lookupTable(cat, sel.Table)
	if err != nil {
		return nil, err
	}
	b := &BoundSelect{Table: sel.Table, Limit: sel.Limit}
	b.Where, err = bindDNF(tm, sel.Where)
	if err != nil {
		return nil, err
	}

	hasAgg := false
	for _, e := range sel.Exprs {
		if e.Fn != AggNone {
			hasAgg = true
		}
	}
	if sel.Distinct {
		// DISTINCT is sugar for GROUP BY over the projected columns: the
		// binder rewrites it here and the grouped executor (which already
		// returns one row per distinct key, sorted) does the rest.
		if hasAgg {
			return nil, fmt.Errorf("sql: DISTINCT does not combine with aggregates (they already collapse rows)")
		}
		if len(sel.GroupBy) > 0 {
			return nil, fmt.Errorf("sql: DISTINCT with GROUP BY is redundant; use one or the other")
		}
		ds := *sel
		if ds.Exprs == nil {
			for _, c := range tm.Cols {
				ds.Exprs = append(ds.Exprs, SelExpr{Col: c.Name})
			}
		}
		seen := map[string]bool{}
		for _, e := range ds.Exprs {
			if !seen[e.Col] {
				seen[e.Col] = true
				ds.GroupBy = append(ds.GroupBy, e.Col)
			}
		}
		return bindAggSelect(tm, &ds, b)
	}
	if hasAgg || len(sel.GroupBy) > 0 {
		return bindAggSelect(tm, sel, b)
	}
	if len(sel.Having) > 0 {
		return nil, fmt.Errorf("sql: HAVING needs aggregates or GROUP BY")
	}

	if sel.Exprs == nil {
		for i, c := range tm.Cols {
			b.Proj = append(b.Proj, i)
			b.Cols = append(b.Cols, c.Name)
		}
	} else {
		for _, e := range sel.Exprs {
			ci := tm.colIndex(e.Col)
			if ci < 0 {
				return nil, fmt.Errorf("sql: table %q has no column %q", tm.Name, e.Col)
			}
			b.Proj = append(b.Proj, ci)
			b.Cols = append(b.Cols, e.Col)
		}
	}
	for _, o := range sel.OrderBy {
		if o.Expr.Fn != AggNone {
			return nil, fmt.Errorf("sql: ORDER BY %s needs an aggregate or grouped query", o.Expr.Name())
		}
		if tm.colIndex(o.Expr.Col) < 0 {
			return nil, fmt.Errorf("sql: table %q has no column %q", tm.Name, o.Expr.Col)
		}
		b.OrderBy = append(b.OrderBy, BoundOrder{Name: o.Expr.Col, Desc: o.Desc})
	}
	return b, nil
}

// bindAggSelect resolves the aggregate/grouped form of a SELECT.
func bindAggSelect(tm TableMeta, sel *SelectStmt, b *BoundSelect) (*BoundSelect, error) {
	if sel.Exprs == nil {
		return nil, fmt.Errorf("sql: SELECT * cannot be grouped or aggregated")
	}
	grouped := map[string]int{} // group column name -> canonical position
	for _, name := range sel.GroupBy {
		ci := tm.colIndex(name)
		if ci < 0 {
			return nil, fmt.Errorf("sql: GROUP BY: table %q has no column %q", tm.Name, name)
		}
		if _, dup := grouped[name]; dup {
			return nil, fmt.Errorf("sql: column %q named twice in GROUP BY", name)
		}
		grouped[name] = len(b.GroupBy)
		b.GroupBy = append(b.GroupBy, name)
		b.GroupByIdx = append(b.GroupByIdx, ci)
	}

	// bindAgg validates one aggregate expression and appends it to Aggs
	// (deduplicating identical expressions), returning its canonical
	// output position.
	bindAgg := func(e SelExpr) (int, error) {
		a := BoundAgg{Fn: e.Fn, Col: e.Col, ColIdx: -1}
		if !e.Star {
			ci := tm.colIndex(e.Col)
			if ci < 0 {
				return 0, fmt.Errorf("sql: table %q has no column %q", tm.Name, e.Col)
			}
			kind := tm.Cols[ci].Kind
			if (e.Fn == AggSum || e.Fn == AggAvg) && kind == value.String {
				return 0, fmt.Errorf("sql: %s does not apply to string column %q", e.Name(), e.Col)
			}
			a.ColIdx = ci
		} else if e.Fn != AggCount {
			return 0, fmt.Errorf("sql: %s(*) is not valid (only COUNT takes *)", e.Fn)
		}
		for i, have := range b.Aggs {
			if have == a {
				return len(b.GroupBy) + i, nil
			}
		}
		b.Aggs = append(b.Aggs, a)
		return len(b.GroupBy) + len(b.Aggs) - 1, nil
	}

	for _, e := range sel.Exprs {
		if e.Fn == AggNone {
			pos, ok := grouped[e.Col]
			if !ok {
				if tm.colIndex(e.Col) < 0 {
					return nil, fmt.Errorf("sql: table %q has no column %q", tm.Name, e.Col)
				}
				return nil, fmt.Errorf("sql: column %q must appear in GROUP BY or an aggregate", e.Col)
			}
			b.OutPerm = append(b.OutPerm, pos)
			b.Cols = append(b.Cols, e.Col)
			continue
		}
		pos, err := bindAgg(e)
		if err != nil {
			return nil, err
		}
		b.OutPerm = append(b.OutPerm, pos)
		b.Cols = append(b.Cols, e.Name())
	}

	// HAVING conjuncts resolve like ORDER BY keys: grouped columns by
	// name, aggregates by canonical name (computed as hidden trailing
	// aggregates when the SELECT list omits them), with literals coerced
	// to the referenced output's kind.
	for _, hc := range sel.Having {
		var kind value.Kind
		if hc.Expr.Fn == AggNone {
			if _, ok := grouped[hc.Expr.Col]; !ok {
				return nil, fmt.Errorf("sql: HAVING %q: not a GROUP BY column of this aggregate query", hc.Expr.Col)
			}
			kind = tm.Cols[tm.colIndex(hc.Expr.Col)].Kind
		} else {
			if _, err := bindAgg(hc.Expr); err != nil {
				return nil, err
			}
			kind = aggOutputKind(tm, hc.Expr)
		}
		name := hc.Expr.Name()
		bh := BoundHaving{Name: name, Op: hc.Op}
		for _, a := range hc.Args {
			v, err := bindLit(a, kind, name)
			if err != nil {
				return nil, err
			}
			bh.Vals = append(bh.Vals, v)
		}
		if hc.Op == CondBetween && bh.Vals[0].Compare(bh.Vals[1]) > 0 {
			return nil, fmt.Errorf("sql: HAVING BETWEEN bounds on %q are inverted (%s > %s)",
				name, hc.Args[0], hc.Args[1])
		}
		b.Having = append(b.Having, bh)
	}

	for _, o := range sel.OrderBy {
		if o.Expr.Fn == AggNone {
			if _, ok := grouped[o.Expr.Col]; !ok {
				return nil, fmt.Errorf("sql: ORDER BY %q: not a GROUP BY column of this aggregate query", o.Expr.Col)
			}
			b.OrderBy = append(b.OrderBy, BoundOrder{Name: o.Expr.Col, Desc: o.Desc})
			continue
		}
		// An aggregate ORDER BY key the SELECT list omits is computed as
		// a hidden trailing aggregate; OutPerm never points at it, so it
		// stays out of the result.
		if _, err := bindAgg(o.Expr); err != nil {
			return nil, err
		}
		b.OrderBy = append(b.OrderBy, BoundOrder{Name: o.Expr.Name(), Desc: o.Desc})
	}
	return b, nil
}

// aggOutputKind is the result kind of an aggregate expression: COUNT is
// Int, AVG is Float, SUM/MIN/MAX follow their column.
func aggOutputKind(tm TableMeta, e SelExpr) value.Kind {
	switch e.Fn {
	case AggCount:
		return value.Int
	case AggAvg:
		return value.Float
	default:
		if e.Star {
			return value.Int
		}
		return tm.Cols[tm.colIndex(e.Col)].Kind
	}
}

// BindInsert resolves an INSERT statement, reordering named-column rows
// into schema order. Named inserts must cover every column: the engine
// has no NULLs.
func BindInsert(cat Catalog, ins *InsertStmt) (*BoundInsert, error) {
	tm, err := lookupTable(cat, ins.Table)
	if err != nil {
		return nil, err
	}
	perm := make([]int, len(tm.Cols)) // schema position -> tuple position
	if ins.Cols == nil {
		for i := range perm {
			perm[i] = i
		}
	} else {
		if len(ins.Cols) != len(tm.Cols) {
			return nil, fmt.Errorf("sql: INSERT INTO %s names %d of %d columns (all columns are required)",
				tm.Name, len(ins.Cols), len(tm.Cols))
		}
		for i := range perm {
			perm[i] = -1
		}
		for pos, name := range ins.Cols {
			ci := tm.colIndex(name)
			if ci < 0 {
				return nil, fmt.Errorf("sql: table %q has no column %q", tm.Name, name)
			}
			if perm[ci] != -1 {
				return nil, fmt.Errorf("sql: column %q named twice in INSERT", name)
			}
			perm[ci] = pos
		}
	}
	b := &BoundInsert{Table: ins.Table}
	for _, tuple := range ins.Rows {
		if len(tuple) != len(tm.Cols) {
			return nil, fmt.Errorf("sql: INSERT tuple has %d values, table %s has %d columns",
				len(tuple), tm.Name, len(tm.Cols))
		}
		row := make(value.Row, len(tm.Cols))
		for ci := range tm.Cols {
			v, err := bindLit(tuple[perm[ci]], tm.Cols[ci].Kind, tm.Cols[ci].Name)
			if err != nil {
				return nil, err
			}
			row[ci] = v
		}
		b.Rows = append(b.Rows, row)
	}
	return b, nil
}

// BindDelete resolves a DELETE statement.
func BindDelete(cat Catalog, del *DeleteStmt) (*BoundDelete, error) {
	tm, err := lookupTable(cat, del.Table)
	if err != nil {
		return nil, err
	}
	where, err := bindConds(tm, del.Where)
	if err != nil {
		return nil, err
	}
	return &BoundDelete{Table: del.Table, Where: where}, nil
}

// BoundSet is one resolved assignment of an UPDATE: the target column
// and the value (coerced to the column's kind) every matching row takes.
type BoundSet struct {
	Col    string
	ColIdx int
	Val    value.Value
}

// BoundUpdate is an UPDATE resolved against the catalog. Where follows
// BoundSelect.Where: disjunctive normal form, nil for update-all.
type BoundUpdate struct {
	Table string
	Sets  []BoundSet
	Where [][]BoundCond
}

// BindUpdate resolves an UPDATE statement: assignment targets to column
// indices with their values coerced to the column kinds (duplicate
// targets rejected), and the WHERE clause bound like a SELECT's.
func BindUpdate(cat Catalog, up *UpdateStmt) (*BoundUpdate, error) {
	tm, err := lookupTable(cat, up.Table)
	if err != nil {
		return nil, err
	}
	b := &BoundUpdate{Table: up.Table}
	seen := map[string]bool{}
	for _, s := range up.Sets {
		ci := tm.colIndex(s.Col)
		if ci < 0 {
			return nil, fmt.Errorf("sql: table %q has no column %q", tm.Name, s.Col)
		}
		if seen[s.Col] {
			return nil, fmt.Errorf("sql: column %q assigned twice in UPDATE", s.Col)
		}
		seen[s.Col] = true
		v, err := bindLit(s.Val, tm.Cols[ci].Kind, s.Col)
		if err != nil {
			return nil, err
		}
		b.Sets = append(b.Sets, BoundSet{Col: s.Col, ColIdx: ci, Val: v})
	}
	b.Where, err = bindDNF(tm, up.Where)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// BindCreateTable checks a CREATE TABLE statement: fresh name, distinct
// columns, clustering columns present.
func BindCreateTable(cat Catalog, ct *CreateTableStmt) error {
	if _, ok := cat.TableMeta(ct.Name); ok {
		return fmt.Errorf("sql: table %q exists", ct.Name)
	}
	if len(ct.Cols) == 0 {
		return fmt.Errorf("sql: table %q needs at least one column", ct.Name)
	}
	seen := map[string]bool{}
	for _, c := range ct.Cols {
		if seen[c.Name] {
			return fmt.Errorf("sql: duplicate column %q in CREATE TABLE %s", c.Name, ct.Name)
		}
		seen[c.Name] = true
	}
	if len(ct.ClusteredBy) == 0 {
		return fmt.Errorf("sql: CREATE TABLE %s needs CLUSTERED BY", ct.Name)
	}
	for _, name := range ct.ClusteredBy {
		if !seen[name] {
			return fmt.Errorf("sql: clustering column %q is not a column of %s", name, ct.Name)
		}
	}
	return nil
}

// BindCreateIndex checks a CREATE INDEX statement against the catalog.
func BindCreateIndex(cat Catalog, ci *CreateIndexStmt) error {
	tm, err := lookupTable(cat, ci.Table)
	if err != nil {
		return err
	}
	for _, col := range ci.Cols {
		if tm.colIndex(col) < 0 {
			return fmt.Errorf("sql: table %q has no column %q", tm.Name, col)
		}
	}
	return nil
}

// BindCreateCM checks a CREATE CORRELATION MAP statement: columns exist
// and bucketing options fit their column kinds (WIDTH needs a numeric
// column, PREFIX a string column).
func BindCreateCM(cat Catalog, cc *CreateCMStmt) error {
	tm, err := lookupTable(cat, cc.Table)
	if err != nil {
		return err
	}
	for _, col := range cc.Cols {
		ci := tm.colIndex(col.Name)
		if ci < 0 {
			return fmt.Errorf("sql: table %q has no column %q", tm.Name, col.Name)
		}
		kind := tm.Cols[ci].Kind
		if col.Width > 0 && kind == value.String {
			return fmt.Errorf("sql: WIDTH does not apply to string column %q (use PREFIX)", col.Name)
		}
		if col.Prefix > 0 && kind != value.String {
			return fmt.Errorf("sql: PREFIX does not apply to %s column %q (use WIDTH)", kind, col.Name)
		}
	}
	return nil
}
